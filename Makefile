# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build
	dune runtest

# The full reproduction harness (slow); `make bench-quick` for a pass
# with reduced repetitions.
bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

clean:
	dune clean
