# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check smoke-parallel-scavenge explore-smoke fault-smoke steal-smoke server-smoke dpor-smoke gc-smoke cluster-smoke bench clean

all: build

build:
	dune build

test:
	dune runtest

# A quick E10 run with the strict sanitizer: every parallel collection is
# claim/chunk-checked and followed by a full heap verification, so a
# protocol regression fails the build rather than skewing the numbers.
smoke-parallel-scavenge:
	dune exec bench/main.exe -- parallel-scavenge --quick --sanitize=strict

# Schedule exploration with a small seed budget: the published MS
# configuration must explore clean under the strict sanitizer, and each
# deliberately broken configuration must yield a shrunk counterexample
# whose replayed trace reproduces the failure.
explore-smoke:
	dune exec bin/mst.exe -- explore --config=ms --seeds=8 --quick
	dune exec bin/mst.exe -- explore --config=bs-unlocked --seeds=4 --quick \
	  --expect-violation --dump /tmp/mst-explore-unlocked
	dune exec bin/mst.exe -- explore --config=ctx-unbracketed --seeds=4 --quick \
	  --expect-violation --dump /tmp/mst-explore-ctx

# Seeded fault campaigns with the strict sanitizer: every crash must be
# survived by failover, every degraded collection must verify, the
# deadlock hunt must detect a crashed lock holder via the watchdog and
# shrink its fault plan to a file that replays to the identical report.
fault-smoke:
	dune exec bin/mst.exe -- faults --campaign=crash --seeds=4 --quick
	dune exec bin/mst.exe -- faults --campaign=gc --seeds=4 --quick
	dune exec bin/mst.exe -- faults --deadlock --quick --seeds=12 \
	  --dump /tmp/mst-deadlock.plan
	dune exec bin/mst.exe -- faults --replay=/tmp/mst-deadlock.plan \
	  --expect-deadlock --quick

# E16 work stealing: a strict-sanitized stealing run on a busy workload,
# a 50-seed differential exploration against the locked scheduler's
# observables, and the deliberately unguarded steal protocol that the
# sanitizer must catch on every seed.
steal-smoke:
	dune exec bin/mst.exe -- eval -p 4 --state busy --scheduler=stealing \
	  --sanitize=strict \
	  "| s | s := 0. 1 to: 200 do: [:i | s := s + i]. s"
	dune exec bin/mst.exe -- explore --config=stealing --seeds=50 --quick
	dune exec bin/mst.exe -- explore --config=steal-unlocked --seeds=4 --quick \
	  --expect-violation --dump /tmp/mst-explore-steal

# E17 image server: a strict-sanitized closed-loop serve on the calendar
# engine, run differentially so the scan engine must agree on every
# request-level observable, plus a calendar-engine schedule exploration
# checked against the scan engine's observables on every seed.
server-smoke:
	dune exec bin/mst.exe -- serve -p 8 --sessions 4 --workers 2 \
	  --requests 2 --think-ms 100 --sanitize=strict --differential
	dune exec bin/mst.exe -- explore --config=calendar --seeds=8 --quick

# E20 systematic exploration (strict sanitizer, bounded workload): the
# published configuration must stay clean under a DPOR budget with
# pruning stats, both deliberately broken configurations must be caught
# with no seed involved, and zero-execution invocations (--seeds 0,
# --budget 0) must exit 2 instead of reporting vacuous success.
dpor-smoke:
	dune exec bin/mst.exe -- explore --config=ms --dpor --stats --quick \
	  --budget=12
	dune exec bin/mst.exe -- explore --config=ctx-unbracketed --dpor --quick \
	  --budget=4 --expect-violation --dump /tmp/mst-dpor-ctx
	dune exec bin/mst.exe -- explore --config=steal-unlocked --dpor --quick \
	  --budget=4 --expect-violation --dump /tmp/mst-dpor-steal
	dune exec bin/mst.exe -- explore --quick --seeds=0 2>/dev/null; \
	  test $$? -eq 2 || { echo "FAIL: --seeds 0 must exit 2"; exit 1; }
	dune exec bin/mst.exe -- explore --quick --dpor --budget=0 2>/dev/null; \
	  test $$? -eq 2 || { echo "FAIL: --dpor --budget 0 must exit 2"; exit 1; }

# E18 incremental old-space collection: a strict-sanitized garbage-heavy
# run with the collector on (every cycle completion re-verifies the whole
# heap), the pause-distribution bench whose p95 major slice must respect
# the budget, a differential exploration against a collector-free
# reference, and the barrier-disabled configuration the sanitizer must
# catch on every seed.
gc-smoke:
	dune exec bin/mst.exe -- eval -p 4 --state busy --major --sanitize=strict \
	  '| keep | keep := Array new: 64. 1 to: 4000 do: [:i | keep at: i \\ 64 + 1 put: (Array new: 16)]. 6 factorial'
	dune exec bench/main.exe -- e18-gc --quick
	dune exec bin/mst.exe -- explore --config=major --seeds=4 --quick
	dune exec bin/mst.exe -- explore --config=major-nobarrier --seeds=4 --quick \
	  --expect-violation --dump /tmp/mst-explore-major

# E19 replicated image cluster: three replicas over a durable command
# log with one injected crash — the victim must rejoin from a checkpoint
# and reproduce the reference fingerprint; the torn-checkpoint scenario
# must fall back past the damaged file; the deliberately-divergent
# replica (one dropped log entry) must be caught by the detector; the
# replica fault campaign (torn checkpoint, crash mid-replay, double
# crash) must record zero incorrect outcomes.
cluster-smoke:
	dune exec bin/mst.exe -- cluster --requests=24 --crash-seed=5 \
	  --expect-rejoin
	dune exec bin/mst.exe -- cluster --requests=24 --crash-seed=5 \
	  --scenario=torn-checkpoint --expect-rejoin
	dune exec bin/mst.exe -- cluster --requests=12 --skip-lsn=3 \
	  --expect-divergence
	dune exec bin/mst.exe -- faults --campaign=replica --seeds=2 --quick

check:
	dune build
	dune runtest
	$(MAKE) smoke-parallel-scavenge
	$(MAKE) explore-smoke
	$(MAKE) fault-smoke
	$(MAKE) steal-smoke
	$(MAKE) server-smoke
	$(MAKE) dpor-smoke
	$(MAKE) gc-smoke
	$(MAKE) cluster-smoke

# The full reproduction harness (slow); `make bench-quick` for a pass
# with reduced repetitions.
bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

clean:
	dune clean
