# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check smoke-parallel-scavenge bench clean

all: build

build:
	dune build

test:
	dune runtest

# A quick E10 run with the strict sanitizer: every parallel collection is
# claim/chunk-checked and followed by a full heap verification, so a
# protocol regression fails the build rather than skewing the numbers.
smoke-parallel-scavenge:
	dune exec bench/main.exe -- parallel-scavenge --quick --sanitize=strict

check:
	dune build
	dune runtest
	$(MAKE) smoke-parallel-scavenge

# The full reproduction harness (slow); `make bench-quick` for a pass
# with reduced repetitions.
bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

clean:
	dune clean
