(* The benchmark harness: regenerates every table and figure of
   Pallas & Ungar, "Multiprocessor Smalltalk" (PLDI 1988), plus the
   ablations and extensions indexed in DESIGN.md.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- table2    -- one section
     dune exec bench/main.exe -- --quick   -- reduced repetitions

   Absolute numbers are simulated seconds on the simulated Firefly
   (1 MIPS); the workloads are sized so the baseline column lands near the
   paper's.  The shape -- who wins, by roughly what factor -- is the
   reproduction target. *)

let fmt = Format.std_formatter

let section title =
  Format.fprintf fmt "@.=== %s ===@.@." title

(* --sanitize=off|report|strict and --trace-dump=N apply to the sections
   that build full VMs (table2/figure2 and instrumentation) *)
let sanitize_mode = ref Sanitizer.Off
let trace_dump = ref 0

let tweak c = { c with Config.sanitize = !sanitize_mode }

(* --- E1/E2/E5: static content --- *)

let run_figure1 () =
  section "Figure 1: system structure";
  Format.fprintf fmt "%s@." Report.figure1

let run_table1 () =
  section "Table 1: process and interpreter relationships";
  Format.fprintf fmt "%s@." Report.table1

let run_table3 () =
  section "Table 3: applications of the three strategies";
  Format.fprintf fmt "%s@." Report.table3

(* --- E3/E4: Table 2 and Figure 2 --- *)

let scale_reps factor benchmarks =
  List.map
    (fun (b : Macro.benchmark) ->
      { b with Macro.reps = max 1 (b.Macro.reps / factor) })
    benchmarks

let run_table2 ~quick () =
  section "Table 2 / Figure 2: macro benchmarks in the four system states";
  let benchmarks =
    if quick then scale_reps 6 Macro.benchmarks else Macro.benchmarks
  in
  if quick then
    Format.fprintf fmt
      "(quick mode: repetitions reduced 6x; absolute seconds scale down \
       accordingly)@.@.";
  let t0 = Unix.gettimeofday () in
  let results = Macro.run_table2 ~config_tweak:tweak ~benchmarks () in
  Report.print_table2 fmt results;
  Format.fprintf fmt "@.";
  Report.print_figure2 fmt results;
  Report.print_summary fmt results;
  (match !sanitize_mode with
   | Sanitizer.Off -> ()
   | Sanitizer.Report ->
       Format.fprintf fmt
         "@.(sanitizer in report mode; see the instrumentation section for \
          accumulated violations)@."
   | Sanitizer.Strict ->
       Format.fprintf fmt
         "@.(sanitizer strict: all four system states completed with zero \
          serialization violations)@.");
  Format.fprintf fmt "@.(real time for this section: %.1f s)@."
    (Unix.gettimeofday () -. t0)

(* --- E6/E7/E9/E11: ablations --- *)

let run_ablation_contexts ~quick () =
  section "Ablation E6: the free-context list (paper: 160% -> 65% worst case)";
  let reps = if quick then 6 else 14 in
  Ablations.print_result fmt (Ablations.free_contexts ~reps ());
  Ablations.print_result fmt (Ablations.no_free_contexts ~reps ())

let run_ablation_cache ~quick () =
  section
    "Ablation E7: the method cache (paper: locked shared cache was 'much too slow')";
  let reps = if quick then 4 else 12 in
  Ablations.print_result fmt (Ablations.method_cache ~reps ())

let run_ablation_eden ~quick () =
  section
    "Ablation E9: replicating the new-object space (the paper's proposed improvement)";
  let reps = if quick then 4 else 12 in
  List.iter (Ablations.print_result fmt) (Ablations.replicated_eden ~reps ())

let run_ablation_sched ~quick () =
  section "Ablation E11: the scheduler reorganization";
  let reps = if quick then 4 else 12 in
  Ablations.print_result fmt (Ablations.scheduler_reorganization ~reps ())

(* --- E16: work stealing --- *)

let steal_json_file = "BENCH_e16_steal.json"

let write_steal_json ~workers rows =
  let oc = open_out steal_json_file in
  Printf.fprintf oc
    "{\n  \"experiment\": \"e16_work_stealing\",\n  \"workers\": %d,\n\
     \  \"rows\": [\n"
    workers;
  List.iteri
    (fun i (r : Ablations.steal_row) ->
      Printf.fprintf oc
        "    {\"vps\": %d, \"locked_seconds\": %.6f, \"locked_sched_spin\": \
         %d, \"stealing_seconds\": %.6f, \"deque_spin\": %d, \"steals\": %d, \
         \"migrations\": %d, \"speedup\": %.3f}%s\n"
        r.Ablations.vps r.Ablations.locked_seconds
        r.Ablations.locked_sched_spin r.Ablations.stealing_seconds
        r.Ablations.deque_spin r.Ablations.steals r.Ablations.migrations
        (r.Ablations.locked_seconds /. r.Ablations.stealing_seconds)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run_e16_steal ~quick () =
  section "E16: work-stealing scheduler, processor sweep";
  let workers = if quick then 24 else 64 in
  let vps = if quick then [ 5; 8; 16 ] else [ 5; 8; 16; 32; 64 ] in
  let rows = Ablations.work_stealing_sweep ~workers ~vps () in
  Ablations.print_steal_rows fmt ~workers rows;
  write_steal_json ~workers rows;
  Format.fprintf fmt "@.(rows written to %s)@." steal_json_file

(* --- E17: the image server on the event-calendar engine --- *)

let server_json_file = "BENCH_e17_server.json"

type server_row = {
  srv_sessions : int;
  scan : Server.stats * float;      (* stats, host wall seconds *)
  calendar : Server.stats * float;
}

let run_server_once config p =
  let t0 = Unix.gettimeofday () in
  let _vm, stats = Server.run config p in
  let wall = Unix.gettimeofday () -. t0 in
  if not stats.Server.quiesced then
    failwith "e17-server: run did not quiesce";
  (stats, wall)

let write_server_json ~vps ~workers ~requests ~think_ms rows =
  let oc = open_out server_json_file in
  Printf.fprintf oc
    "{\n  \"experiment\": \"e17_image_server\",\n  \"vps\": %d,\n\
     \  \"workers\": %d,\n  \"requests_per_session\": %d,\n\
     \  \"think_ms\": %d,\n  \"rows\": [\n"
    vps workers requests think_ms;
  let emit i row =
    let (sc, sc_wall) = row.scan and (ca, ca_wall) = row.calendar in
    let host_events s wall = float_of_int s.Server.engine_events /. wall in
    let req_per_sim s =
      if s.Server.sim_seconds > 0. then
        float_of_int s.Server.completed /. s.Server.sim_seconds
      else 0.
    in
    Printf.fprintf oc
      "    {\"sessions\": %d, \"completed\": %d,\n\
       \     \"scan\": {\"wall_seconds\": %.4f, \"engine_events\": %d, \
       \"host_events_per_sec\": %.0f, \"sim_requests_per_sec\": %.3f, \
       \"latency_p50_cycles\": %d, \"latency_p99_cycles\": %d},\n\
       \     \"calendar\": {\"wall_seconds\": %.4f, \"engine_events\": %d, \
       \"host_events_per_sec\": %.0f, \"sim_requests_per_sec\": %.3f, \
       \"latency_p50_cycles\": %d, \"latency_p99_cycles\": %d, \
       \"parks\": %d},\n\
       \     \"wall_speedup\": %.2f, \"host_cycles_per_sec_speedup\": %.2f}%s\n"
      row.srv_sessions sc.Server.completed
      sc_wall sc.Server.engine_events (host_events sc sc_wall)
      (req_per_sim sc) sc.Server.latency.Server.p50
      sc.Server.latency.Server.p99
      ca_wall ca.Server.engine_events (host_events ca ca_wall)
      (req_per_sim ca) ca.Server.latency.Server.p50
      ca.Server.latency.Server.p99 ca.Server.parks
      (sc_wall /. ca_wall)
      (float_of_int ca.Server.run_cycles /. ca_wall
       /. (float_of_int sc.Server.run_cycles /. sc_wall))
      (if i = List.length rows - 1 then "" else ",")
  in
  List.iteri emit rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run_e17_server ~quick () =
  section
    "E17: image server (browse/inspect/compile sessions), scan vs calendar \
     engine";
  let vps = if quick then 16 else 64 in
  let workers = if quick then 4 else 8 in
  let requests = if quick then 2 else 4 in
  let think_ms = 10000 in
  let session_counts = if quick then [ 4; 8 ] else [ 8; 16; 32; 64 ] in
  Format.fprintf fmt
    "%d processors, %d workers, %d requests/session, closed loop, think %d \
     ms (mostly idle)@.@."
    vps workers requests think_ms;
  Format.fprintf fmt
    "  %8s %10s | %12s %14s | %12s %14s | %8s@."
    "sessions" "completed" "scan wall(s)" "scan events/s" "cal wall(s)"
    "cal events/s" "speedup";
  let rows =
    List.map
      (fun sessions ->
        let p =
          { Server.default_params with
            Server.sessions; workers; requests; think_ms;
            loop = Server.Closed }
        in
        let base = { (Config.ms ~processors:vps ()) with
                     Config.sanitize = !sanitize_mode } in
        let scan = run_server_once base p in
        let calendar =
          run_server_once
            { base with Config.engine = Config.Engine_calendar } p
        in
        let (sc, sc_wall) = scan and (ca, ca_wall) = calendar in
        Format.fprintf fmt "  %8d %10d | %12.3f %14.0f | %12.3f %14.0f | %7.2fx@."
          sessions sc.Server.completed sc_wall
          (float_of_int sc.Server.engine_events /. sc_wall)
          ca_wall
          (float_of_int ca.Server.engine_events /. ca_wall)
          (sc_wall /. ca_wall);
        { srv_sessions = sessions; scan; calendar })
      session_counts
  in
  write_server_json ~vps ~workers ~requests ~think_ms rows;
  Format.fprintf fmt "@.(rows written to %s)@." server_json_file

(* --- E18: incremental old-space collection --- *)

let gc_json_file = "BENCH_e18_gc.json"

let write_gc_json ~iterations rows (s : Gc_study.major_summary) =
  let oc = open_out gc_json_file in
  Printf.fprintf oc
    "{\n  \"experiment\": \"e18_incremental_major\",\n\
     \  \"iterations\": %d,\n\
     \  \"pauses\": [\n"
    iterations;
  List.iteri
    (fun i (r : Gc_study.pause_row) ->
      Printf.fprintf oc
        "    {\"population\": %S, \"count\": %d, \"p50_ms\": %.6f, \
         \"p95_ms\": %.6f, \"max_ms\": %.6f, \"budget_ms\": %.6f, \
         \"budget_overruns\": %d}%s\n"
        r.Gc_study.pause_label r.Gc_study.pauses r.Gc_study.p50_ms
        r.Gc_study.p95_ms r.Gc_study.max_ms r.Gc_study.budget_ms
        r.Gc_study.budget_overruns
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n\
     \  \"collector\": {\"cycles\": %d, \"slices\": %d, \
     \"budget_cycles\": %d, \"overruns\": %d, \"forced_completions\": %d,\n\
     \    \"reclaimed_objects\": %d, \"reclaimed_words\": %d, \
     \"free_list_hits\": %d, \"free_reused_words\": %d, \
     \"barrier_greys\": %d}\n}\n"
    s.Gc_study.maj_cycles s.Gc_study.maj_slices s.Gc_study.maj_budget
    s.Gc_study.maj_overruns s.Gc_study.maj_forced
    s.Gc_study.maj_reclaimed_objects s.Gc_study.maj_reclaimed_words
    s.Gc_study.maj_free_list_hits s.Gc_study.maj_free_reused_words
    s.Gc_study.maj_barrier_greys;
  close_out oc

let run_e18_gc ~quick () =
  section
    "E18: incremental old-space mark-sweep — pause distribution under \
     aggressive churn";
  let iterations = if quick then 10_000 else 30_000 in
  let rows, s = Gc_study.pause_study ~iterations () in
  Gc_study.print_pause_rows fmt
    ~label:
      "churn with tenure age 1 and a 16 KB eden (most allocation tenures, \
       then dies in old space)"
    rows;
  Format.fprintf fmt
    "@.  collector: %d cycle(s) in %d slice(s), %d forced completion(s)@."
    s.Gc_study.maj_cycles s.Gc_study.maj_slices s.Gc_study.maj_forced;
  Format.fprintf fmt
    "  reclaimed %d object(s) / %d words; free lists served %d \
     allocation(s) (%d words reused)@."
    s.Gc_study.maj_reclaimed_objects s.Gc_study.maj_reclaimed_words
    s.Gc_study.maj_free_list_hits s.Gc_study.maj_free_reused_words;
  (* the collector's whole claim is the bounded tail — fail the harness
     if a slice's p95 escapes the budget *)
  (match rows with
   | [ _; slice_row ]
     when slice_row.Gc_study.pauses > 0
          && slice_row.Gc_study.p95_ms > slice_row.Gc_study.budget_ms ->
       Format.fprintf fmt
         "@.FAIL: p95 major slice %.3f ms exceeds the %.3f ms budget@."
         slice_row.Gc_study.p95_ms slice_row.Gc_study.budget_ms;
       exit 1
   | _ -> ());
  write_gc_json ~iterations rows s;
  Format.fprintf fmt "@.(rows written to %s)@." gc_json_file

(* --- E19: replicated image cluster --- *)

let cluster_json_file = "BENCH_e19_cluster.json"

let write_cluster_json ~requests rows =
  let oc = open_out cluster_json_file in
  Printf.fprintf oc
    "{\n  \"experiment\": \"e19_replicated_cluster\",\n\
     \  \"replicas\": %d,\n  \"requests\": %d,\n  \"rows\": [\n"
    Replica.default_params.Replica.replicas requests;
  List.iteri
    (fun i (label, (o : Replica.outcome)) ->
      Printf.fprintf oc
        "    {\"run\": %S, \"entries\": %d, \"waves\": %d, \"crashes\": %d, \
         \"rejoins\": %d, \"fallbacks\": %d, \"availability_permil\": %d, \
         \"missed_entries\": %d, \"max_rejoin_lag\": %d, \
         \"divergences\": %d, \"converged\": %b}%s\n"
        label o.Replica.entries o.Replica.waves o.Replica.crashes
        o.Replica.rejoins o.Replica.fallbacks o.Replica.availability_permil
        o.Replica.missed o.Replica.max_rejoin_lag
        (List.length o.Replica.divergences)
        o.Replica.converged
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run_e19_cluster ~quick () =
  section
    "E19: replicated image cluster — availability under injected replica \
     crashes";
  let requests = if quick then 24 else 48 in
  let base = { Replica.default_params with Replica.requests } in
  let runs =
    [ ("fault-free", base);
      ("single-crash", { base with Replica.crash_seed = Some 5 });
      ("torn-checkpoint",
       { base with Replica.crash_seed = Some 5;
         Replica.scenario = Some Replica.Torn_checkpoint });
      ("double-crash",
       { base with Replica.crash_seed = Some 5;
         Replica.scenario = Some Replica.Double_crash }) ]
  in
  let rows = List.map (fun (label, p) -> (label, Replica.run p)) runs in
  Format.fprintf fmt
    "  %-16s %7s %7s %9s %6s %5s %s@." "run" "crashes" "rejoins" "fallbacks"
    "avail" "lag" "verdict";
  List.iter
    (fun (label, (o : Replica.outcome)) ->
      Format.fprintf fmt "  %-16s %7d %7d %9d %6d %5d %s@." label
        o.Replica.crashes o.Replica.rejoins o.Replica.fallbacks
        o.Replica.availability_permil o.Replica.max_rejoin_lag
        (if o.Replica.converged && o.Replica.divergences = [] then
           "converged"
         else "DIVERGED"))
    rows;
  (* the cluster's whole claim is that a rejoined replica reproduces the
     reference fingerprint — fail the harness on any divergence *)
  List.iter
    (fun (label, (o : Replica.outcome)) ->
      if (not o.Replica.converged) || o.Replica.divergences <> [] then begin
        Format.fprintf fmt
          "@.FAIL: %s run did not converge to the reference fingerprint@."
          label;
        List.iter
          (fun d -> Format.fprintf fmt "  %s@." d)
          o.Replica.divergences;
        exit 1
      end)
    rows;
  (* the crash rows must actually exercise the recovery path *)
  (match List.assoc_opt "single-crash" rows with
   | Some o when o.Replica.rejoins = 0 ->
       Format.fprintf fmt "@.FAIL: the single-crash run never rejoined@.";
       exit 1
   | _ -> ());
  write_cluster_json ~requests rows;
  Format.fprintf fmt "@.(rows written to %s)@." cluster_json_file

(* --- E8/E10: scavenge economics --- *)

let run_scavenge ~quick () =
  section "E8: scavenge economics (section 3.1)";
  let iterations = if quick then 8_000 else 30_000 in
  Gc_study.print_rows fmt
    ~label:
      "Eden size sweep (one allocator): interval grows with s, share stays small"
    (Gc_study.eden_sweep ~iterations ());
  Format.fprintf fmt "@.";
  Gc_study.print_rows fmt
    ~label:"k allocators with eden k*s: the scavenge interval holds"
    (Gc_study.scaling_sweep ~iterations ())

let run_parallel_scavenge ~quick () =
  section
    "E10: applying multiple processors to the scavenge (future work in the paper)";
  let iterations = if quick then 8_000 else 30_000 in
  (match !sanitize_mode with
   | Sanitizer.Off -> ()
   | Sanitizer.Report | Sanitizer.Strict ->
       Format.fprintf fmt
         "(sanitizer on: claim/chunk invariants and a full heap check run \
          after every parallel collection)@.@.");
  Gc_study.print_rows fmt
    ~label:"4 busy allocators, eden 80 KB, k scavenge workers"
    (Gc_study.parallel_scavenge_sweep ~sanitize:!sanitize_mode ~iterations ())

(* --- instrumentation: the paper's section-6 plan, realized --- *)

let run_instrumentation ~quick () =
  section
    "Instrumentation (paper section 6): resource contention under MS + 4 busy";
  let vm = Macro.prepare_vm ~config_tweak:tweak Macro.Ms_busy in
  let b =
    { (List.find (fun (b : Macro.benchmark) -> b.Macro.key = "organization")
         Macro.benchmarks)
      with Macro.reps = (if quick then 4 else 12) }
  in
  ignore (Macro.run_on vm b);
  Instrumentation.print fmt (Instrumentation.gather vm);
  if !trace_dump > 0 then
    Trace.dump fmt (Sanitizer.trace (Vm.sanitizer vm)) ~n:!trace_dump

(* --- E12: micro benchmarks --- *)

let run_micro () =
  section "E12: micro benchmarks";
  (* simulated cycle costs per operation, measured from a calibration run *)
  let vm = Vm.create (Config.ms ~processors:1 ()) in
  let measure label src =
    let st = vm.Vm.states.(0) in
    let steps0 = st.State.steps in
    let c0 = Vm.cycles vm in
    ignore (Vm.eval vm src);
    let steps = st.State.steps - steps0 in
    let cycles = Vm.cycles vm - c0 in
    Format.fprintf fmt "  %-44s %8.1f cycles/bytecode (%d bytecodes)@." label
      (float_of_int cycles /. float_of_int (max 1 steps))
      steps
  in
  Format.fprintf fmt "Simulated costs (MS uniprocessor):@.";
  measure "jump loop (bounded whileTrue)"
    "| i | i := 0. [i < 20000] whileTrue: [i := i + 1]";
  measure "send-heavy (printString loop)" "1 to: 800 do: [:i | i printString]";
  measure "allocation-heavy (Array new: 8 loop)"
    "1 to: 4000 do: [:i | Array new: 8]";
  (* real time of the simulator itself, via bechamel *)
  let open Bechamel in
  let open Toolkit in
  Format.fprintf fmt "@.Real (host) time of simulator internals:@.";
  let heap_for_alloc =
    Heap.create ~old_words:4096 ~eden_words:262144 ~survivor_words:4096 ()
  in
  let cls =
    Heap.alloc_old heap_for_alloc ~slots:0 ~raw:false ~cls:Oop.sentinel ()
  in
  let counter = ref 0 in
  let lock = Spinlock.make ~enabled:true ~cost:Cost_model.firefly "bench" in
  let eval_vm = Vm.create (Config.testing ()) in
  let tests =
    [ Test.make ~name:"oop tag/untag"
        (Staged.stage (fun () -> Oop.small_val (Oop.of_small 42)));
      Test.make ~name:"opcode decode"
        (Staged.stage (fun () ->
             Opcode.tag (Opcode.encode (Opcode.Push_temp 3))));
      Test.make ~name:"heap alloc (8 slots)"
        (Staged.stage (fun () ->
             if Heap.eden_avail heap_for_alloc ~vp:0 < 64 then
               ignore (Scavenger.scavenge heap_for_alloc);
             ignore
               (Heap.alloc_new heap_for_alloc ~vp:0 ~slots:8 ~raw:false ~cls ())));
      Test.make ~name:"spinlock locked_op"
        (Staged.stage (fun () ->
             counter := !counter + 100;
             ignore (Spinlock.locked_op lock ~now:!counter ~op_cycles:10)));
      Test.make ~name:"eval '3 + 4'"
        (Staged.stage (fun () -> ignore (Vm.eval eval_vm "3 + 4")));
    ]
  in
  let grouped = Test.make_grouped ~name:"simulator" ~fmt:"%s %s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name r acc -> (name, r) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Format.fprintf fmt "  %-44s %12.1f ns/run@." name est
      | Some _ | None -> Format.fprintf fmt "  %-44s (no estimate)@." name)
    rows

(* --- driver --- *)

let all_sections ~quick =
  [ ("figure1", fun () -> run_figure1 ());
    ("table1", fun () -> run_table1 ());
    ("table3", fun () -> run_table3 ());
    ("table2", fun () -> run_table2 ~quick ());
    ("figure2", fun () -> run_table2 ~quick ());
    ("ablation-contexts", fun () -> run_ablation_contexts ~quick ());
    ("ablation-cache", fun () -> run_ablation_cache ~quick ());
    ("ablation-eden", fun () -> run_ablation_eden ~quick ());
    ("ablation-sched", fun () -> run_ablation_sched ~quick ());
    ("e16-steal", fun () -> run_e16_steal ~quick ());
    ("e17-server", fun () -> run_e17_server ~quick ());
    ("e18-gc", fun () -> run_e18_gc ~quick ());
    ("e19-cluster", fun () -> run_e19_cluster ~quick ());
    ("scavenge", fun () -> run_scavenge ~quick ());
    ("instrumentation", fun () -> run_instrumentation ~quick ());
    ("parallel-scavenge", fun () -> run_parallel_scavenge ~quick ());
    ("micro", fun () -> run_micro ()) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  List.iter
    (fun a ->
      match String.index_opt a '=' with
      | Some i when String.sub a 0 i = "--sanitize" ->
          let v = String.sub a (i + 1) (String.length a - i - 1) in
          sanitize_mode :=
            (match v with
             | "off" -> Sanitizer.Off
             | "report" -> Sanitizer.Report
             | "strict" -> Sanitizer.Strict
             | _ ->
                 Format.fprintf fmt
                   "unknown sanitize mode %s (off, report or strict)@." v;
                 exit 2)
      | Some i when String.sub a 0 i = "--trace-dump" ->
          trace_dump :=
            int_of_string (String.sub a (i + 1) (String.length a - i - 1))
      | _ -> ())
    args;
  let wanted =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--"))
      args
  in
  let sections = all_sections ~quick in
  Format.fprintf fmt
    "Multiprocessor Smalltalk (Pallas & Ungar, PLDI 1988) - reproduction harness@.";
  Format.fprintf fmt
    "Simulated Firefly: 5 processors at 1 MIPS, 80 KB eden, Generation Scavenging@.";
  match wanted with
  | [] ->
      List.iter (fun (name, f) -> if name <> "figure2" then f ()) sections
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> f ()
          | None ->
              Format.fprintf fmt "unknown section %s; available: %s@." name
                (String.concat ", " (List.map fst sections)))
        names
