(* mst - the Multiprocessor Smalltalk command line.

     mst eval "3 + 4"                     evaluate an expression
     mst eval -p 5 --state busy EXPR      with background competition
     mst run FILE.st                      load classes, then evaluate Main
     mst explore --seeds=50               fuzz the schedule, shrink failures
     mst faults --campaign=crash          seeded fault campaign over benchmarks
     mst faults --deadlock --dump=F       hunt + shrink a watchdog deadlock
     mst faults --replay=F                replay a saved fault plan
     mst disasm CLASS SELECTOR            disassemble a kernel method
     mst decompile CLASS SELECTOR         decompile a kernel method
     mst browse CLASS                     definition, hierarchy, selectors
     mst bench SECTION...                 same sections as bench/main.exe *)

open Cmdliner

let processors =
  let doc = "Number of simulated processors." in
  Arg.(value & opt int 1 & info [ "p"; "processors" ] ~doc)

let state =
  let doc = "Background competition: none, idle or busy (four Processes)." in
  Arg.(value & opt string "none" & info [ "state" ] ~doc)

let sanitize =
  let doc =
    "Serialization sanitizer: $(b,off), $(b,report) (accumulate violations \
     into the report) or $(b,strict) (fail on the first violation)."
  in
  let modes =
    [ ("off", Sanitizer.Off); ("report", Sanitizer.Report);
      ("strict", Sanitizer.Strict) ]
  in
  Arg.(value & opt (enum modes) Sanitizer.Off & info [ "sanitize" ] ~doc)

let scheduler =
  let doc =
    "Ready-queue discipline: $(b,locked) (one global queue under the \
     scheduler lock) or $(b,stealing) (per-processor deques with work \
     stealing, E16)."
  in
  let strategies =
    [ ("locked", Config.Sched_locked); ("stealing", Config.Sched_stealing) ]
  in
  Arg.(value & opt (enum strategies) Config.Sched_locked
       & info [ "scheduler" ] ~doc)

let trace_dump =
  let doc = "After the run, print the last $(docv) sanitizer trace events." in
  Arg.(value & opt int 0 & info [ "trace-dump" ] ~docv:"N" ~doc)

let engine =
  let doc =
    "Simulation engine: $(b,scan) (rescan every processor per event) or \
     $(b,calendar) (event calendar: pending-heap, parked idle processors, \
     timer heap, E17)."
  in
  let engines =
    [ ("scan", Config.Engine_scan); ("calendar", Config.Engine_calendar) ]
  in
  Arg.(value & opt (enum engines) Config.Engine_scan & info [ "engine" ] ~doc)

let major =
  let doc =
    "Run the incremental old-space mark-sweep collector (E18): bounded \
     slices at step boundaries reclaim tenured garbage onto free lists, \
     and $(b,Image_full) becomes a last resort after a forced cycle."
  in
  Arg.(value & flag & info [ "major" ] ~doc)

let major_budget =
  let doc =
    "Target collector cycles per major slice (with $(b,--major)); smaller \
     budgets mean shorter pauses and more slices per cycle."
  in
  Arg.(value & opt (some int) None & info [ "major-budget" ] ~docv:"CYCLES"
       ~doc)

let make_vm ?(sanitize = Sanitizer.Off) ?(scheduler = Config.Sched_locked)
    ?(engine = Config.Engine_scan) ?(major = false) ?major_budget processors
    state =
  let config =
    if processors <= 1 && state = "none" && scheduler = Config.Sched_locked
    then Config.baseline_bs ()
    else Config.ms ~processors:(max processors 1) ()
  in
  let config = { config with Config.sanitize; Config.scheduler;
                 Config.engine; Config.major_enabled = major } in
  let config =
    match major_budget with
    | Some b -> { config with Config.major_budget = b }
    | None -> config
  in
  let vm = Vm.create config in
  (match state with
   | "idle" -> ignore (Workloads.spawn_idle vm 4)
   | "busy" -> ignore (Workloads.spawn_busy vm 4)
   | _ -> ());
  vm

let report_time vm =
  Printf.printf "(simulated: %.3f s, scavenges: %d)\n" (Vm.seconds vm)
    (Heap.scavenge_count vm.Vm.heap)

(* Prints the sanitizer report and fails the invocation when violations
   accumulated: a scripted `--sanitize=report` run must exit nonzero just
   as a strict run does, or CI would scroll the violations past. *)
let report_sanitizer vm ~trace_dump =
  let san = Vm.sanitizer vm in
  if Sanitizer.active san then Sanitizer.print_report san;
  if trace_dump > 0 then
    Trace.dump Format.std_formatter (Sanitizer.trace san) ~n:trace_dump;
  if Sanitizer.violation_count san > 0 then exit 1

(* Structured engine failures: print the processor and clock, dump the
   trace-ring tail when asked, and fail the invocation.  (The ring only
   records while the sanitizer is active, so pair `--trace-dump` with
   `--sanitize=report` or `strict`.) *)
let catching_faults vm ~trace_dump f =
  try f () with
  | Fault.Fatal info ->
      Printf.eprintf "fatal: %s\n" (Fault.describe_fatal info);
      report_sanitizer vm ~trace_dump;
      exit 1
  | Fault.Deadlock_suspected r ->
      Printf.eprintf "deadlock: %s\n" (Fault.describe_deadlock r);
      report_sanitizer vm ~trace_dump;
      exit 1

(* --- eval --- *)

let eval_cmd =
  let expr = Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR") in
  let run processors state sanitize scheduler engine major major_budget
      trace_dump expr =
    let vm =
      make_vm ~sanitize ~scheduler ~engine ~major ?major_budget processors
        state
    in
    catching_faults vm ~trace_dump (fun () ->
        try print_endline (Vm.eval_to_string vm expr) with
        | State.Vm_error msg -> Printf.eprintf "error: %s\n" msg
        | Interp.Does_not_understand msg ->
            Printf.eprintf "doesNotUnderstand: %s\n" msg
        | Sanitizer.Violation msg ->
            Printf.eprintf "sanitizer: %s\n" msg;
            report_sanitizer vm ~trace_dump;
            exit 1);
    let tr = Vm.transcript vm in
    if tr <> "" then Printf.printf "--- transcript ---\n%s\n" tr;
    report_time vm;
    report_sanitizer vm ~trace_dump
  in
  Cmd.v (Cmd.info "eval" ~doc:"Evaluate a Smalltalk expression")
    Term.(const run $ processors $ state $ sanitize $ scheduler $ engine
          $ major $ major_budget $ trace_dump $ expr)

(* --- run --- *)

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run processors state sanitize scheduler engine major major_budget
      trace_dump file =
    let vm =
      make_vm ~sanitize ~scheduler ~engine ~major ?major_budget processors
        state
    in
    let source = In_channel.with_open_text file In_channel.input_all in
    Vm.load_classes vm source;
    (match Universe.find_class vm.Vm.u "Main" with
     | Some _ ->
         catching_faults vm ~trace_dump (fun () ->
             try print_endline (Vm.eval_to_string vm "Main new main")
             with Sanitizer.Violation msg ->
               Printf.eprintf "sanitizer: %s\n" msg;
               report_sanitizer vm ~trace_dump;
               exit 1)
     | None -> print_endline "(no Main class; classes loaded)");
    let tr = Vm.transcript vm in
    if tr <> "" then print_string tr;
    report_time vm;
    report_sanitizer vm ~trace_dump
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Load a class file (image-definition format) and run Main new main")
    Term.(const run $ processors $ state $ sanitize $ scheduler $ engine
          $ major $ major_budget $ trace_dump $ file)

(* --- explore --- *)

let explore_cmd =
  let seeds =
    let doc = "Number of exploration seeds to run." in
    Arg.(value & opt int 20 & info [ "seeds" ] ~doc)
  in
  let first_seed =
    let doc = "First seed (seeds run from $(docv) upward)." in
    Arg.(value & opt int 0 & info [ "first-seed" ] ~docv:"N" ~doc)
  in
  let e_processors =
    let doc = "Number of simulated processors." in
    Arg.(value & opt int 5 & info [ "p"; "processors" ] ~doc)
  in
  let config_name =
    let doc =
      "Configuration to explore: $(b,ms) (published MS, must stay clean), \
       $(b,stealing) (work-stealing scheduler checked differentially \
       against the locked queue — must stay clean), $(b,calendar) \
       (event-calendar engine checked differentially against the scan \
       engine, E17 — must stay clean), $(b,major) (incremental old-space \
       collector checked differentially against a collector-free run, \
       E18 — must stay clean), $(b,bs-unlocked) \
       (locking disabled on several processors — broken on purpose), \
       $(b,ctx-unbracketed) (shared free-context list with its lock \
       bracket skipped — broken on purpose), $(b,steal-unlocked) (deque \
       lock brackets skipped — broken on purpose) or $(b,major-nobarrier) \
       (the collector's write barrier disabled — broken on purpose)."
    in
    let configs =
      [ ("ms", `Ms); ("stealing", `Stealing); ("calendar", `Calendar);
        ("major", `Major); ("bs-unlocked", `Unlocked);
        ("ctx-unbracketed", `Ctx); ("steal-unlocked", `StealUnlocked);
        ("major-nobarrier", `MajorNoBarrier) ]
    in
    Arg.(value & opt (enum configs) `Ms & info [ "config" ] ~doc)
  in
  let replay =
    let doc = "Replay a saved decision trace instead of exploring." in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let expect_violation =
    let doc =
      "Succeed only when the exploration (or replay) surfaces a failure — \
       for the broken configurations."
    in
    Arg.(value & flag & info [ "expect-violation" ] ~doc)
  in
  let quick =
    let doc = "Shorter workload (for smoke tests)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let shrink_budget =
    let doc = "Replays allowed for shrinking each counterexample." in
    Arg.(value & opt int 120 & info [ "shrink-budget" ] ~doc)
  in
  let dump_prefix =
    let doc = "Write shrunk counterexample traces to $(docv)-seedN.trace." in
    Arg.(value & opt string "explore-ctr" & info [ "dump" ] ~docv:"PREFIX" ~doc)
  in
  let dpor =
    let doc =
      "Systematic exploration: dynamic partial-order reduction with sleep \
       sets over the recorded decision points instead of seeded sampling \
       (E20).  Branches only where an executed run shows a race."
    in
    Arg.(value & flag & info [ "dpor" ] ~doc)
  in
  let brute =
    let doc =
      "Systematic exploration without the reduction: enumerate every \
       alternative at every decision point within the bounds.  Ground \
       truth for $(b,--dpor) on tiny workloads; explodes on real ones."
    in
    Arg.(value & flag & info [ "brute" ] ~doc)
  in
  let max_preemptions =
    let doc =
      "Preemption bound for systematic exploration: at most $(docv) forced \
       decisions per schedule."
    in
    Arg.(value & opt int 2 & info [ "max-preemptions" ] ~docv:"N" ~doc)
  in
  let max_branch =
    let doc =
      "Ignore decision points past this query index during systematic \
       exploration (bounds the tree depth on long workloads)."
    in
    Arg.(value & opt int max_int & info [ "max-branch" ] ~docv:"Q" ~doc)
  in
  let budget =
    let doc = "Execution budget for systematic exploration." in
    Arg.(value & opt int 256 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let stats =
    let doc =
      "Print detailed systematic-exploration statistics (pruned \
       alternatives, sleep-set skips, bound hits)."
    in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let run processors config_name seeds first_seed quick replay
      expect_violation shrink_budget dump_prefix dpor brute max_preemptions
      max_branch budget stats =
    (* [reference_setup] makes the stealing oracle differential: the
       reference observables come from an unperturbed run on the locked
       scheduler, so any steal-protocol divergence fails even on seeds
       the sanitizer alone would pass. *)
    let setup, config_label, reference_setup =
      let quick = if quick then Some true else None in
      match config_name with
      | `Ms -> (Explorer.ms_setup ~processors ?quick (), "ms", None)
      | `Stealing ->
          ( Explorer.stealing_setup ~processors ?quick (),
            "stealing (vs locked reference)",
            Some (Explorer.ms_setup ~processors ?quick ()) )
      | `Calendar ->
          ( Explorer.calendar_setup ~processors ?quick (),
            "calendar engine (vs scan reference)",
            Some (Explorer.ms_setup ~processors ?quick ()) )
      | `Major ->
          ( Explorer.major_setup ~processors ?quick (),
            "major collector (vs collector-free reference)",
            Some (Explorer.major_reference_setup ~processors ?quick ()) )
      | `Unlocked ->
          (Explorer.broken_unlocked_setup ~processors ?quick (), "bs-unlocked",
           None)
      | `Ctx ->
          (Explorer.broken_ctx_setup ~processors ?quick (), "ctx-unbracketed",
           None)
      | `StealUnlocked ->
          (Explorer.broken_steal_setup ~processors ?quick (), "steal-unlocked",
           None)
      | `MajorNoBarrier ->
          (Explorer.broken_major_setup ~processors ?quick (),
           "major-nobarrier", None)
    in
    let finish_with ~failed =
      if expect_violation && not failed then begin
        Printf.printf "FAIL: expected a violation, found none\n";
        exit 1
      end
      else if (not expect_violation) && failed then exit 1
      else exit 0
    in
    match replay with
    | Some file ->
        let sched =
          try Explore.load_replay file
          with Failure msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 2
        in
        Printf.printf "replaying %d decision(s) from %s on %s\n"
          (List.length sched) file config_label;
        let reference =
          Explorer.reference (Option.value reference_setup ~default:setup)
        in
        let o = Explorer.run_schedule setup sched in
        (match Explorer.check ~reference o with
         | Some what ->
             Printf.printf "replay fails the oracle: %s\n" what;
             finish_with ~failed:true
         | None ->
             Printf.printf "replay matches the reference observables\n";
             finish_with ~failed:false)
    | None when dpor || brute ->
        let mode =
          if brute then Explore.Dpor.Brute else Explore.Dpor.Dpor
        in
        if budget <= 0 then begin
          Printf.eprintf
            "error: --budget must be positive: a zero-execution exploration \
             would report vacuous success\n";
          exit 2
        end;
        Printf.printf
          "systematic exploration (%s) of %s: budget %d, at most %d forced \
           decision(s) per schedule, strict sanitizer, %d busy background \
           Process(es)\n%!"
          (if brute then "brute force" else "dpor")
          config_label budget max_preemptions setup.Explorer.busy;
        let r =
          Explorer.dpor ~mode ~max_branch ~max_flips:max_preemptions ~budget
            ~shrink_budget ?reference_setup setup
            ~log:(fun line -> Printf.printf "%s\n%!" line)
            ()
        in
        let s = r.Explorer.dpor_result.Explore.Dpor.stats in
        (* a systematic run that never executed anything proves nothing *)
        if s.Explore.Dpor.executions = 0 then begin
          Printf.eprintf
            "error: no executions ran (empty decision space or exhausted \
             budget) — refusing to report vacuous success\n";
          exit 2
        end;
        Printf.printf
          "%d execution(s), %d distinct trace(s), %d observable(s), %d \
           race(s), %d failing schedule(s)%s\n"
          s.Explore.Dpor.executions s.Explore.Dpor.distinct_traces
          s.Explore.Dpor.distinct_obs s.Explore.Dpor.races
          (List.length r.Explorer.dpor_result.Explore.Dpor.failures)
          (if s.Explore.Dpor.exhausted then " — space exhausted"
           else " — budget reached");
        if stats then
          Printf.printf
            "pruned: %d brute-eligible alternative(s) never run; %d \
             sleep-set skip(s); %d insertion(s) refused by the bounds\n"
            s.Explore.Dpor.pruned s.Explore.Dpor.sleep_skips
            s.Explore.Dpor.bounded;
        (match r.Explorer.dpor_counterexample with
         | None -> finish_with ~failed:false
         | Some c ->
             Printf.printf "first failure: %s\n" c.Explorer.dpor_what;
             if c.Explorer.dpor_shrunk = [] then begin
               Printf.printf
                 "  fails on the default schedule (empty trace; nothing to \
                  replay)\n";
               finish_with ~failed:true
             end
             else begin
               let file = Printf.sprintf "%s-dpor.trace" dump_prefix in
               Explore.save file c.Explorer.dpor_shrunk;
               let reference =
                 Explorer.reference
                   (Option.value reference_setup ~default:setup)
               in
               let from_file =
                 Explorer.run_schedule setup (Explore.load file)
               in
               let file_fails = Explorer.check ~reference from_file <> None in
               Printf.printf
                 "  shrunk to %d decision(s) -> %s (replay from file %s)\n"
                 (List.length c.Explorer.dpor_shrunk)
                 file
                 (if file_fails then "reproduces" else "DOES NOT reproduce");
               if not (c.Explorer.dpor_reproduces && file_fails) then begin
                 Printf.printf
                   "FAIL: the shrunk counterexample did not reproduce\n";
                 exit 1
               end;
               finish_with ~failed:true
             end)
    | None ->
        (* a zero-seed exploration runs nothing and would exit 0 below —
           vacuous success; refuse it instead (same for negative) *)
        if seeds <= 0 then begin
          Printf.eprintf
            "error: --seeds must be positive: a zero-seed exploration would \
             report vacuous success (use --dpor for systematic coverage)\n";
          exit 2
        end;
        Printf.printf
          "exploring %s: %d seed(s) from %d, strict sanitizer, %d busy \
           background Process(es)\n%!"
          config_label seeds first_seed setup.Explorer.busy;
        let report =
          Explorer.explore ~shrink_budget ~first_seed ?reference_setup setup
            ~seeds ~log:(fun line -> Printf.printf "%s\n%!" line)
        in
        Printf.printf
          "%d seed(s), %d distinct schedule(s), %d preemption-point \
           quer(ies), %d perturbation(s), %d counterexample(s)\n"
          report.Explorer.seeds_run report.Explorer.distinct
          report.Explorer.queries report.Explorer.perturbations
          (List.length report.Explorer.counterexamples);
        (* Save each shrunk trace and prove the file replays to the same
           failure, so `--replay=FILE` is a faithful reproducer. *)
        let all_reproduce = ref true in
        List.iter
          (fun (c : Explorer.counterexample) ->
            let file = Printf.sprintf "%s-seed%d.trace" dump_prefix c.Explorer.seed in
            Explore.save file c.Explorer.shrunk;
            let from_file =
              Explorer.run_schedule setup (Explore.load file)
            in
            let reference =
              Explorer.reference (Option.value reference_setup ~default:setup)
            in
            let file_fails =
              Explorer.check ~reference from_file <> None
            in
            if not (c.Explorer.reproduces && file_fails) then
              all_reproduce := false;
            Printf.printf
              "seed %d: %s\n  shrunk to %d decision(s) -> %s (replay from \
               file %s)\n"
              c.Explorer.seed c.Explorer.what
              (List.length c.Explorer.shrunk) file
              (if file_fails then "reproduces" else "DOES NOT reproduce"))
          report.Explorer.counterexamples;
        let failed = report.Explorer.counterexamples <> [] in
        if failed && not !all_reproduce then begin
          Printf.printf "FAIL: a shrunk counterexample did not reproduce\n";
          exit 1
        end;
        finish_with ~failed
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Explore perturbed schedules with the strict sanitizer and a \
          differential oracle; shrink and save any counterexample")
    Term.(
      const run $ e_processors $ config_name $ seeds $ first_seed $ quick
      $ replay $ expect_violation $ shrink_budget $ dump_prefix $ dpor
      $ brute $ max_preemptions $ max_branch $ budget $ stats)

(* --- faults --- *)

let faults_cmd =
  let campaign_conv =
    Arg.conv
      ( (fun s ->
          match Fault.campaign_of_name s with
          | Some c -> Ok c
          | None -> Error (`Msg (Printf.sprintf "unknown campaign %S" s))),
        fun fmt c -> Format.pp_print_string fmt (Fault.campaign_name c) )
  in
  let campaign =
    let doc =
      "Fault family to sample: $(b,crash), $(b,stall), $(b,lock), \
       $(b,device), $(b,gc), $(b,mixed) or $(b,replica) (crash-and-rejoin \
       scenarios over the replicated image cluster, E19).  Defaults to \
       $(b,mixed) for campaigns and $(b,lock) for $(b,--deadlock) hunts."
    in
    Arg.(value & opt (some campaign_conv) None & info [ "campaign" ] ~doc)
  in
  let seeds =
    let doc = "Number of seeded runs." in
    Arg.(value & opt int 8 & info [ "seeds" ] ~doc)
  in
  let first_seed =
    let doc = "First seed (seeds run from $(docv) upward)." in
    Arg.(value & opt int 0 & info [ "first-seed" ] ~docv:"N" ~doc)
  in
  let quick =
    let doc = "Shorter workload (for smoke tests)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let watchdog =
    let doc =
      "Spin-watchdog bound in Delay quanta (0 disables the watchdog)."
    in
    Arg.(value & opt int Fault_study.default_watchdog
         & info [ "watchdog" ] ~docv:"QUANTA" ~doc)
  in
  let backoff =
    let doc =
      "Retries before a contended spin starts exponential backoff \
       (0 disables backoff)."
    in
    Arg.(value & opt int Fault_study.default_backoff
         & info [ "backoff" ] ~docv:"RETRIES" ~doc)
  in
  let deadlock =
    let doc =
      "Hunt for a watchdog-detected deadlock (a crashed lock holder), \
       shrink its fault plan to a minimal reproducer and confirm the \
       replay."
    in
    Arg.(value & flag & info [ "deadlock" ] ~doc)
  in
  let dump =
    let doc = "With $(b,--deadlock): save the shrunk fault plan to $(docv)." in
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"FILE" ~doc)
  in
  let replay =
    let doc = "Replay a saved fault plan instead of sampling." in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let expect_deadlock =
    let doc =
      "Succeed only when the replayed plan still trips the watchdog."
    in
    Arg.(value & flag & info [ "expect-deadlock" ] ~doc)
  in
  let shrink_budget =
    let doc = "Replays allowed for shrinking a deadlock's fault plan." in
    Arg.(value & opt int 120 & info [ "shrink-budget" ] ~doc)
  in
  let setup_for ~quick ~watchdog ~backoff =
    let quick = if quick then Some true else None in
    Explorer.fault_setup ?quick ~watchdog_quanta:watchdog
      ~backoff_quanta:backoff ()
  in
  let run_replay ~file ~quick ~watchdog ~backoff ~expect_deadlock =
    let plan =
      try Fault.load_replay file
      with Failure msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    in
    Printf.printf "replaying %d fault(s) from %s\n%!" (List.length plan) file;
    let setup = setup_for ~quick ~watchdog ~backoff in
    let o = Explorer.run_faults setup (Fault.replay plan) in
    match o.Explorer.deadlock with
    | Some r ->
        Printf.printf "deadlock reproduced: %s\n" (Fault.describe_deadlock r);
        exit (if expect_deadlock then 0 else 1)
    | None ->
        (match o.Explorer.error with
         | Some e ->
             Printf.printf "replay failed without a deadlock: %s\n" e;
             exit 1
         | None ->
             Printf.printf "replay completed without a deadlock\n";
             if expect_deadlock then begin
               Printf.printf "FAIL: expected the watchdog to trip\n";
               exit 1
             end;
             exit 0)
  in
  let run_hunt ~campaign ~seeds ~first_seed ~quick ~watchdog ~backoff
      ~shrink_budget ~dump =
    if watchdog <= 0 then begin
      Printf.eprintf "error: --deadlock needs the watchdog (--watchdog > 0)\n";
      exit 2
    end;
    let campaign = Option.value campaign ~default:Fault.Lock in
    Printf.printf
      "hunting a deadlock: campaign %s, %d seed(s) from %d, watchdog %d \
       quanta\n%!"
      (Fault.campaign_name campaign) seeds first_seed watchdog;
    let setup = setup_for ~quick ~watchdog ~backoff in
    let h =
      Explorer.hunt_deadlock ~params:(Fault.params_of_campaign campaign)
        ~shrink_budget ~first_seed setup ~seeds
        ~log:(fun line -> Printf.printf "%s\n%!" line)
    in
    match (h.Explorer.found_seed, h.Explorer.report) with
    | None, _ | _, None ->
        Printf.printf "no deadlock in %d seed(s)\n" h.Explorer.hunt_seeds;
        exit 1
    | Some seed, Some r ->
        Printf.printf "seed %d: %s\n" seed (Fault.describe_deadlock r);
        Printf.printf
          "shrunk %d fault(s) to %d in %d replay(s); independent replays %s\n"
          (List.length h.Explorer.original_plan)
          (List.length h.Explorer.shrunk_plan)
          h.Explorer.hunt_probes
          (if h.Explorer.replay_matches then "match" else "DIVERGE");
        (match dump with
         | None -> ()
         | Some file ->
             Fault.save file h.Explorer.shrunk_plan;
             (* Prove the file is a faithful reproducer, as explore does
                for its decision traces. *)
             let o = Explorer.run_faults setup (Fault.replay (Fault.load file)) in
             (match o.Explorer.deadlock with
              | Some r' when r' = r ->
                  Printf.printf "saved %s (replays to the same report)\n" file
              | Some r' ->
                  Printf.printf "saved %s, but the replay differs: %s\n" file
                    (Fault.describe_deadlock r');
                  exit 1
              | None ->
                  Printf.printf "saved %s, but the replay DOES NOT reproduce\n"
                    file;
                  exit 1));
        exit (if h.Explorer.replay_matches then 0 else 1)
  in
  let run_campaign ~campaign ~seeds ~first_seed ~quick ~watchdog ~backoff =
    let campaign = Option.value campaign ~default:Fault.Mixed in
    match campaign with
    | Fault.Replica ->
        (* the replica campaign runs the cluster, not a macro benchmark:
           its oracle is the cluster's own divergence detector *)
        let summary =
          Fault_study.run_replica_campaign ~seeds ~first_seed ~quick
            ~log:(fun line -> Printf.printf "%s\n%!" line) ()
        in
        Fault_study.print_replica Format.std_formatter summary;
        if summary.Fault_study.r_incorrect > 0 then exit 1
    | _ ->
        let summary =
          Fault_study.run_campaign ~campaign ~seeds ~first_seed ~quick
            ~watchdog_quanta:watchdog ~backoff_quanta:backoff
            ~log:(fun line -> Printf.printf "%s\n%!" line) ()
        in
        Fault_study.print Format.std_formatter summary;
        if summary.Fault_study.failed > 0 then exit 1
  in
  let run campaign seeds first_seed quick watchdog backoff deadlock dump
      replay expect_deadlock shrink_budget =
    match replay with
    | Some file -> run_replay ~file ~quick ~watchdog ~backoff ~expect_deadlock
    | None ->
        if deadlock then
          run_hunt ~campaign ~seeds ~first_seed ~quick ~watchdog ~backoff
            ~shrink_budget ~dump
        else
          run_campaign ~campaign ~seeds ~first_seed ~quick ~watchdog ~backoff
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Seeded fault-injection campaigns (processor crashes, lock-holder \
          failures, device timeouts, scavenge-worker deaths) over the macro \
          benchmarks, with watchdog-deadlock hunting and fault-plan replay")
    Term.(
      const run $ campaign $ seeds $ first_seed $ quick $ watchdog $ backoff
      $ deadlock $ dump $ replay $ expect_deadlock $ shrink_budget)

(* --- serve --- *)

let serve_cmd =
  let sessions =
    let doc = "Simulated user sessions issuing requests." in
    Arg.(value & opt int 8 & info [ "sessions" ] ~doc)
  in
  let workers =
    let doc = "Smalltalk server Processes in the worker pool." in
    Arg.(value & opt int 4 & info [ "workers" ] ~doc)
  in
  let loop =
    let doc =
      "Arrival generator: $(b,closed) (each session thinks, then issues \
       its next request after the previous completes) or $(b,open) \
       (fixed inter-arrival intervals, completions notwithstanding)."
    in
    Arg.(value
         & opt (enum [ ("closed", Server.Closed); ("open", Server.Open) ])
             Server.Closed
         & info [ "loop" ] ~doc)
  in
  let requests =
    let doc = "Requests per session." in
    Arg.(value & opt int 4 & info [ "requests" ] ~doc)
  in
  let think_ms =
    let doc = "Closed loop: think time between completion and the next \
               request (simulated ms)." in
    Arg.(value & opt int 200 & info [ "think-ms" ] ~doc)
  in
  let interval_ms =
    let doc = "Open loop: inter-arrival interval within a session \
               (simulated ms)." in
    Arg.(value & opt int 200 & info [ "interval-ms" ] ~doc)
  in
  let admit =
    let doc = "Admission control: maximum in-flight requests (0 = \
               unlimited); arrivals over the cap are rejected." in
    Arg.(value & opt int 0 & info [ "admit" ] ~doc)
  in
  let engine =
    let doc =
      "Simulation engine: $(b,scan) (rescan every processor per event) or \
       $(b,calendar) (event calendar with parked idle processors, E17)."
    in
    Arg.(value
         & opt (enum [ ("scan", Config.Engine_scan);
                       ("calendar", Config.Engine_calendar) ])
             Config.Engine_calendar
         & info [ "engine" ] ~doc)
  in
  let differential =
    let doc =
      "Run the same workload on both engines and fail unless they agree \
       on completions, rejections and per-session counts."
    in
    Arg.(value & flag & info [ "differential" ] ~doc)
  in
  let serve_config ~processors ~sanitize ~scheduler ~engine ~major
      ~major_budget =
    let c =
      { (Config.ms ~processors ()) with
        Config.sanitize; Config.scheduler; Config.engine;
        Config.major_enabled = major }
    in
    match major_budget with
    | Some b -> { c with Config.major_budget = b }
    | None -> c
  in
  let run_one ~label config p =
    let t0 = Unix.gettimeofday () in
    let vm, stats = Server.run config p in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf "--- %s: %d sessions (%s loop), %d workers, %d \
                   processors ---\n"
      label p.Server.sessions
      (match p.Server.loop with Server.Open -> "open" | Server.Closed -> "closed")
      p.Server.workers config.Config.processors;
    Format.printf "%a" (fun fmt -> Server.pp_stats fmt ~cm:config.Config.cost)
      stats;
    Printf.printf "host: %.3f s wall, %.0f engine events/s, %.0f bytecodes/s\n"
      wall
      (float_of_int stats.Server.engine_events /. wall)
      (float_of_int stats.Server.steps /. wall);
    let san = Vm.sanitizer vm in
    if Sanitizer.active san then Sanitizer.print_report san;
    if Sanitizer.violation_count san > 0 then exit 1;
    stats
  in
  let run processors sanitize scheduler major major_budget sessions workers
      loop requests think_ms interval_ms admit engine differential =
    let p =
      { Server.sessions; workers; loop; requests; think_ms; interval_ms;
        admit }
    in
    let processors = max processors 2 in
    let config =
      serve_config ~processors ~sanitize ~scheduler ~engine ~major
        ~major_budget
    in
    let stats = run_one ~label:"serve" config p in
    if differential then begin
      let other =
        match engine with
        | Config.Engine_scan -> Config.Engine_calendar
        | Config.Engine_calendar -> Config.Engine_scan
      in
      let config' =
        serve_config ~processors ~sanitize ~scheduler ~engine:other ~major
          ~major_budget
      in
      let stats' = run_one ~label:"serve (reference engine)" config' p in
      let agree =
        stats.Server.offered = stats'.Server.offered
        && stats.Server.completed = stats'.Server.completed
        && stats.Server.rejected = stats'.Server.rejected
        && stats.Server.per_session = stats'.Server.per_session
        && stats.Server.quiesced && stats'.Server.quiesced
      in
      if agree then print_endline "differential: engines agree"
      else begin
        print_endline "differential: ENGINES DISAGREE";
        exit 1
      end
    end
    else if not stats.Server.quiesced then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the image-server workload (E17): simulated user sessions \
          issue browse/inspect/compile requests against a pool of \
          Smalltalk worker Processes, with per-request latency \
          percentiles")
    Term.(
      const run $ processors $ sanitize $ scheduler $ major $ major_budget
      $ sessions $ workers $ loop $ requests $ think_ms $ interval_ms
      $ admit $ engine $ differential)

(* --- cluster --- *)

let cluster_cmd =
  let replicas =
    let doc = "Simulated machines in the cluster." in
    Arg.(value & opt int Replica.default_params.Replica.replicas
         & info [ "replicas" ] ~doc)
  in
  let requests =
    let doc = "Command-log entries to generate and serve." in
    Arg.(value & opt int Replica.default_params.Replica.requests
         & info [ "requests" ] ~doc)
  in
  let sessions =
    let doc = "Client sessions issuing the requests (1..16)." in
    Arg.(value & opt int Replica.default_params.Replica.sessions
         & info [ "sessions" ] ~doc)
  in
  let shards =
    let doc = "Application shards the requests are keyed to (1..16)." in
    Arg.(value & opt int Replica.default_params.Replica.shards
         & info [ "shards" ] ~doc)
  in
  let slots =
    let doc =
      "Worker Processes (and virtual processors) per replica: the maximum \
       number of independent log entries dispatched in one wave."
    in
    Arg.(value & opt int Replica.default_params.Replica.slots
         & info [ "slots" ] ~doc)
  in
  let checkpoint_every =
    let doc = "Log entries between checkpoints." in
    Arg.(value & opt int Replica.default_params.Replica.checkpoint_every
         & info [ "checkpoint-every" ] ~doc)
  in
  let log_seed =
    let doc = "Workload seed for the generated command log." in
    Arg.(value & opt int Replica.default_params.Replica.log_seed
         & info [ "log-seed" ] ~doc)
  in
  let crash_seed =
    let doc =
      "Arm the fault injector with this seed: replica crashes are sampled \
       at log-entry boundaries and crashed replicas rejoin from their \
       checkpoints."
    in
    Arg.(value & opt (some int) None & info [ "crash-seed" ] ~docv:"SEED" ~doc)
  in
  let scenario =
    let doc =
      "Aim the injected crash at the recovery path: $(b,torn-checkpoint) \
       (the crash tears the victim's newest checkpoint), \
       $(b,crash-mid-replay) (the victim dies again halfway through \
       replay) or $(b,double-crash) (the second fault targets the same \
       replica again)."
    in
    Arg.(value
         & opt (some (enum
             [ ("torn-checkpoint", Replica.Torn_checkpoint);
               ("crash-mid-replay", Replica.Crash_mid_replay);
               ("double-crash", Replica.Double_crash) ])) None
         & info [ "scenario" ] ~doc)
  in
  let skip_lsn =
    let doc =
      "Deliberately-divergent configuration: replica 0 silently drops log \
       entry $(docv).  The divergence detector must catch it (pair with \
       $(b,--expect-divergence))."
    in
    Arg.(value & opt (some int) None & info [ "skip-lsn" ] ~docv:"LSN" ~doc)
  in
  let dir =
    let doc = "Checkpoint and log directory (a temp directory when absent)." in
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let expect_rejoin =
    let doc =
      "Succeed only when at least one replica crashed and rejoined — for \
       smoke tests that must prove the recovery path ran."
    in
    Arg.(value & flag & info [ "expect-rejoin" ] ~doc)
  in
  let expect_divergence =
    let doc =
      "Succeed only when the divergence detector fired — for the \
       deliberately-divergent configuration."
    in
    Arg.(value & flag & info [ "expect-divergence" ] ~doc)
  in
  let run replicas requests sessions shards slots checkpoint_every log_seed
      crash_seed scenario skip_lsn dir expect_rejoin expect_divergence =
    let p =
      { Replica.default_params with
        Replica.replicas; requests; sessions; shards; slots; checkpoint_every;
        log_seed; crash_seed; scenario; skip_lsn; dir }
    in
    let o =
      try Replica.run ~log:(fun line -> Printf.printf "%s\n%!" line) p with
      | Replica.Cluster_error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2
      | Cmdlog.Corrupt { path; what } ->
          Printf.eprintf "error: corrupt command log %s: %s\n" path what;
          exit 2
      | Snapshot.Corrupt { path; what } ->
          Printf.eprintf "error: corrupt checkpoint %s: %s\n" path what;
          exit 2
    in
    Format.printf "%a" Replica.pp o;
    if o.Replica.fault_plan <> [] then begin
      Printf.printf "fault plan:\n";
      List.iter
        (fun line -> Printf.printf "  %s\n" line)
        (String.split_on_char '\n'
           (String.trim (Format.asprintf "%a" Fault.pp o.Replica.fault_plan)))
    end;
    let failed = ref false in
    let fail fmt =
      Printf.ksprintf (fun m -> Printf.printf "FAIL: %s\n" m; failed := true)
        fmt
    in
    if expect_divergence then begin
      if o.Replica.divergences = [] then
        fail "expected the divergence detector to fire; it did not"
    end
    else begin
      if o.Replica.divergences <> [] then fail "replicas diverged";
      if not o.Replica.converged then
        fail "cluster did not converge to the reference fingerprint"
    end;
    if expect_rejoin && o.Replica.rejoins = 0 then
      fail "expected a crash and rejoin; none happened (try another \
            --crash-seed)";
    exit (if !failed then 1 else 0)
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run the replicated image cluster (E19): R simulated machines \
          execute a durable command log in dependency-aware waves, with \
          checkpoints, injected replica crashes, crash-rejoin by \
          restore-and-replay, and a divergence detector against a \
          non-replicated reference")
    Term.(
      const run $ replicas $ requests $ sessions $ shards $ slots
      $ checkpoint_every $ log_seed $ crash_seed $ scenario $ skip_lsn $ dir
      $ expect_rejoin $ expect_divergence)

(* --- disasm / decompile / browse --- *)

let find_method vm cls_name sel_name =
  match Universe.find_class vm.Vm.u cls_name with
  | None -> Error (Printf.sprintf "unknown class %s" cls_name)
  | Some cls ->
      let sel = Universe.intern vm.Vm.u sel_name in
      let dict = Heap.get vm.Vm.heap cls Layout.Class.method_dict in
      (match Class_builder.dict_find vm.Vm.u dict sel with
       | Some m -> Ok m
       | None -> Error (Printf.sprintf "%s does not define #%s" cls_name sel_name))

let method_cmd name doc render =
  let cls = Arg.(required & pos 0 (some string) None & info [] ~docv:"CLASS") in
  let sel = Arg.(required & pos 1 (some string) None & info [] ~docv:"SELECTOR") in
  let run cls_name sel_name =
    let vm = make_vm 1 "none" in
    match find_method vm cls_name sel_name with
    | Ok m -> print_string (render vm m)
    | Error e -> Printf.eprintf "error: %s\n" e
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ cls $ sel)

let disasm_cmd =
  method_cmd "disasm" "Disassemble a method"
    (fun vm m -> Method_mirror.disassemble vm.Vm.u m)

let decompile_cmd =
  method_cmd "decompile" "Decompile a method back to source"
    (fun vm m -> Method_mirror.decompile vm.Vm.u m)

let browse_cmd =
  let cls = Arg.(required & pos 0 (some string) None & info [] ~docv:"CLASS") in
  let run cls_name =
    let vm = make_vm 1 "none" in
    match Universe.find_class vm.Vm.u cls_name with
    | None -> Printf.eprintf "error: unknown class %s\n" cls_name
    | Some _ ->
        let s expr = Heap.string_value vm.Vm.heap (Vm.eval vm expr) in
        print_endline (s (cls_name ^ " definitionString"));
        print_endline "";
        print_endline "hierarchy:";
        print_string (s (cls_name ^ " hierarchyString"));
        print_endline "";
        print_endline "selectors:";
        print_endline (s ("(" ^ cls_name ^ " selectors collect: [:e | e asString]) printString"))
  in
  Cmd.v (Cmd.info "browse" ~doc:"Show a class definition and its protocol")
    Term.(const run $ cls)

(* --- main --- *)

let main_cmd =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  Cmd.group ~default
    (Cmd.info "mst" ~version:"1.0"
       ~doc:"Multiprocessor Smalltalk on a simulated Firefly")
    [ eval_cmd; run_cmd; explore_cmd; faults_cmd; disasm_cmd; decompile_cmd;
      browse_cmd; serve_cmd; cluster_cmd ]

let () = exit (Cmd.eval main_cmd)
