(* mst - the Multiprocessor Smalltalk command line.

     mst eval "3 + 4"                     evaluate an expression
     mst eval -p 5 --state busy EXPR      with background competition
     mst run FILE.st                      load classes, then evaluate Main
     mst disasm CLASS SELECTOR            disassemble a kernel method
     mst decompile CLASS SELECTOR         decompile a kernel method
     mst browse CLASS                     definition, hierarchy, selectors
     mst bench SECTION...                 same sections as bench/main.exe *)

open Cmdliner

let processors =
  let doc = "Number of simulated processors." in
  Arg.(value & opt int 1 & info [ "p"; "processors" ] ~doc)

let state =
  let doc = "Background competition: none, idle or busy (four Processes)." in
  Arg.(value & opt string "none" & info [ "state" ] ~doc)

let sanitize =
  let doc =
    "Serialization sanitizer: $(b,off), $(b,report) (accumulate violations \
     into the report) or $(b,strict) (fail on the first violation)."
  in
  let modes =
    [ ("off", Sanitizer.Off); ("report", Sanitizer.Report);
      ("strict", Sanitizer.Strict) ]
  in
  Arg.(value & opt (enum modes) Sanitizer.Off & info [ "sanitize" ] ~doc)

let trace_dump =
  let doc = "After the run, print the last $(docv) sanitizer trace events." in
  Arg.(value & opt int 0 & info [ "trace-dump" ] ~docv:"N" ~doc)

let make_vm ?(sanitize = Sanitizer.Off) processors state =
  let config =
    if processors <= 1 && state = "none" then Config.baseline_bs ()
    else Config.ms ~processors:(max processors 1) ()
  in
  let config = { config with Config.sanitize } in
  let vm = Vm.create config in
  (match state with
   | "idle" -> ignore (Workloads.spawn_idle vm 4)
   | "busy" -> ignore (Workloads.spawn_busy vm 4)
   | _ -> ());
  vm

let report_time vm =
  Printf.printf "(simulated: %.3f s, scavenges: %d)\n" (Vm.seconds vm)
    (Heap.scavenge_count vm.Vm.heap)

let report_sanitizer vm ~trace_dump =
  let san = Vm.sanitizer vm in
  if Sanitizer.active san then Sanitizer.print_report san;
  if trace_dump > 0 then
    Trace.dump Format.std_formatter (Sanitizer.trace san) ~n:trace_dump

(* --- eval --- *)

let eval_cmd =
  let expr = Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR") in
  let run processors state sanitize trace_dump expr =
    let vm = make_vm ~sanitize processors state in
    (try print_endline (Vm.eval_to_string vm expr) with
     | State.Vm_error msg -> Printf.eprintf "error: %s\n" msg
     | Interp.Does_not_understand msg ->
         Printf.eprintf "doesNotUnderstand: %s\n" msg);
    let tr = Vm.transcript vm in
    if tr <> "" then Printf.printf "--- transcript ---\n%s\n" tr;
    report_time vm;
    report_sanitizer vm ~trace_dump
  in
  Cmd.v (Cmd.info "eval" ~doc:"Evaluate a Smalltalk expression")
    Term.(const run $ processors $ state $ sanitize $ trace_dump $ expr)

(* --- run --- *)

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run processors state sanitize trace_dump file =
    let vm = make_vm ~sanitize processors state in
    let source = In_channel.with_open_text file In_channel.input_all in
    Vm.load_classes vm source;
    (match Universe.find_class vm.Vm.u "Main" with
     | Some _ ->
         print_endline (Vm.eval_to_string vm "Main new main")
     | None -> print_endline "(no Main class; classes loaded)");
    let tr = Vm.transcript vm in
    if tr <> "" then print_string tr;
    report_time vm;
    report_sanitizer vm ~trace_dump
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Load a class file (image-definition format) and run Main new main")
    Term.(const run $ processors $ state $ sanitize $ trace_dump $ file)

(* --- disasm / decompile / browse --- *)

let find_method vm cls_name sel_name =
  match Universe.find_class vm.Vm.u cls_name with
  | None -> Error (Printf.sprintf "unknown class %s" cls_name)
  | Some cls ->
      let sel = Universe.intern vm.Vm.u sel_name in
      let dict = Heap.get vm.Vm.heap cls Layout.Class.method_dict in
      (match Class_builder.dict_find vm.Vm.u dict sel with
       | Some m -> Ok m
       | None -> Error (Printf.sprintf "%s does not define #%s" cls_name sel_name))

let method_cmd name doc render =
  let cls = Arg.(required & pos 0 (some string) None & info [] ~docv:"CLASS") in
  let sel = Arg.(required & pos 1 (some string) None & info [] ~docv:"SELECTOR") in
  let run cls_name sel_name =
    let vm = make_vm 1 "none" in
    match find_method vm cls_name sel_name with
    | Ok m -> print_string (render vm m)
    | Error e -> Printf.eprintf "error: %s\n" e
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ cls $ sel)

let disasm_cmd =
  method_cmd "disasm" "Disassemble a method"
    (fun vm m -> Method_mirror.disassemble vm.Vm.u m)

let decompile_cmd =
  method_cmd "decompile" "Decompile a method back to source"
    (fun vm m -> Method_mirror.decompile vm.Vm.u m)

let browse_cmd =
  let cls = Arg.(required & pos 0 (some string) None & info [] ~docv:"CLASS") in
  let run cls_name =
    let vm = make_vm 1 "none" in
    match Universe.find_class vm.Vm.u cls_name with
    | None -> Printf.eprintf "error: unknown class %s\n" cls_name
    | Some _ ->
        let s expr = Heap.string_value vm.Vm.heap (Vm.eval vm expr) in
        print_endline (s (cls_name ^ " definitionString"));
        print_endline "";
        print_endline "hierarchy:";
        print_string (s (cls_name ^ " hierarchyString"));
        print_endline "";
        print_endline "selectors:";
        print_endline (s ("(" ^ cls_name ^ " selectors collect: [:e | e asString]) printString"))
  in
  Cmd.v (Cmd.info "browse" ~doc:"Show a class definition and its protocol")
    Term.(const run $ cls)

(* --- main --- *)

let main_cmd =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  Cmd.group ~default
    (Cmd.info "mst" ~version:"1.0"
       ~doc:"Multiprocessor Smalltalk on a simulated Firefly")
    [ eval_cmd; run_cmd; disasm_cmd; decompile_cmd; browse_cmd ]

let () = exit (Cmd.eval main_cmd)
