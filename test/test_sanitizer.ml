(* Tests for the serialization sanitizer and its event trace: the ring
   buffer, the lock-timeline and guarded-mutation checks, injected
   violations caught end to end inside a real VM, and clean strict runs. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cm = Cost_model.uniform

(* --- the trace ring --- *)

let test_trace_ring () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.record t ~vp:0 ~time:i ~kind:Trace.Mutation ~resource:"r"
      ~detail:(string_of_int i)
  done;
  check "total recorded counts overwritten events" 10 (Trace.recorded t);
  let times = List.map (fun e -> e.Trace.time) (Trace.last t 4) in
  Alcotest.(check (list int)) "last 4, oldest first" [ 6; 7; 8; 9 ] times;
  let times = List.map (fun e -> e.Trace.time) (Trace.last t 100) in
  Alcotest.(check (list int)) "requests beyond capacity are clamped"
    [ 6; 7; 8; 9 ] times;
  Trace.clear t;
  check "cleared" 0 (Trace.recorded t)

(* --- timeline checks --- *)

(* Drive a lock's timeline by hand: a start before the previous finish is
   the free_at-rewind bug the sanitizer exists to catch. *)
let test_timeline_report () =
  let san = Sanitizer.create Sanitizer.Report in
  Sanitizer.register_lock san "l";
  Sanitizer.set_armed san true;
  Sanitizer.on_lock_op san ~lock:"l" ~vp:0 ~now:0 ~start:0 ~finish:100
    ~contended:false;
  Sanitizer.on_lock_op san ~lock:"l" ~vp:1 ~now:50 ~start:50 ~finish:150
    ~contended:false;
  check "overlapping sections reported" 1 (Sanitizer.violation_count san);
  Sanitizer.on_lock_op san ~lock:"l" ~vp:0 ~now:150 ~start:150 ~finish:200
    ~contended:false;
  check "a correctly serialized op adds nothing" 1
    (Sanitizer.violation_count san)

let test_timeline_strict_raises () =
  let san = Sanitizer.create Sanitizer.Strict in
  Sanitizer.register_lock san "l";
  Sanitizer.set_armed san true;
  Sanitizer.on_lock_op san ~lock:"l" ~vp:0 ~now:0 ~start:0 ~finish:100
    ~contended:false;
  match
    Sanitizer.on_lock_op san ~lock:"l" ~vp:1 ~now:50 ~start:50 ~finish:150
      ~contended:false
  with
  | () -> Alcotest.fail "expected Violation"
  | exception Sanitizer.Violation _ -> ()

let test_disarmed_is_silent () =
  let san = Sanitizer.create Sanitizer.Strict in
  Sanitizer.register_lock san "l";
  (* not armed: bootstrap-style mutation must pass *)
  Sanitizer.on_lock_op san ~lock:"l" ~vp:0 ~now:0 ~start:0 ~finish:100
    ~contended:false;
  Sanitizer.on_lock_op san ~lock:"l" ~vp:1 ~now:50 ~start:50 ~finish:150
    ~contended:false;
  check "nothing recorded while disarmed" 0 (Sanitizer.violation_count san)

(* --- guarded mutations through a real Spinlock --- *)

let test_guarded_mutation () =
  let san = Sanitizer.create Sanitizer.Report in
  let l = Spinlock.make ~enabled:true ~cost:cm "guard lock" in
  Spinlock.attach l san;
  Sanitizer.register_guard san ~resource:"table" ~lock:"guard lock";
  Sanitizer.set_armed san true;
  (* outside any critical section *)
  Sanitizer.check_guarded san ~resource:"table" ~vp:0 ~now:0 ~detail:"x";
  check "unbracketed mutation flagged" 1 (Sanitizer.violation_count san);
  (* inside the bracket: clean *)
  let _, () =
    Spinlock.critical ~vp:1 l ~now:10 ~op_cycles:5 (fun () ->
        Sanitizer.check_guarded san ~resource:"table" ~vp:1 ~now:10 ~detail:"y")
  in
  check "bracketed mutation passes" 1 (Sanitizer.violation_count san);
  (* a different vp mutating inside someone else's section *)
  let _, () =
    Spinlock.critical ~vp:1 l ~now:100 ~op_cycles:5 (fun () ->
        Sanitizer.check_guarded san ~resource:"table" ~vp:2 ~now:100
          ~detail:"z")
  in
  check "cross-vp mutation flagged" 2 (Sanitizer.violation_count san);
  (* unregistered resources are never checked *)
  Sanitizer.check_guarded san ~resource:"unknown" ~vp:0 ~now:0 ~detail:"w";
  check "unregistered resource ignored" 2 (Sanitizer.violation_count san)

let test_owner_check () =
  let san = Sanitizer.create Sanitizer.Report in
  Sanitizer.set_armed san true;
  Sanitizer.check_owner san ~resource:"cache" ~owner:2 ~vp:2 ~now:0;
  check "owner may touch" 0 (Sanitizer.violation_count san);
  Sanitizer.check_owner san ~resource:"cache" ~owner:2 ~vp:0 ~now:0;
  check "foreign vp flagged" 1 (Sanitizer.violation_count san);
  Sanitizer.check_owner san ~resource:"cache" ~owner:(-1) ~vp:0 ~now:0;
  check "shared (-1) never flagged" 1 (Sanitizer.violation_count san)

(* --- the parallel-scavenge phase --- *)

(* Phase checks fire while the sanitizer is active even though it is
   disarmed (the engine disarms the lock checker around every scavenge);
   this test never arms it. *)
let test_scavenge_phase_report () =
  let san = Sanitizer.create Sanitizer.Report in
  Sanitizer.scavenge_begin san ~workers:2;
  Sanitizer.scavenge_chunk san ~worker:0 ~base:100 ~limit:200;
  Sanitizer.scavenge_chunk san ~worker:1 ~base:200 ~limit:300;
  Sanitizer.scavenge_claim san ~worker:0 ~addr:5000;
  Sanitizer.scavenge_copy san ~worker:0 ~addr:110 ~words:20;
  check "disjoint chunks, single claims and owned copies are clean" 0
    (Sanitizer.violation_count san);
  (* a chunk overlapping both existing chunks: two violations *)
  Sanitizer.scavenge_chunk san ~worker:1 ~base:150 ~limit:250;
  check "overlapping chunk flagged against each victim" 2
    (Sanitizer.violation_count san);
  Sanitizer.scavenge_claim san ~worker:1 ~addr:5000;
  check "double claim flagged" 3 (Sanitizer.violation_count san);
  Sanitizer.scavenge_copy san ~worker:0 ~addr:210 ~words:20;
  check "copy into another worker's chunk flagged" 4
    (Sanitizer.violation_count san);
  Sanitizer.scavenge_copy san ~worker:0 ~addr:190 ~words:20;
  check "copy straddling the chunk boundary flagged" 5
    (Sanitizer.violation_count san);
  Sanitizer.scavenge_end san;
  Sanitizer.scavenge_claim san ~worker:1 ~addr:5000;
  check "checks are no-ops once the phase is closed" 5
    (Sanitizer.violation_count san)

let test_scavenge_phase_empty_chunk () =
  let san = Sanitizer.create Sanitizer.Report in
  Sanitizer.scavenge_begin san ~workers:1;
  Sanitizer.scavenge_chunk san ~worker:0 ~base:10 ~limit:10;
  check "an empty chunk claim is flagged" 1 (Sanitizer.violation_count san)

let test_scavenge_phase_strict_raises () =
  let san = Sanitizer.create Sanitizer.Strict in
  Sanitizer.scavenge_begin san ~workers:2;
  Sanitizer.scavenge_claim san ~worker:0 ~addr:7;
  match Sanitizer.scavenge_claim san ~worker:1 ~addr:7 with
  | () -> Alcotest.fail "expected Violation for the double claim"
  | exception Sanitizer.Violation _ -> ()

let test_scavenge_phase_off_is_silent () =
  let san = Sanitizer.create Sanitizer.Off in
  Sanitizer.scavenge_begin san ~workers:2;
  Sanitizer.scavenge_claim san ~worker:0 ~addr:7;
  Sanitizer.scavenge_claim san ~worker:1 ~addr:7;
  check "mode Off records nothing" 0 (Sanitizer.violation_count san)

(* --- injected violations inside a real VM --- *)

let strict_vm = Testkit.strict_vm

(* An entry-table insert without the entry-table lock: exactly the class
   of bug the deferred-remember discipline exists to prevent. *)
let test_injected_unlocked_remember () =
  let vm = strict_vm () in
  let h = vm.Vm.heap in
  let u = vm.Vm.u in
  let cls = u.Universe.classes.Universe.array in
  (* set the scene unarmed: an old-space holder and a new-space value *)
  let old_obj = Heap.alloc_old h ~slots:1 ~raw:false ~cls () in
  let young = Heap.alloc_new h ~vp:0 ~slots:1 ~raw:false ~cls () in
  let san = Vm.sanitizer vm in
  Sanitizer.set_armed san true;
  (match Heap.store_ptr h old_obj 0 young with
   | _ -> Alcotest.fail "expected Violation for the unlocked remember"
   | exception Sanitizer.Violation _ -> ());
  Sanitizer.set_armed san false;
  check_bool "violation was counted" true (Sanitizer.violation_count san > 0)

let test_injected_unlocked_alloc () =
  let vm = strict_vm () in
  let h = vm.Vm.heap in
  let cls = vm.Vm.u.Universe.classes.Universe.array in
  let san = Vm.sanitizer vm in
  Sanitizer.set_armed san true;
  (match Heap.alloc_new h ~vp:0 ~slots:4 ~raw:false ~cls () with
   | _ -> Alcotest.fail "expected Violation for the unlocked allocation"
   | exception Sanitizer.Violation _ -> ());
  Sanitizer.set_armed san false

let test_injected_scheduler_corruption () =
  let vm =
    Vm.create
      { (Config.testing ~processors:2 ()) with
        Config.sanitize = Sanitizer.Report }
  in
  let proc = Vm.spawn vm "3 + 4" in
  let san = Vm.sanitizer vm in
  let sched = vm.Vm.shared.State.sched in
  Sanitizer.set_armed san true;
  (* claim the Process is running on vp 0; its running_on slot says
     otherwise *)
  sched.Scheduler.running.(0) <- proc;
  Scheduler.check_invariants sched ~now:0 ~vp:0;
  check_bool "running-table corruption detected" true
    (Sanitizer.violation_count san > 0);
  Sanitizer.set_armed san false

(* --- clean strict runs --- *)

let busy_eval_source = Testkit.busy_eval_source

let test_strict_clean_uniprocessor () =
  let vm = strict_vm ~processors:1 () in
  ignore (Vm.eval vm busy_eval_source);
  check "no violations on the baseline" 0
    (Sanitizer.violation_count (Vm.sanitizer vm))

let test_strict_clean_multiprocessor () =
  let vm = strict_vm ~processors:5 () in
  ignore (Workloads.spawn_busy vm 4);
  ignore (Vm.eval vm busy_eval_source);
  check "no violations under MS with busy competition" 0
    (Sanitizer.violation_count (Vm.sanitizer vm))

(* --- fault events in the trace --- *)

(* Injected faults and recovery actions are trace events, not
   violations: an injected holder stall must land a Fault_event in the
   ring while the violation count stays zero.  (The stall plan is the
   canonical fixture shared with test_faults.) *)
let test_fault_events_traced_not_violations () =
  let san = Sanitizer.create Sanitizer.Report in
  Sanitizer.set_armed san true;
  let m = Machine.make ~processors:2 cm in
  Machine.set_injector m
    (Some (Fault.replay (Testkit.holder_stall_plan 0 120)));
  let l = Spinlock.make ~enabled:true ~cost:cm "l" in
  Spinlock.attach l san;
  Spinlock.attach_machine l m;
  ignore (Spinlock.locked_op ~vp:0 l ~now:0 ~op_cycles:50);
  check "the stall is an event, not a violation" 0
    (Sanitizer.violation_count san);
  check_bool "a Fault_event names the stalled lock" true
    (List.exists
       (fun e -> e.Trace.kind = Trace.Fault_event && e.Trace.resource = "l")
       (Trace.last (Sanitizer.trace san) 16))

(* --- satellite fixes --- *)

let test_free_contexts_disabled_counts_fresh () =
  let h =
    Heap.create ~old_words:4096 ~eden_words:4096 ~survivor_words:1024 ()
  in
  let t = Free_contexts.create_disabled () in
  let now, o = Free_contexts.take t h ~now:42 Free_contexts.Small in
  check "no time charged" 42 now;
  check_bool "nothing recycled" true (Oop.equal o Oop.sentinel);
  check "the miss counts as a fresh allocation" 1
    (Free_contexts.fresh_allocations t);
  ignore (Free_contexts.take t h ~now:43 Free_contexts.Large);
  check "every take counts" 2 (Free_contexts.fresh_allocations t)

let test_instrumentation_covers_all_locks () =
  let vm = Vm.create (Config.testing ~processors:2 ()) in
  let r = Instrumentation.gather vm in
  let names = List.map (fun l -> l.Instrumentation.lock_name) r.locks in
  check "all seven kernel locks reported" 7 (List.length names);
  List.iter
    (fun expected ->
      check_bool (expected ^ " present") true (List.mem expected names))
    [ "allocation"; "entry table"; "scheduler"; "method cache";
      "free contexts" ]

let () =
  Alcotest.run "sanitizer"
    [ ("trace", [ Alcotest.test_case "ring buffer" `Quick test_trace_ring ]);
      ("timeline",
       [ Alcotest.test_case "report mode" `Quick test_timeline_report;
         Alcotest.test_case "strict raises" `Quick test_timeline_strict_raises;
         Alcotest.test_case "disarmed" `Quick test_disarmed_is_silent ]);
      ("guards",
       [ Alcotest.test_case "guarded mutation" `Quick test_guarded_mutation;
         Alcotest.test_case "ownership" `Quick test_owner_check ]);
      ("scavenge_phase",
       [ Alcotest.test_case "report mode" `Quick test_scavenge_phase_report;
         Alcotest.test_case "empty chunk" `Quick
           test_scavenge_phase_empty_chunk;
         Alcotest.test_case "strict raises" `Quick
           test_scavenge_phase_strict_raises;
         Alcotest.test_case "off is silent" `Quick
           test_scavenge_phase_off_is_silent ]);
      ("injection",
       [ Alcotest.test_case "unlocked remember" `Quick
           test_injected_unlocked_remember;
         Alcotest.test_case "unlocked allocation" `Quick
           test_injected_unlocked_alloc;
         Alcotest.test_case "scheduler corruption" `Quick
           test_injected_scheduler_corruption ]);
      ("strict_clean",
       [ Alcotest.test_case "uniprocessor" `Quick
           test_strict_clean_uniprocessor;
         Alcotest.test_case "multiprocessor busy" `Quick
           test_strict_clean_multiprocessor ]);
      ("fault_trace",
       [ Alcotest.test_case "faults are events, not violations" `Quick
           test_fault_events_traced_not_violations ]);
      ("satellites",
       [ Alcotest.test_case "disabled free list counts fresh" `Quick
           test_free_contexts_disabled_counts_fresh;
         Alcotest.test_case "instrumentation lock coverage" `Quick
           test_instrumentation_covers_all_locks ]) ]
