(* Tests for the simulated Firefly substrate: cost model, spin-lock
   contention timelines, mailboxes, devices, virtual processors. *)

let cm = Cost_model.firefly

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- cost model --- *)

let test_seconds () =
  Alcotest.(check (float 1e-9)) "1e6 cycles is one second" 1.0
    (Cost_model.seconds cm 1_000_000);
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Cost_model.seconds cm 0)

(* --- spin locks --- *)

let test_lock_uncontended () =
  let l = Spinlock.make ~enabled:true ~cost:cm "t" in
  let fin = Spinlock.locked_op l ~now:100 ~op_cycles:50 in
  check "completes after acquire + op" (100 + cm.Cost_model.lock_acquire + 50) fin;
  check "one acquisition" 1 (Spinlock.acquisitions l);
  check "no contention" 0 (Spinlock.contended l)

let test_lock_contended () =
  let l = Spinlock.make ~enabled:true ~cost:cm "t" in
  let fin1 = Spinlock.locked_op l ~now:0 ~op_cycles:50 in
  (* second op arrives while the first holds the lock *)
  let fin2 = Spinlock.locked_op l ~now:10 ~op_cycles:50 in
  check_bool "second completes after first" true (fin2 > fin1);
  check "contention recorded" 1 (Spinlock.contended l);
  (* the retry happens on Delay-quantum boundaries *)
  let spin = Spinlock.spin_cycles l in
  check_bool "spin time is a positive multiple of the quantum" true
    (spin > 0 && spin mod cm.Cost_model.delay_quantum = 0)

let test_lock_sequential_no_contention () =
  let l = Spinlock.make ~enabled:true ~cost:cm "t" in
  let fin1 = Spinlock.locked_op l ~now:0 ~op_cycles:10 in
  let _fin2 = Spinlock.locked_op l ~now:(fin1 + 1) ~op_cycles:10 in
  check "no contention when spaced out" 0 (Spinlock.contended l)

let test_lock_disabled () =
  let l = Spinlock.make ~enabled:false ~cost:cm "t" in
  let fin = Spinlock.locked_op l ~now:100 ~op_cycles:50 in
  check "disabled lock costs only the operation" 150 fin;
  let fin2 = Spinlock.locked_op l ~now:100 ~op_cycles:50 in
  check "no serialization when disabled" 150 fin2;
  check "no acquisitions recorded" 0 (Spinlock.acquisitions l)

let test_lock_reset () =
  let l = Spinlock.make ~enabled:true ~cost:cm "t" in
  ignore (Spinlock.locked_op l ~now:0 ~op_cycles:10);
  Spinlock.reset_stats l;
  check "stats cleared" 0 (Spinlock.acquisitions l)

(* Regression: a stats reset must not rewind the lock's timeline.  It used
   to clear [free_at] too, which let an acquire issued inside the previous
   critical section start before that section finished. *)
let test_lock_reset_keeps_timeline () =
  let l = Spinlock.make ~enabled:true ~cost:cm "t" in
  let fin1 = Spinlock.locked_op l ~now:0 ~op_cycles:1000 in
  Spinlock.reset_stats l;
  let fin2 = Spinlock.locked_op l ~now:10 ~op_cycles:0 in
  check_bool "second acquire still serialized after the first" true
    (fin2 - cm.Cost_model.lock_acquire >= fin1);
  check "the post-reset acquire was contended" 1 (Spinlock.contended l)

(* --- spin-lock timeline properties --- *)

(* Replay a random schedule of acquires against the documented model:
   contended acquires start at the first Delay-quantum retry instant at or
   after [free_at], spin time is exactly the wait, and the timeline never
   moves backwards. *)
let arb_schedule =
  QCheck.(
    list_of_size Gen.(int_range 1 40)
      (pair (int_range 0 300) (int_range 0 200)))

let prop_locked_op_model =
  QCheck.Test.make ~count:300 ~name:"locked_op matches the timeline model"
    arb_schedule (fun sched ->
      let l = Spinlock.make ~enabled:true ~cost:cm "p" in
      let q = cm.Cost_model.delay_quantum in
      let acq = cm.Cost_model.lock_acquire in
      let now = ref 0 in
      let prev_finish = ref 0 in
      let free_at = ref 0 in
      let expected_spin = ref 0 in
      List.for_all
        (fun (advance, op_cycles) ->
          now := !now + advance;
          let fin = Spinlock.locked_op l ~now:!now ~op_cycles in
          let start = fin - acq - op_cycles in
          let ok =
            if !now >= !free_at then start = !now
            else begin
              expected_spin := !expected_spin + (start - !now);
              (* first retry instant at or after free_at, on a quantum
                 boundary measured from the acquiring processor's [now] *)
              start >= !free_at
              && start - q < !free_at
              && (start - !now) mod q = 0
            end
          in
          let ok =
            ok && start >= !prev_finish
            && Spinlock.spin_cycles l = !expected_spin
          in
          prev_finish := fin;
          free_at := fin;
          ok)
        sched)

let prop_locked_op_disabled =
  QCheck.Test.make ~count:100 ~name:"disabled locks charge only the op"
    arb_schedule (fun sched ->
      let l = Spinlock.make ~enabled:false ~cost:cm "p" in
      let now = ref 0 in
      List.for_all
        (fun (advance, op_cycles) ->
          now := !now + advance;
          Spinlock.locked_op l ~now:!now ~op_cycles = !now + op_cycles)
        sched
      && Spinlock.acquisitions l = 0
      && Spinlock.contended l = 0
      && Spinlock.spin_cycles l = 0)

(* --- mailboxes --- *)

let test_mailbox () =
  let mb = Mailbox.make "gc" in
  (match Mailbox.receive mb ~now:0 with
   | Mailbox.Empty -> ()
   | _ -> Alcotest.fail "expected empty");
  Mailbox.send mb ~now:50 "park";
  (match Mailbox.receive mb ~now:10 with
   | Mailbox.Arrives_at t -> check "future message" 50 t
   | _ -> Alcotest.fail "expected future arrival");
  (match Mailbox.receive mb ~now:60 with
   | Mailbox.Message m -> Alcotest.(check string) "payload" "park" m
   | _ -> Alcotest.fail "expected delivery");
  check "fifo drained" 0 (Mailbox.length mb)

let test_mailbox_fifo_order () =
  let mb = Mailbox.make "q" in
  Mailbox.send mb ~now:0 1;
  Mailbox.send mb ~now:0 2;
  (match Mailbox.receive mb ~now:0 with
   | Mailbox.Message v -> check "first in, first out" 1 v
   | _ -> Alcotest.fail "expected message")

(* --- display controller --- *)

let test_display_drains () =
  let d = Devices.make_display ~enabled_locks:true ~cost:cm in
  let t1 = Devices.display_enqueue d ~now:0 in
  check_bool "enqueue is quick when the queue is empty" true
    (t1 < cm.Cost_model.display_cmd);
  check "one command" 1 (Devices.display_commands d)

let test_display_backpressure () =
  let d = Devices.make_display ~enabled_locks:true ~cost:cm in
  (* flood the queue from a single producer at time 0 *)
  let t = ref 0 in
  for _ = 1 to cm.Cost_model.display_capacity + 8 do
    t := Devices.display_enqueue d ~now:!t
  done;
  check_bool "producer eventually waits for queue space" true
    (Devices.display_producer_wait d > 0)

(* --- input queue --- *)

let test_input_queue () =
  let q = Devices.make_input_queue ~enabled_locks:true ~cost:cm in
  Devices.inject q ~time:100 ~payload:7;
  let _, ev = Devices.poll q ~now:50 ~op_cycles:5 in
  check_bool "event not visible before its time" true (ev = None);
  let _, ev = Devices.poll q ~now:150 ~op_cycles:5 in
  (match ev with
   | Some p -> check "payload" 7 p
   | None -> Alcotest.fail "expected the event");
  check "polls counted" 2 (Devices.input_polls q);
  check "deliveries counted" 1 (Devices.input_delivered q)

let test_input_order () =
  let q = Devices.make_input_queue ~enabled_locks:false ~cost:cm in
  Devices.inject q ~time:20 ~payload:2;
  Devices.inject q ~time:10 ~payload:1;
  let _, ev1 = Devices.poll q ~now:100 ~op_cycles:1 in
  let _, ev2 = Devices.poll q ~now:100 ~op_cycles:1 in
  Alcotest.(check (option int)) "earlier event first" (Some 1) ev1;
  Alcotest.(check (option int)) "later event second" (Some 2) ev2

(* --- the trace ring --- *)

(* For any capacity and event count: [recorded] counts every event ever
   recorded (monotone through wraparound), and [last] returns exactly the
   newest [capacity] events, oldest first, even when asked for more. *)
let prop_trace_ring =
  QCheck.Test.make ~count:200
    ~name:"trace ring keeps the newest events through wraparound"
    QCheck.(pair (int_range 1 16) (int_range 0 100))
    (fun (capacity, total) ->
      let t = Trace.create ~capacity () in
      for i = 0 to total - 1 do
        Trace.record t ~vp:(i mod 3) ~time:i ~kind:Trace.Mutation ~resource:"r"
          ~detail:""
      done;
      let expect n =
        List.init (min n total) (fun i -> total - min n total + i)
      in
      Trace.recorded t = total
      && List.map (fun e -> e.Trace.time) (Trace.last t capacity)
         = expect capacity
      && List.map (fun e -> e.Trace.time) (Trace.last t (capacity + 50))
         = expect capacity)

(* --- multi-vp queue ordering --- *)

(* Three producers interleaving sends: the mailbox is a strict FIFO —
   every message is delivered exactly once, in send order, regardless of
   which vp sent it. *)
let test_mailbox_multi_vp_order () =
  let mb = Mailbox.make "ipc" in
  (* (vp, send time): insertion order is the expected delivery order *)
  let sends = [ (0, 10); (1, 10); (2, 11); (0, 12); (2, 12); (1, 15) ] in
  List.iteri
    (fun i (vp, time) -> Mailbox.send mb ~now:time (i, vp))
    sends;
  check "all sends counted" (List.length sends) (Mailbox.sends mb);
  List.iteri
    (fun i (vp, _) ->
      match Mailbox.receive mb ~now:100 with
      | Mailbox.Message (j, sender) ->
          check (Printf.sprintf "message %d in send order" i) i j;
          check (Printf.sprintf "message %d from the right vp" i) vp sender
      | _ -> Alcotest.fail "expected a message")
    sends;
  check "drained exactly once each" 0 (Mailbox.length mb)

(* Several vps hammering the display queue at the same instant: the lock
   serializes them, so completion times are strictly increasing and every
   command lands. *)
let test_display_multi_vp_contention () =
  let d = Devices.make_display ~enabled_locks:true ~cost:cm in
  let finishes =
    List.map (fun vp -> Devices.display_enqueue ~vp d ~now:0) [ 0; 1; 2; 3 ]
  in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  check_bool "lock serializes simultaneous enqueues" true
    (strictly_increasing finishes);
  check "every command enqueued" 4 (Devices.display_commands d);
  check "every enqueue took the lock" 4
    (Spinlock.acquisitions (Devices.display_lock d));
  check_bool "the later vps contended" true
    (Spinlock.contended (Devices.display_lock d) > 0)

(* Several vps polling the input queue at the same instant: each event is
   delivered exactly once, in time order, across the competing pollers. *)
let test_input_multi_vp_contention () =
  let q = Devices.make_input_queue ~enabled_locks:true ~cost:cm in
  List.iter
    (fun (time, payload) -> Devices.inject q ~time ~payload)
    [ (30, 3); (10, 1); (20, 2) ];
  let delivered = ref [] in
  for round = 0 to 1 do
    List.iter
      (fun vp ->
        ignore round;
        match Devices.poll ~vp q ~now:100 ~op_cycles:5 with
        | _, Some p -> delivered := p :: !delivered
        | _, None -> ())
      [ 0; 1; 2 ]
  done;
  Alcotest.(check (list int)) "each event once, in time order" [ 1; 2; 3 ]
    (List.rev !delivered);
  check "deliveries counted" 3 (Devices.input_delivered q);
  check "nothing left pending" 0 (Devices.input_pending q);
  check "every poll took the lock" 6
    (Spinlock.acquisitions (Devices.input_lock q))

(* --- machine --- *)

(* Clock ties must resolve deterministically: the engine steps the vp with
   the lowest id among the minimum clocks, so identical inputs replay to
   identical schedules. *)
let prop_min_runnable_deterministic =
  QCheck.Test.make ~count:300 ~name:"min_runnable breaks clock ties by id"
    QCheck.(list_of_size Gen.(int_range 1 8) (int_range 0 5))
    (fun clocks ->
      let n = List.length clocks in
      let m = Machine.make ~processors:n cm in
      List.iteri (fun i c -> (Machine.vp m i).Machine.clock <- c) clocks;
      let least = List.fold_left min max_int clocks in
      match Machine.min_runnable m with
      | None -> false
      | Some vp ->
          vp.Machine.clock = least
          && List.filteri (fun i c -> c = least && i < vp.Machine.id) clocks
             = [])

let test_machine_min_runnable () =
  let m = Machine.make ~processors:3 cm in
  (Machine.vp m 0).Machine.clock <- 30;
  (Machine.vp m 1).Machine.clock <- 10;
  (Machine.vp m 2).Machine.clock <- 20;
  (match Machine.min_runnable m with
   | Some vp -> check "smallest clock wins" 1 vp.Machine.id
   | None -> Alcotest.fail "expected a runnable vp");
  Machine.set_state m (Machine.vp m 1) Machine.Halted;
  (match Machine.min_runnable m with
   | Some vp -> check "halted vp skipped" 2 vp.Machine.id
   | None -> Alcotest.fail "expected a runnable vp")

(* A policy's choose_tie must see every minimal candidate exactly when
   there are at least two; a unique minimum goes straight through. *)
let test_machine_policy_ties () =
  let m = Machine.make ~processors:4 cm in
  let seen = ref [] in
  Machine.set_policy m
    (Some
       { Machine.default_policy with
         Machine.choose_tie =
           (fun ties ->
             seen := Array.to_list (Array.map (fun v -> v.Machine.id) ties);
             ties.(Array.length ties - 1)) });
  (Machine.vp m 0).Machine.clock <- 20;
  (Machine.vp m 1).Machine.clock <- 10;
  (Machine.vp m 2).Machine.clock <- 20;
  (Machine.vp m 3).Machine.clock <- 30;
  (match Machine.min_runnable m with
   | Some vp -> check "unique minimum bypasses choose_tie" 1 vp.Machine.id
   | None -> Alcotest.fail "expected a runnable vp");
  check_bool "no tie consulted" true (!seen = []);
  (Machine.vp m 1).Machine.clock <- 20;
  (match Machine.min_runnable m with
   | Some vp -> check "policy's pick honoured" 2 vp.Machine.id
   | None -> Alcotest.fail "expected a runnable vp");
  Alcotest.(check (list int)) "all minimal candidates, ascending ids"
    [ 0; 1; 2 ] !seen

(* --- the event calendar (E17) --- *)

let test_calendar_basic () =
  let c = Calendar.create () in
  check_bool "fresh heap is empty" true (Calendar.is_empty c);
  Calendar.add c ~key:30 "c";
  Calendar.add c ~key:10 "a";
  Calendar.add c ~key:20 "b";
  check "min key" 10 (match Calendar.min_key c with Some k -> k | None -> -1);
  (match Calendar.peek c with
   | Some (10, "a") -> ()
   | _ -> Alcotest.fail "peek should see the minimum without removing it");
  check "peek leaves length" 3 (Calendar.length c);
  (match Calendar.pop c with
   | Some (10, "a") -> ()
   | _ -> Alcotest.fail "pop order");
  (match Calendar.pop c with
   | Some (20, "b") -> ()
   | _ -> Alcotest.fail "pop order");
  Calendar.add c ~key:5 "d";
  (match Calendar.pop c with
   | Some (5, "d") -> ()
   | _ -> Alcotest.fail "interleaved add respects order");
  (match Calendar.pop c with
   | Some (30, "c") -> ()
   | _ -> Alcotest.fail "pop order");
  check_bool "drained" true (Calendar.pop c = None)

let test_calendar_fifo_on_equal_keys () =
  let c = Calendar.create () in
  List.iter (fun v -> Calendar.add c ~key:7 v) [ 1; 2; 3; 4 ];
  Calendar.add c ~key:3 0;
  let order = List.map snd (Calendar.to_sorted_list c) in
  Alcotest.(check (list int)) "equal deadlines fire in insertion order"
    [ 0; 1; 2; 3; 4 ] order

(* The heap must drain any insertion sequence in stable (key, insertion)
   order — the property the timer queue and the pending-VP queue both
   lean on. *)
let prop_calendar_sorted_stable =
  QCheck.Test.make ~count:300 ~name:"calendar drains in stable key order"
    QCheck.(list (int_range 0 50))
    (fun keys ->
      let c = Calendar.create () in
      List.iteri (fun i k -> Calendar.add c ~key:k (i, k)) keys;
      let drained = List.map snd (Calendar.to_sorted_list c) in
      let expected =
        List.stable_sort
          (fun (_, k1) (_, k2) -> compare k1 k2)
          (List.mapi (fun i k -> (i, k)) keys)
      in
      drained = expected)

let test_machine_bus_factor () =
  let m = Machine.make ~processors:5 cm in
  let vp = Machine.vp m 0 in
  Machine.charge_mem m vp 1000;
  let five_way = vp.Machine.clock in
  (* park everyone else: memory ops get cheaper *)
  for i = 1 to 4 do
    Machine.set_state m (Machine.vp m i) Machine.Parked_for_gc
  done;
  vp.Machine.clock <- 0;
  Machine.charge_mem m vp 1000;
  check_bool "bus contention inflates memory costs" true
    (five_way > vp.Machine.clock);
  check "solo cost is the raw cost" 1000 vp.Machine.clock

let test_machine_synchronize () =
  let m = Machine.make ~processors:2 cm in
  (Machine.vp m 0).Machine.clock <- 100;
  (Machine.vp m 1).Machine.clock <- 300;
  Machine.synchronize_clocks m 500;
  check "laggard advanced" 500 (Machine.vp m 0).Machine.clock;
  check "gc wait recorded" 400 (Machine.vp m 0).Machine.gc_wait_cycles;
  check "other advanced too" 500 (Machine.vp m 1).Machine.clock

let () =
  Alcotest.run "vkernel"
    [ ("cost_model", [ Alcotest.test_case "seconds" `Quick test_seconds ]);
      ("spinlock",
       [ Alcotest.test_case "uncontended" `Quick test_lock_uncontended;
         Alcotest.test_case "contended" `Quick test_lock_contended;
         Alcotest.test_case "sequential" `Quick test_lock_sequential_no_contention;
         Alcotest.test_case "disabled" `Quick test_lock_disabled;
         Alcotest.test_case "reset" `Quick test_lock_reset;
         Alcotest.test_case "reset keeps timeline" `Quick
           test_lock_reset_keeps_timeline ]);
      ("spinlock_properties",
       [ QCheck_alcotest.to_alcotest prop_locked_op_model;
         QCheck_alcotest.to_alcotest prop_locked_op_disabled;
         QCheck_alcotest.to_alcotest prop_min_runnable_deterministic ]);
      ("trace", [ QCheck_alcotest.to_alcotest prop_trace_ring ]);
      ("mailbox",
       [ Alcotest.test_case "timing" `Quick test_mailbox;
         Alcotest.test_case "fifo" `Quick test_mailbox_fifo_order;
         Alcotest.test_case "multi-vp order" `Quick
           test_mailbox_multi_vp_order ]);
      ("devices",
       [ Alcotest.test_case "display drains" `Quick test_display_drains;
         Alcotest.test_case "display backpressure" `Quick test_display_backpressure;
         Alcotest.test_case "display multi-vp contention" `Quick
           test_display_multi_vp_contention;
         Alcotest.test_case "input queue" `Quick test_input_queue;
         Alcotest.test_case "input order" `Quick test_input_order;
         Alcotest.test_case "input multi-vp contention" `Quick
           test_input_multi_vp_contention ]);
      ("machine",
       [ Alcotest.test_case "min runnable" `Quick test_machine_min_runnable;
         Alcotest.test_case "policy ties" `Quick test_machine_policy_ties;
         Alcotest.test_case "bus factor" `Quick test_machine_bus_factor;
         Alcotest.test_case "synchronize" `Quick test_machine_synchronize ]);
      ("calendar",
       [ Alcotest.test_case "basic order" `Quick test_calendar_basic;
         Alcotest.test_case "fifo on equal keys" `Quick
           test_calendar_fifo_on_equal_keys;
         QCheck_alcotest.to_alcotest prop_calendar_sorted_stable ]) ]
