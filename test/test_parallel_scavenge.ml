(* Tests for the simulated parallel scavenger (E10): the claim/buffer
   protocol preserves random object graphs for every worker count, the
   simulation is deterministic, the per-worker timelines respect the
   analytic bounds, and worker statistics are self-consistent. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cm = Cost_model.firefly

(* A replicated-eden heap with a fake class object, as the paper's MS
   configuration would hand the scavenger. *)
let make_heap = Testkit.make_replicated_heap

(* Random graphs spread across the per-processor eden slices, with a few
   old-space holders so the entry table has entries to shard; the whole
   array is rooted.  Fingerprints are the shared structural DFS. *)
let build_graph = Testkit.build_graph ~old_holders:6 ~root_objs:true
let fingerprint = Testkit.fingerprint

(* --- properties --- *)

let parallel_survival_prop =
  QCheck.Test.make
    ~name:
      "random graphs survive parallel scavenging for any worker count, \
       strict-sanitizer clean"
    ~count:40 Testkit.graph_workers_arb
    (fun (n, seed, workers) ->
      let rng = Random.State.make [| seed |] in
      let processors = 4 in
      let h, cls, nil = make_heap ~processors () in
      let san = Sanitizer.create Sanitizer.Strict in
      Heap.set_sanitizer h san;
      let objs = build_graph h cls rng ~n ~processors in
      let root = ref objs.(n - 1) in
      Heap.add_root h root;
      let before = fingerprint h nil !root in
      ignore (Scavenger.scavenge_parallel h cm ~workers ());
      let mid = fingerprint h nil !root in
      (* a second collection crosses the survivor flip, so past-space
         fillers and copied objects are both exercised as from-space *)
      ignore (Scavenger.scavenge_parallel h cm ~workers ());
      let after = fingerprint h nil !root in
      before = mid && mid = after && Verify.check h = [])

let parallel_matches_serial_prop =
  QCheck.Test.make
    ~name:"parallel and serial scavenges preserve the same structure"
    ~count:40 Testkit.graph_arb
    (fun (n, seed) ->
      let run ~parallel =
        let rng = Random.State.make [| seed |] in
        let processors = 4 in
        let h, cls, nil = make_heap ~processors () in
        let objs = build_graph h cls rng ~n ~processors in
        let root = ref objs.(n - 1) in
        Heap.add_root h root;
        if parallel then ignore (Scavenger.scavenge_parallel h cm ~workers:3 ())
        else ignore (Scavenger.scavenge h);
        (fingerprint h nil !root, Verify.check h = [])
      in
      let fp_serial, ok_serial = run ~parallel:false in
      let fp_parallel, ok_parallel = run ~parallel:true in
      ok_serial && ok_parallel && fp_serial = fp_parallel)

(* --- determinism --- *)

let build_and_collect seed workers =
  let rng = Random.State.make [| seed |] in
  let processors = 4 in
  let h, cls, _ = make_heap ~processors () in
  let objs = build_graph h cls rng ~n:50 ~processors in
  let root = ref objs.(49) in
  Heap.add_root h root;
  let stats, pr = Scavenger.scavenge_parallel h cm ~workers () in
  (h, stats, pr)

let test_determinism () =
  List.iter
    (fun workers ->
      let h1, _, pr1 = build_and_collect 12345 workers in
      let h2, _, pr2 = build_and_collect 12345 workers in
      check_bool
        (Printf.sprintf "k=%d: identical runs give bit-identical heaps"
           workers)
        true
        (h1.Heap.mem = h2.Heap.mem);
      check
        (Printf.sprintf "k=%d: identical runs give identical pauses" workers)
        pr1.Scavenger.pause_cycles pr2.Scavenger.pause_cycles;
      check
        (Printf.sprintf "k=%d: identical round counts" workers)
        pr1.Scavenger.rounds pr2.Scavenger.rounds)
    [ 1; 2; 3; 5 ]

(* --- the analytic cross-check --- *)

(* The simulated pause must lie between perfect division of the measured
   copy and scan work (plus the scavenge base) and the corrected serial
   formula plus every coordination cycle the simulation charged. *)
let test_analytic_bounds () =
  List.iter
    (fun workers ->
      let _, stats, pr = build_and_collect 999 workers in
      let copied = stats.Heap.survivor_words + stats.Heap.tenured_words in
      let work =
        (cm.Cost_model.scavenge_per_word * copied)
        + (cm.Cost_model.scavenge_per_remembered
           * stats.Heap.remembered_scanned)
      in
      check_bool
        (Printf.sprintf "k=%d: pause at least perfectly-divided work" workers)
        true
        (pr.Scavenger.pause_cycles
         >= cm.Cost_model.scavenge_base + (work / workers));
      check_bool
        (Printf.sprintf "k=%d: pause at most serial cost + coordination"
           workers)
        true
        (pr.Scavenger.pause_cycles
         <= Scavenger.cost cm stats + pr.Scavenger.coordination_cycles))
    [ 2; 3; 5 ]

(* --- worker statistics --- *)

let test_worker_stats_consistent () =
  let h, stats, pr = build_and_collect 4242 3 in
  check "result reports the requested worker count" 3 pr.Scavenger.workers;
  let sum f =
    Array.fold_left (fun n w -> n + f w) 0 pr.Scavenger.worker_stats
  in
  check "workers copied exactly the surviving words"
    (stats.Heap.survivor_words + stats.Heap.tenured_words)
    (sum (fun w -> w.Scavenger.copied_words));
  check "workers copied exactly the surviving objects"
    (stats.Heap.survivor_objects + stats.Heap.tenured_objects)
    (sum (fun w -> w.Scavenger.copied_objects));
  check "every entry-table entry was scanned by exactly one worker"
    stats.Heap.remembered_scanned
    (sum (fun w -> w.Scavenger.entries_scanned));
  let max_busy =
    Array.fold_left
      (fun m w -> max m w.Scavenger.busy_cycles)
      0 pr.Scavenger.worker_stats
  in
  Array.iter
    (fun w ->
      check
        (Printf.sprintf "worker %d idles exactly to the slowest timeline"
           w.Scavenger.worker)
        (max_busy - w.Scavenger.busy_cycles)
        w.Scavenger.idle_cycles)
    pr.Scavenger.worker_stats;
  (* fillers may pad the survivor space, never shrink it below the copies *)
  check_bool "survivor space holds at least the copied words" true
    (Heap.survivor_used h >= stats.Heap.survivor_words);
  check "heap verifies clean" 0 (List.length (Verify.check h))

let test_zero_copy_scavenge () =
  (* nothing live in new space: the parallel scavenge still terminates,
     runs zero grey rounds, and the heap stays clean *)
  let h, cls, _ = make_heap () in
  for vp = 0 to 3 do
    ignore (Heap.alloc_new h ~vp ~slots:4 ~raw:false ~cls ())
  done;
  let stats, pr = Scavenger.scavenge_parallel h cm ~workers:3 () in
  check "nothing copied" 0
    (stats.Heap.survivor_words + stats.Heap.tenured_words);
  check "no grey rounds" 0 pr.Scavenger.rounds;
  check "no barriers charged" 0 pr.Scavenger.barrier_cycles;
  check "verify clean" 0 (List.length (Verify.check h))

let () =
  let qtests =
    List.map QCheck_alcotest.to_alcotest
      [ parallel_survival_prop; parallel_matches_serial_prop ]
  in
  Alcotest.run "parallel_scavenge"
    [ ("properties", qtests);
      ("determinism",
       [ Alcotest.test_case "bit-identical heaps and pauses" `Quick
           test_determinism ]);
      ("cost",
       [ Alcotest.test_case "analytic bounds" `Quick test_analytic_bounds ]);
      ("stats",
       [ Alcotest.test_case "worker stats" `Quick test_worker_stats_consistent;
         Alcotest.test_case "zero-copy collection" `Quick
           test_zero_copy_scavenge ]) ]
