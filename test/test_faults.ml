(* Tests for the fault-injection and recovery layer: the spin watchdog's
   deadlock verdict, stall/backoff statistics kept apart from genuine
   contention, interpreter failover after a processor crash, degraded
   parallel scavenging, fault-plan files and shrinking, and the two
   headline properties — a no-fault injector is bit-identical to the
   seed run, and a single processor crash never changes a benchmark's
   answer under the strict sanitizer. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let cm = Cost_model.uniform

(* --- the spin watchdog --- *)

(* A lock whose holder dies inside the critical section parks its
   release at Fault.never; the next contended acquire must give up at
   the watchdog bound with a structured report naming the holder. *)
let test_watchdog_detects_dead_holder () =
  let m = Machine.make ~processors:2 cm in
  Machine.set_injector m
    (Some (Fault.replay [ { Fault.index = 0; fault = Fault.Holder_crash } ]));
  let l = Spinlock.make ~enabled:true ~cost:cm "t" in
  Spinlock.attach_machine l m;
  Spinlock.set_watchdog l ~bound:200 ~backoff_after:2;
  ignore (Spinlock.locked_op ~vp:0 l ~now:0 ~op_cycles:50);
  check_bool "the crash was flagged for delivery" true
    (Machine.crash_pending m 0);
  match Spinlock.locked_op ~vp:1 l ~now:60 ~op_cycles:10 with
  | _ -> Alcotest.fail "expected Deadlock_suspected"
  | exception Fault.Deadlock_suspected r ->
      check_str "the lock is named" "t" r.Fault.lock;
      check "the dead holder is named" 0 r.Fault.holder;
      check "the waiter is named" 1 r.Fault.waiter;
      check "the waiter's clock" 60 r.Fault.clock;
      check "held since the holder's acquire" 0 r.Fault.held_since;
      check_bool "the wait is effectively forever" true
        (r.Fault.waited > Fault.never / 2)

(* An injected holder stall below the bound is survivable, and its spin
   lands in the fault counters, not in the contention counters the
   E-series experiments report. *)
let test_stall_survives_and_stats_separate () =
  let m = Machine.make ~processors:2 cm in
  Machine.set_injector m
    (Some (Fault.replay [ { Fault.index = 0; fault = Fault.Holder_stall 100 } ]));
  let l = Spinlock.make ~enabled:true ~cost:cm "t" in
  Spinlock.attach_machine l m;
  Spinlock.set_watchdog l ~bound:8000 ~backoff_after:0;
  let f0 = Spinlock.locked_op ~vp:0 l ~now:0 ~op_cycles:50 in
  check "the holder is delayed by its own stall" (0 + 1 + 50 + 100) f0;
  let f1 = Spinlock.locked_op ~vp:1 l ~now:10 ~op_cycles:10 in
  check_bool "the waiter got the lock after the extended hold" true
    (f1 > f0);
  check "the injected stall is charged on the lock" 100
    (Spinlock.fault_stall_cycles l);
  check "waiter spin against the stall is fault spin" 100
    (Spinlock.fault_spin_cycles l);
  check_bool "genuine contention spin is still counted" true
    (Spinlock.spin_cycles l > 0);
  check_bool "and excludes the fault part" true
    (Spinlock.spin_cycles l < f1 - 10)

(* The watchdog alone must not perturb the timeline: with no faults and
   no backoff, finishes match an unwatched lock exactly. *)
let test_watchdog_alone_is_identical () =
  let run ~watched =
    let l = Spinlock.make ~enabled:true ~cost:cm "t" in
    if watched then Spinlock.set_watchdog l ~bound:1_000_000 ~backoff_after:0;
    let a = Spinlock.locked_op ~vp:0 l ~now:0 ~op_cycles:37 in
    let b = Spinlock.locked_op ~vp:1 l ~now:5 ~op_cycles:21 in
    let c = Spinlock.locked_op ~vp:0 l ~now:b ~op_cycles:9 in
    (a, b, c, Spinlock.spin_cycles l)
  in
  check_bool "watched and unwatched timelines are identical" true
    (run ~watched:true = run ~watched:false)

(* Exponential backoff can only delay the winning probe, never rewind
   the acquire, and the extra delay is accounted as backoff cycles. *)
let test_backoff_accounting () =
  let run ~backoff_after =
    let l = Spinlock.make ~enabled:true ~cost:cm "t" in
    Spinlock.set_watchdog l ~bound:1_000_000 ~backoff_after;
    ignore (Spinlock.locked_op ~vp:0 l ~now:0 ~op_cycles:400);
    let f = Spinlock.locked_op ~vp:1 l ~now:1 ~op_cycles:10 in
    (f, Spinlock.backoff_cycles l, Spinlock.spin_cycles l)
  in
  let f_fixed, bo_fixed, spin_fixed = run ~backoff_after:0 in
  let f_bo, bo, spin_bo = run ~backoff_after:2 in
  check "fixed-interval spin has no backoff cycles" 0 bo_fixed;
  check_bool "backoff delayed the winning probe" true (f_bo >= f_fixed);
  check "the extra delay is exactly the backoff account" (f_bo - f_fixed) bo;
  check "contention spin is unchanged by backoff" spin_fixed spin_bo

(* --- processor crash and interpreter failover --- *)

let eval_with injector =
  let vm = Testkit.fault_vm injector in
  ignore (Workloads.spawn_busy vm 4);
  let result = Vm.eval_to_string vm Testkit.busy_eval_source in
  (vm, result)

(* A processor crash mid-run: the dead interpreter's Process fails over
   to a survivor, its caches are abandoned, and the benchmark's answer
   is unchanged — all under the strict sanitizer.  The query stream is
   shared between injection points, so scan for an index that lands on
   a scheduling check (a wrong-point index injects nothing). *)
let test_crash_failover_preserves_result () =
  let _, expected = eval_with None in
  let rec honoured index =
    if index > 400 then Alcotest.fail "no index reached a scheduling check"
    else
      let inj = Fault.replay (Testkit.crash_plan index) in
      let vm, got = eval_with (Some inj) in
      if Fault.injected inj = [] then honoured (index + 1) else (vm, got)
  in
  let vm, got = honoured 0 in
  check_str "the crashed run computes the same answer" expected got;
  check "one crash was delivered" 1 vm.Vm.crashes_delivered;
  let r = Instrumentation.gather vm in
  check "the dead vp's Process failed over" 1 r.Instrumentation.failovers;
  check_bool "its free-context list was abandoned" true
    (r.Instrumentation.ctx_abandons >= 1)

(* --- failover never double-enqueues --- *)

let count_in_list h nil proc list =
  let rec go cur n =
    if Oop.equal cur nil then n
    else
      go
        (Heap.get h cur Layout.Process.next_link)
        (if Oop.equal cur proc then n + 1 else n)
  in
  go (Heap.get h list Layout.Linked_list.first) 0

(* Every ready structure the scheduler owns: the serialized per-priority
   lists, or all processors' deques. *)
let count_everywhere vm proc =
  let sched = vm.Vm.shared.State.sched in
  let h = vm.Vm.heap in
  let nil = vm.Vm.u.Universe.nil in
  let total = ref 0 in
  for priority = 1 to Layout.Scheduler.priorities do
    match sched.Scheduler.strategy with
    | Scheduler.Locked ->
        total :=
          !total + count_in_list h nil proc (Scheduler.ready_list sched priority)
    | Scheduler.Stealing ->
        for owner = 0 to sched.Scheduler.processors - 1 do
          total :=
            !total
            + count_in_list h nil proc (Scheduler.deque sched ~owner ~priority)
        done
  done;
  !total

(* MS keeps the running Process in its ready list, so the victim of a
   crash is usually still chained in when failover recovers it; the
   recovery must leave it queued exactly once, never append a second
   link (which would corrupt the list the moment either link is
   unchained). *)
let failover_keeps_single_membership vm =
  let sched = vm.Vm.shared.State.sched in
  let h = vm.Vm.heap in
  let proc = Vm.spawn vm "1" in
  Scheduler.set_running_on sched proc (Some 1);
  sched.Scheduler.running.(1) <- proc;
  check "queued once before the crash" 1 (count_everywhere vm proc);
  let ctx = Heap.get h proc Layout.Process.suspended_context in
  ignore (Scheduler.failover sched ~now:0 ~dead:1 proc ctx);
  check "queued exactly once after failover" 1 (count_everywhere vm proc);
  check_bool "detached from the dead processor" true
    (Scheduler.running_on sched proc = None);
  check "the recovery was counted" 1 (Scheduler.failovers sched)

let test_failover_no_double_enqueue () =
  failover_keeps_single_membership (Testkit.fault_vm None)

let test_failover_no_double_enqueue_stealing () =
  failover_keeps_single_membership
    (Testkit.fault_vm ~scheduler:Config.Sched_stealing None)

(* Crash-during-yield regression: a yield-heavy victim keeps re-chaining
   itself through the ready queue, so a crash delivered anywhere in that
   loop exercises failover against a queued victim.  The answer must be
   the no-fault one, at the first two distinct indices that honour the
   crash. *)
let yield_eval_source =
  "| s | s := 0. 1 to: 60 do: [:i | s := s + i. Processor yield]. s"

let eval_yield_with ?scheduler injector =
  let vm = Testkit.fault_vm ?scheduler injector in
  ignore (Workloads.spawn_busy vm 4);
  let result = Vm.eval_to_string vm yield_eval_source in
  (vm, result)

let test_crash_during_yield_preserves_result () =
  let _, expected = eval_yield_with None in
  let hits = ref 0 in
  let index = ref 0 in
  while !hits < 2 && !index <= 400 do
    let inj = Fault.replay (Testkit.crash_plan !index) in
    let vm, got = eval_yield_with (Some inj) in
    if Fault.injected inj <> [] then begin
      incr hits;
      check_str
        (Printf.sprintf "crash at index %d amid yielding keeps the answer"
           !index)
        expected got;
      check "one crash was delivered" 1 vm.Vm.crashes_delivered
    end;
    incr index
  done;
  check "two indices honoured the crash" 2 !hits

(* E16: crashing a deque owner must strand nothing — the dead
   processor's deque stays stealable and the victim Process fails over,
   with the answer unchanged under the strict sanitizer. *)
let test_deque_owner_crash_stealing () =
  let scheduler = Config.Sched_stealing in
  let _, expected = eval_yield_with ~scheduler None in
  let rec honoured index =
    if index > 400 then Alcotest.fail "no index reached a scheduling check"
    else
      let inj = Fault.replay (Testkit.crash_plan index) in
      let vm, got = eval_yield_with ~scheduler (Some inj) in
      if Fault.injected inj = [] then honoured (index + 1) else (vm, got)
  in
  let vm, got = honoured 0 in
  check_str "the answer survives a deque owner's crash" expected got;
  check "one crash was delivered" 1 vm.Vm.crashes_delivered;
  let r = Instrumentation.gather vm in
  check "the dead owner's Process failed over" 1 r.Instrumentation.failovers;
  check_bool "the stealing scheduler was active" true
    r.Instrumentation.steal.Instrumentation.stealing

(* The headline identity: an installed injector that never fires leaves
   the run bit-identical to the seed — same answer, same virtual time. *)
let no_fault_identity_prop =
  QCheck.Test.make ~count:4
    ~name:"a no-fault injector is bit-identical to the seed run"
    Testkit.seed_arb
    (fun seed ->
      let _, expected = eval_with None in
      let control = Testkit.fault_vm None in
      ignore (Workloads.spawn_busy control 4);
      ignore (Vm.eval_to_string control Testkit.busy_eval_source);
      let inj = Fault.seeded ~params:Fault.no_faults ~seed () in
      let vm, got = eval_with (Some inj) in
      got = expected
      && Vm.cycles vm = Vm.cycles control
      && Fault.injected inj = [])

(* Any single processor crash — wherever it lands — still yields the
   correct answer with the strict sanitizer armed. *)
let single_crash_survives_prop =
  QCheck.Test.make ~count:6
    ~name:"a single vp crash never changes the answer (strict sanitizer)"
    QCheck.(int_range 0 250)
    (fun index ->
      let _, expected = eval_with None in
      let _, got = eval_with (Some (Fault.replay (Testkit.crash_plan index))) in
      got = expected)

(* The same claim over the real macro benchmarks, via a reduced crash
   campaign: every seeded run must survive or be a detected deadlock,
   never a wrong answer. *)
let test_crash_campaign_on_macro_benchmarks () =
  let s =
    Fault_study.run_campaign ~campaign:Fault.Crash ~seeds:2 ~quick:true
      ~bench_keys:[ "definition" ] ()
  in
  check "no failures in the crash campaign" 0 s.Fault_study.failed;
  check "every run survived" 2 s.Fault_study.survived

(* --- degraded parallel scavenging --- *)

let collect_with_worker_crash ~workers plan =
  let rng = Random.State.make [| 4242 |] in
  let processors = 4 in
  let h, cls, nil = Testkit.make_replicated_heap ~processors () in
  let objs =
    Testkit.build_graph ~old_holders:6 ~root_objs:true h cls rng ~n:50
      ~processors
  in
  let root = ref objs.(49) in
  Heap.add_root h root;
  let before = Testkit.fingerprint h nil !root in
  let injector = Fault.replay plan in
  let _, pr = Scavenger.scavenge_parallel h cm ~injector ~workers () in
  let after = Testkit.fingerprint h nil !root in
  (pr, before = after, Verify.check h)

(* A worker killed at a barrier degrades the collection: survivors
   finish its work, the result is flagged, and the heap verifies. *)
let test_degraded_scavenge_verifies () =
  let pr, preserved, problems =
    collect_with_worker_crash ~workers:3
      [ { Fault.index = 0; fault = Fault.Worker_crash 1 } ]
  in
  check_bool "the collection is flagged degraded" true pr.Scavenger.degraded;
  check "one worker failed" 1 (List.length pr.Scavenger.failed_workers);
  check_bool "the graph survived the degraded collection" true preserved;
  check "the degraded heap passes verification" 0 (List.length problems)

(* The scavenger never kills its last live worker: a plan full of
   worker crashes still leaves one survivor to finish the collection. *)
let test_degraded_never_kills_last_worker () =
  let plan =
    List.init 8 (fun i -> { Fault.index = i; fault = Fault.Worker_crash i })
  in
  let pr, preserved, problems = collect_with_worker_crash ~workers:2 plan in
  check_bool "at most one of two workers died" true
    (List.length pr.Scavenger.failed_workers <= 1);
  check_bool "the graph survived" true preserved;
  check "the heap verifies" 0 (List.length problems)

(* --- fault-plan files and shrinking --- *)

let plan_roundtrip_prop =
  QCheck.Test.make ~count:100 ~name:"fault plans round-trip through files"
    Testkit.fault_plan_arb
    (fun plan ->
      let file = Filename.temp_file "mst-fault" ".plan" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          Fault.save file plan;
          Fault.load file = plan))

let test_load_rejects_garbage () =
  let file = Filename.temp_file "mst-fault" ".plan" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "# comment\ncrash 3\nwobble 4 5\n";
      close_out oc;
      match Fault.load file with
      | _ -> Alcotest.fail "expected Failure on a malformed line"
      | exception Failure _ -> ())

(* An empty (or comment-only) plan is a legal file, but replaying it
   would silently run unperturbed — load_replay must refuse it and pass
   real plans through untouched. *)
let test_load_replay_rejects_empty () =
  let file = Filename.temp_file "mst-fault" ".plan" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "# mst fault plan v1\n# nothing recorded\n";
      close_out oc;
      check "load itself accepts the empty plan" 0
        (List.length (Fault.load file));
      (match Fault.load_replay file with
       | _ -> Alcotest.fail "expected Failure on an empty replay plan"
       | exception Failure _ -> ());
      let plan = Testkit.crash_plan 7 in
      Fault.save file plan;
      check_bool "a real plan passes through load_replay" true
        (Fault.load_replay file = plan))

(* A synthetic failure needing exactly two of six faults: ddmin must
   find a two-step plan that still fails. *)
let test_shrink_minimal () =
  let fails plan =
    List.exists (fun s -> s.Fault.fault = Fault.Holder_crash) plan
    && List.exists
         (fun s ->
           match s.Fault.fault with Fault.Vp_stall n -> n >= 1000 | _ -> false)
         plan
  in
  let original =
    List.mapi
      (fun i f -> { Fault.index = i * 7; fault = f })
      [ Fault.Vp_crash; Fault.Vp_stall 2000; Fault.Device_timeout 50;
        Fault.Holder_crash; Fault.Worker_crash 1; Fault.Holder_stall 30 ]
  in
  check_bool "the original fails" true (fails original);
  let shrunk, probes = Fault.shrink ~run:fails original in
  check "shrunk to the two relevant faults" 2 (List.length shrunk);
  check_bool "the shrunk plan still fails" true (fails shrunk);
  check_bool "some replays were spent" true (probes > 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "faults"
    [ ("watchdog",
       [ Alcotest.test_case "dead holder detected" `Quick
           test_watchdog_detects_dead_holder;
         Alcotest.test_case "stall survives, stats separate" `Quick
           test_stall_survives_and_stats_separate;
         Alcotest.test_case "watchdog alone is identical" `Quick
           test_watchdog_alone_is_identical;
         Alcotest.test_case "backoff accounting" `Quick
           test_backoff_accounting ]);
      ("crash",
       [ Alcotest.test_case "failover preserves the answer" `Quick
           test_crash_failover_preserves_result;
         Alcotest.test_case "failover never double-enqueues" `Quick
           test_failover_no_double_enqueue;
         Alcotest.test_case "failover never double-enqueues (stealing)"
           `Quick test_failover_no_double_enqueue_stealing;
         Alcotest.test_case "crash during yield" `Quick
           test_crash_during_yield_preserves_result;
         Alcotest.test_case "deque owner crash (stealing)" `Quick
           test_deque_owner_crash_stealing;
         q no_fault_identity_prop;
         q single_crash_survives_prop;
         Alcotest.test_case "crash campaign on macro benchmarks" `Slow
           test_crash_campaign_on_macro_benchmarks ]);
      ("degraded-gc",
       [ Alcotest.test_case "degraded scavenge verifies" `Quick
           test_degraded_scavenge_verifies;
         Alcotest.test_case "never kills the last worker" `Quick
           test_degraded_never_kills_last_worker ]);
      ("plans",
       [ q plan_roundtrip_prop;
         Alcotest.test_case "malformed rejected" `Quick
           test_load_rejects_garbage;
         Alcotest.test_case "empty replay rejected" `Quick
           test_load_replay_rejects_empty;
         Alcotest.test_case "shrink minimal" `Quick test_shrink_minimal ]) ]
