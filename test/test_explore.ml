(* Tests for the schedule explorer: the seeded driver's determinism, the
   decision-trace file format, shrinking against a synthetic failure, the
   scheduling-policy hook at the machine level, and end-to-end runs — the
   published MS configuration explores clean while the deliberately broken
   configurations yield shrunk, replayable counterexamples. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cm = Cost_model.firefly

(* --- the policy hook at the machine level --- *)

(* With no policy installed the engine must behave exactly as before:
   lowest id wins a min-clock tie. *)
let test_default_tie_break () =
  let m = Machine.make ~processors:3 cm in
  (Machine.vp m 0).Machine.clock <- 10;
  (Machine.vp m 1).Machine.clock <- 10;
  (Machine.vp m 2).Machine.clock <- 10;
  (match Machine.min_runnable m with
   | Some vp -> check "lowest id wins by default" 0 vp.Machine.id
   | None -> Alcotest.fail "expected a runnable vp")

let test_policy_tie_break () =
  let m = Machine.make ~processors:3 cm in
  (Machine.vp m 0).Machine.clock <- 10;
  (Machine.vp m 1).Machine.clock <- 10;
  (Machine.vp m 2).Machine.clock <- 20;
  let seen = ref 0 in
  Machine.set_policy m
    (Some
       { Machine.default_policy with
         Machine.choose_tie =
           (fun cands ->
             seen := Array.length cands;
             cands.(Array.length cands - 1)) });
  (match Machine.min_runnable m with
   | Some vp -> check "policy picked the last tied candidate" 1 vp.Machine.id
   | None -> Alcotest.fail "expected a runnable vp");
  check "only the tied vps were offered" 2 !seen;
  (* no tie: the policy must not be consulted *)
  seen := -1;
  (Machine.vp m 0).Machine.clock <- 5;
  (match Machine.min_runnable m with
   | Some vp -> check "unique minimum bypasses the policy" 0 vp.Machine.id
   | None -> Alcotest.fail "expected a runnable vp");
  check "policy not consulted without a tie" (-1) !seen

let test_forced_preempt_flag () =
  let m = Machine.make ~processors:2 cm in
  check_bool "no pending preempt initially" false
    (Machine.take_forced_preempt m 0);
  Machine.flag_preempt m 0;
  check_bool "flag is delivered" true (Machine.take_forced_preempt m 0);
  check_bool "and consumed" false (Machine.take_forced_preempt m 0);
  check_bool "other vps unaffected" false (Machine.take_forced_preempt m 1)

(* Jitter must never rewind an enabled lock's timeline: a contended
   acquire still starts at or after the previous section's finish. *)
let test_jitter_keeps_timeline () =
  let m = Machine.make ~processors:2 cm in
  Machine.set_policy m
    (Some
       { Machine.default_policy with
         Machine.lock_jitter = (fun ~vp:_ ~lock:_ ~now:_ -> 17) });
  let l = Spinlock.make ~enabled:true ~cost:cm "t" in
  Spinlock.attach_machine l m;
  let fin1 = Spinlock.locked_op ~vp:0 l ~now:0 ~op_cycles:50 in
  let fin2 = Spinlock.locked_op ~vp:1 l ~now:10 ~op_cycles:50 in
  check_bool "serialized in spite of the jitter" true
    (fin2 - cm.Cost_model.lock_acquire - 50 >= fin1)

(* --- the seeded driver --- *)

(* Drive a policy through a fixed query pattern and collect the recorded
   schedule; the same seed must reproduce it exactly. *)
let drive seed =
  let d = Explore.seeded ~seed () in
  let p = Explore.policy d in
  let m = Machine.make ~processors:4 cm in
  let cands = Array.init 3 (Machine.vp m) in
  for i = 0 to 199 do
    ignore (p.Machine.choose_tie cands);
    ignore (p.Machine.lock_jitter ~vp:(i mod 4) ~lock:"l" ~now:(i * 10));
    ignore (p.Machine.preempt_after ~vp:(i mod 4) ~lock:"l" ~now:(i * 10))
  done;
  (Explore.recorded d, Explore.queries d)

let test_seeded_deterministic () =
  let s1, q1 = drive 42 in
  let s2, q2 = drive 42 in
  check "same query count" q1 q2;
  check_bool "same seed gives the identical schedule" true (s1 = s2);
  check "every query counted" 600 q1;
  let s3, _ = drive 43 in
  check_bool "a different seed perturbs differently" true (s1 <> s3)

let test_seeded_indices_ascend () =
  let s, _ = drive 7 in
  check_bool "some perturbations happened" true (s <> []);
  let rec ascending = function
    | a :: (b :: _ as rest) ->
        a.Explore.index < b.Explore.index && ascending rest
    | _ -> true
  in
  check_bool "indices strictly ascend" true (ascending s)

(* --- decision-trace files --- *)

let arb_schedule =
  let open QCheck in
  let decision =
    Gen.oneof
      [ Gen.map (fun k -> Explore.Tie_pick k) (Gen.int_range 0 7);
        Gen.map (fun j -> Explore.Lock_jitter j) (Gen.int_range 0 500);
        Gen.return Explore.Force_preempt ]
  in
  let gen =
    Gen.map
      (fun ds ->
        List.mapi (fun i d -> { Explore.index = i * 3; decision = d }) ds)
      (Gen.list_size (Gen.int_range 0 40) decision)
  in
  make ~print:(Format.asprintf "%a" Explore.pp) gen

let save_load_roundtrip_prop =
  QCheck.Test.make ~count:100 ~name:"decision traces round-trip through files"
    arb_schedule
    (fun sched ->
      let file = Filename.temp_file "mst-trace" ".trace" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          Explore.save file sched;
          Explore.load file = sched))

let test_load_rejects_garbage () =
  let file = Filename.temp_file "mst-trace" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "# comment\ntie 3 1\nwibble 4\n";
      close_out oc;
      match Explore.load file with
      | _ -> Alcotest.fail "expected Failure on a malformed line"
      | exception Failure _ -> ())

(* An empty (or comment-only) trace is a legal file, but replaying it
   would silently run the unperturbed schedule — load_replay must refuse
   it and pass real traces through untouched. *)
let test_load_replay_rejects_empty () =
  let file = Filename.temp_file "mst-trace" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "# mst decision trace v1\n# nothing recorded\n";
      close_out oc;
      check "load itself accepts the empty trace" 0
        (List.length (Explore.load file));
      (match Explore.load_replay file with
       | _ -> Alcotest.fail "expected Failure on an empty replay trace"
       | exception Failure _ -> ());
      let sched = [ { Explore.index = 4; decision = Explore.Tie_pick 1 } ] in
      Explore.save file sched;
      check_bool "a real trace passes through load_replay" true
        (Explore.load_replay file = sched))

(* --- shrinking --- *)

(* A synthetic failure: the run "fails" exactly when the schedule still
   contains a Force_preempt at index 30 AND any jitter of at least 10.
   The minimum is two decisions; shrinking must find a two-step schedule
   and never report success on a passing one. *)
let test_shrink_synthetic () =
  let fails sched =
    List.exists
      (fun s -> s.Explore.index = 30 && s.Explore.decision = Explore.Force_preempt)
      sched
    && List.exists
         (fun s ->
           match s.Explore.decision with
           | Explore.Lock_jitter j -> j >= 10
           | _ -> false)
         sched
  in
  let original =
    List.mapi
      (fun i d -> { Explore.index = i * 10; decision = d })
      [ Explore.Tie_pick 2; Explore.Lock_jitter 400; Explore.Tie_pick 1;
        Explore.Force_preempt; Explore.Lock_jitter 3; Explore.Tie_pick 0 ]
  in
  check_bool "the original fails" true (fails original);
  let shrunk, probes = Explore.shrink ~run:fails original in
  check "shrunk to the two relevant decisions" 2 (List.length shrunk);
  check_bool "the shrunk schedule still fails" true (fails shrunk);
  check_bool "some replays were spent" true (probes > 0);
  (* value shrinking halves the surviving jitter toward the threshold *)
  List.iter
    (fun s ->
      match s.Explore.decision with
      | Explore.Lock_jitter j ->
          check_bool "jitter shrunk below twice the threshold" true (j < 20)
      | _ -> ())
    shrunk

let test_shrink_budget_respected () =
  let fails _ = true in
  let original =
    List.init 64 (fun i -> { Explore.index = i; decision = Explore.Force_preempt })
  in
  let shrunk, probes = Explore.shrink ~run:fails ~budget:10 original in
  check_bool "budget caps the replays" true (probes <= 10);
  check_bool "a universally failing schedule shrinks toward empty" true
    (List.length shrunk <= 64)

(* --- end to end: the differential oracle --- *)

let quick_setup = Explorer.ms_setup ~quick:true ()

let test_ms_explores_clean () =
  let r = Explorer.explore quick_setup ~seeds:3 in
  check "no counterexamples on the published MS configuration" 0
    (List.length r.Explorer.counterexamples);
  check "three seeds ran" 3 r.Explorer.seeds_run;
  check_bool "the seeds actually perturbed the schedule" true
    (r.Explorer.perturbations > 0);
  check_bool "distinct seeds gave distinct schedules" true
    (r.Explorer.distinct > 1)

let test_same_seed_same_run () =
  let o1 = Explorer.run_seed quick_setup ~seed:11 in
  let o2 = Explorer.run_seed quick_setup ~seed:11 in
  check_bool "identical schedules" true (o1.Explorer.schedule = o2.Explorer.schedule);
  check "identical query counts" o1.Explorer.queries o2.Explorer.queries;
  (match (o1.Explorer.obs, o2.Explorer.obs) with
   | Some a, Some b ->
       check_bool "identical observables" true
         (a.Explorer.result = b.Explorer.result
          && a.Explorer.transcript = b.Explorer.transcript
          && a.Explorer.census = b.Explorer.census)
   | _ -> Alcotest.fail "both runs must complete")

let test_replay_empty_is_reference () =
  let r = Explorer.reference quick_setup in
  let o = Explorer.run_schedule quick_setup [] in
  Alcotest.(check (option string)) "empty schedule passes the oracle" None
    (Explorer.check ~reference:r o)

let expect_counterexample name setup =
  let r = Explorer.explore setup ~seeds:4 in
  check_bool (name ^ ": a counterexample was found") true
    (r.Explorer.counterexamples <> []);
  List.iter
    (fun c ->
      check_bool
        (Printf.sprintf "%s: seed %d's shrunk schedule reproduces" name
           c.Explorer.seed)
        true c.Explorer.reproduces;
      check_bool
        (Printf.sprintf "%s: shrunk no larger than the original" name)
        true
        (List.length c.Explorer.shrunk <= List.length c.Explorer.original))
    r.Explorer.counterexamples

let test_broken_unlocked_found () =
  expect_counterexample "unlocked"
    (Explorer.broken_unlocked_setup ~quick:true ())

let test_broken_ctx_found () =
  expect_counterexample "ctx-unbracketed"
    (Explorer.broken_ctx_setup ~quick:true ())

(* --- the work-stealing scheduler (E16) --- *)

(* Exploring the stealing scheduler against a *locked* reference makes
   the oracle differential across representations: a steal that loses,
   duplicates or reorders an answer-reaching Process diverges from the
   serialized queue's observables even when no lock discipline was
   violated. *)
let test_stealing_explores_clean_vs_locked () =
  let r =
    Explorer.explore
      ~reference_setup:(Explorer.ms_setup ~quick:true ())
      (Explorer.stealing_setup ~quick:true ())
      ~seeds:3
  in
  check "stealing explores clean against the locked reference" 0
    (List.length r.Explorer.counterexamples);
  check_bool "the seeds actually perturbed the schedule" true
    (r.Explorer.perturbations > 0)

(* The same claim as a 50-seed property on 2 and 3 processors: every
   perturbed stealing run must match the locked scheduler's unperturbed
   observables (result, transcript and stable-root census). *)
let steal_vs_locked_prop =
  let references =
    lazy
      (List.map
         (fun p ->
           (p, Explorer.reference (Explorer.ms_setup ~processors:p ~quick:true ())))
         [ 2; 3 ])
  in
  QCheck.Test.make ~count:50
    ~name:"stealing matches the locked scheduler on every seed (2-3 vps)"
    QCheck.(pair (int_range 2 3) (int_range 0 1_000_000))
    (fun (processors, seed) ->
      let reference = List.assoc processors (Lazy.force references) in
      let o =
        Explorer.run_seed
          (Explorer.stealing_setup ~processors ~quick:true ())
          ~seed
      in
      Explorer.check ~reference o = None)

(* --- the event-calendar engine (E17) --- *)

(* The same differential idea across engines: a perturbed calendar-engine
   run must compute the scan engine's observables — parking idle VPs and
   batching uncontended steps may shift cycle counts, but never the
   result, the transcript or the stable-root census. *)
let test_calendar_explores_clean_vs_scan () =
  let r =
    Explorer.explore
      ~reference_setup:(Explorer.ms_setup ~quick:true ())
      (Explorer.calendar_setup ~quick:true ())
      ~seeds:3
  in
  check "calendar explores clean against the scan reference" 0
    (List.length r.Explorer.counterexamples);
  check_bool "the seeds actually perturbed the schedule" true
    (r.Explorer.perturbations > 0)

let calendar_vs_scan_prop =
  let references =
    lazy
      (List.map
         (fun p ->
           (p, Explorer.reference (Explorer.ms_setup ~processors:p ~quick:true ())))
         [ 2; 3 ])
  in
  QCheck.Test.make ~count:25
    ~name:"calendar engine matches the scan engine on every seed (2-3 vps)"
    QCheck.(pair (int_range 2 3) (int_range 0 1_000_000))
    (fun (processors, seed) ->
      let reference = List.assoc processors (Lazy.force references) in
      let o =
        Explorer.run_seed
          (Explorer.calendar_setup ~processors ~quick:true ())
          ~seed
      in
      Explorer.check ~reference o = None)

(* The deliberately broken steal protocol (no deque-lock brackets) must
   be caught by the strict sanitizer on *every* seed — the unguarded
   mutation happens on the very first deque operation, perturbed or
   not. *)
let test_broken_steal_found_every_seed () =
  let setup = Explorer.broken_steal_setup ~quick:true () in
  let r = Explorer.explore setup ~seeds:4 in
  check "every seed yields a counterexample" 4
    (List.length r.Explorer.counterexamples);
  List.iter
    (fun c ->
      check_bool
        (Printf.sprintf "steal-unlocked: seed %d's shrunk schedule reproduces"
           c.Explorer.seed)
        true c.Explorer.reproduces)
    r.Explorer.counterexamples

(* --- the incremental old-space collector (E18) --- *)

(* The differential oracle across collector on/off: collector slices
   shift lock timelines and clock totals, but mark-sweep never moves or
   frees a reachable object, so every perturbed collector run must
   compute the collector-free reference's observables. *)
let test_major_explores_clean_vs_off () =
  let setup = Explorer.major_setup ~quick:true () in
  (* the workload must actually exercise the collector, or the oracle is
     vacuous: check cycles complete on an unperturbed run of the same
     configuration and source *)
  let vm = Vm.create setup.Explorer.config in
  ignore (Vm.eval vm setup.Explorer.source);
  (match vm.Vm.major with
   | Some mj ->
       check_bool "the workload completes collector cycles" true
         (Major.cycles_completed mj >= 1)
   | None -> Alcotest.fail "collector not configured");
  let r =
    Explorer.explore
      ~reference_setup:(Explorer.major_reference_setup ~quick:true ())
      setup ~seeds:3
  in
  check "collector explores clean against the collector-free reference" 0
    (List.length r.Explorer.counterexamples);
  check_bool "the seeds actually perturbed the schedule" true
    (r.Explorer.perturbations > 0)

let major_vs_off_prop =
  let reference =
    lazy (Explorer.reference (Explorer.major_reference_setup ~quick:true ()))
  in
  QCheck.Test.make ~count:15
    ~name:"collector runs match the collector-free observables on every seed"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let o = Explorer.run_seed (Explorer.major_setup ~quick:true ()) ~seed in
      Explorer.check ~reference:(Lazy.force reference) o = None)

let test_broken_major_found () =
  expect_counterexample "major-nobarrier"
    (Explorer.broken_major_setup ~quick:true ())

(* --- fault plumbing --- *)

(* The fault setup arms the watchdog, but an injector that never fires
   must leave the run matching the fault-free reference: both the empty
   plan and a canonical plan (shared with test_faults) whose index lies
   past every query the run makes. *)
let test_fault_setup_no_faults_is_reference () =
  let setup = Explorer.fault_setup ~quick:true () in
  let r = Explorer.reference setup in
  List.iter
    (fun plan ->
      let o = Explorer.run_faults setup (Fault.replay plan) in
      Alcotest.(check (option string)) "a fault-free run passes the oracle"
        None
        (Explorer.check ~reference:r o);
      check_bool "no deadlock was suspected" true (o.Explorer.deadlock = None);
      check_bool "no faults were honoured" true (o.Explorer.fault_plan = []))
    [ []; Testkit.crash_plan 1_000_000 ]

let () =
  let qtests =
    List.map QCheck_alcotest.to_alcotest [ save_load_roundtrip_prop ]
  in
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "explore"
    [ ("policy",
       [ Alcotest.test_case "default tie break" `Quick test_default_tie_break;
         Alcotest.test_case "policy tie break" `Quick test_policy_tie_break;
         Alcotest.test_case "forced preempt flag" `Quick
           test_forced_preempt_flag;
         Alcotest.test_case "jitter keeps timeline" `Quick
           test_jitter_keeps_timeline ]);
      ("seeded",
       [ Alcotest.test_case "deterministic" `Quick test_seeded_deterministic;
         Alcotest.test_case "indices ascend" `Quick test_seeded_indices_ascend ]);
      ("files",
       Alcotest.test_case "malformed rejected" `Quick test_load_rejects_garbage
       :: Alcotest.test_case "empty replay rejected" `Quick
            test_load_replay_rejects_empty
       :: qtests);
      ("shrink",
       [ Alcotest.test_case "synthetic failure" `Quick test_shrink_synthetic;
         Alcotest.test_case "budget" `Quick test_shrink_budget_respected ]);
      ("oracle",
       [ Alcotest.test_case "ms explores clean" `Quick test_ms_explores_clean;
         Alcotest.test_case "same seed same run" `Quick test_same_seed_same_run;
         Alcotest.test_case "empty replay is the reference" `Quick
           test_replay_empty_is_reference;
         Alcotest.test_case "unlocked config caught" `Quick
           test_broken_unlocked_found;
         Alcotest.test_case "unbracketed ctx caught" `Quick
           test_broken_ctx_found;
         Alcotest.test_case "fault setup without faults is the reference"
           `Quick test_fault_setup_no_faults_is_reference ]);
      ("stealing",
       [ Alcotest.test_case "explores clean vs locked" `Quick
           test_stealing_explores_clean_vs_locked;
         q steal_vs_locked_prop;
         Alcotest.test_case "unlocked steal caught every seed" `Quick
           test_broken_steal_found_every_seed ]);
      ("calendar",
       [ Alcotest.test_case "explores clean vs scan" `Quick
           test_calendar_explores_clean_vs_scan;
         q calendar_vs_scan_prop ]);
      ("major",
       [ Alcotest.test_case "explores clean vs collector-free" `Quick
           test_major_explores_clean_vs_off;
         q major_vs_off_prop;
         Alcotest.test_case "broken barrier caught" `Quick
           test_broken_major_found ]) ]
