(* Tests for the E17 image-server workload: closed- and open-loop
   generators, admission control, quiescent termination, and engine
   agreement (scan vs calendar) on the request-level observables. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let config ?(processors = 4) ?(engine = Config.Engine_calendar) () =
  { (Config.testing ~processors ()) with Config.engine }

let test_closed_loop_completes () =
  let p =
    { Server.default_params with
      Server.sessions = 3; workers = 2; requests = 2; think_ms = 10 }
  in
  let _vm, s = Server.run (config ()) p in
  check "every request offered" 6 s.Server.offered;
  check "every request completed" 6 s.Server.completed;
  check "nothing rejected" 0 s.Server.rejected;
  check_bool "run quiesced" true s.Server.quiesced;
  check_bool "latencies measured" true (s.Server.latency.Server.p50 > 0);
  check_bool "p50 <= p99 <= max" true
    (s.Server.latency.Server.p50 <= s.Server.latency.Server.p99
     && s.Server.latency.Server.p99 <= s.Server.latency.Server.pmax);
  Array.iter (fun n -> check "each session fully served" 2 n)
    s.Server.per_session

let test_open_loop_completes () =
  let p =
    { Server.default_params with
      Server.sessions = 2; workers = 2; loop = Server.Open; requests = 3;
      interval_ms = 40 }
  in
  let _vm, s = Server.run (config ()) p in
  check "every request offered" 6 s.Server.offered;
  check "every request completed" 6 s.Server.completed;
  check_bool "run quiesced" true s.Server.quiesced

(* One worker, zero inter-arrival gap: the arrivals flood in together and
   admission must turn the overflow away, yet the run still quiesces. *)
let test_admission_control () =
  let p =
    { Server.default_params with
      Server.sessions = 4; workers = 1; loop = Server.Open; requests = 2;
      interval_ms = 0; admit = 1 }
  in
  let _vm, s = Server.run (config ()) p in
  check "every arrival accounted" 8 (s.Server.completed + s.Server.rejected);
  check_bool "overflow rejected" true (s.Server.rejected > 0);
  check_bool "some requests served" true (s.Server.completed >= 1);
  check_bool "run quiesced" true s.Server.quiesced

(* The differential oracle at the request level: both engines must agree
   on every request-stream observable (admission disabled — with a cap,
   legitimate cycle-level divergence could reject different requests). *)
let test_engines_agree () =
  let p =
    { Server.default_params with
      Server.sessions = 3; workers = 2; requests = 2; think_ms = 25 }
  in
  let _vm, scan = Server.run (config ~engine:Config.Engine_scan ()) p in
  let _vm, cal = Server.run (config ~engine:Config.Engine_calendar ()) p in
  check "offered agree" scan.Server.offered cal.Server.offered;
  check "completed agree" scan.Server.completed cal.Server.completed;
  check "rejected agree" scan.Server.rejected cal.Server.rejected;
  check "bytecodes agree" scan.Server.steps cal.Server.steps;
  Alcotest.(check (array int)) "per-session counts agree"
    scan.Server.per_session cal.Server.per_session;
  check_bool "both quiesced" true
    (scan.Server.quiesced && cal.Server.quiesced);
  check_bool "calendar parked idle processors" true (cal.Server.parks > 0)

(* Strict sanitizer across the whole serve run: the request path (mailbox
   receive, pool semaphore, compiles from several workers) must stay
   serialization-clean. *)
let test_serve_sanitized () =
  let cfg =
    { (config ~processors:4 ()) with Config.sanitize = Sanitizer.Strict }
  in
  let p =
    { Server.default_params with
      Server.sessions = 2; workers = 2; requests = 2; think_ms = 10 }
  in
  let vm, s = Server.run cfg p in
  check_bool "run quiesced" true s.Server.quiesced;
  check "no violations" 0 (Sanitizer.violation_count (Vm.sanitizer vm))

let test_rejects_bad_params () =
  check_bool "zero sessions rejected" true
    (try
       ignore
         (Server.run (config ())
            { Server.default_params with Server.sessions = 0 });
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "server"
    [ ("workload",
       [ Alcotest.test_case "closed loop completes" `Quick
           test_closed_loop_completes;
         Alcotest.test_case "open loop completes" `Quick
           test_open_loop_completes;
         Alcotest.test_case "admission control" `Quick test_admission_control;
         Alcotest.test_case "bad params" `Quick test_rejects_bad_params ]);
      ("differential",
       [ Alcotest.test_case "engines agree" `Quick test_engines_agree;
         Alcotest.test_case "strict sanitizer clean" `Quick
           test_serve_sanitized ]) ]
