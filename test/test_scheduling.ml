(* Tests for Smalltalk Process scheduling on the simulated multiprocessor:
   fork/join, priorities and preemption, semaphores, yield, suspend/resume,
   terminate, and MS's reorganized protocol (thisProcess / canRun: / the
   running-Processes-stay-in-queue rule). *)

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let make ?(processors = 5) () = Vm.create (Config.testing ~processors ())

(* Worker isolation pattern: forked blocks must come from distinct method
   activations so their home frames are not shared. *)
let worker_kit = {st|
CLASS WorkerKit SUPER Object
METHODS WorkerKit
spawn: k into: results done: sem
    [ | s |
      s := 0.
      1 to: k * 100 do: [:i | s := s + i].
      results at: k put: s.
      sem signal ] fork
!
spawnAt: priority mark: results slot: k done: sem
    [ results at: k put: Processor thisProcess priority.
      sem signal ] forkAt: priority
!
|st}

let test_fork_join () =
  let vm = make () in
  Vm.load_classes vm worker_kit;
  check_str "four workers all complete" "4"
    (Vm.eval_to_string vm
       {st|
| results sem kit count |
results := Array new: 4.
sem := Semaphore new.
kit := WorkerKit new.
1 to: 4 do: [:k | kit spawn: k into: results done: sem].
1 to: 4 do: [:k | sem wait].
count := 0.
results do: [:r | r notNil ifTrue: [count := count + 1]].
count
|st});
  check_str "worker results are correct" "true"
    (Vm.eval_to_string vm
       {st|
| results sem kit ok |
results := Array new: 4.
sem := Semaphore new.
kit := WorkerKit new.
1 to: 4 do: [:k | kit spawn: k into: results done: sem].
1 to: 4 do: [:k | sem wait].
ok := true.
1 to: 4 do: [:k |
    (results at: k) = (k * 100 * (k * 100 + 1) // 2) ifFalse: [ok := false]].
ok
|st})

let test_semaphore_excess () =
  let vm = make ~processors:1 () in
  check_str "signals accumulate" "9"
    (Vm.eval_to_string vm
       "| s | s := Semaphore new. s signal; signal; signal. s wait. s wait. s wait. 9");
  check_str "excessSignals visible" "2"
    (Vm.eval_to_string vm
       "| s | s := Semaphore new. s signal; signal. s excessSignals")

let test_mutual_exclusion () =
  let vm = make () in
  Vm.load_classes vm
    {st|
CLASS CriticalKit SUPER Object
METHODS CriticalKit
bump: holder guard: mutex done: sem
    [ 1 to: 50 do: [:i |
          mutex critical: [holder at: 1 put: (holder at: 1) + 1]].
      sem signal ] fork
!
|st};
  check_str "critical section protects the counter" "200"
    (Vm.eval_to_string vm
       {st|
| holder mutex sem kit |
holder := Array with: 0.
mutex := Semaphore forMutualExclusion.
sem := Semaphore new.
kit := CriticalKit new.
1 to: 4 do: [:k | kit bump: holder guard: mutex done: sem].
1 to: 4 do: [:k | sem wait].
holder at: 1
|st})

let test_priorities () =
  let vm = make ~processors:1 () in
  Vm.load_classes vm worker_kit;
  (* on one processor, a higher-priority Process runs to completion before
     a lower-priority one gets a turn *)
  check_str "priority order on a uniprocessor" "'HL'"
    (Vm.eval_to_string vm
       {st|
| log sem |
log := WriteStream on: (String new: 4).
sem := Semaphore new.
[ log nextPutAll: 'L'. sem signal ] forkAt: 2.
[ log nextPutAll: 'H'. sem signal ] forkAt: 6.
sem wait. sem wait.
log contents
|st})

let test_preemption () =
  let vm = make ~processors:1 () in
  (* a long-running low-priority Process is preempted when a higher one
     becomes ready via the input-event machinery... simplified: resume of a
     high-priority process happens from the running low-priority one *)
  check_str "higher priority preempts at the scheduling check" "'hi'"
    (Vm.eval_to_string vm
       {st|
| flag proc |
flag := Array with: 'no'.
proc := [ flag at: 1 put: 'hi' ] newProcess.
proc priority: 7.
proc resume.
"spin long enough to pass a scheduling check; the priority-7 process
 must preempt this priority-5 doIt"
1 to: 30000 do: [:i | i].
flag at: 1
|st})

let test_yield () =
  let vm = make ~processors:1 () in
  check_str "yield lets an equal-priority process in" "'ab'"
    (Vm.eval_to_string vm
       {st|
| log sem |
log := WriteStream on: (String new: 4).
sem := Semaphore new.
[ log nextPutAll: 'a'. sem signal ] forkAt: 5.
Processor yield.
log nextPutAll: 'b'.
sem wait.
log contents
|st})

let test_suspend_resume () =
  let vm = make ~processors:1 () in
  check_str "suspended process does not run until resumed" "'ok'"
    (Vm.eval_to_string vm
       {st|
| flag proc |
flag := Array with: 'ok'.
proc := [ flag at: 1 put: 'ran' ] newProcess.
proc priority: 6.
"not resumed: must not run"
1 to: 20000 do: [:i | i].
flag at: 1
|st});
  check_str "resume runs it" "'ran'"
    (Vm.eval_to_string vm
       {st|
| flag proc |
flag := Array with: 'no'.
proc := [ flag at: 1 put: 'ran' ] newProcess.
proc priority: 6.
proc resume.
1 to: 20000 do: [:i | i].
flag at: 1
|st})

let test_terminate () =
  let vm = make ~processors:2 () in
  check_str "terminating a spinning process on another processor" "true"
    (Vm.eval_to_string vm
       {st|
| proc |
proc := [[true] whileTrue] newProcess.
proc resume.
1 to: 5000 do: [:i | i].
proc terminate.
1 to: 30000 do: [:i | i].
proc isTerminated
|st});
  check_str "isTerminated after completion" "true"
    (Vm.eval_to_string vm
       {st|
| proc |
proc := [ 1 ] newProcess.
proc resume.
1 to: 30000 do: [:i | i].
proc isTerminated
|st})

(* --- the reorganization (paper section 3.3) --- *)

let test_this_process () =
  let vm = make () in
  check_str "thisProcess answers a Process" "true"
    (Vm.eval_to_string vm "Processor thisProcess class == Process");
  check_str "activeProcess is reorganized onto thisProcess" "true"
    (Vm.eval_to_string vm "Processor activeProcess == Processor thisProcess")

let test_can_run () =
  let vm = make () in
  check_str "the running process canRun" "true"
    (Vm.eval_to_string vm "Processor canRun: Processor thisProcess");
  check_str "a fresh suspended process cannot run" "false"
    (Vm.eval_to_string vm "Processor canRun: [1] newProcess");
  check_str "a resumed process can run" "true"
    (Vm.eval_to_string vm
       "| p | p := [1 to: 100000 do: [:i | i]] newProcess. p resume. Processor canRun: p")

let test_running_stays_in_queue () =
  (* MS semantics: the running Process remains in its ready list *)
  let vm = make () in
  check_str "running process visible in the ready list (MS)" "true"
    (Vm.eval_to_string vm
       {st|
| me list found |
me := Processor thisProcess.
list := Processor readyLists at: me priority.
found := false.
list do: [:p | p == me ifTrue: [found := true]].
found
|st});
  (* BS semantics: removed while running *)
  let bs = Vm.create (Config.testing ~processors:1 ()) in
  check_str "running process absent from the ready list (BS)" "false"
    (Vm.eval_to_string bs
       {st|
| me list found |
me := Processor thisProcess.
list := Processor readyLists at: me priority.
found := false.
list do: [:p | p == me ifTrue: [found := true]].
found
|st})

let test_scheduler_visible () =
  let vm = make () in
  check_str "ready lists are ordinary objects" "8"
    (Vm.eval_to_string vm "Processor readyLists size");
  check_str "ready lists are LinkedLists" "true"
    (Vm.eval_to_string vm "(Processor readyLists at: 1) class == LinkedList")

let test_input_events_signal_semaphore () =
  let vm = make ~processors:1 () in
  (* install an input semaphore, inject an event, check that the waiting
     process is woken by the interpreter's periodic poll *)
  Devices.inject vm.Vm.shared.State.input ~time:0 ~payload:42;
  check_str "event wakes the waiter" "'woken'"
    (Vm.eval_to_string vm
       {st|
| sem |
sem := Semaphore new.
Mirror setInputSemaphore: sem.
sem wait.
'woken'
|st})

(* --- preemption strictness (a priority tie never preempts) --- *)

let sched_of vm = vm.Vm.shared.State.sched

let drain_preempt_flags vm =
  let sched = sched_of vm in
  Array.iteri
    (fun vp _ -> ignore (Scheduler.take_preempt_flag sched vp))
    vm.Vm.states

(* Mark [proc] as executing on [vp], as pick would. *)
let pretend_running vm ~vp proc =
  let sched = sched_of vm in
  Scheduler.set_running_on sched proc (Some vp);
  sched.Scheduler.running.(vp) <- proc

(* Waking an equal-priority Process must not flag the running one: only
   a strictly higher priority preempts. *)
let test_equal_priority_wake_does_not_preempt () =
  let vm = make ~processors:2 () in
  let sched = sched_of vm in
  let a = Vm.spawn vm ~priority:5 "1" in
  pretend_running vm ~vp:0 a;
  drain_preempt_flags vm;
  ignore (Vm.spawn vm ~priority:5 "2");
  check_bool "an equal-priority wake does not preempt" false
    (Scheduler.take_preempt_flag sched 0);
  ignore (Vm.spawn vm ~priority:6 "3");
  check_bool "a strictly higher wake does" true
    (Scheduler.take_preempt_flag sched 0)

(* request_preemption picks the worst running victim and only below the
   given priority — never a tie, and never the higher-priority peer. *)
let test_request_preemption_strictly_lower () =
  let vm = make ~processors:3 () in
  let sched = sched_of vm in
  let low = Vm.spawn vm ~priority:3 "1" in
  let high = Vm.spawn vm ~priority:6 "2" in
  pretend_running vm ~vp:0 low;
  pretend_running vm ~vp:1 high;
  drain_preempt_flags vm;
  Scheduler.request_preemption sched ~priority:3;
  check_bool "a tie with the worst victim does not flag it" false
    (Scheduler.take_preempt_flag sched 0);
  Scheduler.request_preemption sched ~priority:4;
  check_bool "strictly above the worst victim flags it" true
    (Scheduler.take_preempt_flag sched 0);
  check_bool "the higher-priority peer is left alone" false
    (Scheduler.take_preempt_flag sched 1);
  Scheduler.request_preemption sched ~priority:7;
  check_bool "the worst victim is chosen, not the first below" true
    (Scheduler.take_preempt_flag sched 0);
  check_bool "even above both, only one processor is flagged" false
    (Scheduler.take_preempt_flag sched 1)

(* better_ready is the scheduling check's question; equal priority must
   answer no, or every check would bounce the running Process. *)
let test_better_ready_strict () =
  let vm = make ~processors:2 () in
  let sched = sched_of vm in
  ignore (Vm.spawn vm ~priority:5 "1");
  check_bool "an equal-priority ready Process is not better" false
    (Scheduler.better_ready sched ~than:5);
  check_bool "it is better than a lower bar" true
    (Scheduler.better_ready sched ~than:4)

let test_deadlock_detection () =
  let vm = make ~processors:2 () in
  let proc = Vm.spawn vm "| s | s := Semaphore new. s wait. 1" in
  (match Vm.run ~watch:proc vm with
   | Vm.Deadlock -> ()
   | Vm.Finished _ -> Alcotest.fail "expected a deadlock"
   | Vm.Cycle_limit -> Alcotest.fail "expected deadlock, hit cycle limit")

let test_processes_spread_over_processors () =
  let vm = make ~processors:4 () in
  Vm.load_classes vm worker_kit;
  ignore
    (Vm.eval vm
       {st|
| results sem kit |
results := Array new: 3.
sem := Semaphore new.
kit := WorkerKit new.
1 to: 3 do: [:k | kit spawn: k into: results done: sem].
1 to: 3 do: [:k | sem wait].
0
|st});
  let active = Array.fold_left (fun n st -> if st.State.steps > 0 then n + 1 else n) 0 vm.Vm.states in
  check_bool "more than one processor executed bytecodes" true (active > 1)

(* --- the work-stealing scheduler (E16) --- *)

let make_stealing ?(processors = 4) () =
  Vm.create
    { (Config.testing ~processors ()) with
      Config.scheduler = Config.Sched_stealing }

(* The fork/join answer must not depend on the ready-queue
   representation, and the per-deque counters must account for every
   satisfied pick. *)
let test_fork_join_stealing () =
  let run vm =
    Vm.load_classes vm worker_kit;
    Vm.eval_to_string vm
      {st|
| results sem kit ok |
results := Array new: 4.
sem := Semaphore new.
kit := WorkerKit new.
1 to: 4 do: [:k | kit spawn: k into: results done: sem].
1 to: 4 do: [:k | sem wait].
ok := true.
1 to: 4 do: [:k |
    (results at: k) = (k * 100 * (k * 100 + 1) // 2) ifFalse: [ok := false]].
ok
|st}
  in
  let stealing = make_stealing () in
  let got = run stealing in
  check_str "stealing computes the fork/join answer" "true" got;
  check_str "and it matches the locked scheduler's" (run (make ~processors:4 ()))
    got;
  let sched = sched_of stealing in
  check_bool "every pick was local or stolen" true
    (Scheduler.local_picks sched + Scheduler.steals sched > 0);
  let stolen = Array.fold_left ( + ) 0 (Scheduler.stolen_from sched) in
  check_bool "victim counts agree with the steal counter" true
    (stolen = Scheduler.steals sched)

(* Priority order survives the deques: victim selection is
   priority-aware, so the highest-priority ready Process still runs
   first even on one processor's private deques. *)
let test_priorities_stealing () =
  let vm = make_stealing ~processors:1 () in
  Vm.load_classes vm worker_kit;
  check_str "priority order on a stealing uniprocessor" "'HL'"
    (Vm.eval_to_string vm
       {st|
| log sem |
log := WriteStream on: (String new: 4).
sem := Semaphore new.
[ log nextPutAll: 'L'. sem signal ] forkAt: 2.
[ log nextPutAll: 'H'. sem signal ] forkAt: 6.
sem wait. sem wait.
log contents
|st})

(* Yield appends at the steal-preferred FIFO end; an equal-priority peer
   still gets in. *)
let test_yield_stealing () =
  let vm = make_stealing ~processors:1 () in
  check_str "yield lets an equal-priority process in (stealing)" "'ab'"
    (Vm.eval_to_string vm
       {st|
| log sem |
log := WriteStream on: (String new: 4).
sem := Semaphore new.
[ log nextPutAll: 'a'. sem signal ] forkAt: 5.
Processor yield.
log nextPutAll: 'b'.
sem wait.
log contents
|st})

let test_spread_over_processors_stealing () =
  let vm = make_stealing ~processors:4 () in
  Vm.load_classes vm worker_kit;
  ignore
    (Vm.eval vm
       {st|
| results sem kit |
results := Array new: 3.
sem := Semaphore new.
kit := WorkerKit new.
1 to: 3 do: [:k | kit spawn: k into: results done: sem].
1 to: 3 do: [:k | sem wait].
0
|st});
  let active =
    Array.fold_left
      (fun n st -> if st.State.steps > 0 then n + 1 else n)
      0 vm.Vm.states
  in
  check_bool "work spread beyond one processor via the deques" true
    (active > 1)

let () =
  Alcotest.run "scheduling"
    [ ("processes",
       [ Alcotest.test_case "fork/join" `Quick test_fork_join;
         Alcotest.test_case "priorities" `Quick test_priorities;
         Alcotest.test_case "preemption" `Quick test_preemption;
         Alcotest.test_case "yield" `Quick test_yield;
         Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
         Alcotest.test_case "terminate" `Quick test_terminate;
         Alcotest.test_case "spread over processors" `Quick
           test_processes_spread_over_processors ]);
      ("preemption-strictness",
       [ Alcotest.test_case "equal-priority wake does not preempt" `Quick
           test_equal_priority_wake_does_not_preempt;
         Alcotest.test_case "request_preemption strictly lower" `Quick
           test_request_preemption_strictly_lower;
         Alcotest.test_case "better_ready strict" `Quick
           test_better_ready_strict ]);
      ("stealing",
       [ Alcotest.test_case "fork/join" `Quick test_fork_join_stealing;
         Alcotest.test_case "priorities" `Quick test_priorities_stealing;
         Alcotest.test_case "yield" `Quick test_yield_stealing;
         Alcotest.test_case "spread over processors" `Quick
           test_spread_over_processors_stealing ]);
      ("semaphores",
       [ Alcotest.test_case "excess signals" `Quick test_semaphore_excess;
         Alcotest.test_case "mutual exclusion" `Quick test_mutual_exclusion;
         Alcotest.test_case "input events" `Quick test_input_events_signal_semaphore;
         Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection ]);
      ("reorganization",
       [ Alcotest.test_case "thisProcess" `Quick test_this_process;
         Alcotest.test_case "canRun:" `Quick test_can_run;
         Alcotest.test_case "ready queue semantics" `Quick test_running_stays_in_queue;
         Alcotest.test_case "scheduler visibility" `Quick test_scheduler_visible ]) ]
