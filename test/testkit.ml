(* Shared fixtures for the test suites: small heaps with a fake class
   object, deterministic random object graphs with a structural
   fingerprint, the generator shapes the qcheck properties share, and
   strict-sanitizer VM setups with a busy evaluation workload.

   These used to be duplicated (with drift) across test_objmem,
   test_parallel_scavenge and test_sanitizer; any new suite that needs a
   heap or a strict VM should start here. *)

(* --- heaps --- *)

(* A small heap with a fake class object so headers have a valid class. *)
let make_heap ?(policy = Heap.Unlocked) ?(processors = 1) ?(eden = 2048)
    ?(survivor = 1024) ?(old = 8192) ?(tenure_age = 4) () =
  let h =
    Heap.create ~policy ~processors ~tenure_age ~old_words:old
      ~eden_words:eden ~survivor_words:survivor ()
  in
  let cls = Heap.alloc_old h ~slots:0 ~raw:false ~cls:Oop.sentinel () in
  let nil = Heap.alloc_old h ~slots:0 ~raw:false ~cls () in
  Heap.set_nil h nil;
  (h, cls, nil)

(* A replicated-eden heap, as the paper's MS configuration would hand the
   parallel scavenger. *)
let make_replicated_heap ?(processors = 4) ?(eden = 8192) ?(survivor = 4096)
    ?(old = 32768) ?(tenure_age = 4) () =
  make_heap ~policy:Heap.Replicated_eden ~processors ~eden ~survivor ~old
    ~tenure_age ()

(* --- random object graphs --- *)

(* Build a deterministic random graph: [n] new objects spread across the
   per-processor eden slices, fields pointing at earlier objects or small
   ints.  [old_holders] adds old-space objects holding new references so
   the entry table has entries to shard; [root_objs] roots the whole
   array (callers that want garbage root only a slice themselves). *)
let build_graph ?(old_holders = 0) ?(root_objs = false) h cls rng ~n
    ~processors =
  let objs = Array.make n Oop.sentinel in
  for i = 0 to n - 1 do
    let slots = 1 + Random.State.int rng 4 in
    let vp = Random.State.int rng processors in
    objs.(i) <- Heap.alloc_new h ~vp ~slots ~raw:false ~cls ();
    for f = 0 to slots - 1 do
      if i > 0 && Random.State.bool rng then
        ignore (Heap.store_ptr h objs.(i) f objs.(Random.State.int rng i))
      else
        ignore
          (Heap.store_ptr h objs.(i) f
             (Oop.of_small (Random.State.int rng 1000)))
    done
  done;
  for _ = 1 to old_holders do
    let o = Heap.alloc_old h ~slots:2 ~raw:false ~cls () in
    ignore (Heap.store_ptr h o 0 objs.(Random.State.int rng n))
  done;
  if root_objs then Heap.add_array_root h objs;
  objs

(* Structural fingerprint: DFS with visit order.  Two heaps hold the same
   graph exactly when their roots fingerprint identically, wherever the
   scavenger happened to put the objects. *)
let fingerprint h nil root =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let counter = ref 0 in
  let rec go o =
    if Oop.is_small o then
      acc := ("i" ^ string_of_int (Oop.small_val o)) :: !acc
    else if Oop.equal o nil then acc := "nil" :: !acc
    else
      match Hashtbl.find_opt seen o with
      | Some id -> acc := ("ref" ^ string_of_int id) :: !acc
      | None ->
          let id = !counter in
          incr counter;
          Hashtbl.add seen o id;
          let slots = Heap.slots h (Oop.addr o) in
          acc := Printf.sprintf "obj%d/%d" id slots :: !acc;
          for f = 0 to slots - 1 do
            go (Heap.get h o f)
          done
  in
  go root;
  String.concat "," (List.rev !acc)

(* --- generator shapes --- *)

(* (graph size, rng seed): the shape every graph property draws from. *)
let graph_arb = QCheck.(pair (int_range 1 60) (int_range 0 1_000_000))

(* (graph size, rng seed, worker count) for the parallel scavenger. *)
let graph_workers_arb =
  QCheck.(triple (int_range 1 60) (int_range 0 1_000_000) (int_range 1 5))

let seed_arb = QCheck.(int_range 0 1_000_000)

(* --- strict-sanitizer VMs --- *)

let strict_config ?(processors = 2) () =
  { (Config.testing ~processors ()) with Config.sanitize = Sanitizer.Strict }

let strict_vm ?processors () = Vm.create (strict_config ?processors ())

(* Strict VM on the work-stealing scheduler (E16): per-processor ready
   deques instead of the serialized queue. *)
let stealing_config ?(processors = 3) () =
  { (strict_config ~processors ()) with
    Config.scheduler = Config.Sched_stealing }

let stealing_vm ?processors () = Vm.create (stealing_config ?processors ())

(* A workload that exercises allocation, message sends and the transcript
   lock — enough traffic for the sanitizer to have something to watch. *)
let busy_eval_source =
  "| s | s := 0. 1 to: 120 do: [:i | s := s + i printString size. \
   Transcript show: 'x']. s"

(* --- fault schedules --- *)

(* Canonical single-fault plans shared by the explore, sanitizer and
   fault suites.  The index is the injection-point query number: small
   indices fire early in any busy run, and an index past the run's query
   count injects nothing at all (a legal, empty-effect plan). *)
let crash_plan index = [ { Fault.index; fault = Fault.Vp_crash } ]
let holder_crash_plan index = [ { Fault.index; fault = Fault.Holder_crash } ]

let holder_stall_plan index cycles =
  [ { Fault.index; fault = Fault.Holder_stall cycles } ]

(* Generator of well-formed plans — strictly ascending indices, every
   fault kind — for the round-trip and shrinking properties. *)
let fault_plan_arb =
  let open QCheck in
  let fault =
    Gen.oneof
      [ Gen.return Fault.Vp_crash;
        Gen.map (fun n -> Fault.Vp_stall n) (Gen.int_range 1 5000);
        Gen.map (fun n -> Fault.Holder_stall n) (Gen.int_range 1 5000);
        Gen.return Fault.Holder_crash;
        Gen.map (fun n -> Fault.Device_timeout n) (Gen.int_range 1 5000);
        Gen.map (fun k -> Fault.Worker_crash k) (Gen.int_range 0 7);
        Gen.map (fun k -> Fault.Replica_crash k) (Gen.int_range 0 7) ]
  in
  let gen =
    Gen.map
      (fun gaps ->
        List.rev
          (snd
             (List.fold_left
                (fun (ix, acc) (gap, fault) ->
                  let ix = ix + gap in
                  (ix, { Fault.index = ix; fault } :: acc))
                (0, []) gaps)))
      (Gen.list_size (Gen.int_range 0 10) (Gen.pair (Gen.int_range 1 50) fault))
  in
  make ~print:(Format.asprintf "%a" Fault.pp) gen

(* --- fault VMs --- *)

(* Strict VM with the spin watchdog armed, for the fault suites.  The
   testing configurations use the uniform cost model (Delay quantum 4),
   so the default bound of 2000 quanta = 8000 cycles sits above every
   injected stall bound: only a lock held by a dead processor trips it. *)
let fault_config ?(processors = 4) ?(watchdog_quanta = 2000)
    ?(backoff_quanta = 4) ?(scheduler = Config.Sched_locked) () =
  { (strict_config ~processors ()) with
    Config.watchdog_quanta;
    Config.backoff_quanta;
    Config.scheduler }

(* [fault_vm injector] is a strict watchdog VM with [injector] installed
   (pass [None] for a fault-free control on the identical config). *)
let fault_vm ?processors ?watchdog_quanta ?backoff_quanta ?scheduler injector
    =
  let vm =
    Vm.create
      (fault_config ?processors ?watchdog_quanta ?backoff_quanta ?scheduler
         ())
  in
  Vm.set_fault_injector vm injector;
  vm
