(* Tests for the E19 replicated image cluster: snapshot/restore census
   identity, structured rejection of damaged checkpoints and command
   logs, crash+restore+replay equivalence against the uninterrupted
   reference (random workloads and crash points), detection of a
   deliberately-divergent replica on every seed, and the
   corrupt-checkpoint fallback chain. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "mst-test-replica-%d-%d" (Unix.getpid ()) !n)
    in
    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
    d

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- snapshot/restore census identity (satellite 1) ---

   The whole fingerprint scheme rests on the census being stable across
   snapshot/restore: same roots, same stop predicate, same name-keyed
   classes must count the same objects — not merely the same
   fingerprint, the same (class, count) list bit for bit. *)

let census vm =
  Verify.census vm.Vm.heap
    ~stop:(Explorer.schedule_dependent vm)
    ~class_key:(Explorer.stable_class_key vm)
    ~roots:(Explorer.stable_roots vm)

let entries_for ~seed ~requests =
  Cmdlog.to_list (Cmdlog.generate ~seed ~requests ~sessions:4 ~shards:4)

let test_snapshot_restore_census_identical () =
  let node = Replica.build_node ~slots:3 ~shards:4 in
  let waves = Cmdlog.schedule ~slots:3 (entries_for ~seed:7 ~requests:10) in
  List.iter (fun w -> Replica.apply_wave node w) waves;
  let before = census node.Replica.vm in
  let fp = Replica.fingerprint_of node.Replica.vm in
  let snap =
    Snapshot.capture node.Replica.vm.Vm.heap ~fingerprint:fp ~entries:10
      ~registers:(Replica.capture_registers node.Replica.vm)
  in
  let dir = tmp_dir () in
  let path = Filename.concat dir "census.snap" in
  Snapshot.save path snap;
  let loaded = Snapshot.load path in
  check "header entries survive the round trip" 10 loaded.Snapshot.entries;
  check "header fingerprint survives the round trip" fp
    loaded.Snapshot.fingerprint;
  let fresh = Replica.build_node ~slots:3 ~shards:4 in
  Replica.restore_registers fresh.Replica.vm
    (Snapshot.restore loaded fresh.Replica.vm.Vm.heap);
  let after = census fresh.Replica.vm in
  check "same reachable objects" before.Verify.objects after.Verify.objects;
  check "same reachable words" before.Verify.words after.Verify.words;
  check_bool "per-class census bit-identical" true
    (before.Verify.per_class = after.Verify.per_class);
  check "fingerprint reproduced after restore" fp
    (Replica.fingerprint_of fresh.Replica.vm)

(* The restored machine is not a museum piece: it must keep executing.
   Apply the same next wave to the original and the restored copy and
   require identical fingerprints again. *)
let test_restored_machine_keeps_executing () =
  let all = entries_for ~seed:3 ~requests:12 in
  let waves = Cmdlog.schedule ~slots:3 all in
  let prefix, suffix =
    match waves with
    | a :: b :: rest -> ([ a; b ], rest)
    | _ -> Alcotest.fail "expected at least three waves"
  in
  let node = Replica.build_node ~slots:3 ~shards:4 in
  List.iter (fun w -> Replica.apply_wave node w) prefix;
  let snap =
    Snapshot.capture node.Replica.vm.Vm.heap
      ~fingerprint:(Replica.fingerprint_of node.Replica.vm)
      ~entries:0
      ~registers:(Replica.capture_registers node.Replica.vm)
  in
  let fresh = Replica.build_node ~slots:3 ~shards:4 in
  Replica.restore_registers fresh.Replica.vm
    (Snapshot.restore snap fresh.Replica.vm.Vm.heap);
  List.iter
    (fun w ->
      Replica.apply_wave node w;
      Replica.apply_wave fresh w;
      check "restored copy tracks the original"
        (Replica.fingerprint_of node.Replica.vm)
        (Replica.fingerprint_of fresh.Replica.vm))
    suffix

(* --- structured rejection (satellite 2) ---

   Both durable loaders must reject empty, truncated and unparseable
   files with the structured Corrupt error — never a crash, never a
   silently-wrong load. *)

let reject_snapshot what path =
  match Snapshot.load path with
  | exception Snapshot.Corrupt _ -> ()
  | _ -> Alcotest.fail (what ^ ": expected Snapshot.Corrupt")

let test_snapshot_loader_rejects () =
  let dir = tmp_dir () in
  let empty = Filename.concat dir "empty.snap" in
  write_file empty "";
  reject_snapshot "empty" empty;
  (match Snapshot.read_header empty with
   | exception Snapshot.Corrupt _ -> ()
   | _ -> Alcotest.fail "read_header accepted an empty file");
  let garbage = Filename.concat dir "garbage.snap" in
  write_file garbage "not a checkpoint at all\njunk\n";
  reject_snapshot "unparseable" garbage;
  (* a real checkpoint, then torn: the checksum must catch it *)
  let node = Replica.build_node ~slots:2 ~shards:2 in
  let snap =
    Snapshot.capture node.Replica.vm.Vm.heap
      ~fingerprint:(Replica.fingerprint_of node.Replica.vm)
      ~entries:0
      ~registers:(Replica.capture_registers node.Replica.vm)
  in
  let whole = Filename.concat dir "whole.snap" in
  Snapshot.save whole snap;
  ignore (Snapshot.load whole);
  let torn = Filename.concat dir "torn.snap" in
  let content = read_file whole in
  write_file torn (String.sub content 0 (String.length content / 2));
  reject_snapshot "truncated" torn;
  (* damaged in place: flip one payload byte under a valid header *)
  let flipped = Filename.concat dir "flipped.snap" in
  let b = Bytes.of_string content in
  let i = String.length content - 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  write_file flipped (Bytes.to_string b);
  reject_snapshot "bit-rot" flipped

let reject_log what path =
  match Cmdlog.load path with
  | exception Cmdlog.Corrupt _ -> ()
  | _ -> Alcotest.fail (what ^ ": expected Cmdlog.Corrupt")

let test_cmdlog_loader_rejects () =
  let dir = tmp_dir () in
  let empty = Filename.concat dir "empty.log" in
  write_file empty "";
  reject_log "empty" empty;
  let garbage = Filename.concat dir "garbage.log" in
  write_file garbage "these are not log entries\n";
  reject_log "unparseable" garbage;
  let whole = Filename.concat dir "whole.log" in
  Cmdlog.save whole (Cmdlog.generate ~seed:1 ~requests:6 ~sessions:2 ~shards:2);
  ignore (Cmdlog.load_nonempty whole);
  let torn = Filename.concat dir "torn.log" in
  let content = read_file whole in
  write_file torn (String.sub content 0 (String.length content * 2 / 3));
  reject_log "truncated" torn;
  (* an empty-but-well-formed log is vacuous for the cluster *)
  let zero = Filename.concat dir "zero.log" in
  Cmdlog.save zero (Cmdlog.create ());
  ignore (Cmdlog.load zero);
  (match Cmdlog.load_nonempty zero with
   | exception Cmdlog.Corrupt _ -> ()
   | _ -> Alcotest.fail "load_nonempty accepted an empty log")

(* --- the cluster equivalence property (satellite 3) ---

   Random workloads, random crash points: a cluster that crashes a
   replica, restores its checkpoint and replays the suffix must end with
   every replica at the uninterrupted reference's fingerprint, with no
   divergence recorded at any boundary along the way. *)

let cluster_equivalence_prop =
  QCheck.Test.make ~count:8
    ~name:"crash+restore+replay equals the uninterrupted reference"
    QCheck.(
      triple (int_range 1 1000) (int_range 1 1000) (int_range 12 28))
    (fun (log_seed, crash_seed, requests) ->
      let o =
        Replica.run
          { Replica.default_params with
            Replica.requests; log_seed; crash_seed = Some crash_seed;
            Replica.checkpoint_every = 6 }
      in
      o.Replica.converged && o.Replica.divergences = []
      && o.Replica.served + o.Replica.missed
         = o.Replica.entries * o.Replica.replicas)

(* A deliberately-divergent configuration — replica 0 silently drops one
   log entry — must be caught by the detector on every seed. *)
let divergence_detected_prop =
  QCheck.Test.make ~count:8
    ~name:"a replica that skips one entry is caught on every seed"
    QCheck.(pair (int_range 1 1000) (int_range 0 9))
    (fun (log_seed, skip) ->
      let o =
        Replica.run
          { Replica.default_params with
            Replica.requests = 12; log_seed; skip_lsn = Some skip }
      in
      o.Replica.divergences <> [] && not o.Replica.converged)

(* --- the fallback chain (satellite 6's scenarios, directly) --- *)

let test_torn_checkpoint_falls_back () =
  let o =
    Replica.run
      { Replica.default_params with
        Replica.requests = 24; crash_seed = Some 5;
        Replica.scenario = Some Replica.Torn_checkpoint }
  in
  check_bool "a crash happened" true (o.Replica.crashes > 0);
  check_bool "the torn checkpoint was rejected" true
    (o.Replica.fallbacks > 0);
  check_bool "the replica still rejoined" true (o.Replica.rejoins > 0);
  check_bool "and converged" true
    (o.Replica.converged && o.Replica.divergences = [])

let test_crash_mid_replay_recovers () =
  let o =
    Replica.run
      { Replica.default_params with
        Replica.requests = 24; crash_seed = Some 5;
        Replica.scenario = Some Replica.Crash_mid_replay }
  in
  check_bool "the rejoin was interrupted and retried" true
    (o.Replica.crashes > 1);
  check_bool "converged" true
    (o.Replica.converged && o.Replica.divergences = [])

let test_double_crash_recovers () =
  let o =
    Replica.run
      { Replica.default_params with
        Replica.requests = 24; crash_seed = Some 5;
        Replica.scenario = Some Replica.Double_crash }
  in
  check "two crashes" 2 o.Replica.crashes;
  check "two rejoins" 2 o.Replica.rejoins;
  check_bool "converged" true
    (o.Replica.converged && o.Replica.divergences = [])

(* Availability accounting: survivors keep serving while a replica is
   down, so a crashed run serves strictly less than everything but far
   more than nothing. *)
let test_availability_accounting () =
  let o =
    Replica.run
      { Replica.default_params with
        Replica.requests = 24; crash_seed = Some 5 }
  in
  check_bool "an outage was recorded" true (o.Replica.missed > 0);
  check_bool "availability below 1000 permil" true
    (o.Replica.availability_permil < 1000);
  check_bool "survivors kept the cluster above 2/3" true
    (o.Replica.availability_permil >= 667);
  check "every entry accounted"
    (o.Replica.entries * o.Replica.replicas)
    (o.Replica.served + o.Replica.missed)

let test_rejects_bad_params () =
  let expect_error p =
    try
      ignore (Replica.run p);
      false
    with Replica.Cluster_error _ -> true
  in
  check_bool "zero replicas rejected" true
    (expect_error { Replica.default_params with Replica.replicas = 0 });
  check_bool "17 shards rejected (4-bit encoding)" true
    (expect_error { Replica.default_params with Replica.shards = 17 });
  check_bool "zero checkpoint cadence rejected" true
    (expect_error
       { Replica.default_params with Replica.checkpoint_every = 0 })

let test_restore_rejects_wrong_geometry () =
  let node = Replica.build_node ~slots:2 ~shards:2 in
  let snap =
    Snapshot.capture node.Replica.vm.Vm.heap
      ~fingerprint:(Replica.fingerprint_of node.Replica.vm)
      ~entries:0
      ~registers:(Replica.capture_registers node.Replica.vm)
  in
  (* a target with different region sizes: restore must refuse, not
     scribble over a heap laid out differently *)
  let small =
    Vm.create
      { (Config.ms ~processors:2 ()) with
        Config.eden_words = Config.default_eden_words / 2 }
  in
  check_string "geometry mismatch refused" "mismatch"
    (try
       ignore (Snapshot.restore snap small.Vm.heap);
       "restored"
     with Snapshot.Mismatch _ -> "mismatch");
  (* under the serialized-allocation MS config the heap layout does not
     depend on the processor count, so the heap restores into a wider
     skeleton — the register layer is what refuses the slot mismatch *)
  let wider = Replica.build_node ~slots:4 ~shards:2 in
  let regs = Snapshot.restore snap wider.Replica.vm.Vm.heap in
  check_string "register slot mismatch refused" "refused"
    (try
       Replica.restore_registers wider.Replica.vm regs;
       "restored"
     with Replica.Cluster_error _ -> "refused")

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "replica"
    [ ("snapshot",
       [ Alcotest.test_case "restore reproduces the census bit for bit"
           `Quick test_snapshot_restore_census_identical;
         Alcotest.test_case "restored machine keeps executing" `Quick
           test_restored_machine_keeps_executing;
         Alcotest.test_case "loader rejects empty/truncated/unparseable"
           `Quick test_snapshot_loader_rejects;
         Alcotest.test_case "restore rejects wrong geometry" `Quick
           test_restore_rejects_wrong_geometry ]);
      ("cmdlog",
       [ Alcotest.test_case "loader rejects empty/truncated/unparseable"
           `Quick test_cmdlog_loader_rejects ]);
      ("cluster",
       [ q cluster_equivalence_prop;
         q divergence_detected_prop;
         Alcotest.test_case "torn checkpoint falls back" `Quick
           test_torn_checkpoint_falls_back;
         Alcotest.test_case "crash mid-replay recovers" `Quick
           test_crash_mid_replay_recovers;
         Alcotest.test_case "double crash recovers" `Quick
           test_double_crash_recovers;
         Alcotest.test_case "availability accounting" `Quick
           test_availability_accounting;
         Alcotest.test_case "bad params rejected" `Quick
           test_rejects_bad_params ]) ]
