(* Tests for the object memory: oop tagging, allocation, the entry table,
   and Generation Scavenging — including qcheck properties that random
   object graphs survive scavenges with their structure intact. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small heap with a fake class object so headers have a valid class. *)
let make_heap = Testkit.make_heap

(* --- oops --- *)

let test_oop_tags () =
  check "small round trip" 42 (Oop.small_val (Oop.of_small 42));
  check "negative round trip" (-7) (Oop.small_val (Oop.of_small (-7)));
  check_bool "small is small" true (Oop.is_small (Oop.of_small 0));
  check_bool "ptr is ptr" true (Oop.is_ptr (Oop.of_addr 12));
  check "addr round trip" 12 (Oop.addr (Oop.of_addr 12));
  check_bool "tags are disjoint" true (not (Oop.is_ptr (Oop.of_small 3)))

let oop_roundtrip_prop =
  QCheck.Test.make ~name:"small integer tagging round-trips"
    QCheck.(int_range Oop.min_small Oop.max_small)
    (fun v ->
      let o = Oop.of_small v in
      Oop.is_small o && Oop.small_val o = v)

(* --- allocation and field access --- *)

let test_alloc_pointers () =
  let h, cls, nil = make_heap () in
  let o = Heap.alloc_new h ~vp:0 ~slots:3 ~raw:false ~cls () in
  check "slots" 3 (Heap.slots h (Oop.addr o));
  check_bool "class recorded" true (Oop.equal (Heap.class_at h (Oop.addr o)) cls);
  check_bool "pointer fields filled with nil" true
    (Oop.equal (Heap.get h o 0) nil && Oop.equal (Heap.get h o 2) nil);
  check_bool "fresh object is new" true (Heap.is_new h o);
  check "age starts at zero" 0 (Heap.age h (Oop.addr o))

let test_alloc_raw () =
  let h, cls, _ = make_heap () in
  let o = Heap.alloc_new h ~vp:0 ~slots:4 ~raw:true ~cls () in
  check_bool "raw flag" true (Heap.is_raw h (Oop.addr o));
  check "raw fields zeroed" 0 (Heap.get h o 0);
  Heap.set_raw h o 1 77;
  check "raw store" 77 (Heap.get h o 1)

let test_alloc_string () =
  let h, cls, _ = make_heap () in
  let s = Heap.alloc_string_old h ~cls "hello" in
  Alcotest.(check string) "string round trip" "hello" (Heap.string_value h s);
  check_bool "strings are byte objects" true (Heap.is_bytes h (Oop.addr s))

let test_eden_exhaustion () =
  let h, cls, _ = make_heap ~eden:64 () in
  Alcotest.check_raises "big eden allocation raises" Heap.Scavenge_needed
    (fun () -> ignore (Heap.alloc_new h ~vp:0 ~slots:200 ~raw:false ~cls ()))

let test_old_exhaustion () =
  let h, cls, _ = make_heap ~old:32 () in
  (* the fake class and nil already used some; exhaust the rest *)
  Alcotest.check_raises "old space exhaustion is an Image_full error"
    (Heap.Image_full "old space exhausted")
    (fun () ->
      for _ = 1 to 10 do
        ignore (Heap.alloc_old h ~slots:8 ~raw:false ~cls ())
      done)

let test_replicated_eden_regions () =
  let h, cls, _ =
    make_heap ~policy:Heap.Replicated_eden ~processors:4 ~eden:4096 ()
  in
  let o0 = Heap.alloc_new h ~vp:0 ~slots:2 ~raw:false ~cls () in
  let o3 = Heap.alloc_new h ~vp:3 ~slots:2 ~raw:false ~cls () in
  check_bool "per-processor regions are disjoint" true
    (abs (Oop.addr o0 - Oop.addr o3) >= 1024 - 8);
  check_bool "per-vp availability is a slice" true
    (Heap.eden_avail h ~vp:0 <= 1024)

let test_replicated_eden_remainder () =
  (* 4096 words over 3 processors does not divide evenly; the last slice
     must absorb the remainder so the slices tile eden exactly *)
  let h, _, _ =
    make_heap ~policy:Heap.Replicated_eden ~processors:3 ~eden:4096 ()
  in
  let rs = h.Heap.eden_regions in
  check "three slices" 3 (Array.length rs);
  check "first slice starts at the eden base" h.Heap.eden.Heap.base
    rs.(0).Heap.base;
  for i = 0 to 1 do
    check
      (Printf.sprintf "slice %d abuts slice %d" i (i + 1))
      rs.(i).Heap.limit
      rs.(i + 1).Heap.base
  done;
  check "last slice ends at the eden limit" h.Heap.eden.Heap.limit
    rs.(2).Heap.limit;
  check "no words lost to flooring" 4096
    (Array.fold_left (fun n r -> n + (r.Heap.limit - r.Heap.base)) 0 rs);
  check "the tiling invariant verifies clean" 0
    (List.length (Verify.check h))

(* --- the entry table --- *)

let test_store_check () =
  let h, cls, _ = make_heap () in
  let old_obj = Heap.alloc_old h ~slots:2 ~raw:false ~cls () in
  let young = Heap.alloc_new h ~vp:0 ~slots:1 ~raw:false ~cls () in
  check "empty to start" 0 (Heap.remembered_count h);
  let remembered = Heap.store_ptr h old_obj 0 young in
  check_bool "old->new store remembers" true remembered;
  check "entry recorded" 1 (Heap.remembered_count h);
  check_bool "flag set" true (Heap.is_remembered h (Oop.addr old_obj));
  let again = Heap.store_ptr h old_obj 1 young in
  check_bool "second store does not re-insert" false again;
  check "still one entry" 1 (Heap.remembered_count h)

let test_store_check_new_to_new () =
  let h, cls, _ = make_heap () in
  let a = Heap.alloc_new h ~vp:0 ~slots:1 ~raw:false ~cls () in
  let b = Heap.alloc_new h ~vp:0 ~slots:1 ~raw:false ~cls () in
  check_bool "new->new stores are not remembered" false (Heap.store_ptr h a 0 b);
  let old_obj = Heap.alloc_old h ~slots:1 ~raw:false ~cls () in
  check_bool "new->old stores are not remembered" false
    (Heap.store_ptr h a 0 old_obj);
  check_bool "old->old stores are not remembered" false
    (Heap.store_ptr h old_obj 0 old_obj)

(* --- scavenging --- *)

let test_scavenge_survival () =
  let h, cls, nil = make_heap () in
  let root = ref Oop.sentinel in
  Heap.add_root h root;
  (* a two-object chain and plenty of garbage *)
  let a = Heap.alloc_new h ~vp:0 ~slots:2 ~raw:false ~cls () in
  let b = Heap.alloc_new h ~vp:0 ~slots:1 ~raw:false ~cls () in
  ignore (Heap.store_ptr h a 0 b);
  ignore (Heap.store_ptr h b 0 (Oop.of_small 99));
  root := a;
  for _ = 1 to 50 do
    ignore (Heap.alloc_new h ~vp:0 ~slots:4 ~raw:false ~cls ())
  done;
  let used_before = Heap.eden_used h in
  let stats = Scavenger.scavenge h in
  check_bool "root updated to the copy" true (not (Oop.equal !root a));
  let a' = !root in
  let b' = Heap.get h a' 0 in
  check "chain intact" 99 (Oop.small_val (Heap.get h b' 0));
  check_bool "second field still nil" true (Oop.equal (Heap.get h a' 1) nil);
  check "eden reset" 0 (Heap.eden_used h);
  check_bool "garbage not copied" true
    (stats.Heap.survivor_words + stats.Heap.tenured_words < used_before);
  check "two survivors" 2 stats.Heap.survivor_objects;
  check "verify clean" 0 (List.length (Verify.check h))

let test_scavenge_updates_remembered () =
  let h, cls, _ = make_heap () in
  let old_obj = Heap.alloc_old h ~slots:1 ~raw:false ~cls () in
  let young = Heap.alloc_new h ~vp:0 ~slots:1 ~raw:false ~cls () in
  ignore (Heap.store_ptr h old_obj 0 young);
  ignore (Scavenger.scavenge h);
  let young' = Heap.get h old_obj 0 in
  check_bool "old object's field forwarded" true
    (not (Oop.equal young' young) && Heap.is_new h young');
  check_bool "still remembered (still points to new)" true
    (Heap.is_remembered h (Oop.addr old_obj));
  (* drop the reference; the next scavenge forgets the object *)
  ignore (Heap.store_ptr h old_obj 0 (Oop.of_small 1));
  ignore (Scavenger.scavenge h);
  check_bool "forgotten once the new reference is gone" false
    (Heap.is_remembered h (Oop.addr old_obj))

let test_scavenge_tenuring () =
  let h, cls, _ = make_heap ~tenure_age:3 () in
  let root = ref Oop.sentinel in
  Heap.add_root h root;
  root := Heap.alloc_new h ~vp:0 ~slots:1 ~raw:false ~cls ();
  for i = 1 to 2 do
    ignore (Scavenger.scavenge h);
    check_bool (Printf.sprintf "still in new space after %d scavenges" i)
      true (Heap.is_new h !root)
  done;
  let stats = Scavenger.scavenge h in
  check_bool "tenured into old space at the threshold" true
    (Heap.is_old h !root);
  check "tenure stats recorded" 1 stats.Heap.tenured_objects

let test_scavenge_survivor_overflow () =
  let h, cls, _ = make_heap ~eden:2048 ~survivor:32 () in
  let keep = Array.make 20 Oop.sentinel in
  Heap.add_array_root h keep;
  for i = 0 to 19 do
    keep.(i) <- Heap.alloc_new h ~vp:0 ~slots:4 ~raw:false ~cls ()
  done;
  let stats = Scavenger.scavenge h in
  check_bool "overflow promotes early" true (stats.Heap.tenured_objects > 0);
  Array.iter
    (fun o -> check_bool "every root survived somewhere" true
        (Heap.is_new h o || Heap.is_old h o))
    keep

let test_scavenge_raw_not_scanned () =
  let h, cls, _ = make_heap () in
  let root = ref Oop.sentinel in
  Heap.add_root h root;
  let r = Heap.alloc_new h ~vp:0 ~slots:2 ~raw:true ~cls () in
  (* plant something that would look like a dangling pointer *)
  Heap.set_raw h r 0 (Oop.of_addr 999_999);
  root := r;
  ignore (Scavenger.scavenge h);
  check "raw contents preserved verbatim" (Oop.of_addr 999_999)
    (Heap.get h !root 0)

let test_scavenge_cost_model () =
  let stats = Heap.empty_stats () in
  stats.Heap.survivor_words <- 100;
  stats.Heap.remembered_scanned <- 10;
  let cm = Cost_model.firefly in
  check "cost formula" (cm.Cost_model.scavenge_base
                        + (100 * cm.Cost_model.scavenge_per_word)
                        + (10 * cm.Cost_model.scavenge_per_remembered))
    (Scavenger.cost cm stats)

let test_parallel_cost_model () =
  let cm = Cost_model.firefly in
  let stats = Heap.empty_stats () in
  stats.Heap.survivor_words <- 101;
  stats.Heap.remembered_scanned <- 10;
  (* one worker is exactly the serial formula *)
  check "one worker degenerates to the serial cost"
    (Scavenger.cost cm stats)
    (Scavenger.cost_parallel cm stats ~workers:1);
  (* the copy work divides with a ceiling, not a floor *)
  let copy_work = 101 * cm.Cost_model.scavenge_per_word in
  check "ceiling division charges the straggler's partial share"
    (cm.Cost_model.scavenge_base
     + (10 * cm.Cost_model.scavenge_per_remembered)
     + ((copy_work + 1) / 2)
     + (2 * 400))
    (Scavenger.cost_parallel cm stats ~workers:2);
  (* a scavenge that copies nothing never pays the coordination term *)
  let empty = Heap.empty_stats () in
  empty.Heap.remembered_scanned <- 10;
  check "zero copies means zero coordination"
    (cm.Cost_model.scavenge_base
     + (10 * cm.Cost_model.scavenge_per_remembered))
    (Scavenger.cost_parallel cm empty ~workers:4)

let test_on_scavenge_hooks () =
  let h, _, _ = make_heap () in
  let fired = ref 0 in
  Heap.on_scavenge h (fun () -> incr fired);
  ignore (Scavenger.scavenge h);
  ignore (Scavenger.scavenge h);
  check "hook fires on every scavenge" 2 !fired

(* --- property: random graphs survive scavenges isomorphically --- *)

(* Build a random graph of [n] objects in new space (only the last is
   rooted, so the rest's reachable slice is exercised against plenty of
   garbage); serialize reachable structure, scavenge (twice, to cross the
   survivor flip), and compare. *)
let graph_survival_prop =
  QCheck.Test.make ~name:"random object graphs survive scavenging" ~count:50
    Testkit.graph_arb
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let h, cls, nil = make_heap ~eden:8192 ~survivor:8192 ~old:16384 () in
      let objs = Testkit.build_graph h cls rng ~n ~processors:1 in
      let root = ref objs.(n - 1) in
      Heap.add_root h root;
      let fingerprint root = Testkit.fingerprint h nil root in
      let before = fingerprint !root in
      ignore (Scavenger.scavenge h);
      let mid = fingerprint !root in
      ignore (Scavenger.scavenge h);
      let after = fingerprint !root in
      before = mid && mid = after && Verify.check h = [])

let rset_invariant_prop =
  QCheck.Test.make
    ~name:"store checks keep the remembered-set invariant under random stores"
    ~count:50 Testkit.seed_arb
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let h, cls, _ = make_heap ~eden:8192 ~survivor:4096 ~old:32768 () in
      let olds = Array.init 10 (fun _ -> Heap.alloc_old h ~slots:3 ~raw:false ~cls ()) in
      let news = Array.init 10 (fun _ -> Heap.alloc_new h ~vp:0 ~slots:3 ~raw:false ~cls ()) in
      Heap.add_array_root h news;
      Heap.add_array_root h olds;
      for _ = 1 to 200 do
        let src =
          if Random.State.bool rng then olds.(Random.State.int rng 10)
          else news.(Random.State.int rng 10)
        in
        let v =
          match Random.State.int rng 3 with
          | 0 -> olds.(Random.State.int rng 10)
          | 1 -> news.(Random.State.int rng 10)
          | _ -> Oop.of_small (Random.State.int rng 100)
        in
        ignore (Heap.store_ptr h src (Random.State.int rng 3) v);
        if Random.State.int rng 40 = 0 then ignore (Scavenger.scavenge h)
      done;
      Verify.check h = [])

let () =
  let qtests =
    List.map QCheck_alcotest.to_alcotest
      [ oop_roundtrip_prop; graph_survival_prop; rset_invariant_prop ]
  in
  Alcotest.run "objmem"
    [ ("oop", [ Alcotest.test_case "tags" `Quick test_oop_tags ]);
      ("alloc",
       [ Alcotest.test_case "pointers" `Quick test_alloc_pointers;
         Alcotest.test_case "raw" `Quick test_alloc_raw;
         Alcotest.test_case "strings" `Quick test_alloc_string;
         Alcotest.test_case "eden exhaustion" `Quick test_eden_exhaustion;
         Alcotest.test_case "old exhaustion" `Quick test_old_exhaustion;
         Alcotest.test_case "replicated eden" `Quick test_replicated_eden_regions;
         Alcotest.test_case "replicated eden remainder" `Quick
           test_replicated_eden_remainder ]);
      ("entry_table",
       [ Alcotest.test_case "store check" `Quick test_store_check;
         Alcotest.test_case "non-old sources" `Quick test_store_check_new_to_new ]);
      ("scavenge",
       [ Alcotest.test_case "survival" `Quick test_scavenge_survival;
         Alcotest.test_case "remembered update" `Quick test_scavenge_updates_remembered;
         Alcotest.test_case "tenuring" `Quick test_scavenge_tenuring;
         Alcotest.test_case "survivor overflow" `Quick test_scavenge_survivor_overflow;
         Alcotest.test_case "raw not scanned" `Quick test_scavenge_raw_not_scanned;
         Alcotest.test_case "cost model" `Quick test_scavenge_cost_model;
         Alcotest.test_case "parallel cost model" `Quick test_parallel_cost_model;
         Alcotest.test_case "hooks" `Quick test_on_scavenge_hooks ]);
      ("properties", qtests) ]
