(* Tests for garbage collection under interpreter load: scavenges triggered
   by allocation, correctness across collections, tenuring of long-lived
   data, cache flushes, the forced-scavenge primitive, and failure
   injection (exhausted old space). *)

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let small_heap ?(processors = 1) () =
  let base = Config.testing ~processors () in
  { base with Config.eden_words = 2048; survivor_words = 1024 }

let test_scavenges_triggered () =
  let vm = Vm.create (small_heap ()) in
  (* allocate far more than eden holds *)
  check_str "allocation-heavy loop completes" "1000"
    (Vm.eval_to_string vm
       "| c | c := 0. 1 to: 1000 do: [:i | (Array new: 8) size = 8 ifTrue: [c := c + 1]]. c");
  check_bool "several scavenges happened" true (Heap.scavenge_count vm.Vm.heap > 3);
  check "heap verifies clean" 0 (List.length (Verify.check vm.Vm.heap))

let test_live_data_survives () =
  let vm = Vm.create (small_heap ()) in
  check_str "live structures survive many scavenges" "'0123456789'"
    (Vm.eval_to_string vm
       {st|
| keep |
keep := WriteStream on: (String new: 4).
0 to: 9 do: [:d |
    keep print: d.
    "generate garbage between the live appends"
    1 to: 200 do: [:i | Array new: 6]].
keep contents
|st});
  check_bool "scavenged while building" true (Heap.scavenge_count vm.Vm.heap > 0)

let test_tenuring_under_load () =
  let vm = Vm.create (small_heap ()) in
  ignore
    (Vm.eval vm
       {st|
| keep |
keep := OrderedCollection new.
1 to: 50 do: [:i | keep add: i printString].
1 to: 3000 do: [:i | Array new: 6].
keep size
|st});
  check_bool "long-lived data was tenured" true
    (Heap.tenured_words_total vm.Vm.heap > 0)

let test_forced_scavenge () =
  let vm = Vm.create (small_heap ()) in
  let before = Heap.scavenge_count vm.Vm.heap in
  check_str "Mirror scavenge runs" "true" (Vm.eval_to_string vm "Mirror scavenge. true");
  check "one more scavenge" (before + 1) (Heap.scavenge_count vm.Vm.heap)

let test_gc_stats_prim () =
  let vm = Vm.create (small_heap ()) in
  ignore (Vm.eval vm "1 to: 2000 do: [:i | Array new: 8]");
  check_str "gcStats is a 4-element array" "4"
    (Vm.eval_to_string vm "Mirror gcStats size");
  check_str "scavenge count positive" "true"
    (Vm.eval_to_string vm "(Mirror gcStats at: 1) > 0")

let test_method_cache_flushed () =
  let vm = Vm.create (small_heap ()) in
  ignore (Vm.eval vm "1 to: 50 do: [:i | i printString]");
  let hits_before = Method_cache.hits vm.Vm.states.(0).State.mcache in
  check_bool "cache had hits" true (hits_before > 0);
  ignore (Vm.eval vm "Mirror scavenge. 1 printString");
  (* after the flush, the first lookups miss again *)
  check_bool "misses recorded after flush" true
    (Method_cache.misses vm.Vm.states.(0).State.mcache > 0)

let test_big_object_goes_old () =
  let vm = Vm.create (small_heap ()) in
  let old_before = Heap.old_used vm.Vm.heap in
  check_str "a big array allocates fine" "8000"
    (Vm.eval_to_string vm "(Array new: 8000) size");
  check_bool "it went directly to old space" true
    (Heap.old_used vm.Vm.heap - old_before >= 8000)

let test_old_space_exhaustion_fails_loud () =
  let base = Config.testing () in
  (* barely enough old space for the image plus a little *)
  let vm = Vm.create { base with Config.old_words = 70_000 } in
  check_bool "filling old space raises Image_full" true
    (try
       ignore
         (Vm.eval vm
            "| keep | keep := OrderedCollection new. 1 to: 100000 do: [:i | keep add: (Array new: 64)]. 0");
       false
     with Heap.Image_full _ -> true)

let test_scavenge_pause_charged_to_all () =
  let vm = Vm.create (small_heap ~processors:3 ()) in
  ignore (Vm.eval vm "1 to: 3000 do: [:i | Array new: 8]");
  check_bool "stop-the-world pauses accumulated" true (vm.Vm.scavenge_pauses > 0);
  (* every parked processor was synchronized past the pause *)
  let gc_wait =
    Array.fold_left
      (fun acc i -> acc + (Machine.vp vm.Vm.machine i).Machine.gc_wait_cycles)
      0
      [| 0; 1; 2 |]
  in
  check_bool "other processors paid the pause" true (gc_wait > 0)

(* Allocation churn that keeps four independent windows live: every
   scavenge copies real survivors, and the live graph has breadth, so the
   round-boundary work stealing can spread the copying (a single chain
   would serialize on one worker — see DESIGN.md). *)
let churn_source =
  {st|
| a b c d |
a := Array new: 60. b := Array new: 60.
c := Array new: 60. d := Array new: 60.
1 to: 2000 do: [:i |
    | j |
    j := i \\ 60 + 1.
    a at: j put: (Array new: 6).
    b at: j put: (Array new: 6).
    c at: j put: (Array new: 6).
    d at: j put: (Array new: 6)].
0
|st}

let test_parallel_scavenge_workers () =
  let run workers =
    let base = Config.ms ~processors:4 () in
    let vm =
      Vm.create
        { base with
          Config.eden_words = 2048;
          survivor_words = 1024;
          scavenge_workers = workers }
    in
    ignore (Vm.eval vm churn_source);
    check_bool "scavenges happened" true (vm.Vm.scavenge_pauses > 0);
    check "heap verifies clean" 0 (List.length (Verify.check vm.Vm.heap));
    vm
  in
  let serial = run 1 in
  let parallel = run 3 in
  check "serial config never uses the parallel scavenger" 0
    serial.Vm.par_scavenges;
  check "every pause came from the simulated parallel scavenge"
    parallel.Vm.scavenge_pauses parallel.Vm.par_scavenges;
  let mean vm = vm.Vm.scavenge_cycles / vm.Vm.scavenge_pauses in
  check_bool "three workers shorten the mean pause" true
    (mean parallel < mean serial);
  (* the per-worker totals surface through the instrumentation report *)
  let r = Instrumentation.gather parallel in
  check_bool "instrumentation reports parallel collections" true
    (r.Instrumentation.par_scavenges > 0);
  check_bool "instrumentation reports worker rows" true
    (r.Instrumentation.scavenge_workers <> [])

let test_eval_survives_many_cycles () =
  (* a long computation crossing dozens of collections gets right answers *)
  let vm = Vm.create (small_heap ()) in
  check_str "iterative string building is stable" "true"
    (Vm.eval_to_string vm
       {st|
| ok |
ok := true.
1 to: 150 do: [:n |
    | s |
    s := n printString , '/' , (n * n) printString.
    (s = (n printString , '/' , (n * n) printString)) ifFalse: [ok := false]].
ok
|st});
  check_bool "scavenges happened" true (Heap.scavenge_count vm.Vm.heap >= 1);
  check "clean heap at the end" 0 (List.length (Verify.check vm.Vm.heap))

let test_contexts_survive_scavenge () =
  (* force a scavenge in the middle of a deep call chain *)
  let vm = Vm.create (small_heap ()) in
  Vm.load_classes vm
    {st|
CLASS GcProbe SUPER Object
METHODS GcProbe
deep: n
    n = 0 ifTrue: [Mirror scavenge. ^0].
    ^1 + (self deep: n - 1)
!
|st};
  check_str "call chain survives a mid-flight scavenge" "64"
    (Vm.eval_to_string vm "GcProbe new deep: 64")

let test_blocks_survive_scavenge () =
  let vm = Vm.create (small_heap ()) in
  check_str "a live block context survives" "42"
    (Vm.eval_to_string vm
       "| b | b := [:x | x + 2]. Mirror scavenge. b value: 40")

let () =
  Alcotest.run "gc_vm"
    [ ("scavenging",
       [ Alcotest.test_case "triggered by allocation" `Quick test_scavenges_triggered;
         Alcotest.test_case "live data survives" `Quick test_live_data_survives;
         Alcotest.test_case "tenuring" `Quick test_tenuring_under_load;
         Alcotest.test_case "forced scavenge" `Quick test_forced_scavenge;
         Alcotest.test_case "gc stats" `Quick test_gc_stats_prim;
         Alcotest.test_case "cache flush" `Quick test_method_cache_flushed ]);
      ("allocation",
       [ Alcotest.test_case "big objects go old" `Quick test_big_object_goes_old;
         Alcotest.test_case "old exhaustion is loud" `Quick
           test_old_space_exhaustion_fails_loud ]);
      ("across contexts",
       [ Alcotest.test_case "stop-the-world accounting" `Quick
           test_scavenge_pause_charged_to_all;
         Alcotest.test_case "parallel scavenge workers" `Quick
           test_parallel_scavenge_workers;
         Alcotest.test_case "long computation" `Quick test_eval_survives_many_cycles;
         Alcotest.test_case "deep chains" `Quick test_contexts_survive_scavenge;
         Alcotest.test_case "blocks" `Quick test_blocks_survive_scavenge ]) ]
