(* Tests for the systematic (DPOR) explorer: the guided driver's query
   log, an exhaustiveness oracle on a mini-harness where brute force is
   genuinely exhaustive (DPOR must visit every observable with strictly
   fewer executions), determinism on the deliberately broken whole-VM
   configurations (no seeds involved), trace round-trips through
   load_replay, tie materialization under both engines, and agreement
   between DPOR and seeded sampling on clean configs. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cm = Cost_model.firefly

(* --- mini-harness: a scriptable machine over real Machine + Spinlock ---

   Each vp runs a short straight-line program of lock sections; the step
   loop is the engine's rule (min-clock wins, ties via the policy), and
   the observable is the per-lock acquisition order — exactly the
   Mazurkiewicz trace of the run.  With defers and preempts disabled the
   decision space is ties only, so Brute mode enumerates the complete
   tree and serves as ground truth for the DPOR oracle. *)

type op = Work of int | Lock of string * int

let mini_run programs sched =
  let d = Explore.guided sched in
  let m = Machine.make ~processors:(Array.length programs) cm in
  Machine.set_policy m (Some (Explore.policy d));
  let locks = Hashtbl.create 4 in
  let lock name =
    match Hashtbl.find_opt locks name with
    | Some l -> l
    | None ->
        let l = Spinlock.make ~enabled:true ~cost:cm name in
        Spinlock.attach_machine l m;
        Hashtbl.replace locks name l;
        l
  in
  let pcs = Array.map (fun _ -> ref 0) programs in
  let acquired = Buffer.create 32 in
  let rec loop () =
    match Machine.min_runnable m with
    | None -> ()
    | Some vp ->
        let i = vp.Machine.id in
        let pc = pcs.(i) in
        if !pc >= Array.length programs.(i) then
          Machine.set_state m vp Machine.Halted
        else begin
          (match programs.(i).(!pc) with
           | Work c -> Machine.charge m vp c
           | Lock (name, c) ->
               let fin =
                 Spinlock.locked_op ~vp:i (lock name) ~now:vp.Machine.clock
                   ~op_cycles:c
               in
               Buffer.add_string acquired (Printf.sprintf "%s:%d;" name i);
               vp.Machine.clock <- fin);
          incr pc
        end;
        loop ()
  in
  loop ();
  { Explore.Dpor.xlog = Explore.query_log d;
    obs = Buffer.contents acquired;
    failure = None }

let explore_mini ~mode ?(max_flips = 8) ?(budget = 4096) programs =
  Explore.Dpor.systematic ~mode ~max_flips ~budget ~defers:false
    ~preempts:false
    ~run:(mini_run programs)
    ()

let obs_set (r : Explore.Dpor.result) =
  List.sort_uniq compare (List.map fst r.Explore.Dpor.obs_witness)

(* Two symmetric vps contending on two locks plus one lock-free vp whose
   tie choices are pure scheduling noise: brute force enumerates the
   complete tie tree including the noise; DPOR must reach the same
   observable set (every Mazurkiewicz trace has a representative) in
   strictly fewer executions, pruning the independent interleavings. *)
let two_vp_programs =
  [| [| Lock ("A", 10); Work 5; Lock ("B", 10) |];
     [| Lock ("A", 10); Work 5; Lock ("B", 10) |];
     [| Work 10; Work 10; Work 10 |] |]

let dump_stats name (r : Explore.Dpor.result) =
  let s = r.Explore.Dpor.stats in
  Printf.eprintf
    "STATS %s: executions=%d obs=%d traces=%d races=%d pruned=%d\n%!" name
    s.Explore.Dpor.executions s.Explore.Dpor.distinct_obs
    s.Explore.Dpor.distinct_traces s.Explore.Dpor.races
    s.Explore.Dpor.pruned

let test_exhaustiveness_two_vps () =
  let brute = explore_mini ~mode:Explore.Dpor.Brute two_vp_programs in
  let dpor = explore_mini ~mode:Explore.Dpor.Dpor two_vp_programs in
  dump_stats "2vp-brute" brute;
  dump_stats "2vp-dpor" dpor;
  check_bool "brute force exhausted its space" true
    brute.Explore.Dpor.stats.Explore.Dpor.exhausted;
  check_bool "dpor exhausted its space" true
    dpor.Explore.Dpor.stats.Explore.Dpor.exhausted;
  check_bool "several observables exist (the workload really races)" true
    (List.length (obs_set brute) >= 2);
  Alcotest.(check (list string))
    "dpor covers exactly the brute-force observable set" (obs_set brute)
    (obs_set dpor);
  check_bool
    (Printf.sprintf "dpor ran strictly fewer executions (%d < %d)"
       dpor.Explore.Dpor.stats.Explore.Dpor.executions
       brute.Explore.Dpor.stats.Explore.Dpor.executions)
    true
    (dpor.Explore.Dpor.stats.Explore.Dpor.executions
     < brute.Explore.Dpor.stats.Explore.Dpor.executions);
  check_bool "dpor reports pruned alternatives" true
    (dpor.Explore.Dpor.stats.Explore.Dpor.pruned > 0)

let three_vp_programs =
  [| [| Lock ("A", 10) |]; [| Lock ("A", 10) |]; [| Lock ("A", 10) |] |]

(* Three vps, one lock: the observables are the 6 acquisition orders (or
   however many the engine's clock arithmetic can reach); DPOR and brute
   force must agree on which are reachable. *)
let test_exhaustiveness_three_vps () =
  let brute = explore_mini ~mode:Explore.Dpor.Brute three_vp_programs in
  let dpor = explore_mini ~mode:Explore.Dpor.Dpor three_vp_programs in
  dump_stats "3vp-brute" brute;
  dump_stats "3vp-dpor" dpor;
  check_bool "brute force exhausted its space" true
    brute.Explore.Dpor.stats.Explore.Dpor.exhausted;
  check_bool "dpor exhausted its space" true
    dpor.Explore.Dpor.stats.Explore.Dpor.exhausted;
  check_bool "at least three acquisition orders are reachable" true
    (List.length (obs_set brute) >= 3);
  Alcotest.(check (list string))
    "dpor covers exactly the brute-force observable set" (obs_set brute)
    (obs_set dpor);
  check_bool "dpor ran no more executions than brute force" true
    (dpor.Explore.Dpor.stats.Explore.Dpor.executions
     <= brute.Explore.Dpor.stats.Explore.Dpor.executions)

(* Distinct Mazurkiewicz fingerprints never exceed distinct observables
   here, because the observable *is* the trace. *)
let test_trace_fingerprint_consistent () =
  let dpor = explore_mini ~mode:Explore.Dpor.Dpor two_vp_programs in
  check_bool "distinct traces >= distinct observables" true
    (dpor.Explore.Dpor.stats.Explore.Dpor.distinct_traces
     >= dpor.Explore.Dpor.stats.Explore.Dpor.distinct_obs);
  (* replaying a witness reproduces its observable *)
  List.iter
    (fun (obs, sched) ->
      let x = mini_run two_vp_programs sched in
      Alcotest.(check string) "witness schedule reproduces its observable"
        obs x.Explore.Dpor.obs)
    dpor.Explore.Dpor.obs_witness

(* --- the guided driver on whole VMs --- *)

let quick_setup = Explorer.ms_setup ~quick:true ()

let test_guided_logs_queries () =
  let o, xlog = Explorer.run_guided quick_setup [] in
  check_bool "the run completed" true (o.Explorer.obs <> None);
  check "one log entry per query" o.Explorer.queries (Array.length xlog);
  check_bool "the log is non-trivial" true (Array.length xlog > 100);
  let has p = Array.exists p xlog in
  check_bool "acquires were logged" true
    (has (fun e ->
         match e.Explore.kind with Explore.Qacquire _ -> true | _ -> false));
  check_bool "section exits were logged" true
    (has (fun e ->
         match e.Explore.kind with Explore.Qexit _ -> true | _ -> false));
  let ascending = ref true in
  Array.iteri
    (fun i e -> if e.Explore.q <> i then ascending := false)
    xlog;
  check_bool "query indices are dense and ascending" true !ascending

(* Replaying the same forced prefix must reproduce the identical log —
   the determinism the whole DFS rests on. *)
let test_guided_deterministic () =
  let _, l1 = Explorer.run_guided quick_setup [] in
  let _, l2 = Explorer.run_guided quick_setup [] in
  check_bool "identical query logs" true (l1 = l2)

(* choose_tie must be exercised (and logged) under both engines: the
   scan engine materializes min-clock ties directly, the calendar engine
   through its pending-heap pop. *)
let engine_logs_ties name setup =
  let o, xlog = Explorer.run_guided setup [] in
  check_bool (name ^ ": run completed") true (o.Explorer.obs <> None);
  check_bool
    (name ^ ": min-clock ties were materialized and logged")
    true
    (Array.exists
       (fun e ->
         match e.Explore.kind with
         | Explore.Qtie cands -> Array.length cands >= 2
         | _ -> false)
       xlog)

let test_scan_ties_logged () = engine_logs_ties "scan" quick_setup

let test_calendar_ties_logged () =
  engine_logs_ties "calendar" (Explorer.calendar_setup ~quick:true ())

(* --- whole-VM DPOR: clean and broken configurations --- *)

(* On the published configuration a small DPOR budget must find races to
   branch on and zero failures. *)
let test_dpor_ms_clean () =
  let r = Explorer.dpor ~budget:6 quick_setup () in
  let s = r.Explorer.dpor_result.Explore.Dpor.stats in
  check_bool "several executions ran" true
    (s.Explore.Dpor.executions >= 2);
  check_bool "races were observed" true (s.Explore.Dpor.races > 0);
  check "no failures on the published configuration" 0
    (List.length r.Explorer.dpor_result.Explore.Dpor.failures);
  check "a single observable" 1 s.Explore.Dpor.distinct_obs;
  check_bool "no counterexample" true (r.Explorer.dpor_counterexample = None)

(* The deliberately broken configurations must be caught without any
   seed, on every invocation, with identical results (nothing in the
   systematic explorer is randomized). *)
let dpor_finds name setup =
  let run () = Explorer.dpor ~budget:3 ~shrink_budget:40 setup () in
  let r1 = run () in
  let r2 = run () in
  check_bool (name ^ ": failures found deterministically, run 1") true
    (r1.Explorer.dpor_result.Explore.Dpor.failures <> []);
  check_bool (name ^ ": failures found deterministically, run 2") true
    (r2.Explorer.dpor_result.Explore.Dpor.failures <> []);
  check_bool (name ^ ": both runs agree exactly") true
    (r1.Explorer.dpor_result.Explore.Dpor.failures
     = r2.Explorer.dpor_result.Explore.Dpor.failures
     && r1.Explorer.dpor_result.Explore.Dpor.stats
        = r2.Explorer.dpor_result.Explore.Dpor.stats);
  (match r1.Explorer.dpor_counterexample with
   | None -> Alcotest.fail (name ^ ": expected a shrunk counterexample")
   | Some c ->
       check_bool (name ^ ": the shrunk schedule reproduces") true
         c.Explorer.dpor_reproduces;
       check_bool (name ^ ": shrunk no larger than the original") true
         (List.length c.Explorer.dpor_shrunk
          <= List.length c.Explorer.dpor_original));
  r1

let test_dpor_finds_broken_ctx () =
  ignore (dpor_finds "ctx-unbracketed" (Explorer.broken_ctx_setup ~quick:true ()))

let test_dpor_finds_broken_steal () =
  ignore
    (dpor_finds "steal-unlocked" (Explorer.broken_steal_setup ~quick:true ()))

(* A non-empty failing schedule round-trips through the trace-file
   format and load_replay (which refuses empty traces — the broken
   configs also fail on the default schedule, so the round-trip needs a
   branched one).  Brute mode guarantees branched schedules exist. *)
let test_dpor_failure_replays_from_file () =
  let setup = Explorer.broken_ctx_setup ~quick:true () in
  let r =
    Explorer.dpor ~mode:Explore.Dpor.Brute ~budget:3 ~shrink_budget:0 setup ()
  in
  let failures = r.Explorer.dpor_result.Explore.Dpor.failures in
  match List.find_opt (fun (s, _) -> s <> []) failures with
  | None -> Alcotest.fail "expected a failing non-empty schedule"
  | Some (sched, _) ->
      let file = Filename.temp_file "mst-dpor" ".trace" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          Explore.save file sched;
          let loaded = Explore.load_replay file in
          check_bool "load_replay returns the saved schedule" true
            (loaded = sched);
          let reference =
            Explorer.reference (Explorer.ms_setup ~quick:true ())
          in
          let o = Explorer.run_schedule setup loaded in
          check_bool "the replayed schedule still fails the oracle" true
            (Explorer.check ~reference o <> None))

(* --- DPOR vs seeded sampling on clean configs --- *)

(* The two explorers must agree that clean configurations are clean:
   every DPOR execution and every sampled seed matches the (scan,
   locked) reference observables — across the scan engine, the calendar
   engine and the stealing scheduler. *)
let dpor_vs_sampling_prop =
  let setups =
    [ ("ms", Explorer.ms_setup ~quick:true ());
      ("calendar", Explorer.calendar_setup ~quick:true ());
      ("stealing", Explorer.stealing_setup ~quick:true ()) ]
  in
  let reference_setup = Explorer.ms_setup ~quick:true () in
  QCheck.Test.make ~count:6
    ~name:"dpor and seeded sampling agree on observables for clean configs"
    QCheck.(pair (int_range 0 2) (int_range 0 1_000_000))
    (fun (which, seed) ->
      let _, setup = List.nth setups which in
      let d = Explorer.dpor ~budget:3 ~reference_setup setup () in
      let sampled =
        Explorer.explore ~reference_setup setup ~first_seed:seed ~seeds:1
      in
      d.Explorer.dpor_result.Explore.Dpor.failures = []
      && d.Explorer.dpor_result.Explore.Dpor.stats.Explore.Dpor.distinct_obs
         = 1
      && sampled.Explorer.counterexamples = [])

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "dpor"
    [ ("exhaustiveness",
       [ Alcotest.test_case "2 vps, 2 locks: dpor = brute, fewer runs" `Quick
           test_exhaustiveness_two_vps;
         Alcotest.test_case "3 vps, 1 lock: dpor = brute" `Quick
           test_exhaustiveness_three_vps;
         Alcotest.test_case "trace fingerprints and witnesses" `Quick
           test_trace_fingerprint_consistent ]);
      ("guided",
       [ Alcotest.test_case "logs every query" `Quick test_guided_logs_queries;
         Alcotest.test_case "deterministic" `Quick test_guided_deterministic;
         Alcotest.test_case "scan ties logged" `Quick test_scan_ties_logged;
         Alcotest.test_case "calendar ties logged" `Quick
           test_calendar_ties_logged ]);
      ("whole-vm",
       [ Alcotest.test_case "ms explores clean" `Quick test_dpor_ms_clean;
         Alcotest.test_case "ctx-unbracketed caught seedlessly" `Quick
           test_dpor_finds_broken_ctx;
         Alcotest.test_case "steal-unlocked caught seedlessly" `Quick
           test_dpor_finds_broken_steal;
         Alcotest.test_case "failing schedule replays from file" `Quick
           test_dpor_failure_replays_from_file ]);
      ("agreement", [ q dpor_vs_sampling_prop ]) ]
