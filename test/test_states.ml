(* Tests for the four system states of the evaluation and the ablations:
   the *shape* of the paper's results must hold — baseline is fastest, MS
   adds a modest static overhead, idle competition adds more, busy
   competition the most; the replication strategies beat the serialized
   alternatives under load. *)

let check_bool = Alcotest.(check bool)

(* a reduced benchmark set so the suite stays fast *)
let quick_benchmarks =
  List.filter_map
    (fun (b : Macro.benchmark) ->
      match b.Macro.key with
      | "definition" -> Some { b with Macro.reps = 12 }
      | "inspector" -> Some { b with Macro.reps = 20 }
      | "compile" -> Some { b with Macro.reps = 25 }
      | _ -> None)
    Macro.benchmarks

let results =
  lazy (Macro.run_table2 ~benchmarks:quick_benchmarks ())

let test_states_ordering () =
  let results = Lazy.force results in
  let seconds state key =
    let cells = List.assoc state results in
    let cell =
      snd (List.find (fun (b, _) -> b.Macro.key = key) cells)
    in
    cell.Macro.seconds
  in
  List.iter
    (fun (b : Macro.benchmark) ->
      let base = seconds Macro.Baseline b.Macro.key in
      let ms = seconds Macro.Ms_uni b.Macro.key in
      let idle = seconds Macro.Ms_idle b.Macro.key in
      let busy = seconds Macro.Ms_busy b.Macro.key in
      check_bool (b.Macro.key ^ ": baseline is fastest") true (base <= ms);
      check_bool (b.Macro.key ^ ": idle competition costs more than MS alone")
        true (ms < idle *. 1.03);
      check_bool (b.Macro.key ^ ": busy competition costs the most") true
        (idle < busy))
    quick_benchmarks

let test_static_overhead_modest () =
  let s = Report.summarize (Lazy.force results) in
  check_bool "static overhead positive" true (s.Report.static_mean > 0.0);
  check_bool "static overhead below 25%" true (s.Report.static_worst < 0.25);
  check_bool "busy overhead larger than idle" true
    (s.Report.busy_mean > s.Report.idle_mean)

let test_normalization () =
  let norm = Report.normalized (Lazy.force results) in
  let baseline = List.assoc Macro.Baseline norm in
  List.iter
    (fun (_, r) ->
      Alcotest.(check (float 1e-9)) "baseline normalizes to 1" 1.0 r)
    baseline

(* The same invariant as a property: for any benchmark and any (small)
   repetition count, a quick harness run preserves the E3 ordering
   baseline <= MS <= +idle <= +busy.  The simulation is deterministic, so
   each case either always holds or is a real ordering bug. *)
let e3_ordering_prop =
  QCheck.Test.make ~count:5
    ~name:"E3 ordering holds on quick runs of any benchmark and rep count"
    QCheck.(pair (int_range 0 2) (int_range 5 10))
    (fun (bench, reps) ->
      let key = List.nth [ "definition"; "inspector"; "compile" ] bench in
      let b =
        { (List.find (fun b -> b.Macro.key = key) Macro.benchmarks) with
          Macro.reps = reps }
      in
      let seconds state =
        let vm = Macro.prepare_vm state in
        (Macro.run_on vm b).Macro.seconds
      in
      let base = seconds Macro.Baseline in
      let ms = seconds Macro.Ms_uni in
      let idle = seconds Macro.Ms_idle in
      let busy = seconds Macro.Ms_busy in
      base <= ms && ms < idle *. 1.03 && idle < busy)

(* --- ablations (direction checks; magnitudes in the bench harness) --- *)

let busy_seconds ~config_tweak bench reps =
  let b =
    { (List.find (fun b -> b.Macro.key = bench) Macro.benchmarks) with
      Macro.reps = reps }
  in
  let vm = Macro.prepare_vm ~config_tweak Macro.Ms_busy in
  (Macro.run_on vm b).Macro.seconds

let test_ablation_free_contexts () =
  (* serialized free-context list vs replicated, under busy competition *)
  let replicated =
    busy_seconds "definition" 10
      ~config_tweak:(fun c -> { c with Config.free_contexts = Config.Ctx_replicated })
  in
  let serialized =
    busy_seconds "definition" 10
      ~config_tweak:(fun c -> { c with Config.free_contexts = Config.Ctx_shared_locked })
  in
  check_bool "replicating the free-context list helps under load" true
    (replicated < serialized)

let test_ablation_method_cache () =
  let replicated =
    busy_seconds "definition" 10
      ~config_tweak:(fun c -> { c with Config.method_cache = Config.Cache_replicated })
  in
  let shared =
    busy_seconds "definition" 10
      ~config_tweak:(fun c -> { c with Config.method_cache = Config.Cache_shared_locked })
  in
  check_bool "replicating the method cache helps under load" true
    (replicated < shared)

let test_ablation_replicated_eden () =
  (* the paper's proposed improvement: per-processor allocation areas of
     size s each (k*s total) *)
  match Ablations.replicated_eden ~reps:4 () with
  | [ first; second ] ->
      check_bool "replicating the new-object space helps under load" true
        (second.Ablations.seconds_b < first.Ablations.seconds_a)
  | _ -> Alcotest.fail "expected two comparison rows"

let test_deterministic () =
  (* the whole simulation is reproducible bit for bit *)
  let run () =
    let vm = Macro.prepare_vm Macro.Ms_busy in
    let b = { (List.hd Macro.benchmarks) with Macro.reps = 3 } in
    (Macro.run_on vm b).Macro.cycles
  in
  Alcotest.(check int) "identical cycle counts on identical runs" (run ()) (run ())

let () =
  Alcotest.run "states"
    [ ("table2",
       [ Alcotest.test_case "ordering" `Slow test_states_ordering;
         Alcotest.test_case "static overhead" `Slow test_static_overhead_modest;
         Alcotest.test_case "normalization" `Slow test_normalization;
         QCheck_alcotest.to_alcotest e3_ordering_prop ]);
      ("ablations",
       [ Alcotest.test_case "free contexts" `Slow test_ablation_free_contexts;
         Alcotest.test_case "method cache" `Slow test_ablation_method_cache;
         Alcotest.test_case "replicated eden" `Slow test_ablation_replicated_eden;
         Alcotest.test_case "determinism" `Quick test_deterministic ]) ]
