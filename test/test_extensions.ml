(* Tests for the extended protocol: perform:, doesNotUnderstand:
   overriding (message-forwarding proxies), Delay timers, and sorting. *)

let vm = lazy (Vm.create (Config.testing ()))
let ev src = Vm.eval_to_string (Lazy.force vm) src
let check_eval name expected src = Alcotest.(check string) name expected (ev src)
let check_bool = Alcotest.(check bool)

let test_perform () =
  check_eval "perform:" "24" "4 perform: #factorial";
  check_eval "perform:with:" "7" "3 perform: #+ with: 4";
  check_eval "perform:with:with:" "'bcd'"
    "'abcde' perform: #copyFrom:to: with: 2 with: 4";
  check_eval "perform: dispatches virtually" "'#sym'"
    "#sym perform: #printString";
  check_bool "perform: with a non-symbol raises" true
    (try ignore (ev "3 perform: 4"); false
     with Interp.Does_not_understand _ -> true)

let test_dnu_default () =
  check_bool "default doesNotUnderstand: reports an error" true
    (try ignore (ev "3 zork"); false
     with State.Vm_error msg ->
       Alcotest.(check bool) "mentions the selector" true
         (let rec find i =
            i + 4 <= String.length msg
            && (String.sub msg i 4 = "zork" || find (i + 1))
          in
          find 0);
       true)

let test_dnu_override () =
  let vm' = Lazy.force vm in
  Vm.load_classes vm'
    {st|
CLASS LoggingProxy SUPER Object IVARS log target
METHODS LoggingProxy
setTarget: anObject
    target := anObject.
    log := OrderedCollection new
!
log
    ^log
!
doesNotUnderstand: aMessage
    "record and forward: the classic Smalltalk proxy"
    log add: aMessage selector.
    aMessage arguments size = 0
        ifTrue: [^target perform: aMessage selector].
    aMessage arguments size = 1
        ifTrue: [^target perform: aMessage selector
                         with: (aMessage arguments at: 1)].
    ^target perform: aMessage selector
            with: (aMessage arguments at: 1)
            with: (aMessage arguments at: 2)
!
|st};
  check_eval "proxy forwards unary" "24"
    "| p | p := LoggingProxy new. p setTarget: 4. p factorial";
  check_eval "proxy forwards binary" "9"
    "| p | p := LoggingProxy new. p setTarget: 4. p + 5";
  check_eval "proxy records the traffic" "2"
    "| p | p := LoggingProxy new. p setTarget: 4. p factorial. p even. p log size";
  check_eval "message selector is a Symbol" "true"
    "| p | p := LoggingProxy new. p setTarget: 4. p squared. (p log at: 1) == #squared"

let test_delay () =
  check_eval "delay elapses virtual time" "true"
    {st|
| before after |
before := Mirror millisecondClockValue.
(Delay forMilliseconds: 120) wait.
after := Mirror millisecondClockValue.
after - before >= 120
|st};
  check_eval "delays wake in order" "'ab'"
    {st|
| log sem kit |
log := WriteStream on: (String new: 4).
sem := Semaphore new.
[ (Delay forMilliseconds: 200) wait. log nextPutAll: 'b'. sem signal ] fork.
[ (Delay forMilliseconds: 50) wait. log nextPutAll: 'a'. sem signal ] fork.
sem wait. sem wait.
log contents
|st}

let test_delay_multiprocessor () =
  let vm = Vm.create (Config.testing ~processors:3 ()) in
  Alcotest.(check string) "delays work across processors" "3"
    (Vm.eval_to_string vm
       {st|
| sem count holder |
sem := Semaphore new.
holder := Array with: 0.
1 to: 3 do: [:k |
    [ (Delay forMilliseconds: k * 30) wait.
      holder at: 1 put: (holder at: 1) + 1.
      sem signal ] fork].
1 to: 3 do: [:k | sem wait].
count := holder at: 1.
count
|st})

(* Regression for the Delay deadline bug: the timer primitive must add
   the *current* clock itself, so a Delay created late in a run still
   waits its full duration.  Before the fix, the deadline came from the
   image's millisecondClockValue — truncated to whole milliseconds — so a
   late Delay could fire up to a millisecond early, and with a clock rate
   under 1000 cycles/s everything fired immediately.  Two sequential
   waits double-check that each one blocks relative to its own start. *)
let test_delay_late_in_run () =
  check_eval "sequential late delays each block their full duration" "true"
    {st|
| t0 t1 t2 spin |
"spin virtual time well away from zero first"
spin := 0.
[spin < 5000] whileTrue: [spin := spin + 1].
t0 := Mirror millisecondClockValue.
(Delay forMilliseconds: 30) wait.
t1 := Mirror millisecondClockValue.
(Delay forMilliseconds: 30) wait.
t2 := Mirror millisecondClockValue.
(t1 - t0 >= 30) and: [(t2 - t1 >= 30) and: [t2 - t0 >= 60]]
|st}

(* Timers across VPs must fire in deadline order under every scheduler
   and engine: k Processes fork with distinct random delays; the log must
   read back in sorted-delay order. *)
let timer_order_prop ~scheduler ~engine ~name =
  QCheck.Test.make ~count:12 ~name
    QCheck.(pair (int_range 2 5)
              (list_of_size Gen.(return 5) (int_range 0 60)))
    (fun (processors, offsets) ->
      (* distinct durations: equal deadlines have no required order *)
      let durations =
        List.mapi (fun i off -> (10 * (i + 1)) + (off * 5) + i) offsets
        |> List.sort_uniq compare
      in
      let k = List.length durations in
      let tagged = List.mapi (fun i d -> (Char.chr (97 + i), d)) durations in
      let shuffled =
        (* fork order differs from deadline order *)
        List.sort (fun (_, a) (_, b) -> compare (a mod 7) (b mod 7)) tagged
      in
      let forks =
        shuffled
        |> List.map (fun (c, d) ->
               Printf.sprintf
                 "[ (Delay forMilliseconds: %d) wait. log nextPutAll: '%c'. \
                  sem signal ] fork." d c)
        |> String.concat "\n"
      in
      let src =
        Printf.sprintf
          "| log sem |\nlog := WriteStream on: (String new: %d).\n\
           sem := Semaphore new.\n%s\n%d timesRepeat: [sem wait].\n\
           log contents" k forks k
      in
      let expected =
        tagged
        |> List.sort (fun (_, a) (_, b) -> compare a b)
        |> List.map (fun (c, _) -> String.make 1 c)
        |> String.concat ""
      in
      let config =
        { (Config.testing ~processors ()) with
          Config.scheduler; Config.engine }
      in
      let vm = Vm.create config in
      Vm.eval_to_string vm src = Printf.sprintf "'%s'" expected)

let timer_order_props =
  [ timer_order_prop ~scheduler:Config.Sched_locked
      ~engine:Config.Engine_scan
      ~name:"timers fire in deadline order (locked, scan)";
    timer_order_prop ~scheduler:Config.Sched_stealing
      ~engine:Config.Engine_scan
      ~name:"timers fire in deadline order (stealing, scan)";
    timer_order_prop ~scheduler:Config.Sched_locked
      ~engine:Config.Engine_calendar
      ~name:"timers fire in deadline order (locked, calendar)";
    timer_order_prop ~scheduler:Config.Sched_stealing
      ~engine:Config.Engine_calendar
      ~name:"timers fire in deadline order (stealing, calendar)" ]

(* The calendar engine parks every idle processor; with the whole machine
   asleep and one pending timer it must jump virtual time to the deadline
   and wake up — not report a deadlock. *)
let test_calendar_all_parked_timer () =
  let config =
    { (Config.testing ~processors:4 ()) with
      Config.engine = Config.Engine_calendar }
  in
  let vm = Vm.create config in
  Alcotest.(check string) "all-idle machine wakes for the timer" "42"
    (Vm.eval_to_string vm "(Delay forMilliseconds: 100) wait. 42");
  Alcotest.(check bool) "idle processors actually parked" true (vm.Vm.parks > 0)

(* The same machine with genuinely nothing left must still deadlock. *)
let test_calendar_deadlock_detected () =
  let config =
    { (Config.testing ~processors:2 ()) with
      Config.engine = Config.Engine_calendar }
  in
  let vm = Vm.create config in
  Alcotest.(check bool) "wait on a never-signalled semaphore deadlocks" true
    (try
       ignore (Vm.eval_to_string vm "Semaphore new wait. 1");
       false
     with Vm.Error _ -> true)

let test_sorting () =
  check_eval "sort integers" "'Array (1 2 5 9 )'"
    "#(5 2 9 1) asSortedArray printString";
  check_eval "sort with a custom block" "'Array (9 5 2 1 )'"
    "(#(5 2 9 1) asSortedArray: [:a :b | a > b]) printString";
  check_eval "sort strings" "'Array ('ant' 'bee' 'cat' )'"
    "#('cat' 'ant' 'bee') asSortedArray printString";
  check_eval "sort is stable for equal keys" "4"
    "(#(3 1 3 1) asSortedArray: [:a :b | a < b]) size";
  check_eval "empty sort" "0" "(Array new: 0) asSortedArray size";
  check_eval "sorted OrderedCollection" "'Array (1 2 3 )'"
    "| c | c := OrderedCollection new. c add: 3; add: 1; add: 2. c asSortedArray printString"

let test_aggregates () =
  check_eval "max" "9" "#(5 2 9 1) max";
  check_eval "min" "1" "#(5 2 9 1) min";
  check_eval "sum" "17" "#(5 2 9 1) sum"

let test_message_class () =
  check_eval "message arguments preserved" "'(7)'"
    {st|
Mirror compile: 'doesNotUnderstand: m
    ^''('' , (m arguments at: 1) printString , '')''
' into: EchoArgs classSide: false.
EchoArgs new someUnknown: 7
|st}



(* --- property: random integer expressions agree with a reference model --- *)

(* Random arithmetic/comparison ASTs are printed as Smalltalk source with
   full parenthesisation, evaluated on the VM, and compared against an
   OCaml evaluation of the same tree.  This exercises the lexer, parser,
   code generator, the special-selector fast path and the primitive
   fallbacks together. *)

type iexpr =
  | Const of int
  | Bin of string * iexpr * iexpr
  | Una of string * iexpr

let rec gen_iexpr rng depth =
  if depth = 0 || Random.State.int rng 4 = 0 then
    Const (Random.State.int rng 2001 - 1000)
  else
    match Random.State.int rng 8 with
    | 0 -> Bin ("+", gen_iexpr rng (depth - 1), gen_iexpr rng (depth - 1))
    | 1 -> Bin ("-", gen_iexpr rng (depth - 1), gen_iexpr rng (depth - 1))
    | 2 -> Bin ("*", gen_iexpr rng (depth - 1), gen_iexpr rng (depth - 1))
    | 3 -> Bin ("//", gen_iexpr rng (depth - 1), gen_iexpr rng (depth - 1))
    | 4 -> Bin ("\\\\", gen_iexpr rng (depth - 1), gen_iexpr rng (depth - 1))
    | 5 -> Bin ("max:", gen_iexpr rng (depth - 1), gen_iexpr rng (depth - 1))
    | 6 -> Una ("abs", gen_iexpr rng (depth - 1))
    | _ -> Una ("negated", gen_iexpr rng (depth - 1))

let rec st_source = function
  | Const n -> string_of_int n
  | Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (st_source a)
        (if op = "\\\\" then "\\\\" else op)
        (st_source b)
  | Una (op, a) -> Printf.sprintf "(%s %s)" (st_source a) op

let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let floor_mod a b =
  let r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then r + b else r

exception Division_by_zero_model

let rec model = function
  | Const n -> n
  | Bin (op, a, b) ->
      let x = model a and y = model b in
      (match op with
       | "+" -> x + y
       | "-" -> x - y
       | "*" -> x * y
       | "//" -> if y = 0 then raise Division_by_zero_model else floor_div x y
       | "max:" -> max x y
       | _ -> if y = 0 then raise Division_by_zero_model else floor_mod x y)
  | Una (op, a) ->
      let x = model a in
      (match op with "abs" -> abs x | _ -> -x)

let arithmetic_agreement_prop =
  QCheck.Test.make ~name:"random integer expressions match the OCaml model"
    ~count:120
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 5))
    (fun (seed, depth) ->
      let rng = Random.State.make [| seed |] in
      let e = gen_iexpr rng depth in
      match model e with
      | expected ->
          Vm.eval_to_string (Lazy.force vm) (st_source e)
          = string_of_int expected
      | exception Division_by_zero_model ->
          (try
             ignore (Vm.eval_to_string (Lazy.force vm) (st_source e));
             false
           with State.Vm_error _ -> true))

let bitops_agreement_prop =
  QCheck.Test.make ~name:"bit operations match the OCaml model" ~count:120
    QCheck.(triple (int_range (-100000) 100000) (int_range (-100000) 100000)
              (int_range 0 3))
    (fun (a, b, k) ->
      let src, expected =
        match k with
        | 0 -> (Printf.sprintf "(%d) bitAnd: (%d)" a b, a land b)
        | 1 -> (Printf.sprintf "(%d) bitOr: (%d)" a b, a lor b)
        | 2 -> (Printf.sprintf "(%d) bitXor: (%d)" a b, a lxor b)
        | _ ->
            let sh = abs b mod 20 in
            (Printf.sprintf "(%d) bitShift: %d" a sh, a lsl sh)
      in
      Vm.eval_to_string (Lazy.force vm) src = string_of_int expected)

let () =
  (* the Message test needs its class defined first *)
  Vm.load_classes (Lazy.force vm) "CLASS EchoArgs SUPER Object\n";
  Alcotest.run "extensions"
    [ ("perform",
       [ Alcotest.test_case "perform variants" `Quick test_perform ]);
      ("doesNotUnderstand",
       [ Alcotest.test_case "default" `Quick test_dnu_default;
         Alcotest.test_case "proxy override" `Quick test_dnu_override;
         Alcotest.test_case "message object" `Quick test_message_class ]);
      ("delay",
       [ Alcotest.test_case "virtual time" `Quick test_delay;
         Alcotest.test_case "multiprocessor" `Quick test_delay_multiprocessor;
         Alcotest.test_case "late in run" `Quick test_delay_late_in_run ]);
      ("timer order", List.map QCheck_alcotest.to_alcotest timer_order_props);
      ("calendar engine",
       [ Alcotest.test_case "all parked, one timer" `Quick
           test_calendar_all_parked_timer;
         Alcotest.test_case "real deadlock still detected" `Quick
           test_calendar_deadlock_detected ]);
      ("sorting",
       [ Alcotest.test_case "sorts" `Quick test_sorting;
         Alcotest.test_case "aggregates" `Quick test_aggregates ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest arithmetic_agreement_prop;
         QCheck_alcotest.to_alcotest bitops_agreement_prop ]) ]
