(* Tests for the incremental old-space mark-sweep collector (E18):
   reclamation under interpreter load, survival of workloads that exhaust
   old space at the seed sizing, free-list reuse, the census-preservation
   property with a mutator interleaved between slices, and an image-server
   soak at a sizing that only the collector survives. *)

let check = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* Aggressive-GC base: tiny eden and a tenure age of 1, so allocation
   churn tenures quickly and the tenured garbage is the collector's
   problem; strict sanitizing runs [Verify.check_marked] at every mark
   completion and [Verify.check] at every cycle completion. *)
let base_config ?(processors = 1) () =
  { (Config.testing ~processors ()) with
    Config.eden_words = 2048;
    survivor_words = 1024;
    tenure_age = 1;
    sanitize = Sanitizer.Strict }

(* A rotating window of 200 arrays: each entry stays live across a couple
   of scavenges (so it tenures), then is overwritten (so it dies in old
   space).  Most of the churn becomes tenured garbage. *)
let churn_source =
  {st|
| keep |
keep := Array new: 200.
1 to: 6000 do: [:i |
    keep at: i \\ 200 + 1 put: (Array new: 8)].
0
|st}

let major_of vm =
  match vm.Vm.major with
  | Some mj -> mj
  | None -> Alcotest.fail "collector not configured"

let test_collector_runs_clean () =
  let vm =
    Vm.create { (base_config ()) with Config.major_enabled = true }
  in
  check_str "churn completes" "0" (Vm.eval_to_string vm churn_source);
  let mj = major_of vm in
  check_bool "cycles completed" true (Major.cycles_completed mj >= 1);
  check_bool "tenured garbage reclaimed" true (Major.reclaimed_words mj > 0);
  check "heap verifies clean" 0 (List.length (Verify.check vm.Vm.heap));
  check "no sanitizer violations" 0
    (Sanitizer.violation_count (Vm.sanitizer vm));
  (* every slice respected the hard ceiling the sanitizer enforces; the
     budget itself is a target, so count overruns instead of forbidding
     them outright *)
  check_bool "slices ran" true (Major.slices mj > 1)

(* The acceptance workload: measure the image footprint and the churn's
   tenured-garbage volume on a roomy heap (the simulation is
   deterministic, so the numbers transfer), then size old space so the
   garbage exhausts it.  The seed VM raises [Image_full]; the collector
   at the identical sizing completes. *)
let tight_old_words () =
  let roomy = Vm.create (base_config ()) in
  let image_words = Heap.old_used roomy.Vm.heap in
  check_str "roomy churn completes" "0" (Vm.eval_to_string roomy churn_source);
  let garbage = Heap.old_used roomy.Vm.heap - image_words in
  check_bool "the workload tenures real garbage" true (garbage > 20_000);
  image_words + (garbage / 3)

let test_survives_seed_exhaustion () =
  let tight = tight_old_words () in
  check_bool "seed sizing raises Image_full without the collector" true
    (try
       ignore
         (Vm.eval
            (Vm.create { (base_config ()) with Config.old_words = tight })
            churn_source);
       false
     with Heap.Image_full _ -> true);
  let vm =
    Vm.create
      { (base_config ()) with
        Config.old_words = tight;
        major_enabled = true }
  in
  check_str "collector survives the same sizing" "0"
    (Vm.eval_to_string vm churn_source);
  check_bool "at least one cycle ran" true
    (Major.cycles_completed (major_of vm) >= 1);
  check "heap verifies clean" 0 (List.length (Verify.check vm.Vm.heap))

let test_free_list_reuse () =
  let vm =
    Vm.create { (base_config ()) with Config.major_enabled = true }
  in
  check_str "first churn completes" "0" (Vm.eval_to_string vm churn_source);
  (* complete the in-flight (or a fresh) cycle so the dead churn is on
     the free lists, then observe occupancy fall *)
  let used_before = Heap.old_used vm.Vm.heap in
  ignore (Major.finish_cycle (major_of vm) vm.Vm.shared.State.cm);
  check_bool "a full cycle lowers old-space occupancy" true
    (Heap.old_used vm.Vm.heap < used_before);
  check "heap verifies clean after the forced cycle" 0
    (List.length (Verify.check vm.Vm.heap));
  (* further churn tenures into the reclaimed holes *)
  check_str "second churn completes" "0" (Vm.eval_to_string vm churn_source);
  check_bool "free-list allocation happened" true
    (Heap.free_list_hits vm.Vm.heap > 0);
  check_bool "reused words accounted" true
    (Heap.free_reused_words vm.Vm.heap > 0)

(* --- census preservation under an interleaved mutator (heap level) --- *)

(* Build a random old-space graph; root half of it. *)
let build_old_graph h cls rng ~n =
  let objs = Array.make n Oop.sentinel in
  for i = 0 to n - 1 do
    let slots = 1 + Random.State.int rng 4 in
    objs.(i) <- Heap.alloc_old h ~slots ~raw:false ~cls ();
    for f = 0 to slots - 1 do
      if i > 0 && Random.State.bool rng then
        ignore (Heap.store_ptr h objs.(i) f objs.(Random.State.int rng i))
      else
        ignore
          (Heap.store_ptr h objs.(i) f
             (Oop.of_small (Random.State.int rng 1000)))
    done
  done;
  objs

let census_eq (a : Verify.census) (b : Verify.census) =
  a.Verify.objects = b.Verify.objects
  && a.Verify.words = b.Verify.words
  && a.Verify.per_class = b.Verify.per_class

(* A major cycle run in small slices, with random mutations of the live
   graph between slices (exercising the write barrier), must leave a
   consistent heap; and because mark-sweep never moves objects, a second,
   mutation-free cycle must preserve the census exactly — reachable
   objects are never freed. *)
let prop_census_preserved (n, seed) =
  let h, cls, nil = Testkit.make_heap ~old:16384 () in
  let rng = Random.State.make [| seed |] in
  let objs = build_old_graph h cls rng ~n in
  let roots = ref [ cls; nil ] in
  Array.iteri
    (fun i o -> if i mod 2 = 0 && Random.State.bool rng then roots := o :: !roots)
    objs;
  let root_list = !roots in
  let mj =
    Major.create ~heap:h ~budget:200
      ~iter_roots:(fun f -> List.iter f root_list)
  in
  h.Heap.major_dirty <- Some (Major.dirty mj);
  h.Heap.on_old_alloc <- Some (Major.alloc_black mj);
  let cm = Cost_model.uniform in
  (* a faithful mutator only handles values it read from live objects:
     pick a rooted object, read one of its fields, store the value into
     another rooted object (through the write barrier) *)
  let hand =
    Array.of_list (List.filter (fun o -> not (Oop.equal o nil)) root_list)
  in
  let mutate () =
    let src = hand.(Random.State.int rng (Array.length hand)) in
    let dst = hand.(Random.State.int rng (Array.length hand)) in
    let ssl = Heap.slots h (Oop.addr src)
    and dsl = Heap.slots h (Oop.addr dst) in
    if ssl > 0 && dsl > 0 then
      ignore
        (Heap.store_ptr h dst
           (Random.State.int rng dsl)
           (Heap.get h src (Random.State.int rng ssl)))
  in
  let now = ref 0 in
  while Major.cycles_completed mj = 0 do
    let r = Major.slice mj cm ~now:!now in
    now := !now + r.Major.cost + 1;
    for _ = 1 to 3 do mutate () done
  done;
  let clean1 = Verify.check h = [] in
  let c1 = Verify.census h ~roots:root_list in
  ignore (Major.finish_cycle mj cm);
  let clean2 = Verify.check h = [] in
  let c2 = Verify.census h ~roots:root_list in
  clean1 && clean2 && census_eq c1 c2

let census_preserved =
  QCheck.Test.make ~count:100 ~name:"major cycle never frees reachable objects"
    QCheck.(pair (int_range 2 60) (int_range 0 1_000_000))
    prop_census_preserved

(* --- the image-server soak (the ISSUE's regression scenario) --- *)

(* Compile-heavy serving leaks old space: every compileDummyMethod
   replaces a CompiledMethod, stranding the old one.  Size old space
   between a short and a long roomy reference run (the simulation is
   deterministic, so the measurements transfer), then check the seed
   exhausts it where the collector survives. *)
let test_serve_soak () =
  let soak_params =
    { Server.default_params with
      Server.sessions = 4; workers = 2; requests = 10; think_ms = 5 }
  in
  let soak_config =
    { (Config.testing ~processors:4 ()) with
      Config.tenure_age = 1;
      eden_words = 2048;
      survivor_words = 1024 }
  in
  let short_vm, s0 =
    Server.run soak_config
      { soak_params with Server.requests = 1 }
  in
  check_bool "short soak quiesced" true s0.Server.quiesced;
  let short_words = Heap.old_used short_vm.Vm.heap in
  let long_vm, s1 = Server.run soak_config soak_params in
  check_bool "roomy soak quiesced" true s1.Server.quiesced;
  let leak = Heap.old_used long_vm.Vm.heap - short_words in
  check_bool "the soak leaks tenured garbage" true (leak > 4_000);
  let tight = short_words + (leak / 2) in
  check_bool "seed sizing exhausts old space" true
    (try
       ignore
         (Server.run { soak_config with Config.old_words = tight }
            soak_params);
       false
     with Heap.Image_full _ -> true);
  let vm, s =
    Server.run
      { soak_config with Config.old_words = tight; major_enabled = true }
      soak_params
  in
  check_bool "collector soak quiesced" true s.Server.quiesced;
  check "all requests served" 40 s.Server.completed;
  check_bool "cycles ran" true (Major.cycles_completed (major_of vm) >= 1);
  check "heap verifies clean" 0 (List.length (Verify.check vm.Vm.heap))

(* The broken-barrier self-check: with the write barrier replaced by the
   reporting probe, a workload that shuffles pointers between tenured
   objects while marking is in flight must produce sanitizer violations
   (the broken configuration is caught, not silently survived).  The
   shuffled arrays tenure early and stay live; churn alongside them
   keeps cycles starting. *)
let shuffle_source =
  {st|
| a keep |
a := Array new: 50.
1 to: 50 do: [:i | a at: i put: (Array new: 8)].
keep := Array new: 200.
1 to: 8000 do: [:i |
    keep at: i \\ 200 + 1 put: (Array new: 8).
    (a at: i \\ 50 + 1) at: 1 put: (a at: i * 7 \\ 50 + 1)].
0
|st}

let test_broken_barrier_caught () =
  let run skip =
    (* a small slice budget stretches marking over many slices (under the
       uniform cost model the default budget completes marking in one),
       so the mutator actually runs while marking is in flight *)
    let vm =
      Vm.create
        { (base_config ()) with
          Config.major_enabled = true;
          major_budget = 500;
          sanitize = Sanitizer.Report;
          debug_skip_major_barrier = skip }
    in
    ignore (Vm.eval vm shuffle_source);
    check_bool "cycles ran" true (Major.cycles_completed (major_of vm) >= 1);
    Sanitizer.violation_count (Vm.sanitizer vm)
  in
  check "the intact barrier is silent" 0 (run false);
  check_bool "the disabled barrier is reported" true (run true > 0)

let () =
  Alcotest.run "major"
    [ ("collector",
       [ Alcotest.test_case "reclaims under load" `Quick
           test_collector_runs_clean;
         Alcotest.test_case "survives seed exhaustion" `Quick
           test_survives_seed_exhaustion;
         Alcotest.test_case "free-list reuse" `Quick test_free_list_reuse;
         Alcotest.test_case "broken barrier caught" `Quick
           test_broken_barrier_caught ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest census_preserved ]);
      ("soak", [ Alcotest.test_case "image server" `Slow test_serve_soak ]) ]
