(** Scavenge economics (paper section 3.1).

    The scavenge interval is roughly s/r (allocation-space size over
    allocation rate): doubling s doubles the interval, and k allocating
    processors with a k*s space keep it.  The parallel-scavenge extension
    divides the copying work across workers. *)

type row = {
  eden_kb : int;
  allocators : int;
  scavenge_workers : int;
  scavenges : int;
  interval_s : float;  (** mean simulated time between scavenges *)
  gc_share : float;  (** fraction of run time spent scavenging *)
  total_s : float;
  mean_pause_ms : float;  (** mean stop-the-world pause *)
  coord_share : float;
      (** coordination cycles (claims, chunk claims, steals, barriers) as a
          fraction of all scavenge cycles; 0 for serial scavenging *)
  imbalance : float;
      (** max worker busy / mean worker busy, over all parallel
          collections; 1.0 for serial scavenging *)
}

(** [sanitize] overrides the configuration's sanitizer mode; under [Strict]
    any parallel-scavenge invariant violation or heap-verification failure
    aborts the run. *)
val run_one :
  ?sanitize:Sanitizer.mode ->
  eden_kb:int ->
  allocators:int ->
  scavenge_workers:int ->
  iterations:int ->
  unit ->
  row

(** E8: eden size sweep with one allocator. *)
val eden_sweep : ?iterations:int -> unit -> row list

(** E8b: k allocators with eden k*s holds the interval. *)
val scaling_sweep : ?iterations:int -> unit -> row list

(** E10: parallel scavenging with 4 busy allocators; pauses come from the
    simulated multi-worker scavenge. *)
val parallel_scavenge_sweep :
  ?sanitize:Sanitizer.mode -> ?iterations:int -> unit -> row list

val print_rows : Format.formatter -> label:string -> row list -> unit
