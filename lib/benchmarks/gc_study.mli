(** Scavenge economics (paper section 3.1).

    The scavenge interval is roughly s/r (allocation-space size over
    allocation rate): doubling s doubles the interval, and k allocating
    processors with a k*s space keep it.  The parallel-scavenge extension
    divides the copying work across workers. *)

type row = {
  eden_kb : int;
  allocators : int;
  scavenge_workers : int;
  scavenges : int;
  interval_s : float;  (** mean simulated time between scavenges *)
  gc_share : float;  (** fraction of run time spent scavenging *)
  total_s : float;
  mean_pause_ms : float;  (** mean stop-the-world pause *)
  coord_share : float;
      (** coordination cycles (claims, chunk claims, steals, barriers) as a
          fraction of all scavenge cycles; 0 for serial scavenging *)
  imbalance : float;
      (** max worker busy / mean worker busy, over all parallel
          collections; 1.0 for serial scavenging *)
}

(** [sanitize] overrides the configuration's sanitizer mode; under [Strict]
    any parallel-scavenge invariant violation or heap-verification failure
    aborts the run. *)
val run_one :
  ?sanitize:Sanitizer.mode ->
  eden_kb:int ->
  allocators:int ->
  scavenge_workers:int ->
  iterations:int ->
  unit ->
  row

(** E8: eden size sweep with one allocator. *)
val eden_sweep : ?iterations:int -> unit -> row list

(** E8b: k allocators with eden k*s holds the interval. *)
val scaling_sweep : ?iterations:int -> unit -> row list

(** E10: parallel scavenging with 4 busy allocators; pauses come from the
    simulated multi-worker scavenge. *)
val parallel_scavenge_sweep :
  ?sanitize:Sanitizer.mode -> ?iterations:int -> unit -> row list

val print_rows : Format.formatter -> label:string -> row list -> unit

(** One population of pauses, summarized as percentiles (E18). *)
type pause_row = {
  pause_label : string;
  pauses : int;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
  budget_ms : float;  (** 0 for populations without a budget (scavenges) *)
  budget_overruns : int;  (** slices that ran past the budget *)
}

(** What the collector did over the run, for the benchmark record. *)
type major_summary = {
  maj_cycles : int;
  maj_slices : int;
  maj_budget : int;
  maj_overruns : int;
  maj_forced : int;  (** cycles force-completed at the exhaustion wall *)
  maj_reclaimed_objects : int;
  maj_reclaimed_words : int;
  maj_free_list_hits : int;  (** old allocations served from a hole *)
  maj_free_reused_words : int;
  maj_barrier_greys : int;  (** objects the write barrier shaded *)
}

(** E18: the pause distribution of an aggressive-GC churn run with the
    incremental collector on — every scavenge pause and every major
    slice.  The collector's claim is about the tail: old-space
    reclamation arrives as bounded slices, so p95 and max are the
    measure, not the mean. *)
val pause_study : ?iterations:int -> unit -> pause_row list * major_summary

val print_pause_rows :
  Format.formatter -> label:string -> pause_row list -> unit
