(** Ablations of the strategy choices the paper discusses: the
    free-context list (E6, the 160% -> 65% story), the method cache (E7,
    "much too slow" when shared and locked), the new-object space (E9, the
    paper's proposed replication), and the scheduler reorganization (E11).

    Each runs a suitable benchmark in the MS + 4 busy state under the
    competing strategies, reporting busy-over-baseline overheads so the
    numbers line up with the paper's phrasing. *)

type result = {
  label : string;
  variant_a : string;
  seconds_a : float;
  overhead_a : float;  (** vs the baseline BS run of the same benchmark *)
  variant_b : string;
  seconds_b : float;
  overhead_b : float;
}

(** E6: serialized vs replicated free-context lists, on a deep-call-chain
    workload. *)
val free_contexts : ?reps:int -> unit -> result

(** E6b: no free list at all vs the replicated one. *)
val no_free_contexts : ?reps:int -> unit -> result

(** E7: shared two-level-locked vs per-processor method caches. *)
val method_cache : ?reps:int -> unit -> result

(** E9: serialized allocation vs replicated eden (same total, and the
    paper's full k*s proposal) on an allocation-churn workload; two
    comparison rows. *)
val replicated_eden : ?reps:int -> unit -> result list

(** E11: BS remove-on-run vs MS keep-in-queue ready-list semantics. *)
val scheduler_reorganization : ?reps:int -> unit -> result

val print_result : Format.formatter -> result -> unit

(** {2 E16: the ready-queue representation under load} *)

type steal_row = {
  vps : int;
  locked_seconds : float;
  locked_sched_spin : int;  (** spin cycles on the global scheduler lock *)
  stealing_seconds : float;
  deque_spin : int;  (** spin cycles across every deque lock *)
  steals : int;
  migrations : int;
}

(** Run a fork/join burst of [workers] short Processes at each processor
    count in [vps] (default 5 -> 64), once on the locked queue and once
    on the stealing deques, with each processor's eden slice scaled so
    allocation does not become the bottleneck.  The run fails loudly if
    any worker's result goes missing. *)
val work_stealing_sweep :
  ?workers:int -> ?vps:int list -> unit -> steal_row list

val print_steal_rows :
  Format.formatter -> workers:int -> steal_row list -> unit
