(** Fault-injection campaigns over the macro benchmarks.

    Each seeded run drives one reduced macro benchmark in the busy
    system state (five processors, four busy background Processes) with
    the strict sanitizer armed, the spin watchdog on and a seeded fault
    injector installed, then compares the result against a fault-free
    reference on the identical configuration.  Survival means the
    benchmark still computed the right answer; the overhead column is
    what the recovery cost in virtual time. *)

type verdict =
  | Survived of int
      (** correct result; recovery overhead in permil of the reference *)
  | Deadlock_detected of Fault.deadlock_report
      (** the spin watchdog ended the run with a structured report *)
  | Failed of string
      (** wrong result, sanitizer violation or fatal error — a recovery
          bug, never acceptable *)

type row = {
  seed : int;
  bench_key : string;
  plan : Fault.plan;  (** the faults actually honoured *)
  verdict : verdict;
}

type summary = {
  campaign : Fault.campaign;
  watchdog_quanta : int;
  rows : row list;
  survived : int;
  deadlocks : int;
  failed : int;
  faults_injected : int;
  mean_overhead_permil : int;  (** across survived rows *)
}

val default_watchdog : int
val default_backoff : int

val describe_verdict : verdict -> string

(** Run one campaign: [seeds] seeded runs starting at [first_seed],
    cycling through [bench_keys] (reduced-repetition benchmarks; [quick]
    reduces further for smoke tests).  [log] receives one line per row. *)
val run_campaign :
  ?campaign:Fault.campaign ->
  ?seeds:int ->
  ?first_seed:int ->
  ?quick:bool ->
  ?bench_keys:string list ->
  ?watchdog_quanta:int ->
  ?backoff_quanta:int ->
  ?log:(string -> unit) ->
  unit ->
  summary

val print : Format.formatter -> summary -> unit
