(** Fault-injection campaigns over the macro benchmarks.

    Each seeded run drives one reduced macro benchmark in the busy
    system state (five processors, four busy background Processes) with
    the strict sanitizer armed, the spin watchdog on and a seeded fault
    injector installed, then compares the result against a fault-free
    reference on the identical configuration.  Survival means the
    benchmark still computed the right answer; the overhead column is
    what the recovery cost in virtual time. *)

type verdict =
  | Survived of int
      (** correct result; recovery overhead in permil of the reference *)
  | Deadlock_detected of Fault.deadlock_report
      (** the spin watchdog ended the run with a structured report *)
  | Failed of string
      (** wrong result, sanitizer violation or fatal error — a recovery
          bug, never acceptable *)

type row = {
  seed : int;
  bench_key : string;
  plan : Fault.plan;  (** the faults actually honoured *)
  verdict : verdict;
}

type summary = {
  campaign : Fault.campaign;
  watchdog_quanta : int;
  rows : row list;
  survived : int;
  deadlocks : int;
  failed : int;
  faults_injected : int;
  mean_overhead_permil : int;  (** across survived rows *)
}

val default_watchdog : int
val default_backoff : int

val describe_verdict : verdict -> string

(** Run one campaign: [seeds] seeded runs starting at [first_seed],
    cycling through [bench_keys] (reduced-repetition benchmarks; [quick]
    reduces further for smoke tests).  [log] receives one line per row. *)
val run_campaign :
  ?campaign:Fault.campaign ->
  ?seeds:int ->
  ?first_seed:int ->
  ?quick:bool ->
  ?bench_keys:string list ->
  ?watchdog_quanta:int ->
  ?backoff_quanta:int ->
  ?log:(string -> unit) ->
  unit ->
  summary

val print : Format.formatter -> summary -> unit

(** {2 The replica campaign (E19)}

    Crash-and-rejoin scenarios over the replicated image cluster
    ({!Replica}): each seeded run injects replica crashes aimed at the
    recovery path itself — a checkpoint torn by the crash, a second
    crash in the middle of replay, a double crash of the same replica —
    and the oracle is the cluster's own divergence detector: every run
    must converge to the non-replicated reference fingerprint. *)

type replica_row = {
  r_seed : int;
  r_scenario : string;
  r_outcome : Replica.outcome;
  r_correct : bool;
}

type replica_summary = {
  r_rows : replica_row list;
  r_correct_rows : int;
  r_incorrect : int;  (** must be 0: divergence or non-convergence *)
  r_crashes : int;
  r_rejoins : int;
  r_fallbacks : int;
}

val run_replica_campaign :
  ?seeds:int ->
  ?first_seed:int ->
  ?quick:bool ->
  ?log:(string -> unit) ->
  unit ->
  replica_summary

val print_replica : Format.formatter -> replica_summary -> unit
