(* Scavenge economics (paper section 3.1).

   The paper argues: the scavenge interval is roughly s/r (allocation-space
   size over allocation rate), so doubling s doubles the interval; with k
   processors allocating, an allocation space of k*s keeps the interval —
   and scavenging stays a small fraction (~3%) of processor time.  The
   parallel-scavenge extension ("applying multiple processors to the
   scavenging operation") should hold the total overhead near the
   uniprocessor figure. *)

type row = {
  eden_kb : int;
  allocators : int;
  scavenge_workers : int;
  scavenges : int;
  interval_s : float;        (* mean simulated time between scavenges *)
  gc_share : float;          (* fraction of run time spent scavenging *)
  total_s : float;
  mean_pause_ms : float;     (* mean stop-the-world pause *)
  coord_share : float;       (* coordination cycles / scavenge cycles *)
  imbalance : float;         (* max worker busy / mean worker busy; 1.0 serial *)
}

(* An allocation-heavy workload: the per-iteration allocation mirrors the
   busy Process. *)
let churn_classes = {st|
CLASS GcChurn SUPER Object
METHODS GcChurn
churn: n
    "allocate continuously, keeping a window of recent objects live so
     every scavenge has real survivors to copy"
    | keep p |
    keep := Array new: 300.
    1 to: n do: [:i |
        p := Point x: i y: i.
        (Array new: 16) at: 1 put: p.
        keep at: i \\ 300 + 1 put: (Array with: p with: i)].
    ^n
!
spawnChurn: n done: sem
    [ self churn: n. sem signal ] fork
!
|st}

let run_one ?sanitize ~eden_kb ~allocators ~scavenge_workers ~iterations () =
  let processors = max 1 allocators in
  let config =
    let base =
      if processors = 1 then Config.ms ~processors:1 ()
      else Config.ms ~processors ()
    in
    { base with
      Config.eden_words = eden_kb * 1024 / 8;
      Config.scavenge_workers;
      Config.sanitize =
        (match sanitize with Some m -> m | None -> base.Config.sanitize) }
  in
  let vm = Vm.create config in
  Vm.load_classes vm churn_classes;
  let src =
    if allocators <= 1 then
      Printf.sprintf "GcChurn new churn: %d" iterations
    else
      Printf.sprintf
        "| sem churn |\n\
         sem := Semaphore new.\n\
         churn := GcChurn new.\n\
         1 to: %d do: [:k | churn spawnChurn: %d done: sem].\n\
         1 to: %d do: [:k | sem wait].\n\
         ^0"
        allocators (iterations / allocators) allocators
  in
  let t0 = Vm.cycles vm in
  (match Vm.run ~watch:(Vm.spawn vm src) vm with
   | Vm.Finished _ -> ()
   | Vm.Deadlock | Vm.Cycle_limit -> failwith "gc study run failed");
  let cycles = Vm.cycles vm - t0 in
  let scavenges = Heap.scavenge_count vm.Vm.heap in
  let cm = config.Config.cost in
  let imbalance =
    if vm.Vm.par_scavenges = 0 then 1.0
    else begin
      let k = min scavenge_workers processors in
      let busy = Array.sub vm.Vm.par_busy_cycles 0 k in
      let total = Array.fold_left ( + ) 0 busy in
      if total = 0 then 1.0
      else
        let mean = float_of_int total /. float_of_int k in
        float_of_int (Array.fold_left max 0 busy) /. mean
    end
  in
  { eden_kb;
    allocators;
    scavenge_workers;
    scavenges;
    interval_s =
      (if scavenges = 0 then infinity
       else Cost_model.seconds cm (cycles / scavenges));
    gc_share = float_of_int vm.Vm.scavenge_cycles /. float_of_int cycles;
    total_s = Cost_model.seconds cm cycles;
    mean_pause_ms =
      (if vm.Vm.scavenge_pauses = 0 then 0.0
       else
         1000.0
         *. Cost_model.seconds cm
              (vm.Vm.scavenge_cycles / vm.Vm.scavenge_pauses));
    coord_share =
      (if vm.Vm.scavenge_cycles = 0 then 0.0
       else
         float_of_int vm.Vm.par_coord_cycles
         /. float_of_int vm.Vm.scavenge_cycles);
    imbalance }

(* E8: eden size sweep with one allocator. *)
let eden_sweep ?(iterations = 30_000) () =
  List.map
    (fun eden_kb ->
      run_one ~eden_kb ~allocators:1 ~scavenge_workers:1 ~iterations ())
    [ 40; 80; 160; 320 ]

(* E8b: k allocating processes, eden scaled as k*s keeps the interval. *)
let scaling_sweep ?(iterations = 30_000) () =
  List.map
    (fun k ->
      run_one ~eden_kb:(80 * k) ~allocators:k ~scavenge_workers:1 ~iterations
        ())
    [ 1; 2; 4 ]

(* E10: parallel scavenging with 4 busy allocators.  With [sanitize] on,
   every parallel collection also runs the claim/chunk invariant checks and
   a full heap verification (fatal under Strict). *)
let parallel_scavenge_sweep ?sanitize ?(iterations = 30_000) () =
  List.map
    (fun workers ->
      run_one ?sanitize ~eden_kb:80 ~allocators:4 ~scavenge_workers:workers
        ~iterations ())
    [ 1; 2; 3; 5 ]

(* ============ pause distribution (E18) ============

   The incremental collector's claim is about the *tail*: old-space
   reclamation arrives as bounded slices instead of one long
   stop-the-world mark-sweep, so the pause distribution — not the mean —
   is the measure.  One aggressive-GC churn run yields both populations:
   every scavenge pause and every major slice, summarized as
   percentiles against the slice budget. *)

type pause_row = {
  pause_label : string;
  pauses : int;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
  budget_ms : float;  (** 0 for populations without a budget (scavenges) *)
  budget_overruns : int;  (** slices that ran past the budget *)
}

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0
  | n -> sorted.(min (n - 1) (p * n / 100))

let distribution cm ~label ~budget ~overruns costs =
  let arr = Array.of_list costs in
  Array.sort compare arr;
  let ms c = 1000.0 *. Cost_model.seconds cm c in
  { pause_label = label;
    pauses = Array.length arr;
    p50_ms = ms (percentile arr 50);
    p95_ms = ms (percentile arr 95);
    max_ms = ms (if Array.length arr = 0 then 0 else arr.(Array.length arr - 1));
    budget_ms = ms budget;
    budget_overruns = overruns }

type major_summary = {
  maj_cycles : int;
  maj_slices : int;
  maj_budget : int;
  maj_overruns : int;
  maj_forced : int;
  maj_reclaimed_objects : int;
  maj_reclaimed_words : int;
  maj_free_list_hits : int;
  maj_free_reused_words : int;
  maj_barrier_greys : int;
}

(* E18: scavenge pauses and major slices from one aggressive-GC churn run
   (one-scavenge tenure age, tiny eden, the collector on), so most of the
   churn tenures and then dies in old space. *)
let pause_study ?(iterations = 30_000) () =
  let config =
    { (Config.ms ~processors:4 ()) with
      Config.eden_words = 2048;
      survivor_words = 1024;
      tenure_age = 1;
      old_words = 256 * 1024;
      major_enabled = true }
  in
  let vm = Vm.create config in
  Vm.load_classes vm churn_classes;
  (match
     Vm.run ~watch:(Vm.spawn vm (Printf.sprintf "GcChurn new churn: %d" iterations)) vm
   with
   | Vm.Finished _ -> ()
   | Vm.Deadlock | Vm.Cycle_limit -> failwith "gc pause study run failed");
  let cm = config.Config.cost in
  let mj =
    match vm.Vm.major with
    | Some mj -> mj
    | None -> failwith "gc pause study: collector not configured"
  in
  let rows =
    [ distribution cm ~label:"scavenge pause" ~budget:0 ~overruns:0
        vm.Vm.scavenge_pause_costs;
      distribution cm ~label:"major slice" ~budget:(Major.budget mj)
        ~overruns:(Major.overruns mj) (Major.slice_costs mj) ]
  in
  let summary =
    { maj_cycles = Major.cycles_completed mj;
      maj_slices = Major.slices mj;
      maj_budget = Major.budget mj;
      maj_overruns = Major.overruns mj;
      maj_forced = Major.forced_completions mj;
      maj_reclaimed_objects = Major.reclaimed_objects mj;
      maj_reclaimed_words = Major.reclaimed_words mj;
      maj_free_list_hits = Heap.free_list_hits vm.Vm.heap;
      maj_free_reused_words = Heap.free_reused_words vm.Vm.heap;
      maj_barrier_greys = Major.barrier_greys mj }
  in
  (rows, summary)

let print_pause_rows fmt ~label rows =
  Format.fprintf fmt "%s@." label;
  Format.fprintf fmt
    "  population      count  p50(ms)  p95(ms)  max(ms)  budget(ms)  overruns@.";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "  %-14s  %5d  %7.3f  %7.3f  %7.3f  %10.3f  %8d@."
        r.pause_label r.pauses r.p50_ms r.p95_ms r.max_ms r.budget_ms
        r.budget_overruns)
    rows

let print_rows fmt ~label rows =
  Format.fprintf fmt "%s@." label;
  Format.fprintf fmt
    "  eden(KB)  allocators  gc-workers  scavenges  interval(s)  gc-share  \
     total(s)  pause(ms)  coord%%  imbalance@.";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "  %7d  %9d  %9d  %9d  %10.3f  %7.1f%%  %8.2f  %9.2f  %5.1f%%  %9.2f@."
        r.eden_kb r.allocators r.scavenge_workers r.scavenges r.interval_s
        (100.0 *. r.gc_share) r.total_s r.mean_pause_ms
        (100.0 *. r.coord_share) r.imbalance)
    rows
