(* Scavenge economics (paper section 3.1).

   The paper argues: the scavenge interval is roughly s/r (allocation-space
   size over allocation rate), so doubling s doubles the interval; with k
   processors allocating, an allocation space of k*s keeps the interval —
   and scavenging stays a small fraction (~3%) of processor time.  The
   parallel-scavenge extension ("applying multiple processors to the
   scavenging operation") should hold the total overhead near the
   uniprocessor figure. *)

type row = {
  eden_kb : int;
  allocators : int;
  scavenge_workers : int;
  scavenges : int;
  interval_s : float;        (* mean simulated time between scavenges *)
  gc_share : float;          (* fraction of run time spent scavenging *)
  total_s : float;
  mean_pause_ms : float;     (* mean stop-the-world pause *)
  coord_share : float;       (* coordination cycles / scavenge cycles *)
  imbalance : float;         (* max worker busy / mean worker busy; 1.0 serial *)
}

(* An allocation-heavy workload: the per-iteration allocation mirrors the
   busy Process. *)
let churn_classes = {st|
CLASS GcChurn SUPER Object
METHODS GcChurn
churn: n
    "allocate continuously, keeping a window of recent objects live so
     every scavenge has real survivors to copy"
    | keep p |
    keep := Array new: 300.
    1 to: n do: [:i |
        p := Point x: i y: i.
        (Array new: 16) at: 1 put: p.
        keep at: i \\ 300 + 1 put: (Array with: p with: i)].
    ^n
!
spawnChurn: n done: sem
    [ self churn: n. sem signal ] fork
!
|st}

let run_one ?sanitize ~eden_kb ~allocators ~scavenge_workers ~iterations () =
  let processors = max 1 allocators in
  let config =
    let base =
      if processors = 1 then Config.ms ~processors:1 ()
      else Config.ms ~processors ()
    in
    { base with
      Config.eden_words = eden_kb * 1024 / 8;
      Config.scavenge_workers;
      Config.sanitize =
        (match sanitize with Some m -> m | None -> base.Config.sanitize) }
  in
  let vm = Vm.create config in
  Vm.load_classes vm churn_classes;
  let src =
    if allocators <= 1 then
      Printf.sprintf "GcChurn new churn: %d" iterations
    else
      Printf.sprintf
        "| sem churn |\n\
         sem := Semaphore new.\n\
         churn := GcChurn new.\n\
         1 to: %d do: [:k | churn spawnChurn: %d done: sem].\n\
         1 to: %d do: [:k | sem wait].\n\
         ^0"
        allocators (iterations / allocators) allocators
  in
  let t0 = Vm.cycles vm in
  (match Vm.run ~watch:(Vm.spawn vm src) vm with
   | Vm.Finished _ -> ()
   | Vm.Deadlock | Vm.Cycle_limit -> failwith "gc study run failed");
  let cycles = Vm.cycles vm - t0 in
  let scavenges = Heap.scavenge_count vm.Vm.heap in
  let cm = config.Config.cost in
  let imbalance =
    if vm.Vm.par_scavenges = 0 then 1.0
    else begin
      let k = min scavenge_workers processors in
      let busy = Array.sub vm.Vm.par_busy_cycles 0 k in
      let total = Array.fold_left ( + ) 0 busy in
      if total = 0 then 1.0
      else
        let mean = float_of_int total /. float_of_int k in
        float_of_int (Array.fold_left max 0 busy) /. mean
    end
  in
  { eden_kb;
    allocators;
    scavenge_workers;
    scavenges;
    interval_s =
      (if scavenges = 0 then infinity
       else Cost_model.seconds cm (cycles / scavenges));
    gc_share = float_of_int vm.Vm.scavenge_cycles /. float_of_int cycles;
    total_s = Cost_model.seconds cm cycles;
    mean_pause_ms =
      (if vm.Vm.scavenge_pauses = 0 then 0.0
       else
         1000.0
         *. Cost_model.seconds cm
              (vm.Vm.scavenge_cycles / vm.Vm.scavenge_pauses));
    coord_share =
      (if vm.Vm.scavenge_cycles = 0 then 0.0
       else
         float_of_int vm.Vm.par_coord_cycles
         /. float_of_int vm.Vm.scavenge_cycles);
    imbalance }

(* E8: eden size sweep with one allocator. *)
let eden_sweep ?(iterations = 30_000) () =
  List.map
    (fun eden_kb ->
      run_one ~eden_kb ~allocators:1 ~scavenge_workers:1 ~iterations ())
    [ 40; 80; 160; 320 ]

(* E8b: k allocating processes, eden scaled as k*s keeps the interval. *)
let scaling_sweep ?(iterations = 30_000) () =
  List.map
    (fun k ->
      run_one ~eden_kb:(80 * k) ~allocators:k ~scavenge_workers:1 ~iterations
        ())
    [ 1; 2; 4 ]

(* E10: parallel scavenging with 4 busy allocators.  With [sanitize] on,
   every parallel collection also runs the claim/chunk invariant checks and
   a full heap verification (fatal under Strict). *)
let parallel_scavenge_sweep ?sanitize ?(iterations = 30_000) () =
  List.map
    (fun workers ->
      run_one ?sanitize ~eden_kb:80 ~allocators:4 ~scavenge_workers:workers
        ~iterations ())
    [ 1; 2; 3; 5 ]

let print_rows fmt ~label rows =
  Format.fprintf fmt "%s@." label;
  Format.fprintf fmt
    "  eden(KB)  allocators  gc-workers  scavenges  interval(s)  gc-share  \
     total(s)  pause(ms)  coord%%  imbalance@.";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "  %7d  %9d  %9d  %9d  %10.3f  %7.1f%%  %8.2f  %9.2f  %5.1f%%  %9.2f@."
        r.eden_kb r.allocators r.scavenge_workers r.scavenges r.interval_s
        (100.0 *. r.gc_share) r.total_s r.mean_pause_ms
        (100.0 *. r.coord_share) r.imbalance)
    rows
