(** E17: the image-server workload.

    N simulated user sessions issue browse/inspect/compile requests over
    the kernel's virtual-time IPC; a pool of Smalltalk worker Processes
    serves them with the macro-benchmark tools.  Arrivals are engine-side
    calendar timers, so the whole request stream is part of the
    deterministic virtual-time schedule.  The workload exists to measure
    the event-calendar engine ({!Config.Engine_calendar}) against the
    scan engine under many mostly-idle sessions. *)

type loop =
  | Open  (** fixed inter-arrival intervals, regardless of completions *)
  | Closed  (** next request [think_ms] after the previous completes *)

type params = {
  sessions : int;  (** simulated users *)
  workers : int;  (** Smalltalk server Processes *)
  loop : loop;
  requests : int;  (** arrivals per session *)
  think_ms : int;  (** closed loop: completion → next arrival *)
  interval_ms : int;  (** open loop: inter-arrival within a session *)
  admit : int;  (** in-flight cap; 0 disables admission control *)
}

val default_params : params

(** Latency percentiles over completed requests, in cycles. *)
type percentiles = { p50 : int; p90 : int; p99 : int; pmax : int }

type stats = {
  offered : int;
  completed : int;
  rejected : int;  (** refused by admission control *)
  latency : percentiles;
  per_session : int array;  (** completions per session *)
  run_cycles : int;
  sim_seconds : float;
  steps : int;  (** bytecodes executed across all processors *)
  engine_events : int;
  parks : int;
  quiesced : bool;
      (** the run ended in quiescence with every arrival accounted for *)
}

(** The ImageServer class source (loaded on top of
    {!Macro.benchmark_classes}). *)
val server_classes : string

(** Build a VM from [config], install the workload and run it to
    quiescence.  Returns the VM (for instrumentation) and the stats.
    @raise Invalid_argument when sessions, workers or requests < 1. *)
val run : ?max_cycles:int -> Config.t -> params -> Vm.t * stats

val pp_stats : Format.formatter -> cm:Cost_model.t -> stats -> unit
