(* Fault-injection campaigns over the macro benchmarks (the robustness
   study).  One row = one seeded run of a reduced macro benchmark in the
   busy system state — five processors, four busy background Processes —
   with the strict sanitizer armed, the spin watchdog on and a seeded
   fault injector installed.  The verdict compares the benchmark's
   result against a fault-free reference on the identical configuration:

     Survived   correct result; the overhead column is the extra virtual
                time recovery cost, in permil of the reference run
     Deadlock   the spin watchdog detected an unrecoverable wait (a
                crashed lock holder) and raised a structured report
     Failed     wrong result, a sanitizer violation or a fatal error —
                a recovery bug, never acceptable

   The reference is computed once per benchmark from an injector-free
   run: with no faults the simulation is bit-identical to the seed, so
   survival is measured against exactly the behaviour the benchmark
   tables report elsewhere. *)

type verdict =
  | Survived of int  (* recovery overhead, permil of reference cycles *)
  | Deadlock_detected of Fault.deadlock_report
  | Failed of string

type row = {
  seed : int;
  bench_key : string;
  plan : Fault.plan;
  verdict : verdict;
}

type summary = {
  campaign : Fault.campaign;
  watchdog_quanta : int;
  rows : row list;
  survived : int;
  deadlocks : int;
  failed : int;
  faults_injected : int;
  mean_overhead_permil : int;  (* across survived rows *)
}

let default_watchdog = 64
let default_backoff = 4

(* The campaign configuration: MS busy with strict checking.  GC and
   mixed campaigns run the parallel scavenger, or the Gc_barrier
   injection point would never be queried. *)
let campaign_config ~campaign ~watchdog_quanta ~backoff_quanta =
  let c = Macro.config_of_state Macro.Ms_busy in
  let scavenge_workers =
    match campaign with
    | Fault.Gc | Fault.Mixed -> 3
    | Fault.Crash | Fault.Stall | Fault.Lock | Fault.Device
    | Fault.Replica ->
        c.Config.scavenge_workers
  in
  { c with
    Config.sanitize = Sanitizer.Strict;
    Config.watchdog_quanta;
    Config.backoff_quanta;
    Config.scavenge_workers;
    (* a crashed processor leaves the survivors running longer, so the
       faulted run tenures more than the fault-free reference.  Old space
       was once doubled to keep that headroom out of the verdict; the
       incremental collector (E18) reclaims the extra churn at the
       original sizing instead *)
    Config.major_enabled = true }

let reduced_bench ~quick key =
  let b = List.find (fun b -> b.Macro.key = key) Macro.benchmarks in
  { b with Macro.reps = (if quick then 3 else 8) }

(* Accumulate the per-iteration results so the final value checks every
   repetition, not just that the loop terminated. *)
let source (b : Macro.benchmark) =
  Printf.sprintf
    "| bench t |\n\
     bench := MacroBenchmarks new.\n\
     bench setUp.\n\
     t := 0.\n\
     %d timesRepeat: [t := t + (%s)].\n\
     t"
    b.Macro.reps b.Macro.body

let prepare ~campaign ~watchdog_quanta ~backoff_quanta =
  let vm =
    Vm.create (campaign_config ~campaign ~watchdog_quanta ~backoff_quanta)
  in
  Vm.load_classes vm Macro.benchmark_classes;
  ignore (Workloads.spawn_busy vm 4);
  vm

(* Evaluate and describe immediately (the oop dies at the next run). *)
let run_one vm src =
  let before = Vm.cycles vm in
  let v = Vm.eval vm src in
  (Vm.describe vm v, Vm.cycles vm - before)

let describe_verdict = function
  | Survived o -> Printf.sprintf "survived (%+d permil)" o
  | Deadlock_detected r ->
      "deadlock detected: " ^ Fault.describe_deadlock r
  | Failed msg -> "FAILED: " ^ msg

let run_campaign ?(campaign = Fault.Mixed) ?(seeds = 8) ?(first_seed = 0)
    ?(quick = false) ?(bench_keys = [ "definition"; "inspector" ])
    ?(watchdog_quanta = default_watchdog)
    ?(backoff_quanta = default_backoff) ?(log = fun _ -> ()) () =
  let params = Fault.params_of_campaign campaign in
  let benches = List.map (reduced_bench ~quick) bench_keys in
  let refs = Hashtbl.create 4 in
  let reference (b : Macro.benchmark) =
    match Hashtbl.find_opt refs b.Macro.key with
    | Some r -> r
    | None ->
        let vm = prepare ~campaign ~watchdog_quanta ~backoff_quanta in
        let r = run_one vm (source b) in
        Hashtbl.replace refs b.Macro.key r;
        r
  in
  let rows =
    List.init seeds (fun i ->
        let seed = first_seed + i in
        let b = List.nth benches (i mod List.length benches) in
        let ref_result, ref_cycles = reference b in
        let vm = prepare ~campaign ~watchdog_quanta ~backoff_quanta in
        let inj = Fault.seeded ~params ~seed () in
        Vm.set_fault_injector vm (Some inj);
        let verdict =
          match run_one vm (source b) with
          | result, cycles ->
              if result = ref_result then
                Survived ((cycles - ref_cycles) * 1000 / ref_cycles)
              else
                Failed
                  (Printf.sprintf "result %s, reference %s" result ref_result)
          | exception Fault.Deadlock_suspected r -> Deadlock_detected r
          | exception Fault.Fatal info -> Failed (Fault.describe_fatal info)
          | exception Sanitizer.Violation msg -> Failed msg
          | exception Vm.Error msg -> Failed ("vm: " ^ msg)
          | exception Heap.Image_full msg -> Failed ("heap: " ^ msg)
        in
        let plan = Fault.injected inj in
        log
          (Printf.sprintf "seed %d on %s: %d fault(s), %s" seed b.Macro.key
             (List.length plan) (describe_verdict verdict));
        { seed; bench_key = b.Macro.key; plan; verdict })
  in
  let survived =
    List.length (List.filter (fun r -> match r.verdict with Survived _ -> true | _ -> false) rows)
  in
  let deadlocks =
    List.length
      (List.filter
         (fun r -> match r.verdict with Deadlock_detected _ -> true | _ -> false)
         rows)
  in
  let failed = List.length rows - survived - deadlocks in
  let overheads =
    List.filter_map
      (fun r -> match r.verdict with Survived o -> Some o | _ -> None)
      rows
  in
  { campaign;
    watchdog_quanta;
    rows;
    survived;
    deadlocks;
    failed;
    faults_injected =
      List.fold_left (fun n r -> n + List.length r.plan) 0 rows;
    mean_overhead_permil =
      (match overheads with
       | [] -> 0
       | os -> List.fold_left ( + ) 0 os / List.length os) }

let print fmt s =
  Format.fprintf fmt
    "Fault campaign '%s' (watchdog %d quanta): %d run(s), %d fault(s) \
     injected@."
    (Fault.campaign_name s.campaign)
    s.watchdog_quanta (List.length s.rows) s.faults_injected;
  Format.fprintf fmt "  %-5s %-14s %7s  %s@." "seed" "benchmark" "faults"
    "verdict";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-5d %-14s %7d  %s@." r.seed r.bench_key
        (List.length r.plan)
        (describe_verdict r.verdict))
    s.rows;
  let runs = List.length s.rows in
  Format.fprintf fmt
    "  survival %d/%d (%.1f%%), deadlocks detected %d, failures %d" s.survived
    runs
    (if runs = 0 then 0.0 else 100.0 *. float_of_int s.survived /. float_of_int runs)
    s.deadlocks s.failed;
  if s.survived > 0 then
    Format.fprintf fmt "; mean recovery overhead %+d permil@."
      s.mean_overhead_permil
  else Format.fprintf fmt "@."

(* --- the replica campaign (E19) ---

   The cluster is its own harness: every run already carries a
   non-replicated reference and a divergence detector, so the campaign's
   oracle is simply the outcome — a run is correct when every replica
   converged to the reference fingerprint and no divergence was
   recorded.  The three scenarios aim the crash at the recovery path
   itself: a checkpoint torn by the crash (the rejoin must fall back), a
   second crash in the middle of replay (the rejoin must restart), and a
   double crash of the same replica (recover, then recover again). *)

type replica_row = {
  r_seed : int;
  r_scenario : string;
  r_outcome : Replica.outcome;
  r_correct : bool;
}

type replica_summary = {
  r_rows : replica_row list;
  r_correct_rows : int;
  r_incorrect : int;
  r_crashes : int;
  r_rejoins : int;
  r_fallbacks : int;
}

let replica_scenarios =
  [ Replica.Torn_checkpoint; Replica.Crash_mid_replay; Replica.Double_crash ]

let run_replica_campaign ?(seeds = 4) ?(first_seed = 0) ?(quick = false)
    ?(log = fun _ -> ()) () =
  let base =
    if quick then
      { Replica.default_params with Replica.requests = 16;
        Replica.checkpoint_every = 6 }
    else { Replica.default_params with Replica.requests = 32 }
  in
  let rows =
    List.concat_map
      (fun scenario ->
        List.init seeds (fun i ->
            let seed = first_seed + i in
            let p =
              { base with
                Replica.crash_seed = Some (1 + seed);
                Replica.log_seed = 1 + seed;
                Replica.scenario = Some scenario }
            in
            let o = Replica.run p in
            let correct = o.Replica.converged && o.Replica.divergences = [] in
            log
              (Printf.sprintf
                 "seed %d %-16s %d crash(es), %d rejoin(s), %d fallback(s), \
                  availability %d permil: %s"
                 seed
                 (Replica.scenario_name scenario)
                 o.Replica.crashes o.Replica.rejoins o.Replica.fallbacks
                 o.Replica.availability_permil
                 (if correct then "converged" else "INCORRECT"));
            { r_seed = seed;
              r_scenario = Replica.scenario_name scenario;
              r_outcome = o;
              r_correct = correct }))
      replica_scenarios
  in
  let count f = List.fold_left (fun n r -> n + f r) 0 rows in
  { r_rows = rows;
    r_correct_rows = count (fun r -> if r.r_correct then 1 else 0);
    r_incorrect = count (fun r -> if r.r_correct then 0 else 1);
    r_crashes = count (fun r -> r.r_outcome.Replica.crashes);
    r_rejoins = count (fun r -> r.r_outcome.Replica.rejoins);
    r_fallbacks = count (fun r -> r.r_outcome.Replica.fallbacks) }

let print_replica fmt s =
  Format.fprintf fmt
    "Replica campaign: %d run(s), %d crash(es), %d rejoin(s), %d checkpoint \
     fallback(s)@."
    (List.length s.r_rows) s.r_crashes s.r_rejoins s.r_fallbacks;
  Format.fprintf fmt "  %-5s %-16s %7s %7s %9s %5s  %s@." "seed" "scenario"
    "crashes" "rejoins" "fallbacks" "avail" "verdict";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-5d %-16s %7d %7d %9d %5d  %s@." r.r_seed
        r.r_scenario r.r_outcome.Replica.crashes r.r_outcome.Replica.rejoins
        r.r_outcome.Replica.fallbacks r.r_outcome.Replica.availability_permil
        (if r.r_correct then "converged" else "INCORRECT"))
    s.r_rows;
  Format.fprintf fmt "  correct %d/%d, incorrect %d@." s.r_correct_rows
    (List.length s.r_rows) s.r_incorrect
