(* E17: the image-server workload.

   The paper's programming environment is interactive: browse, inspect,
   compile.  This workload turns those activities into a request/response
   server so the engine can be measured under many mostly-idle sessions —
   the regime the event-calendar engine (Config.Engine_calendar) exists
   for.  N simulated user sessions issue requests over the kernel's
   virtual-time IPC (a request mailbox plus a Semaphore signalled through
   the timer calendar); a pool of Smalltalk worker Processes serves them
   with the macro-benchmark tools (print definition, inspector, compile,
   hierarchy) and reports each completion back through a primitive.

   The generator side runs engine-side as [State.Run_hook] timers, so
   arrivals are part of the deterministic virtual-time event stream:

   - open loop: every session's arrivals are prescheduled at fixed
     inter-arrival intervals, whether or not earlier requests finished —
     the overload-capable generator;
   - closed loop: each session issues its next request [think_ms] after
     the previous one completes — the think-time user model.

   Admission control caps in-flight requests: an arrival over the cap is
   rejected (counted, never queued), which bounds queueing delay under
   open-loop overload. *)

type loop = Open | Closed

type params = {
  sessions : int;       (* simulated users *)
  workers : int;        (* Smalltalk server Processes *)
  loop : loop;
  requests : int;       (* arrivals per session *)
  think_ms : int;       (* closed loop: completion -> next arrival *)
  interval_ms : int;    (* open loop: inter-arrival within a session *)
  admit : int;          (* in-flight cap; 0 = no admission control *)
}

let default_params =
  { sessions = 4; workers = 2; loop = Closed; requests = 4;
    think_ms = 20; interval_ms = 50; admit = 0 }

(* Latency percentiles, in cycles.  [pmax] is the worst request. *)
type percentiles = { p50 : int; p90 : int; p99 : int; pmax : int }

type stats = {
  offered : int;        (* arrivals generated *)
  completed : int;
  rejected : int;       (* refused by admission control *)
  latency : percentiles;
  per_session : int array;  (* completions per session *)
  run_cycles : int;     (* virtual time spent serving *)
  sim_seconds : float;
  steps : int;          (* bytecodes executed across all processors *)
  engine_events : int;
  parks : int;
  quiesced : bool;      (* the run ended with every session served out *)
}

(* The server classes ride on the macro-benchmark tools: [handle:] maps a
   request id onto one of four environment activities.  Each worker owns
   its own tool instance (per-session tool state); the compile request
   still funnels through the shared BenchScratch class, so workers
   genuinely contend for the compiler's shared structures. *)
let server_classes = {st|
CLASS ImageServer SUPER Object IVARS bench
METHODS ImageServer
setUp
    bench := MacroBenchmarks new.
    bench setUp
!
handle: rid
    | kind |
    kind := rid \\ 4.
    kind = 0 ifTrue: [^bench printClassDefinition].
    kind = 1 ifTrue: [^bench createInspectorView].
    kind = 2 ifTrue: [^bench compileDummyMethod].
    ^bench printClassHierarchy
!
serveLoop
    | rid |
    [true] whileTrue: [
        ServerPool wait.
        rid := Mirror nextRequest.
        rid >= 0 ifTrue: [
            self handle: rid.
            Mirror requestDone: rid]]
!
|st}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (p * n / 100))

(* Run the server workload on a fresh VM built from [config].  The
   macro-benchmark classes and the server classes are loaded, the worker
   pool is spawned, the generators are installed as calendar timers, and
   the VM runs until quiescence: every arrival issued, every accepted
   request completed, every worker back on [ServerPool wait]. *)
let run ?(max_cycles = 200_000_000_000) config p =
  if p.sessions < 1 || p.workers < 1 || p.requests < 1 then
    invalid_arg "Server.run: sessions, workers and requests must be >= 1";
  let vm = Vm.create config in
  Vm.load_classes vm Macro.benchmark_classes;
  Vm.load_classes vm server_classes;
  (* the request pool semaphore, created as an image global so the worker
     Processes and the engine-side generators name the same object *)
  ignore (Vm.eval vm "ServerPool := Semaphore new. 0");
  let pool_cell =
    ref (match Universe.get_global vm.Vm.u "ServerPool" with
         | Some sem -> sem
         | None -> failwith "Server.run: ServerPool global missing")
  in
  Heap.add_root vm.Vm.heap pool_cell;
  for w = 1 to p.workers do
    ignore
      (Vm.spawn vm ~priority:5 ~name:(Printf.sprintf "server-%d" w)
         "| s | s := ImageServer new. s setUp. s serveLoop")
  done;
  let sh = vm.Vm.shared in
  let cm = sh.State.cm in
  let cpms = max 1 (cm.Cost_model.cycles_per_second / 1000) in
  let think_cycles = p.think_ms * cpms in
  let interval_cycles = max 1 (p.interval_ms * cpms) in
  let mbox = Mailbox.make "requests" in
  sh.State.request_mailbox <- Some mbox;
  let total = p.sessions * p.requests in
  let arrival = Array.make total (-1) in
  let completion = Array.make total (-1) in
  let rid_session = Array.make total (-1) in
  let issued = Array.make p.sessions 0 in
  let per_session = Array.make p.sessions 0 in
  let next_rid = ref 0 in
  let offered = ref 0 in
  let completed = ref 0 in
  let rejected = ref 0 in
  let in_flight = ref 0 in
  let add_timer ~key action = Calendar.add sh.State.timers ~key action in
  (* issue one request for [session] at virtual time [now]: admission
     check, then mailbox send + pool signal at the same instant *)
  let rec issue ~session ~now =
    let rid = !next_rid in
    incr next_rid;
    incr offered;
    issued.(session) <- issued.(session) + 1;
    rid_session.(rid) <- session;
    if p.admit > 0 && !in_flight >= p.admit then begin
      incr rejected;
      (* a refused closed-loop user thinks and tries again with the
         session's next request *)
      if p.loop = Closed && issued.(session) < p.requests then
        add_timer ~key:(now + think_cycles)
          (State.Run_hook (fun ~now -> issue ~session ~now))
    end
    else begin
      arrival.(rid) <- now;
      incr in_flight;
      Mailbox.send mbox ~now rid;
      let cell = ref !pool_cell in
      Heap.add_root vm.Vm.heap cell;
      add_timer ~key:now (State.Signal_sem cell)
    end
  in
  sh.State.on_request_done <-
    (fun ~rid ~now ->
      if rid >= 0 && rid < total && completion.(rid) < 0 then begin
        completion.(rid) <- now;
        decr in_flight;
        incr completed;
        let session = rid_session.(rid) in
        per_session.(session) <- per_session.(session) + 1;
        if p.loop = Closed && issued.(session) < p.requests then
          add_timer ~key:(now + think_cycles)
            (State.Run_hook (fun ~now -> issue ~session ~now))
      end);
  (* generators: stagger the sessions so they do not arrive in lockstep *)
  let base = Machine.max_clock vm.Vm.machine + cpms in
  let stagger =
    max 1
      ((match p.loop with Open -> interval_cycles | Closed -> think_cycles + 1)
       / p.sessions)
  in
  (match p.loop with
   | Open ->
       for s = 0 to p.sessions - 1 do
         for k = 0 to p.requests - 1 do
           add_timer ~key:(base + (s * stagger) + (k * interval_cycles))
             (State.Run_hook (fun ~now -> issue ~session:s ~now))
         done
       done
   | Closed ->
       for s = 0 to p.sessions - 1 do
         add_timer ~key:(base + (s * stagger))
           (State.Run_hook (fun ~now -> issue ~session:s ~now))
       done);
  let before_cycles = Vm.cycles vm in
  let outcome = Vm.run ~max_cycles vm in
  let run_cycles = Vm.cycles vm - before_cycles in
  Heap.remove_root vm.Vm.heap pool_cell;
  sh.State.request_mailbox <- None;
  sh.State.on_request_done <- (fun ~rid:_ ~now:_ -> ());
  let latencies =
    Array.of_seq
      (Seq.filter_map
         (fun rid ->
           if completion.(rid) >= 0 && arrival.(rid) >= 0 then
             Some (completion.(rid) - arrival.(rid))
           else None)
         (Seq.init total Fun.id))
  in
  Array.sort compare latencies;
  let steps =
    Array.fold_left (fun acc st -> acc + st.State.steps) 0 vm.Vm.states
  in
  ( vm,
    { offered = !offered;
      completed = !completed;
      rejected = !rejected;
      latency =
        { p50 = percentile latencies 50;
          p90 = percentile latencies 90;
          p99 = percentile latencies 99;
          pmax = (if Array.length latencies = 0 then 0
                  else latencies.(Array.length latencies - 1)) };
      per_session;
      run_cycles;
      sim_seconds = Cost_model.seconds cm run_cycles;
      steps;
      engine_events = vm.Vm.engine_events;
      parks = vm.Vm.parks;
      quiesced =
        (outcome = Vm.Deadlock && !offered = total
         && !completed + !rejected = total) } )

let pp_stats fmt ~cm (s : stats) =
  let ms c = float_of_int c /. float_of_int cm.Cost_model.cycles_per_second
             *. 1000. in
  Format.fprintf fmt
    "requests: offered %d, completed %d, rejected %d%s@\n\
     latency (ms): p50 %.2f  p90 %.2f  p99 %.2f  max %.2f@\n\
     virtual time: %.3f s (%d cycles); throughput %.1f requests/sim-s@\n\
     engine: %d events, %d parks, %d bytecodes@\n"
    s.offered s.completed s.rejected
    (if s.quiesced then "" else "  [DID NOT QUIESCE]")
    (ms s.latency.p50) (ms s.latency.p90) (ms s.latency.p99)
    (ms s.latency.pmax)
    s.sim_seconds s.run_cycles
    (if s.sim_seconds > 0. then float_of_int s.completed /. s.sim_seconds
     else 0.)
    s.engine_events s.parks s.steps
