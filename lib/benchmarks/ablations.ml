(* Ablations of the strategy choices the paper discusses:

   E6  free-context list: serialized vs replicated ("yielded a reduction
       in the worst-case overhead from 160% to 65%")
   E7  method cache: shared two-level-locked ("much too slow") vs
       replicated per processor
   E9  allocation: serialized eden (published MS) vs per-processor eden
       regions (the improvement the paper proposes in section 4)
   E11 scheduler reorganization: running Processes removed from the ready
       queue (BS semantics) vs kept in it (MS)

   Each ablation runs a send- and allocation-heavy benchmark in the
   MS + 4 busy state under both strategies, also reporting the
   busy-over-baseline overhead so the numbers line up with the paper's
   phrasing. *)

type result = {
  label : string;
  variant_a : string;
  seconds_a : float;
  overhead_a : float;       (* vs the baseline BS run of the same benchmark *)
  variant_b : string;
  seconds_b : float;
  overhead_b : float;
}

(* A context-hungry benchmark for the free-context ablation: deep call
   chains churn contexts, the paper's bottleneck. *)
let ablation_classes = {st|
CLASS CtxChurn SUPER Object
METHODS CtxChurn
call: n
    n = 0 ifTrue: [^0].
    ^1 + (self call: n - 1)
!
churn: reps
    | total |
    total := 0.
    1 to: reps do: [:i | total := total + (self call: 24)].
    ^total
!
|st}

let bench_of_key key reps =
  { (List.find (fun (b : Macro.benchmark) -> b.Macro.key = key)
       Macro.benchmarks)
    with Macro.reps = reps }

let context_bench reps =
  { Macro.key = "context churn";
    title = "context churn (deep call chains)";
    body = "CtxChurn new churn: 400";
    reps;
    paper = [| 0.; 0.; 0.; 0. |] }

let seconds ~state ~config_tweak (b : Macro.benchmark) =
  let vm = Macro.prepare_vm ~config_tweak state in
  Vm.load_classes vm ablation_classes;
  (Macro.run_on vm b).Macro.seconds

let run_ablation ~label ~bench ~name_a ~tweak_a ~name_b ~tweak_b =
  let baseline = seconds ~state:Macro.Baseline ~config_tweak:(fun c -> c) bench in
  let sa = seconds ~state:Macro.Ms_busy ~config_tweak:tweak_a bench in
  let sb = seconds ~state:Macro.Ms_busy ~config_tweak:tweak_b bench in
  { label;
    variant_a = name_a;
    seconds_a = sa;
    overhead_a = (sa /. baseline) -. 1.0;
    variant_b = name_b;
    seconds_b = sb;
    overhead_b = (sb /. baseline) -. 1.0 }

(* E6 *)
let free_contexts ?(reps = 14) () =
  run_ablation ~label:"free-context list (busy state, context churn)"
    ~bench:(context_bench reps)
    ~name_a:"serialized (one locked list)"
    ~tweak_a:(fun c -> { c with Config.free_contexts = Config.Ctx_shared_locked })
    ~name_b:"replicated per processor (MS)"
    ~tweak_b:(fun c -> { c with Config.free_contexts = Config.Ctx_replicated })

(* E6b: no free list at all — every context allocated fresh *)
let no_free_contexts ?(reps = 14) () =
  run_ablation ~label:"free-context list vs none"
    ~bench:(context_bench reps)
    ~name_a:"disabled (allocate every context)"
    ~tweak_a:(fun c -> { c with Config.free_contexts = Config.Ctx_disabled })
    ~name_b:"replicated per processor (MS)"
    ~tweak_b:(fun c -> { c with Config.free_contexts = Config.Ctx_replicated })

(* E7 *)
let method_cache ?(reps = 12) () =
  run_ablation ~label:"method cache (busy state, print class definition)"
    ~bench:(bench_of_key "definition" reps)
    ~name_a:"shared, two-level locked"
    ~tweak_a:(fun c -> { c with Config.method_cache = Config.Cache_shared_locked })
    ~name_b:"replicated per processor (MS)"
    ~tweak_b:(fun c -> { c with Config.method_cache = Config.Cache_replicated })

(* E9: an allocation-bound benchmark; the paper suspects "a significant
   amount of the overhead is due to contention in storage allocation". *)
let alloc_bench reps =
  { Macro.key = "allocation churn";
    title = "allocation churn";
    body = "AllocChurn new churn: 1500";
    reps;
    paper = [| 0.; 0.; 0.; 0. |] }

let alloc_classes = {st|
CLASS AllocChurn SUPER Object
METHODS AllocChurn
churn: n
    | p |
    1 to: n do: [:i |
        p := Point x: i y: i.
        (Array new: 12) at: 1 put: p].
    ^n
!
|st}

let replicated_eden ?(reps = 12) () =
  let bench = alloc_bench reps in
  let seconds ~state ~config_tweak =
    let vm = Macro.prepare_vm ~config_tweak state in
    Vm.load_classes vm alloc_classes;
    (Macro.run_on vm bench).Macro.seconds
  in
  let baseline = seconds ~state:Macro.Baseline ~config_tweak:(fun c -> c) in
  let serialized =
    seconds ~state:Macro.Ms_busy
      ~config_tweak:(fun c -> { c with Config.allocation = Config.Alloc_serialized })
  in
  let replicated =
    seconds ~state:Macro.Ms_busy
      ~config_tweak:(fun c -> { c with Config.allocation = Config.Alloc_replicated_eden })
  in
  let replicated_ks =
    (* the paper's full proposal: each processor gets its own s-sized
       allocation area, so the total new space is k*s *)
    seconds ~state:Macro.Ms_busy
      ~config_tweak:(fun c ->
        { c with
          Config.allocation = Config.Alloc_replicated_eden;
          Config.eden_words = 5 * c.Config.eden_words })
  in
  [ { label = "new-object space (busy state, allocation churn)";
      variant_a = "serialized allocation (published MS)";
      seconds_a = serialized;
      overhead_a = (serialized /. baseline) -. 1.0;
      variant_b = "replicated eden, total size s";
      seconds_b = replicated;
      overhead_b = (replicated /. baseline) -. 1.0 };
    { label = "";
      variant_a = "replicated eden, total size s";
      seconds_a = replicated;
      overhead_a = (replicated /. baseline) -. 1.0;
      variant_b = "replicated eden, k regions of size s (k*s total)";
      seconds_b = replicated_ks;
      overhead_b = (replicated_ks /. baseline) -. 1.0 } ]

(* E11 *)
let scheduler_reorganization ?(reps = 12) () =
  run_ablation ~label:"ready-queue semantics (busy state, print class definition)"
    ~bench:(bench_of_key "definition" reps)
    ~name_a:"remove running Processes (BS semantics)"
    ~tweak_a:(fun c -> { c with Config.keep_running_in_queue = false })
    ~name_b:"keep running Processes in the queue (MS)"
    ~tweak_b:(fun c -> { c with Config.keep_running_in_queue = true })

(* E16: the ready-queue representation under load.  A fork/join burst of
   many short workers hammers the scheduler: with the single locked
   queue every pick serializes on one lock, so adding processors mostly
   adds spin; per-processor deques partition the idle polling and let
   hungry processors steal, so the same burst scales. *)

type steal_row = {
  vps : int;
  locked_seconds : float;
  locked_sched_spin : int;  (** spin cycles on the global scheduler lock *)
  stealing_seconds : float;
  deque_spin : int;  (** spin cycles across every deque lock *)
  steals : int;
  migrations : int;
}

let steal_classes = {st|
CLASS StealWork SUPER Object
METHODS StealWork
spawn: k into: results done: sem
    [ | s |
      s := 0.
      1 to: 400 do: [:i | s := s + i].
      results at: k put: s.
      sem signal ] fork
!
|st}

let steal_source workers =
  Printf.sprintf
    "| results sem kit count | results := Array new: %d. sem := Semaphore \
     new. kit := StealWork new. 1 to: %d do: [:k | kit spawn: k into: \
     results done: sem]. 1 to: %d do: [:k | sem wait]. count := 0. results \
     do: [:r | r notNil ifTrue: [count := count + 1]]. count"
    workers workers workers

let steal_burst ~processors ~workers ~scheduler =
  let config =
    let c = Config.ms ~processors () in
    (* the paper's k*s proposal: keep each processor's eden slice at a
       workable size as the sweep scales past the Firefly's five *)
    { c with
      Config.scheduler;
      Config.eden_words = c.Config.eden_words * max 1 (processors / 5) }
  in
  let vm = Vm.create config in
  Vm.load_classes vm steal_classes;
  let t0 = Vm.seconds vm in
  let got = Vm.eval_to_string vm (steal_source workers) in
  if got <> string_of_int workers then
    failwith
      (Printf.sprintf "steal burst lost workers: %s of %d finished" got
         workers);
  (Vm.seconds vm -. t0, vm)

let work_stealing_sweep ?(workers = 64) ?(vps = [ 5; 8; 16; 32; 64 ]) () =
  List.map
    (fun processors ->
      let locked_seconds, locked_vm =
        steal_burst ~processors ~workers ~scheduler:Config.Sched_locked
      in
      let stealing_seconds, stealing_vm =
        steal_burst ~processors ~workers ~scheduler:Config.Sched_stealing
      in
      let sched vm = vm.Vm.shared.State.sched in
      let deque_spin =
        Array.fold_left
          (fun n l -> n + Spinlock.spin_cycles l)
          0 (sched stealing_vm).Scheduler.deque_locks
      in
      { vps = processors;
        locked_seconds;
        locked_sched_spin =
          Spinlock.spin_cycles (sched locked_vm).Scheduler.lock;
        stealing_seconds;
        deque_spin;
        steals = Scheduler.steals (sched stealing_vm);
        migrations = Scheduler.migrations (sched stealing_vm) })
    vps

let print_steal_rows fmt ~workers rows =
  Format.fprintf fmt
    "%d forked workers, locked queue vs work-stealing deques:@." workers;
  Format.fprintf fmt
    "  %4s  %10s %12s  %10s %12s  %7s %7s  %7s@." "vps" "locked s"
    "sched spin" "steal s" "deque spin" "steals" "migr" "speedup";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "  %4d  %10.3f %12d  %10.3f %12d  %7d %7d  %6.2fx@." r.vps
        r.locked_seconds r.locked_sched_spin r.stealing_seconds r.deque_spin
        r.steals r.migrations
        (r.locked_seconds /. r.stealing_seconds))
    rows

let print_result fmt r =
  Format.fprintf fmt "%s@." r.label;
  Format.fprintf fmt "  %-42s %7.2f s  (overhead %+.0f%%)@." r.variant_a
    r.seconds_a (100.0 *. r.overhead_a);
  Format.fprintf fmt "  %-42s %7.2f s  (overhead %+.0f%%)@." r.variant_b
    r.seconds_b (100.0 *. r.overhead_b);
  Format.fprintf fmt "@."
