(* Image snapshot/restore (E19).

   A checkpoint is the object memory's used prefixes — old space, eden
   (and its per-processor slices), both survivor semispaces — plus the
   entry table, the old-space free lists and the allocation counters,
   together with a set of caller-labeled "register" arrays for the
   host-side scalars the heap does not own (processor clocks, poll
   deadlines, whatever the capturing layer needs to resurrect).  The
   capturing layer is the E19 replica manager; this module stays below
   the interpreter on purpose, so the image library needs no knowledge
   of schedulers or calendars.

   Restore does not rebuild a VM from nothing: it overwrites the memory
   of an *identically-bootstrapped* skeleton.  The simulation is
   deterministic, so the skeleton's bootstrap places every kernel object
   at the same address the checkpointed image had, and the host-side
   tables that map names to addresses (globals, symbols) remain valid
   for the restored content.  Host-side caches that point into the old
   memory (method caches, free-context lists, decoded contexts) are the
   caller's to flush, exactly as after an injected processor crash.

   The durable format is one self-describing header line

     MST-SNAP v1 fp=<census fingerprint> entries=<log entries> \
       len=<payload bytes> sum=<payload checksum>

   followed by a marshalled payload.  The header carries enough to pick
   the newest usable checkpoint without unmarshalling; the length and
   FNV-1a checksum make truncation and bit-rot detectable before
   [Marshal] ever runs; and the payload repeats the fingerprint/entry
   pair so a swapped payload cannot hide behind a valid header.  Every
   rejection raises the structured {!Corrupt} — a checkpoint that cannot
   be proven whole is never restored (the caller falls back to the
   previous one). *)

exception Corrupt of { path : string; what : string }

let corrupt path fmt =
  Printf.ksprintf (fun what -> raise (Corrupt { path; what })) fmt

(* A restore target that cannot receive this image: different geometry
   or policy — a configuration bug, not a damaged file. *)
exception Mismatch of string

let mismatch fmt = Printf.ksprintf (fun m -> raise (Mismatch m)) fmt

let () =
  Printexc.register_printer (function
    | Corrupt { path; what } ->
        Some (Printf.sprintf "corrupt checkpoint %s: %s" path what)
    | Mismatch m -> Some (Printf.sprintf "checkpoint mismatch: %s" m)
    | _ -> None)

type region_image = {
  r_base : int;
  r_limit : int;
  r_ptr : int;
  r_words : int array;  (* the used prefix [r_base, r_ptr) *)
}

type heap_image = {
  i_old : region_image;
  i_eden : region_image;
  i_eden_regions : region_image array;
  i_surv_a : region_image;
  i_surv_b : region_image;
  i_past_is_a : bool;
  i_rset : int array;
  i_free_lists : int list array;
  i_free_words : int;
  (* counters restored for stats continuity; none steer behaviour *)
  i_allocations : int;
  i_words_allocated : int;
  i_scavenge_count : int;
  i_words_copied_total : int;
  i_tenured_words_total : int;
  i_free_list_hits : int;
  i_free_reused_words : int;
}

type registers = (string * int array) list

type t = {
  fingerprint : int;  (* Verify census fingerprint at capture *)
  entries : int;      (* log entries applied at capture *)
  heap : heap_image;
  registers : registers;
}

let region_of (h : Heap.t) (r : Heap.region) =
  { r_base = r.Heap.base;
    r_limit = r.Heap.limit;
    r_ptr = r.Heap.ptr;
    r_words = Array.sub h.Heap.mem r.Heap.base (r.Heap.ptr - r.Heap.base) }

let capture (h : Heap.t) ~fingerprint ~entries ~registers =
  { fingerprint;
    entries;
    heap =
      { i_old = region_of h h.Heap.old;
        i_eden = region_of h h.Heap.eden;
        i_eden_regions = Array.map (region_of h) h.Heap.eden_regions;
        i_surv_a = region_of h h.Heap.surv_a;
        i_surv_b = region_of h h.Heap.surv_b;
        i_past_is_a = h.Heap.past_is_a;
        i_rset = Array.sub h.Heap.rset 0 h.Heap.rset_len;
        i_free_lists = Array.copy h.Heap.free_lists;
        i_free_words = h.Heap.free_words;
        i_allocations = h.Heap.allocations;
        i_words_allocated = h.Heap.words_allocated;
        i_scavenge_count = h.Heap.scavenge_count;
        i_words_copied_total = h.Heap.words_copied_total;
        i_tenured_words_total = h.Heap.tenured_words_total;
        i_free_list_hits = h.Heap.free_list_hits;
        i_free_reused_words = h.Heap.free_reused_words };
    registers }

let restore_region what (h : Heap.t) (r : Heap.region) img =
  if r.Heap.base <> img.r_base || r.Heap.limit <> img.r_limit then
    mismatch "%s geometry differs: image [%d,%d), target [%d,%d)" what
      img.r_base img.r_limit r.Heap.base r.Heap.limit;
  Array.blit img.r_words 0 h.Heap.mem img.r_base (Array.length img.r_words);
  (* the free tail need not be zeroed: walkers stop at the bump pointer *)
  r.Heap.ptr <- img.r_ptr

let restore t (h : Heap.t) =
  let i = t.heap in
  if Array.length i.i_eden_regions <> Array.length h.Heap.eden_regions then
    mismatch "eden slice count differs: image %d, target %d"
      (Array.length i.i_eden_regions)
      (Array.length h.Heap.eden_regions);
  restore_region "old space" h h.Heap.old i.i_old;
  restore_region "eden" h h.Heap.eden i.i_eden;
  Array.iteri
    (fun k img -> restore_region "eden slice" h h.Heap.eden_regions.(k) img)
    i.i_eden_regions;
  restore_region "survivor a" h h.Heap.surv_a i.i_surv_a;
  restore_region "survivor b" h h.Heap.surv_b i.i_surv_b;
  h.Heap.past_is_a <- i.i_past_is_a;
  if Array.length i.i_rset > Array.length h.Heap.rset then
    h.Heap.rset <- Array.copy i.i_rset
  else Array.blit i.i_rset 0 h.Heap.rset 0 (Array.length i.i_rset);
  h.Heap.rset_len <- Array.length i.i_rset;
  if Array.length i.i_free_lists <> Array.length h.Heap.free_lists then
    mismatch "free-list bucket count differs";
  Array.blit i.i_free_lists 0 h.Heap.free_lists 0
    (Array.length i.i_free_lists);
  h.Heap.free_words <- i.i_free_words;
  h.Heap.allocations <- i.i_allocations;
  h.Heap.words_allocated <- i.i_words_allocated;
  h.Heap.scavenge_count <- i.i_scavenge_count;
  h.Heap.words_copied_total <- i.i_words_copied_total;
  h.Heap.tenured_words_total <- i.i_tenured_words_total;
  h.Heap.free_list_hits <- i.i_free_list_hits;
  h.Heap.free_reused_words <- i.i_free_reused_words;
  t.registers

(* --- the durable format --- *)

let fnv_string s =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c -> h := ((!h lxor Char.code c) * 0x01000193) land max_int)
    s;
  !h

let magic = "MST-SNAP v1"

let save path t =
  let payload = Marshal.to_string (t.heap, t.registers) [] in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Printf.sprintf "%s fp=%d entries=%d len=%d sum=%d\n" magic
           t.fingerprint t.entries (String.length payload)
           (fnv_string payload));
      output_string oc payload)

(* Header fields without unmarshalling: enough to rank checkpoints by
   applied-entry count and to cross-check a restored image. *)
type header = { h_fingerprint : int; h_entries : int }

let parse_header path line =
  let fields = String.split_on_char ' ' (String.trim line) in
  let value key s =
    let prefix = key ^ "=" in
    if String.length s > String.length prefix
       && String.sub s 0 (String.length prefix) = prefix
    then
      int_of_string_opt
        (String.sub s (String.length prefix)
           (String.length s - String.length prefix))
    else None
  in
  let find key =
    match List.find_map (value key) fields with
    | Some v -> v
    | None -> corrupt path "header field %S missing or malformed" key
  in
  match fields with
  | m1 :: m2 :: _ when m1 ^ " " ^ m2 = magic ->
      (find "fp", find "entries", find "len", find "sum")
  | _ ->
      corrupt path "missing or unsupported header %S (want %S ...)"
        (String.trim line) magic

let read_header path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> corrupt path "cannot open: %s" msg
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line =
        try input_line ic
        with End_of_file -> corrupt path "empty file (missing header)"
      in
      let fp, entries, _, _ = parse_header path line in
      { h_fingerprint = fp; h_entries = entries })

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> corrupt path "cannot open: %s" msg
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line =
        try input_line ic
        with End_of_file -> corrupt path "empty file (missing header)"
      in
      let fp, entries, len, sum = parse_header path line in
      let payload = Bytes.create len in
      (try really_input ic payload 0 len
       with End_of_file ->
         corrupt path "truncated payload (want %d bytes)" len);
      let payload = Bytes.unsafe_to_string payload in
      if fnv_string payload <> sum then
        corrupt path "payload checksum mismatch (damaged file)";
      let heap, registers =
        try (Marshal.from_string payload 0 : heap_image * registers)
        with Failure msg -> corrupt path "unreadable payload: %s" msg
      in
      { fingerprint = fp; entries; heap; registers })
