(** Image snapshot/restore (E19).

    A checkpoint captures the object memory's used prefixes (old space,
    eden and its slices, both survivor semispaces), the entry table, the
    old-space free lists and the allocation counters, plus caller-labeled
    "register" arrays for host-side scalars the heap does not own.
    Restore overwrites the memory of an {e identically-bootstrapped}
    skeleton VM — the deterministic bootstrap puts every kernel object at
    the same address, so host-side name tables remain valid; host-side
    caches pointing into the old memory (method caches, free-context
    lists, decoded contexts) are the caller's to flush, exactly as after
    an injected processor crash.

    The durable format is a self-describing header line
    ["MST-SNAP v1 fp=... entries=... len=... sum=..."] followed by a
    checksummed marshalled payload.  Truncation, bit-rot, version skew
    and header/payload disagreement all raise the structured {!Corrupt}
    before any state is touched. *)

(** A checkpoint file that cannot be used: empty, truncated, wrong
    version, damaged or unparseable.  The CLI reports it and exits 2;
    the replica manager falls back to the previous checkpoint. *)
exception Corrupt of { path : string; what : string }

(** A restore target that cannot receive the image: different heap
    geometry or slice count — a configuration bug, not a damaged file. *)
exception Mismatch of string

type heap_image

type registers = (string * int array) list

type t = {
  fingerprint : int;  (** census fingerprint at capture *)
  entries : int;  (** log entries applied at capture *)
  heap : heap_image;
  registers : registers;
}

val capture :
  Heap.t -> fingerprint:int -> entries:int -> registers:registers -> t

(** Overwrite the target heap with the image and return the registers.
    @raise Mismatch when the geometry differs. *)
val restore : t -> Heap.t -> registers

val save : string -> t -> unit

(** Header fields without unmarshalling the payload: enough to rank
    checkpoints by applied-entry count. *)
type header = { h_fingerprint : int; h_entries : int }

val read_header : string -> header

val load : string -> t
