(* Kernel classes, part 4: classes-as-objects, compiled methods, the
   Mirror (reflection and compiler services), the programming-environment
   tools the macro benchmarks exercise, and the I/O service objects. *)

let source = {st|
CLASS Class SUPER Object IVARS name superclass methodDict classMethodDict instSize format ivarNames category CATEGORY Kernel-Classes
CLASS CompiledMethod SUPER Object IVARS info selector bytecodes source definingClass FORMAT variable CATEGORY Kernel-Methods
CLASS MethodDictionary SUPER Object IVARS selectorArray methodArray tally CATEGORY Kernel-Methods
CLASS Mirror SUPER Object CATEGORY Kernel-System
CLASS TranscriptStream SUPER Object CATEGORY Kernel-IO
CLASS DisplayScreen SUPER Object CATEGORY Kernel-IO
CLASS Inspector SUPER Object IVARS subject labels fields CATEGORY Tools
CLASS Point SUPER Object IVARS x y CATEGORY Kernel-Graphics

METHODS Class
name
    ^name
!
superclass
    ^superclass
!
instSize
    ^instSize
!
format
    ^format
!
ivarNames
    ^ivarNames
!
category
    ^category
!
isClass
    ^true
!
printString
    ^name asString
!
selectors
    ^Mirror selectorsOf: self classSide: false
!
classSelectors
    ^Mirror selectorsOf: self classSide: true
!
methodAt: aSelector
    ^Mirror methodAt: aSelector in: self classSide: false
!
includesSelector: aSelector
    ^(self methodAt: aSelector) notNil
!
compile: aString
    ^Mirror compile: aString into: self classSide: false
!
compileClassSide: aString
    ^Mirror compile: aString into: self classSide: true
!
inheritsFrom: aClass
    | cls |
    cls := superclass.
    [cls isNil] whileFalse: [
        cls == aClass ifTrue: [^true].
        cls := cls superclass].
    ^false
!
subclasses
    ^Mirror allClasses select: [:each | each superclass == self]
!
allSubclasses
    | result todo cls |
    result := OrderedCollection new.
    todo := OrderedCollection new.
    todo addAll: self subclasses.
    [todo isEmpty] whileFalse: [
        cls := todo removeFirst.
        result add: cls.
        todo addAll: cls subclasses].
    ^result
!
withAllSubclasses
    | result |
    result := OrderedCollection new.
    result add: self.
    result addAll: self allSubclasses.
    ^result
!
allSuperclasses
    | result cls |
    result := OrderedCollection new.
    cls := superclass.
    [cls isNil] whileFalse: [
        result add: cls.
        cls := cls superclass].
    ^result
!
definitionString
    | ws |
    ws := WriteStream on: (String new: 32).
    superclass isNil
        ifTrue: [ws nextPutAll: 'nil']
        ifFalse: [ws nextPutAll: superclass name asString].
    ws nextPutAll: ' subclass: #'.
    ws nextPutAll: name asString.
    ws nextPutAll: ' instanceVariableNames: '''.
    ivarNames do: [:each | ws nextPutAll: each asString. ws space].
    ws nextPutAll: ''' category: '''.
    ws nextPutAll: category.
    ws nextPutAll: ''''.
    ^ws contents
!
printHierarchyOn: ws indent: depth
    1 to: depth do: [:i | ws space. ws space].
    ws nextPutAll: name asString.
    ws cr.
    self subclasses do: [:each | each printHierarchyOn: ws indent: depth + 1]
!
hierarchyString
    | ws |
    ws := WriteStream on: (String new: 64).
    self printHierarchyOn: ws indent: 0.
    ^ws contents
!

METHODS CompiledMethod
selector
    ^selector
!
source
    ^source
!
definingClass
    ^definingClass
!
literals
    ^Mirror literalsOf: self
!
decompile
    ^Mirror decompile: self
!
sendsSelector: aSelector
    ^self literals includes: aSelector
!
printString
    definingClass isNil ifTrue: [^'aCompiledMethod'].
    ^definingClass printString , '>>' , selector asString
!

CLASSMETHODS Mirror
allClasses
    <primitive: 112>
    self error: 'allClasses failed'
!
selectorsOf: aClass classSide: aBoolean
    <primitive: 113>
    self error: 'selectorsOf: failed'
!
methodAt: aSelector in: aClass classSide: aBoolean
    <primitive: 114>
    self error: 'methodAt: failed'
!
literalsOf: aMethod
    <primitive: 115>
    self error: 'literalsOf: failed'
!
sourceOf: aMethod
    <primitive: 116>
    self error: 'sourceOf: failed'
!
selectorOfMethod: aMethod
    <primitive: 117>
    self error: 'selectorOfMethod: failed'
!
compile: aString into: aClass classSide: aBoolean
    <primitive: 110>
    self error: 'compilation failed'
!
decompile: aMethod
    <primitive: 111>
    self error: 'decompilation failed'
!
scavenge
    <primitive: 121>
    self error: 'scavenge failed'
!
setInputSemaphore: aSemaphore
    <primitive: 104>
    self error: 'setInputSemaphore: needs a Semaphore'
!
millisecondClockValue
    <primitive: 100>
    self error: 'millisecondClockValue failed'
!
signal: aSemaphore afterMilliseconds: msDuration
    "the V kernel's timer service: signal the semaphore once the
     (relative) duration has elapsed.  The primitive adds the current
     clock at full cycle resolution itself; computing an absolute
     deadline from millisecondClockValue here would truncate it."
    <primitive: 105>
    self error: 'signal:afterMilliseconds: failed'
!
nextRequest
    <primitive: 106>
    self error: 'nextRequest: no image server running'
!
requestDone: requestId
    <primitive: 107>
    self error: 'requestDone: no image server running'
!
gcStats
    <primitive: 122>
    self error: 'gcStats failed'
!
implementorsOf: aSelector
    | result |
    result := OrderedCollection new.
    Mirror allClasses do: [:cls |
        ((Mirror selectorsOf: cls classSide: false) includes: aSelector)
            ifTrue: [result add: cls]].
    ^result
!
sendersOf: aSelector
    | result m |
    result := OrderedCollection new.
    Mirror allClasses do: [:cls |
        (Mirror selectorsOf: cls classSide: false) do: [:sel |
            m := Mirror methodAt: sel in: cls classSide: false.
            ((Mirror literalsOf: m) includes: aSelector)
                ifTrue: [result add: cls -> sel]]].
    ^result
!

METHODS TranscriptStream
show: aString
    <primitive: 103>
    self error: 'show: needs a String'
!
display: anObject
    ^self show: anObject displayString
!
print: anObject
    ^self show: anObject printString
!
cr
    ^self show: (String with: Character cr)
!
tab
    ^self show: (String with: Character tab)
!

METHODS DisplayScreen
drawCommand: anObject
    <primitive: 101>
    self error: 'drawCommand: failed'
!
white
    ^self drawCommand: 0
!
black
    ^self drawCommand: 1
!

METHODS Inspector
inspect: anObject
    | cls |
    subject := anObject.
    cls := anObject class.
    labels := OrderedCollection new.
    fields := OrderedCollection new.
    labels add: 'self'.
    fields add: anObject printString.
    1 to: cls instSize do: [:i |
        labels add: (cls ivarNames at: i) asString.
        fields add: (anObject instVarAt: i) printString].
    1 to: (anObject basicSize min: 20) do: [:i |
        labels add: i printString.
        fields add: (anObject at: i) printString].
    Display drawCommand: labels size
!
subject
    ^subject
!
labels
    ^labels
!
fields
    ^fields
!
fieldCount
    ^fields size
!

CLASSMETHODS Inspector
on: anObject
    | inspector |
    inspector := self new.
    inspector inspect: anObject.
    ^inspector
!

METHODS Point
x
    ^x
!
y
    ^y
!
setX: ax y: ay
    x := ax.
    y := ay
!
+ aPoint
    ^Point x: x + aPoint x y: y + aPoint y
!
- aPoint
    ^Point x: x - aPoint x y: y - aPoint y
!
= aPoint
    (aPoint isMemberOf: Point) ifFalse: [^false].
    ^x = aPoint x and: [y = aPoint y]
!
hash
    ^x hash * 31 + y hash
!
printString
    ^x printString , '@' , y printString
!

CLASSMETHODS Point
x: ax y: ay
    | p |
    p := self new.
    p setX: ax y: ay.
    ^p
!
|st}
