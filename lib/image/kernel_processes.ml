(* Kernel classes, part 3: Processes, Semaphores, contexts and the
   ProcessorScheduler — including MS's reorganized protocol (thisProcess
   and canRun: in place of activeProcess; see paper section 3.3). *)

let source = {st|
CLASS LinkedList SUPER Object IVARS firstLink lastLink CATEGORY Kernel-Processes
CLASS Semaphore SUPER LinkedList IVARS excessSignals CATEGORY Kernel-Processes
CLASS Process SUPER Link IVARS suspendedContext priority myList runningOn name state CATEGORY Kernel-Processes
CLASS ProcessorScheduler SUPER Object IVARS readyLists activeProcess CATEGORY Kernel-Processes
CLASS Delay SUPER Object IVARS duration CATEGORY Kernel-Processes
CLASS SharedQueue SUPER Object IVARS contents accessProtect readSynch CATEGORY Kernel-Processes
CLASS MethodContext SUPER Object IVARS sender pc stackp method receiver home startpc argstart nargs FORMAT variable CATEGORY Kernel-Methods
CLASS BlockContext SUPER MethodContext FORMAT variable CATEGORY Kernel-Methods

METHODS LinkedList
isEmpty
    ^firstLink isNil
!
first
    ^firstLink
!
do: aBlock
    | link |
    link := firstLink.
    [link isNil] whileFalse: [
        aBlock value: link.
        link := link nextLink]
!
size
    | n link |
    n := 0.
    link := firstLink.
    [link isNil] whileFalse: [n := n + 1. link := link nextLink].
    ^n
!

METHODS Semaphore
initSemaphore
    excessSignals := 0
!
excessSignals
    ^excessSignals
!
signal
    <primitive: 85>
    self error: 'signal failed'
!
wait
    <primitive: 86>
    self error: 'wait failed'
!
critical: aBlock
    | result |
    self wait.
    result := aBlock value.
    self signal.
    ^result
!

CLASSMETHODS Semaphore
new
    ^self basicNew initSemaphore
!
forMutualExclusion
    ^self new signal
!

METHODS Process
priority
    ^priority
!
priority: anInteger
    <primitive: 90>
    self error: 'priority: failed'
!
resume
    <primitive: 87>
    self error: 'cannot resume a terminated process'
!
suspend
    <primitive: 88>
    self error: 'suspend failed'
!
terminate
    <primitive: 92>
    self error: 'terminate failed'
!
name
    ^name
!
name: aString
    name := aString
!
isTerminated
    ^state = 1
!
suspendedContext
    ^suspendedContext
!
printString
    name isNil ifTrue: [^'a Process'].
    ^'a Process(' , name , ')'
!

METHODS ProcessorScheduler
yield
    <primitive: 91>
    self error: 'yield failed'
!
thisProcess
    <primitive: 93>
    self error: 'thisProcess failed'
!
canRun: aProcess
    <primitive: 94>
    ^false
!
activeProcess
    ^self thisProcess
!
readyLists
    ^readyLists
!
highestPriority
    ^8
!
timingPriority
    ^7
!
userInterruptPriority
    ^6
!
userSchedulingPriority
    ^5
!
userBackgroundPriority
    ^3
!
systemBackgroundPriority
    ^2
!

METHODS SharedQueue
initQueue
    contents := OrderedCollection new.
    accessProtect := Semaphore forMutualExclusion.
    readSynch := Semaphore new
!
nextPut: anObject
    accessProtect critical: [contents addLast: anObject].
    readSynch signal.
    ^anObject
!
next
    "blocks until an element is available"
    | v |
    readSynch wait.
    accessProtect critical: [v := contents removeFirst].
    ^v
!
peek
    ^accessProtect critical: [contents isEmpty ifTrue: [nil] ifFalse: [contents first]]
!
size
    ^accessProtect critical: [contents size]
!
isEmpty
    ^self size = 0
!

CLASSMETHODS SharedQueue
new
    ^self basicNew initQueue
!

METHODS Delay
setDuration: milliseconds
    duration := milliseconds
!
duration
    ^duration
!
wait
    "block the active Process until the duration has elapsed (virtual
     time); the V kernel's timer signals the semaphore.  The duration is
     handed to the kernel as-is: the timer primitive adds the current
     clock itself, so the full duration is waited even when the clock is
     mid-millisecond"
    | sem |
    sem := Semaphore new.
    Mirror signal: sem afterMilliseconds: duration.
    sem wait
!

CLASSMETHODS Delay
forMilliseconds: milliseconds
    | d |
    d := self new.
    d setDuration: milliseconds.
    ^d
!
forSeconds: seconds
    ^self forMilliseconds: seconds * 1000
!

METHODS MethodContext
sender
    ^sender
!
pc
    ^pc
!
stackp
    ^stackp
!
method
    ^method
!
receiver
    ^receiver
!
home
    ^home
!

METHODS BlockContext
value
    <primitive: 80>
    self error: 'block argument count mismatch'
!
value: a
    <primitive: 80>
    self error: 'block argument count mismatch'
!
value: a value: b
    <primitive: 80>
    self error: 'block argument count mismatch'
!
value: a value: b value: c
    <primitive: 80>
    self error: 'block argument count mismatch'
!
numArgs
    ^nargs
!
newProcess
    <primitive: 89>
    self error: 'newProcess failed'
!
fork
    ^self newProcess resume
!
forkAt: aPriority
    | process |
    process := self newProcess.
    process priority: aPriority.
    process resume.
    ^process
!
forkNamed: aString
    | process |
    process := self newProcess.
    process name: aString.
    process resume.
    ^process
!
whileTrue: aBlock
    ^[self value] whileTrue: [aBlock value]
!
whileFalse: aBlock
    ^[self value] whileFalse: [aBlock value]
!
whileTrue
    ^[self value] whileTrue
!
whileFalse
    ^[self value] whileFalse
!
repeat
    [true] whileTrue: [self value]
!
|st}
