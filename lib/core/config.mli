(** Configuration of the multiprocessor adaptation strategies.

    Each shared resource the paper identifies carries its strategy here,
    so a VM can be assembled as baseline Berkeley Smalltalk, as the
    published Multiprocessor Smalltalk (Table 3's strategy assignment), or
    as any of the ablation variants the paper discusses. *)

type cache_strategy =
  | Cache_replicated  (** one method cache per processor (published MS) *)
  | Cache_shared_locked
      (** one cache behind a two-level lock — the configuration the paper
          found "much too slow" *)

type context_strategy =
  | Ctx_replicated  (** per-processor free-context lists (published MS) *)
  | Ctx_shared_locked  (** one locked list — the paper's 160 % bottleneck *)
  | Ctx_disabled  (** no recycling: every context allocated fresh *)

type alloc_strategy =
  | Alloc_serialized  (** eden bump pointer under one lock (published MS) *)
  | Alloc_replicated_eden
      (** per-processor eden regions — the improvement the paper proposes
          in section 4 *)

type scheduler_strategy =
  | Sched_locked  (** one ready queue behind the scheduler lock (MS) *)
  | Sched_stealing
      (** per-processor ready deques with work stealing (E16) *)

type engine_strategy =
  | Engine_scan
      (** rescan every VP per engine event, re-step idle processors every
          few quanta — the original engine, kept as the
          differential-oracle reference *)
  | Engine_calendar
      (** event calendar (E17): runnable VPs in a pending-heap keyed by
          clock, idle VPs parked until a wakeup event (ready work, input,
          timer), batched uncontended bytecodes per engine event *)

type t = {
  processors : int;
  locks_enabled : bool;  (** [false]: baseline BS, no synchronization *)
  method_cache : cache_strategy;
  free_contexts : context_strategy;
  allocation : alloc_strategy;
  scheduler : scheduler_strategy;
      (** E16: the serialized ready queue, or per-processor deques with
          work stealing *)
  engine : engine_strategy;
      (** E17: the scan-everything loop, or the event-calendar engine *)
  keep_running_in_queue : bool;
      (** the MS reorganization: running Processes stay in the ready
          queue; [false] restores BS semantics *)
  old_words : int;
  eden_words : int;  (** the paper's [s]: 80 KB by default *)
  survivor_words : int;
  tenure_age : int;  (** scavenges survived before promotion *)
  scavenge_workers : int;
      (** processors applied to the scavenge (1 = published MS; more is
          the paper's section-3.1 suggestion) *)
  cost : Cost_model.t;
  sanitize : Sanitizer.mode;
      (** serialization checking: [Off] for production runs, [Report]
          accumulates into the instrumentation report, [Strict] raises on
          the first violation *)
  trace_capacity : int;  (** event-trace ring size *)
  debug_skip_ctx_lock : bool;
      (** fault injection for the schedule explorer's self-check: shared
          free-context take/give skip their lock bracket, so the
          sanitizer sees unguarded mutations.  Never set in a legitimate
          configuration. *)
  debug_unlocked_steal : bool;
      (** the same self-check idea for E16: deque operations skip their
          lock brackets, so the sanitizer sees unguarded steal-path
          mutations.  Never set in a legitimate configuration. *)
  watchdog_quanta : int;
      (** spin watchdog, in Delay quanta: a contended acquire that would
          wait longer raises {!Fault.Deadlock_suspected} instead of
          spinning forever; 0 (the default) disables it and keeps the
          lock timelines bit-identical to the seed *)
  backoff_quanta : int;
      (** fixed-interval retries before the spin interval starts
          doubling (exponential backoff); 0 keeps the fixed spin *)
  major_enabled : bool;
      (** E18: run the incremental old-space mark-sweep collector in
          bounded slices at step boundaries; [Image_full] becomes a last
          resort after a forced cycle completion *)
  major_budget : int;
      (** target cycles of collector work per slice *)
  debug_skip_major_barrier : bool;
      (** self-check for the schedule explorer: replace the write
          barrier with a probe that reports (instead of shading) every
          old-pointer store made while marking is in flight.  Never set
          in a legitimate configuration. *)
}

val default_eden_words : int

(** Baseline Berkeley Smalltalk: one interpreter, no multiprocessor
    support at all. *)
val baseline_bs : ?cost:Cost_model.t -> unit -> t

(** Multiprocessor Smalltalk as published: serialization for allocation,
    GC, entry tables, scheduling and I/O; replication for interpreters,
    method caches and free contexts; the scheduler reorganization. *)
val ms : ?processors:int -> ?cost:Cost_model.t -> unit -> t

(** A small-heap, uniform-cost configuration for unit tests;
    single-processor gives baseline BS semantics, more gives MS. *)
val testing : ?processors:int -> unit -> t
