(** Instrumentation (the paper's section 6: "we plan to add sufficient
    instrumentation to MS to gather data about ... contention for
    resources").

    Gathers the counters every shared resource already keeps into one
    report: lock acquisitions/contention/spin time, per-interpreter
    execution statistics, cache and free-list effectiveness, storage and
    scavenging totals, and device queues. *)

type lock_row = {
  lock_name : string;
  enabled : bool;
  acquisitions : int;
  contended : int;
  spin_cycles : int;
}

type interp_row = {
  processor : int;
  steps : int;
  sends : int;
  cache_hits : int;
  cache_misses : int;
  ctx_reuses : int;
  ctx_fresh : int;
  switches : int;
  gc_wait : int;
}

(** One parallel-scavenge worker's accumulated totals, summed over every
    collection the simulated parallel scavenger ran. *)
type scavenge_worker_row = {
  worker : int;
  copied_objects : int;
  copied_words : int;
  busy_cycles : int;
  idle_cycles : int;  (** gap to the slowest worker, per collection *)
}

(** Work-stealing traffic (E16) — all zero under the locked scheduler. *)
type steal_stats = {
  stealing : bool;  (** the stealing scheduler was configured *)
  local_picks : int;  (** picks satisfied from the own deque *)
  steals : int;  (** picks satisfied from a victim deque *)
  failed_steals : int;
  migrations : int;  (** stolen processes re-homed (MS mode) *)
  stolen_from : int list;  (** per victim processor *)
}

(** Incremental old-space collection totals (E18); present in the report
    only when [Config.major_enabled]. *)
type major_stats = {
  major_cycles : int;  (** complete mark-sweep cycles *)
  major_slices : int;
  major_slice_cycles : int;  (** collector work, summed *)
  major_max_slice : int;
  major_budget : int;
  major_overruns : int;  (** slices that ran past the budget *)
  major_reclaimed_objects : int;
  major_reclaimed_words : int;
  major_forced_completions : int;
  major_forced_allocs : int;
      (** old-space allocations that survived only because exhaustion
          forced a cycle to completion *)
  major_barrier_greys : int;
  major_alloc_marks : int;
  major_free_list_hits : int;
  major_free_reused_words : int;
  major_near_exhaustion : bool;
      (** old space is over 90% occupied at report time — the structured
          warning [print] surfaces *)
}

type report = {
  locks : lock_row list;
  interps : interp_row list;
  scavenges : int;
  scavenge_cycles : int;
  par_scavenges : int;  (** collections run with [scavenge_workers > 1] *)
  par_rounds : int;
  par_coord_cycles : int;
  scavenge_workers : scavenge_worker_row list;
      (** workers that did something; empty when all scavenges were serial *)
  words_allocated : int;
  words_copied : int;
  words_tenured : int;
  remembered : int;
  display_commands : int;
  display_wait : int;
  input_polls : int;
  total_cycles : int;
  major : major_stats option;
  steal : steal_stats;
  sanitizer_mode : Sanitizer.mode;
  violation_count : int;
  violations : string list;  (** accumulated messages, oldest first *)
  crashes_delivered : int;
      (** fault recovery, all zero outside fault campaigns; the lock
          table's [spin_cycles] stays genuine contention only *)
  failovers : int;
  ctx_abandons : int;
  degraded_scavenges : int;
  vp_fault_cycles : int;  (** injected transient-stall time, summed *)
  lock_fault_spin : int;  (** waiter spin caused by holder faults *)
  lock_backoff : int;  (** extra delay from exponential backoff *)
  lock_fault_stall : int;  (** injected holder-stall time *)
  device_fault_stall : int;  (** injected device-timeout time *)
}

val gather : Vm.t -> report

val print : Format.formatter -> report -> unit
