(* Assembling and driving Multiprocessor Smalltalk on the simulated
   Firefly.

   [create] wires every subsystem together according to the strategy
   configuration; [run] is the simulation engine: it always steps the
   runnable virtual processor with the smallest clock, and performs the
   stop-the-world scavenge rendezvous — every interpreter parks at a step
   boundary, the collection runs, and all clocks resynchronize past the
   pause, exactly the "global flag plus IPC" discipline of the paper. *)

type t = {
  config : Config.t;
  machine : Machine.t;
  heap : Heap.t;
  u : Universe.t;
  shared : State.shared;
  states : State.t array;
  interps : Interp.t array;
  locks : Spinlock.t list;
  mutable gc_requested : bool;
  mutable scavenge_pauses : int;
  mutable scavenge_cycles : int;
  (* parallel-scavenge accumulators (workers > 1 only); the arrays are
     indexed by worker id, length [processors] *)
  mutable par_scavenges : int;
  mutable par_rounds : int;
  mutable par_coord_cycles : int;
  par_copied_objects : int array;
  par_copied_words : int array;
  par_busy_cycles : int array;
  par_idle_cycles : int array;
  (* fault-recovery accounting *)
  mutable crashes_delivered : int;   (* processors halted by injected crashes *)
  mutable degraded_scavenges : int;  (* collections finished by survivors *)
  (* engine accounting (E17): events the run loop processed, and idle
     re-steps the calendar engine parked away instead of running *)
  mutable engine_events : int;
  mutable parks : int;
  (* E18: the incremental old-space collector, when configured *)
  major : Major.t option;
  mutable major_forced_allocs : int;  (* allocations an emergency forced
                                         completion saved from Image_full *)
  mutable scavenge_pause_costs : int list;  (* newest first *)
}

let sanitizer vm = vm.shared.State.sanitizer

exception Stuck of string

(* E18, the emergency path: run the major collector to completion until
   [need] words are available — twice if necessary.  Completing an
   in-flight cycle only reclaims garbage that predates it (everything
   tenured mid-cycle was allocated black), so the words that died while
   the cycle was in flight need a second, fresh cycle. *)
let force_major_room vm mj ~need =
  let cm = vm.shared.State.cm in
  let cost = Major.finish_cycle mj cm in
  if Heap.old_avail vm.heap >= need then cost
  else cost + Major.finish_cycle mj cm

let create (config : Config.t) =
  let cm =
    let base = config.Config.cost in
    if config.Config.locks_enabled then
      { base with
        Cost_model.dispatch =
          base.Cost_model.dispatch + base.Cost_model.ms_static_penalty;
        Cost_model.push =
          base.Cost_model.push + base.Cost_model.ms_static_penalty }
    else base
  in
  let processors = config.Config.processors in
  let machine = Machine.make ~processors cm in
  let policy =
    if not config.Config.locks_enabled then Heap.Unlocked
    else
      match config.Config.allocation with
      | Config.Alloc_serialized -> Heap.Shared_locked
      | Config.Alloc_replicated_eden -> Heap.Replicated_eden
  in
  let heap =
    Heap.create ~policy ~processors ~tenure_age:config.Config.tenure_age
      ~old_words:config.Config.old_words
      ~eden_words:config.Config.eden_words
      ~survivor_words:config.Config.survivor_words ()
  in
  let u = Bootstrap.install heap in
  let locks = config.Config.locks_enabled in
  let alloc_lock =
    Spinlock.make
      ~enabled:(locks && config.Config.allocation = Config.Alloc_serialized)
      ~cost:cm "allocation"
  in
  let entry_lock = Spinlock.make ~enabled:locks ~cost:cm "entry table" in
  let sched_lock = Spinlock.make ~enabled:locks ~cost:cm "scheduler" in
  let display = Devices.make_display ~enabled_locks:locks ~cost:cm in
  let input = Devices.make_input_queue ~enabled_locks:locks ~cost:cm in
  let sched_strategy =
    match config.Config.scheduler with
    | Config.Sched_locked -> Scheduler.Locked
    | Config.Sched_stealing -> Scheduler.Stealing
  in
  let deque_locks =
    match sched_strategy with
    | Scheduler.Locked -> [||]
    | Scheduler.Stealing ->
        Array.init processors (fun i ->
            Spinlock.make ~enabled:locks ~cost:cm
              (Printf.sprintf "ready deque %d" i))
  in
  let sched =
    Scheduler.create ~strategy:sched_strategy ~deque_locks
      ~unlocked_steal:config.Config.debug_unlocked_steal ~u ~lock:sched_lock
      ~entry_lock ~op_cycles:cm.Cost_model.sched_op
      ~remember_cost:cm.Cost_model.remember_insert
      ~keep_running_in_queue:config.Config.keep_running_in_queue ~processors
      ()
  in
  Scheduler.set_machine sched machine;
  let san =
    Sanitizer.create ~trace_capacity:config.Config.trace_capacity
      config.Config.sanitize
  in
  (* transcript capture is per-VM in spirit; reset the (module-level)
     buffer so successive VMs in one process don't interleave *)
  Buffer.clear Primitives.transcript;
  let shared = {
    State.u;
    heap;
    cm;
    machine;
    sched;
    alloc_lock;
    entry_lock;
    display;
    input;
    sym_does_not_understand = Universe.intern u "doesNotUnderstand:";
    input_semaphore = ref Oop.sentinel;
    on_terminate = (fun _ _ -> ());
    on_method_install = (fun () -> ());
    timers = Calendar.create ();
    gc_wanted = false;
    request_mailbox = None;
    on_request_done = (fun ~rid:_ ~now:_ -> ());
    compile_hook =
      Some (fun ~cls ~class_side source ->
          Class_builder.add_method u ~cls ~class_side source);
    decompile_hook = Some (fun ~meth -> Method_mirror.decompile u meth);
    sanitizer = san;
  } in
  (* method caches *)
  let shared_cache_table = Method_cache.make_table () in
  let shared_cache_lock = Spinlock.make ~enabled:locks ~cost:cm "method cache" in
  let make_cache i =
    match config.Config.method_cache with
    | Config.Cache_replicated ->
        Method_cache.create_replicated ~owner:i ~sanitizer:san ()
    | Config.Cache_shared_locked ->
        Method_cache.create_shared ~sanitizer:san ~lock:shared_cache_lock
          ~table:shared_cache_table ()
  in
  (* free-context lists *)
  let shared_ctx_lists = Free_contexts.empty_lists () in
  let shared_ctx_lock = Spinlock.make ~enabled:locks ~cost:cm "free contexts" in
  let remember_cost = cm.Cost_model.remember_insert in
  let make_free_ctxs i =
    match config.Config.free_contexts with
    | Config.Ctx_replicated ->
        Free_contexts.create_replicated ~owner:i ~entry_lock ~remember_cost
          ~sanitizer:san ()
    | Config.Ctx_shared_locked ->
        Free_contexts.create_shared ~entry_lock ~remember_cost ~sanitizer:san
          ~skip_bracket:config.Config.debug_skip_ctx_lock
          ~lock:shared_ctx_lock ~lists:shared_ctx_lists ()
    | Config.Ctx_disabled -> Free_contexts.create_disabled ()
  in
  (* sanitizer wiring: every lock reports its timeline; guarded resources
     are bound to their designated locks only when that lock is real, so
     the BS (locks-disabled) configurations are never flagged *)
  let all_locks =
    [ alloc_lock; entry_lock; sched_lock; Devices.display_lock display;
      Devices.input_lock input; shared_cache_lock; shared_ctx_lock ]
    @ Array.to_list deque_locks
  in
  List.iter (fun l -> Spinlock.attach l san) all_locks;
  (* the machine's scheduling policy (when the explorer installs one)
     perturbs lock acquisitions; every lock must see it *)
  List.iter (fun l -> Spinlock.attach_machine l machine) all_locks;
  (* several processors with locking off means no serialization at all:
     let the disabled locks report their op windows, so the sanitizer can
     expose the overlapping critical sections this config produces *)
  if (not locks) && processors > 1 then
    List.iter (fun l -> Spinlock.set_report_unlocked l true) all_locks;
  Heap.set_sanitizer heap san;
  Scheduler.set_sanitizer sched san;
  let guard resource lock =
    if Spinlock.enabled lock then
      Sanitizer.register_guard san ~resource ~lock:(Spinlock.name lock)
  in
  guard "entry table" entry_lock;
  guard "allocation" alloc_lock;
  guard "ready queue" sched_lock;
  Array.iteri
    (fun i l -> guard (Printf.sprintf "ready deque %d" i) l)
    deque_locks;
  guard "display output queue" (Devices.display_lock display);
  guard "input event queue" (Devices.input_lock input);
  if config.Config.free_contexts = Config.Ctx_shared_locked then
    guard "free context list" shared_ctx_lock;
  let states =
    Array.init processors (fun id ->
        State.make ~id ~sh:shared ~mcache:(make_cache id)
          ~free_ctxs:(make_free_ctxs id))
  in
  let interps = Array.map Interp.create states in
  (* the scheduler's per-processor running table holds process oops *)
  Heap.add_array_root heap sched.Scheduler.running;
  Heap.add_root heap shared.State.input_semaphore;
  (* scavenge hooks: flush caches and free lists, drop cached decodes *)
  Heap.on_scavenge heap (fun () ->
      Array.iter
        (fun st ->
          Method_cache.flush st.State.mcache;
          Free_contexts.flush st.State.free_ctxs;
          State.invalidate_cache st)
        states);
  (* installing or replacing a method invalidates cached lookups *)
  shared.State.on_method_install <-
    (fun () -> Array.iter (fun st -> Method_cache.flush st.State.mcache) states);
  (* the spin watchdog: off by default (bound 0 keeps every lock timeline
     bit-identical to the seed); fault campaigns turn it on so a crashed
     lock holder is detected instead of spun on forever *)
  if config.Config.watchdog_quanta > 0 then begin
    let bound = config.Config.watchdog_quanta * cm.Cost_model.delay_quantum in
    List.iter
      (fun l ->
        Spinlock.set_watchdog l ~bound
          ~backoff_after:config.Config.backoff_quanta)
      all_locks
  end;
  (* E18: the incremental old-space collector.  Its roots beyond the
     heap's own registered cells are every host-side reference into the
     image: the universe's well-known objects, the scheduler's deques and
     running table, and each processor's free-context list heads. *)
  let major =
    if not config.Config.major_enabled then None
    else begin
      let iter_roots f =
        Universe.iter_roots u f;
        Scheduler.iter_roots sched f;
        Array.iter
          (fun st -> Free_contexts.iter_roots st.State.free_ctxs f)
          states
      in
      let mj =
        Major.create ~heap ~budget:config.Config.major_budget ~iter_roots
      in
      (* the write barrier rides on every pointer store; the explorer's
         self-check replaces it with a probe that reports every store the
         disabled barrier should have intercepted — an old pointer written
         while marking is in flight — so the sanitizer catches the broken
         configuration deterministically, not only on the schedules where
         a store actually hides the last pointer to a white object *)
      heap.Heap.major_dirty <-
        Some
          (if config.Config.debug_skip_major_barrier then fun v ->
             (if Major.phase mj = Major.Marking && Heap.is_old heap v then
                Sanitizer.report_violation san ~vp:(-1)
                  ~now:(Machine.max_clock machine)
                  ~resource:"major collector"
                  "old pointer stored while marking with the write barrier \
                   disabled")
           else Major.dirty mj);
      heap.Heap.on_old_alloc <- Some (Major.alloc_black mj);
      Some mj
    end
  in
  let vm =
    { config; machine; heap; u; shared; states; interps; locks = all_locks;
      gc_requested = false; scavenge_pauses = 0; scavenge_cycles = 0;
      par_scavenges = 0; par_rounds = 0; par_coord_cycles = 0;
      par_copied_objects = Array.make processors 0;
      par_copied_words = Array.make processors 0;
      par_busy_cycles = Array.make processors 0;
      par_idle_cycles = Array.make processors 0;
      crashes_delivered = 0; degraded_scavenges = 0;
      engine_events = 0; parks = 0;
      major; major_forced_allocs = 0; scavenge_pause_costs = [] }
  in
  (* the last resort before [Image_full]: run the collector to completion
     at the rendezvous clock — every interpreter is at a step boundary
     when an allocation fails — then let [alloc_old] retry against the
     free lists the sweep just filled *)
  (match major with
   | Some mj ->
       heap.Heap.on_old_exhausted <-
         Some
           (fun need ->
             let t0 = Machine.max_clock machine in
             let was_armed = Sanitizer.armed san in
             Sanitizer.set_armed san false;
             let cost =
               Fun.protect
                 ~finally:(fun () -> Sanitizer.set_armed san was_armed)
                 (fun () -> force_major_room vm mj ~need)
             in
             Machine.synchronize_clocks machine (t0 + cost);
             vm.major_forced_allocs <- vm.major_forced_allocs + 1;
             Sanitizer.major_event san ~now:(t0 + cost)
               (Printf.sprintf
                  "old space exhausted on a %d-word allocation: forced \
                   cycle completion reclaimed %d free words (%d/%d used)"
                  need (Heap.free_words heap) (Heap.old_used heap)
                  config.Config.old_words);
             true)
   | None -> ());
  vm

(* Install (or clear) the fault injector for this VM's machine: the
   interpreters, locks, devices and the parallel scavenger all consult
   it at their injection points. *)
let set_fault_injector vm inj = Machine.set_injector vm.machine inj

let fault_injector vm = Machine.injector vm.machine

(* --- spawning Smalltalk Processes from OCaml --- *)

let do_scavenge_fwd : (t -> unit) ref =
  ref (fun _ -> Fault.fatal ~vp:(-1) ~clock:0 "scavenge hook not yet installed")

(* Allocate in new space; between engine runs every interpreter is at a
   step boundary, so a scavenge may run right here when eden is full. *)
let rec alloc_spawn vm ~slots ~cls =
  match Heap.alloc_new vm.heap ~vp:0 ~slots ~raw:false ~cls () with
  | o -> o
  | exception Heap.Scavenge_needed ->
      !do_scavenge_fwd vm;
      alloc_spawn vm ~slots ~cls

let spawn_method vm ~priority ~name meth =
  let h = vm.heap in
  let u = vm.u in
  let n = u.Universe.nil in
  let info = Oop.small_val (Heap.get h meth Layout.Method.info) in
  let ntemps = Layout.Minfo.ntemps info in
  let frame = Layout.Ctx.large_frame in
  let ctx =
    alloc_spawn vm ~slots:(Layout.Ctx.fixed_slots + frame)
      ~cls:u.Universe.classes.Universe.method_context
  in
  let set i v = ignore (Heap.store_ptr h ctx i v) in
  set Layout.Ctx.sender n;
  Heap.set_raw h ctx Layout.Ctx.pc (Oop.of_small 0);
  Heap.set_raw h ctx Layout.Ctx.stackp (Oop.of_small ntemps);
  set Layout.Ctx.meth meth;
  set Layout.Ctx.receiver n;
  set Layout.Ctx.home n;
  Heap.set_raw h ctx Layout.Ctx.startpc (Oop.of_small 0);
  Heap.set_raw h ctx Layout.Ctx.argstart (Oop.of_small 0);
  Heap.set_raw h ctx Layout.Ctx.nargs (Oop.of_small 0);
  for i = 0 to ntemps - 1 do
    set (Layout.Ctx.fixed_slots + i) n
  done;
  (* protect the context while the Process object is allocated *)
  let ctx_cell = ref ctx in
  Heap.add_root h ctx_cell;
  let proc =
    alloc_spawn vm ~slots:Layout.Process.fixed_slots
      ~cls:u.Universe.classes.Universe.process
  in
  Heap.remove_root h ctx_cell;
  let ctx = !ctx_cell in
  (* [store_ptr] below may insert [proc] into the entry table without the
     entry-table lock being taken or charged: spawning runs between engine
     runs, when every interpreter is parked and the sanitizer is disarmed,
     so the insert cannot race with any vp — and charging lock cycles here
     would misattribute host-side setup work to the simulation. *)
  let setp i v = ignore (Heap.store_ptr h proc i v) in
  setp Layout.Process.next_link n;
  setp Layout.Process.suspended_context ctx;
  Heap.set_raw h proc Layout.Process.priority (Oop.of_small priority);
  setp Layout.Process.my_list n;
  setp Layout.Process.running_on n;
  setp Layout.Process.name (Universe.new_string u name);
  Heap.set_raw h proc Layout.Process.state
    (Oop.of_small Layout.Process_state.runnable);
  let now = Machine.max_clock vm.machine in
  ignore (Scheduler.wake vm.shared.State.sched ~now proc);
  proc

let spawn vm ?(priority = 5) ?(name = "doIt") source =
  let meth = Codegen.compile_do_it vm.u source in
  spawn_method vm ~priority ~name meth

(* --- the engine --- *)

let do_scavenge vm =
  let m = vm.machine in
  (* rendezvous: the collection starts once the laggard reaches its
     safepoint; in the simulation every runnable processor is at a step
     boundary, so that instant is the maximum clock *)
  let t0 = Machine.max_clock m in
  (* E18: promotion failure mid-copy has no recovery — the heap is half
     scavenged, so the major collector cannot be forced then.  When old
     space lacks room for a worst-case survivor set, run a cycle (or
     finish the in-flight one) here, before the copy starts. *)
  (match vm.major with
   | Some mj
     when (let need =
             Heap.eden_used vm.heap + Heap.survivor_used vm.heap
             + Layout.header_words
           in
           Heap.old_avail vm.heap < need) ->
       let need =
         Heap.eden_used vm.heap + Heap.survivor_used vm.heap
         + Layout.header_words
       in
       let san = vm.shared.State.sanitizer in
       let was_armed = Sanitizer.armed san in
       Sanitizer.set_armed san false;
       let cost =
         Fun.protect ~finally:(fun () -> Sanitizer.set_armed san was_armed)
           (fun () -> force_major_room vm mj ~need)
       in
       Machine.synchronize_clocks m (t0 + cost);
       Sanitizer.major_event san ~now:(t0 + cost)
         "cycle completed ahead of a scavenge short on promotion room"
   | _ -> ());
  let t0 = Machine.max_clock m in
  (* the stop-the-world scavenger mutates everything without locks by
     design; the sanitizer must not flag it *)
  let san = vm.shared.State.sanitizer in
  let was_armed = Sanitizer.armed san in
  Sanitizer.set_armed san false;
  Fun.protect ~finally:(fun () -> Sanitizer.set_armed san was_armed)
  @@ fun () ->
  let workers =
    min vm.config.Config.scavenge_workers vm.config.Config.processors
  in
  let cost =
    if workers <= 1 then begin
      let stats = Scavenger.scavenge vm.heap in
      Scavenger.cost vm.shared.State.cm stats
    end
    else begin
      let _stats, pr =
        Scavenger.scavenge_parallel vm.heap vm.shared.State.cm
          ?injector:(Machine.injector m) ~workers ()
      in
      vm.par_scavenges <- vm.par_scavenges + 1;
      vm.par_rounds <- vm.par_rounds + pr.Scavenger.rounds;
      vm.par_coord_cycles <-
        vm.par_coord_cycles + pr.Scavenger.coordination_cycles;
      Array.iter
        (fun (ws : Scavenger.worker_stat) ->
          let i = ws.Scavenger.worker in
          vm.par_copied_objects.(i) <-
            vm.par_copied_objects.(i) + ws.Scavenger.copied_objects;
          vm.par_copied_words.(i) <-
            vm.par_copied_words.(i) + ws.Scavenger.copied_words;
          vm.par_busy_cycles.(i) <-
            vm.par_busy_cycles.(i) + ws.Scavenger.busy_cycles;
          vm.par_idle_cycles.(i) <-
            vm.par_idle_cycles.(i) + ws.Scavenger.idle_cycles)
        pr.Scavenger.worker_stats;
      if pr.Scavenger.degraded then
        vm.degraded_scavenges <- vm.degraded_scavenges + 1;
      (* the parallel scavenger reorders copies, so machine-check the heap
         after every collection whenever the sanitizer is on: any claim or
         tiling mistake surfaces as a violation (fatal under Strict).  A
         degraded collection (a worker died mid-scavenge) is verified
         unconditionally — survivors finishing the copy is only a recovery
         if the heap they leave behind is sound. *)
      let problems =
        if pr.Scavenger.degraded || Sanitizer.active san then
          Verify.check vm.heap
        else []
      in
      List.iter
        (fun p ->
          let msg = Format.asprintf "heap check: %a" Verify.pp_problem p in
          if Sanitizer.active san then
            Sanitizer.report_violation san ~vp:(-1) ~now:t0
              ~resource:"parallel scavenge" msg
          else
            Fault.fatal ~vp:(-1) ~clock:t0
              "degraded scavenge failed verification: %s" msg)
        problems;
      pr.Scavenger.pause_cycles
    end
  in
  Machine.synchronize_clocks m (t0 + cost);
  vm.scavenge_pauses <- vm.scavenge_pauses + 1;
  vm.scavenge_cycles <- vm.scavenge_cycles + cost;
  vm.scavenge_pause_costs <- cost :: vm.scavenge_pause_costs;
  vm.gc_requested <- false;
  vm.shared.State.gc_wanted <- false

let () = do_scavenge_fwd := do_scavenge

(* One bounded slice of the incremental old-space collector (E18), run at
   a step boundary exactly like the scavenge rendezvous: every processor
   parks, the slice runs, all clocks resynchronize past it.  The
   collector mutates the heap without locks by design, so the sanitizer
   is disarmed around the slice — and re-armed to machine-check the
   results at the two windows where an invariant is decidable: reachable
   implies marked at mark completion, heap consistency (free lists
   included) at cycle completion. *)
let do_major_slice vm mj =
  let m = vm.machine in
  let t0 = Machine.max_clock m in
  let san = vm.shared.State.sanitizer in
  let was_armed = Sanitizer.armed san in
  Sanitizer.set_armed san false;
  let r =
    Fun.protect ~finally:(fun () -> Sanitizer.set_armed san was_armed)
      (fun () -> Major.slice mj vm.shared.State.cm ~now:t0)
  in
  let now = t0 + r.Major.cost in
  Machine.synchronize_clocks m now;
  Sanitizer.major_slice san ~now ~cost:r.Major.cost ~budget:(Major.budget mj);
  let report what (p : Verify.problem) =
    Sanitizer.report_violation san ~vp:(-1) ~now ~resource:"major collector"
      (Format.asprintf "%s: %a" what Verify.pp_problem p)
  in
  if r.Major.mark_completed && Sanitizer.active san then begin
    (* marks are final and nothing has been swept yet: every object
       reachable from the collector's roots must be marked *)
    let roots = ref [] in
    let add o = roots := o :: !roots in
    List.iter (fun c -> add !c) vm.heap.Heap.roots;
    List.iter (Array.iter add) vm.heap.Heap.array_roots;
    Universe.iter_roots vm.u add;
    Scheduler.iter_roots vm.shared.State.sched add;
    Array.iter
      (fun st -> Free_contexts.iter_roots st.State.free_ctxs add)
      vm.states;
    List.iter (report "mark check")
      (Verify.check_marked vm.heap ~marked:(Major.marked mj) ~roots:!roots)
  end;
  if r.Major.cycle_completed && Sanitizer.active san then
    List.iter (report "heap check") (Verify.check vm.heap)

let major_due vm ~now =
  match vm.major with Some mj -> Major.due mj ~now | None -> false

(* Signal a timer's semaphore at its deadline: wake the first waiter or
   bank an excess signal, exactly as the signal primitive would. *)
let signal_timer_sem vm ~now sem =
  let sched = vm.shared.State.sched in
  let _, popped = Scheduler.ll_pop_first sched ~now sem in
  match popped with
  | Some waiter -> ignore (Scheduler.wake sched ~now waiter)
  | None ->
      let excess =
        Oop.small_val (Heap.get vm.heap sem Layout.Semaphore.excess_signals)
      in
      Heap.set_raw vm.heap sem Layout.Semaphore.excess_signals
        (Oop.of_small (excess + 1))

let fire_timer vm ~now = function
  | State.Signal_sem cell ->
      let sem = !cell in
      Heap.remove_root vm.heap cell;
      signal_timer_sem vm ~now sem
  | State.Run_hook f -> f ~now

(* Fire every timer that is due at or before the frontier of virtual
   time (the smallest runnable clock, or unconditionally when nothing is
   runnable).  A [Run_hook] may add further timers; the heap keeps the
   drain in deadline order regardless. *)
let fire_due_timers vm =
  let due t =
    match Machine.min_runnable vm.machine with
    | Some vp -> t <= vp.Machine.clock
    | None -> true
  in
  let rec go () =
    match Calendar.peek vm.shared.State.timers with
    | Some (t, _) when due t ->
        (match Calendar.pop vm.shared.State.timers with
         | Some (t, action) -> fire_timer vm ~now:t action
         | None -> ());
        go ()
    | _ -> ()
  in
  go ()

(* True when no Process can make progress anywhere: every interpreter is
   empty-handed, nothing is ready, no input event is still in flight, and
   no timer is pending. *)
let nothing_runnable vm =
  Array.for_all
    (fun st -> Oop.equal !(st.State.active_process) Oop.sentinel)
    vm.states
  && not (Scheduler.better_ready vm.shared.State.sched ~than:0)
  && Devices.input_pending vm.shared.State.input = 0
  && Calendar.is_empty vm.shared.State.timers

(* Deliver an injected processor crash: the victim halts permanently
   (its per-processor state is gone with it), the Process it was running
   fails over to the serialized ready queue, and the replicated caches —
   method cache, free-context list, cached context decode — are
   abandoned.  The kernel notices the death by IPC timeout, charged as a
   few Delay quanta of detection latency before recovery begins. *)
let crash_vp vm id =
  let m = vm.machine in
  let vp = Machine.vp m id in
  let st = vm.states.(id) in
  let detect = 4 * vm.shared.State.cm.Cost_model.delay_quantum in
  let now = vp.Machine.clock + detect in
  Sanitizer.fault_event (sanitizer vm) ~vp:id ~now ~resource:"processor"
    (Printf.sprintf "vp %d halted; failover after %d-cycle detection" id
       detect);
  Machine.set_state m vp Machine.Halted;
  vm.crashes_delivered <- vm.crashes_delivered + 1;
  let proc = !(st.State.active_process) in
  if not (Oop.equal proc Oop.sentinel) then
    ignore
      (Scheduler.failover vm.shared.State.sched ~now ~dead:id proc
         !(st.State.active_ctx));
  Method_cache.flush st.State.mcache;
  Free_contexts.abandon st.State.free_ctxs;
  st.State.active_process := Oop.sentinel;
  st.State.active_ctx := Oop.sentinel;
  st.State.cost <- 0;
  State.invalidate_cache st

(* Drain crashes flagged during the last step (lock-holder crashes flag
   the holder; scheduling-check crashes flag the stepping vp). *)
let rec deliver_crashes vm =
  match Machine.take_crash vm.machine with
  | None -> ()
  | Some id ->
      crash_vp vm id;
      deliver_crashes vm

type run_outcome =
  | Finished of Oop.t      (* the watched Process returned this value *)
  | Deadlock               (* nothing left to run *)
  | Cycle_limit

(* The original engine: every event rescans the machine for the smallest
   runnable clock, and idle processors are re-stepped every few quanta.
   Kept verbatim as the differential-oracle reference for the calendar
   engine. *)
let run_scan vm ~max_cycles ~finished ~result outcome =
  while !outcome = None do
    vm.engine_events <- vm.engine_events + 1;
    if !finished then
      outcome := Some (Finished (Option.get !result))
    else if vm.gc_requested || vm.shared.State.gc_wanted then do_scavenge vm
    else if major_due vm ~now:(Machine.max_clock vm.machine) then
      do_major_slice vm (Option.get vm.major)
    else begin
      if not (Calendar.is_empty vm.shared.State.timers) then
        fire_due_timers vm;
      match Machine.min_runnable vm.machine with
      | None -> outcome := Some Deadlock
      | Some vp when vp.Machine.clock > max_cycles -> outcome := Some Cycle_limit
      | Some vp ->
          let st = vm.states.(vp.Machine.id) in
          (match Interp.step vm.interps.(vp.Machine.id) with
           | exception e ->
               (* a VM-level error killed the running Process; take it off
                  the machine so later evaluations start clean, then let
                  the error propagate.  The cleanup itself takes the
                  scheduler lock, so under fault injection it can hit the
                  same wedged lock that raised [e] — swallow the secondary
                  failure rather than mask the original report *)
               (try
                  if not (Oop.equal !(st.State.active_process) Oop.sentinel)
                  then Primitives.finish_process st ~result:vm.u.Universe.nil
                with _ -> ());
               raise e
           | Interp.Ran ->
               if vp.Machine.state <> Machine.Running then
                 Machine.set_state vm.machine vp Machine.Running;
               Machine.charge_mem vm.machine vp st.State.cost
           | Interp.Idle ->
               (* an idle interpreter keeps watching the input queue *)
               st.State.cost <- 0;
               Interp.idle_poll vm.interps.(vp.Machine.id);
               Machine.charge vm.machine vp st.State.cost;
               if nothing_runnable vm then outcome := Some Deadlock
               else begin
                 if vp.Machine.state <> Machine.Idle then
                   Machine.set_state vm.machine vp Machine.Idle;
                 (* an idle processor re-polls the ready queue only every
                    few Delay quanta, or the scheduler lock saturates *)
                 Machine.charge vm.machine vp
                   (10 * vm.shared.State.cm.Cost_model.delay_quantum)
               end
           | Interp.Need_gc -> vm.gc_requested <- true);
          (* crashes flagged during the step are delivered here, at the
             step boundary: the victim's shared-state work has completed,
             so what a crash leaves behind is exactly what a dead
             processor leaves — an unreleased lock, a Process with no
             executor — not a half-mutated structure *)
          if Machine.injector vm.machine <> None then deliver_crashes vm
    end
  done

(* The event-calendar engine (E17).

   Three structural changes over [run_scan], with identical observables:

   - runnable processors live in a pending-heap keyed by
     (clock, id) — encoded as [clock * processors + id] so ties still go
     to the lowest id — instead of being rescanned per event.  Entries
     go stale only by their clock moving forward (charges only add), so
     a popped entry whose key is behind the processor's clock is simply
     reinserted at the fresh key;

   - a processor that goes idle with nothing ready is *parked*: removed
     from the heap entirely rather than re-stepped every 10 quanta.  It
     returns on a wakeup event — ready work (the scheduler's on_ready
     hook fires on every wake and failover), an input event becoming
     visible, or a timer deadline — with its clock advanced to the wake,
     which models the idle loop it would have been spinning in;

   - after stepping the minimal processor, the engine keeps stepping it
     while it remains minimal and no timer is due (the batched fast
     path), instead of going back through selection for every bytecode.

   Idle processors parked away neither poll the input queue nor retry
   scheduler picks, so the lock timelines — and therefore exact cycle
   counts — differ from the scan engine; results, transcripts and census
   are compared by the cross-engine differential oracle instead. *)
let run_calendar vm ~max_cycles ~finished ~result outcome =
  let m = vm.machine in
  let procs = vm.config.Config.processors in
  let sched = vm.shared.State.sched in
  let timers = vm.shared.State.timers in
  let pending = Calendar.create () in
  let parked = Array.make procs false in
  let parked_count = ref 0 in
  let pkey vp = (vp.Machine.clock * procs) + vp.Machine.id in
  let push_vp vp = Calendar.add pending ~key:(pkey vp) vp.Machine.id in
  let unpark ~now id =
    if parked.(id) then begin
      parked.(id) <- false;
      decr parked_count;
      let vp = Machine.vp m id in
      if vp.Machine.state <> Machine.Halted then begin
        (* the processor sat in its idle loop until the wake arrived *)
        if vp.Machine.clock < now then Machine.charge m vp (now - vp.Machine.clock);
        push_vp vp
      end
    end
  in
  let unpark_all ~now =
    if !parked_count > 0 then
      for id = 0 to procs - 1 do
        unpark ~now id
      done
  in
  Scheduler.set_on_ready sched (Some (fun ~now -> unpark_all ~now));
  Fun.protect ~finally:(fun () -> Scheduler.set_on_ready sched None)
  @@ fun () ->
  for id = 0 to procs - 1 do
    let vp = Machine.vp m id in
    if vp.Machine.state <> Machine.Halted then push_vp vp
  done;
  (* Pop heap entries until a live, current minimum surfaces.  Stale
     entries (processor charged past the key) reinsert at the fresh key;
     entries for halted, GC-parked or idle-parked processors drop — the
     parked ones were removed deliberately and re-push on unpark. *)
  let rec pop_min () =
    match Calendar.pop pending with
    | None -> None
    | Some (k, id) -> (
        let vp = Machine.vp m id in
        match vp.Machine.state with
        | Machine.Halted | Machine.Parked_for_gc -> pop_min ()
        | Machine.Running | Machine.Idle ->
            if parked.(id) then pop_min ()
            else if pkey vp > k then begin
              push_vp vp;
              pop_min ()
            end
            else Some vp)
  in
  (* With a policy installed (the explorer), ties between minimal clocks
     go through choose_tie exactly as the scan engine's min_runnable:
     collect every current candidate in ascending id order, let the
     policy pick, and reinsert the rest. *)
  let pop_min_policy p =
    match pop_min () with
    | None -> None
    | Some first ->
        let rec collect acc =
          match pop_min () with
          | Some vp when vp.Machine.clock = first.Machine.clock ->
              collect (vp :: acc)
          | Some vp ->
              push_vp vp;
              List.rev acc
          | None -> List.rev acc
        in
        (match collect [] with
         | [] -> Some first
         | rest ->
             let ties = Array.of_list (first :: rest) in
             let chosen = p.Machine.choose_tie ties in
             Array.iter (fun vp -> if vp != chosen then push_vp vp) ties;
             Some chosen)
  in
  let fire_timers_until ~frontier =
    let rec go () =
      match Calendar.peek timers with
      | Some (t, _) when t <= frontier ->
          (match Calendar.pop timers with
           | Some (t, action) -> fire_timer vm ~now:t action
           | None -> ());
          go ()
      | _ -> ()
    in
    go ()
  in
  (* Step the selected processor; keep stepping it (the batched fast
     path) while it stays minimal, no timer is due, and nothing engine-
     visible happened.  Batching is disabled under a policy or injector:
     both want the engine back between single steps. *)
  let step_vp vp =
    let id = vp.Machine.id in
    let st = vm.states.(id) in
    let interp = vm.interps.(id) in
    let can_batch = Machine.policy m = None && Machine.injector m = None in
    let rec loop () =
      let r =
        match Interp.step interp with
        | exception e ->
            (* same cleanup discipline as the scan engine *)
            (try
               if not (Oop.equal !(st.State.active_process) Oop.sentinel)
               then Primitives.finish_process st ~result:vm.u.Universe.nil
             with _ -> ());
            raise e
        | r -> r
      in
      match r with
      | Interp.Ran ->
          if vp.Machine.state <> Machine.Running then
            Machine.set_state m vp Machine.Running;
          Machine.charge_mem m vp st.State.cost;
          if
            can_batch && (not !finished)
            && (not vm.gc_requested)
            && (not vm.shared.State.gc_wanted)
            && (not (major_due vm ~now:vp.Machine.clock))
            && vp.Machine.clock <= max_cycles
            && (match Calendar.min_key pending with
               | Some k -> pkey vp <= k
               | None -> true)
            && (match Calendar.min_key timers with
               | Some t -> vp.Machine.clock < t
               | None -> true)
          then begin
            vm.engine_events <- vm.engine_events + 1;
            loop ()
          end
          else push_vp vp
      | Interp.Idle ->
          st.State.cost <- 0;
          Interp.idle_poll interp;
          Machine.charge m vp st.State.cost;
          if nothing_runnable vm then outcome := Some Deadlock
          else begin
            if vp.Machine.state <> Machine.Idle then
              Machine.set_state m vp Machine.Idle;
            if Scheduler.better_ready sched ~than:0 then begin
              (* ready work is visible but this pick missed it (it may
                 sit in another processor's deque): retry on the scan
                 engine's idle cadence rather than parking past it *)
              Machine.charge m vp
                (10 * vm.shared.State.cm.Cost_model.delay_quantum);
              push_vp vp
            end
            else begin
              parked.(id) <- true;
              incr parked_count;
              vm.parks <- vm.parks + 1
            end
          end
      | Interp.Need_gc ->
          vm.gc_requested <- true;
          push_vp vp
    in
    loop ()
  in
  while !outcome = None do
    vm.engine_events <- vm.engine_events + 1;
    if !finished then outcome := Some (Finished (Option.get !result))
    else if vm.gc_requested || vm.shared.State.gc_wanted then do_scavenge vm
    else if major_due vm ~now:(Machine.max_clock m) then
      do_major_slice vm (Option.get vm.major)
    else begin
      (match
         match Machine.policy m with
         | Some p -> pop_min_policy p
         | None -> pop_min ()
       with
      | Some vp
        when (match Calendar.min_key timers with
             | Some t -> t <= vp.Machine.clock
             | None -> false) ->
          (* timers due at or before the frontier fire first; a wake may
             unpark a processor with a smaller clock, so reselect *)
          push_vp vp;
          fire_timers_until ~frontier:vp.Machine.clock
      | Some vp when vp.Machine.clock > max_cycles ->
          outcome := Some Cycle_limit
      | Some vp -> step_vp vp
      | None ->
          (* no unparked runnable processor: virtual time advances to the
             next event — a timer deadline or an input arrival — and the
             firing or the poll after unparking brings work back *)
          (match Calendar.peek timers with
          | Some (_, _) -> (
              match Calendar.pop timers with
              | Some (t, action) -> fire_timer vm ~now:t action
              | None -> ())
          | None -> (
              match Devices.next_input_time vm.shared.State.input with
              | Some t when !parked_count > 0 -> unpark_all ~now:(max t (Machine.max_clock m))
              | _ ->
                  if !parked_count = 0 then
                    (* every processor is dead or GC-parked: the scan
                       engine's min_runnable-None deadlock *)
                    outcome := Some Deadlock
                  else if nothing_runnable vm then outcome := Some Deadlock
                  else
                    (* ready work with every processor parked and no wake
                       recorded — conservatively unreachable; unpark
                       everyone rather than misreport a deadlock *)
                    unpark_all ~now:(Machine.max_clock m))));
      if Machine.injector m <> None then deliver_crashes vm
    end
  done

(* Run until the watched Process terminates (or the system quiesces).
   Returns the outcome; virtual time advances on [vm.machine]. *)
let run ?(max_cycles = 100_000_000_000) ?watch vm =
  let result = ref None in
  let finished = ref false in
  (* the watched Process lives in new space; keep the comparison oop up to
     date across scavenges *)
  let watch_cell = ref (match watch with Some w -> w | None -> Oop.sentinel) in
  if watch <> None then Heap.add_root vm.heap watch_cell;
  (vm.shared).State.on_terminate <-
    (fun proc value ->
      match watch with
      | Some _ when Oop.equal proc !watch_cell ->
          result := Some value;
          finished := true
      | Some _ | None -> ());
  let outcome = ref None in
  (* the sanitizer only checks steady-state execution: bootstrap, spawn
     and class loading mutate shared structures single-threaded *)
  let san = vm.shared.State.sanitizer in
  Sanitizer.set_armed san true;
  Fun.protect
    ~finally:(fun () ->
      Sanitizer.set_armed san false;
      if watch <> None then Heap.remove_root vm.heap watch_cell)
  @@ fun () ->
  (match vm.config.Config.engine with
   | Config.Engine_scan -> run_scan vm ~max_cycles ~finished ~result outcome
   | Config.Engine_calendar ->
       run_calendar vm ~max_cycles ~finished ~result outcome);
  Option.get !outcome

(* --- convenience API --- *)

exception Error of string

(* Install additional classes (image-definition format) after bootstrap:
   workload classes for the benchmarks, user code for the examples. *)
let load_classes vm source =
  Class_builder.load vm.u source;
  vm.shared.State.on_method_install ()

let eval ?(priority = 5) vm source =
  let proc = spawn vm ~priority ~name:"doIt" source in
  match run ~watch:proc vm with
  | Finished value -> value
  | Deadlock -> raise (Error "evaluation deadlocked")
  | Cycle_limit -> raise (Error "evaluation exceeded the cycle limit")

(* A short printable description of [oop], computed on the OCaml side. *)
let describe vm (o : Oop.t) =
  let u = vm.u in
  let h = vm.heap in
  let c = u.Universe.classes in
  if Oop.is_small o then string_of_int (Oop.small_val o)
  else if Oop.equal o u.Universe.nil then "nil"
  else if Oop.equal o u.Universe.true_ then "true"
  else if Oop.equal o u.Universe.false_ then "false"
  else if Oop.equal o Oop.sentinel then "<sentinel>"
  else begin
    let cls = Heap.class_at h (Oop.addr o) in
    if Oop.equal cls c.Universe.string then
      Printf.sprintf "'%s'" (Heap.string_value h o)
    else if Oop.equal cls c.Universe.symbol then
      "#" ^ Heap.string_value h o
    else if Oop.equal cls c.Universe.character then
      Printf.sprintf "$%c" (Universe.char_value u o)
    else if Oop.equal cls c.Universe.float_c then
      Printf.sprintf "%g" (Universe.float_value u o)
    else if Oop.equal cls c.Universe.class_c then
      Universe.class_name u o
    else "a " ^ Universe.class_name u cls
  end

let eval_to_string ?priority vm source = describe vm (eval ?priority vm source)

let transcript _vm = Buffer.contents Primitives.transcript

let cycles vm = Machine.max_clock vm.machine
let seconds vm = Cost_model.seconds vm.config.Config.cost (cycles vm)
