(* Instrumentation (the paper's section 6: "we plan to add sufficient
   instrumentation to MS to gather data about ... contention for
   resources").

   Every shared resource in the simulation already counts its traffic;
   this module gathers the counters into one report: lock acquisitions,
   contention and spin time; per-interpreter execution statistics; cache
   and free-list effectiveness; storage and scavenging totals; device
   queues. *)

type lock_row = {
  lock_name : string;
  enabled : bool;
  acquisitions : int;
  contended : int;
  spin_cycles : int;
}

type interp_row = {
  processor : int;
  steps : int;
  sends : int;
  cache_hits : int;
  cache_misses : int;
  ctx_reuses : int;
  ctx_fresh : int;
  switches : int;
  gc_wait : int;
}

(* One parallel-scavenge worker's accumulated totals (workers > 1). *)
type scavenge_worker_row = {
  worker : int;
  copied_objects : int;
  copied_words : int;
  busy_cycles : int;
  idle_cycles : int;
}

(* Work-stealing traffic (E16) — all zero under the locked scheduler. *)
type steal_stats = {
  stealing : bool;           (* the stealing scheduler was configured *)
  local_picks : int;         (* picks satisfied from the own deque *)
  steals : int;              (* picks satisfied from a victim deque *)
  failed_steals : int;
  migrations : int;          (* stolen processes re-homed (MS mode) *)
  stolen_from : int list;    (* per victim processor *)
}

(* Incremental old-space collection (E18) — present only when the
   collector is configured. *)
type major_stats = {
  major_cycles : int;           (* complete mark-sweep cycles *)
  major_slices : int;
  major_slice_cycles : int;     (* collector work, summed *)
  major_max_slice : int;
  major_budget : int;
  major_overruns : int;         (* slices that ran past the budget *)
  major_reclaimed_objects : int;
  major_reclaimed_words : int;
  major_forced_completions : int;
  major_forced_allocs : int;    (* allocations saved from Image_full *)
  major_barrier_greys : int;
  major_alloc_marks : int;
  major_free_list_hits : int;
  major_free_reused_words : int;
  major_near_exhaustion : bool; (* old space over 90% occupied now *)
}

type report = {
  locks : lock_row list;
  interps : interp_row list;
  scavenges : int;
  scavenge_cycles : int;
  par_scavenges : int;
  par_rounds : int;
  par_coord_cycles : int;
  scavenge_workers : scavenge_worker_row list;
  words_allocated : int;
  words_copied : int;
  words_tenured : int;
  remembered : int;
  display_commands : int;
  display_wait : int;
  input_polls : int;
  total_cycles : int;
  major : major_stats option;
  steal : steal_stats;
  sanitizer_mode : Sanitizer.mode;
  violation_count : int;
  violations : string list;
  (* fault recovery — all zero except under fault campaigns.  The lock
     table above deliberately excludes these cycles: [spin_cycles] there
     is genuine contention only, so the E-series numbers stay clean. *)
  crashes_delivered : int;
  failovers : int;
  ctx_abandons : int;
  degraded_scavenges : int;
  vp_fault_cycles : int;      (* injected transient-stall time, summed *)
  lock_fault_spin : int;      (* waiter spin caused by holder faults *)
  lock_backoff : int;         (* extra delay from exponential backoff *)
  lock_fault_stall : int;     (* injected holder-stall time *)
  device_fault_stall : int;   (* injected device-timeout time *)
}

let lock_row l = {
  lock_name = Spinlock.name l;
  enabled = Spinlock.enabled l;
  acquisitions = Spinlock.acquisitions l;
  contended = Spinlock.contended l;
  spin_cycles = Spinlock.spin_cycles l;
}

let gather (vm : Vm.t) =
  let sh = vm.Vm.shared in
  (* every kernel lock the VM assembled, in assembly order — including the
     shared method-cache and free-context locks the old hardcoded list
     missed *)
  let locks = List.map lock_row vm.Vm.locks in
  let interps =
    Array.to_list
      (Array.mapi
         (fun i st ->
           { processor = i;
             steps = st.State.steps;
             sends = st.State.sends;
             cache_hits = Method_cache.hits st.State.mcache;
             cache_misses = Method_cache.misses st.State.mcache;
             ctx_reuses = Free_contexts.reuses st.State.free_ctxs;
             ctx_fresh = Free_contexts.fresh_allocations st.State.free_ctxs;
             switches = st.State.ctx_switches;
             gc_wait = (Machine.vp vm.Vm.machine i).Machine.gc_wait_cycles })
         vm.Vm.states)
  in
  let scavenge_workers =
    (* workers that never ran (all-zero rows) are elided *)
    List.filter
      (fun w ->
        w.copied_objects <> 0 || w.copied_words <> 0 || w.busy_cycles <> 0
        || w.idle_cycles <> 0)
      (Array.to_list
         (Array.mapi
            (fun i _ ->
              { worker = i;
                copied_objects = vm.Vm.par_copied_objects.(i);
                copied_words = vm.Vm.par_copied_words.(i);
                busy_cycles = vm.Vm.par_busy_cycles.(i);
                idle_cycles = vm.Vm.par_idle_cycles.(i) })
            vm.Vm.par_copied_words))
  in
  { locks;
    interps;
    scavenges = Heap.scavenge_count vm.Vm.heap;
    scavenge_cycles = vm.Vm.scavenge_cycles;
    par_scavenges = vm.Vm.par_scavenges;
    par_rounds = vm.Vm.par_rounds;
    par_coord_cycles = vm.Vm.par_coord_cycles;
    scavenge_workers;
    words_allocated = Heap.words_allocated vm.Vm.heap;
    words_copied = Heap.words_copied_total vm.Vm.heap;
    words_tenured = Heap.tenured_words_total vm.Vm.heap;
    remembered = Heap.remembered_count vm.Vm.heap;
    display_commands = Devices.display_commands sh.State.display;
    display_wait = Devices.display_producer_wait sh.State.display;
    input_polls = Devices.input_polls sh.State.input;
    total_cycles = Vm.cycles vm;
    major =
      (match vm.Vm.major with
       | None -> None
       | Some mj ->
           Some
             { major_cycles = Major.cycles_completed mj;
               major_slices = Major.slices mj;
               major_slice_cycles = Major.slice_cycles_total mj;
               major_max_slice = Major.max_slice mj;
               major_budget = Major.budget mj;
               major_overruns = Major.overruns mj;
               major_reclaimed_objects = Major.reclaimed_objects mj;
               major_reclaimed_words = Major.reclaimed_words mj;
               major_forced_completions = Major.forced_completions mj;
               major_forced_allocs = vm.Vm.major_forced_allocs;
               major_barrier_greys = Major.barrier_greys mj;
               major_alloc_marks = Major.alloc_marks mj;
               major_free_list_hits = Heap.free_list_hits vm.Vm.heap;
               major_free_reused_words = Heap.free_reused_words vm.Vm.heap;
               major_near_exhaustion = Major.near_exhaustion mj });
    steal =
      (let sched = sh.State.sched in
       { stealing = sched.Scheduler.strategy = Scheduler.Stealing;
         local_picks = Scheduler.local_picks sched;
         steals = Scheduler.steals sched;
         failed_steals = Scheduler.failed_steals sched;
         migrations = Scheduler.migrations sched;
         stolen_from = Array.to_list (Scheduler.stolen_from sched) });
    sanitizer_mode = Sanitizer.mode sh.State.sanitizer;
    violation_count = Sanitizer.violation_count sh.State.sanitizer;
    violations = Sanitizer.violations sh.State.sanitizer;
    crashes_delivered = vm.Vm.crashes_delivered;
    failovers = Scheduler.failovers sh.State.sched;
    ctx_abandons =
      Array.fold_left
        (fun n st -> n + Free_contexts.abandons st.State.free_ctxs)
        0 vm.Vm.states;
    degraded_scavenges = vm.Vm.degraded_scavenges;
    vp_fault_cycles =
      (let n = ref 0 in
       for i = 0 to Machine.processors vm.Vm.machine - 1 do
         n := !n + (Machine.vp vm.Vm.machine i).Machine.fault_cycles
       done;
       !n);
    lock_fault_spin =
      List.fold_left (fun n l -> n + Spinlock.fault_spin_cycles l) 0 vm.Vm.locks;
    lock_backoff =
      List.fold_left (fun n l -> n + Spinlock.backoff_cycles l) 0 vm.Vm.locks;
    lock_fault_stall =
      List.fold_left (fun n l -> n + Spinlock.fault_stall_cycles l) 0
        vm.Vm.locks;
    device_fault_stall = Devices.display_fault_stall_cycles sh.State.display }

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let print fmt r =
  Format.fprintf fmt "Instrumentation report (%d cycles = %.2f simulated s)@."
    r.total_cycles
    (float_of_int r.total_cycles /. 1_000_000.0);
  Format.fprintf fmt "@.Locks:@.";
  Format.fprintf fmt "  %-22s %12s %10s %7s %12s@." "resource" "acquisitions"
    "contended" "rate" "spin cycles";
  List.iter
    (fun l ->
      if l.enabled then
        Format.fprintf fmt "  %-22s %12d %10d %6.1f%% %12d@." l.lock_name
          l.acquisitions l.contended
          (pct l.contended l.acquisitions)
          l.spin_cycles
      else Format.fprintf fmt "  %-22s %12s@." l.lock_name "(disabled)")
    r.locks;
  Format.fprintf fmt "@.Interpreters:@.";
  Format.fprintf fmt "  %-4s %10s %9s %11s %10s %9s %9s@." "proc" "bytecodes"
    "sends" "cache-hit%" "ctx-reuse%" "switches" "gc-wait";
  List.iter
    (fun i ->
      Format.fprintf fmt "  %-4d %10d %9d %10.1f%% %9.1f%% %9d %9d@."
        i.processor i.steps i.sends
        (pct i.cache_hits (i.cache_hits + i.cache_misses))
        (pct i.ctx_reuses (i.ctx_reuses + i.ctx_fresh))
        i.switches i.gc_wait)
    r.interps;
  Format.fprintf fmt "@.Storage:@.";
  Format.fprintf fmt
    "  %d scavenges (%d cycles total); %d words allocated, %d copied, %d \
     tenured; %d remembered objects@."
    r.scavenges r.scavenge_cycles r.words_allocated r.words_copied
    r.words_tenured r.remembered;
  if r.par_scavenges > 0 then begin
    Format.fprintf fmt "@.Parallel scavenging:@.";
    Format.fprintf fmt
      "  %d parallel collections, %d grey rounds, %d coordination cycles@."
      r.par_scavenges r.par_rounds r.par_coord_cycles;
    Format.fprintf fmt "  %-6s %10s %10s %12s %12s %6s@." "worker" "objects"
      "words" "busy cycles" "idle cycles" "idle%";
    List.iter
      (fun w ->
        Format.fprintf fmt "  %-6d %10d %10d %12d %12d %5.1f%%@." w.worker
          w.copied_objects w.copied_words w.busy_cycles w.idle_cycles
          (pct w.idle_cycles (w.busy_cycles + w.idle_cycles)))
      r.scavenge_workers
  end;
  (match r.major with
   | None -> ()
   | Some m ->
       Format.fprintf fmt "@.Incremental old-space collection:@.";
       Format.fprintf fmt
         "  %d cycle(s) in %d slice(s); %d collector cycles total; max \
          slice %d vs budget %d; %d overrun(s)@."
         m.major_cycles m.major_slices m.major_slice_cycles m.major_max_slice
         m.major_budget m.major_overruns;
       Format.fprintf fmt
         "  reclaimed %d object(s), %d words; free-list hits %d (%d words \
          reused)@."
         m.major_reclaimed_objects m.major_reclaimed_words
         m.major_free_list_hits m.major_free_reused_words;
       Format.fprintf fmt
         "  barrier shaded %d, allocated black %d; %d forced completion(s), \
          %d allocation(s) saved from Image_full@."
         m.major_barrier_greys m.major_alloc_marks m.major_forced_completions
         m.major_forced_allocs;
       if m.major_near_exhaustion then
         Format.fprintf fmt
           "  WARNING: old space is over 90%% occupied even after \
            collection; the image needs a larger old space@.");
  if r.steal.stealing then begin
    Format.fprintf fmt "@.Work stealing:@.";
    Format.fprintf fmt
      "  %d local pick(s), %d steal(s), %d failed steal(s), %d migration(s)@."
      r.steal.local_picks r.steal.steals r.steal.failed_steals
      r.steal.migrations;
    Format.fprintf fmt "  stolen from:";
    List.iteri
      (fun i n -> Format.fprintf fmt " vp%d=%d" i n)
      r.steal.stolen_from;
    Format.fprintf fmt "@."
  end;
  if
    r.crashes_delivered + r.failovers + r.ctx_abandons + r.degraded_scavenges
    + r.vp_fault_cycles + r.lock_fault_spin + r.lock_backoff
    + r.lock_fault_stall + r.device_fault_stall
    > 0
  then begin
    Format.fprintf fmt "@.Fault recovery:@.";
    Format.fprintf fmt
      "  %d crash(es) delivered, %d failover(s), %d replicated-state \
       abandon(s), %d degraded scavenge(s)@."
      r.crashes_delivered r.failovers r.ctx_abandons r.degraded_scavenges;
    Format.fprintf fmt
      "  injected stalls: %d vp, %d lock-holder, %d device cycles; waiter \
       fault-spin %d, backoff %d cycles@."
      r.vp_fault_cycles r.lock_fault_stall r.device_fault_stall
      r.lock_fault_spin r.lock_backoff
  end;
  Format.fprintf fmt "Devices:@.";
  Format.fprintf fmt
    "  display: %d commands, %d cycles of producer wait; input: %d polls@."
    r.display_commands r.display_wait r.input_polls;
  match r.sanitizer_mode with
  | Sanitizer.Off -> ()
  | Sanitizer.Report | Sanitizer.Strict ->
      Format.fprintf fmt "Sanitizer:@.";
      if r.violation_count = 0 then
        Format.fprintf fmt "  no serialization violations@."
      else begin
        Format.fprintf fmt "  %d serialization violation(s):@."
          r.violation_count;
        List.iter (fun m -> Format.fprintf fmt "    %s@." m) r.violations
      end
