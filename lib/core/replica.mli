(** The replicated image cluster (E19).

    R simulated machines — each a full {!Vm} — execute the same durable
    command log of image-server requests ({!Cmdlog}).  The log's conflict
    relation partitions it into waves of pairwise-independent entries;
    within a wave each replica's worker Processes serve the requests on
    different virtual processors, while conflicting entries stay in log
    order because they land in different waves.  Wave boundaries are the
    cluster's quiescent points: fingerprints, checkpoints and injected
    replica crashes ({!Fault.Replica_crash} at {!Fault.Log_entry}) all
    happen there, so a crash always leaves a clean prefix of applied
    entries.

    A crashed replica rejoins by restoring the newest usable checkpoint
    ({!Snapshot}) into a freshly-bootstrapped skeleton VM and replaying
    the log suffix; corrupt checkpoints are rejected by the loader and
    the rejoin falls back to the previous one.  The divergence detector
    compares every replica's per-boundary fingerprint — a census of the
    application state under stable roots, mixed with an order-sensitive
    shard digest — against a non-replicated reference run and against the
    other replicas. *)

exception Cluster_error of string

(** {2 Building blocks} *)

(** A bootstrapped cluster machine: VM, rooted pool-semaphore cell, and
    its served-request count. *)
type node = {
  vm : Vm.t;
  pool : Oop.t ref;
  mutable completed : int;
}

(** Bootstrap a fresh machine: kernel image, cluster classes, shard
    array, [slots] worker Processes parked on the pool semaphore. *)
val build_node : slots:int -> shards:int -> node

(** Deliver one wave of pairwise-independent entries and run the machine
    back to quiescence.  [skip] drops entries (the deliberately-divergent
    configuration). *)
val apply_wave : ?skip:(Cmdlog.entry -> bool) -> node -> Cmdlog.entry list -> unit

(** The replica fingerprint: census shape under {!Explorer.stable_roots}
    / {!Explorer.schedule_dependent} / {!Explorer.stable_class_key},
    mixed with the order-sensitive shard value digest.  Comparable across
    independently-bootstrapped images. *)
val fingerprint_of : Vm.t -> int

val capture_registers : Vm.t -> Snapshot.registers

(** Install checkpointed host-side registers and flush every cache that
    points into the replaced memory (method caches, free contexts,
    decoded contexts) — the processor-crash discipline. *)
val restore_registers : Vm.t -> Snapshot.registers -> unit

(** {2 The cluster} *)

type scenario =
  | Torn_checkpoint  (** the crash tears the victim's newest checkpoint *)
  | Crash_mid_replay  (** the victim dies again halfway through replay *)
  | Double_crash  (** the second fault targets the same replica again *)

val scenario_name : scenario -> string

type params = {
  replicas : int;
  requests : int;
  sessions : int;  (** <= 16 *)
  shards : int;  (** <= 16 *)
  slots : int;  (** worker Processes per replica = max wave width *)
  checkpoint_every : int;  (** log entries between checkpoints *)
  log_seed : int;
  crash_seed : int option;  (** arms the Replica_crash injector *)
  outage_waves : int;  (** boundaries a crashed replica stays down *)
  skip_lsn : int option;
      (** deliberately-divergent config: replica 0 drops this entry *)
  scenario : scenario option;
  dir : string option;  (** checkpoint/log directory; temp when absent *)
}

val default_params : params

type outcome = {
  entries : int;
  waves : int;
  replicas : int;
  crashes : int;
  rejoins : int;
  fallbacks : int;  (** checkpoints rejected as unusable during rejoins *)
  served : int;  (** wave entries executed by live replicas *)
  missed : int;  (** entries applied while some replica was down *)
  max_rejoin_lag : int;  (** largest log suffix a rejoin replayed *)
  availability_permil : int;  (** served / (entries * replicas) *)
  divergences : string list;
  final_fingerprint : int;  (** the reference run's *)
  converged : bool;  (** every replica's final fingerprint matches it *)
  fault_plan : Fault.plan;
  log_path : string;
  dir : string;
}

(** Run the cluster over a freshly generated (and durably round-tripped)
    command log.  [log] receives progress lines. *)
val run : ?log:(string -> unit) -> params -> outcome

val pp : Format.formatter -> outcome -> unit
