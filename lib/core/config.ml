(* Configuration of the multiprocessor adaptation strategies.

   Each shared resource the paper identifies carries its strategy here, so
   a VM can be assembled as baseline Berkeley Smalltalk (single-threaded,
   no synchronization at all), as Multiprocessor Smalltalk with the
   published strategy assignment (Table 3), or as any of the ablation
   variants the paper discusses:

   - the method cache serialized with a shared lock (the configuration the
     paper found "much too slow") versus replicated per processor;
   - the free-context list serialized versus replicated (the 160% -> 65%
     improvement);
   - allocation serialized (published MS) versus a replicated new-object
     space (the improvement the paper proposes in section 4);
   - running Processes removed from the ready queue (BS behaviour) versus
     kept in it (the MS reorganization). *)

type cache_strategy = Cache_replicated | Cache_shared_locked
type context_strategy = Ctx_replicated | Ctx_shared_locked | Ctx_disabled
type alloc_strategy = Alloc_serialized | Alloc_replicated_eden

(* E16: the ready queue serialized behind the single scheduler lock
   (published MS) versus replicated into per-processor deques with work
   stealing. *)
type scheduler_strategy = Sched_locked | Sched_stealing

(* E17: how the engine finds the next processor to step.  [Engine_scan]
   rescans every VP per event and re-steps idle processors every few
   quanta (the original design, kept as the differential-oracle
   reference).  [Engine_calendar] keeps runnable VPs in a pending-heap
   keyed by clock, parks idle VPs until a wakeup event (ready work,
   input, timer) and batches uncontended bytecodes per engine event. *)
type engine_strategy = Engine_scan | Engine_calendar

type t = {
  processors : int;
  locks_enabled : bool;          (* false: baseline BS, no synchronization *)
  method_cache : cache_strategy;
  free_contexts : context_strategy;
  allocation : alloc_strategy;
  scheduler : scheduler_strategy;  (* E16: locked queue vs work stealing *)
  engine : engine_strategy;        (* E17: scan loop vs event calendar *)
  keep_running_in_queue : bool;  (* the MS reorganization *)
  old_words : int;
  eden_words : int;              (* the paper's s: 80 KB by default *)
  survivor_words : int;
  tenure_age : int;
  (* section 3.1: "it may be possible to apply multiple processors to the
     garbage collection task" — scavenge work parallelised over this many
     processors (1 = the published MS) *)
  scavenge_workers : int;
  cost : Cost_model.t;
  (* serialization checking: Off for production runs; Report accumulates
     violations into the instrumentation report; Strict raises *)
  sanitize : Sanitizer.mode;
  trace_capacity : int;          (* event-trace ring size *)
  (* fault injection for the schedule explorer's self-check: a shared
     free-context list whose take/give skip the lock bracket — the
     guarded-mutation bug the sanitizer must catch *)
  debug_skip_ctx_lock : bool;
  (* the same self-check idea for E16: deque operations run outside their
     lock brackets, so the sanitizer sees unguarded steal-path mutations *)
  debug_unlocked_steal : bool;
  (* spin watchdog, in Delay quanta: a contended acquire that would wait
     more than [watchdog_quanta] quanta raises Fault.Deadlock_suspected
     instead of spinning forever; 0 (the default everywhere) disables it
     and leaves the lock timeline bit-identical to the seed.
     [backoff_quanta] is the number of fixed-interval retries before the
     retry interval starts doubling; 0 keeps the fixed spin. *)
  watchdog_quanta : int;
  backoff_quanta : int;
  (* E18: the incremental old-space mark-sweep collector.  When enabled,
     bounded mark/sweep slices run at step boundaries, each charged at
     most [major_budget] cycles; [Image_full] becomes a last resort after
     a forced cycle completion. *)
  major_enabled : bool;
  major_budget : int;
  (* self-check for the schedule explorer: the write barrier is replaced
     by a probe that reports (instead of shading) every old-pointer
     store made while marking is in flight — the sanitizer must catch
     the broken configuration deterministically *)
  debug_skip_major_barrier : bool;
}

(* 80 KB eden as in the paper (section 3.1), expressed in 8-byte words. *)
let default_eden_words = 80 * 1024 / 8

let baseline_bs ?(cost = Cost_model.firefly) () = {
  processors = 1;
  locks_enabled = false;
  method_cache = Cache_shared_locked;   (* one interpreter, lock disabled *)
  free_contexts = Ctx_shared_locked;
  allocation = Alloc_serialized;
  scheduler = Sched_locked;
  engine = Engine_scan;
  keep_running_in_queue = false;        (* BS removes the running Process *)
  old_words = 2 * 1024 * 1024;
  eden_words = default_eden_words;
  survivor_words = 4 * 1024;
  tenure_age = 4;
  scavenge_workers = 1;
  cost;
  sanitize = Sanitizer.Off;
  trace_capacity = 4096;
  debug_skip_ctx_lock = false;
  debug_unlocked_steal = false;
  watchdog_quanta = 0;
  backoff_quanta = 0;
  major_enabled = false;
  major_budget = 25_000;
  debug_skip_major_barrier = false;
}

(* Multiprocessor Smalltalk as published: serialization for allocation,
   GC, entry tables, scheduling and I/O; replication for the interpreters,
   method caches and free-context lists; the scheduler reorganization. *)
let ms ?(processors = 5) ?(cost = Cost_model.firefly) () = {
  processors;
  locks_enabled = true;
  method_cache = Cache_replicated;
  free_contexts = Ctx_replicated;
  allocation = Alloc_serialized;
  scheduler = Sched_locked;
  engine = Engine_scan;
  keep_running_in_queue = true;
  old_words = 2 * 1024 * 1024;
  eden_words = default_eden_words;
  survivor_words = 4 * 1024;
  tenure_age = 4;
  scavenge_workers = 1;
  cost;
  sanitize = Sanitizer.Off;
  trace_capacity = 4096;
  debug_skip_ctx_lock = false;
  debug_unlocked_steal = false;
  watchdog_quanta = 0;
  backoff_quanta = 0;
  major_enabled = false;
  major_budget = 25_000;
  debug_skip_major_barrier = false;
}

(* A fast uniform-cost configuration for unit tests. *)
let testing ?(processors = 1) () =
  let base =
    if processors = 1 then baseline_bs ~cost:Cost_model.uniform ()
    else ms ~processors ~cost:Cost_model.uniform ()
  in
  { base with old_words = 512 * 1024; eden_words = 8 * 1024;
              survivor_words = 2 * 1024 }
