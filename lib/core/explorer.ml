(* Whole-VM schedule exploration.

   {!Explore} owns the generic machinery (decisions, PRNG, replay,
   shrinking); this module supplies the world to run them in: build a
   VM, install the policy, evaluate a deterministic workload against
   busy background Processes, and extract the observables a correct
   schedule may not change.

   The observables are chosen for schedule invariance.  The result and
   the transcript are what the program computes; the census counts the
   objects reachable from stable roots (globals, specials, the result) —
   unlike whole-heap statistics, which legitimately vary with scavenge
   timing, per-processor recycling and process migration.  On top of the
   oracle, the strict sanitizer is armed throughout and the scheduler's
   invariants are re-checked after the run. *)

type setup = {
  config : Config.t;
  busy : int;
  source : string;
}

(* A deterministic workload: allocates Points and Arrays (the allocation
   lock), sends messages (method caches, free contexts), writes the
   transcript, and yields control often enough that forced preemptions
   and jitter have interleavings to shuffle. *)
let workload_source ~iterations =
  Printf.sprintf
    "| s p a | s := 0.\n\
     1 to: %d do: [:i |\n\
    \    p := Point x: i y: i + 1.\n\
    \    a := Array new: 8.\n\
    \    a at: 1 put: p.\n\
    \    s := s + p x + p y + i printString size.\n\
    \    i \\\\ 16 = 0 ifTrue: [Transcript show: 'x']].\n\
     s"
    iterations

let make_setup ?(processors = 5) ?(quick = false) tweak =
  let config =
    tweak { (Config.ms ~processors ()) with Config.sanitize = Sanitizer.Strict }
  in
  { config;
    busy = max 1 (processors - 1);
    source = workload_source ~iterations:(if quick then 24 else 60) }

let ms_setup ?processors ?quick () = make_setup ?processors ?quick Fun.id

let broken_unlocked_setup ?processors ?quick () =
  make_setup ?processors ?quick (fun c ->
      { c with Config.locks_enabled = false })

let broken_ctx_setup ?processors ?quick () =
  make_setup ?processors ?quick (fun c ->
      { c with
        Config.free_contexts = Config.Ctx_shared_locked;
        Config.debug_skip_ctx_lock = true })

(* MS on the work-stealing scheduler (E16).  Explored against a locked
   reference, the oracle is differential: any stealing run that computes
   a different result, transcript or census than the serialized queue is
   a steal-protocol bug. *)
let stealing_setup ?processors ?quick () =
  make_setup ?processors ?quick (fun c ->
      { c with Config.scheduler = Config.Sched_stealing })

(* MS on the event-calendar engine (E17).  Like [stealing_setup], the
   oracle is differential against a scan-engine reference: parking idle
   processors changes lock timelines and exact cycle counts, but a
   calendar run computing a different result, transcript or census than
   the scan engine is an engine bug. *)
let calendar_setup ?processors ?quick () =
  make_setup ?processors ?quick (fun c ->
      { c with Config.engine = Config.Engine_calendar })

(* The stealing scheduler with its deque-lock brackets removed: every
   deque mutation is unguarded, which the strict sanitizer must catch on
   the very first pick of any seed. *)
let broken_steal_setup ?processors ?quick () =
  make_setup ?processors ?quick (fun c ->
      { c with
        Config.scheduler = Config.Sched_stealing;
        Config.debug_unlocked_steal = true })

(* Aggressive-GC variants for the incremental old-space collector (E18).
   The standard workload barely tenures, so it would leave the collector
   idle and the oracle vacuous; this one keeps a rotating window of
   arrays live across scavenges — with a one-scavenge tenure age and a
   tiny eden most of the churn tenures and then dies in old space, so
   cycles start and sweep real garbage while the program runs. *)
let gc_workload_source ~iterations =
  Printf.sprintf
    "| keep s | keep := Array new: 64. s := 0.\n\
     1 to: %d do: [:i |\n\
    \    keep at: i \\\\ 64 + 1 put: (Array new: 16).\n\
    \    s := s + i \\\\ 1000.\n\
    \    i \\\\ 32 = 0 ifTrue: [Transcript show: 'g']].\n\
     s"
    iterations

let make_gc_setup ?(processors = 5) ?(quick = false) tweak =
  let config =
    tweak
      { (Config.ms ~processors ()) with
        Config.sanitize = Sanitizer.Strict;
        eden_words = 2048;
        survivor_words = 1024;
        tenure_age = 1;
        (* roomy enough that the collector-free reference side of the
           differential also finishes the workload *)
        old_words = (if quick then 128 else 192) * 1024 }
  in
  { config;
    busy = max 1 (processors - 1);
    source = gc_workload_source ~iterations:(if quick then 1000 else 2000) }

(* Explored against [major_reference_setup], the oracle is differential:
   collector slices perturb lock timelines and clock totals, but
   mark-sweep never moves or frees a reachable object, so a collector
   run computing a different result, transcript or census than the
   collector-free reference is a collector bug.

   The default budget is kept: root scans are atomic within a slice
   (root cells live on the OCaml side, where stores are unbarriered, so
   the termination rescan cannot be split), and under firefly costs the
   image's root scan runs ~9K cycles — any budget whose four-budget
   sanitizer ceiling sits below that trips on the first slice.  The
   workload is long enough for a whole cycle to complete under the
   slice pacing. *)
let major_setup ?processors ?quick () =
  make_gc_setup ?processors ?quick (fun c ->
      { c with Config.major_enabled = true })

(* The collector-free run of the identical configuration: same GC
   pressure, no collector — both sides of the differential oracle. *)
let major_reference_setup ?processors ?quick () =
  make_gc_setup ?processors ?quick Fun.id

(* The collector with its write barrier replaced by the reporting probe
   ([Config.debug_skip_major_barrier]): the strict sanitizer must catch
   the first old-pointer store made while marking is in flight. *)
let broken_major_setup ?processors ?quick () =
  make_gc_setup ?processors ?quick (fun c ->
      { c with
        Config.major_enabled = true;
        debug_skip_major_barrier = true })

(* MS with the spin watchdog armed, for fault campaigns.  The default
   bound (64 Delay quanta = 9600 firefly cycles) sits far above any
   legitimate contention wait and above the injected transient-stall
   bounds, so only a lock held by a dead processor trips it. *)
let fault_setup ?processors ?quick ?(watchdog_quanta = 64)
    ?(backoff_quanta = 4) () =
  make_setup ?processors ?quick (fun c ->
      { c with Config.watchdog_quanta; Config.backoff_quanta })

type observables = {
  result : string;
  transcript : string;
  census : Verify.census;
}

type outcome = {
  obs : observables option;
  error : string option;
  violations : int;
  schedule : Explore.schedule;
  queries : int;
  deadlock : Fault.deadlock_report option;
  fault_plan : Fault.plan;
}

(* Roots that exist at stable identities across runs of one program:
   the specials and every global Association. *)
let stable_roots vm =
  let u = vm.Vm.u in
  let globals =
    Hashtbl.fold (fun _ assoc acc -> assoc :: acc) u.Universe.globals []
  in
  u.Universe.nil :: u.Universe.true_ :: u.Universe.false_
  :: u.Universe.scheduler :: globals

(* Scheduler plumbing is reachable from the "Processor" global but is
   not schedule-invariant: where each background Process was preempted,
   the shape of its suspended context chain and how many iterations it
   completed all legitimately differ between interleavings.  The census
   stops at those classes and compares only program-level data. *)
let schedule_dependent vm =
  let u = vm.Vm.u in
  let c = u.Universe.classes in
  let h = vm.Vm.heap in
  let cut =
    [ c.Universe.process; c.Universe.method_context; c.Universe.block_context;
      c.Universe.processor_scheduler; c.Universe.linked_list;
      c.Universe.semaphore ]
  in
  fun o -> List.exists (Oop.equal (Heap.class_at h (Oop.addr o))) cut

(* Class identity that survives snapshot/restore and holds across
   independently-bootstrapped images: the FNV-1a hash of the class's
   global name.  Census per-class keys default to class addresses, which
   are stable within one image but an accident of allocation order
   between images — exactly what the E19 replica fingerprints must not
   see.  Built by walking the sorted global names, so the mapping itself
   is deterministic; an unnamed class falls back to its address (none
   exist in the kernel image, and replica workloads only instantiate
   named classes). *)
let stable_class_key vm =
  let u = vm.Vm.u in
  let fnv s =
    let h = ref 0x811C9DC5 in
    String.iter
      (fun c -> h := ((!h lxor Char.code c) * 0x01000193) land max_int)
      s;
    !h
  in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun name ->
      match Universe.get_global u name with
      | Some v when Oop.is_ptr v -> Hashtbl.replace tbl v (fnv name)
      | _ -> ())
    (Universe.global_names u);
  fun cls ->
    match Hashtbl.find_opt tbl cls with
    | Some k -> k
    | None -> if Oop.is_ptr cls then Oop.addr cls else -1

(* Evaluate the workload under [driver]'s policy (or the default when
   [None]) and collect the outcome.  Every run gets a fresh VM: the
   simulation has no other state, so identical inputs give identical
   runs. *)
let run_driver ?faults setup driver =
  let vm = Vm.create setup.config in
  let san = Vm.sanitizer vm in
  (match driver with
   | Some d -> Machine.set_policy vm.Vm.machine (Some (Explore.policy d))
   | None -> ());
  (match faults with
   | Some inj -> Vm.set_fault_injector vm (Some inj)
   | None -> ());
  ignore (Workloads.spawn_busy vm setup.busy);
  let finish ?deadlock error obs =
    (* the run may have died mid-violation; disarm before post-mortem *)
    Sanitizer.set_armed san false;
    { obs;
      error;
      violations = Sanitizer.violation_count san;
      schedule =
        (match driver with Some d -> Explore.recorded d | None -> []);
      queries = (match driver with Some d -> Explore.queries d | None -> 0);
      deadlock;
      fault_plan =
        (match faults with Some inj -> Fault.injected inj | None -> []) }
  in
  match Vm.eval vm setup.source with
  | result ->
      (* a cycle still in flight leaves mid-sweep state the whole-heap
         check would misread — dead objects not yet swept still parse as
         allocated, and their fields point into already-swept holes.
         Complete it first; the checks below then see a cycle boundary *)
      (match vm.Vm.major with
       | Some mj when Major.phase mj <> Major.Idle ->
           ignore (Major.finish_cycle mj vm.Vm.shared.State.cm)
       | _ -> ());
      (* post-run checks run armed so problems count as violations *)
      let post_error =
        try
          Sanitizer.set_armed san true;
          Scheduler.check_invariants vm.Vm.shared.State.sched
            ~now:(Machine.max_clock vm.Vm.machine) ~vp:(-1);
          Sanitizer.set_armed san false;
          (match Verify.check vm.Vm.heap with
           | [] -> None
           | p :: _ ->
               Some (Format.asprintf "heap check: %a" Verify.pp_problem p))
        with Sanitizer.Violation msg ->
          Some msg
      in
      let census =
        Verify.census vm.Vm.heap ~stop:(schedule_dependent vm)
          ~roots:(result :: stable_roots vm)
      in
      finish post_error
        (Some
           { result = Vm.describe vm result;
             transcript = Vm.transcript vm;
             census })
  | exception Sanitizer.Violation msg -> finish (Some msg) None
  | exception Vm.Error msg -> finish (Some ("vm: " ^ msg)) None
  | exception State.Vm_error msg -> finish (Some ("vm: " ^ msg)) None
  | exception Fault.Deadlock_suspected r ->
      finish ~deadlock:r
        (Some ("deadlock suspected: " ^ Fault.describe_deadlock r))
        None
  | exception Fault.Fatal info -> finish (Some (Fault.describe_fatal info)) None

let reference setup = run_driver setup None

let run_seed ?params setup ~seed =
  run_driver setup (Some (Explore.seeded ?params ~seed ()))

let run_schedule setup sched =
  run_driver setup (Some (Explore.replay sched))

let check ~reference o =
  match o.error with
  | Some e -> Some e
  | None ->
      if o.violations > 0 then
        Some (Printf.sprintf "%d sanitizer violation(s)" o.violations)
      else begin
        match (reference.obs, o.obs) with
        | Some r, Some x ->
            if r.result <> x.result then
              Some
                (Printf.sprintf "result diverged: %S vs reference %S" x.result
                   r.result)
            else if r.transcript <> x.transcript then
              Some
                (Printf.sprintf "transcript diverged: %S vs reference %S"
                   x.transcript r.transcript)
            else if r.census <> x.census then
              Some
                (Format.asprintf "heap census diverged: %a vs reference %a"
                   Verify.pp_census x.census Verify.pp_census r.census)
            else None
        | None, Some _ | None, None -> Some "reference run itself failed"
        | Some _, None -> Some "run died without an error"
      end

type counterexample = {
  seed : int;
  what : string;
  original : Explore.schedule;
  shrunk : Explore.schedule;
  probes : int;
  reproduces : bool;
}

type report = {
  seeds_run : int;
  distinct : int;
  queries : int;
  perturbations : int;
  counterexamples : counterexample list;
}

let explore ?params ?(shrink_budget = 120) ?(first_seed = 0)
    ?(log = fun _ -> ()) ?reference_setup setup ~seeds =
  (* the observables are compared against [reference_setup] when given —
     e.g. stealing seeds checked against the locked scheduler's run — so
     the oracle can be differential across configurations, not just
     across schedules *)
  let ref_outcome =
    reference (Option.value reference_setup ~default:setup)
  in
  let fingerprints = Hashtbl.create 64 in
  let queries = ref 0 and perturbations = ref 0 in
  let counterexamples = ref [] in
  for seed = first_seed to first_seed + seeds - 1 do
    let o = run_seed ?params setup ~seed in
    queries := !queries + o.queries;
    perturbations := !perturbations + List.length o.schedule;
    Hashtbl.replace fingerprints (Explore.fingerprint o.schedule) ();
    match check ~reference:ref_outcome o with
    | None -> ()
    | Some what ->
        log
          (Printf.sprintf
             "seed %d fails after %d queries (%d perturbed): %s" seed
             o.queries (List.length o.schedule) what);
        let fails sched =
          check ~reference:ref_outcome (run_schedule setup sched) <> None
        in
        let shrunk, probes =
          Explore.shrink ~run:fails ~budget:shrink_budget o.schedule
        in
        (* the confirming replay also refreshes the failure description,
           which may have changed while shrinking *)
        let replayed = run_schedule setup shrunk in
        let what, reproduces =
          match check ~reference:ref_outcome replayed with
          | Some w -> (w, true)
          | None -> (what, false)
        in
        log
          (Printf.sprintf "  shrunk to %d decision(s) in %d replay(s): %s"
             (List.length shrunk) probes what);
        counterexamples :=
          { seed; what; original = o.schedule; shrunk; probes; reproduces }
          :: !counterexamples
  done;
  { seeds_run = seeds;
    distinct = Hashtbl.length fingerprints;
    queries = !queries;
    perturbations = !perturbations;
    counterexamples = List.rev !counterexamples }

(* --- systematic exploration (E20) -------------------------------------- *)

(* One execution for the systematic explorer: replay the forced prefix
   under a guided driver (which logs every preemption-point query, not
   just the perturbed ones) and flatten the outcome into the observable
   string the DFS dedupes on plus the oracle's verdict. *)
let run_guided setup sched =
  let d = Explore.guided sched in
  let o = run_driver setup (Some d) in
  (o, Explore.query_log d)

let obs_string o =
  match o.obs with
  | None -> "<died: " ^ Option.value o.error ~default:"?" ^ ">"
  | Some x ->
      Format.asprintf "%s|%s|%a" x.result x.transcript Verify.pp_census
        x.census

type dpor_counterexample = {
  dpor_what : string;
  dpor_original : Explore.schedule;
  dpor_shrunk : Explore.schedule;
  dpor_probes : int;
  dpor_reproduces : bool;
}

type dpor_report = {
  dpor_result : Explore.Dpor.result;
  dpor_counterexample : dpor_counterexample option;
      (* first failing schedule, shrunk and replay-confirmed *)
}

(* Systematically explore [setup]'s schedule space.  As with [explore],
   the oracle can be differential across configurations via
   [reference_setup].  The first failing schedule is shrunk and
   confirmed exactly like a seeded counterexample; the full failure list
   stays available in [dpor_result] (a broken config typically fails on
   the default schedule and on every reachable alternative). *)
let dpor ?mode ?max_branch ?max_flips ?budget ?defers ?preempts
    ?stop_on_failure ?(shrink_budget = 120) ?(log = fun _ -> ())
    ?reference_setup setup () =
  let ref_outcome =
    reference (Option.value reference_setup ~default:setup)
  in
  let run sched =
    let o, xlog = run_guided setup sched in
    { Explore.Dpor.xlog;
      obs = obs_string o;
      failure = check ~reference:ref_outcome o }
  in
  let result =
    Explore.Dpor.systematic ?mode ?max_branch ?max_flips ?budget ?defers
      ?preempts ?stop_on_failure ~log ~run ()
  in
  let counterexample =
    match result.Explore.Dpor.failures with
    | [] -> None
    | (sched, what) :: _ ->
        let fails s =
          check ~reference:ref_outcome (run_schedule setup s) <> None
        in
        let shrunk, probes =
          Explore.shrink ~run:fails ~budget:shrink_budget sched
        in
        let replayed = run_schedule setup shrunk in
        let what, reproduces =
          match check ~reference:ref_outcome replayed with
          | Some w -> (w, true)
          | None -> (what, false)
        in
        log
          (Printf.sprintf "first failure shrunk to %d decision(s) in %d \
                           replay(s): %s"
             (List.length shrunk) probes what);
        Some
          { dpor_what = what;
            dpor_original = sched;
            dpor_shrunk = shrunk;
            dpor_probes = probes;
            dpor_reproduces = reproduces }
  in
  { dpor_result = result; dpor_counterexample = counterexample }

(* --- fault campaigns --------------------------------------------------- *)

(* Run the default schedule under a fault injector (no scheduling
   policy installed; fault queries are counted independently, so a
   policy could be composed on top without renumbering either trace). *)
let run_faults setup inj = run_driver ~faults:inj setup None

type deadlock_hunt = {
  hunt_seeds : int;  (* seeds actually run *)
  found_seed : int option;
  report : Fault.deadlock_report option;
  original_plan : Fault.plan;
  shrunk_plan : Fault.plan;
  hunt_probes : int;  (* replays spent shrinking *)
  replay_matches : bool;
}

(* Hunt for a watchdog-detected deadlock: run lock-campaign seeds until
   one trips the spin watchdog, delta-debug its honoured fault plan down
   to a minimal plan that still produces a deadlock on the same lock
   with the same holder, then replay the minimal plan twice more — the
   refreshed report and the confirming replay must agree exactly, which
   is what makes a dumped plan file a faithful reproducer. *)
let hunt_deadlock ?(params = Fault.params_of_campaign Fault.Lock)
    ?(shrink_budget = 120) ?(first_seed = 0) ?(log = fun _ -> ()) setup
    ~seeds =
  let none ~tried =
    { hunt_seeds = tried; found_seed = None; report = None;
      original_plan = []; shrunk_plan = []; hunt_probes = 0;
      replay_matches = false }
  in
  let rec search seed =
    if seed >= first_seed + seeds then None
    else begin
      let o = run_faults setup (Fault.seeded ~params ~seed ()) in
      match o.deadlock with
      | Some r -> Some (seed, r, o.fault_plan)
      | None -> search (seed + 1)
    end
  in
  match search first_seed with
  | None -> none ~tried:seeds
  | Some (seed, r0, plan) ->
      log
        (Printf.sprintf "seed %d (%d fault(s)): %s" seed (List.length plan)
           (Fault.describe_deadlock r0));
      let same_deadlock p =
        match (run_faults setup (Fault.replay p)).deadlock with
        | Some r ->
            r.Fault.lock = r0.Fault.lock && r.Fault.holder = r0.Fault.holder
        | None -> false
      in
      let shrunk, probes =
        Fault.shrink ~run:same_deadlock ~budget:shrink_budget plan
      in
      (* refresh the report from the minimal plan, then confirm that an
         independent replay reproduces it bit for bit *)
      let refreshed = (run_faults setup (Fault.replay shrunk)).deadlock in
      let confirmed = (run_faults setup (Fault.replay shrunk)).deadlock in
      let matches =
        match (refreshed, confirmed) with
        | Some a, Some b -> a = b
        | _ -> false
      in
      log
        (Printf.sprintf "  shrunk to %d fault(s) in %d replay(s); replay %s"
           (List.length shrunk) probes
           (if matches then "reproduces the report exactly" else "DIVERGED"));
      { hunt_seeds = seed - first_seed + 1;
        found_seed = Some seed;
        report = (match refreshed with Some _ -> refreshed | None -> Some r0);
        original_plan = plan;
        shrunk_plan = shrunk;
        hunt_probes = probes;
        replay_matches = matches }
