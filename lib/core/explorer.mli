(** Driving the schedule explorer ({!Explore}) against whole VMs.

    One {!setup} names a configuration, a background load and a
    deterministic workload expression.  A run builds a fresh VM with the
    strict sanitizer armed, optionally installs an exploring or replaying
    scheduling policy, evaluates the workload, and collects the
    observables a correct schedule may not change: the result, the
    transcript, the census of the heap reachable from stable roots, a
    clean heap verification and clean scheduler invariants.

    {!explore} runs N seeds against the unperturbed reference run's
    observables; any divergence or sanitizer violation is shrunk to a
    minimal decision trace and re-replayed to confirm it reproduces. *)

type setup = {
  config : Config.t;
  busy : int;  (** busy background Processes competing for the locks *)
  source : string;  (** the watched workload expression *)
}

(** The published MS configuration (strict sanitizer): exploration must
    find nothing.  [quick] shortens the workload for smoke tests. *)
val ms_setup : ?processors:int -> ?quick:bool -> unit -> setup

(** Deliberately broken: locking disabled on several processors, so
    nothing serializes the shared resources.  Exploration must surface a
    sanitizer violation. *)
val broken_unlocked_setup : ?processors:int -> ?quick:bool -> unit -> setup

(** Deliberately broken: the shared free-context list with its lock
    bracket skipped ([Config.debug_skip_ctx_lock]).  Exploration must
    surface a guarded-mutation violation. *)
val broken_ctx_setup : ?processors:int -> ?quick:bool -> unit -> setup

(** MS on the work-stealing scheduler (E16).  Explored with a locked
    {!ms_setup} as [reference_setup], the oracle is differential: any
    stealing run computing different observables than the serialized
    queue is a steal-protocol bug. *)
val stealing_setup : ?processors:int -> ?quick:bool -> unit -> setup

(** MS on the event-calendar engine (E17).  Explored with a scan-engine
    {!ms_setup} as [reference_setup], the oracle is differential: any
    calendar run computing different observables than the scan engine is
    an engine bug. *)
val calendar_setup : ?processors:int -> ?quick:bool -> unit -> setup

(** Deliberately broken: the stealing scheduler with its deque-lock
    brackets removed ([Config.debug_unlocked_steal]).  The strict
    sanitizer must catch the first unguarded deque mutation of any
    seed. *)
val broken_steal_setup : ?processors:int -> ?quick:bool -> unit -> setup

(** MS under aggressive GC pressure (one-scavenge tenure age, tiny eden,
    a churn workload that tenures most of its garbage) with the
    incremental old-space collector running (E18).  Explored with
    {!major_reference_setup} as [reference_setup], the oracle is
    differential: a collector run computing different observables than
    the collector-free reference is a collector bug. *)
val major_setup : ?processors:int -> ?quick:bool -> unit -> setup

(** The collector-free side of {!major_setup}'s differential oracle:
    identical configuration and workload, collector disabled. *)
val major_reference_setup : ?processors:int -> ?quick:bool -> unit -> setup

(** Deliberately broken: the collector's write barrier replaced by the
    reporting probe ([Config.debug_skip_major_barrier]).  The strict
    sanitizer must catch the first old-pointer store made while marking
    is in flight. *)
val broken_major_setup : ?processors:int -> ?quick:bool -> unit -> setup

(** MS with the spin watchdog armed (default 64 Delay quanta, backoff
    after 4 retries), for fault campaigns: far above any legitimate
    contention wait, so only a lock held by a dead processor trips it. *)
val fault_setup :
  ?processors:int -> ?quick:bool -> ?watchdog_quanta:int ->
  ?backoff_quanta:int -> unit -> setup

(** Roots that exist at stable identities across runs of one program:
    the specials and every global Association. *)
val stable_roots : Vm.t -> Oop.t list

(** The census stop predicate that fences off scheduler plumbing —
    Process objects, suspended context chains, the run queues — whose
    shape legitimately varies with the interleaving. *)
val schedule_dependent : Vm.t -> Oop.t -> bool

(** Class identity that survives snapshot/restore and holds across
    independently-bootstrapped images: each named class maps to the
    FNV-1a hash of its global name (an unnamed class falls back to its
    address).  Pass as [Verify.census ~class_key] when censuses from
    different images are compared (E19). *)
val stable_class_key : Vm.t -> Oop.t -> int

(** What a schedule may not change. *)
type observables = {
  result : string;
  transcript : string;
  census : Verify.census;
}

type outcome = {
  obs : observables option;  (** [None] when the run died early *)
  error : string option;  (** sanitizer violation, deadlock, VM error *)
  violations : int;
  schedule : Explore.schedule;  (** perturbations applied (empty on replay) *)
  queries : int;  (** preemption-point queries answered *)
  deadlock : Fault.deadlock_report option;
      (** the spin watchdog's verdict, when it ended the run *)
  fault_plan : Fault.plan;  (** faults honoured (empty without an injector) *)
}

(** Run the unperturbed schedule (no policy installed). *)
val reference : setup -> outcome

(** Run one seeded exploration. *)
val run_seed : ?params:Explore.params -> setup -> seed:int -> outcome

(** Replay a recorded decision trace. *)
val run_schedule : setup -> Explore.schedule -> outcome

(** [check ~reference o] is [Some description] when [o] fails the
    differential oracle — an error, a sanitizer violation, or observables
    differing from the reference run's. *)
val check : reference:outcome -> outcome -> string option

type counterexample = {
  seed : int;
  what : string;  (** the oracle's description of the failure *)
  original : Explore.schedule;
  shrunk : Explore.schedule;
  probes : int;  (** replays spent shrinking *)
  reproduces : bool;  (** replaying [shrunk] fails the oracle again *)
}

type report = {
  seeds_run : int;
  distinct : int;  (** distinct perturbation schedules among the seeds *)
  queries : int;  (** preemption-point queries across all seeded runs *)
  perturbations : int;  (** non-default decisions across all seeded runs *)
  counterexamples : counterexample list;
}

(** Explore [seeds] seeds starting at [first_seed] (default 0).  Each
    failing seed is shrunk (bounded by [shrink_budget] replays, default
    120) and confirmed.  [log] receives one progress line per failure.
    When [reference_setup] is given, the reference observables come from
    an unperturbed run of {e that} setup instead of [setup] — a
    differential oracle across configurations (e.g. stealing vs
    locked). *)
val explore :
  ?params:Explore.params -> ?shrink_budget:int -> ?first_seed:int ->
  ?log:(string -> unit) -> ?reference_setup:setup -> setup -> seeds:int ->
  report

(** {2 Systematic exploration (E20)} *)

(** Replay the forced prefix [sched] under a {!Explore.guided} driver and
    return the outcome together with the full preemption-point query log
    (what the systematic explorer branches on). *)
val run_guided : setup -> Explore.schedule -> outcome * Explore.qinfo array

type dpor_counterexample = {
  dpor_what : string;
  dpor_original : Explore.schedule;
  dpor_shrunk : Explore.schedule;
  dpor_probes : int;
  dpor_reproduces : bool;
}

type dpor_report = {
  dpor_result : Explore.Dpor.result;
  dpor_counterexample : dpor_counterexample option;
      (** the first failing schedule, shrunk and replay-confirmed *)
}

(** Systematically explore [setup]'s schedule space with
    {!Explore.Dpor.systematic}, the differential oracle supplying each
    execution's observable string and failure verdict.  Parameters pass
    through to [systematic]; [reference_setup] works as in {!explore}.
    The first failing schedule (if any) is shrunk within [shrink_budget]
    replays and confirmed; the full failure list remains available in
    [dpor_result]. *)
val dpor :
  ?mode:Explore.Dpor.mode -> ?max_branch:int -> ?max_flips:int ->
  ?budget:int -> ?defers:bool -> ?preempts:bool -> ?stop_on_failure:bool ->
  ?shrink_budget:int -> ?log:(string -> unit) -> ?reference_setup:setup ->
  setup -> unit -> dpor_report

(** Run the default schedule under a fault injector (no scheduling
    policy). *)
val run_faults : setup -> Fault.t -> outcome

type deadlock_hunt = {
  hunt_seeds : int;  (** seeds actually run *)
  found_seed : int option;
  report : Fault.deadlock_report option;
  original_plan : Fault.plan;
  shrunk_plan : Fault.plan;
  hunt_probes : int;  (** replays spent shrinking *)
  replay_matches : bool;
      (** two independent replays of [shrunk_plan] reproduce the same
          deadlock report bit for bit *)
}

(** Hunt for a watchdog-detected deadlock over lock-campaign seeds (the
    setup should arm the watchdog — see {!fault_setup}), shrink the
    first hit's fault plan to a minimal reproducer, and confirm it. *)
val hunt_deadlock :
  ?params:Fault.params -> ?shrink_budget:int -> ?first_seed:int ->
  ?log:(string -> unit) -> setup -> seeds:int -> deadlock_hunt
