(* E19: the replicated image cluster.

   The engine is deterministic — a fault-free run is bit-identical given
   the same inputs — which is exactly the property state-machine
   replication needs.  A cluster is R simulated machines (each a full
   {!Vm} with its own heap, scheduler and interpreters) executing the
   same durable command log of image-server requests ({!Cmdlog}).  The
   log's conflict relation (same session or same shard) partitions it
   into waves of pairwise-independent entries; within a wave the
   dispatcher delivers every entry at the same virtual instant and lets
   each replica's worker Processes serve them on different virtual
   processors — the early-scheduling form of parallel SMR — while
   conflicting entries stay in log order because they sit in different
   waves.  Wave boundaries are where the cluster is quiescent (every
   worker parked back on the pool semaphore, calendar drained), so they
   are the only places where fingerprints are taken, checkpoints are
   written and replica crashes are delivered: what a crash leaves behind
   is always a prefix of applied entries, never a half-applied command.

   Correctness is enforced, not assumed.  The replica fingerprint
   combines two views of the application state reachable from the image
   globals: the census shape (objects per class under {!Explorer}'s
   stable roots, stop predicate and name-keyed classes — each applied
   request links one more Point into its shard's chain, so a dropped
   entry is a visible shape change) and an order-sensitive value digest
   (each shard accumulates [(total * 31 + rid) \\ 1000003], so two
   conflicting entries applied out of order are a visible value change).
   A non-replicated reference run applies the log one entry at a time
   and records the fingerprint after every entry; the divergence
   detector compares every replica against the reference — and replicas
   against each other — at every boundary.

   A replica killed by the fault injector ({!Fault.Replica_crash},
   sampled at {!Fault.Log_entry} boundary queries) rejoins by restoring
   the newest usable checkpoint ({!Snapshot}) into a freshly-bootstrapped
   skeleton VM and replaying the log suffix; corrupt or truncated
   checkpoints are rejected by the loader and the rejoin falls back to
   the previous one, ultimately the entries=0 checkpoint every replica
   writes at start.  Restore must reproduce the checkpoint's own header
   fingerprint and replay must walk through the replica's recorded
   pre-crash fingerprints — both are checked, not trusted. *)

exception Cluster_error of string

let cluster_error fmt =
  Printf.ksprintf (fun m -> raise (Cluster_error m)) fmt

let () =
  Printexc.register_printer (function
    | Cluster_error m -> Some (Printf.sprintf "cluster error: %s" m)
    | _ -> None)

(* --- the replica workload ---

   Core-local application classes (no Transcript, no Display: those
   devices buffer into process-global state shared across VMs, which a
   multi-VM cluster must not touch).  Each shard keeps an order-
   sensitive integer accumulator and a chain of Points threaded through
   [y]; both are reachable from the ClusterShards global, so the census
   and the digest see exactly the applied-request history. *)

let cluster_classes =
  {st|
CLASS ClusterShard SUPER Object IVARS total chain
METHODS ClusterShard
setUp
    total := 0.
    chain := nil
!
apply: code
    total := (total * 31 + code) \\ 1000003.
    chain := Point x: code y: chain.
    ^total
!
CLASS ClusterApp SUPER Object IVARS pad
METHODS ClusterApp
serveLoop
    | rid shard |
    [true] whileTrue: [
        ClusterPool wait.
        rid := Mirror nextRequest.
        rid >= 0 ifTrue: [
            shard := rid // 16 \\ 16.
            (ClusterShards at: shard + 1) apply: rid.
            Mirror requestDone: rid]]
!
|st}

let setup_source ~shards =
  Printf.sprintf
    "| i sh |\n\
     ClusterPool := Semaphore new.\n\
     ClusterShards := Array new: %d.\n\
     i := 1.\n\
     [i <= %d] whileTrue: [\n\
    \    sh := ClusterShard new.\n\
    \    sh setUp.\n\
    \    ClusterShards at: i put: sh.\n\
    \    i := i + 1].\n\
     0"
    shards shards

(* The request id packs the whole entry so the Smalltalk side can route
   by shard and accumulate an order-sensitive code: sessions, shards and
   kinds each fit in 4 bits, the lsn takes the rest. *)
let rid_of (e : Cmdlog.entry) =
  (e.Cmdlog.lsn * 4096) + (e.Cmdlog.session * 256) + (e.Cmdlog.shard * 16)
  + e.Cmdlog.kind

(* --- one simulated machine of the cluster --- *)

type node = {
  vm : Vm.t;
  pool : Oop.t ref;  (* rooted cell holding the ClusterPool semaphore *)
  mutable completed : int;  (* requests served over this VM's lifetime *)
}

let build_node ~slots ~shards =
  let vm = Vm.create (Config.ms ~processors:slots ()) in
  Vm.load_classes vm cluster_classes;
  ignore (Vm.eval vm (setup_source ~shards));
  for w = 1 to slots do
    ignore
      (Vm.spawn vm ~priority:5
         ~name:(Printf.sprintf "serve-%d" w)
         "ClusterApp new serveLoop")
  done;
  let sh = vm.Vm.shared in
  sh.State.request_mailbox <- Some (Mailbox.make "cluster");
  let node = { vm; pool = ref Oop.sentinel; completed = 0 } in
  sh.State.on_request_done <-
    (fun ~rid:_ ~now:_ -> node.completed <- node.completed + 1);
  (* run the fresh workers onto their pool wait: the quiescent baseline
     every wave starts from *)
  (match Vm.run vm with
   | Vm.Deadlock -> ()
   | Vm.Finished _ | Vm.Cycle_limit ->
       cluster_error "replica bootstrap did not quiesce");
  (match Universe.get_global vm.Vm.u "ClusterPool" with
   | Some sem -> node.pool := sem
   | None -> cluster_error "ClusterPool global missing after setup");
  Heap.add_root vm.Vm.heap node.pool;
  node

(* Deliver one wave: every entry's request rides the mailbox and one
   pool signal per request fires through the calendar, all at the same
   virtual instant; the run then executes the wave to quiescence.  The
   entries are pairwise-independent by construction, so which worker
   serves which request cannot change the outcome. *)
let apply_wave ?(skip = fun _ -> false) node wave =
  let vm = node.vm in
  let sh = vm.Vm.shared in
  let mbox =
    match sh.State.request_mailbox with
    | Some m -> m
    | None -> cluster_error "replica has no request mailbox"
  in
  let now = Machine.max_clock vm.Vm.machine + 1 in
  let sent = ref 0 in
  List.iter
    (fun e ->
      if not (skip e) then begin
        incr sent;
        Mailbox.send mbox ~now (rid_of e);
        let cell = ref !(node.pool) in
        Heap.add_root vm.Vm.heap cell;
        Calendar.add sh.State.timers ~key:now (State.Signal_sem cell)
      end)
    wave;
  let before = node.completed in
  (match Vm.run vm with
   | Vm.Deadlock -> ()
   | Vm.Finished _ | Vm.Cycle_limit ->
       cluster_error "replica did not quiesce after a wave");
  if node.completed - before <> !sent then
    cluster_error "wave lost requests: %d delivered, %d completed" !sent
      (node.completed - before)

(* --- fingerprints --- *)

let mix h d = ((h lxor d) * 0x01000193) land max_int

(* The order-sensitive value digest: fold the shard accumulators in
   shard order.  Read host-side straight out of the heap — no eval, no
   allocation, no perturbation of the state being fingerprinted. *)
let digest vm =
  match Universe.get_global vm.Vm.u "ClusterShards" with
  | None -> cluster_error "ClusterShards global missing"
  | Some arr ->
      let h = vm.Vm.heap in
      let n = Heap.slots h (Oop.addr arr) in
      let d = ref 0x811C9DC5 in
      for i = 0 to n - 1 do
        let shard = Heap.get h arr i in
        let total = Heap.get h shard 0 in
        let v = if Oop.is_small total then Oop.small_val total else -1 in
        d := mix !d v
      done;
      !d

let fingerprint_of vm =
  let census =
    Verify.census vm.Vm.heap
      ~stop:(Explorer.schedule_dependent vm)
      ~class_key:(Explorer.stable_class_key vm)
      ~roots:(Explorer.stable_roots vm)
  in
  mix (Verify.fingerprint census) (digest vm)

(* --- host-side registers for checkpoints ---

   Everything a wave boundary leaves outside the heap: processor clocks,
   poll/resched deadlines, the active-context/process root cells, the
   scheduler's running slots and its round-robin wake cursor.  At a
   boundary most of these are at their parked values, but the clocks
   carry the replica's virtual time and the wake cursor steers future
   scheduling — restoring them keeps a rejoined replica on the same
   deterministic path as an uncrashed one. *)

let capture_registers vm =
  let m = vm.Vm.machine in
  let clocks =
    Array.init (Machine.processors m) (fun i ->
        (Machine.vp m i).Machine.clock)
  in
  let states = vm.Vm.states in
  let untils =
    Array.init
      (2 * Array.length states)
      (fun k ->
        let st = states.(k / 2) in
        if k mod 2 = 0 then st.State.until_poll else st.State.until_sched)
  in
  let actives =
    Array.init
      (2 * Array.length states)
      (fun k ->
        let st = states.(k / 2) in
        if k mod 2 = 0 then !(st.State.active_ctx)
        else !(st.State.active_process))
  in
  let sched = vm.Vm.shared.State.sched in
  [ ("clocks", clocks);
    ("untils", untils);
    ("actives", actives);
    ("running", Array.copy sched.Scheduler.running);
    ("sched", [| sched.Scheduler.next_home |]) ]

let restore_registers vm regs =
  let find key =
    match List.assoc_opt key regs with
    | Some a -> a
    | None -> cluster_error "checkpoint registers missing %S" key
  in
  let m = vm.Vm.machine in
  let clocks = find "clocks" in
  if Array.length clocks <> Machine.processors m then
    cluster_error "checkpoint processor count differs";
  Array.iteri (fun i c -> (Machine.vp m i).Machine.clock <- c) clocks;
  let states = vm.Vm.states in
  let untils = find "untils" and actives = find "actives" in
  if Array.length untils <> 2 * Array.length states
     || Array.length actives <> 2 * Array.length states
  then cluster_error "checkpoint interpreter count differs";
  Array.iteri
    (fun i st ->
      st.State.until_poll <- untils.(2 * i);
      st.State.until_sched <- untils.((2 * i) + 1);
      st.State.active_ctx := actives.(2 * i);
      st.State.active_process := actives.((2 * i) + 1))
    states;
  let sched = vm.Vm.shared.State.sched in
  let running = find "running" in
  if Array.length running <> Array.length sched.Scheduler.running then
    cluster_error "checkpoint scheduler width differs";
  Array.blit running 0 sched.Scheduler.running 0 (Array.length running);
  sched.Scheduler.next_home <- (find "sched").(0);
  (* host caches pointing into the replaced memory are stale: the same
     flush discipline an injected processor crash uses *)
  Array.iter
    (fun st ->
      Method_cache.flush st.State.mcache;
      Free_contexts.abandon st.State.free_ctxs;
      State.invalidate_cache st)
    states

(* --- checkpoints --- *)

let dir_counter = ref 0

let fresh_dir ?(base = Filename.get_temp_dir_name ()) () =
  let rec go () =
    incr dir_counter;
    let d =
      Filename.concat base (Printf.sprintf "mst-cluster-%d" !dir_counter)
    in
    if Sys.file_exists d then go () else d
  in
  let d = go () in
  Sys.mkdir d 0o755;
  d

let ensure_dir d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d && not (Sys.file_exists parent) then
      Sys.mkdir parent 0o755;
    Sys.mkdir d 0o755
  end

(* Tear the tail off a file: what a replica dying mid-checkpoint-write
   leaves behind (the torn-checkpoint fault scenario). *)
let truncate_file path =
  let content =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (String.sub content 0 (String.length content / 2)))

(* --- the cluster --- *)

type scenario = Torn_checkpoint | Crash_mid_replay | Double_crash

let scenario_name = function
  | Torn_checkpoint -> "torn-checkpoint"
  | Crash_mid_replay -> "crash-mid-replay"
  | Double_crash -> "double-crash"

type params = {
  replicas : int;
  requests : int;
  sessions : int;  (* <= 16 *)
  shards : int;  (* <= 16 *)
  slots : int;  (* worker Processes per replica = max wave width *)
  checkpoint_every : int;  (* log entries between checkpoints *)
  log_seed : int;
  crash_seed : int option;  (* arms the Replica_crash injector *)
  outage_waves : int;  (* boundaries a crashed replica stays down *)
  skip_lsn : int option;
      (* deliberately-divergent config: replica 0 drops this entry *)
  scenario : scenario option;
  dir : string option;  (* checkpoint/log directory; temp when absent *)
}

let default_params =
  { replicas = 3; requests = 24; sessions = 4; shards = 4; slots = 3;
    checkpoint_every = 8; log_seed = 1; crash_seed = None; outage_waves = 2;
    skip_lsn = None; scenario = None; dir = None }

type replica = {
  idx : int;
  mutable node : node;
  mutable applied : int;  (* log entries this replica has executed *)
  mutable alive : bool;
  mutable down_since : int;  (* wave index of the crash *)
  mutable rejoins : int;
  mutable fps : (int * int) list;  (* (applied, fingerprint), newest first *)
  mutable ckpts : (int * string) list;  (* (entries, path), newest first *)
}

type outcome = {
  entries : int;
  waves : int;
  replicas : int;
  crashes : int;
  rejoins : int;
  fallbacks : int;  (* checkpoints rejected as unusable during rejoins *)
  served : int;  (* wave entries executed by live replicas *)
  missed : int;  (* entries the cluster applied while some replica was down *)
  max_rejoin_lag : int;  (* largest log suffix a rejoin replayed *)
  availability_permil : int;  (* served / (entries * replicas) *)
  divergences : string list;
  final_fingerprint : int;  (* the reference's *)
  converged : bool;  (* every replica's final fingerprint matches it *)
  fault_plan : Fault.plan;
  log_path : string;
  dir : string;
}

let validate (p : params) =
  if p.replicas < 1 then cluster_error "need at least one replica";
  if p.requests < 1 then cluster_error "need at least one request";
  if p.sessions < 1 || p.sessions > 16 then
    cluster_error "sessions must be in 1..16 (4-bit request encoding)";
  if p.shards < 1 || p.shards > 16 then
    cluster_error "shards must be in 1..16 (4-bit request encoding)";
  if p.slots < 1 then cluster_error "need at least one worker slot";
  if p.checkpoint_every < 1 then cluster_error "checkpoint-every must be >= 1";
  if p.outage_waves < 1 then cluster_error "outage-waves must be >= 1"

let checkpoint ?(tag = "") dir r =
  let vm = r.node.vm in
  if not (Calendar.is_empty vm.Vm.shared.State.timers) then
    cluster_error
      "replica %d: checkpoint with pending timers (engine hooks are not \
       serializable)"
      r.idx;
  let fp = fingerprint_of vm in
  let snap =
    Snapshot.capture vm.Vm.heap ~fingerprint:fp ~entries:r.applied
      ~registers:(capture_registers vm)
  in
  let path =
    Filename.concat dir (Printf.sprintf "r%d-%06d%s.snap" r.idx r.applied tag)
  in
  Snapshot.save path snap;
  r.ckpts <- (r.applied, path) :: r.ckpts

let run ?(log = fun _ -> ()) (p : params) =
  validate p;
  let dir = match p.dir with
    | Some d -> ensure_dir d; d
    | None -> fresh_dir ()
  in
  (* the durable log: generate, save, and execute what was *re-read*, so
     every cluster run exercises the full durability round trip *)
  let log_path = Filename.concat dir "cmdlog" in
  Cmdlog.save log_path
    (Cmdlog.generate ~seed:p.log_seed ~requests:p.requests
       ~sessions:p.sessions ~shards:p.shards);
  let entries = Cmdlog.to_list (Cmdlog.load_nonempty log_path) in
  let total = List.length entries in
  let waves = Cmdlog.schedule ~slots:p.slots entries in
  let nwaves = List.length waves in
  let cums = Array.make (nwaves + 1) 0 in
  List.iteri
    (fun i w -> cums.(i + 1) <- cums.(i) + List.length w)
    waves;
  log
    (Printf.sprintf "log: %d entries in %d wave(s) (%d slot(s))" total nwaves
       p.slots);
  (* The dispatch order: waves flattened.  The scheduler may promote an
     independent entry past a conflict-blocked earlier one (early
     scheduling), so a wave boundary is a prefix of [flat], not of the
     log.  What dependency-aware dispatch must preserve is the *relative*
     order of conflicting entries — check that structurally before
     anything executes. *)
  let flat = List.concat waves in
  let () =
    let arr = Array.of_list flat in
    Array.iteri
      (fun i a ->
        for j = i + 1 to Array.length arr - 1 do
          let b = arr.(j) in
          if Cmdlog.conflicts a b && a.Cmdlog.lsn > b.Cmdlog.lsn then
            cluster_error
              "schedule reorders conflicting entries %d and %d" a.Cmdlog.lsn
              b.Cmdlog.lsn
        done)
      arr
  in
  (* the non-replicated reference: the same dispatch order, one entry at
     a time on a single machine, fingerprinted after every entry *)
  let ref_fps = Array.make (total + 1) 0 in
  let () =
    let node = build_node ~slots:p.slots ~shards:p.shards in
    ref_fps.(0) <- fingerprint_of node.vm;
    List.iteri
      (fun i e ->
        apply_wave node [ e ];
        ref_fps.(i + 1) <- fingerprint_of node.vm)
      flat
  in
  let rs =
    Array.init p.replicas (fun idx ->
        { idx;
          node = build_node ~slots:p.slots ~shards:p.shards;
          applied = 0;
          alive = true;
          down_since = -1;
          rejoins = 0;
          fps = [];
          ckpts = [] })
  in
  let injector =
    Option.map
      (fun seed ->
        let params = Fault.params_of_campaign Fault.Replica in
        let params =
          if p.scenario = Some Double_crash then
            { params with Fault.max_faults = 2 }
          else params
        in
        Fault.seeded ~params ~seed ())
      p.crash_seed
  in
  let divergences = ref [] in
  let diverged fmt =
    Printf.ksprintf
      (fun m ->
        log ("divergence: " ^ m);
        divergences := m :: !divergences)
      fmt
  in
  let crashes = ref 0 in
  let fallbacks = ref 0 in
  let served = ref 0 in
  let missed = ref 0 in
  let max_rejoin_lag = ref 0 in
  let last_victim = ref None in
  let live () = List.filter (fun r -> r.alive) (Array.to_list rs) in
  let skip_for r =
    match p.skip_lsn with
    | Some lsn when r.idx = 0 -> fun e -> e.Cmdlog.lsn = lsn
    | _ -> fun _ -> false
  in
  (* fingerprint a replica at a boundary, record it, and run the
     divergence detector against the reference at the same entry count *)
  let boundary_check r =
    let fp = fingerprint_of r.node.vm in
    r.fps <- (r.applied, fp) :: r.fps;
    if fp <> ref_fps.(r.applied) then
      diverged "replica %d at entry %d: fingerprint %d, reference %d" r.idx
        r.applied fp
        ref_fps.(r.applied);
    fp
  in
  (* restore the newest usable checkpoint into a fresh skeleton and
     replay the wave suffix up to [target_wave]; unusable or lying
     checkpoints fall back to the previous one *)
  let rejoin r ~target_wave =
    let target = cums.(target_wave) in
    let interrupted = ref false in
    let rec attempt ckpts =
      match ckpts with
      | [] -> cluster_error "replica %d: no usable checkpoint" r.idx
      | (entries_at, path) :: rest -> (
          match Snapshot.load path with
          | exception Snapshot.Corrupt { path; what } ->
              incr fallbacks;
              log
                (Printf.sprintf
                   "replica %d: checkpoint %s rejected (%s); falling back"
                   r.idx (Filename.basename path) what);
              attempt rest
          | snap ->
              let node = build_node ~slots:p.slots ~shards:p.shards in
              restore_registers node.vm
                (Snapshot.restore snap node.vm.Vm.heap);
              (match Universe.get_global node.vm.Vm.u "ClusterPool" with
               | Some sem -> node.pool := sem
               | None -> cluster_error "ClusterPool missing after restore");
              let fp = fingerprint_of node.vm in
              if fp <> snap.Snapshot.fingerprint then begin
                incr fallbacks;
                log
                  (Printf.sprintf
                     "replica %d: checkpoint %s fingerprint %d does not \
                      survive restore (got %d); falling back"
                     r.idx (Filename.basename path)
                     snap.Snapshot.fingerprint fp);
                attempt rest
              end
              else begin
                (* find the wave boundary the checkpoint sits on *)
                let start_wave = ref 0 in
                for i = 0 to nwaves do
                  if cums.(i) = entries_at then start_wave := i
                done;
                if cums.(!start_wave) <> entries_at then
                  cluster_error
                    "replica %d: checkpoint at entry %d is not on a wave \
                     boundary"
                    r.idx entries_at;
                r.node <- node;
                r.applied <- entries_at;
                let replayed = ref false in
                (try
                   List.iteri
                     (fun i wave ->
                       if i >= !start_wave && i < target_wave then begin
                         (* the crash-mid-replay scenario: the rejoining
                            replica dies again halfway through its
                            suffix and must restart the whole rejoin *)
                         if
                           p.scenario = Some Crash_mid_replay
                           && not !interrupted
                           && i - !start_wave
                              >= max 1 ((target_wave - !start_wave) / 2)
                         then begin
                           interrupted := true;
                           raise Exit
                         end;
                         apply_wave ~skip:(skip_for r) r.node wave;
                         r.applied <- cums.(i + 1);
                         (* replay must walk back through the replica's
                            own pre-crash fingerprints *)
                         let fp = boundary_check r in
                         (match List.assoc_opt r.applied r.fps with
                          | Some pre when pre <> fp ->
                              diverged
                                "replica %d: replay at entry %d gives \
                                 fingerprint %d, pre-crash was %d"
                                r.idx r.applied fp pre
                          | _ -> ())
                       end)
                     waves;
                   replayed := true
                 with Exit -> ());
                if !replayed then begin
                  r.rejoins <- r.rejoins + 1;
                  max_rejoin_lag := max !max_rejoin_lag (target - entries_at);
                  log
                    (Printf.sprintf
                       "replica %d rejoined: restored entry %d, replayed %d \
                        entr%s"
                       r.idx entries_at (target - entries_at)
                       (if target - entries_at = 1 then "y" else "ies"))
                end
                else begin
                  log
                    (Printf.sprintf
                       "replica %d: crashed again mid-replay; restarting \
                        rejoin"
                       r.idx);
                  incr crashes;
                  attempt r.ckpts
                end
              end)
    in
    attempt r.ckpts;
    r.alive <- true;
    r.down_since <- -1
  in
  (* every replica writes its entries=0 checkpoint before the first
     wave: the rejoin fallback of last resort *)
  Array.iter (fun r -> checkpoint dir r) rs;
  let next_ckpt = ref p.checkpoint_every in
  List.iteri
    (fun w wave ->
      let wave_size = List.length wave in
      (* boundary fault queries, one per live replica in index order *)
      (match injector with
       | None -> ()
       | Some inj ->
           Array.iter
             (fun r ->
               if r.alive then
                 match Fault.at inj Fault.Log_entry with
                 | Some (Fault.Replica_crash k as f) ->
                     let l = live () in
                     let n = List.length l in
                     if n > 1 then begin
                       let victim =
                         match (p.scenario, !last_victim) with
                         | Some Double_crash, Some i when rs.(i).alive ->
                             rs.(i)
                         | _ -> List.nth l (k mod n)
                       in
                       Fault.applied inj ~vp:victim.idx ~now:cums.(w)
                         ~resource:"cluster" f;
                       victim.alive <- false;
                       victim.down_since <- w;
                       last_victim := Some victim.idx;
                       incr crashes;
                       log
                         (Printf.sprintf
                            "replica %d crashed at entry %d (%d survivor(s) \
                             keep serving)"
                            victim.idx cums.(w) (n - 1));
                       if p.scenario = Some Torn_checkpoint then (
                         (* crash-during-checkpoint: the victim was
                            writing a checkpoint when it died, leaving a
                            torn file the rejoin must reject *)
                         checkpoint ~tag:"-inflight" dir victim;
                         match victim.ckpts with
                         | (_, path) :: _ ->
                             truncate_file path;
                             log
                               (Printf.sprintf
                                  "replica %d: in-flight checkpoint torn by \
                                   the crash"
                                  victim.idx)
                         | [] -> ())
                     end
                 | Some _ | None -> ())
             rs);
      (* survivors serve the wave *)
      Array.iter
        (fun r ->
          if r.alive then begin
            apply_wave ~skip:(skip_for r) r.node wave;
            r.applied <- cums.(w + 1);
            served := !served + wave_size
          end
          else missed := !missed + wave_size)
        rs;
      (* divergence detector at the boundary: every live replica against
         the reference, and replicas against each other *)
      let fps =
        List.filter_map
          (fun r -> if r.alive then Some (r, boundary_check r) else None)
          (Array.to_list rs)
      in
      (match fps with
       | (r0, fp0) :: rest ->
           List.iter
             (fun (r, fp) ->
               if fp <> fp0 then
                 diverged
                   "replicas %d and %d disagree at entry %d: %d vs %d" r0.idx
                   r.idx cums.(w + 1) fp0 fp)
             rest
       | [] -> ());
      (* periodic checkpoints on live replicas *)
      if cums.(w + 1) >= !next_ckpt then begin
        Array.iter (fun r -> if r.alive then checkpoint dir r) rs;
        while !next_ckpt <= cums.(w + 1) do
          next_ckpt := !next_ckpt + p.checkpoint_every
        done
      end;
      (* rejoins: after the outage, or at the end of the log *)
      Array.iter
        (fun r ->
          if
            (not r.alive)
            && (w - r.down_since >= p.outage_waves || w = nwaves - 1)
          then rejoin r ~target_wave:(w + 1))
        rs)
    waves;
  let final_ref = ref_fps.(total) in
  let converged =
    Array.for_all
      (fun r ->
        r.applied = total && fingerprint_of r.node.vm = final_ref)
      rs
  in
  { entries = total;
    waves = nwaves;
    replicas = p.replicas;
    crashes = !crashes;
    rejoins = Array.fold_left (fun n (r : replica) -> n + r.rejoins) 0 rs;
    fallbacks = !fallbacks;
    served = !served;
    missed = !missed;
    max_rejoin_lag = !max_rejoin_lag;
    availability_permil =
      (if total * p.replicas = 0 then 0
       else !served * 1000 / (total * p.replicas));
    divergences = List.rev !divergences;
    final_fingerprint = final_ref;
    converged;
    fault_plan =
      (match injector with Some inj -> Fault.injected inj | None -> []);
    log_path;
    dir }

let pp fmt o =
  Format.fprintf fmt
    "cluster: %d replica(s), %d entr%s in %d wave(s)@\n\
     faults: %d crash(es), %d rejoin(s), %d checkpoint fallback(s)@\n\
     availability: %d/%d wave-entries served (%d permil), %d missed during \
     outages, max rejoin lag %d entr%s@\n\
     fingerprints: reference %d, %s@\n"
    o.replicas o.entries
    (if o.entries = 1 then "y" else "ies")
    o.waves o.crashes o.rejoins o.fallbacks o.served (o.entries * o.replicas)
    o.availability_permil o.missed o.max_rejoin_lag
    (if o.max_rejoin_lag = 1 then "y" else "ies")
    o.final_fingerprint
    (if o.converged then "all replicas converged"
     else "NOT CONVERGED");
  if o.divergences <> [] then begin
    Format.fprintf fmt "divergences detected:@\n";
    List.iter (fun d -> Format.fprintf fmt "  %s@\n" d) o.divergences
  end
