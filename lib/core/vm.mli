(** Assembling and driving Multiprocessor Smalltalk on the simulated
    Firefly.

    [create] bootstraps a complete virtual machine — object memory,
    universe, kernel image, interpreters, caches, devices — wired
    according to the strategy configuration.  [run] is the simulation
    engine: it always steps the runnable virtual processor with the
    smallest clock, fires due Delay timers, and performs the stop-the-world
    scavenge rendezvous in which every parked processor pays the pause.

    The whole simulation is single-threaded and deterministic: identical
    inputs give identical cycle counts. *)

type t = {
  config : Config.t;
  machine : Machine.t;
  heap : Heap.t;
  u : Universe.t;
  shared : State.shared;
  states : State.t array;  (** one interpreter state per processor *)
  interps : Interp.t array;
  locks : Spinlock.t list;
      (** every kernel spinlock, enabled or not, for instrumentation *)
  mutable gc_requested : bool;
  mutable scavenge_pauses : int;
  mutable scavenge_cycles : int;  (** total stop-the-world cycles *)
  mutable par_scavenges : int;
      (** collections run by the simulated parallel scavenger
          ([scavenge_workers > 1]) *)
  mutable par_rounds : int;  (** total grey-scanning rounds *)
  mutable par_coord_cycles : int;
      (** claims + chunk claims + steals + barriers, summed *)
  par_copied_objects : int array;  (** per worker id, length [processors] *)
  par_copied_words : int array;
  par_busy_cycles : int array;
  par_idle_cycles : int array;
  mutable crashes_delivered : int;
      (** processors halted by injected crashes (fault campaigns only) *)
  mutable degraded_scavenges : int;
      (** parallel collections a worker crash forced the survivors to
          finish; each one is heap-verified unconditionally *)
  mutable engine_events : int;
      (** events the run loop processed (selections + batched steps) *)
  mutable parks : int;
      (** idle re-steps the calendar engine parked away instead of
          running (always 0 under {!Config.Engine_scan}) *)
  major : Major.t option;
      (** the incremental old-space collector (E18), when
          [Config.major_enabled] *)
  mutable major_forced_allocs : int;
      (** old-space allocations that survived only because exhaustion
          forced a cycle to completion — each one was an [Image_full] at
          the seed sizing *)
  mutable scavenge_pause_costs : int list;
      (** every stop-the-world scavenge pause, newest first (for the
          pause-distribution percentiles) *)
}

exception Stuck of string

exception Error of string

(** The VM's serialization sanitizer (armed only while {!run} executes). *)
val sanitizer : t -> Sanitizer.t

(** Bootstrap a VM.  Expensive (compiles the kernel image); reuse the VM
    for several evaluations where possible. *)
val create : Config.t -> t

(** Install additional classes (image-definition format) after bootstrap:
    workload classes for benchmarks, user code for examples.  Flushes the
    method caches. *)
val load_classes : t -> string -> unit

(** Compile [source] as a doIt and schedule a new Process for it at
    [priority] (default 5, the user scheduling priority).  The Process
    starts running at the next {!run}. *)
val spawn : t -> ?priority:int -> ?name:string -> string -> Oop.t

(** Like {!spawn} for an already-compiled method. *)
val spawn_method : t -> priority:int -> name:string -> Oop.t -> Oop.t

type run_outcome =
  | Finished of Oop.t  (** the watched Process returned this value *)
  | Deadlock  (** no Process, event or timer can make progress *)
  | Cycle_limit

(** Drive the machine until the watched Process terminates, the system
    quiesces, or [max_cycles] of virtual time elapse.  Background
    Processes keep running while the watched one is alive.  A VM-level
    error (doesNotUnderstand, mustBeBoolean, Smalltalk [error:]) removes
    the erring Process from the machine and re-raises, leaving the VM
    usable. *)
val run : ?max_cycles:int -> ?watch:Oop.t -> t -> run_outcome

(** [eval vm source] spawns, runs and returns the doIt's value.  The
    returned oop is valid until the next scavenge (i.e. the next run).
    @raise Error on deadlock or cycle-limit. *)
val eval : ?priority:int -> t -> string -> Oop.t

(** A short printable description of an oop (integers, strings, symbols,
    characters, booleans, class names, or ["a ClassName"]). *)
val describe : t -> Oop.t -> string

val eval_to_string : ?priority:int -> t -> string -> string

(** Everything written to the Transcript since [create]. *)
val transcript : t -> string

(** Virtual time: the maximum processor clock, in cycles / in simulated
    seconds. *)
val cycles : t -> int

val seconds : t -> float

(** Run one scavenge immediately (all processors are between steps). *)
val do_scavenge : t -> unit

(** Run one bounded slice of the incremental old-space collector at the
    current rendezvous clock (E18).  {!run} calls this itself whenever a
    slice comes due; exposed for tests. *)
val do_major_slice : t -> Major.t -> unit

val nothing_runnable : t -> bool

(** {2 Fault injection}

    With an injector installed, {!run} becomes a fault campaign: the
    interpreters may crash or stall at scheduling checks, lock holders
    may stall or die inside critical sections, the display controller
    may time out, and parallel scavenge workers may die at round
    barriers.  Recovery — failover of the dead processor's Process,
    abandonment of its replicated state, degraded-mode collection — is
    exercised by the same run.  Without an injector every injection
    site is a no-op and the simulation is bit-identical to the seed. *)

(** Install (or clear) the fault injector on this VM's machine. *)
val set_fault_injector : t -> Fault.t option -> unit

val fault_injector : t -> Fault.t option

(** Deliver an injected crash to a processor: halt it permanently, fail
    its Process over to the ready queue and abandon its replicated
    state.  Exposed for tests; {!run} delivers flagged crashes itself. *)
val crash_vp : t -> int -> unit
