(* Incremental old-space mark-sweep (E18).

   Generation Scavenging never collects old space, so a long-running image
   leaks tenured garbage until [Image_full].  This collector reclaims it
   without a stop-the-world pause: tricolor marking runs in bounded work
   slices at interpreter step boundaries, a Dijkstra-style
   incremental-update write barrier (piggybacked on the store check in
   [Heap.store_ptr]) shades every pointer the mutator stores, and the
   sweep threads reclaimed holes onto the heap's size-segregated free
   lists, which [Heap.alloc_old] consults before bumping.

   Mark state lives in a side bitmap over old-space addresses — every
   header flag bit is taken — owned by this module, not the heap.

   Concurrent-correctness obligations, and where they are discharged:
   - stores that bypass [Heap.store_ptr] (scheduler queue surgery,
     free-context threading) call [Heap.major_note] themselves;
   - objects entering old space mid-cycle (direct allocation, scavenge
     promotion) are allocated black via [Heap.mark_old_alloc];
   - new space is scanned linearly and conservatively (every new object's
     fields shade their old targets); a scavenge moves new space, so the
     incremental scan restarts when [scavenge_count] changes — but once
     the scan has completed it stays complete: the scavenge copies fields
     verbatim (their targets are already shaded), promotions are
     allocate-black, and every subsequent pointer store is barriered;
   - the final root rescan happens inside the same slice as the
     termination check, so no mutator step can re-dirty a root between
     the two. *)

open Heap

type phase = Idle | Marking | Sweeping

type t = {
  heap : Heap.t;
  budget : int;
  (* extra roots beyond [heap.roots]/[heap.array_roots]: universe tables,
     free-context list heads, scheduler deques — supplied by the VM *)
  iter_roots : (Oop.t -> unit) -> unit;
  marks : Bytes.t;  (* one bit per old-space word address *)
  mutable phase : phase;
  mutable grey : int list;  (* marked, fields not yet scanned *)
  mutable roots_done : bool;
  (* incremental new-space scan: region index, cursor, and the scavenge
     epoch it is valid for *)
  mutable ns_ri : int;
  mutable ns_addr : int;
  mutable ns_epoch : int;
  mutable ns_done : bool;
  mutable sweep_cursor : int;
  mutable root_cost : int;  (* the last root scan's cost, for the rescan gate *)
  mutable next_slice_at : int;  (* pacing: no slice before this time *)
  mutable last_cycle_tenured : int;  (* tenured_words_total at last start *)
  (* statistics *)
  mutable cycles_completed : int;
  mutable slices : int;
  mutable slice_cycles_total : int;
  mutable max_slice : int;
  mutable overruns : int;
      (* slices that ran past the budget — only an atomic root scan or a
         lone oversized object can cause one (see [admit]) *)
  mutable slice_costs : int list;  (* newest first *)
  mutable reclaimed_objects : int;
  mutable reclaimed_words : int;
  mutable forced_completions : int;
  mutable barrier_greys : int;  (* objects shaded by the write barrier *)
  mutable alloc_marks : int;  (* objects allocated black mid-cycle *)
}

let create ~heap ~budget ~iter_roots =
  {
    heap;
    budget = max 1 budget;
    iter_roots;
    marks = Bytes.make ((heap.new_base + 7) / 8) '\000';
    phase = Idle;
    grey = [];
    roots_done = false;
    ns_ri = 0;
    ns_addr = min_int;
    ns_epoch = -1;
    ns_done = false;
    sweep_cursor = 0;
    root_cost = 0;
    next_slice_at = 0;
    last_cycle_tenured = 0;
    cycles_completed = 0;
    slices = 0;
    slice_cycles_total = 0;
    max_slice = 0;
    overruns = 0;
    slice_costs = [];
    reclaimed_objects = 0;
    reclaimed_words = 0;
    forced_completions = 0;
    barrier_greys = 0;
    alloc_marks = 0;
  }

let phase t = t.phase
let active t = t.phase <> Idle
let budget t = t.budget

(* --- the mark bitmap --- *)

let marked t a =
  Char.code (Bytes.unsafe_get t.marks (a lsr 3)) land (1 lsl (a land 7)) <> 0

let set_mark t a =
  let i = a lsr 3 in
  Bytes.unsafe_set t.marks i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.marks i) lor (1 lsl (a land 7))))

(* --- shading --- *)

let shade t a =
  if not (marked t a) then begin
    set_mark t a;
    t.grey <- a :: t.grey
  end

let shade_oop t (v : Oop.t) = if is_old t.heap v then shade t (Oop.addr v)

(* The write barrier: while marking, the stored value is shaded so no
   pointer to a white object can be hidden inside an already-scanned
   one.  Installed as [heap.major_dirty] for the cycle's duration. *)
let dirty t (v : Oop.t) =
  if t.phase = Marking && is_old t.heap v then begin
    let a = Oop.addr v in
    if not (marked t a) then begin
      set_mark t a;
      t.grey <- a :: t.grey;
      t.barrier_greys <- t.barrier_greys + 1
    end
  end

(* Allocate-black: an object entering old space mid-cycle must survive
   the in-flight collection; while marking it is also greyed, since a
   scavenge promotion carries fields that may not be shaded yet. *)
let alloc_black t a =
  if t.phase <> Idle && not (marked t a) then begin
    set_mark t a;
    if t.phase = Marking then t.grey <- a :: t.grey;
    t.alloc_marks <- t.alloc_marks + 1
  end

(* --- triggering --- *)

let old_words t = t.heap.old.limit - t.heap.old.base

(* Start a cycle when occupancy passes 60% of old space, or when tenured
   growth since the last cycle passes a fraction of it. *)
let want_start t =
  t.phase = Idle
  && (old_used t.heap * 1000 >= 600 * old_words t
      || t.heap.tenured_words_total - t.last_cycle_tenured
         >= max 2048 (old_words t / 64))

let near_exhaustion t = old_used t.heap * 1000 >= 900 * old_words t

let due t ~now = now >= t.next_slice_at && (active t || want_start t)

(* --- the mark phase --- *)

let run_flush_hooks t = List.iter (fun hook -> hook ()) t.heap.on_scavenge

let start_cycle t =
  Bytes.fill t.marks 0 (Bytes.length t.marks) '\000';
  t.grey <- [];
  t.roots_done <- false;
  t.ns_ri <- 0;
  t.ns_addr <- min_int;
  t.ns_epoch <- -1;
  t.ns_done <- false;
  t.last_cycle_tenured <- t.heap.tenured_words_total;
  t.phase <- Marking;
  (* cached method lookups and decodes must not carry oops across the
     cycle unscanned; the scavenge flush hooks drop them all *)
  run_flush_hooks t

let scan_roots t =
  let h = t.heap in
  let n = ref 0 in
  List.iter
    (fun cell ->
      incr n;
      shade_oop t !cell)
    h.roots;
  List.iter
    (fun arr ->
      Array.iter
        (fun v ->
          incr n;
          shade_oop t v)
        arr)
    h.array_roots;
  t.iter_roots (fun v ->
      incr n;
      shade_oop t v);
  !n

(* Budget admission with look-ahead: a work unit's cost is computed
   before the work is committed, and a unit that would push the slice
   past its budget ends the slice instead — except the slice's first
   unit, which always goes through (an object bigger than the whole
   budget must still be marked eventually, or the cycle could never
   terminate).  Overshoot is therefore zero for every slice that has
   already done work, and bounded by one unit otherwise. *)
let admit cost ~budget ~did unit =
  if !did && !cost + unit > budget then false
  else begin
    cost := !cost + unit;
    did := true;
    true
  end

(* The regions that make up scannable new space: the eden slices and the
   survivor space currently holding live objects. *)
let ns_regions t =
  let h = t.heap in
  let past = if h.past_is_a then h.surv_a else h.surv_b in
  Array.append h.eden_regions [| past |]

type mark_progress =
  | Stepped  (* one unit of mark work done *)
  | Blocked  (* the next unit does not fit the remaining budget *)
  | Drained  (* nothing grey and new space fully scanned *)

(* One unit of mark work: a grey old object, or — once the grey stack is
   empty — one new-space object of the incremental conservative scan
   (every object's fields shade their old targets, live or not; the scan
   restarts when a scavenge has moved new space under it). *)
let mark_one t (cm : Cost_model.t) cost ~budget ~did =
  let h = t.heap in
  match t.grey with
  | a :: rest ->
      let limit = Scavenger.scan_limit h a in
      let unit = cm.major_mark_per_object + (cm.major_mark_per_word * limit) in
      if not (admit cost ~budget ~did unit) then Blocked
      else begin
        t.grey <- rest;
        (* the class pointer is not a scanned field, but it must survive
           as long as any instance does *)
        shade_oop t (class_at h a);
        let base = a + Layout.header_words in
        for i = 0 to limit - 1 do
          shade_oop t h.mem.(base + i)
        done;
        Stepped
      end
  | [] ->
      if t.ns_done then Drained
      else begin
        (* a completed scan is not invalidated by a scavenge (see the
           header comment); only an in-progress one restarts *)
        if t.ns_epoch <> h.scavenge_count then begin
          t.ns_ri <- 0;
          t.ns_addr <- min_int;
          t.ns_epoch <- h.scavenge_count
        end;
        let regions = ns_regions t in
        (* advancing past exhausted regions costs nothing *)
        let rec step () =
          if t.ns_ri >= Array.length regions then begin
            t.ns_done <- true;
            Drained
          end
          else begin
            let r = regions.(t.ns_ri) in
            if t.ns_addr < r.base then t.ns_addr <- r.base;
            if t.ns_addr >= r.ptr then begin
              t.ns_ri <- t.ns_ri + 1;
              t.ns_addr <- min_int;
              step ()
            end
            else begin
              let a = t.ns_addr in
              let sz = size_words h a in
              if is_filler h a then begin
                if not (admit cost ~budget ~did cm.major_mark_per_object) then
                  Blocked
                else begin
                  t.ns_addr <- a + sz;
                  Stepped
                end
              end
              else begin
                let limit = Scavenger.scan_limit h a in
                let unit =
                  cm.major_mark_per_object + (cm.major_mark_per_word * limit)
                in
                if not (admit cost ~budget ~did unit) then Blocked
                else begin
                  shade_oop t (class_at h a);
                  let base = a + Layout.header_words in
                  for i = 0 to limit - 1 do
                    shade_oop t h.mem.(base + i)
                  done;
                  t.ns_addr <- a + sz;
                  Stepped
                end
              end
            end
          end
        in
        step ()
      end

(* --- the sweep phase --- *)

(* Walk old space from the cursor, coalescing consecutive dead objects
   and fillers (including last cycle's holes) into maximal runs threaded
   onto the free lists.  A slice boundary flushes the current run, which
   can split a hole — harmless, both halves are threaded. *)
let sweep_step t (cm : Cost_model.t) cost ~budget ~did =
  let h = t.heap in
  let run_start = ref (-1) in
  let flush_run pos =
    if !run_start >= 0 then begin
      free_add h !run_start (pos - !run_start);
      run_start := -1
    end
  in
  let continue = ref true in
  while !continue && t.sweep_cursor < h.old.ptr do
    let a = t.sweep_cursor in
    let sz = size_words h a in
    if not (admit cost ~budget ~did (cm.major_sweep_per_word * sz)) then
      continue := false
    else begin
    if is_filler h a then begin
      if !run_start < 0 then run_start := a
    end
    else if marked t a then flush_run a
    else begin
      t.reclaimed_objects <- t.reclaimed_objects + 1;
      t.reclaimed_words <- t.reclaimed_words + sz;
      if is_remembered h a then rset_remove h a;
      if !run_start < 0 then run_start := a
    end;
    t.sweep_cursor <- a + sz
    end
  done;
  flush_run t.sweep_cursor

(* --- slices --- *)

type slice_result = {
  cost : int;
  mark_completed : bool;  (* marking finished; marks final, nothing swept *)
  cycle_completed : bool;  (* sweeping finished; the collector is idle *)
}

let slice_internal t (cm : Cost_model.t) ~budget =
  if t.phase = Idle then start_cycle t;
  let cost = ref cm.major_slice_base in
  let did = ref false in
  match t.phase with
  | Idle -> { cost = !cost; mark_completed = false; cycle_completed = false }
  | Marking ->
      if not t.roots_done then begin
        (* the root scan is atomic within one slice — root cells are
           OCaml-side and their writes are unbarriered — so its cost is
           taken whole, budget notwithstanding *)
        let n = scan_roots t in
        t.roots_done <- true;
        t.root_cost <- n * cm.major_mark_per_word;
        cost := !cost + t.root_cost;
        did := true
      end;
      let continue = ref true in
      while !continue && !cost < budget do
        match mark_one t cm cost ~budget ~did with
        | Stepped -> ()
        | Blocked | Drained -> continue := false
      done;
      let mark_completed =
        (* termination check: rescan the roots inside the same slice that
           drained the grey stack.  The rescan is atomic, so it is gated
           on fitting the remaining budget (estimated from the initial
           scan); a slice that already spent its budget ends instead, and
           the next slice — arriving with a clean budget — runs the
           rescan as its first unit *)
        if
          t.grey = [] && t.ns_done
          && ((not !did) || !cost + t.root_cost <= budget)
        then begin
          let n = scan_roots t in
          cost := !cost + (n * cm.major_mark_per_word);
          did := true;
          if t.grey = [] then begin
            (* marking is complete; flush the caches again so nothing
               holds an about-to-be-freed oop, rebuild the free lists
               from scratch, and let the sweep start next slice *)
            run_flush_hooks t;
            free_reset t.heap;
            t.sweep_cursor <- t.heap.old.base;
            t.phase <- Sweeping;
            true
          end
          else false
        end
        else false
      in
      { cost = !cost; mark_completed; cycle_completed = false }
  | Sweeping ->
      sweep_step t cm cost ~budget ~did;
      let cycle_completed = t.sweep_cursor >= t.heap.old.ptr in
      if cycle_completed then begin
        t.phase <- Idle;
        t.cycles_completed <- t.cycles_completed + 1;
        t.last_cycle_tenured <- t.heap.tenured_words_total
      end;
      { cost = !cost; mark_completed = false; cycle_completed }

(* One budgeted slice, driven by the engine at a step boundary.  Pacing:
   the mutator gets at least three budgets' worth of time between
   slices. *)
let slice t cm ~now =
  let r = slice_internal t cm ~budget:t.budget in
  t.slices <- t.slices + 1;
  t.slice_cycles_total <- t.slice_cycles_total + r.cost;
  if r.cost > t.max_slice then t.max_slice <- r.cost;
  if r.cost > t.budget then t.overruns <- t.overruns + 1;
  t.slice_costs <- r.cost :: t.slice_costs;
  t.next_slice_at <- now + r.cost + (3 * t.budget);
  r

(* Run the collector to completion — the in-flight cycle, or a whole
   fresh one when idle.  Used when old space is exhausted ([Image_full]
   becomes the last resort) and by tests that need a full cycle. *)
let finish_cycle t cm =
  let total = ref 0 in
  if t.phase = Idle then start_cycle t;
  while t.phase <> Idle do
    let r = slice_internal t cm ~budget:max_int in
    total := !total + r.cost
  done;
  t.forced_completions <- t.forced_completions + 1;
  !total

(* --- statistics --- *)

let cycles_completed t = t.cycles_completed
let slices t = t.slices
let slice_cycles_total t = t.slice_cycles_total
let max_slice t = t.max_slice
let overruns t = t.overruns
let slice_costs t = List.rev t.slice_costs
let reclaimed_objects t = t.reclaimed_objects
let reclaimed_words t = t.reclaimed_words
let forced_completions t = t.forced_completions
let barrier_greys t = t.barrier_greys
let alloc_marks t = t.alloc_marks
