(* Generation Scavenging (Ungar '84), as used by Berkeley Smalltalk: a
   stop-and-copy collection of new space only.  Live new objects are copied
   from eden and the past survivor space into the future survivor space
   (Cheney's algorithm); objects that have survived [tenure_age] scavenges,
   or that overflow the survivor space, are promoted into old space.  Old
   space is never collected; the entry table (remembered set) supplies the
   old-to-new roots.

   Because contexts keep their evaluation stack inside the object, only the
   live portion — [stackp] frame slots — is scanned; the slots above the
   stack pointer hold stale oops from popped values.

   The caller (the engine) is responsible for the multiprocessor rendezvous:
   every interpreter must be parked before [scavenge] runs, and the
   [on_scavenge] hooks flush the method caches and free-context lists whose
   entries would otherwise dangle across the copy. *)

open Heap

let is_context h cls =
  Oop.equal cls h.method_ctx_class || Oop.equal cls h.block_ctx_class

(* Number of fields of the object at [a] the scavenger must scan. *)
let scan_limit h a =
  if is_raw h a then 0
  else begin
    let n = slots h a in
    if is_context h (class_at h a) then begin
      let sp = h.mem.(a + Layout.header_words + Layout.Ctx.stackp) in
      let live = Layout.Ctx.fixed_slots + (if Oop.is_small sp then Oop.small_val sp else 0) in
      min n live
    end else n
  end

type space_choice = To_space | Promoted

(* Copy the object at [from_addr]; returns its new oop. *)
let copy_object h stats to_region from_addr =
  let total = size_words h from_addr in
  let next_age = min (age h from_addr + 1) Layout.age_mask in
  let choice =
    if next_age >= h.tenure_age || region_avail to_region < total
    then Promoted else To_space
  in
  let dest =
    match choice with
    | To_space ->
        let a = to_region.ptr in
        to_region.ptr <- to_region.ptr + total;
        stats.survivor_objects <- stats.survivor_objects + 1;
        stats.survivor_words <- stats.survivor_words + total;
        a
    | Promoted -> (
        match promote_alloc h total with
        | None -> raise (Image_full "old space exhausted during scavenge")
        | Some a ->
            stats.tenured_objects <- stats.tenured_objects + 1;
            stats.tenured_words <- stats.tenured_words + total;
            a)
  in
  Array.blit h.mem from_addr h.mem dest total;
  (* refresh age; clear the remembered flag on the copy (re-established by
     the post-scan check for promoted objects) *)
  let flags =
    h.mem.(dest) land (Layout.flag_raw lor Layout.flag_bytes)
  in
  h.mem.(dest) <-
    (total lsl Layout.size_shift) lor (next_age lsl Layout.age_shift) lor flags;
  (* allocate-black: a mid-cycle promotion must not be swept (E18) *)
  if choice = Promoted then mark_old_alloc h dest;
  (* install forwarding *)
  let new_oop = Oop.of_addr dest in
  h.mem.(from_addr) <- Layout.forwarded_marker;
  h.mem.(from_addr + 1) <- new_oop;
  new_oop

(* Only objects in from-space — eden and the past survivor space — are
   copied; pointers into the future survivor space (already copied this
   scavenge) or old space pass through unchanged. *)
let forward h stats ~in_from to_region (o : Oop.t) =
  if not (Oop.is_ptr o) then o
  else begin
    let a = Oop.addr o in
    if not (in_from a) then o
    else if h.mem.(a) = Layout.forwarded_marker then h.mem.(a + 1)
    else copy_object h stats to_region a
  end

(* Update every scannable field of the object at [a]; returns true if any
   field still refers to new space after forwarding. *)
let update_fields h stats ~in_from to_region a =
  let limit = scan_limit h a in
  let base = a + Layout.header_words in
  let has_new = ref false in
  for i = 0 to limit - 1 do
    let v = h.mem.(base + i) in
    if is_new h v then begin
      let v' = forward h stats ~in_from to_region v in
      h.mem.(base + i) <- v';
      if is_new h v' then has_new := true
    end
  done;
  !has_new

let scavenge h =
  List.iter (fun hook -> hook ()) h.on_scavenge;
  let stats = empty_stats () in
  let to_region = if h.past_is_a then h.surv_b else h.surv_a in
  let past = if h.past_is_a then h.surv_a else h.surv_b in
  let in_from a =
    (a >= h.eden.base && a < h.eden.limit)
    || (a >= past.base && a < past.limit)
  in
  to_region.ptr <- to_region.base;
  let promote_start = h.old.ptr in
  h.scavenge_holes <- [];
  (* 1. roots *)
  List.iter
    (fun cell ->
      stats.roots_scanned <- stats.roots_scanned + 1;
      cell := forward h stats ~in_from to_region !cell)
    h.roots;
  List.iter
    (fun arr ->
      for i = 0 to Array.length arr - 1 do
        stats.roots_scanned <- stats.roots_scanned + 1;
        arr.(i) <- forward h stats ~in_from to_region arr.(i)
      done)
    h.array_roots;
  (* 2. the entry table: update old objects' fields, keeping only entries
     that still refer to new space.  [remember] may reallocate the array,
     so iterate over a snapshot. *)
  let old_rset = h.rset in
  let old_rset_len = h.rset_len in
  h.rset_len <- 0;
  for i = 0 to old_rset_len - 1 do
    let a = old_rset.(i) in
    stats.remembered_scanned <- stats.remembered_scanned + 1;
    (* clear the flag; [remember] below re-sets it if needed *)
    h.mem.(a) <- h.mem.(a) land lnot Layout.flag_remembered;
    if update_fields h stats ~in_from to_region a then remember h a
  done;
  (* 3. Cheney scan of the two gray regions: fresh survivors and objects
     promoted during this scavenge *)
  let to_scan = ref to_region.base in
  let old_scan = ref promote_start in
  let progress = ref true in
  while !progress do
    progress := false;
    while !to_scan < to_region.ptr do
      progress := true;
      let a = !to_scan in
      ignore (update_fields h stats ~in_from to_region a);
      to_scan := a + size_words h a
    done;
    while !old_scan < h.old.ptr do
      progress := true;
      let a = !old_scan in
      if update_fields h stats ~in_from to_region a then remember h a;
      old_scan := a + size_words h a
    done;
    (* promotions satisfied from swept holes land below [promote_start],
       outside the cursor's window, so they are queued as explicit greys *)
    while h.scavenge_holes <> [] do
      progress := true;
      let batch = h.scavenge_holes in
      h.scavenge_holes <- [];
      List.iter
        (fun a -> if update_fields h stats ~in_from to_region a then remember h a)
        batch
    done
  done;
  (* 4. flip *)
  h.past_is_a <- not h.past_is_a;
  h.eden.ptr <- h.eden.base;
  Array.iter (fun r -> r.ptr <- r.base) h.eden_regions;
  h.scavenge_count <- h.scavenge_count + 1;
  h.words_copied_total <- h.words_copied_total + stats.survivor_words;
  h.tenured_words_total <- h.tenured_words_total + stats.tenured_words;
  h.last_scavenge <- stats;
  stats

(* Cycle cost of a scavenge under the cost model; charged to every parked
   processor by the engine (the collection is stop-the-world). *)
let cost (cm : Cost_model.t) (stats : scavenge_stats) =
  cm.scavenge_base
  + (cm.scavenge_per_word * (stats.survivor_words + stats.tenured_words))
  + (cm.scavenge_per_remembered * stats.remembered_scanned)

(* The analytic approximation of parallel scavenging (the paper's section
   3.1 suggestion), kept as a cross-check against the simulated algorithm
   below: copying work divides across [workers] (rounded up — flooring
   undercharged by up to [workers - 1] words of work), root and
   entry-table scanning stays serial, and the coordination term (work
   distribution and termination detection) applies only when there is
   copying to distribute — a scavenge that copies nothing never starts a
   worker. *)
let cost_parallel (cm : Cost_model.t) (stats : scavenge_stats) ~workers =
  if workers <= 1 then cost cm stats
  else begin
    let copied = stats.survivor_words + stats.tenured_words in
    let copy_work = cm.scavenge_per_word * copied in
    let serial =
      cm.scavenge_base
      + (cm.scavenge_per_remembered * stats.remembered_scanned)
    in
    let coordination = if copied = 0 then 0 else workers * 400 in
    serial + ((copy_work + workers - 1) / workers) + coordination
  end

(* ==================== parallel scavenging (E10) ====================

   A simulated multi-worker Cheney scavenge.  The roots and the
   entry-table snapshot are sharded deterministically across [workers]
   virtual workers; each worker copies into private to-space/old-space
   allocation buffers chunk-claimed from the shared regions (the abandoned
   tail of a buffer is sealed with a filler pseudo-object so every region
   still tiles exactly); the forwarding slot acts as the claim: the first
   worker to reach a from-space object copies it, everyone else reads the
   forwarding pointer.  Grey objects are scanned in rounds — each worker
   scans what it copied, idle workers steal half of the largest backlog at
   the round boundary, and the collection terminates when a round finds
   every queue empty.  Each worker accrues its own cycle timeline from the
   cost model, so the stop-the-world pause is the slowest worker's
   timeline plus the per-round barrier costs: speedup, load imbalance and
   coordination overhead all emerge from the simulation rather than from a
   closed-form divide. *)

type worker_stat = {
  worker : int;
  mutable copied_objects : int;
  mutable copied_words : int;
  mutable entries_scanned : int;
  mutable chunks_claimed : int;
  mutable steals : int;
  mutable copy_cycles : int;   (* copying survivors/tenures *)
  mutable scan_cycles : int;   (* entry-table rescan *)
  mutable coord_cycles : int;  (* claims, chunk claims, steals *)
  mutable busy_cycles : int;   (* copy + scan + coord, filled at the end *)
  mutable idle_cycles : int;   (* slowest worker's busy - own, at the end *)
}

type parallel_result = {
  workers : int;
  rounds : int;
  pause_cycles : int;          (* base + max worker timeline + barriers *)
  barrier_cycles : int;
  coordination_cycles : int;   (* claims + chunks + steals + barriers *)
  worker_stats : worker_stat array;
  degraded : bool;             (* a worker died; survivors finished *)
  failed_workers : int list;   (* in order of death *)
}

(* Coordination costs, derived from the cost model: claiming an object is
   an interlocked test-and-set on its header (the store-check cost),
   claiming a buffer chunk bumps the shared region pointer under an
   interlock, a steal is ready-queue-style surgery on another worker's
   backlog, and the per-round barrier is a Delay-quantum rendezvous plus
   one interlocked arrival per worker. *)
let chunk_words = 128
let claim_cost (cm : Cost_model.t) = cm.store_check
let chunk_claim_cost (cm : Cost_model.t) = 2 * cm.lock_acquire
let steal_cost (cm : Cost_model.t) = cm.sched_op + cm.lock_acquire
let barrier_cost (cm : Cost_model.t) ~workers =
  cm.delay_quantum + (workers * cm.lock_acquire)

(* A worker's private allocation buffer: a chunk of a shared region. *)
type buf = { mutable bptr : int; mutable blimit : int }

type wstate = {
  st : worker_stat;
  to_buf : buf;
  old_buf : buf;
  mutable grey : int list;  (* copied but unscanned, newest first *)
}

let make_wstate i =
  { st =
      { worker = i; copied_objects = 0; copied_words = 0; entries_scanned = 0;
        chunks_claimed = 0; steals = 0; copy_cycles = 0; scan_cycles = 0;
        coord_cycles = 0; busy_cycles = 0; idle_cycles = 0 };
    to_buf = { bptr = 0; blimit = 0 };
    old_buf = { bptr = 0; blimit = 0 };
    grey = [] }

(* Dead padding over the unused tail of an abandoned buffer; the filler
   writer lives in [Heap] and is shared with the incremental sweep. *)
let seal h b =
  let rem = b.blimit - b.bptr in
  if rem > 0 then write_filler h b.bptr rem;
  b.bptr <- b.blimit

(* Allocate [total] words for worker [w] out of [buf], chunk-claiming from
   the shared [region] when the buffer runs dry; [None] when the region
   itself cannot supply the object (the caller promotes or fails). *)
let alloc_in h san (cm : Cost_model.t) w buf region total =
  if buf.blimit - buf.bptr >= total then begin
    let a = buf.bptr in
    buf.bptr <- a + total;
    Some a
  end
  else if region_avail region >= total then begin
    seal h buf;
    let size = min (max chunk_words total) (region_avail region) in
    let base = region.ptr in
    region.ptr <- base + size;
    buf.bptr <- base + total;
    buf.blimit <- base + size;
    w.st.chunks_claimed <- w.st.chunks_claimed + 1;
    w.st.coord_cycles <- w.st.coord_cycles + chunk_claim_cost cm;
    (match san with
     | Some s ->
         Sanitizer.scavenge_chunk s ~worker:w.st.worker ~base
           ~limit:(base + size)
     | None -> ());
    Some base
  end
  else None

(* Claim and copy the object at [from_addr] into [w]'s buffers; the
   caller has already checked the forwarding slot, so in the simulated
   interleaving this worker wins the claim. *)
let copy_object_par h san cm stats to_region w from_addr =
  let total = size_words h from_addr in
  let next_age = min (age h from_addr + 1) Layout.age_mask in
  let promote () =
    let dest =
      match alloc_in h san cm w w.old_buf h.old total with
      | Some a -> Some a
      | None -> (
          (* bump headroom is gone: try the swept holes.  A hole is a
             one-object chunk — register it so the copy check passes. *)
          match free_take h total with
          | Some a ->
              w.st.chunks_claimed <- w.st.chunks_claimed + 1;
              w.st.coord_cycles <- w.st.coord_cycles + chunk_claim_cost cm;
              (match san with
               | Some s ->
                   Sanitizer.scavenge_chunk s ~worker:w.st.worker ~base:a
                     ~limit:(a + total)
               | None -> ());
              Some a
          | None -> None)
    in
    match dest with
    | Some a ->
        stats.tenured_objects <- stats.tenured_objects + 1;
        stats.tenured_words <- stats.tenured_words + total;
        a
    | None -> raise (Image_full "old space exhausted during scavenge")
  in
  let dest =
    if next_age >= h.tenure_age then promote ()
    else
      match alloc_in h san cm w w.to_buf to_region total with
      | Some a ->
          stats.survivor_objects <- stats.survivor_objects + 1;
          stats.survivor_words <- stats.survivor_words + total;
          a
      | None -> promote ()
  in
  Array.blit h.mem from_addr h.mem dest total;
  let flags = h.mem.(dest) land (Layout.flag_raw lor Layout.flag_bytes) in
  h.mem.(dest) <-
    (total lsl Layout.size_shift) lor (next_age lsl Layout.age_shift) lor flags;
  (* allocate-black: a mid-cycle promotion must not be swept (E18) *)
  if dest < h.new_base then mark_old_alloc h dest;
  let new_oop = Oop.of_addr dest in
  (match san with
   | Some s ->
       Sanitizer.scavenge_claim s ~worker:w.st.worker ~addr:from_addr;
       Sanitizer.scavenge_copy s ~worker:w.st.worker ~addr:dest ~words:total
   | None -> ());
  h.mem.(from_addr) <- Layout.forwarded_marker;
  h.mem.(from_addr + 1) <- new_oop;
  w.st.copied_objects <- w.st.copied_objects + 1;
  w.st.copied_words <- w.st.copied_words + total;
  w.st.copy_cycles <- w.st.copy_cycles + (cm.Cost_model.scavenge_per_word * total);
  w.st.coord_cycles <- w.st.coord_cycles + claim_cost cm;
  w.grey <- dest :: w.grey;
  new_oop

let forward_par h san cm stats ~in_from to_region w (o : Oop.t) =
  if not (Oop.is_ptr o) then o
  else begin
    let a = Oop.addr o in
    if not (in_from a) then o
    else if h.mem.(a) = Layout.forwarded_marker then h.mem.(a + 1)
    else copy_object_par h san cm stats to_region w a
  end

let update_fields_par h san cm stats ~in_from to_region w a =
  let limit = scan_limit h a in
  let base = a + Layout.header_words in
  let has_new = ref false in
  for i = 0 to limit - 1 do
    let v = h.mem.(base + i) in
    if is_new h v then begin
      let v' = forward_par h san cm stats ~in_from to_region w v in
      h.mem.(base + i) <- v';
      if is_new h v' then has_new := true
    end
  done;
  !has_new

(* Split the first [n] elements off a list. *)
let rec split_at n l =
  if n <= 0 then ([], l)
  else
    match l with
    | [] -> ([], [])
    | x :: rest ->
        let taken, left = split_at (n - 1) rest in
        (x :: taken, left)

let scavenge_parallel h (cm : Cost_model.t) ?injector ~workers () =
  let workers = max 1 workers in
  List.iter (fun hook -> hook ()) h.on_scavenge;
  let san = h.sanitizer in
  let stats = empty_stats () in
  let to_region = if h.past_is_a then h.surv_b else h.surv_a in
  let past = if h.past_is_a then h.surv_a else h.surv_b in
  let in_from a =
    (a >= h.eden.base && a < h.eden.limit)
    || (a >= past.base && a < past.limit)
  in
  to_region.ptr <- to_region.base;
  (match san with
   | Some s -> Sanitizer.scavenge_begin s ~workers
   | None -> ());
  let ws = Array.init workers make_wstate in
  (* Worker-failure bookkeeping.  A worker can only die at a round
     barrier (that is where failure is detected anyway: a dead worker is
     one that never arrives), and only while at least one other worker
     survives.  Its allocation buffers are sealed — the heap stays tiled,
     no matter where the worker was — and its grey backlog is handed to
     the lowest-id survivor, so the collection degrades toward the serial
     algorithm instead of losing reachable objects. *)
  let dead = Array.make workers false in
  let failed = ref [] in
  let recovery_barrier_cycles = ref 0 in
  let live_ids () =
    let ids = ref [] in
    for i = workers - 1 downto 0 do
      if not dead.(i) then ids := i :: !ids
    done;
    !ids
  in
  let maybe_kill_worker ~round =
    match injector with
    | None -> ()
    | Some inj -> (
        match Fault.at inj Fault.Gc_barrier with
        | Some (Fault.Worker_crash k as f) ->
            let live = live_ids () in
            let n = List.length live in
            if n > 1 then begin
              let victim = List.nth live (k mod n) in
              Fault.applied inj ~vp:victim ~now:(-1)
                ~resource:"parallel scavenge" f;
              (match san with
               | Some s ->
                   Sanitizer.fault_event s ~vp:victim ~now:(-1)
                     ~resource:"parallel scavenge"
                     (Printf.sprintf
                        "worker %d died at the round-%d barrier; %d survive"
                        victim round (n - 1))
               | None -> ());
              dead.(victim) <- true;
              failed := victim :: !failed;
              let v = ws.(victim) in
              seal h v.to_buf;
              seal h v.old_buf;
              let heir =
                List.hd (List.filter (fun i -> not dead.(i)) live)
              in
              ws.(heir).grey <- ws.(heir).grey @ v.grey;
              v.grey <- [];
              (* adopting the orphaned backlog is queue surgery, like a
                 steal; the survivors also pay one extra barrier noticing
                 the missing arrival before declaring it dead *)
              ws.(heir).st.coord_cycles <-
                ws.(heir).st.coord_cycles + steal_cost cm;
              recovery_barrier_cycles :=
                !recovery_barrier_cycles + barrier_cost cm ~workers
            end
        | Some _ | None -> ())
  in
  (* Round 0: deterministic sharding.  Root item [i] and entry-table
     entry [i] both go to worker [i mod workers]; each worker processes
     its whole shard (so the claim interleaving is fixed by worker id). *)
  let root_items =
    let items = ref [] in
    List.iter (fun cell -> items := `Cell cell :: !items) h.roots;
    List.iter
      (fun arr ->
        for i = Array.length arr - 1 downto 0 do
          items := `Slot (arr, i) :: !items
        done)
      h.array_roots;
    Array.of_list !items
  in
  (* A real copy, not the serial scavenge's aliasing snapshot: sharded
     workers read entries out of order, so a re-[remember] from one worker
     (which appends at the low indices of [h.rset]) must not clobber
     entries another worker has yet to scan. *)
  let old_rset = Array.sub h.rset 0 h.rset_len in
  let old_rset_len = h.rset_len in
  h.rset_len <- 0;
  Array.iter
    (fun w ->
      let wid = w.st.worker in
      Array.iteri
        (fun i item ->
          if i mod workers = wid then begin
            stats.roots_scanned <- stats.roots_scanned + 1;
            match item with
            | `Cell cell ->
                cell := forward_par h san cm stats ~in_from to_region w !cell
            | `Slot (arr, j) ->
                arr.(j) <-
                  forward_par h san cm stats ~in_from to_region w arr.(j)
          end)
        root_items;
      for i = 0 to old_rset_len - 1 do
        if i mod workers = wid then begin
          let a = old_rset.(i) in
          stats.remembered_scanned <- stats.remembered_scanned + 1;
          w.st.entries_scanned <- w.st.entries_scanned + 1;
          w.st.scan_cycles <-
            w.st.scan_cycles + cm.Cost_model.scavenge_per_remembered;
          (* clear the flag; [remember] below re-sets it if needed *)
          h.mem.(a) <- h.mem.(a) land lnot Layout.flag_remembered;
          if update_fields_par h san cm stats ~in_from to_region w a then
            remember h a
        end
      done)
    ws;
  (* Grey rounds: every worker scans what it copied; newly copied objects
     join the copier's next-round backlog.  At each round boundary the
     termination check doubles as the work-distribution point: a worker
     arriving with an empty queue steals half of the largest backlog. *)
  let rounds = ref 0 in
  let barrier_cycles = ref 0 in
  let live = ref (Array.exists (fun w -> w.grey <> []) ws) in
  while !live do
    incr rounds;
    barrier_cycles := !barrier_cycles + barrier_cost cm ~workers;
    maybe_kill_worker ~round:!rounds;
    Array.iter
      (fun thief ->
        if (not dead.(thief.st.worker)) && thief.grey = [] then begin
          let victim = ref None in
          Array.iter
            (fun v ->
              if dead.(v.st.worker) then ()
              else begin
                let n = List.length v.grey in
                match !victim with
                | Some (_, best) when best >= n -> ()
                | _ -> if n >= 2 then victim := Some (v, n)
              end)
            ws;
          match !victim with
          | Some (v, n) ->
              let stolen, kept = split_at (n / 2) v.grey in
              v.grey <- kept;
              thief.grey <- stolen;
              thief.st.steals <- thief.st.steals + 1;
              thief.st.coord_cycles <- thief.st.coord_cycles + steal_cost cm
          | None -> ()
        end)
      ws;
    Array.iter
      (fun w ->
        (* a dead worker's backlog was funnelled to a survivor on death *)
        let batch = if dead.(w.st.worker) then [] else List.rev w.grey in
        w.grey <- [];
        List.iter
          (fun a ->
            if a < h.new_base then begin
              (* promoted during this scavenge: old objects that still
                 refer to new space re-enter the entry table *)
              if update_fields_par h san cm stats ~in_from to_region w a then
                remember h a
            end
            else
              ignore (update_fields_par h san cm stats ~in_from to_region w a))
          batch)
      ws;
    live :=
      Array.exists (fun w -> (not dead.(w.st.worker)) && w.grey <> []) ws
  done;
  (* Seal every worker's open buffer so to-space and old space tile. *)
  Array.iter
    (fun w ->
      seal h w.to_buf;
      seal h w.old_buf)
    ws;
  (match san with Some s -> Sanitizer.scavenge_end s | None -> ());
  (* flip, exactly as the serial scavenge *)
  h.past_is_a <- not h.past_is_a;
  h.eden.ptr <- h.eden.base;
  Array.iter (fun r -> r.ptr <- r.base) h.eden_regions;
  h.scavenge_count <- h.scavenge_count + 1;
  h.words_copied_total <- h.words_copied_total + stats.survivor_words;
  h.tenured_words_total <- h.tenured_words_total + stats.tenured_words;
  h.last_scavenge <- stats;
  (* the pause is the slowest worker's timeline plus the barriers *)
  Array.iter
    (fun w ->
      w.st.busy_cycles <-
        w.st.copy_cycles + w.st.scan_cycles + w.st.coord_cycles)
    ws;
  let max_busy = Array.fold_left (fun m w -> max m w.st.busy_cycles) 0 ws in
  Array.iter (fun w -> w.st.idle_cycles <- max_busy - w.st.busy_cycles) ws;
  let barrier_cycles = !barrier_cycles + !recovery_barrier_cycles in
  let coordination_cycles =
    Array.fold_left (fun n w -> n + w.st.coord_cycles) barrier_cycles ws
  in
  ( stats,
    { workers;
      rounds = !rounds;
      pause_cycles = cm.Cost_model.scavenge_base + max_busy + barrier_cycles;
      barrier_cycles;
      coordination_cycles;
      worker_stats = Array.map (fun w -> w.st) ws;
      degraded = !failed <> [];
      failed_workers = List.rev !failed } )
