(* Field layouts of the VM-level objects that both the object memory and the
   interpreter must agree on.

   The scavenger needs the context layout because a context's frame beyond
   its stack pointer holds stale data that must not be scanned; the
   interpreter and scheduler need the rest. *)

(* Object header: two words.
   hdr0 = size lsl 8  lor  age lsl 4  lor  flags
   hdr1 = class oop (or forwarding oop during a scavenge, with hdr0 = -1)
   size counts words including the header. *)
let header_words = 2
let flag_remembered = 0b0001
let flag_raw = 0b0010        (* contents are not oops; scavenger skips them *)
let flag_bytes = 0b0100      (* raw contents are characters *)
(* Dead padding left by the parallel scavenger when a worker abandons a
   partially filled allocation buffer.  Fillers keep every region tileable
   (headers chain from base to ptr); they are never reachable, and may be
   as small as one word, so walkers must test this flag before assuming a
   two-word header. *)
let flag_filler = 0b1000
let age_shift = 4
let age_mask = 0b1111
let size_shift = 8
let forwarded_marker = -1

(* MethodContext / BlockContext: fixed slots, then the frame (temporaries
   followed by the evaluation stack).  [stackp] counts live frame slots
   (temporaries plus stack depth), so the scavenger scans exactly
   [fixed_slots + stackp] fields.  Block temporaries live in the home
   context, Smalltalk-80 style; a block's frame is only its stack. *)
module Ctx = struct
  let sender = 0        (* context oop, or nil at the bottom *)
  let pc = 1            (* smallint: next bytecode index *)
  let stackp = 2        (* smallint: live frame slots *)
  let meth = 3          (* CompiledMethod oop *)
  let receiver = 4
  let home = 5          (* nil for method contexts; home ctx for blocks *)
  let startpc = 6       (* smallint; block body entry, 0 for methods *)
  let argstart = 7      (* smallint; first home temp slot for block args *)
  let nargs = 8         (* smallint; block parameter count *)
  let fixed_slots = 9

  (* Contexts come in two standard sizes, like Smalltalk-80's small and
     large contexts, so the free lists can recycle them by size class. *)
  let small_frame = 24
  let large_frame = 96
end

(* CompiledMethod: info word, then pointers.  The bytecodes are a separate
   raw object so the method itself stays a uniformly scannable object. *)
module Method = struct
  let info = 0          (* smallint, packed: see Minfo below *)
  let selector = 1      (* Symbol *)
  let bytecodes = 2     (* raw words object *)
  let source = 3        (* String, or nil *)
  let defining_class = 4 (* for super sends *)
  let fixed_slots = 5   (* literals follow *)
end

(* Packing of the method info word. *)
module Minfo = struct
  let make ~nargs ~ntemps ~maxstack ~prim ~has_blocks =
    nargs lor (ntemps lsl 5) lor (maxstack lsl 13) lor (prim lsl 21)
    lor (if has_blocks then 1 lsl 31 else 0)
  let nargs i = i land 0x1f
  let ntemps i = (i lsr 5) land 0xff
  let maxstack i = (i lsr 13) land 0xff
  let prim i = (i lsr 21) land 0x3ff
  let has_blocks i = (i lsr 31) land 1 = 1
  (* set by the class builder when installing on the class side; super
     sends need it to pick the dictionary chain *)
  let class_side i = (i lsr 32) land 1 = 1
  let set_class_side i = i lor (1 lsl 32)
end

(* Class objects. *)
module Class = struct
  let name = 0            (* Symbol *)
  let superclass = 1      (* Class or nil *)
  let method_dict = 2     (* MethodDictionary *)
  let class_method_dict = 3
  let inst_size = 4       (* smallint: named instance variables *)
  let format = 5          (* smallint: 0 pointers, 1 raw words, 2 raw bytes *)
  let ivar_names = 6      (* Array of Symbols (all, incl. inherited) *)
  let category = 7        (* String *)
  let fixed_slots = 8
end

(* Instance format stored in a class: whether instances have indexable
   slots beyond the named instance variables, and of what kind. *)
module Class_format = struct
  let pointers = 0        (* named ivars only *)
  let variable = 1        (* indexable pointer slots (Array) *)
  let raw_words = 2       (* indexable machine words *)
  let raw_bytes = 3       (* indexable bytes/characters (String, Symbol) *)
end

(* MethodDictionary: two parallel arrays, scanned linearly on cache misses. *)
module Mdict = struct
  let selectors = 0       (* Array of Symbols *)
  let methods = 1         (* Array of CompiledMethods *)
  let size = 2            (* smallint: used entries *)
  let fixed_slots = 3
end

(* Link / Process (Process embeds its link, as in Smalltalk-80). *)
module Process = struct
  let next_link = 0
  let suspended_context = 1
  let priority = 2        (* smallint 1..8 *)
  let my_list = 3         (* the LinkedList or Semaphore it waits on, or nil *)
  let running_on = 4      (* smallint processor id, or nil — MS only *)
  let name = 5            (* String or nil *)
  let state = 6           (* smallint: see Process_state *)
  let fixed_slots = 7
end

module Process_state = struct
  let runnable = 0
  let terminated = 1
  let suspend_requested = 2  (* asked to suspend while running elsewhere *)
end

module Linked_list = struct
  let first = 0
  let last = 1
  let fixed_slots = 2
end

(* Semaphore = LinkedList of waiting Processes + excess signals. *)
module Semaphore = struct
  let first = 0
  let last = 1
  let excess_signals = 2  (* smallint *)
  let fixed_slots = 3
end

module Scheduler = struct
  let ready_lists = 0     (* Array of LinkedList, one per priority *)
  let active_process = 1  (* the slot MS's reorganization ignores *)
  let fixed_slots = 2
  let priorities = 8
end

module Association = struct
  let key = 0             (* Symbol *)
  let value = 1
  let fixed_slots = 2
end
