(* The object memory: a flat word array divided into an old space and a new
   space (eden plus two survivor semispaces), managed by Generation
   Scavenging exactly as in Berkeley Smalltalk (Ungar '84): allocation is a
   pointer bump in eden; survivors ping-pong between the two survivor
   spaces and are tenured into old space after [tenure_age] scavenges; old
   objects that may refer to new objects are recorded in the entry table
   (remembered set), marked by a per-object header flag.

   Multiprocessor strategies from the paper appear here as allocation
   policies: [Unlocked] is single-threaded baseline BS; [Shared_locked] is
   MS's serialized allocation (the lock itself lives at the VM layer, which
   charges its cycles); [Replicated_eden] is the paper's proposed
   "replication of the new-object space", giving each processor a private
   eden region. *)

exception Scavenge_needed
exception Image_full of string

type alloc_policy = Unlocked | Shared_locked | Replicated_eden

type region = {
  mutable ptr : int;
  base : int;
  limit : int;
}

type scavenge_stats = {
  mutable survivor_objects : int;
  mutable survivor_words : int;
  mutable tenured_objects : int;
  mutable tenured_words : int;
  mutable remembered_scanned : int;
  mutable roots_scanned : int;
}

let empty_stats () = {
  survivor_objects = 0; survivor_words = 0;
  tenured_objects = 0; tenured_words = 0;
  remembered_scanned = 0; roots_scanned = 0;
}

type t = {
  mem : int array;
  old : region;
  eden : region;                  (* whole eden; also used when shared *)
  eden_regions : region array;    (* per-processor slices when replicated *)
  policy : alloc_policy;
  new_base : int;                 (* everything at/above this is new space *)
  surv_a : region;
  surv_b : region;
  mutable past_is_a : bool;
  tenure_age : int;
  mutable nil : Oop.t;            (* fill value for pointer objects *)
  (* the entry table *)
  mutable rset : int array;       (* word addresses of remembered objects *)
  mutable rset_len : int;
  (* scavenge roots and hooks *)
  mutable roots : Oop.t ref list;
  mutable array_roots : Oop.t array list;
  mutable on_scavenge : (unit -> unit) list;
  mutable method_ctx_class : Oop.t;
  mutable block_ctx_class : Oop.t;
  (* serialization checking (attached by the VM layer) *)
  mutable sanitizer : Sanitizer.t option;
  (* incremental old-space collection (E18): swept holes are threaded on
     size-segregated free lists (buckets 0..15 hold exact sizes 2..17,
     bucket 16 is first-fit overflow for >= 18 words); the hooks are
     installed by the VM layer when the major collector is enabled *)
  free_lists : int list array;
  mutable free_words : int;              (* words threaded on the lists *)
  mutable free_list_hits : int;
  mutable free_reused_words : int;
  mutable scavenge_holes : int list;     (* free-list promotions, per scavenge *)
  mutable major_dirty : (Oop.t -> unit) option;   (* the write barrier *)
  mutable on_old_alloc : (int -> unit) option;    (* allocate-black *)
  mutable on_old_exhausted : (int -> bool) option; (* forced completion *)
  (* statistics *)
  mutable allocations : int;
  mutable words_allocated : int;
  mutable scavenge_count : int;
  mutable words_copied_total : int;
  mutable tenured_words_total : int;
  mutable last_scavenge : scavenge_stats;
}

let region base words = { ptr = base; base; limit = base + words }
let region_used r = r.ptr - r.base
let region_avail r = r.limit - r.ptr

let create ?(policy = Unlocked) ?(processors = 1) ?(tenure_age = 4)
    ~old_words ~eden_words ~survivor_words () =
  if processors < 1 then invalid_arg "Heap.create: processors";
  let reserved = 2 in
  let old_base = reserved in
  let eden_base = old_base + old_words in
  let surv_a_base = eden_base + eden_words in
  let surv_b_base = surv_a_base + survivor_words in
  let total = surv_b_base + survivor_words in
  let eden = region eden_base eden_words in
  let eden_regions =
    match policy with
    | Replicated_eden ->
        (* the last slice absorbs the division remainder, so the slices
           tile eden exactly (Verify checks this invariant) *)
        let slice = eden_words / processors in
        Array.init processors (fun i ->
            let base = eden_base + (i * slice) in
            let words =
              if i = processors - 1 then eden_words - (i * slice) else slice
            in
            region base words)
    | Unlocked | Shared_locked -> [| eden |]
  in
  { mem = Array.make total 0;
    old = region old_base old_words;
    eden;
    eden_regions;
    policy;
    new_base = eden_base;
    surv_a = region surv_a_base survivor_words;
    surv_b = region surv_b_base survivor_words;
    past_is_a = true;
    tenure_age;
    nil = Oop.sentinel;
    rset = Array.make 1024 0;
    rset_len = 0;
    roots = [];
    array_roots = [];
    on_scavenge = [];
    method_ctx_class = Oop.sentinel;
    block_ctx_class = Oop.sentinel;
    sanitizer = None;
    free_lists = Array.make 17 [];
    free_words = 0;
    free_list_hits = 0;
    free_reused_words = 0;
    scavenge_holes = [];
    major_dirty = None;
    on_old_alloc = None;
    on_old_exhausted = None;
    allocations = 0;
    words_allocated = 0;
    scavenge_count = 0;
    words_copied_total = 0;
    tenured_words_total = 0;
    last_scavenge = empty_stats () }

let set_nil h nil = h.nil <- nil
let set_sanitizer h san = h.sanitizer <- Some san
let add_root h cell = h.roots <- cell :: h.roots
let remove_root h cell =
  h.roots <- List.filter (fun c -> not (c == cell)) h.roots
let add_array_root h arr = h.array_roots <- arr :: h.array_roots
let on_scavenge h hook = h.on_scavenge <- hook :: h.on_scavenge

let is_new h (o : Oop.t) = Oop.is_ptr o && Oop.addr o >= h.new_base
let is_old h (o : Oop.t) =
  Oop.is_ptr o && Oop.addr o >= 2 && Oop.addr o < h.new_base

(* --- header access --- *)

let hdr0 h a = h.mem.(a)
let size_words h a = h.mem.(a) asr Layout.size_shift
let slots h a = size_words h a - Layout.header_words
let class_at h a = h.mem.(a + 1)
let set_class h a cls = h.mem.(a + 1) <- cls
let age h a = (h.mem.(a) lsr Layout.age_shift) land Layout.age_mask
let is_raw h a = h.mem.(a) land Layout.flag_raw <> 0
let is_bytes h a = h.mem.(a) land Layout.flag_bytes <> 0
let is_remembered h a = h.mem.(a) land Layout.flag_remembered <> 0
let is_filler h a = h.mem.(a) land Layout.flag_filler <> 0

let class_of h (o : Oop.t) ~small_int_class =
  if Oop.is_small o then small_int_class else class_at h (Oop.addr o)

(* --- field access --- *)

let get h (o : Oop.t) i = h.mem.(Oop.addr o + Layout.header_words + i)

(* Raw store, for non-pointer values and for new-space receivers. *)
let set_raw h (o : Oop.t) i v =
  h.mem.(Oop.addr o + Layout.header_words + i) <- v

(* --- the entry table --- *)

let remember h a =
  (match h.sanitizer with
   | Some san when Sanitizer.checking san ->
       Sanitizer.check_guarded san ~resource:"entry table" ~vp:(-1) ~now:(-1)
         ~detail:(string_of_int a)
   | _ -> ());
  if h.rset_len = Array.length h.rset then begin
    let bigger = Array.make (2 * Array.length h.rset) 0 in
    Array.blit h.rset 0 bigger 0 h.rset_len;
    h.rset <- bigger
  end;
  h.rset.(h.rset_len) <- a;
  h.rset_len <- h.rset_len + 1;
  h.mem.(a) <- h.mem.(a) lor Layout.flag_remembered

let remembered_count h = h.rset_len

(* True when [store_ptr h o _ v] would insert [o] into the entry table —
   lets callers acquire the entry-table lock before the store instead of
   charging it after the fact. *)
let store_would_remember h (o : Oop.t) (v : Oop.t) =
  let a = Oop.addr o in
  a < h.new_base && a >= 2 && is_new h v && not (is_remembered h a)

(* The incremental collector's write barrier, when installed (E18):
   Dijkstra-style incremental update — the stored target is shaded, so no
   pointer to a white old object can be hidden inside an already-scanned
   one.  Pointer stores that bypass [store_ptr] (scheduler queue surgery,
   free-context threading) call this directly before their raw store. *)
let major_note h (v : Oop.t) =
  match h.major_dirty with Some f -> f v | None -> ()

(* Pointer store with the generation-scavenging store check.  Returns true
   when the store inserted the receiver into the entry table, so the caller
   can charge the entry-table lock. *)
let store_ptr h (o : Oop.t) i (v : Oop.t) =
  let a = Oop.addr o in
  h.mem.(a + Layout.header_words + i) <- v;
  (match h.major_dirty with Some f -> f v | None -> ());
  if a < h.new_base && a >= 2 && is_new h v && not (is_remembered h a) then begin
    remember h a;
    true
  end else false

(* Swap-remove [a]'s entry-table entry: the incremental sweep purges the
   entries of objects it frees.  Linear, but sweeps touch few remembered
   objects relative to the table walks the scavenger already does. *)
let rset_remove h a =
  let i = ref 0 in
  while !i < h.rset_len && h.rset.(!i) <> a do incr i done;
  if !i < h.rset_len then begin
    h.rset_len <- h.rset_len - 1;
    h.rset.(!i) <- h.rset.(h.rset_len)
  end

(* --- allocation --- *)

let eden_region h vp =
  match h.policy with
  | Replicated_eden -> h.eden_regions.(vp)
  | Unlocked | Shared_locked -> h.eden

let eden_avail h ~vp = region_avail (eden_region h vp)
let eden_used h =
  match h.policy with
  | Replicated_eden ->
      Array.fold_left (fun n r -> n + region_used r) 0 h.eden_regions
  | Unlocked | Shared_locked -> region_used h.eden

let write_header h a ~total ~flags ~age ~cls =
  h.mem.(a) <-
    (total lsl Layout.size_shift) lor (age lsl Layout.age_shift) lor flags;
  h.mem.(a + 1) <- cls

let fill h a ~from ~until v =
  for i = from to until - 1 do h.mem.(a + i) <- v done

let flags_of_format ~raw ~bytes =
  (if raw then Layout.flag_raw else 0) lor (if bytes then Layout.flag_bytes else 0)

(* Allocate in new space on processor [vp].  Raises [Scavenge_needed] when
   eden cannot satisfy the request; the engine runs a scavenge rendezvous
   and retries.  The interpreter checks a low-water mark before each step,
   so this exception only fires for unusually large requests. *)
let alloc_new h ~vp ~slots ~raw ?(bytes = false) ~cls () =
  let total = slots + Layout.header_words in
  let r = eden_region h vp in
  if region_avail r < total then raise Scavenge_needed;
  (match h.sanitizer with
   | Some san when Sanitizer.checking san ->
       Sanitizer.check_guarded san ~resource:"allocation" ~vp ~now:(-1)
         ~detail:(Printf.sprintf "%d words" total)
   | _ -> ());
  let a = r.ptr in
  r.ptr <- r.ptr + total;
  write_header h a ~total ~flags:(flags_of_format ~raw ~bytes) ~age:0 ~cls;
  fill h a ~from:Layout.header_words ~until:total (if raw then 0 else h.nil);
  h.allocations <- h.allocations + 1;
  h.words_allocated <- h.words_allocated + total;
  Oop.of_addr a

(* --- the old-space free lists (E18) --- *)

(* Dead padding: a raw filler pseudo-object.  Fillers may be a single
   word (header only), which is why region walkers test the flag before
   assuming a two-word header.  Written by the parallel scavenger over
   abandoned buffer tails and by the incremental sweep over reclaimed
   holes. *)
let write_filler h a n =
  h.mem.(a) <-
    (n lsl Layout.size_shift) lor Layout.flag_raw lor Layout.flag_filler;
  if n >= Layout.header_words then h.mem.(a + 1) <- Oop.sentinel

let free_bucket n = if n < 18 then n - 2 else 16

(* Thread the hole [a, a+n) onto its free list.  One-word scraps are
   written as fillers but not threaded; the next sweep coalesces them
   into their neighbours. *)
let free_add h a n =
  write_filler h a n;
  if n >= 2 then begin
    let b = free_bucket n in
    h.free_lists.(b) <- a :: h.free_lists.(b);
    h.free_words <- h.free_words + n
  end

(* Drop every threaded hole (they stay as plain fillers in the heap).
   The sweep calls this before rebuilding the lists, so a filler absorbed
   into a larger coalesced hole can never survive as a stale entry. *)
let free_reset h =
  Array.fill h.free_lists 0 (Array.length h.free_lists) [];
  h.free_words <- 0

(* Carve [total] words from the start of the hole [a, a+sz): re-thread a
   remainder of 2+ words, leave a 1-word filler scrap otherwise. *)
let free_carve h a sz total =
  let rem = sz - total in
  if rem >= 2 then free_add h (a + total) rem
  else if rem = 1 then write_filler h (a + total) 1;
  a

(* Take [total] words from the free lists: exact buckets smallest-first,
   then first fit in the overflow bucket. *)
let free_take h total =
  if total < 2 then None
  else begin
    let found = ref None in
    let b = ref (free_bucket total) in
    while !found = None && !b < 16 do
      (match h.free_lists.(!b) with
       | a :: rest ->
           h.free_lists.(!b) <- rest;
           h.free_words <- h.free_words - (!b + 2);
           found := Some (a, !b + 2)
       | [] -> ());
      if !found = None then incr b
    done;
    (match !found with
     | Some _ -> ()
     | None ->
         let rec fit acc = function
           | [] -> ()
           | a :: rest ->
               let sz = size_words h a in
               if sz >= total then begin
                 h.free_lists.(16) <- List.rev_append acc rest;
                 h.free_words <- h.free_words - sz;
                 found := Some (a, sz)
               end
               else fit (a :: acc) rest
         in
         fit [] h.free_lists.(16));
    match !found with
    | Some (a, sz) ->
        h.free_list_hits <- h.free_list_hits + 1;
        h.free_reused_words <- h.free_reused_words + total;
        Some (free_carve h a sz total)
    | None -> None
  end

(* Raw old-space allocation: the free lists first, then the bump pointer;
   [None] when neither can supply [total] words. *)
let alloc_old_addr h total =
  match free_take h total with
  | Some a -> Some a
  | None ->
      if region_avail h.old >= total then begin
        let a = h.old.ptr in
        h.old.ptr <- h.old.ptr + total;
        Some a
      end
      else None

(* Allocation for scavenge-time promotion.  A promotion satisfied from a
   swept hole lands outside the Cheney cursor's promote window, so its
   address is queued on [scavenge_holes] for the scavenger to scan as an
   explicit grey object. *)
let promote_alloc h total =
  match free_take h total with
  | Some a ->
      h.scavenge_holes <- a :: h.scavenge_holes;
      Some a
  | None ->
      if region_avail h.old >= total then begin
        let a = h.old.ptr in
        h.old.ptr <- h.old.ptr + total;
        Some a
      end
      else None

(* Allocate-black: objects entering old space mid-cycle are marked (and
   greyed) by the collector's hook, so an in-flight mark-sweep can never
   free them. *)
let mark_old_alloc h a =
  match h.on_old_alloc with Some f -> f a | None -> ()

(* Allocate directly in old space: permanent image objects (classes,
   methods, literals) and objects too large for eden.  [Image_full] is a
   last resort: with the incremental collector enabled, the
   [on_old_exhausted] hook force-completes an in-flight major cycle (or
   runs a full one) and the allocation is retried against whatever the
   sweep reclaimed. *)
let alloc_old h ~slots ~raw ?(bytes = false) ~cls () =
  let total = slots + Layout.header_words in
  let a =
    match alloc_old_addr h total with
    | Some a -> a
    | None -> (
        match h.on_old_exhausted with
        | Some force when force total -> (
            match alloc_old_addr h total with
            | Some a -> a
            | None -> raise (Image_full "old space exhausted"))
        | _ -> raise (Image_full "old space exhausted"))
  in
  write_header h a ~total ~flags:(flags_of_format ~raw ~bytes) ~age:0 ~cls;
  fill h a ~from:Layout.header_words ~until:total (if raw then 0 else h.nil);
  mark_old_alloc h a;
  h.allocations <- h.allocations + 1;
  h.words_allocated <- h.words_allocated + total;
  Oop.of_addr a

(* --- strings and symbols (raw byte objects, one character per word) --- *)

let alloc_string_old h ~cls s =
  let n = String.length s in
  let o = alloc_old h ~slots:n ~raw:true ~bytes:true ~cls () in
  String.iteri (fun i c -> set_raw h o i (Char.code c)) s;
  o

let alloc_string_new h ~vp ~cls s =
  let n = String.length s in
  let o = alloc_new h ~vp ~slots:n ~raw:true ~bytes:true ~cls () in
  String.iteri (fun i c -> set_raw h o i (Char.code c)) s;
  o

let string_value h (o : Oop.t) =
  let n = slots h (Oop.addr o) in
  String.init n (fun i -> Char.chr (get h o i land 0xff))

(* --- statistics --- *)

(* Live occupancy: words past the bump pointer minus words threaded on the
   free lists (holes are dead by construction). *)
let old_used h = region_used h.old - h.free_words
let old_avail h = region_avail h.old + h.free_words
let free_words h = h.free_words
let free_list_hits h = h.free_list_hits
let free_reused_words h = h.free_reused_words
let survivor_used h = region_used (if h.past_is_a then h.surv_a else h.surv_b)
let scavenge_count h = h.scavenge_count
let allocations h = h.allocations
let words_allocated h = h.words_allocated
let words_copied_total h = h.words_copied_total
let tenured_words_total h = h.tenured_words_total
let last_scavenge h = h.last_scavenge
