(** Heap consistency checking for the test suite and the property tests.

    Walks every allocated object and checks structural invariants:
    headers tile each space exactly; every scanned pointer field refers to
    a valid object (or is a SmallInteger); no live object is marked
    forwarded outside a scavenge; the store-check invariant (every old
    object with a new-space reference in a scanned field is remembered);
    and every remembered flag has an entry-table entry. *)

type problem = { addr : int; what : string }

val pp_problem : Format.formatter -> problem -> unit

(** The empty list means the heap is consistent.  Also validates the
    old-space free lists (E18): every threaded hole is a filler inside
    allocated old space, sized for its bucket, threaded once, and the
    threaded total matches [free_words]. *)
val check : Heap.t -> problem list

(** Reachability versus the incremental collector's mark bitmap: run
    between mark completion and the first sweep slice, reports every
    old object reachable from [roots] that [marked] does not cover.
    The empty list means the marker lost nothing (E18). *)
val check_marked :
  Heap.t -> marked:(int -> bool) -> roots:Oop.t list -> problem list

(** A census of the objects reachable from the given roots: totals plus
    per-class counts, keyed by class-oop address (classes live at stable
    old-space addresses, so the counts are comparable across runs of the
    same program).  Reachability is schedule-invariant where whole-heap
    counts are not — the schedule explorer's differential oracle compares
    censuses taken from the same stable roots.

    Traversal does not enter objects satisfying [stop] (they are neither
    counted nor scanned); callers use it to fence off runtime state that
    legitimately varies with the schedule, such as Process objects and
    their context chains.

    [class_key] overrides the per-class key: E19 compares censuses
    across snapshot/restore and independently-bootstrapped replicas,
    where a class's address is an accident of allocation order, so those
    callers key each class oop by an identity derived from its name
    instead. *)
type census = {
  objects : int;
  words : int;
  per_class : (int * int) list;
}

val census :
  ?stop:(Oop.t -> bool) ->
  ?class_key:(Oop.t -> int) ->
  Heap.t ->
  roots:Oop.t list ->
  census

val pp_census : Format.formatter -> census -> unit

(** One comparable word per census (FNV-1a over totals and the sorted
    per-class table): the replica fingerprint E19 stores in checkpoint
    headers and divergence reports. *)
val fingerprint : census -> int
