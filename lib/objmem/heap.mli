(** The object memory: a flat word array divided into an old space and a
    new space (eden plus two survivor semispaces), managed by Generation
    Scavenging exactly as in Berkeley Smalltalk: allocation is a pointer
    bump in eden; survivors ping-pong between the survivor spaces and are
    tenured after [tenure_age] scavenges; old objects that may refer to
    new objects are recorded in the entry table, marked by a header flag.

    The record is transparent: the scavenger, the verifier and the
    interpreter's fast paths read it directly. *)

(** Raised by {!alloc_new} when eden cannot satisfy a request; the engine
    runs a scavenge rendezvous and retries. *)
exception Scavenge_needed

(** Old space (the image) is full: a fatal condition, as in BS. *)
exception Image_full of string

(** The paper's strategies for the new-object space: [Unlocked] is
    single-threaded baseline BS; [Shared_locked] is MS's serialized
    allocation (the lock lives at the VM layer); [Replicated_eden] is the
    per-processor allocation areas the paper proposes. *)
type alloc_policy = Unlocked | Shared_locked | Replicated_eden

type region = {
  mutable ptr : int;  (** next free word *)
  base : int;
  limit : int;
}

type scavenge_stats = {
  mutable survivor_objects : int;
  mutable survivor_words : int;
  mutable tenured_objects : int;
  mutable tenured_words : int;
  mutable remembered_scanned : int;
  mutable roots_scanned : int;
}

val empty_stats : unit -> scavenge_stats

type t = {
  mem : int array;  (** the whole object memory, addressed by word *)
  old : region;
  eden : region;
  eden_regions : region array;  (** per-processor slices when replicated *)
  policy : alloc_policy;
  new_base : int;  (** everything at/above this address is new space *)
  surv_a : region;
  surv_b : region;
  mutable past_is_a : bool;
  tenure_age : int;
  mutable nil : Oop.t;  (** fill value for fresh pointer objects *)
  mutable rset : int array;  (** the entry table: remembered addresses *)
  mutable rset_len : int;
  mutable roots : Oop.t ref list;
  mutable array_roots : Oop.t array list;
  mutable on_scavenge : (unit -> unit) list;
  mutable method_ctx_class : Oop.t;  (** so the scavenger can bound frames *)
  mutable block_ctx_class : Oop.t;
  mutable sanitizer : Sanitizer.t option;  (** attached by the VM layer *)
  free_lists : int list array;
      (** old-space holes by size: buckets 0..15 hold exact sizes 2..17
          words, bucket 16 is first-fit overflow (E18) *)
  mutable free_words : int;  (** words threaded on the free lists *)
  mutable free_list_hits : int;
  mutable free_reused_words : int;
  mutable scavenge_holes : int list;
      (** promotions satisfied from holes in the current scavenge; the
          scavenger drains these as explicit grey objects *)
  mutable major_dirty : (Oop.t -> unit) option;
      (** the incremental collector's write barrier, when a cycle runs *)
  mutable on_old_alloc : (int -> unit) option;
      (** allocate-black hook for objects entering old space mid-cycle *)
  mutable on_old_exhausted : (int -> bool) option;
      (** force-completes an in-flight major cycle; true if space may
          have been reclaimed and the allocation should be retried *)
  mutable allocations : int;
  mutable words_allocated : int;
  mutable scavenge_count : int;
  mutable words_copied_total : int;
  mutable tenured_words_total : int;
  mutable last_scavenge : scavenge_stats;
}

val region_used : region -> int

val region_avail : region -> int

val create :
  ?policy:alloc_policy ->
  ?processors:int ->
  ?tenure_age:int ->
  old_words:int ->
  eden_words:int ->
  survivor_words:int ->
  unit ->
  t

val set_nil : t -> Oop.t -> unit

(** Attach a serialization checker: entry-table inserts must then happen
    inside the "entry table" lock's critical section and eden allocations
    inside the allocation lock's (when those guards are registered). *)
val set_sanitizer : t -> Sanitizer.t -> unit

(** Register a cell the scavenger must treat (and update) as a root. *)
val add_root : t -> Oop.t ref -> unit

val remove_root : t -> Oop.t ref -> unit

val add_array_root : t -> Oop.t array -> unit

(** Register a hook run at the start of every scavenge (cache flushes). *)
val on_scavenge : t -> (unit -> unit) -> unit

val is_new : t -> Oop.t -> bool

val is_old : t -> Oop.t -> bool

(** {2 Headers} *)

val hdr0 : t -> int -> int

val size_words : t -> int -> int

(** Field count, excluding the two header words. *)
val slots : t -> int -> int

val class_at : t -> int -> Oop.t

val set_class : t -> int -> Oop.t -> unit

val age : t -> int -> int

val is_raw : t -> int -> bool

val is_bytes : t -> int -> bool

val is_remembered : t -> int -> bool

(** Dead padding written by the parallel scavenger when it abandons a
    partially filled worker buffer; fillers may be a single word, so
    region walkers must test this before reading a class slot. *)
val is_filler : t -> int -> bool

val class_of : t -> Oop.t -> small_int_class:Oop.t -> Oop.t

(** {2 Fields} *)

val get : t -> Oop.t -> int -> Oop.t

(** Raw store: non-pointer values, or new-space receivers. *)
val set_raw : t -> Oop.t -> int -> int -> unit

(** True when [store_ptr h o i v] would insert [o] into the entry table,
    so the caller can take the entry-table lock {e before} the store. *)
val store_would_remember : t -> Oop.t -> Oop.t -> bool

(** Pointer store with the generation-scavenging store check; true when
    the receiver was just inserted into the entry table (the caller
    charges the entry-table lock). *)
val store_ptr : t -> Oop.t -> int -> Oop.t -> bool

(** Run the incremental collector's write barrier on a stored value, if
    one is installed.  Pointer stores that bypass {!store_ptr} (scheduler
    queue surgery, free-context threading) must call this before their
    raw store (E18). *)
val major_note : t -> Oop.t -> unit

(** Insert an address into the entry table and set its flag. *)
val remember : t -> int -> unit

(** Swap-remove an address from the entry table (the incremental sweep
    purges entries of objects it frees). *)
val rset_remove : t -> int -> unit

val remembered_count : t -> int

(** {2 Allocation} *)

val eden_region : t -> int -> region

val eden_avail : t -> vp:int -> int

val eden_used : t -> int

(** Allocate in new space on processor [vp]; pointer objects are filled
    with nil, raw ones with zero.
    @raise Scavenge_needed when the region is full. *)
val alloc_new :
  t -> vp:int -> slots:int -> raw:bool -> ?bytes:bool -> cls:Oop.t -> unit -> Oop.t

(** Allocate a permanent object directly in old space: the free lists
    first, then the bump pointer, then (with the incremental collector
    enabled) a forced major-cycle completion and a retry.
    @raise Image_full when old space is exhausted even after that. *)
val alloc_old : t -> slots:int -> raw:bool -> ?bytes:bool -> cls:Oop.t -> unit -> Oop.t

(** {2 The old-space free lists (E18)} *)

(** Write a raw filler pseudo-object over [a, a+n); [n] may be 1. *)
val write_filler : t -> int -> int -> unit

(** Thread the hole [a, a+n) onto its size bucket (and write a filler
    over it); one-word scraps become fillers but are not threaded. *)
val free_add : t -> int -> int -> unit

(** Drop every threaded hole, leaving them as plain fillers; the sweep
    calls this before rebuilding the lists. *)
val free_reset : t -> unit

(** Take [total] words from the free lists (exact bucket first, then
    first-fit overflow), carving and re-threading any remainder. *)
val free_take : t -> int -> int option

(** Raw old-space allocation of [total] words: free lists, then bump
    pointer; [None] when neither can satisfy it. *)
val alloc_old_addr : t -> int -> int option

(** Like {!alloc_old_addr}, but queues free-list hits on
    [scavenge_holes] so the scavenger scans them as explicit greys. *)
val promote_alloc : t -> int -> int option

(** Run the allocate-black hook on a freshly allocated old address. *)
val mark_old_alloc : t -> int -> unit

val alloc_string_old : t -> cls:Oop.t -> string -> Oop.t

val alloc_string_new : t -> vp:int -> cls:Oop.t -> string -> Oop.t

val string_value : t -> Oop.t -> string

(** {2 Statistics} *)

(** Live old-space occupancy: words past the bump pointer minus words
    threaded on the free lists. *)
val old_used : t -> int

(** Words still allocatable in old space (bump headroom plus holes). *)
val old_avail : t -> int

val free_words : t -> int

val free_list_hits : t -> int

val free_reused_words : t -> int

val survivor_used : t -> int

val scavenge_count : t -> int

val allocations : t -> int

val words_allocated : t -> int

val words_copied_total : t -> int

val tenured_words_total : t -> int

val last_scavenge : t -> scavenge_stats
