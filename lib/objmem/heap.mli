(** The object memory: a flat word array divided into an old space and a
    new space (eden plus two survivor semispaces), managed by Generation
    Scavenging exactly as in Berkeley Smalltalk: allocation is a pointer
    bump in eden; survivors ping-pong between the survivor spaces and are
    tenured after [tenure_age] scavenges; old objects that may refer to
    new objects are recorded in the entry table, marked by a header flag.

    The record is transparent: the scavenger, the verifier and the
    interpreter's fast paths read it directly. *)

(** Raised by {!alloc_new} when eden cannot satisfy a request; the engine
    runs a scavenge rendezvous and retries. *)
exception Scavenge_needed

(** Old space (the image) is full: a fatal condition, as in BS. *)
exception Image_full of string

(** The paper's strategies for the new-object space: [Unlocked] is
    single-threaded baseline BS; [Shared_locked] is MS's serialized
    allocation (the lock lives at the VM layer); [Replicated_eden] is the
    per-processor allocation areas the paper proposes. *)
type alloc_policy = Unlocked | Shared_locked | Replicated_eden

type region = {
  mutable ptr : int;  (** next free word *)
  base : int;
  limit : int;
}

type scavenge_stats = {
  mutable survivor_objects : int;
  mutable survivor_words : int;
  mutable tenured_objects : int;
  mutable tenured_words : int;
  mutable remembered_scanned : int;
  mutable roots_scanned : int;
}

val empty_stats : unit -> scavenge_stats

type t = {
  mem : int array;  (** the whole object memory, addressed by word *)
  old : region;
  eden : region;
  eden_regions : region array;  (** per-processor slices when replicated *)
  policy : alloc_policy;
  new_base : int;  (** everything at/above this address is new space *)
  surv_a : region;
  surv_b : region;
  mutable past_is_a : bool;
  tenure_age : int;
  mutable nil : Oop.t;  (** fill value for fresh pointer objects *)
  mutable rset : int array;  (** the entry table: remembered addresses *)
  mutable rset_len : int;
  mutable roots : Oop.t ref list;
  mutable array_roots : Oop.t array list;
  mutable on_scavenge : (unit -> unit) list;
  mutable method_ctx_class : Oop.t;  (** so the scavenger can bound frames *)
  mutable block_ctx_class : Oop.t;
  mutable sanitizer : Sanitizer.t option;  (** attached by the VM layer *)
  mutable allocations : int;
  mutable words_allocated : int;
  mutable scavenge_count : int;
  mutable words_copied_total : int;
  mutable tenured_words_total : int;
  mutable last_scavenge : scavenge_stats;
}

val region_used : region -> int

val region_avail : region -> int

val create :
  ?policy:alloc_policy ->
  ?processors:int ->
  ?tenure_age:int ->
  old_words:int ->
  eden_words:int ->
  survivor_words:int ->
  unit ->
  t

val set_nil : t -> Oop.t -> unit

(** Attach a serialization checker: entry-table inserts must then happen
    inside the "entry table" lock's critical section and eden allocations
    inside the allocation lock's (when those guards are registered). *)
val set_sanitizer : t -> Sanitizer.t -> unit

(** Register a cell the scavenger must treat (and update) as a root. *)
val add_root : t -> Oop.t ref -> unit

val remove_root : t -> Oop.t ref -> unit

val add_array_root : t -> Oop.t array -> unit

(** Register a hook run at the start of every scavenge (cache flushes). *)
val on_scavenge : t -> (unit -> unit) -> unit

val is_new : t -> Oop.t -> bool

val is_old : t -> Oop.t -> bool

(** {2 Headers} *)

val hdr0 : t -> int -> int

val size_words : t -> int -> int

(** Field count, excluding the two header words. *)
val slots : t -> int -> int

val class_at : t -> int -> Oop.t

val set_class : t -> int -> Oop.t -> unit

val age : t -> int -> int

val is_raw : t -> int -> bool

val is_bytes : t -> int -> bool

val is_remembered : t -> int -> bool

(** Dead padding written by the parallel scavenger when it abandons a
    partially filled worker buffer; fillers may be a single word, so
    region walkers must test this before reading a class slot. *)
val is_filler : t -> int -> bool

val class_of : t -> Oop.t -> small_int_class:Oop.t -> Oop.t

(** {2 Fields} *)

val get : t -> Oop.t -> int -> Oop.t

(** Raw store: non-pointer values, or new-space receivers. *)
val set_raw : t -> Oop.t -> int -> int -> unit

(** True when [store_ptr h o i v] would insert [o] into the entry table,
    so the caller can take the entry-table lock {e before} the store. *)
val store_would_remember : t -> Oop.t -> Oop.t -> bool

(** Pointer store with the generation-scavenging store check; true when
    the receiver was just inserted into the entry table (the caller
    charges the entry-table lock). *)
val store_ptr : t -> Oop.t -> int -> Oop.t -> bool

(** Insert an address into the entry table and set its flag. *)
val remember : t -> int -> unit

val remembered_count : t -> int

(** {2 Allocation} *)

val eden_region : t -> int -> region

val eden_avail : t -> vp:int -> int

val eden_used : t -> int

(** Allocate in new space on processor [vp]; pointer objects are filled
    with nil, raw ones with zero.
    @raise Scavenge_needed when the region is full. *)
val alloc_new :
  t -> vp:int -> slots:int -> raw:bool -> ?bytes:bool -> cls:Oop.t -> unit -> Oop.t

(** Allocate a permanent object directly in old space.
    @raise Image_full when old space is exhausted. *)
val alloc_old : t -> slots:int -> raw:bool -> ?bytes:bool -> cls:Oop.t -> unit -> Oop.t

val alloc_string_old : t -> cls:Oop.t -> string -> Oop.t

val alloc_string_new : t -> vp:int -> cls:Oop.t -> string -> Oop.t

val string_value : t -> Oop.t -> string

(** {2 Statistics} *)

val old_used : t -> int

val survivor_used : t -> int

val scavenge_count : t -> int

val allocations : t -> int

val words_allocated : t -> int

val words_copied_total : t -> int

val tenured_words_total : t -> int

val last_scavenge : t -> scavenge_stats
