(* Heap consistency checking, used by the test suite and the property
   tests.  Walks every allocated object and checks structural invariants:

   - headers decode to plausible sizes that tile each space exactly;
   - every scanned pointer field refers to a valid object header (or is a
     SmallInteger);
   - no live object is marked forwarded outside a scavenge;
   - every old-space object with a new-space reference in a scanned field
     carries the remembered flag (the store-check invariant);
   - every remembered flag corresponds to an entry-table entry. *)

open Heap

type problem = { addr : int; what : string }

let pp_problem fmt p = Format.fprintf fmt "@@%d: %s" p.addr p.what

let object_starts h =
  let starts = Hashtbl.create 4096 in
  let walk_region r =
    let a = ref r.base in
    while !a < r.ptr do
      if h.mem.(!a) <> Layout.forwarded_marker && is_filler h !a then begin
        (* dead padding from the parallel scavenger: not an object, but it
           still tiles the region; fillers may be a single word *)
        let sz = size_words h !a in
        if sz < 1 then a := r.ptr else a := !a + sz
      end
      else begin
        Hashtbl.replace starts !a ();
        let sz = size_words h !a in
        if sz < Layout.header_words then (* corrupt; stop this region *)
          a := r.ptr
        else a := !a + sz
      end
    done
  in
  walk_region h.old;
  (match h.policy with
   | Replicated_eden -> Array.iter walk_region h.eden_regions
   | Unlocked | Shared_locked -> walk_region h.eden);
  walk_region (if h.past_is_a then h.surv_a else h.surv_b);
  starts

let check h =
  let problems = ref [] in
  let report addr what = problems := { addr; what } :: !problems in
  (* Replicated eden slices must tile eden exactly: contiguous, starting
     at the eden base, ending at the eden limit — a remainder word lost to
     flooring would silently shrink the allocatable space. *)
  (match h.policy with
   | Replicated_eden ->
       let n = Array.length h.eden_regions in
       if n = 0 then report h.eden.base "replicated eden has no slices"
       else begin
         if h.eden_regions.(0).base <> h.eden.base then
           report h.eden_regions.(0).base
             "first eden slice does not start at the eden base";
         for i = 0 to n - 2 do
           if h.eden_regions.(i).limit <> h.eden_regions.(i + 1).base then
             report h.eden_regions.(i).limit
               "eden slices do not tile (gap or overlap between slices)"
         done;
         if h.eden_regions.(n - 1).limit <> h.eden.limit then
           report h.eden_regions.(n - 1).limit
             "eden slices do not cover eden (remainder words unreachable)"
       end
   | Unlocked | Shared_locked -> ());
  let starts = object_starts h in
  let in_rset = Hashtbl.create 256 in
  for i = 0 to h.rset_len - 1 do
    Hashtbl.replace in_rset h.rset.(i) ()
  done;
  let valid_ptr o =
    Oop.is_small o || Oop.equal o Oop.sentinel
    || Hashtbl.mem starts (Oop.addr o)
  in
  let check_object a =
    if h.mem.(a) = Layout.forwarded_marker then
      report a "forwarded object outside a scavenge"
    else begin
      let sz = size_words h a in
      if sz < Layout.header_words then report a "implausible size";
      let cls = class_at h a in
      if not (valid_ptr cls) || Oop.is_small cls then
        report a "class slot is not a valid object";
      let limit = Scavenger.scan_limit h a in
      let has_new = ref false in
      for i = 0 to limit - 1 do
        let v = h.mem.(a + Layout.header_words + i) in
        if not (valid_ptr v) then
          report a (Printf.sprintf "field %d is a dangling pointer" i);
        if is_new h v then has_new := true
      done;
      if !has_new && a < h.new_base && a >= 2 && not (is_remembered h a) then
        report a "old object with new references is not remembered";
      if is_remembered h a && not (Hashtbl.mem in_rset a) then
        report a "remembered flag set but object absent from entry table"
    end
  in
  Hashtbl.iter (fun a () -> check_object a) starts;
  (* The old-space free lists (E18): every threaded hole must be a filler
     inside the allocated part of old space, of a size matching its
     bucket, and no address may be threaded twice. *)
  let threaded = Hashtbl.create 64 in
  let free_total = ref 0 in
  Array.iteri
    (fun b holes ->
      List.iter
        (fun a ->
          if Hashtbl.mem threaded a then
            report a "address threaded on the free lists twice"
          else Hashtbl.replace threaded a ();
          if a < h.old.base || a >= h.old.ptr then
            report a "free-list entry outside allocated old space"
          else if not (is_filler h a) then
            report a "free-list entry is not a filler"
          else begin
            let sz = size_words h a in
            free_total := !free_total + sz;
            if b < 16 && sz <> b + 2 then
              report a
                (Printf.sprintf "free-list entry of %d words in bucket %d" sz b);
            if b = 16 && sz < 18 then
              report a
                (Printf.sprintf "overflow free-list entry of only %d words" sz)
          end)
        holes)
    h.free_lists;
  if !free_total <> h.free_words then
    report h.old.base
      (Printf.sprintf "free_words is %d but the threaded holes total %d"
         h.free_words !free_total);
  List.rev !problems

(* Reachability versus the mark bitmap: run between mark completion and
   the first sweep slice (marks final, nothing freed yet), this checks
   that the incremental marker — barrier, allocate-black, new-space
   rescan and all — lost no reachable old object.  [marked] is the
   collector's bitmap predicate; [roots] must cover the same roots the
   marker scanned.  Traversal mirrors {!census}: scanned fields only. *)
let check_marked h ~marked ~roots =
  let problems = ref [] in
  let seen = Hashtbl.create 1024 in
  let rec visit o =
    if Oop.is_ptr o && not (Oop.equal o Oop.sentinel)
       && not (Hashtbl.mem seen o)
    then begin
      Hashtbl.add seen o ();
      let a = Oop.addr o in
      if a >= 2 && a < h.new_base && not (marked a) then
        problems :=
          { addr = a; what = "reachable old object is not marked" }
          :: !problems;
      let limit = Scavenger.scan_limit h a in
      for i = 0 to limit - 1 do
        visit h.mem.(a + Layout.header_words + i)
      done;
      visit (class_at h a)
    end
  in
  List.iter visit roots;
  List.rev !problems

(* --- reachable census ---

   The schedule explorer's differential oracle needs a heap observable
   that is invariant across interleavings of the same program.  Whole-
   heap counts are not: scavenge timing, per-processor free-context
   recycling and process migration all shift how much garbage and
   padding each space holds.  What *is* schedule-invariant is the graph
   reachable from stable roots — the same objects exist with the same
   classes and sizes wherever the scheduler happened to put them.  Class
   oops are stable addresses (classes are bootstrapped into old space
   before any run), so grouping by class address is comparable across
   runs of one program.

   The [stop] predicate lets callers fence off parts of the graph that
   are *not* schedule-invariant even though they hang off stable roots:
   Process objects and their suspended context chains legitimately
   differ with the interleaving (a background process preempted earlier
   has run fewer iterations).  Objects satisfying [stop] are neither
   counted nor scanned. *)

type census = {
  objects : int;
  words : int;
  per_class : (int * int) list;  (* class key |-> reachable count *)
}

(* The per-class key defaults to the class oop's address, which is stable
   across runs of one bootstrap but an accident of allocation order
   between different images.  E19 compares censuses across snapshot,
   restore and independently-bootstrapped replicas, where an address is
   exactly the kind of accident the fingerprint must not see, so callers
   there pass [class_key] mapping each class oop to an identity derived
   from its name. *)
let census ?(stop = fun _ -> false) ?class_key h ~roots =
  let seen = Hashtbl.create 1024 in
  let by_class = Hashtbl.create 64 in
  let objects = ref 0 and words = ref 0 in
  let rec visit o =
    if Oop.is_ptr o && not (Oop.equal o Oop.sentinel)
       && not (Hashtbl.mem seen o) && not (stop o)
    then begin
      Hashtbl.add seen o ();
      let a = Oop.addr o in
      incr objects;
      words := !words + size_words h a;
      let cls = class_at h a in
      let key =
        match class_key with
        | Some f -> f cls
        | None -> if Oop.is_ptr cls then Oop.addr cls else -1
      in
      Hashtbl.replace by_class key
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_class key));
      visit cls;
      let limit = Scavenger.scan_limit h a in
      for i = 0 to limit - 1 do
        visit h.mem.(a + Layout.header_words + i)
      done
    end
  in
  List.iter visit roots;
  let per_class =
    List.sort compare
      (Hashtbl.fold (fun cls n acc -> (cls, n) :: acc) by_class [])
  in
  { objects = !objects; words = !words; per_class }

let pp_census fmt c =
  Format.fprintf fmt "%d object(s), %d word(s), %d class(es)" c.objects
    c.words (List.length c.per_class)

(* One comparable word per census: FNV-1a over the totals and the sorted
   per-class table.  Combined with [class_key] this is the replica
   fingerprint E19 ships in checkpoint headers and divergence reports —
   equal graphs hash equal regardless of where allocation happened to
   place them. *)
let fingerprint c =
  let mix h d = ((h lxor d) * 0x01000193) land max_int in
  List.fold_left
    (fun h (cls, n) -> mix (mix h cls) n)
    (mix (mix 0x811C9DC5 c.objects) c.words)
    c.per_class
