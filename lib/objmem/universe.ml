(* The universe ties the object memory to the well-known objects every part
   of the virtual machine needs: nil/true/false, the kernel classes, the
   interned-symbol table, the Smalltalk global dictionary (name ->
   Association, as compiled global references go through the Association's
   value slot), and the ProcessorScheduler.

   All objects created through this module live in old space: symbols,
   class structures, method literals and globals are permanent image
   objects.  Only the interpreter allocates in new space. *)

type classes = {
  mutable object_c : Oop.t;
  mutable undefined_object : Oop.t;
  mutable boolean : Oop.t;
  mutable true_c : Oop.t;
  mutable false_c : Oop.t;
  mutable small_integer : Oop.t;
  mutable character : Oop.t;
  mutable string : Oop.t;
  mutable symbol : Oop.t;
  mutable array : Oop.t;
  mutable association : Oop.t;
  mutable compiled_method : Oop.t;
  mutable method_dictionary : Oop.t;
  mutable method_context : Oop.t;
  mutable block_context : Oop.t;
  mutable process : Oop.t;
  mutable semaphore : Oop.t;
  mutable linked_list : Oop.t;
  mutable processor_scheduler : Oop.t;
  mutable class_c : Oop.t;
  mutable message : Oop.t;
  mutable float_c : Oop.t;
}

type t = {
  heap : Heap.t;
  mutable nil : Oop.t;
  mutable true_ : Oop.t;
  mutable false_ : Oop.t;
  mutable scheduler : Oop.t;
  classes : classes;
  symtab : (string, Oop.t) Hashtbl.t;
  globals : (string, Oop.t) Hashtbl.t;  (* name -> Association *)
  mutable char_table : Oop.t array;     (* the 256 Character instances *)
}

let no_class () = {
  object_c = Oop.sentinel; undefined_object = Oop.sentinel;
  boolean = Oop.sentinel; true_c = Oop.sentinel; false_c = Oop.sentinel;
  small_integer = Oop.sentinel; character = Oop.sentinel;
  string = Oop.sentinel; symbol = Oop.sentinel; array = Oop.sentinel;
  association = Oop.sentinel; compiled_method = Oop.sentinel;
  method_dictionary = Oop.sentinel; method_context = Oop.sentinel;
  block_context = Oop.sentinel; process = Oop.sentinel;
  semaphore = Oop.sentinel; linked_list = Oop.sentinel;
  processor_scheduler = Oop.sentinel; class_c = Oop.sentinel;
  message = Oop.sentinel; float_c = Oop.sentinel;
}

let create heap =
  { heap;
    nil = Oop.sentinel;
    true_ = Oop.sentinel;
    false_ = Oop.sentinel;
    scheduler = Oop.sentinel;
    classes = no_class ();
    symtab = Hashtbl.create 512;
    globals = Hashtbl.create 128;
    char_table = [||] }

let heap u = u.heap

(* The universe's well-known objects are host-side references the heap
   cannot see; the incremental old-space collector treats them as image
   roots (E18). *)
let iter_roots u f =
  f u.nil; f u.true_; f u.false_; f u.scheduler;
  let c = u.classes in
  f c.object_c; f c.undefined_object; f c.boolean; f c.true_c; f c.false_c;
  f c.small_integer; f c.character; f c.string; f c.symbol; f c.array;
  f c.association; f c.compiled_method; f c.method_dictionary;
  f c.method_context; f c.block_context; f c.process; f c.semaphore;
  f c.linked_list; f c.processor_scheduler; f c.class_c; f c.message;
  f c.float_c;
  Hashtbl.iter (fun _ s -> f s) u.symtab;
  Hashtbl.iter (fun _ a -> f a) u.globals;
  Array.iter f u.char_table

(* --- symbols --- *)

let intern u name =
  match Hashtbl.find_opt u.symtab name with
  | Some s -> s
  | None ->
      let s = Heap.alloc_string_old u.heap ~cls:u.classes.symbol name in
      Hashtbl.add u.symtab name s;
      s

let symbol_name u sym = Heap.string_value u.heap sym
let is_interned u name = Hashtbl.mem u.symtab name

(* --- old-space constructors --- *)

let new_string u s = Heap.alloc_string_old u.heap ~cls:u.classes.string s

let new_array u elements =
  let n = List.length elements in
  let o = Heap.alloc_old u.heap ~slots:n ~raw:false ~cls:u.classes.array () in
  List.iteri (fun i e -> ignore (Heap.store_ptr u.heap o i e)) elements;
  o

let new_array_sized u n =
  Heap.alloc_old u.heap ~slots:n ~raw:false ~cls:u.classes.array ()

let new_association u ~key ~value =
  let o =
    Heap.alloc_old u.heap ~slots:Layout.Association.fixed_slots ~raw:false
      ~cls:u.classes.association ()
  in
  ignore (Heap.store_ptr u.heap o Layout.Association.key key);
  ignore (Heap.store_ptr u.heap o Layout.Association.value value);
  o

(* --- globals --- *)

(* The Association for [name], created (with a nil value) on first use:
   this is what a compiled reference to a global pushes. *)
let global_assoc u name =
  match Hashtbl.find_opt u.globals name with
  | Some a -> a
  | None ->
      let a = new_association u ~key:(intern u name) ~value:u.nil in
      Hashtbl.add u.globals name a;
      a

let set_global u name value =
  let a = global_assoc u name in
  ignore (Heap.store_ptr u.heap a Layout.Association.value value)

let get_global u name =
  match Hashtbl.find_opt u.globals name with
  | Some a -> Some (Heap.get u.heap a Layout.Association.value)
  | None -> None

let global_names u =
  Hashtbl.fold (fun name _ acc -> name :: acc) u.globals []
  |> List.sort String.compare

(* A defined class, looked up in the globals. *)
let find_class u name =
  match get_global u name with
  | Some c when Oop.is_ptr c && not (Oop.equal c u.nil) -> Some c
  | Some _ | None -> None

(* --- generic object queries --- *)

let class_of u (o : Oop.t) =
  if Oop.is_small o then u.classes.small_integer
  else Heap.class_at u.heap (Oop.addr o)

let is_kind_of u (o : Oop.t) cls =
  let rec walk c =
    if Oop.equal c cls then true
    else if Oop.equal c u.nil || Oop.equal c Oop.sentinel then false
    else walk (Heap.get u.heap c Layout.Class.superclass)
  in
  walk (class_of u o)

let class_name u cls =
  let name = Heap.get u.heap cls Layout.Class.name in
  if Oop.equal name u.nil then "?" else Heap.string_value u.heap name

(* Floats are boxed as two raw words holding the IEEE bits. *)

let float_bits f =
  let bits = Int64.bits_of_float f in
  (Int64.to_int (Int64.shift_right_logical bits 32),
   Int64.to_int (Int64.logand bits 0xFFFFFFFFL))

let write_float u o f =
  let hi, lo = float_bits f in
  Heap.set_raw u.heap o 0 hi;
  Heap.set_raw u.heap o 1 lo

let new_float_old u f =
  let o = Heap.alloc_old u.heap ~slots:2 ~raw:true ~cls:u.classes.float_c () in
  write_float u o f;
  o

let new_float_new u ~vp f =
  let o =
    Heap.alloc_new u.heap ~vp ~slots:2 ~raw:true ~cls:u.classes.float_c ()
  in
  write_float u o f;
  o

let float_value u o =
  let hi = Heap.get u.heap o 0 and lo = Heap.get u.heap o 1 in
  Int64.float_of_bits
    Int64.(logor (shift_left (of_int hi) 32) (of_int lo))

(* Characters are immutable one-slot objects, preallocated. *)
let char_oop u c = u.char_table.(Char.code c)
let char_value u o = Char.chr (Heap.get u.heap o 0 land 0xff)

let init_char_table u =
  u.char_table <-
    Array.init 256 (fun code ->
        let o =
          Heap.alloc_old u.heap ~slots:1 ~raw:true ~cls:u.classes.character ()
        in
        Heap.set_raw u.heap o 0 code;
        o);
  Heap.add_array_root u.heap u.char_table

(* Register the context classes with the heap so the scavenger can bound
   context frames by their stack pointers. *)
let register_context_classes u =
  let h = u.heap in
  h.Heap.method_ctx_class <- u.classes.method_context;
  h.Heap.block_ctx_class <- u.classes.block_context
