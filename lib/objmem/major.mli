(** Incremental old-space mark-sweep (E18).

    Generation Scavenging never collects old space; this collector
    reclaims tenured garbage in bounded work slices run at interpreter
    step boundaries.  Tricolor marking keeps its mark state in a side
    bitmap (every header flag bit is taken); a Dijkstra-style
    incremental-update write barrier — {!dirty}, installed as
    [Heap.major_dirty] — shades every pointer the mutator stores;
    objects entering old space mid-cycle are allocated black; the sweep
    threads reclaimed holes onto the heap's size-segregated free lists,
    consulted by [Heap.alloc_old] before bumping. *)

type phase = Idle | Marking | Sweeping

type t

(** [iter_roots f] must call [f] on every root oop beyond the heap's own
    registered roots: universe tables, free-context list heads, scheduler
    deques.  It is invoked at mark start and again at the termination
    check. *)
val create :
  heap:Heap.t -> budget:int -> iter_roots:((Oop.t -> unit) -> unit) -> t

val phase : t -> phase

(** A cycle is in flight. *)
val active : t -> bool

val budget : t -> int

(** The word at old-space address [a] starts a marked object. *)
val marked : t -> int -> bool

(** The write barrier: shade a stored value while marking. *)
val dirty : t -> Oop.t -> unit

(** Allocate-black hook for objects entering old space mid-cycle. *)
val alloc_black : t -> int -> unit

(** The trigger: idle, and occupancy or tenured growth warrants a
    cycle. *)
val want_start : t -> bool

(** Old space is over 90% occupied. *)
val near_exhaustion : t -> bool

(** A slice should run now: pacing allows it, and either a cycle is in
    flight or the trigger fires. *)
val due : t -> now:int -> bool

type slice_result = {
  cost : int;  (** cycles of collector work done in this slice *)
  mark_completed : bool;
      (** marking finished this slice; marks are final and nothing has
          been swept yet — the window for {!Verify.check_marked} *)
  cycle_completed : bool;  (** sweeping finished; the collector is idle *)
}

(** Run one budgeted slice (starting a cycle if idle) and update the
    pacing clock. *)
val slice : t -> Cost_model.t -> now:int -> slice_result

(** Run the collector to completion — the in-flight cycle, or a whole
    fresh one when idle — and return the total cost.  The last resort
    before [Image_full]. *)
val finish_cycle : t -> Cost_model.t -> int

(** {2 Statistics} *)

val cycles_completed : t -> int
val slices : t -> int
val slice_cycles_total : t -> int
val max_slice : t -> int

(** Slices whose cost exceeded the budget.  Work units are admitted with
    look-ahead — a unit that would not fit ends the slice — so an overrun
    only comes from an atomic root scan or a slice's first unit being
    bigger than the whole budget. *)
val overruns : t -> int

(** Every slice's cost, oldest first. *)
val slice_costs : t -> int list

val reclaimed_objects : t -> int
val reclaimed_words : t -> int
val forced_completions : t -> int
val barrier_greys : t -> int
val alloc_marks : t -> int
