(** The universe: the object memory plus the well-known objects every part
    of the VM needs — nil/true/false, the kernel classes, the interned
    symbol table, the global dictionary (name -> Association, since
    compiled global references go through the Association's value slot),
    and the ProcessorScheduler.

    Everything created through this module lives in old space: symbols,
    class structures, method literals and globals are permanent image
    objects.  Only the interpreter allocates in new space. *)

type classes = {
  mutable object_c : Oop.t;
  mutable undefined_object : Oop.t;
  mutable boolean : Oop.t;
  mutable true_c : Oop.t;
  mutable false_c : Oop.t;
  mutable small_integer : Oop.t;
  mutable character : Oop.t;
  mutable string : Oop.t;
  mutable symbol : Oop.t;
  mutable array : Oop.t;
  mutable association : Oop.t;
  mutable compiled_method : Oop.t;
  mutable method_dictionary : Oop.t;
  mutable method_context : Oop.t;
  mutable block_context : Oop.t;
  mutable process : Oop.t;
  mutable semaphore : Oop.t;
  mutable linked_list : Oop.t;
  mutable processor_scheduler : Oop.t;
  mutable class_c : Oop.t;
  mutable message : Oop.t;
  mutable float_c : Oop.t;
}

type t = {
  heap : Heap.t;
  mutable nil : Oop.t;
  mutable true_ : Oop.t;
  mutable false_ : Oop.t;
  mutable scheduler : Oop.t;  (** the ProcessorScheduler instance *)
  classes : classes;
  symtab : (string, Oop.t) Hashtbl.t;
  globals : (string, Oop.t) Hashtbl.t;  (** name -> Association *)
  mutable char_table : Oop.t array;  (** the 256 Character instances *)
}

val create : Heap.t -> t

val heap : t -> Heap.t

(** Apply [f] to every well-known object the universe holds host-side:
    nil/true/false, the scheduler, the kernel classes, interned symbols,
    global Associations and the character table.  The incremental
    old-space collector treats these as image roots (E18). *)
val iter_roots : t -> (Oop.t -> unit) -> unit

(** {2 Symbols} *)

(** Intern a symbol, allocating it in old space on first use. *)
val intern : t -> string -> Oop.t

val symbol_name : t -> Oop.t -> string

val is_interned : t -> string -> bool

(** {2 Old-space constructors} *)

val new_string : t -> string -> Oop.t

val new_array : t -> Oop.t list -> Oop.t

val new_array_sized : t -> int -> Oop.t

val new_association : t -> key:Oop.t -> value:Oop.t -> Oop.t

(** {2 Globals} *)

(** The Association for a global, created (with a nil value) on first
    reference — what a compiled global reference pushes. *)
val global_assoc : t -> string -> Oop.t

val set_global : t -> string -> Oop.t -> unit

val get_global : t -> string -> Oop.t option

(** All global names, sorted. *)
val global_names : t -> string list

(** A global bound to a non-nil object (by convention, a class). *)
val find_class : t -> string -> Oop.t option

(** {2 Object queries} *)

val class_of : t -> Oop.t -> Oop.t

val is_kind_of : t -> Oop.t -> Oop.t -> bool

val class_name : t -> Oop.t -> string

(** {2 Floats (boxed as two raw words holding the IEEE bits)} *)

val new_float_old : t -> float -> Oop.t

val new_float_new : t -> vp:int -> float -> Oop.t

(** Write a float's IEEE bits into an already-allocated 2-slot raw box —
    for callers that must allocate the box under the allocation lock. *)
val write_float : t -> Oop.t -> float -> unit

val float_value : t -> Oop.t -> float

(** {2 Characters (256 preallocated immutable instances)} *)

val char_oop : t -> char -> Oop.t

val char_value : t -> Oop.t -> char

val init_char_table : t -> unit

(** Tell the heap which classes are contexts, so the scavenger can bound
    their frames by the stack pointer. *)
val register_context_classes : t -> unit
