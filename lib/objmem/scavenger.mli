(** Generation Scavenging (Ungar '84), as used by Berkeley Smalltalk.

    A stop-and-copy collection of new space only: live new objects are
    copied from eden and the past survivor space into the future survivor
    space (Cheney's algorithm); objects that have survived [tenure_age]
    scavenges, or that overflow the survivor space, are promoted into old
    space.  Old space is never collected; the entry table supplies the
    old-to-new roots.  Context frames are scanned only up to their stack
    pointers.

    The caller is responsible for the multiprocessor rendezvous: every
    interpreter must be parked before [scavenge] runs, and the
    [on_scavenge] hooks flush the method caches and free-context lists. *)

(** Fields of the object at the given address that must be scanned
    (0 for raw objects; bounded by the stack pointer for contexts). *)
val scan_limit : Heap.t -> int -> int

(** Run one scavenge; returns its statistics.
    @raise Heap.Image_full when promotion exhausts old space. *)
val scavenge : Heap.t -> Heap.scavenge_stats

(** Cycle cost of a scavenge under the cost model; the engine charges it
    to every parked processor (the collection is stop-the-world). *)
val cost : Cost_model.t -> Heap.scavenge_stats -> int

(** The paper's section-3.1 suggestion as a closed-form approximation,
    kept as a cross-check against {!scavenge_parallel}: the copying work
    divides across [workers] (ceiling division); root and entry-table
    scanning stays serial; the coordination term applies only when the
    scavenge actually copied something. *)
val cost_parallel : Cost_model.t -> Heap.scavenge_stats -> workers:int -> int

(** {2 Simulated parallel scavenging (E10)} *)

(** Per-worker outcome of a simulated parallel scavenge.  Cycle fields are
    the worker's own timeline under the cost model: [copy_cycles] for
    copying, [scan_cycles] for entry-table rescans, [coord_cycles] for
    claims, chunk claims and steals; [busy_cycles] is their sum and
    [idle_cycles] the gap to the slowest worker. *)
type worker_stat = {
  worker : int;
  mutable copied_objects : int;
  mutable copied_words : int;
  mutable entries_scanned : int;
  mutable chunks_claimed : int;
  mutable steals : int;
  mutable copy_cycles : int;
  mutable scan_cycles : int;
  mutable coord_cycles : int;
  mutable busy_cycles : int;
  mutable idle_cycles : int;
}

type parallel_result = {
  workers : int;
  rounds : int;  (** grey-scanning rounds after the root/entry phase *)
  pause_cycles : int;
      (** the stop-the-world pause: scavenge base + the slowest worker's
          busy timeline + the per-round barrier costs *)
  barrier_cycles : int;
  coordination_cycles : int;
      (** claims + chunk claims + steals across all workers + barriers *)
  worker_stats : worker_stat array;
  degraded : bool;
      (** an injected worker crash forced the survivors to finish the
          collection (degraded mode); the caller must run {!Verify.check} *)
  failed_workers : int list;  (** ids of crashed workers, in death order *)
}

(** Run one scavenge simulated across [workers] virtual workers: roots and
    the entry-table snapshot are sharded deterministically; each worker
    copies into private allocation buffers chunk-claimed from the shared
    to-space/old-space regions (abandoned buffer tails are sealed with
    filler pseudo-objects so the regions still tile); the forwarding slot
    is the claim — exactly one worker copies each object; grey objects are
    scanned in rounds with work stealing at the round boundaries until a
    round finds every queue empty.  The heap ends in the same abstract
    state as {!scavenge} (same reachable objects, possibly different
    placement); speedup, imbalance and coordination overhead emerge from
    the per-worker timelines rather than a closed-form divide.

    With [injector], each round barrier is a {!Fault.Gc_barrier} injection
    point: a [Worker_crash] kills one surviving worker (never the last),
    whose allocation buffers are sealed and whose grey backlog is funnelled
    to a survivor; the collection then completes in degraded mode and the
    result is flagged [degraded] so the caller can verify the heap.
    @raise Heap.Image_full when promotion exhausts old space. *)
val scavenge_parallel :
  Heap.t ->
  Cost_model.t ->
  ?injector:Fault.t ->
  workers:int ->
  unit ->
  Heap.scavenge_stats * parallel_result
