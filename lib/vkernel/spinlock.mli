(** The V System spin-lock, as a deterministic contention model.

    The real lock is an interlocked test-and-set; on failure the locking
    code invokes the kernel's [Delay] with a minimal timeout and retries
    (paper, section 3.1).  Because the engine steps virtual processors in
    nondecreasing virtual-time order and every critical section in MS
    completes within one interpreter step, a lock reduces to a timeline:
    an acquire at time [now] either succeeds immediately or retries every
    delay quantum until the holder's release time.

    A disabled lock (baseline Berkeley Smalltalk is single-threaded)
    charges no synchronization cost. *)

type t

(** [make ~enabled ~cost name] creates a lock.  [cost] supplies the
    test-and-set cost and the Delay retry quantum. *)
val make : enabled:bool -> cost:Cost_model.t -> string -> t

val name : t -> string

val enabled : t -> bool

(** Attach a sanitizer: lock operations report their timeline to it and
    [critical] brackets open/close sanitizer sections.  Registers the lock
    with the sanitizer when enabled. *)
val attach : t -> Sanitizer.t -> unit

val sanitizer : t -> Sanitizer.t option

(** Attach the machine: lock operations consult its scheduling policy (if
    one is installed) at the two lock-side preemption points — jitter
    before an acquire, and an optional preemption request after a charged
    critical section.  Without this, or with no policy installed, the
    lock behaves exactly as before. *)
val attach_machine : t -> Machine.t -> unit

(** When set, a *disabled* lock still reports each operation's window to
    the attached sanitizer (processor-side operations only).  Off by
    default: lock-free configurations that are legitimately serial (one
    processor) or partitioned (per-processor resources) must not report.
    The engine enables it when a configuration runs several processors
    with locking off, so the sanitizer can expose the missing mutual
    exclusion as overlapping timelines. *)
val set_report_unlocked : t -> bool -> unit

(** Configure the spin watchdog.  A contended acquire that would wait
    more than [bound] cycles raises {!Fault.Deadlock_suspected} naming
    the holder vp, the lock and the clock, instead of spinning forever;
    [bound = 0] (the default) disables it.  [backoff_after] is the
    number of fixed-quantum retries before the retry interval starts
    doubling (exponential backoff); 0 keeps the fixed-interval spin.
    Backoff never rewinds the timeline: it can only delay the winning
    probe, and the extra delay is accounted as {!backoff_cycles}. *)
val set_watchdog : t -> bound:int -> backoff_after:int -> unit

(** The vp of the most recent acquirer ([-1] before any acquire). *)
val holder : t -> int

(** The attached machine's fault injector, if any. *)
val injector : t -> Fault.t option

(** [locked_op t ~now ~op_cycles] performs a critical section of
    [op_cycles] starting no earlier than [now] and returns its completion
    time.  Calls must be made in nondecreasing [now] order.  [vp] is the
    acquiring processor, for the sanitizer trace (default [-1]). *)
val locked_op : ?vp:int -> t -> now:int -> op_cycles:int -> int

(** [critical t ~now ~op_cycles f] is [locked_op] with a bracketed body:
    [f] runs inside the critical section, so guarded-resource mutations it
    performs are seen by the sanitizer as covered.  Returns the section's
    completion time and [f]'s result.  If [f] raises, the bracket is
    closed and the exception propagates (the timeline has already
    advanced). *)
val critical :
  ?vp:int -> t -> now:int -> op_cycles:int -> (unit -> 'a) -> int * 'a

(** [locked_op_on t vp ~op_cycles] is [locked_op] against a virtual
    processor's clock, updating the clock and its spin statistics. *)
val locked_op_on : t -> Machine.vp -> op_cycles:int -> unit

(** {2 Statistics} *)

val acquisitions : t -> int

(** Number of acquisitions that found the lock held. *)
val contended : t -> int

(** Total cycles spent spinning against genuine contention (in
    Delay-quantum steps).  Spin caused by injected holder faults or by
    backoff coarsening is accounted separately below, so fault campaigns
    do not pollute the contention numbers the E-series experiments
    report. *)
val spin_cycles : t -> int

(** Waiter spin attributable to an injected holder stall or crash. *)
val fault_spin_cycles : t -> int

(** Extra waiter delay from exponential backoff's coarsened probes. *)
val backoff_cycles : t -> int

(** Injected holder-stall cycles charged on this lock. *)
val fault_stall_cycles : t -> int

(** Reset the counters.  Does not touch the lock's timeline. *)
val reset_stats : t -> unit
