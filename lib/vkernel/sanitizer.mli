(** Deterministic serialization sanitizer.

    The simulation is only faithful to the paper's Firefly if every shared
    resource is serialized through its designated spinlock timeline in
    nondecreasing virtual-time order.  This checker enforces that at
    simulation time:

    - {b Timelines:} a lock's critical sections never overlap in virtual
      time and never move backwards — each section's start is at or after
      the previous section's finish.
    - {b Guarded mutations:} every mutation of a registered guarded
      resource (entry table, heap allocation pointer, ready queue, device
      queues, shared free-context list) happens while its designated
      lock's critical-section bracket is open, on the vp that opened it.
    - {b Ownership:} replicated resources (per-processor method caches and
      free-context lists) are only touched by their owning vp.
    - {b Scheduler invariants:} checked by {!Scheduler.check_invariants}
      after every wake/pick/yield/relinquish, reported through
      {!report_violation}.

    In [Strict] mode the first violation raises {!Violation}; in [Report]
    mode violations accumulate and surface through the instrumentation
    report.  Checks only fire while the sanitizer is {e armed} — the engine
    arms it for the duration of [Vm.run] and disarms it around the
    scavenger, so bootstrap and GC (which mutate freely by design) are not
    flagged. *)

type mode = Off | Report | Strict

exception Violation of string

type t

val create : ?trace_capacity:int -> mode -> t

val mode : t -> mode

(** [true] unless mode is [Off]. *)
val active : t -> bool

(** Arm/disarm the checker; checks are no-ops while disarmed. *)
val set_armed : t -> bool -> unit

val armed : t -> bool

(** [true] when checks should fire: active and armed. *)
val checking : t -> bool

val trace : t -> Trace.t

(** Declare a lock so its timeline is tracked. Idempotent. *)
val register_lock : t -> string -> unit

(** Names of all registered locks, in registration order. *)
val lock_names : t -> string list

(** Declare that mutations of [resource] must happen inside [lock]'s
    critical section. *)
val register_guard : t -> resource:string -> lock:string -> unit

(** Record a one-shot lock operation: check [start >= previous finish],
    advance the timeline, trace it. *)
val on_lock_op :
  t -> lock:string -> vp:int -> now:int -> start:int -> finish:int ->
  contended:bool -> unit

(** Like {!on_lock_op} but additionally opens the critical-section
    bracket for [lock] on [vp]. *)
val section_enter :
  t -> lock:string -> vp:int -> now:int -> start:int -> finish:int ->
  contended:bool -> unit

val section_exit : t -> lock:string -> vp:int -> now:int -> unit

(** Check that a mutation of [resource] is bracketed by its guard lock's
    critical section (no-op for unregistered resources or while not
    checking). *)
val check_guarded :
  t -> resource:string -> vp:int -> now:int -> detail:string -> unit

(** Check that a replicated resource is touched only by its owner
    ([owner < 0] means shared — never flagged). *)
val check_owner :
  t -> resource:string -> owner:int -> vp:int -> now:int -> unit

(** Record an injected fault or a recovery action in the trace ring.
    Faults are simulation events, not violations: recorded whenever the
    sanitizer is active, armed or not, so a post-mortem dump shows the
    fault that preceded the failure it caused. *)
val fault_event : t -> vp:int -> now:int -> resource:string -> string -> unit

(** Record a successful work steal in the trace ring — a simulation
    event, not a violation, recorded whenever the sanitizer is active. *)
val steal_event :
  t -> vp:int -> now:int -> resource:string -> detail:string -> unit

(** {2 The parallel-scavenge phase}

    The engine disarms the lock checker around the stop-the-world
    scavenger (it mutates without locks by design), but the parallel
    scavenger has invariants of its own: every from-space object is
    claimed by exactly one worker, allocation buffers chunk-claimed from
    the shared to/old regions are pairwise disjoint, and every copy lands
    inside a buffer owned by the copying worker.  These checks fire
    whenever the sanitizer is {e active} (mode not [Off]), armed or not. *)

(** Open a parallel-scavenge phase; resets claim and chunk tracking. *)
val scavenge_begin : t -> workers:int -> unit

(** Record a worker winning the claim on the from-space object at [addr];
    a second claim of the same address is a violation. *)
val scavenge_claim : t -> worker:int -> addr:int -> unit

(** Record an allocation buffer [base,limit) claimed by [worker]; overlap
    with any previously claimed chunk is a violation. *)
val scavenge_chunk : t -> worker:int -> base:int -> limit:int -> unit

(** Check that a copy of [words] words to [addr] lies inside a chunk owned
    by [worker]. *)
val scavenge_copy : t -> worker:int -> addr:int -> words:int -> unit

(** Close the phase and drop its tracking state. *)
val scavenge_end : t -> unit

(** {2 The incremental major-collection phase (E18)}

    Like the scavenge phase, these fire whenever the sanitizer is
    {e active}: the engine disarms the lock checker around each bounded
    mark/sweep slice, but the collector's own discipline is still worth
    machine-checking. *)

(** Record a cycle-level collector event (start / mark complete / cycle
    complete) in the trace ring. *)
val major_event : t -> now:int -> string -> unit

(** Record one bounded slice; a slice whose cost exceeds four times the
    configured budget is a violation (the slice loop lost track of its
    accounting). *)
val major_slice : t -> now:int -> cost:int -> budget:int -> unit

(** Count a violation: trace it, accumulate the message, raise
    {!Violation} in [Strict] mode. *)
val report_violation :
  t -> vp:int -> now:int -> resource:string -> string -> unit

val violation_count : t -> int

(** Accumulated violation messages, oldest first (capped). *)
val violations : t -> string list

val print_report : t -> unit
