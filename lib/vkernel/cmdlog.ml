(* The replicated cluster's shared command log (E19).

   State-machine replication needs three things from its log: the same
   totally-ordered entries on every replica (the file format below), a
   conflict relation so independent commands can run in parallel without
   changing the outcome, and a durable representation that a rejoining
   replica can re-read after a crash.

   Each entry is one E17-style image-server request, keyed by the session
   that issued it and the state shard it touches.  Two entries conflict
   when they share either key: same shard means they mutate the same
   object graph, same session means the session's own ordering must hold.
   Everything else commutes, which is exactly the independence the
   early-scheduling dispatcher exploits (*Early Scheduling in Parallel
   State Machine Replication*; shard keying per *Rethinking State-Machine
   Replication for Parallelism*).

   [schedule] turns the log into a list of waves: each wave holds
   pairwise-independent entries (bounded by the replica's worker slots),
   and an entry lands in a wave strictly after the wave of every earlier
   conflicting entry, so conflicting commands execute in log order while
   independent ones are delivered to different worker Processes at the
   same virtual instant.  The wave structure is a pure function of the
   log, so every replica (and the sequential reference run) agrees on
   the boundaries where fingerprints are taken, checkpoints are written
   and crashes are delivered. *)

type entry = {
  lsn : int;      (* log sequence number, dense from 0 *)
  session : int;
  shard : int;
  kind : int;     (* which request handler runs *)
}

type t = { mutable entries : entry array; mutable len : int }

(* A log file (or in-flight buffer) that cannot be used: empty,
   truncated, wrong version, or unparseable.  Structured so the CLI can
   report it and exit 2 — never a vacuous success. *)
exception Corrupt of { path : string; what : string }

let corrupt path fmt =
  Printf.ksprintf (fun what -> raise (Corrupt { path; what })) fmt

let describe_corrupt (path, what) = Printf.sprintf "%s: %s" path what

let () =
  Printexc.register_printer (function
    | Corrupt { path; what } ->
        Some (Printf.sprintf "corrupt command log %s: %s" path what)
    | _ -> None)

let create () = { entries = [||]; len = 0 }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Cmdlog.get";
  t.entries.(i)

let append t ~session ~shard ~kind =
  if session < 0 || shard < 0 || kind < 0 then
    invalid_arg "Cmdlog.append: negative key";
  let e = { lsn = t.len; session; shard; kind } in
  if t.len >= Array.length t.entries then begin
    let cap = max 16 (2 * Array.length t.entries) in
    let a = Array.make cap e in
    Array.blit t.entries 0 a 0 t.len;
    t.entries <- a
  end;
  t.entries.(t.len) <- e;
  t.len <- t.len + 1;
  e

let to_list t = Array.to_list (Array.sub t.entries 0 t.len)

let of_list entries =
  let t = create () in
  List.iteri
    (fun i e ->
      if e.lsn <> i then invalid_arg "Cmdlog.of_list: lsns must be dense";
      ignore (append t ~session:e.session ~shard:e.shard ~kind:e.kind))
    entries;
  t

let iter t f =
  for i = 0 to t.len - 1 do
    f t.entries.(i)
  done

(* --- the conflict relation and the wave dispatcher --- *)

let conflicts a b = a.session = b.session || a.shard = b.shard

(* Partition [entries] (in log order) into waves of pairwise-independent
   entries, at most [slots] per wave.  An entry is placed in the first
   wave after every earlier conflicting entry's wave that still has room;
   since all of an entry's conflicts sit in strictly earlier waves, any
   wave at or past that point is conflict-free for it by construction. *)
let schedule ?(slots = max_int) entries =
  if slots < 1 then invalid_arg "Cmdlog.schedule: slots must be >= 1";
  let waves = ref [||] in       (* wave index -> entries, reversed *)
  let sizes = ref [||] in
  let nwaves = ref 0 in
  let wave_of = Hashtbl.create 64 in   (* lsn -> wave index *)
  let push_wave () =
    if !nwaves >= Array.length !waves then begin
      let cap = max 8 (2 * Array.length !waves) in
      let w = Array.make cap [] and s = Array.make cap 0 in
      Array.blit !waves 0 w 0 !nwaves;
      Array.blit !sizes 0 s 0 !nwaves;
      waves := w;
      sizes := s
    end;
    incr nwaves
  in
  let earlier = ref [] in       (* already-placed entries, newest first *)
  List.iter
    (fun e ->
      let floor =
        List.fold_left
          (fun acc f ->
            if conflicts e f then max acc (1 + Hashtbl.find wave_of f.lsn)
            else acc)
          0 !earlier
      in
      let w = ref floor in
      while !w < !nwaves && !sizes.(!w) >= slots do incr w done;
      while !w >= !nwaves do push_wave () done;
      !waves.(!w) <- e :: !waves.(!w);
      !sizes.(!w) <- !sizes.(!w) + 1;
      Hashtbl.replace wave_of e.lsn !w;
      earlier := e :: !earlier)
    entries;
  List.init !nwaves (fun i -> List.rev !waves.(i))

(* --- generation --- *)

(* A deterministic synthetic workload: [requests] entries whose keys walk
   the session/shard spaces through the shared splitmix generator, so a
   seed names the whole log. *)
let generate ~seed ~requests ~sessions ~shards =
  if requests < 1 then invalid_arg "Cmdlog.generate: requests must be >= 1";
  if sessions < 1 || shards < 1 then
    invalid_arg "Cmdlog.generate: sessions and shards must be >= 1";
  let rng = Fault.Rng.make seed in
  let t = create () in
  for _ = 1 to requests do
    ignore
      (append t
         ~session:(Fault.Rng.below rng sessions)
         ~shard:(Fault.Rng.below rng shards)
         ~kind:(Fault.Rng.below rng 4))
  done;
  t

(* --- the durable representation ---

   Line-oriented:

     # mst command log v1
     cmd <lsn> <session> <shard> <kind>
     ...
     end <count>

   The header line is literal (a missing or different first line is a
   version/corruption error, which covers the empty file), every entry
   names its own lsn so a dropped line is detected, and the trailer
   carries the count so a truncated tail is detected.  All rejections
   raise the structured {!Corrupt}. *)

let header = "# mst command log v1"

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header ^ "\n");
      iter t (fun e ->
          output_string oc
            (Printf.sprintf "cmd %d %d %d %d\n" e.lsn e.session e.shard e.kind));
      output_string oc (Printf.sprintf "end %d\n" t.len))

let load path =
  let ic =
    try open_in path
    with Sys_error msg -> corrupt path "cannot open: %s" msg
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let first =
        try input_line ic
        with End_of_file -> corrupt path "empty file (missing header)"
      in
      if String.trim first <> header then
        corrupt path "missing or unsupported header %S (want %S)"
          (String.trim first) header;
      let t = create () in
      let ended = ref false in
      let lineno = ref 1 in
      (try
         while not !ended do
           let line = String.trim (input_line ic) in
           incr lineno;
           if line <> "" && line.[0] <> '#' then begin
             let bad () = corrupt path "line %d: malformed entry %S" !lineno line in
             let nat s =
               match int_of_string_opt s with
               | Some n when n >= 0 -> n
               | _ -> bad ()
             in
             match String.split_on_char ' ' line with
             | [ "cmd"; lsn; session; shard; kind ] ->
                 let lsn = nat lsn in
                 if lsn <> t.len then
                   corrupt path "line %d: lsn %d out of order (expected %d)"
                     !lineno lsn t.len;
                 ignore
                   (append t ~session:(nat session) ~shard:(nat shard)
                      ~kind:(nat kind))
             | [ "end"; count ] ->
                 if nat count <> t.len then
                   corrupt path "trailer count %d does not match %d entries"
                     (nat count) t.len;
                 ended := true
             | _ -> bad ()
           end
         done
       with End_of_file -> ());
      if not !ended then
        corrupt path "truncated log: missing 'end %d' trailer" t.len;
      t)

(* [load] for a replay/serve invocation: a log with no entries would
   "serve" nothing and report success — the PR 6 vacuous-success rule
   rejects it instead. *)
let load_nonempty path =
  let t = load path in
  if t.len = 0 then corrupt path "no entries (empty log)";
  t
