(* Seeded fault injection: processor crashes, stalls, lock-holder
   failures, device timeouts and scavenge-worker deaths, sampled at the
   same instrumentation points the schedule explorer already drives.

   The design deliberately mirrors {!Explore}.  A run answers a stream of
   injection queries — one per instrumentation point reached — and a
   seeded injector samples a fault at a few of them.  The faults actually
   applied are recorded as a sparse *fault plan* [(query index, fault)],
   which can be replayed bit for bit and shrunk with the same delta
   debugging the decision traces use.  Because fault queries are counted
   separately from scheduling-policy queries, a fault plan composes with
   an {!Explore} schedule: the two drivers perturb the same run without
   renumbering each other's indices.

   A recorded plan only contains faults that were *honoured*: an applier
   may decline a sampled fault (the last live processor refuses to crash,
   a scavenge with one live worker refuses to lose it), and declined
   samples never enter the plan, so a replay re-applies exactly the
   faults the seeded run committed. *)

(* --- the shared PRNG ---

   The same splitmix64-style generator {!Explore} uses (it now aliases
   this one): Stdlib.Random's stream is not guaranteed stable across
   compiler releases, and seeded runs must reproduce forever. *)
module Rng = struct
  type t = { mutable state : int }

  let make seed = { state = (seed * 0x9E3779B9) + 0x1F123BB5 }

  (* The 64-bit splitmix constants, truncated to OCaml's boxed-free int
     width; mixing quality is ample for sampling perturbations. *)
  let next r =
    r.state <- r.state + 0x1E3779B97F4A7C15;
    let z = r.state in
    let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
    let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
    (z lxor (z lsr 31)) land max_int

  let below r n = if n <= 1 then 0 else next r mod n
  let chance r permil = below r 1000 < permil
end

(* A release time far enough in the future that no simulated clock ever
   reaches it: the timeline encoding of "held by a dead processor". *)
let never = max_int / 4

type fault =
  | Vp_crash                  (* processor fails at its next sched check *)
  | Vp_stall of int           (* processor loses N cycles (e.g. ECC stutter) *)
  | Holder_stall of int       (* lock holder keeps the lock N extra cycles *)
  | Holder_crash              (* lock holder dies inside the section *)
  | Device_timeout of int     (* device wedges for N cycles *)
  | Worker_crash of int       (* scavenge worker K dies at a barrier *)
  | Replica_crash of int      (* replica K dies at a log-entry boundary
                                 (E19; resolved modulo live replicas) *)

type step = { index : int; fault : fault }

type plan = step list

(* Which instrumentation point is asking.  Each fault kind belongs to one
   point; a replayed fault of the wrong kind for its query is dropped
   rather than derailing the run, exactly like {!Explore.decide}.
   [Log_entry] is queried by the E19 cluster manager once per replica at
   every wave boundary of the shared command log — the only place a
   whole simulated machine is allowed to die, so what a crash leaves
   behind is a prefix of applied log entries, never a half-applied
   command. *)
type point = Sched_check | Lock_acquire | Device_op | Gc_barrier | Log_entry

let matches_point point fault =
  match (point, fault) with
  | Sched_check, (Vp_crash | Vp_stall _) -> true
  | Lock_acquire, (Holder_stall _ | Holder_crash) -> true
  | Device_op, Device_timeout _ -> true
  | Gc_barrier, Worker_crash _ -> true
  | Log_entry, Replica_crash _ -> true
  | (Sched_check | Lock_acquire | Device_op | Gc_barrier | Log_entry), _ ->
      false

type params = {
  crash_permil : int;
  stall_permil : int;
  stall_bound : int;
  holder_stall_permil : int;
  holder_stall_bound : int;
  holder_crash_permil : int;
  device_permil : int;
  device_bound : int;
  worker_crash_permil : int;
  replica_crash_permil : int;  (* per (replica, wave-boundary) query (E19) *)
  max_faults : int;  (* cap on honoured faults per run *)
}

let no_faults =
  { crash_permil = 0; stall_permil = 0; stall_bound = 0;
    holder_stall_permil = 0; holder_stall_bound = 0;
    holder_crash_permil = 0; device_permil = 0; device_bound = 0;
    worker_crash_permil = 0; replica_crash_permil = 0; max_faults = 0 }

(* Campaigns: which family of faults a study run samples.  Per-point
   rates are chosen against very different query frequencies — sched
   checks fire thousands of times per benchmark, GC barriers a handful —
   so the permil values are not comparable across kinds.  [Replica] is
   the cluster-level campaign: its queries come once per replica per
   wave boundary, a few dozen per run. *)
type campaign = Crash | Stall | Lock | Device | Gc | Mixed | Replica

let campaign_name = function
  | Crash -> "crash"
  | Stall -> "stall"
  | Lock -> "lock"
  | Device -> "device"
  | Gc -> "gc"
  | Mixed -> "mixed"
  | Replica -> "replica"

let campaign_of_name = function
  | "crash" -> Some Crash
  | "stall" -> Some Stall
  | "lock" -> Some Lock
  | "device" -> Some Device
  | "gc" -> Some Gc
  | "mixed" -> Some Mixed
  | "replica" -> Some Replica
  | _ -> None

let params_of_campaign = function
  | Crash -> { no_faults with crash_permil = 3; max_faults = 1 }
  | Stall ->
      { no_faults with stall_permil = 40; stall_bound = 5000; max_faults = 6 }
  | Lock ->
      { no_faults with
        holder_stall_permil = 25; holder_stall_bound = 4000;
        holder_crash_permil = 6; max_faults = 4 }
  | Device ->
      { no_faults with device_permil = 60; device_bound = 6000; max_faults = 8 }
  | Gc -> { no_faults with worker_crash_permil = 400; max_faults = 4 }
  | Mixed ->
      { crash_permil = 1; stall_permil = 20; stall_bound = 3000;
        holder_stall_permil = 8; holder_stall_bound = 3000;
        holder_crash_permil = 2; device_permil = 15; device_bound = 4000;
        worker_crash_permil = 150; replica_crash_permil = 0; max_faults = 8 }
  | Replica -> { no_faults with replica_crash_permil = 120; max_faults = 1 }

let default_params = params_of_campaign Mixed

(* --- injectors --- *)

type mode =
  | Seeded of Rng.t * params
  | Replay of step array * int ref  (* cursor into the sorted steps *)

type t = {
  mode : mode;
  trace : Trace.t option;
  mutable queries : int;
  mutable last_index : int;     (* pre-increment index of the last query *)
  mutable injected_count : int;
  mutable rev_injected : step list;
  (* per-kind counts of honoured faults, for campaign reports *)
  mutable crashes : int;
  mutable stalls : int;
  mutable holder_stalls : int;
  mutable holder_crashes : int;
  mutable device_timeouts : int;
  mutable worker_crashes : int;
  mutable replica_crashes : int;
}

let injector mode trace =
  { mode; trace; queries = 0; last_index = -1; injected_count = 0;
    rev_injected = []; crashes = 0; stalls = 0; holder_stalls = 0;
    holder_crashes = 0; device_timeouts = 0; worker_crashes = 0;
    replica_crashes = 0 }

let seeded ?(params = default_params) ?trace ~seed () =
  injector (Seeded (Rng.make seed, params)) trace

let replay ?trace plan =
  let steps =
    Array.of_list (List.sort (fun a b -> compare a.index b.index) plan)
  in
  injector (Replay (steps, ref 0)) trace

let injected t = List.rev t.rev_injected
let injected_count t = t.injected_count
let queries t = t.queries
let crashes t = t.crashes
let stalls t = t.stalls
let holder_stalls t = t.holder_stalls
let holder_crashes t = t.holder_crashes
let device_timeouts t = t.device_timeouts
let worker_crashes t = t.worker_crashes
let replica_crashes t = t.replica_crashes

let describe = function
  | Vp_crash -> "vp crash"
  | Vp_stall n -> Printf.sprintf "vp stall %d" n
  | Holder_stall n -> Printf.sprintf "holder stall %d" n
  | Holder_crash -> "holder crash"
  | Device_timeout n -> Printf.sprintf "device timeout %d" n
  | Worker_crash k -> Printf.sprintf "worker %d crash" k
  | Replica_crash k -> Printf.sprintf "replica %d crash" k

(* Sample a fault for one query of [point] from the seed. *)
let gen_at point rng p =
  match point with
  | Sched_check ->
      if Rng.chance rng p.crash_permil then Some Vp_crash
      else if Rng.chance rng p.stall_permil then
        Some (Vp_stall (1 + Rng.below rng (max 1 p.stall_bound)))
      else None
  | Lock_acquire ->
      if Rng.chance rng p.holder_crash_permil then Some Holder_crash
      else if Rng.chance rng p.holder_stall_permil then
        Some (Holder_stall (1 + Rng.below rng (max 1 p.holder_stall_bound)))
      else None
  | Device_op ->
      if Rng.chance rng p.device_permil then
        Some (Device_timeout (1 + Rng.below rng (max 1 p.device_bound)))
      else None
  | Gc_barrier ->
      if Rng.chance rng p.worker_crash_permil then
        (* worker index resolved modulo the live workers by the applier *)
        Some (Worker_crash (Rng.below rng 64))
      else None
  | Log_entry ->
      if Rng.chance rng p.replica_crash_permil then
        (* replica index resolved modulo the live replicas by the applier *)
        Some (Replica_crash (Rng.below rng 64))
      else None

(* Answer one injection query.  Returns a *candidate* fault: the caller
   applies it only if its local guards allow (and then must call
   {!applied} so the plan records it). *)
let at t point =
  let q = t.queries in
  t.queries <- q + 1;
  t.last_index <- q;
  match t.mode with
  | Seeded (rng, p) ->
      if t.injected_count >= p.max_faults then None else gen_at point rng p
  | Replay (steps, cursor) ->
      let n = Array.length steps in
      while !cursor < n && steps.(!cursor).index < q do incr cursor done;
      if !cursor < n && steps.(!cursor).index = q then begin
        let s = steps.(!cursor) in
        incr cursor;
        if matches_point point s.fault then Some s.fault else None
      end
      else None

(* Record a fault the caller actually honoured, at the query index of the
   query that produced it. *)
let applied t ~vp ~now ~resource fault =
  t.rev_injected <- { index = t.last_index; fault } :: t.rev_injected;
  t.injected_count <- t.injected_count + 1;
  (match fault with
   | Vp_crash -> t.crashes <- t.crashes + 1
   | Vp_stall _ -> t.stalls <- t.stalls + 1
   | Holder_stall _ -> t.holder_stalls <- t.holder_stalls + 1
   | Holder_crash -> t.holder_crashes <- t.holder_crashes + 1
   | Device_timeout _ -> t.device_timeouts <- t.device_timeouts + 1
   | Worker_crash _ -> t.worker_crashes <- t.worker_crashes + 1
   | Replica_crash _ -> t.replica_crashes <- t.replica_crashes + 1);
  match t.trace with
  | None -> ()
  | Some tr ->
      Trace.record tr ~vp ~time:now ~kind:Trace.Fault_event ~resource
        ~detail:(Printf.sprintf "#%d %s" t.last_index (describe fault))

(* --- structured failure reports --- *)

(* The spin watchdog's verdict: who has been holding the lock, who gave
   up waiting, and when.  [waited] is the wait that tripped the bound, so
   a replayed report is comparable field for field. *)
type deadlock_report = {
  lock : string;
  holder : int;       (* vp id, or -1 for an engine-side section *)
  waiter : int;
  clock : int;        (* the waiter's clock when it gave up *)
  held_since : int;
  waited : int;
}

exception Deadlock_suspected of deadlock_report

let describe_deadlock r =
  (* a wait against [never] means the holder died with the lock *)
  let waited =
    if r.waited >= never / 2 then "forever"
    else Printf.sprintf "%d cycles" r.waited
  in
  Printf.sprintf
    "deadlock suspected on lock '%s': vp %d waited %s at clock %d \
     (holder vp %d, held since %d)"
    r.lock r.waiter waited r.clock r.holder r.held_since

let pp_deadlock fmt r =
  Format.pp_print_string fmt (describe_deadlock r)

(* A structured fatal error: what went wrong and where the simulation
   was.  Replaces bare [failwith]/[assert false] exits in the engine so a
   dying run can name the processor and clock, and the CLI can dump the
   trace-ring tail. *)
type fatal_info = { what : string; fatal_vp : int; fatal_clock : int }

exception Fatal of fatal_info

let fatal ~vp ~clock fmt =
  Printf.ksprintf
    (fun what -> raise (Fatal { what; fatal_vp = vp; fatal_clock = clock }))
    fmt

let describe_fatal i =
  Printf.sprintf "fatal: %s (vp %d, clock %d)" i.what i.fatal_vp i.fatal_clock

let () =
  Printexc.register_printer (function
    | Deadlock_suspected r -> Some (describe_deadlock r)
    | Fatal i -> Some (describe_fatal i)
    | _ -> None)

(* --- plan utilities --- *)

let fingerprint plan =
  List.fold_left
    (fun h { index; fault } ->
      let d =
        match fault with
        | Vp_crash -> 1
        | Vp_stall n -> (n lsl 3) lor 2
        | Holder_stall n -> (n lsl 3) lor 3
        | Holder_crash -> 4
        | Device_timeout n -> (n lsl 3) lor 5
        | Worker_crash k -> (k lsl 3) lor 6
        | Replica_crash k -> (k lsl 3) lor 7
      in
      let h = (h * 0x01000193) lxor index in
      ((h * 0x01000193) lxor d) land max_int)
    0x811C9DC5 plan

(* Delta-debug a failing plan to a minimal one, exactly as
   {!Explore.shrink} does for decision traces: drop chunks, halving the
   chunk size, then halve the surviving durations.  [run] replays a
   candidate plan and reports whether it still fails. *)
let shrink ~run ?(budget = 200) plan =
  let spent = ref 0 in
  let try_run s =
    if !spent >= budget then false
    else begin
      incr spent;
      run s
    end
  in
  let drop_chunks current =
    let current = ref current in
    let chunk = ref (max 1 (List.length !current / 2)) in
    let progress = ref true in
    while !chunk >= 1 && !spent < budget do
      progress := false;
      let arr = Array.of_list !current in
      let n = Array.length arr in
      let pos = ref 0 in
      while !pos < n && !spent < budget do
        let keep = ref [] in
        Array.iteri
          (fun i s -> if i < !pos || i >= !pos + !chunk then keep := s :: !keep)
          arr;
        let candidate = List.rev !keep in
        if List.length candidate < n && try_run candidate then begin
          current := candidate;
          progress := true;
          pos := n
        end
        else pos := !pos + !chunk
      done;
      if !progress then chunk := max 1 (min !chunk (List.length !current))
      else if !chunk = 1 then chunk := 0
      else chunk := !chunk / 2
    done;
    !current
  in
  let shrink_values current =
    let smaller = function
      | Vp_stall n when n > 1 -> Some (Vp_stall (n / 2))
      | Holder_stall n when n > 1 -> Some (Holder_stall (n / 2))
      | Device_timeout n when n > 1 -> Some (Device_timeout (n / 2))
      | _ -> None
    in
    let current = ref current in
    let again = ref true in
    while !again && !spent < budget do
      again := false;
      List.iteri
        (fun i s ->
          match smaller s.fault with
          | None -> ()
          | Some f ->
              let candidate =
                List.mapi
                  (fun j s' -> if j = i then { s' with fault = f } else s')
                  !current
              in
              if try_run candidate then begin
                current := candidate;
                again := true
              end)
        !current
    done;
    !current
  in
  let result = shrink_values (drop_chunks plan) in
  (result, !spent)

(* --- fault-plan files --- *)

let pp fmt plan =
  List.iter
    (fun { index; fault } ->
      match fault with
      | Vp_crash -> Format.fprintf fmt "crash %d@." index
      | Vp_stall n -> Format.fprintf fmt "stall %d %d@." index n
      | Holder_stall n -> Format.fprintf fmt "holdstall %d %d@." index n
      | Holder_crash -> Format.fprintf fmt "holdcrash %d@." index
      | Device_timeout n -> Format.fprintf fmt "timeout %d %d@." index n
      | Worker_crash k -> Format.fprintf fmt "workercrash %d %d@." index k
      | Replica_crash k -> Format.fprintf fmt "replicacrash %d %d@." index k)
    plan

let save path plan =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# mst fault plan v1\n";
      output_string oc
        (Printf.sprintf "# %d fault(s); index = injection-point number\n"
           (List.length plan));
      let fmt = Format.formatter_of_out_channel oc in
      pp fmt plan;
      Format.pp_print_flush fmt ())

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let steps = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           incr lineno;
           if line <> "" && line.[0] <> '#' then begin
             let bad () =
               failwith
                 (Printf.sprintf "%s:%d: malformed fault %S" path !lineno line)
             in
             let nat s = match int_of_string_opt s with
               | Some n when n >= 0 -> n
               | _ -> bad ()
             in
             let add index fault = steps := { index; fault } :: !steps in
             match String.split_on_char ' ' line with
             | [ "crash"; i ] -> add (nat i) Vp_crash
             | [ "stall"; i; n ] -> add (nat i) (Vp_stall (nat n))
             | [ "holdstall"; i; n ] -> add (nat i) (Holder_stall (nat n))
             | [ "holdcrash"; i ] -> add (nat i) Holder_crash
             | [ "timeout"; i; n ] -> add (nat i) (Device_timeout (nat n))
             | [ "workercrash"; i; k ] -> add (nat i) (Worker_crash (nat k))
             | [ "replicacrash"; i; k ] -> add (nat i) (Replica_crash (nat k))
             | _ -> bad ()
           end
         done
       with End_of_file -> ());
      List.sort (fun a b -> compare a.index b.index) !steps)

(* [load] for a --replay invocation: an empty (or comment-only) plan
   would silently run an unperturbed schedule and report success for a
   file that injects nothing — reject it instead. *)
let load_replay path =
  match load path with
  | [] ->
      failwith
        (Printf.sprintf
           "%s: no faults to replay (empty or comment-only plan)" path)
  | plan -> plan
