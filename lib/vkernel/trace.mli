(** A ring-buffer event trace for the simulated kernel.

    Every serialization-relevant event — lock acquisitions, critical
    sections, guarded-resource mutations, invariant violations — can be
    recorded here with its virtual processor, virtual time, kind and
    resource name.  The buffer is bounded: once full, new events overwrite
    the oldest, so tracing is safe to leave on for whole benchmark runs.
    Recording is O(1) and allocation-light; rendering happens only when a
    dump is requested. *)

type kind =
  | Lock_acquire  (** an uncontended [locked_op] or critical section *)
  | Lock_contend  (** the acquire found the lock held and spun *)
  | Section_enter  (** a bracketed critical section opened *)
  | Section_exit
  | Mutation  (** a guarded resource was mutated (checked) *)
  | Owner_touch  (** a replicated resource was touched by a vp *)
  | Violation  (** a sanitizer invariant failed *)
  | Sched_decision  (** the schedule explorer perturbed a decision *)
  | Fault_event  (** an injected fault or a recovery action *)
  | Steal  (** a work-stealing scheduler took a Process from a victim *)
  | Major  (** an incremental old-space collection event (E18) *)

type event = {
  vp : int;  (** virtual processor id, or -1 for the engine *)
  time : int;  (** virtual time in cycles, or -1 when unknown *)
  kind : kind;
  resource : string;
  detail : string;
}

type t

val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** Total events ever recorded, including overwritten ones. *)
val recorded : t -> int

val record :
  t -> vp:int -> time:int -> kind:kind -> resource:string -> detail:string ->
  unit

(** The most recent [n] events, oldest first. *)
val last : t -> int -> event list

val clear : t -> unit

val kind_name : kind -> string

val pp_event : Format.formatter -> event -> unit

(** Print the most recent [n] events, one per line. *)
val dump : Format.formatter -> t -> n:int -> unit
