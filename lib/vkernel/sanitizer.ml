type mode = Off | Report | Strict

exception Violation of string

(* Per-lock serialization state.  [last_start]/[last_finish] describe the
   most recent completed (or open) critical section on the lock's virtual
   timeline; [depth]/[section_vp] track the currently open bracket.  The
   host is single-threaded, so a bracket being open means host-order
   nesting, which is exactly the discipline the checker verifies. *)
type lock_state = {
  mutable last_start : int;
  mutable last_finish : int;
  mutable depth : int;
  mutable section_vp : int;
}

(* Parallel-scavenge phase: while the engine's lock checker is disarmed
   (the stop-the-world scavenger mutates without locks by design), the
   scavenger itself has invariants worth machine-checking — each from-space
   object is claimed by exactly one worker, allocation buffers claimed from
   the shared regions never overlap, and every copy lands inside a buffer
   owned by the copying worker. *)
type scav_state = {
  claims : (int, int) Hashtbl.t;  (* from-space address -> claiming worker *)
  mutable chunks : (int * int * int) list;  (* worker, base, limit *)
}

type t = {
  mode : mode;
  trace : Trace.t;
  locks : (string, lock_state) Hashtbl.t;
  mutable lock_order : string list;  (* reverse registration order *)
  guards : (string, string) Hashtbl.t;  (* resource -> lock name *)
  mutable armed : bool;
  mutable scav : scav_state option;  (* open parallel-scavenge phase *)
  mutable violation_count : int;
  mutable messages : string list;  (* newest first, capped *)
}

let max_messages = 64

let create ?(trace_capacity = 4096) mode =
  {
    mode;
    trace = Trace.create ~capacity:(max 1 trace_capacity) ();
    locks = Hashtbl.create 16;
    lock_order = [];
    guards = Hashtbl.create 16;
    armed = false;
    scav = None;
    violation_count = 0;
    messages = [];
  }

let mode t = t.mode
let active t = t.mode <> Off
let set_armed t b = t.armed <- b
let armed t = t.armed
let checking t = active t && t.armed
let trace t = t.trace
let violation_count t = t.violation_count
let violations t = List.rev t.messages

let register_lock t name =
  if not (Hashtbl.mem t.locks name) then begin
    Hashtbl.replace t.locks name
      { last_start = 0; last_finish = 0; depth = 0; section_vp = -1 };
    t.lock_order <- name :: t.lock_order
  end

let lock_names t = List.rev t.lock_order

let register_guard t ~resource ~lock =
  register_lock t lock;
  Hashtbl.replace t.guards resource lock

let report_violation t ~vp ~now ~resource msg =
  t.violation_count <- t.violation_count + 1;
  if List.length t.messages < max_messages then
    t.messages <- Printf.sprintf "%s: %s" resource msg :: t.messages;
  Trace.record t.trace ~vp ~time:now ~kind:Trace.Violation ~resource
    ~detail:msg;
  if t.mode = Strict then
    raise (Violation (Printf.sprintf "sanitizer: %s: %s" resource msg))

let lock_state t name =
  match Hashtbl.find_opt t.locks name with
  | Some st -> st
  | None ->
      register_lock t name;
      Hashtbl.find t.locks name

let on_lock_op t ~lock ~vp ~now ~start ~finish ~contended =
  if active t then begin
    let st = lock_state t lock in
    if t.armed && start < st.last_finish then
      report_violation t ~vp ~now ~resource:lock
        (Printf.sprintf
           "timeline moved backwards: section [%d,%d] starts before \
            previous finish %d"
           start finish st.last_finish);
    if t.armed && finish < start then
      report_violation t ~vp ~now ~resource:lock
        (Printf.sprintf "section finish %d before start %d" finish start);
    st.last_start <- start;
    st.last_finish <- max st.last_finish finish;
    Trace.record t.trace ~vp ~time:start
      ~kind:(if contended then Trace.Lock_contend else Trace.Lock_acquire)
      ~resource:lock
      ~detail:(Printf.sprintf "finish=%d" finish)
  end

let section_enter t ~lock ~vp ~now ~start ~finish ~contended =
  if active t then begin
    on_lock_op t ~lock ~vp ~now ~start ~finish ~contended;
    let st = lock_state t lock in
    st.depth <- st.depth + 1;
    st.section_vp <- vp;
    Trace.record t.trace ~vp ~time:start ~kind:Trace.Section_enter
      ~resource:lock ~detail:""
  end

let section_exit t ~lock ~vp ~now =
  if active t then begin
    let st = lock_state t lock in
    if t.armed && st.depth <= 0 then
      report_violation t ~vp ~now ~resource:lock
        "section exit without matching enter"
    else st.depth <- max 0 (st.depth - 1);
    if st.depth = 0 then st.section_vp <- -1;
    Trace.record t.trace ~vp ~time:now ~kind:Trace.Section_exit
      ~resource:lock ~detail:""
  end

let check_guarded t ~resource ~vp ~now ~detail =
  if checking t then
    match Hashtbl.find_opt t.guards resource with
    | None -> ()
    | Some lock ->
        let st = lock_state t lock in
        if st.depth <= 0 then
          report_violation t ~vp ~now ~resource
            (Printf.sprintf "mutated outside '%s' critical section (%s)"
               lock detail)
        else if vp >= 0 && st.section_vp >= 0 && vp <> st.section_vp then
          report_violation t ~vp ~now ~resource
            (Printf.sprintf
               "mutated by vp %d inside '%s' section held by vp %d (%s)" vp
               lock st.section_vp detail)
        else
          Trace.record t.trace ~vp ~time:now ~kind:Trace.Mutation ~resource
            ~detail

let check_owner t ~resource ~owner ~vp ~now =
  if checking t && owner >= 0 then
    if vp >= 0 && vp <> owner then
      report_violation t ~vp ~now ~resource
        (Printf.sprintf "replicated resource owned by vp %d touched by vp %d"
           owner vp)
    else
      Trace.record t.trace ~vp ~time:now ~kind:Trace.Owner_touch ~resource
        ~detail:(Printf.sprintf "owner=%d" owner)

(* Record an injected fault or a recovery action in the trace ring.
   Faults are simulation events, not invariant violations — they are
   recorded whenever the sanitizer is on at all, so a post-mortem dump
   shows the fault that preceded the failure it caused. *)
let fault_event t ~vp ~now ~resource detail =
  if active t then
    Trace.record t.trace ~vp ~time:now ~kind:Trace.Fault_event ~resource
      ~detail

(* Record a successful work steal.  Like faults, steals are simulation
   events, not violations: when something goes wrong under the stealing
   scheduler, the dump should show which migrations led up to it. *)
let steal_event t ~vp ~now ~resource ~detail =
  if active t then
    Trace.record t.trace ~vp ~time:now ~kind:Trace.Steal ~resource ~detail

(* --- the parallel-scavenge phase --- *)

let scav_resource = "parallel scavenge"

(* Phase checks are gated on [active] rather than [checking]: the engine
   deliberately disarms the lock checker around the scavenger, but the
   scavenge-internal invariants must still be enforced. *)
let scavenge_begin t ~workers =
  if active t then begin
    t.scav <- Some { claims = Hashtbl.create 1024; chunks = [] };
    Trace.record t.trace ~vp:(-1) ~time:(-1) ~kind:Trace.Mutation
      ~resource:scav_resource
      ~detail:(Printf.sprintf "begin (%d workers)" workers)
  end

let scavenge_claim t ~worker ~addr =
  match t.scav with
  | None -> ()
  | Some s -> (
      match Hashtbl.find_opt s.claims addr with
      | Some prior ->
          report_violation t ~vp:worker ~now:(-1) ~resource:scav_resource
            (Printf.sprintf
               "object at %d claimed by worker %d but already claimed by \
                worker %d"
               addr worker prior)
      | None -> Hashtbl.replace s.claims addr worker)

let scavenge_chunk t ~worker ~base ~limit =
  match t.scav with
  | None -> ()
  | Some s ->
      if limit <= base then
        report_violation t ~vp:worker ~now:(-1) ~resource:scav_resource
          (Printf.sprintf "worker %d claimed an empty chunk [%d,%d)" worker
             base limit)
      else begin
        List.iter
          (fun (w, b, l) ->
            if base < l && b < limit then
              report_violation t ~vp:worker ~now:(-1) ~resource:scav_resource
                (Printf.sprintf
                   "worker %d's chunk [%d,%d) overlaps worker %d's [%d,%d)"
                   worker base limit w b l))
          s.chunks;
        s.chunks <- (worker, base, limit) :: s.chunks;
        Trace.record t.trace ~vp:worker ~time:(-1) ~kind:Trace.Mutation
          ~resource:scav_resource
          ~detail:(Printf.sprintf "chunk [%d,%d)" base limit)
      end

let scavenge_copy t ~worker ~addr ~words =
  match t.scav with
  | None -> ()
  | Some s ->
      let inside =
        List.exists
          (fun (w, b, l) -> w = worker && addr >= b && addr + words <= l)
          s.chunks
      in
      if not inside then
        report_violation t ~vp:worker ~now:(-1) ~resource:scav_resource
          (Printf.sprintf
             "worker %d copied %d words to %d outside any buffer it owns"
             worker words addr)

let scavenge_end t = t.scav <- None

(* --- the incremental major-collection phase (E18) --- *)

let major_resource = "major collection"

(* Cycle-level events (start, mark complete, cycle complete) are
   simulation events, recorded whenever the sanitizer is active so a
   post-mortem dump shows where the collector was. *)
let major_event t ~now detail =
  if active t then
    Trace.record t.trace ~vp:(-1) ~time:now ~kind:Trace.Major
      ~resource:major_resource ~detail

(* Record one bounded slice.  A slice may legitimately overrun the budget
   by the last work unit it started, but a gross overrun (4x) means the
   slice loop lost track of its cost accounting — that is a collector
   bug, not a measurement artifact.  Gated on [active] like the scavenge
   phase: the engine disarms the lock checker around the slice. *)
let major_slice t ~now ~cost ~budget =
  if active t then begin
    Trace.record t.trace ~vp:(-1) ~time:now ~kind:Trace.Major
      ~resource:major_resource
      ~detail:(Printf.sprintf "slice %d cycles (budget %d)" cost budget);
    if budget > 0 && cost > 4 * budget then
      report_violation t ~vp:(-1) ~now ~resource:major_resource
        (Printf.sprintf
           "slice ran %d cycles against a budget of %d (over the 4x hard \
            ceiling)"
           cost budget)
  end

let print_report t =
  Printf.printf "sanitizer: mode=%s violations=%d\n"
    (match t.mode with Off -> "off" | Report -> "report" | Strict -> "strict")
    t.violation_count;
  let msgs = violations t in
  List.iteri (fun i m -> Printf.printf "  %2d. %s\n" (i + 1) m) msgs;
  if t.violation_count > List.length msgs then
    Printf.printf "  ... and %d more\n" (t.violation_count - List.length msgs)
