(* A bounded event trace.  The buffer is a plain circular array: [next] is
   the slot the next event lands in, [total] counts every event ever
   recorded, so the live window is the last [min total capacity] slots
   before [next]. *)

type kind =
  | Lock_acquire
  | Lock_contend
  | Section_enter
  | Section_exit
  | Mutation
  | Owner_touch
  | Violation
  | Sched_decision
  | Fault_event
  | Steal
  | Major

type event = {
  vp : int;
  time : int;
  kind : kind;
  resource : string;
  detail : string;
}

let dummy = { vp = -1; time = -1; kind = Mutation; resource = ""; detail = "" }

type t = {
  buf : event array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity";
  { buf = Array.make capacity dummy; next = 0; total = 0 }

let capacity t = Array.length t.buf
let recorded t = t.total

let record t ~vp ~time ~kind ~resource ~detail =
  t.buf.(t.next) <- { vp; time; kind; resource; detail };
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

let last t n =
  let cap = Array.length t.buf in
  let live = min t.total cap in
  let n = min n live in
  let rec take i acc =
    if i >= n then acc
    else
      (* i = 0 is the most recent event, at next - 1 *)
      let slot = (t.next - 1 - i + (2 * cap)) mod cap in
      take (i + 1) (t.buf.(slot) :: acc)
  in
  take 0 []

let clear t =
  t.next <- 0;
  t.total <- 0;
  Array.fill t.buf 0 (Array.length t.buf) dummy

let kind_name = function
  | Lock_acquire -> "acquire"
  | Lock_contend -> "contend"
  | Section_enter -> "enter"
  | Section_exit -> "exit"
  | Mutation -> "mutate"
  | Owner_touch -> "touch"
  | Violation -> "VIOLATION"
  | Sched_decision -> "decide"
  | Fault_event -> "FAULT"
  | Steal -> "steal"
  | Major -> "major"

let pp_event fmt e =
  let vp = if e.vp < 0 then "--" else string_of_int e.vp in
  let time = if e.time < 0 then "?" else string_of_int e.time in
  Format.fprintf fmt "[vp %2s @@ %10s] %-9s %-20s %s" vp time
    (kind_name e.kind) e.resource e.detail

let dump fmt t ~n =
  let events = last t n in
  if events = [] then Format.fprintf fmt "(trace empty)@."
  else begin
    Format.fprintf fmt "trace: last %d of %d events@." (List.length events)
      t.total;
    List.iter (fun e -> Format.fprintf fmt "  %a@." pp_event e) events
  end
