(* Cycle-cost model for the simulated Firefly.

   All costs are expressed in microVAX instructions, which we equate with
   cycles of a 1-MIPS processor: simulated seconds = cycles / [cycles_per_second].
   The [firefly] preset is calibrated so that the macro benchmarks of
   Pallas & Ungar (PLDI '88) land in the same range as the paper's Table 2. *)

type t = {
  (* interpreter *)
  dispatch : int;           (* fetch/decode of one bytecode *)
  push : int;               (* push/store/pop data movement *)
  jump : int;               (* taken or untaken branch *)
  send_base : int;          (* argument shuffling + activation bookkeeping *)
  cache_hit : int;          (* method cache probe that hits *)
  cache_probe : int;        (* each dictionary probe during lookup on a miss *)
  replicated_cache_penalty : int; (* extra indirection for per-processor caches *)
  ctx_fresh : int;          (* allocating a context from the heap *)
  ctx_recycled : int;       (* reusing a context from the free list *)
  ctx_init_per_word : int;  (* clearing/initialising one context word *)
  return_cost : int;        (* method/block return *)
  prim_arith : int;         (* SmallInteger arithmetic primitive *)
  prim_at : int;            (* at:/at:put:/size primitives *)
  prim_misc : int;          (* other cheap primitives *)
  prim_compile_per_char : int;  (* compiler primitive, per source character *)
  (* storage *)
  alloc_base : int;         (* bump-pointer allocation *)
  alloc_per_word : int;     (* zeroing one allocated word *)
  store_check : int;        (* old->new store check (entry table test) *)
  remember_insert : int;    (* adding an object to the entry table *)
  scavenge_base : int;      (* fixed cost of one scavenge *)
  scavenge_per_word : int;  (* copying one surviving word *)
  scavenge_per_remembered : int; (* scanning one entry-table object *)
  (* incremental old-space mark-sweep (E18) *)
  major_slice_base : int;      (* rendezvous + state reload per slice *)
  major_mark_per_object : int; (* grey-stack pop + header test *)
  major_mark_per_word : int;   (* scanning one field during marking *)
  major_sweep_per_word : int;  (* sweeping one old-space word *)
  (* synchronization (the V kernel's spin-locks) *)
  lock_acquire : int;       (* uncontended interlocked test-and-set + release *)
  delay_quantum : int;      (* kernel Delay timeout used when a spin fails *)
  sched_op : int;           (* ready-queue surgery under the scheduler lock *)
  (* periodic interpreter duties *)
  event_poll_interval : int;  (* bytecodes between input-queue polls *)
  event_poll_cost : int;      (* cost of one poll (excluding its lock) *)
  sched_check_interval : int; (* bytecodes between ready-queue checks *)
  sched_check_cost : int;
  (* devices *)
  display_cmd : int;        (* display controller service time per command *)
  display_capacity : int;   (* output-queue capacity *)
  (* shared memory bus *)
  bus_beta : float;         (* per-extra-active-processor slowdown on memory ops *)
  (* the multiprocessor interpreter executes extra synchronization
     instructions on its common paths even when uncontended; this is the
     static cost of the architectural changes *)
  ms_static_penalty : int;
  cycles_per_second : int;  (* clock rate: converts cycles to simulated seconds *)
}

(* Calibrated for a ~1-MIPS microVAX running an interpreter: a typical
   bytecode costs a few tens of instructions, so the system executes roughly
   30-100 K bytecodes per simulated second, matching the era's Smalltalk
   benchmark times (seconds for tens of thousands of high-level operations). *)
let firefly = {
  dispatch = 8;
  push = 10;
  jump = 6;
  send_base = 30;
  cache_hit = 15;
  cache_probe = 40;
  replicated_cache_penalty = 4;
  ctx_fresh = 60;
  ctx_recycled = 20;
  ctx_init_per_word = 2;
  return_cost = 20;
  prim_arith = 15;
  prim_at = 20;
  prim_misc = 25;
  prim_compile_per_char = 400;
  alloc_base = 25;
  alloc_per_word = 2;
  store_check = 6;
  remember_insert = 20;
  scavenge_base = 12000;
  scavenge_per_word = 15;
  scavenge_per_remembered = 25;
  major_slice_base = 3000;
  major_mark_per_object = 10;
  major_mark_per_word = 6;
  major_sweep_per_word = 3;
  lock_acquire = 12;
  delay_quantum = 150;
  sched_op = 25;
  event_poll_interval = 200;
  event_poll_cost = 30;
  sched_check_interval = 1000;
  sched_check_cost = 40;
  display_cmd = 1000;
  display_capacity = 8;
  bus_beta = 0.025;
  ms_static_penalty = 1;
  cycles_per_second = 1_000_000;
}

(* A fast, feature-neutral model for unit tests: every cost 1, no periodic
   duties firing mid-test, no bus effects.  Virtual time then counts
   abstract steps, which keeps test expectations simple. *)
let uniform = {
  dispatch = 1;
  push = 1;
  jump = 1;
  send_base = 1;
  cache_hit = 1;
  cache_probe = 1;
  replicated_cache_penalty = 0;
  ctx_fresh = 1;
  ctx_recycled = 1;
  ctx_init_per_word = 0;
  return_cost = 1;
  prim_arith = 1;
  prim_at = 1;
  prim_misc = 1;
  prim_compile_per_char = 0;
  alloc_base = 1;
  alloc_per_word = 0;
  store_check = 0;
  remember_insert = 1;
  scavenge_base = 1;
  scavenge_per_word = 1;
  scavenge_per_remembered = 1;
  major_slice_base = 1;
  major_mark_per_object = 1;
  major_mark_per_word = 1;
  major_sweep_per_word = 1;
  lock_acquire = 1;
  delay_quantum = 4;
  sched_op = 2;
  event_poll_interval = 500;
  event_poll_cost = 0;
  sched_check_interval = 500;
  sched_check_cost = 0;
  display_cmd = 1;
  display_capacity = 16;
  bus_beta = 0.0;
  ms_static_penalty = 0;
  cycles_per_second = 1_000_000;
}

let seconds model cycles =
  float_of_int cycles /. float_of_int model.cycles_per_second
