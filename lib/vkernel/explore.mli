(** Seeded schedule exploration for the simulated Firefly.

    The engine's default schedule is one interleaving per configuration:
    the runnable processor with the smallest clock steps next, ties going
    to the lowest id.  This module perturbs that schedule at the three
    preemption points exposed by {!Machine.scheduling_policy} — min-clock
    ties, lock acquisitions, and the release of charged critical sections
    — so the serialization sanitizer and a differential oracle can audit
    many interleavings instead of one.

    A perturbed run is summarized by its {!schedule}: the sparse list of
    non-default decisions, each tagged with the index of the preemption
    point (the n-th policy query of the run) it was applied at.  Because
    the simulation is deterministic, replaying a schedule reproduces the
    run bit for bit; shrinking a failing schedule is subset minimization
    over its decisions plus value shrinking of the survivors. *)

(** One non-default decision at a preemption point. *)
type decision =
  | Tie_pick of int  (** take the k-th candidate of a min-clock tie *)
  | Lock_jitter of int  (** stall this many cycles before an acquire *)
  | Force_preempt  (** reschedule after this critical section *)

type step = { index : int; decision : decision }

(** A sparse decision trace, strictly ascending by [index].  The empty
    schedule is the default deterministic run. *)
type schedule = step list

type params = {
  tie_permil : int;  (** chance (‰) a min-clock tie is permuted *)
  jitter_permil : int;  (** chance (‰) an acquire is jittered *)
  preempt_permil : int;  (** chance (‰) a section forces a preemption *)
  jitter_bound : int;  (** maximum injected stall, in cycles *)
}

val default_params : params

(** A driver counts preemption-point queries and either generates
    decisions from a seed or replays a fixed schedule. *)
type driver

(** [seeded ~seed ()] makes a generating driver.  The same seed always
    produces the same decision sequence (the PRNG is our own splitmix
    derivative, independent of [Stdlib.Random]).  [trace] additionally
    records every perturbation as a {!Trace.Sched_decision} event. *)
val seeded : ?params:params -> ?trace:Trace.t -> seed:int -> unit -> driver

(** [replay sched] makes a driver that applies exactly the decisions of
    [sched] at their recorded preemption points and defaults everywhere
    else.  Out-of-range tie picks are clamped to the candidate count. *)
val replay : ?trace:Trace.t -> schedule -> driver

(** The scheduling policy to install with {!Machine.set_policy}. *)
val policy : driver -> Machine.scheduling_policy

(** The non-default decisions the driver applied, index-ascending. *)
val recorded : driver -> schedule

(** Total preemption-point queries the driver answered. *)
val queries : driver -> int

(** A content hash of a schedule, for distinct-schedule statistics. *)
val fingerprint : schedule -> int

(** [shrink ~run sched] minimizes a failing schedule: [run s] must
    rebuild the world, replay [s], and return [true] when the failure
    still reproduces.  [sched] itself is assumed to fail.  Returns the
    shrunk schedule and the number of replays spent.  [budget] caps the
    replays (default 200). *)
val shrink :
  run:(schedule -> bool) -> ?budget:int -> schedule -> schedule * int

(** {2 Decision-trace files}

    One decision per line — [tie INDEX PICK], [jitter INDEX CYCLES],
    [preempt INDEX] — with [#] comments; the format documented in
    DESIGN.md and produced/consumed by [mst explore]. *)

val save : string -> schedule -> unit

(** Raises [Failure] on a malformed file. *)
val load : string -> schedule

(** {!load} for replay: additionally raises [Failure] when the file holds
    no decisions at all — an empty trace would silently replay the
    unperturbed schedule. *)
val load_replay : string -> schedule

val pp : Format.formatter -> schedule -> unit
