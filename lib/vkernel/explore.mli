(** Seeded schedule exploration for the simulated Firefly.

    The engine's default schedule is one interleaving per configuration:
    the runnable processor with the smallest clock steps next, ties going
    to the lowest id.  This module perturbs that schedule at the three
    preemption points exposed by {!Machine.scheduling_policy} — min-clock
    ties, lock acquisitions, and the release of charged critical sections
    — so the serialization sanitizer and a differential oracle can audit
    many interleavings instead of one.

    A perturbed run is summarized by its {!schedule}: the sparse list of
    non-default decisions, each tagged with the index of the preemption
    point (the n-th policy query of the run) it was applied at.  Because
    the simulation is deterministic, replaying a schedule reproduces the
    run bit for bit; shrinking a failing schedule is subset minimization
    over its decisions plus value shrinking of the survivors. *)

(** One non-default decision at a preemption point. *)
type decision =
  | Tie_pick of int  (** take the k-th candidate of a min-clock tie *)
  | Lock_jitter of int  (** stall this many cycles before an acquire *)
  | Force_preempt  (** reschedule after this critical section *)

type step = { index : int; decision : decision }

(** A sparse decision trace, strictly ascending by [index].  The empty
    schedule is the default deterministic run. *)
type schedule = step list

type params = {
  tie_permil : int;  (** chance (‰) a min-clock tie is permuted *)
  jitter_permil : int;  (** chance (‰) an acquire is jittered *)
  preempt_permil : int;  (** chance (‰) a section forces a preemption *)
  jitter_bound : int;  (** maximum injected stall, in cycles *)
}

val default_params : params

(** A driver counts preemption-point queries and either generates
    decisions from a seed or replays a fixed schedule. *)
type driver

(** [seeded ~seed ()] makes a generating driver.  The same seed always
    produces the same decision sequence (the PRNG is our own splitmix
    derivative, independent of [Stdlib.Random]).  [trace] additionally
    records every perturbation as a {!Trace.Sched_decision} event. *)
val seeded : ?params:params -> ?trace:Trace.t -> seed:int -> unit -> driver

(** [replay sched] makes a driver that applies exactly the decisions of
    [sched] at their recorded preemption points and defaults everywhere
    else.  Out-of-range tie picks are clamped to the candidate count. *)
val replay : ?trace:Trace.t -> schedule -> driver

(** What a preemption-point query was about. *)
type qkind =
  | Qtie of int array  (** min-clock tie between these vp ids *)
  | Qacquire of string  (** about to acquire this lock *)
  | Qexit of string  (** leaving this charged critical section *)

(** One entry of a guided driver's query log: the query index, what was
    asked, the acting vp and its clock at the time. *)
type qinfo = { q : int; kind : qkind; qvp : int; qnow : int }

(** [guided sched] is {!replay} plus a full query log: the driver records
    every preemption-point query it answers (not just the perturbed
    ones), which is what the systematic explorer ({!Dpor}) consumes. *)
val guided : ?trace:Trace.t -> schedule -> driver

(** The guided driver's query log, index-ascending.  Empty for seeded and
    plain replay drivers. *)
val query_log : driver -> qinfo array

(** The scheduling policy to install with {!Machine.set_policy}. *)
val policy : driver -> Machine.scheduling_policy

(** The non-default decisions the driver applied, index-ascending. *)
val recorded : driver -> schedule

(** Total preemption-point queries the driver answered. *)
val queries : driver -> int

(** A content hash of a schedule, for distinct-schedule statistics. *)
val fingerprint : schedule -> int

(** [shrink ~run sched] minimizes a failing schedule: [run s] must
    rebuild the world, replay [s], and return [true] when the failure
    still reproduces.  [sched] itself is assumed to fail.  Returns the
    shrunk schedule and the number of replays spent.  [budget] caps the
    replays (default 200). *)
val shrink :
  run:(schedule -> bool) -> ?budget:int -> schedule -> schedule * int

(** {2 Decision-trace files}

    One decision per line — [tie INDEX PICK], [jitter INDEX CYCLES],
    [preempt INDEX] — with [#] comments; the format documented in
    DESIGN.md and produced/consumed by [mst explore]. *)

val save : string -> schedule -> unit

(** Raises [Failure] on a malformed file. *)
val load : string -> schedule

(** {!load} for replay: additionally raises [Failure] when the file holds
    no decisions at all — an empty trace would silently replay the
    unperturbed schedule. *)
val load_replay : string -> schedule

val pp : Format.formatter -> schedule -> unit

(** {2 Systematic exploration (E20)}

    A DFS over forced decision prefixes, run-to-completion style: execute
    under a {!guided} driver, analyse the query log, backtrack to the
    deepest choice point with an unexplored alternative, re-execute.
    [Brute] enumerates every alternative at every choice point within the
    bounds; [Dpor] inserts alternatives only where the executed run shows
    a race (two acquires of one lock by different vps with nothing
    between), pruned further by sleep sets.  See DESIGN.md. *)
module Dpor : sig
  (** What one execution of the workload produced.  [obs] is the
      observable fingerprint the caller compares runs by (result +
      transcript + census); [failure] is a human-readable description
      when the run errored or diverged. *)
  type exec = {
    xlog : qinfo array;
    obs : string;
    failure : string option;
  }

  type mode = Brute | Dpor

  type stats = {
    executions : int;  (** schedules actually run *)
    distinct_obs : int;
    distinct_traces : int;  (** distinct Mazurkiewicz fingerprints *)
    races : int;  (** racing acquire pairs seen across all runs *)
    pruned : int;  (** brute-eligible alternatives never explored *)
    sleep_skips : int;  (** insertions suppressed by sleep sets *)
    bounded : int;  (** insertions refused by the flip/branch bounds *)
    exhausted : bool;  (** the bounded space was fully explored *)
  }

  type result = {
    stats : stats;
    obs_witness : (string * schedule) list;
        (** one witness schedule per distinct observable, discovery
            order *)
    failures : (schedule * string) list;
  }

  (** Per-lock acquisition-order hash of a query log: two runs that only
      interleave independent (different-lock) operations differently
      fingerprint the same. *)
  val trace_fingerprint : qinfo array -> int

  (** [systematic ~run ()] explores the schedule space of the
      deterministic workload [run], which must rebuild the world and
      execute it under [guided sched].

      [mode] selects brute-force enumeration or DPOR (default).
      [max_branch] ignores choice points past this query index;
      [max_flips] bounds the forced decisions per schedule (the
      preemption bound, default 2); [budget] caps executions (default
      256).  [defers] enables the lock-jitter lever and [preempts] the
      forced-preemption lever (both default true; the exhaustiveness
      oracle disables them for a tie-only space where brute force is
      genuinely exhaustive).  [defer_slack] pads computed jitters.
      [stop_on_failure] stops at the first failing execution.  [log]
      receives occasional progress lines. *)
  val systematic :
    ?mode:mode ->
    ?max_branch:int ->
    ?max_flips:int ->
    ?budget:int ->
    ?defers:bool ->
    ?preempts:bool ->
    ?defer_slack:int ->
    ?stop_on_failure:bool ->
    ?log:(string -> unit) ->
    run:(schedule -> exec) ->
    unit ->
    result
end
