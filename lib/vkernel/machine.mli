(** The simulated Firefly: virtual processors with cycle clocks.

    The engine always steps the runnable processor with the smallest
    clock, which guarantees that operations on shared resources are
    processed in nondecreasing virtual-time order — the property the
    contention models in {!Spinlock} and {!Devices} rely on.  The shared
    memory bus is a multiplicative slowdown on memory-heavy operations,
    growing with the number of processors actively executing. *)

type vp_state =
  | Running  (** executing an interpreter *)
  | Idle  (** no Smalltalk Process; polling the ready queue *)
  | Parked_for_gc
  | Halted

type vp = {
  id : int;
  mutable clock : int;  (** this processor's virtual time, in cycles *)
  mutable state : vp_state;
  mutable steps : int;  (** bytecodes executed *)
  mutable spin_cycles : int;  (** cycles lost waiting for locks *)
  mutable gc_wait_cycles : int;  (** cycles lost to scavenge pauses *)
  mutable fault_cycles : int;  (** cycles lost to injected faults *)
}

(** A scheduling policy perturbs the engine's decisions at its preemption
    points: min-clock ties, lock acquisitions, and the release of a
    charged critical section.  The engine's default behaviour (lowest id
    wins ties, no jitter, no forced preemption) is what runs when no
    policy is installed; {!Explore} builds policies that drive the engine
    through alternative interleavings. *)
type scheduling_policy = {
  choose_tie : vp array -> vp;
      (** candidates all share the minimal clock, in ascending id order;
          must return one of them *)
  lock_jitter : vp:int -> lock:string -> now:int -> int;
      (** extra cycles to stall before an acquire; 0 leaves it alone *)
  preempt_after : vp:int -> lock:string -> now:int -> bool;
      (** request a reschedule after this charged critical section? *)
}

(** The identity policy: equivalent to having none installed. *)
val default_policy : scheduling_policy

type t

val make : processors:int -> Cost_model.t -> t

(** Install (or clear) the scheduling policy.  [None] — the default — is
    the deterministic lowest-id policy and costs nothing per step. *)
val set_policy : t -> scheduling_policy option -> unit

val policy : t -> scheduling_policy option

(** Record a policy-requested preemption for a processor; the engine
    drains it with {!take_forced_preempt} after the current step. *)
val flag_preempt : t -> int -> unit

(** Consume a pending forced preemption, returning whether one was set. *)
val take_forced_preempt : t -> int -> bool

(** Install (or clear) the fault injector; orthogonal to the scheduling
    policy.  [None] — the default — makes every injection site a no-op. *)
val set_injector : t -> Fault.t option -> unit

val injector : t -> Fault.t option

(** Flag an injected crash for a processor; the engine delivers it at
    the end of the victim's current step with {!take_crash}. *)
val flag_crash : t -> int -> unit

val crash_pending : t -> int -> bool

(** Consume the lowest-id pending crash, if any. *)
val take_crash : t -> int option

val processors : t -> int

val vp : t -> int -> vp

(** Live processors (running or idle). *)
val active_count : t -> int

(** Processors actually executing bytecodes; idle ones stay off the bus. *)
val running_count : t -> int

(** Change a processor's state, refreshing the bus multiplier.  A halted
    processor cannot be resumed: raises {!Fault.Fatal} on a transition
    out of [Halted] (failover abandons the dead vp's replicated state,
    so resurrecting it would be unsound). *)
val set_state : t -> vp -> vp_state -> unit

(** Charge CPU-local cycles. *)
val charge : t -> vp -> int -> unit

(** Charge memory-heavy cycles, inflated by bus contention. *)
val charge_mem : t -> vp -> int -> unit

(** The runnable processor with the smallest clock, if any. *)
val min_runnable : t -> vp option

val max_clock : t -> int

val all_parked_or_halted : t -> bool

(** Advance every live clock to at least the given time (end of a
    stop-the-world pause); the advance is recorded as GC wait. *)
val synchronize_clocks : t -> int -> unit
