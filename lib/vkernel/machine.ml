(* The simulated Firefly: an array of virtual processors, each with its own
   cycle clock.  The engine always steps the runnable processor with the
   smallest clock, which guarantees that operations on shared resources are
   processed in nondecreasing virtual-time order — the property the
   contention models in {!Spinlock} and {!Devices} rely on.

   The shared memory bus is modelled as a multiplicative slowdown on
   memory-heavy operations: with [n] processors actively executing, a memory
   operation costs [cost * (1 + beta * (n - 1))].  The Firefly's 16 KB
   private caches mean most traffic stays off the bus, hence the small
   default beta. *)

type vp_state =
  | Running          (* executing an interpreter *)
  | Idle             (* no Smalltalk Process to run; polling the ready queue *)
  | Parked_for_gc    (* reached the scavenge rendezvous *)
  | Halted           (* shut down *)

type vp = {
  id : int;
  mutable clock : int;
  mutable state : vp_state;
  mutable steps : int;            (* bytecodes executed, for reports *)
  mutable spin_cycles : int;      (* cycles lost waiting for locks *)
  mutable gc_wait_cycles : int;   (* cycles lost parked for scavenges *)
  mutable fault_cycles : int;     (* cycles lost to injected faults *)
}

(* A scheduling policy perturbs the engine's decisions at its three
   preemption points: min-clock ties, lock acquisitions, and the release
   of a charged critical section.  [None] is the default deterministic
   policy (lowest id wins ties, no jitter, no forced preemption) — the
   explorer in {!Explore} installs a policy to drive the engine through
   alternative interleavings without touching the default path. *)
type scheduling_policy = {
  choose_tie : vp array -> vp;
      (* candidates share the minimal clock, id-ascending; pick one *)
  lock_jitter : vp:int -> lock:string -> now:int -> int;
      (* extra cycles to stall before an acquire; 0 = undisturbed *)
  preempt_after : vp:int -> lock:string -> now:int -> bool;
      (* request a reschedule after this critical section? *)
}

let default_policy =
  { choose_tie = (fun candidates -> candidates.(0));
    lock_jitter = (fun ~vp:_ ~lock:_ ~now:_ -> 0);
    preempt_after = (fun ~vp:_ ~lock:_ ~now:_ -> false) }

type t = {
  vps : vp array;
  cost : Cost_model.t;
  mutable bus_factor_num : int;   (* fixed-point bus multiplier, /1024 *)
  mutable policy : scheduling_policy option;
  forced_preempts : bool array;   (* per-vp: policy asked for a reschedule *)
  mutable injector : Fault.t option;
  pending_crashes : bool array;   (* per-vp: an injected crash to deliver *)
}

let active_count m =
  Array.fold_left
    (fun n vp -> match vp.state with Running | Idle -> n + 1 | Parked_for_gc | Halted -> n)
    0 m.vps

(* Processors actually executing bytecodes; idle ones stay off the bus. *)
let running_count m =
  Array.fold_left
    (fun n vp -> match vp.state with Running -> n + 1 | Idle | Parked_for_gc | Halted -> n)
    0 m.vps

(* Recompute the bus multiplier; called when a processor changes state. *)
let refresh_bus m =
  let extra = max 0 (running_count m - 1) in
  let beta = m.cost.Cost_model.bus_beta in
  m.bus_factor_num <- 1024 + int_of_float (beta *. float_of_int extra *. 1024.)

let make ~processors cost =
  if processors < 1 then
    Fault.fatal ~vp:(-1) ~clock:0 "Machine.make: need at least 1 processor";
  let vps =
    Array.init processors (fun id ->
        { id; clock = 0; state = Running; steps = 0;
          spin_cycles = 0; gc_wait_cycles = 0; fault_cycles = 0 })
  in
  let m =
    { vps; cost; bus_factor_num = 1024; policy = None;
      forced_preempts = Array.make processors false;
      injector = None;
      pending_crashes = Array.make processors false }
  in
  refresh_bus m;
  m

let processors m = Array.length m.vps
let vp m i = m.vps.(i)

let set_policy m p = m.policy <- p
let policy m = m.policy

let flag_preempt m id =
  if id >= 0 && id < Array.length m.forced_preempts then
    m.forced_preempts.(id) <- true

let take_forced_preempt m id =
  if id >= 0 && id < Array.length m.forced_preempts
     && m.forced_preempts.(id)
  then begin
    m.forced_preempts.(id) <- false;
    true
  end
  else false

(* Install (or clear) the fault injector.  Orthogonal to the scheduling
   policy: a run may perturb schedules, inject faults, or both. *)
let set_injector m inj = m.injector <- inj
let injector m = m.injector

(* An injected crash is flagged here and delivered by the engine at the
   end of the victim's current step, mirroring [flag_preempt]: the
   injection sites (scheduler checks, lock sections) cannot unwind the
   interpreter themselves. *)
let flag_crash m id =
  if id >= 0 && id < Array.length m.pending_crashes then
    m.pending_crashes.(id) <- true

let crash_pending m id =
  id >= 0 && id < Array.length m.pending_crashes && m.pending_crashes.(id)

(* Consume the lowest-id pending crash, if any. *)
let take_crash m =
  let n = Array.length m.pending_crashes in
  let rec scan i =
    if i >= n then None
    else if m.pending_crashes.(i) then begin
      m.pending_crashes.(i) <- false;
      Some i
    end
    else scan (i + 1)
  in
  scan 0

let set_state m vp state =
  (* A halted processor is dead for good: resurrecting it would let a
     crashed vp's replicated state (method cache, free contexts) leak
     back into the run after failover abandoned it. *)
  if vp.state = Halted && state <> Halted then
    Fault.fatal ~vp:vp.id ~clock:vp.clock
      "Machine.set_state: vp %d is halted and cannot be resumed" vp.id;
  vp.state <- state;
  refresh_bus m

(* Charge [cycles] of CPU-local work to [vp]. *)
let charge _m vp cycles = vp.clock <- vp.clock + cycles

(* Charge [cycles] of memory-heavy work, inflated by bus contention. *)
let charge_mem m vp cycles =
  vp.clock <- vp.clock + (cycles * m.bus_factor_num) asr 10

(* The runnable processor with the smallest clock, if any.  Ties go to
   the lowest id; an installed policy is consulted only when there are at
   least two minimal candidates, so the default run never queries it. *)
let min_runnable m =
  let best = ref None in
  Array.iter
    (fun vp ->
      match vp.state with
      | Running | Idle ->
          (match !best with
           | Some b when b.clock <= vp.clock -> ()
           | _ -> best := Some vp)
      | Parked_for_gc | Halted -> ())
    m.vps;
  match m.policy, !best with
  | None, b | _, (None as b) -> b
  | Some p, Some b ->
      (* Count the minimal candidates first: the common case is a unique
         minimum, and materializing the tie array for it would put an
         allocation on every explorer engine event. *)
      let n = ref 0 in
      Array.iter
        (fun vp ->
          match vp.state with
          | (Running | Idle) when vp.clock = b.clock -> incr n
          | Running | Idle | Parked_for_gc | Halted -> ())
        m.vps;
      if !n < 2 then Some b
      else begin
        let ties = Array.make !n b in
        let i = ref 0 in
        Array.iter
          (fun vp ->
            match vp.state with
            | (Running | Idle) when vp.clock = b.clock ->
                ties.(!i) <- vp;
                incr i
            | Running | Idle | Parked_for_gc | Halted -> ())
          m.vps;
        Some (p.choose_tie ties)
      end

let max_clock m =
  Array.fold_left (fun t vp -> max t vp.clock) 0 m.vps

let all_parked_or_halted m =
  Array.for_all
    (fun vp -> match vp.state with Parked_for_gc | Halted -> true | Running | Idle -> false)
    m.vps

(* Advance every live processor's clock to at least [t]; used after a
   stop-the-world pause so nobody resumes in the past. *)
let synchronize_clocks m t =
  Array.iter
    (fun vp ->
      match vp.state with
      | Halted -> ()
      | Running | Idle | Parked_for_gc ->
          if vp.clock < t then begin
            vp.gc_wait_cycles <- vp.gc_wait_cycles + (t - vp.clock);
            vp.clock <- t
          end)
    m.vps
