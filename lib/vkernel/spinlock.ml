(* The V System spin-lock, as a deterministic contention model.

   The real lock is an interlocked test-and-set; when the test fails the
   locking code invokes the kernel's [Delay] operation with a minimal
   timeout and retries (paper, section 3.1).  Because the engine steps
   processors in nondecreasing virtual-time order, and because every
   critical section in MS is short enough to complete within one
   interpreter step, a lock reduces to a timeline: [free_at] is the moment
   the current holder releases.  An acquire at time [now]:

   - succeeds immediately if [now >= free_at], costing one test-and-set;
   - otherwise retries every [delay_quantum] cycles until the lock is free,
     so the operation starts at the first retry instant at or after
     [free_at].

   A disabled lock (baseline Berkeley Smalltalk, which is single-threaded)
   charges no synchronization: the code path still does the operation's
   work, but pays no test-and-set and never spins. *)

type t = {
  name : string;
  enabled : bool;
  delay_quantum : int;
  acquire_cost : int;
  mutable free_at : int;
  mutable san : Sanitizer.t option;
  mutable machine : Machine.t option;
  (* Report the op windows of a *disabled* lock to the sanitizer.  Off by
     default: legitimately lock-free configurations (baseline BS on one
     processor, per-processor eden allocation) issue overlapping windows
     on purpose.  The engine turns it on for configurations that disabled
     locking while keeping several processors — exactly the broken setup
     the sanitizer should expose as unserialized timelines. *)
  mutable report_unlocked : bool;
  (* holder bookkeeping, for the watchdog's deadlock report *)
  mutable holder : int;           (* vp of the most recent acquirer, -1 early *)
  mutable held_since : int;       (* when that acquire started *)
  (* the spin watchdog: a contended acquire that would wait more than
     [watchdog_bound] cycles raises {!Fault.Deadlock_suspected} instead
     of spinning forever; 0 disables (the default, and the paper's
     behaviour).  [backoff_after] retries at [delay_quantum] before the
     retry interval starts doubling; 0 keeps the fixed-interval spin. *)
  mutable watchdog_bound : int;
  mutable backoff_after : int;
  (* injected-fault bookkeeping: [fault_base] is the release time the
     current hold would have had without the injected delay, [fault_until]
     the extended release ([-1] when no fault is outstanding), so waiter
     spin can be attributed to the fault rather than to contention *)
  mutable fault_base : int;
  mutable fault_until : int;
  mutable last_fault_delay : int; (* holder's own injected delay, for
                                     [locked_op_on]'s spin attribution *)
  (* statistics *)
  mutable acquisitions : int;
  mutable contended : int;
  mutable spin_cycles : int;        (* contention spin only *)
  mutable fault_spin_cycles : int;  (* waiter spin caused by injected faults *)
  mutable backoff_cycles : int;     (* extra wait from exponential backoff *)
  mutable fault_stall_cycles : int; (* injected holder-stall cycles *)
}

let make ~enabled ~cost name =
  { name;
    enabled;
    delay_quantum = cost.Cost_model.delay_quantum;
    acquire_cost = cost.Cost_model.lock_acquire;
    free_at = 0;
    san = None;
    machine = None;
    report_unlocked = false;
    holder = -1;
    held_since = 0;
    watchdog_bound = 0;
    backoff_after = 0;
    fault_base = 0;
    fault_until = -1;
    last_fault_delay = 0;
    acquisitions = 0;
    contended = 0;
    spin_cycles = 0;
    fault_spin_cycles = 0;
    backoff_cycles = 0;
    fault_stall_cycles = 0 }

let name t = t.name
let enabled t = t.enabled
let acquisitions t = t.acquisitions
let contended t = t.contended
let spin_cycles t = t.spin_cycles
let fault_spin_cycles t = t.fault_spin_cycles
let backoff_cycles t = t.backoff_cycles
let fault_stall_cycles t = t.fault_stall_cycles
let holder t = t.holder

let set_watchdog t ~bound ~backoff_after =
  t.watchdog_bound <- max 0 bound;
  t.backoff_after <- max 0 backoff_after

let injector t =
  match t.machine with None -> None | Some m -> Machine.injector m

let attach t san =
  t.san <- Some san;
  if t.enabled then Sanitizer.register_lock san t.name

let sanitizer t = t.san

let attach_machine t m = t.machine <- Some m

let set_report_unlocked t flag = t.report_unlocked <- flag

(* The policy's lock-acquisition preemption point: stall the acquiring
   processor by the requested jitter before it reaches for the lock.
   Contended acquires round their start up to the holder's release, so
   jitter can never rewind a lock's timeline — it only changes who gets
   there first.  Engine-side callers (vp = -1) are never perturbed: they
   are simulation bookkeeping, not processor decisions. *)
let jittered t ~vp ~now =
  match t.machine with
  | Some m when vp >= 0 ->
      (match Machine.policy m with
       | Some p ->
           now + max 0 (p.Machine.lock_jitter ~vp ~lock:t.name ~now)
       | None -> now)
  | _ -> now

(* The policy's post-section preemption point: after a charged critical
   section the policy may ask the processor to reschedule at its next
   check.  The request is parked on the machine; the engine drains it
   because this module cannot see the scheduler. *)
let maybe_preempt t ~vp ~now =
  match t.machine with
  | Some m when vp >= 0 ->
      (match Machine.policy m with
       | Some p ->
           if p.Machine.preempt_after ~vp ~lock:t.name ~now then
             Machine.flag_preempt m vp
       | None -> ())
  | _ -> ()

(* A disabled lock charges nothing, but when [report_unlocked] is on the
   op's window still reaches the sanitizer, so concurrent windows from
   different processors surface as unserialized timelines. *)
let unlocked_op t ~vp ~now ~op_cycles =
  let now = jittered t ~vp ~now in
  (match t.san with
   | Some san when t.report_unlocked && vp >= 0 ->
       Sanitizer.on_lock_op san ~lock:t.name ~vp ~now ~start:now
         ~finish:(now + op_cycles) ~contended:false
   | _ -> ());
  now + op_cycles

(* A stats reset must not touch [free_at]: the lock's virtual timeline is
   simulation state, not a statistic, and rewinding it would let a later
   acquire start before an earlier critical section finished. *)
let reset_stats t =
  t.acquisitions <- 0;
  t.contended <- 0;
  t.spin_cycles <- 0;
  t.fault_spin_cycles <- 0;
  t.backoff_cycles <- 0;
  t.fault_stall_cycles <- 0

(* Acquire at [now]: returns [(start, contended)] and advances [free_at] to
   [start + acquire_cost + op_cycles].  Shared by [locked_op] and
   [critical].

   A contended acquire first consults the watchdog: a wait beyond
   [watchdog_bound] means the holder is plausibly dead (an injected
   holder crash parks [free_at] at {!Fault.never}), and the acquire
   raises a structured {!Fault.Deadlock_suspected} naming the holder
   instead of spinning forever.  Then the spin is split three ways for
   the statistics: cycles the waiter would have spun against the
   *unfaulted* release are contention ([spin_cycles]); cycles spent
   against an injected extension of the hold are fault spin
   ([fault_spin_cycles]); and any extra delay from coarsened retry
   probes under exponential backoff is [backoff_cycles].  With no fault
   outstanding and no backoff configured the arithmetic reduces exactly
   to the original fixed-interval spin. *)
let acquire t ~vp ~now ~op_cycles =
  t.acquisitions <- t.acquisitions + 1;
  let start, was_contended =
    if now >= t.free_at then (now, false)
    else begin
      t.contended <- t.contended + 1;
      let wait = t.free_at - now in
      if t.watchdog_bound > 0 && wait > t.watchdog_bound then begin
        (match t.san with
         | Some san ->
             Sanitizer.fault_event san ~vp ~now ~resource:t.name
               (Printf.sprintf "watchdog: waited %d > bound %d, holder vp %d"
                  wait t.watchdog_bound t.holder)
         | None -> ());
        raise
          (Fault.Deadlock_suspected
             { Fault.lock = t.name; holder = t.holder; waiter = vp;
               clock = now; held_since = t.held_since; waited = wait })
      end;
      let q = t.delay_quantum in
      let retries = (wait + q - 1) / q in
      let natural_spun = retries * q in
      let spun =
        if t.backoff_after > 0 && retries > t.backoff_after then begin
          (* fixed-interval probes up to the threshold, then doubling;
             every probe instant stays a multiple of [q] past [now], so
             the start never precedes the fixed-interval start *)
          let elapsed = ref (t.backoff_after * q) in
          let interval = ref (2 * q) in
          while now + !elapsed < t.free_at do
            elapsed := !elapsed + !interval;
            interval := !interval * 2
          done;
          !elapsed
        end
        else natural_spun
      in
      let fault_part =
        if t.fault_until >= t.free_at then
          max 0 (min wait (t.free_at - max now t.fault_base))
        else 0
      in
      t.spin_cycles <- t.spin_cycles + (natural_spun - fault_part);
      t.fault_spin_cycles <- t.fault_spin_cycles + fault_part;
      t.backoff_cycles <- t.backoff_cycles + (spun - natural_spun);
      (now + spun, true)
    end
  in
  let finish = start + t.acquire_cost + op_cycles in
  t.free_at <- finish;
  t.holder <- vp;
  t.held_since <- start;
  (start, finish, was_contended)

(* The holder-fault injection point: having just acquired the lock, the
   holder may be struck by an injected stall (it keeps the lock
   [n] extra cycles, delaying itself and every waiter) or an injected
   crash (it dies inside the section: the lock's release is parked at
   {!Fault.never} and the machine is flagged to reap the processor at
   the end of its current step — the section's work itself completes,
   so injected crashes never leave half-mutated shared state; what they
   leave is an unreleased lock, which is exactly what the watchdog must
   catch).  Returns the holder's possibly-extended completion time. *)
let inject_holder_fault t ~vp ~finish =
  match t.machine with
  | Some m when vp >= 0 && not (Machine.crash_pending m vp) -> (
      match Machine.injector m with
      | None -> finish
      | Some inj -> (
          match Fault.at inj Fault.Lock_acquire with
          | None -> finish
          | Some (Fault.Holder_stall n) ->
              Fault.applied inj ~vp ~now:finish ~resource:t.name
                (Fault.Holder_stall n);
              (match t.san with
               | Some san ->
                   Sanitizer.fault_event san ~vp ~now:finish ~resource:t.name
                     (Printf.sprintf "holder stall %d" n)
               | None -> ());
              t.fault_base <- t.free_at;
              t.free_at <- t.free_at + n;
              t.fault_until <- t.free_at;
              t.fault_stall_cycles <- t.fault_stall_cycles + n;
              t.last_fault_delay <- n;
              let mvp = Machine.vp m vp in
              mvp.Machine.fault_cycles <- mvp.Machine.fault_cycles + n;
              finish + n
          | Some Fault.Holder_crash ->
              Fault.applied inj ~vp ~now:finish ~resource:t.name
                Fault.Holder_crash;
              (match t.san with
               | Some san ->
                   Sanitizer.fault_event san ~vp ~now:finish ~resource:t.name
                     "holder crash: lock never released"
               | None -> ());
              t.fault_base <- t.free_at;
              t.free_at <- Fault.never;
              t.fault_until <- t.free_at;
              Machine.flag_crash m vp;
              finish
          | Some _ -> finish))
  | _ -> finish

(* Perform a critical section of [op_cycles] starting no earlier than [now].
   Returns the completion time. *)
let locked_op ?(vp = -1) t ~now ~op_cycles =
  if not t.enabled then unlocked_op t ~vp ~now ~op_cycles
  else begin
    let now = jittered t ~vp ~now in
    let start, finish, was_contended = acquire t ~vp ~now ~op_cycles in
    let finish = inject_holder_fault t ~vp ~finish in
    (match t.san with
     | Some san ->
         Sanitizer.on_lock_op san ~lock:t.name ~vp ~now ~start ~finish
           ~contended:was_contended
     | None -> ());
    maybe_preempt t ~vp ~now:finish;
    finish
  end

(* A bracketed critical section: acquire, run [f] inside the section (so
   guarded-resource mutations performed by [f] are seen by the sanitizer as
   covered), release.  Returns the section's completion time and [f]'s
   result.  The bracket is closed even if [f] raises — the timeline has
   already advanced, matching [locked_op] (lock work was charged before the
   failure propagates). *)
let critical ?(vp = -1) t ~now ~op_cycles f =
  if not t.enabled then (unlocked_op t ~vp ~now ~op_cycles, f ())
  else begin
    let now = jittered t ~vp ~now in
    let start, finish, was_contended = acquire t ~vp ~now ~op_cycles in
    let finish = inject_holder_fault t ~vp ~finish in
    let finish_section result =
      maybe_preempt t ~vp ~now:finish;
      (finish, result)
    in
    match t.san with
    | None -> finish_section (f ())
    | Some san ->
        Sanitizer.section_enter san ~lock:t.name ~vp ~now ~start ~finish
          ~contended:was_contended;
        let result =
          try f ()
          with e ->
            Sanitizer.section_exit san ~lock:t.name ~vp ~now:finish;
            raise e
        in
        Sanitizer.section_exit san ~lock:t.name ~vp ~now:finish;
        finish_section result
  end

(* Convenience: run the critical section on a processor, updating its clock
   and spin statistics. *)
let locked_op_on t (vp : Machine.vp) ~op_cycles =
  let now = vp.Machine.clock in
  t.last_fault_delay <- 0;
  let finish = locked_op ~vp:vp.Machine.id t ~now ~op_cycles in
  (* an injected holder stall inside this op is fault loss, not spin *)
  let fault = t.last_fault_delay in
  t.last_fault_delay <- 0;
  let spin =
    finish - now - fault - op_cycles
    - (if t.enabled then t.acquire_cost else 0)
  in
  if spin > 0 then vp.Machine.spin_cycles <- vp.Machine.spin_cycles + spin;
  vp.Machine.clock <- finish
