(* The V System spin-lock, as a deterministic contention model.

   The real lock is an interlocked test-and-set; when the test fails the
   locking code invokes the kernel's [Delay] operation with a minimal
   timeout and retries (paper, section 3.1).  Because the engine steps
   processors in nondecreasing virtual-time order, and because every
   critical section in MS is short enough to complete within one
   interpreter step, a lock reduces to a timeline: [free_at] is the moment
   the current holder releases.  An acquire at time [now]:

   - succeeds immediately if [now >= free_at], costing one test-and-set;
   - otherwise retries every [delay_quantum] cycles until the lock is free,
     so the operation starts at the first retry instant at or after
     [free_at].

   A disabled lock (baseline Berkeley Smalltalk, which is single-threaded)
   charges no synchronization: the code path still does the operation's
   work, but pays no test-and-set and never spins. *)

type t = {
  name : string;
  enabled : bool;
  delay_quantum : int;
  acquire_cost : int;
  mutable free_at : int;
  mutable san : Sanitizer.t option;
  mutable machine : Machine.t option;
  (* Report the op windows of a *disabled* lock to the sanitizer.  Off by
     default: legitimately lock-free configurations (baseline BS on one
     processor, per-processor eden allocation) issue overlapping windows
     on purpose.  The engine turns it on for configurations that disabled
     locking while keeping several processors — exactly the broken setup
     the sanitizer should expose as unserialized timelines. *)
  mutable report_unlocked : bool;
  (* statistics *)
  mutable acquisitions : int;
  mutable contended : int;
  mutable spin_cycles : int;
}

let make ~enabled ~cost name =
  { name;
    enabled;
    delay_quantum = cost.Cost_model.delay_quantum;
    acquire_cost = cost.Cost_model.lock_acquire;
    free_at = 0;
    san = None;
    machine = None;
    report_unlocked = false;
    acquisitions = 0;
    contended = 0;
    spin_cycles = 0 }

let name t = t.name
let enabled t = t.enabled
let acquisitions t = t.acquisitions
let contended t = t.contended
let spin_cycles t = t.spin_cycles

let attach t san =
  t.san <- Some san;
  if t.enabled then Sanitizer.register_lock san t.name

let sanitizer t = t.san

let attach_machine t m = t.machine <- Some m

let set_report_unlocked t flag = t.report_unlocked <- flag

(* The policy's lock-acquisition preemption point: stall the acquiring
   processor by the requested jitter before it reaches for the lock.
   Contended acquires round their start up to the holder's release, so
   jitter can never rewind a lock's timeline — it only changes who gets
   there first.  Engine-side callers (vp = -1) are never perturbed: they
   are simulation bookkeeping, not processor decisions. *)
let jittered t ~vp ~now =
  match t.machine with
  | Some m when vp >= 0 ->
      (match Machine.policy m with
       | Some p ->
           now + max 0 (p.Machine.lock_jitter ~vp ~lock:t.name ~now)
       | None -> now)
  | _ -> now

(* The policy's post-section preemption point: after a charged critical
   section the policy may ask the processor to reschedule at its next
   check.  The request is parked on the machine; the engine drains it
   because this module cannot see the scheduler. *)
let maybe_preempt t ~vp ~now =
  match t.machine with
  | Some m when vp >= 0 ->
      (match Machine.policy m with
       | Some p ->
           if p.Machine.preempt_after ~vp ~lock:t.name ~now then
             Machine.flag_preempt m vp
       | None -> ())
  | _ -> ()

(* A disabled lock charges nothing, but when [report_unlocked] is on the
   op's window still reaches the sanitizer, so concurrent windows from
   different processors surface as unserialized timelines. *)
let unlocked_op t ~vp ~now ~op_cycles =
  let now = jittered t ~vp ~now in
  (match t.san with
   | Some san when t.report_unlocked && vp >= 0 ->
       Sanitizer.on_lock_op san ~lock:t.name ~vp ~now ~start:now
         ~finish:(now + op_cycles) ~contended:false
   | _ -> ());
  now + op_cycles

(* A stats reset must not touch [free_at]: the lock's virtual timeline is
   simulation state, not a statistic, and rewinding it would let a later
   acquire start before an earlier critical section finished. *)
let reset_stats t =
  t.acquisitions <- 0;
  t.contended <- 0;
  t.spin_cycles <- 0

(* Acquire at [now]: returns [(start, contended)] and advances [free_at] to
   [start + acquire_cost + op_cycles].  Shared by [locked_op] and
   [critical]. *)
let acquire t ~now ~op_cycles =
  t.acquisitions <- t.acquisitions + 1;
  let start, was_contended =
    if now >= t.free_at then (now, false)
    else begin
      t.contended <- t.contended + 1;
      let wait = t.free_at - now in
      let q = t.delay_quantum in
      let retries = (wait + q - 1) / q in
      let start = now + (retries * q) in
      t.spin_cycles <- t.spin_cycles + (start - now);
      (start, true)
    end
  in
  let finish = start + t.acquire_cost + op_cycles in
  t.free_at <- finish;
  (start, finish, was_contended)

(* Perform a critical section of [op_cycles] starting no earlier than [now].
   Returns the completion time. *)
let locked_op ?(vp = -1) t ~now ~op_cycles =
  if not t.enabled then unlocked_op t ~vp ~now ~op_cycles
  else begin
    let now = jittered t ~vp ~now in
    let start, finish, was_contended = acquire t ~now ~op_cycles in
    (match t.san with
     | Some san ->
         Sanitizer.on_lock_op san ~lock:t.name ~vp ~now ~start ~finish
           ~contended:was_contended
     | None -> ());
    maybe_preempt t ~vp ~now:finish;
    finish
  end

(* A bracketed critical section: acquire, run [f] inside the section (so
   guarded-resource mutations performed by [f] are seen by the sanitizer as
   covered), release.  Returns the section's completion time and [f]'s
   result.  The bracket is closed even if [f] raises — the timeline has
   already advanced, matching [locked_op] (lock work was charged before the
   failure propagates). *)
let critical ?(vp = -1) t ~now ~op_cycles f =
  if not t.enabled then (unlocked_op t ~vp ~now ~op_cycles, f ())
  else begin
    let now = jittered t ~vp ~now in
    let start, finish, was_contended = acquire t ~now ~op_cycles in
    let finish_section result =
      maybe_preempt t ~vp ~now:finish;
      (finish, result)
    in
    match t.san with
    | None -> finish_section (f ())
    | Some san ->
        Sanitizer.section_enter san ~lock:t.name ~vp ~now ~start ~finish
          ~contended:was_contended;
        let result =
          try f ()
          with e ->
            Sanitizer.section_exit san ~lock:t.name ~vp ~now:finish;
            raise e
        in
        Sanitizer.section_exit san ~lock:t.name ~vp ~now:finish;
        finish_section result
  end

(* Convenience: run the critical section on a processor, updating its clock
   and spin statistics. *)
let locked_op_on t (vp : Machine.vp) ~op_cycles =
  let now = vp.Machine.clock in
  let finish = locked_op ~vp:vp.Machine.id t ~now ~op_cycles in
  let spin = finish - now - op_cycles - (if t.enabled then t.acquire_cost else 0) in
  if spin > 0 then vp.Machine.spin_cycles <- vp.Machine.spin_cycles + spin;
  vp.Machine.clock <- finish
