(* A stable binary min-heap keyed by an integer deadline, shared by the
   event-calendar engine: the timer list (fire cycle -> semaphore/hook)
   and the pending-heap of runnable VPs (clock -> vp id) both live in
   one of these.

   Stability matters for the timers: the old representation was a
   merge-sorted list, so two timers with the same deadline fired in
   insertion order, and semaphore wait-queues built on that order.  Each
   entry therefore carries a monotonically increasing sequence number
   and ties on [key] break toward the older entry.

   The VP pending-heap uses the heap lazily: clocks only ever increase,
   so a stale entry (key older than the VP's current clock) is detected
   at pop time and reinserted with the fresh key instead of being
   updated in place.  [add] is O(log n), [pop] amortised O(log n). *)

type 'a entry = { key : int; seq : int; v : 'a }

type 'a t = {
  mutable a : 'a entry array;   (* heap storage; a.(0) is the minimum *)
  mutable len : int;
  mutable next_seq : int;
}

let create () = { a = [||]; len = 0; next_seq = 0 }

let length t = t.len
let is_empty t = t.len = 0

let clear t =
  t.a <- [||];
  t.len <- 0

(* (key, seq) lexicographic order: the heap invariant compares both. *)
let before x y = x.key < y.key || (x.key = y.key && x.seq < y.seq)

let swap t i j =
  let tmp = t.a.(i) in
  t.a.(i) <- t.a.(j);
  t.a.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.a.(i) t.a.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.a.(l) t.a.(!smallest) then smallest := l;
  if r < t.len && before t.a.(r) t.a.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let cap = max 8 (2 * Array.length t.a) in
  let a = Array.make cap t.a.(0) in
  Array.blit t.a 0 a 0 t.len;
  t.a <- a

let add t ~key v =
  let e = { key; seq = t.next_seq; v } in
  t.next_seq <- t.next_seq + 1;
  if t.len >= Array.length t.a then
    if t.len = 0 then t.a <- Array.make 8 e else grow t;
  t.a.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let min_key t = if t.len = 0 then None else Some t.a.(0).key

let peek t = if t.len = 0 then None else Some (t.a.(0).key, t.a.(0).v)

let pop t =
  if t.len = 0 then None
  else begin
    let e = t.a.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.a.(0) <- t.a.(t.len);
      sift_down t 0
    end;
    Some (e.key, e.v)
  end

(* Nondestructive sorted view — debug assertions and tests only. *)
let to_sorted_list t =
  let xs = ref [] in
  for i = 0 to t.len - 1 do
    xs := t.a.(i) :: !xs
  done;
  List.map
    (fun e -> (e.key, e.v))
    (List.sort
       (fun x y -> if before x y then -1 else if before y x then 1 else 0)
       !xs)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.a.(i).key t.a.(i).v
  done
