(** A stable binary min-heap keyed by an integer deadline.

    Backs the event-calendar engine: both the timer queue (fire cycle ->
    semaphore cell or engine hook) and the pending-heap of runnable VPs
    (clock -> vp id).  Entries with equal keys come out in insertion
    order, preserving the FIFO firing the old merge-sorted timer list
    gave semaphore wait-queues. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit

(** Insert with the given key; O(log n). *)
val add : 'a t -> key:int -> 'a -> unit

(** Smallest key currently queued, if any. *)
val min_key : 'a t -> int option

(** The minimum entry without removing it. *)
val peek : 'a t -> (int * 'a) option

(** Remove and return the minimum entry. *)
val pop : 'a t -> (int * 'a) option

(** Sorted (key, value) view without disturbing the heap — debug
    assertions and tests. *)
val to_sorted_list : 'a t -> (int * 'a) list

(** Visit every entry in unspecified order. *)
val iter : 'a t -> (int -> 'a -> unit) -> unit
