(** Simulated I/O devices.

    The paper serializes two I/O structures: the input event queue shared
    by the interpreters and the display controller's output queue, both
    behind spin-locks.  The display controller drains its bounded queue at
    a fixed service rate; producers wait when it is full — how the "busy"
    Processes contend for the display. *)

(** {2 The display controller} *)

type display

val make_display : enabled_locks:bool -> cost:Cost_model.t -> display

(** Enqueue one draw command at [now]; returns the producer's completion
    time (it waits for queue space and the lock, not the paint). *)
val display_enqueue : ?vp:int -> display -> now:int -> int

val display_commands : display -> int

(** Total cycles producers spent waiting for queue space. *)
val display_producer_wait : display -> int

(** Injected controller wedge cycles (device-timeout faults), accounted
    separately from {!display_producer_wait}. *)
val display_fault_stall_cycles : display -> int

val display_lock : display -> Spinlock.t

(** {2 The input event queue} *)

type input_queue

val make_input_queue : enabled_locks:bool -> cost:Cost_model.t -> input_queue

(** Schedule an event to become visible at [time]. *)
val inject : input_queue -> time:int -> payload:int -> unit

(** Poll under the queue's lock at [now]: completion time and the event,
    if one is visible. *)
val poll : ?vp:int -> input_queue -> now:int -> op_cycles:int -> int * int option

(** Events injected but not yet delivered.  O(1): a maintained count,
    cross-checked against the queue on the sanitizer's debug path. *)
val input_pending : input_queue -> int

(** When the earliest still-queued event becomes visible, if any — the
    calendar engine's park deadline for idle processors. *)
val next_input_time : input_queue -> int option

val input_polls : input_queue -> int

val input_delivered : input_queue -> int

val input_lock : input_queue -> Spinlock.t
