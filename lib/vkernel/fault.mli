(** Seeded fault injection for the simulated multiprocessor.

    Faults — processor crashes, stalls, lock-holder failures, device
    timeouts, scavenge-worker deaths — are sampled at the same
    instrumentation points the schedule explorer drives, recorded as a
    sparse replayable plan, and shrunk with the same delta debugging
    {!Explore} uses for decision traces.  Fault queries are counted
    independently of policy queries, so a fault plan composes with an
    {!Explore} schedule without renumbering. *)

(** The splitmix64-style PRNG shared with {!Explore} (which aliases this
    module): seeded runs must reproduce forever, so the stream must not
    depend on [Stdlib.Random]. *)
module Rng : sig
  type t

  val make : int -> t
  val next : t -> int

  (** [below r n] is uniform in [\[0, n)]; 0 when [n <= 1]. *)
  val below : t -> int -> int

  (** [chance r permil] is true with probability [permil]/1000. *)
  val chance : t -> int -> bool
end

(** A release time no simulated clock ever reaches: the timeline
    encoding of "held by a dead processor". *)
val never : int

type fault =
  | Vp_crash  (** processor fails at its next scheduler check *)
  | Vp_stall of int  (** processor loses N cycles *)
  | Holder_stall of int  (** lock holder keeps the lock N extra cycles *)
  | Holder_crash  (** lock holder dies inside the critical section *)
  | Device_timeout of int  (** device wedges for N cycles *)
  | Worker_crash of int  (** scavenge worker dies at a barrier *)
  | Replica_crash of int
      (** whole replica dies at a log-entry boundary (E19); the index is
          resolved modulo the live replicas by the applier *)

type step = { index : int; fault : fault }

type plan = step list

(** Which instrumentation point is asking; each fault kind belongs to
    exactly one point.  [Log_entry] is queried once per replica at every
    wave boundary of the E19 command log. *)
type point = Sched_check | Lock_acquire | Device_op | Gc_barrier | Log_entry

val matches_point : point -> fault -> bool

type params = {
  crash_permil : int;
  stall_permil : int;
  stall_bound : int;
  holder_stall_permil : int;
  holder_stall_bound : int;
  holder_crash_permil : int;
  device_permil : int;
  device_bound : int;
  worker_crash_permil : int;
  replica_crash_permil : int;  (** per (replica, wave-boundary) query (E19) *)
  max_faults : int;  (** cap on honoured faults per run *)
}

(** All rates zero — an injector that never fires. *)
val no_faults : params

(** Which family of faults a campaign samples. *)
type campaign = Crash | Stall | Lock | Device | Gc | Mixed | Replica

val campaign_name : campaign -> string
val campaign_of_name : string -> campaign option
val params_of_campaign : campaign -> params
val default_params : params

(** A fault injector: either sampling from a seed or replaying a plan. *)
type t

val seeded : ?params:params -> ?trace:Trace.t -> seed:int -> unit -> t

val replay : ?trace:Trace.t -> plan -> t

(** Answer one injection query for an instrumentation point.  Returns a
    {e candidate} fault; the caller applies it only if its local guards
    allow, and must then call {!applied} so the plan records it.
    Declined candidates never enter the plan. *)
val at : t -> point -> fault option

(** Record a fault the caller actually honoured (at the index of the
    query that produced it), bump its counters, and trace it. *)
val applied : t -> vp:int -> now:int -> resource:string -> fault -> unit

(** The honoured faults, in query order. *)
val injected : t -> plan

val injected_count : t -> int
val queries : t -> int
val crashes : t -> int
val stalls : t -> int
val holder_stalls : t -> int
val holder_crashes : t -> int
val device_timeouts : t -> int
val worker_crashes : t -> int
val replica_crashes : t -> int

val describe : fault -> string

(** {1 Structured failure reports} *)

(** The spin watchdog's verdict: who held the lock, who gave up waiting,
    and when. *)
type deadlock_report = {
  lock : string;
  holder : int;  (** vp id, or -1 for an engine-side section *)
  waiter : int;
  clock : int;  (** the waiter's clock when it gave up *)
  held_since : int;
  waited : int;
}

exception Deadlock_suspected of deadlock_report

val describe_deadlock : deadlock_report -> string
val pp_deadlock : Format.formatter -> deadlock_report -> unit

(** A structured fatal error carrying the processor and clock, replacing
    bare [failwith]/[assert false] exits in the engine. *)
type fatal_info = { what : string; fatal_vp : int; fatal_clock : int }

exception Fatal of fatal_info

(** [fatal ~vp ~clock fmt ...] raises {!Fatal} with a formatted cause. *)
val fatal : vp:int -> clock:int -> ('a, unit, string, 'b) format4 -> 'a

val describe_fatal : fatal_info -> string

(** {1 Plan utilities} *)

val fingerprint : plan -> int

(** Delta-debug a failing plan to a minimal one; [run] replays a
    candidate and reports whether it still fails.  Returns the shrunk
    plan and the number of replays spent. *)
val shrink : run:(plan -> bool) -> ?budget:int -> plan -> plan * int

val pp : Format.formatter -> plan -> unit

(** Write/read a fault plan file ("# mst fault plan v1"). *)
val save : string -> plan -> unit

val load : string -> plan

(** {!load} for replay: additionally raises [Failure] when the file holds
    no faults at all — an empty plan would silently run an unperturbed
    schedule. *)
val load_replay : string -> plan
