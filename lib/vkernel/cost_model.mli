(** Cycle-cost model for the simulated Firefly.

    All costs are expressed in microVAX instructions, equated with cycles
    of a 1-MIPS processor, so simulated seconds are
    [cycles / cycles_per_second].  The {!firefly} preset is calibrated so
    the macro benchmarks land in the range of the paper's Table 2; the
    {!uniform} preset makes every cost 1 for unit tests. *)

type t = {
  dispatch : int;  (** fetch/decode of one bytecode *)
  push : int;  (** push/store/pop data movement *)
  jump : int;  (** taken or untaken branch *)
  send_base : int;  (** argument shuffling and activation bookkeeping *)
  cache_hit : int;  (** method-cache probe that hits *)
  cache_probe : int;  (** dictionary probing on a cache miss *)
  replicated_cache_penalty : int;
      (** extra indirection of per-processor caches (paper section 3.2) *)
  ctx_fresh : int;  (** allocating a context from the heap *)
  ctx_recycled : int;  (** reusing a context from the free list *)
  ctx_init_per_word : int;
  return_cost : int;
  prim_arith : int;
  prim_at : int;
  prim_misc : int;
  prim_compile_per_char : int;  (** compiler primitive, per source character *)
  alloc_base : int;  (** bump-pointer allocation *)
  alloc_per_word : int;
  store_check : int;  (** old->new store check *)
  remember_insert : int;  (** entry-table insertion *)
  scavenge_base : int;  (** fixed cost of a scavenge (incl. rendezvous) *)
  scavenge_per_word : int;
  scavenge_per_remembered : int;
  major_slice_base : int;
      (** fixed cost of one incremental mark-sweep slice (E18) *)
  major_mark_per_object : int;  (** grey-stack pop + header test *)
  major_mark_per_word : int;  (** scanning one field during marking *)
  major_sweep_per_word : int;  (** sweeping one old-space word *)
  lock_acquire : int;  (** uncontended interlocked test-and-set *)
  delay_quantum : int;  (** the kernel Delay timeout used when a spin fails *)
  sched_op : int;  (** one ready-queue operation under the scheduler lock *)
  event_poll_interval : int;  (** bytecodes between input-queue polls *)
  event_poll_cost : int;
  sched_check_interval : int;  (** bytecodes between scheduler checks *)
  sched_check_cost : int;
  display_cmd : int;  (** display-controller service time per command *)
  display_capacity : int;  (** output-queue capacity *)
  bus_beta : float;
      (** per-extra-running-processor slowdown on memory operations *)
  ms_static_penalty : int;
      (** extra instructions on the multiprocessor interpreter's common
          paths, even uncontended: the static cost of the architectural
          changes *)
  cycles_per_second : int;  (** clock rate; converts cycles to seconds *)
}

(** The calibrated ~1-MIPS microVAX model. *)
val firefly : t

(** Every cost 1 (or 0), no bus effects: unit-test determinism without
    calibration noise. *)
val uniform : t

(** [seconds model cycles] converts a cycle count to simulated seconds. *)
val seconds : t -> int -> float
