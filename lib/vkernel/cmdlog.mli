(** The replicated image cluster's shared command log (E19).

    An append-only, totally-ordered log of image-server requests, each
    keyed by its issuing session and the state shard it touches.  Two
    entries conflict when they share either key; everything else
    commutes.  {!schedule} turns the log into conflict-free waves — the
    dependency-aware dispatch of *Early Scheduling in Parallel State
    Machine Replication* — which every replica computes identically, so
    wave boundaries are the cluster's common grid for fingerprints,
    checkpoints and crash delivery. *)

type entry = {
  lsn : int;  (** log sequence number, dense from 0 *)
  session : int;
  shard : int;
  kind : int;  (** which request handler runs *)
}

type t

(** A log file that cannot be used: empty, truncated, wrong version, or
    unparseable.  The CLI reports it and exits 2. *)
exception Corrupt of { path : string; what : string }

val describe_corrupt : string * string -> string

val create : unit -> t

val length : t -> int

val get : t -> int -> entry

(** Append one entry; the lsn is assigned densely. *)
val append : t -> session:int -> shard:int -> kind:int -> entry

val to_list : t -> entry list

(** Rebuild a log from entries whose lsns are already dense from 0. *)
val of_list : entry list -> t

val iter : t -> (entry -> unit) -> unit

(** Same session or same shard. *)
val conflicts : entry -> entry -> bool

(** Partition entries (in log order) into waves of pairwise-independent
    entries, at most [slots] per wave; every entry lands strictly after
    the wave of each earlier conflicting entry. *)
val schedule : ?slots:int -> entry list -> entry list list

(** A deterministic synthetic request workload from a seed. *)
val generate : seed:int -> requests:int -> sessions:int -> shards:int -> t

(** Write/read the durable representation ("# mst command log v1" plus
    an entry-count trailer).  [load] raises {!Corrupt} on empty,
    truncated, wrong-version or unparseable files; {!load_nonempty}
    additionally rejects a log with zero entries (the PR 6
    vacuous-success rule). *)
val save : string -> t -> unit

val load : string -> t

val load_nonempty : string -> t
