(* Simulated I/O devices.

   The paper serializes two I/O structures: the input event queue shared by
   the interpreters, and the output queue of the display controller.  Both
   are guarded by spin-locks; access is "for very brief intervals", but with
   several busy Processes the display becomes a point of contention.

   The display controller drains its queue at a fixed service rate.  When
   the queue is full, an enqueueing interpreter must wait for space — this
   is how the paper's "busy" Processes, which contend for the display,
   interfere with the benchmark Process. *)

type display = {
  lock : Spinlock.t;
  service_cycles : int;       (* time to paint one command *)
  capacity : int;
  mutable free_at : int;      (* when the controller finishes its backlog *)
  mutable commands : int;     (* total commands ever enqueued *)
  mutable producer_wait : int;(* cycles producers spent waiting for space *)
  mutable fault_stall_cycles : int; (* injected controller wedge time *)
}

let make_display ~enabled_locks ~cost =
  { lock = Spinlock.make ~enabled:enabled_locks ~cost "display output queue";
    service_cycles = cost.Cost_model.display_cmd;
    capacity = cost.Cost_model.display_capacity;
    free_at = 0;
    commands = 0;
    producer_wait = 0;
    fault_stall_cycles = 0 }

(* The device-fault injection point: the controller wedges for [n] cycles
   (a DMA timeout), pushing its whole backlog out by [n].  Producers feel
   it as longer space waits; the injected cycles are accounted here, not
   in [producer_wait], so device campaigns do not pollute the contention
   numbers.  The input queue is deliberately not a timeout target: polls
   are non-blocking, so a wedged poll has no backlog to model. *)
let inject_device_fault d ~vp ~now =
  if vp >= 0 then
    match Spinlock.injector d.lock with
    | None -> ()
    | Some inj -> (
        match Fault.at inj Fault.Device_op with
        | Some (Fault.Device_timeout n) ->
            Fault.applied inj ~vp ~now ~resource:"display output queue"
              (Fault.Device_timeout n);
            (match Spinlock.sanitizer d.lock with
             | Some san ->
                 Sanitizer.fault_event san ~vp ~now
                   ~resource:"display output queue"
                   (Printf.sprintf "device timeout %d" n)
             | None -> ());
            d.free_at <- max d.free_at now + n;
            d.fault_stall_cycles <- d.fault_stall_cycles + n
        | Some _ | None -> ())

(* Enqueue one draw command at [now]; returns the completion time for the
   enqueueing processor (it does not wait for the paint, only for queue
   space and the queue lock). *)
let display_enqueue ?(vp = -1) d ~now =
  inject_device_fault d ~vp ~now;
  (* Backlog length at [now], inferred from when the controller will drain. *)
  let backlog =
    if d.free_at <= now then 0
    else (d.free_at - now + d.service_cycles - 1) / d.service_cycles
  in
  let start =
    if backlog < d.capacity then now
    else begin
      (* wait until the controller has drained down to capacity - 1 *)
      let t = d.free_at - ((d.capacity - 1) * d.service_cycles) in
      d.producer_wait <- d.producer_wait + (t - now);
      t
    end
  in
  let after_lock, () =
    Spinlock.critical ~vp d.lock ~now:start ~op_cycles:10 (fun () ->
        (match Spinlock.sanitizer d.lock with
         | Some san ->
             Sanitizer.check_guarded san ~resource:"display output queue" ~vp
               ~now:start ~detail:"enqueue"
         | None -> ());
        d.commands <- d.commands + 1)
  in
  d.free_at <- max d.free_at after_lock + d.service_cycles;
  after_lock

let display_commands d = d.commands
let display_producer_wait d = d.producer_wait
let display_fault_stall_cycles d = d.fault_stall_cycles
let display_lock d = d.lock

(* The shared input event queue.  Events are injected by a script (tests,
   or the interactive examples) and become visible at their stamped time.
   Every interpreter polls it periodically, under the queue's lock — one of
   the sources of static multiprocessor overhead. *)

type event = { time : int; payload : int }

type input_queue = {
  ilock : Spinlock.t;
  mutable pending : event list;   (* sorted by time *)
  mutable pending_count : int;    (* = List.length pending, kept in step *)
  mutable polls : int;
  mutable delivered : int;
}

let make_input_queue ~enabled_locks ~cost =
  { ilock = Spinlock.make ~enabled:enabled_locks ~cost "input event queue";
    pending = [];
    pending_count = 0;
    polls = 0;
    delivered = 0 }

let inject q ~time ~payload =
  let rec insert = function
    | [] -> [ { time; payload } ]
    | e :: rest when e.time <= time -> e :: insert rest
    | rest -> { time; payload } :: rest
  in
  q.pending <- insert q.pending;
  q.pending_count <- q.pending_count + 1

(* The count is the hot-path answer ([nothing_runnable] asks on every
   idle engine step); the sanitizer's debug path cross-checks it against
   the list it summarizes. *)
let check_pending_count q ~vp ~now =
  match Spinlock.sanitizer q.ilock with
  | Some san when Sanitizer.active san ->
      if q.pending_count <> List.length q.pending then
        Sanitizer.report_violation san ~vp ~now ~resource:"input event queue"
          (Printf.sprintf "pending_count %d != |pending| %d" q.pending_count
             (List.length q.pending))
  | Some _ | None -> ()

(* Poll at [now] under the lock: returns (completion_time, event payload if
   one was ready). *)
let poll ?(vp = -1) q ~now ~op_cycles =
  q.polls <- q.polls + 1;
  Spinlock.critical ~vp q.ilock ~now ~op_cycles (fun () ->
      match q.pending with
      | e :: rest when e.time <= now ->
          (match Spinlock.sanitizer q.ilock with
           | Some san ->
               Sanitizer.check_guarded san ~resource:"input event queue" ~vp
                 ~now ~detail:"pop"
           | None -> ());
          q.pending <- rest;
          q.pending_count <- q.pending_count - 1;
          q.delivered <- q.delivered + 1;
          check_pending_count q ~vp ~now;
          Some e.payload
      | _ -> None)

let input_pending q = q.pending_count

(* When the earliest still-queued event becomes visible — the calendar
   engine parks idle processors until this time instead of having them
   poll every few quanta. *)
let next_input_time q =
  match q.pending with [] -> None | e :: _ -> Some e.time

let input_polls q = q.polls
let input_delivered q = q.delivered
let input_lock q = q.ilock
