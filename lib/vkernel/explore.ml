(* Seeded schedule exploration: perturb the engine's scheduling decisions
   at the preemption points exposed by {!Machine.scheduling_policy},
   record the perturbations as a sparse decision trace, replay such a
   trace bit for bit, and shrink a failing trace to a minimal one.

   A decision trace is sparse on purpose: a run answers thousands of
   policy queries but perturbs only a sampled few, and shrinking works by
   *dropping* perturbations, which keeps the indices of the survivors
   meaningful (index n names the n-th query of whatever run the schedule
   is replayed into — queries before the first change are unaffected). *)

type decision =
  | Tie_pick of int
  | Lock_jitter of int
  | Force_preempt

type step = { index : int; decision : decision }

type schedule = step list

type params = {
  tie_permil : int;
  jitter_permil : int;
  preempt_permil : int;
  jitter_bound : int;
}

(* Defaults chosen so a run perturbs enough to change the interleaving
   but traces stay short enough to shrink quickly. *)
let default_params =
  { tie_permil = 300; jitter_permil = 100; preempt_permil = 40;
    jitter_bound = 64 }

(* --- the PRNG ---

   The splitmix64-style generator lives in {!Fault.Rng} so fault
   injection and schedule exploration sample from the same stable
   stream implementation; these aliases keep this module's historical
   names. *)

type rng = Fault.Rng.t

let rng_make = Fault.Rng.make
let rng_below = Fault.Rng.below
let chance = Fault.Rng.chance

(* --- drivers --- *)

type mode =
  | Seeded of rng * params
  | Replay of step array * int ref  (* cursor into the sorted steps *)

(* The query log a guided driver keeps for the systematic explorer: one
   entry per preemption-point query, whatever was decided there.  [Qtie]
   carries the candidate vp ids in the order they were offered; the
   other two name the lock whose acquire (or charged-section exit) the
   query guards. *)
type qkind =
  | Qtie of int array
  | Qacquire of string
  | Qexit of string

type qinfo = { q : int; kind : qkind; qvp : int; qnow : int }

type driver = {
  mode : mode;
  trace : Trace.t option;
  mutable queries : int;
  mutable last_index : int;  (* pre-increment index of the last query *)
  mutable rev_recorded : step list;
  log_all : bool;  (* guided drivers log every query, not just applied ones *)
  mutable rev_log : qinfo list;
}

let seeded ?(params = default_params) ?trace ~seed () =
  { mode = Seeded (rng_make seed, params);
    trace;
    queries = 0;
    last_index = -1;
    rev_recorded = [];
    log_all = false;
    rev_log = [] }

let replay ?trace sched =
  let steps =
    Array.of_list
      (List.sort (fun a b -> compare a.index b.index) sched)
  in
  { mode = Replay (steps, ref 0); trace; queries = 0; last_index = -1;
    rev_recorded = []; log_all = false; rev_log = [] }

(* A replaying driver that additionally records every query it answers —
   the raw material for the systematic (DPOR) explorer, which needs to
   see the whole decision space of a run, not only the perturbed
   points. *)
let guided ?trace sched = { (replay ?trace sched) with log_all = true }

let recorded d = List.rev d.rev_recorded
let queries d = d.queries
let query_log d = Array.of_list (List.rev d.rev_log)

let describe = function
  | Tie_pick k -> Printf.sprintf "tie pick %d" k
  | Lock_jitter j -> Printf.sprintf "jitter %d" j
  | Force_preempt -> "force preempt"

(* Record an applied decision at the index of the query that produced
   it.  [last_index] is the *pre-increment* query number stashed by
   {!decide} — recording the post-increment count here would shift every
   decision one query late on replay, where {!decide} matches the
   pre-increment number. *)
let applied d ~vp ~now ~resource decision =
  let index = d.last_index in
  d.rev_recorded <- { index; decision } :: d.rev_recorded;
  match d.trace with
  | None -> ()
  | Some t ->
      Trace.record t ~vp ~time:now ~kind:Trace.Sched_decision
        ~resource
        ~detail:(Printf.sprintf "#%d %s" index (describe decision))

(* Answer one preemption-point query.  [gen] samples a decision from the
   seed (None = leave the default); replay applies the recorded decision
   if one names this query index.  A replayed decision of the wrong
   variant for the query is ignored — a schedule from another context
   degrades to the default rather than derailing the run. *)
let decide d ~accept ~gen =
  let q = d.queries in
  d.queries <- q + 1;
  d.last_index <- q;
  match d.mode with
  | Seeded (rng, params) -> gen rng params
  | Replay (steps, cursor) ->
      let n = Array.length steps in
      while !cursor < n && steps.(!cursor).index < q do incr cursor done;
      if !cursor < n && steps.(!cursor).index = q then begin
        let s = steps.(!cursor) in
        incr cursor;
        if accept s.decision then Some s.decision else None
      end
      else None

let policy d =
  (* Log the query about to be answered (guided drivers only).  Must run
     before {!decide} bumps the counter so the logged [q] names the same
     index a forced decision would be matched against. *)
  let log_query kind ~vp ~now =
    if d.log_all then
      d.rev_log <- { q = d.queries; kind; qvp = vp; qnow = now } :: d.rev_log
  in
  let choose_tie candidates =
    let n = Array.length candidates in
    log_query
      (Qtie (Array.map (fun vp -> vp.Machine.id) candidates))
      ~vp:candidates.(0).Machine.id ~now:candidates.(0).Machine.clock;
    let picked =
      decide d
        ~accept:(function Tie_pick _ -> true | _ -> false)
        ~gen:(fun rng params ->
          if chance rng params.tie_permil then
            let k = rng_below rng n in
            if k = 0 then None else Some (Tie_pick k)
          else None)
    in
    match picked with
    | Some (Tie_pick k) ->
        let k = min (max k 0) (n - 1) in
        let vp = candidates.(k) in
        if k <> 0 then
          applied d ~vp:vp.Machine.id ~now:vp.Machine.clock
            ~resource:"schedule" (Tie_pick k);
        vp
    | _ -> candidates.(0)
  in
  let lock_jitter ~vp ~lock ~now =
    log_query (Qacquire lock) ~vp ~now;
    let picked =
      decide d
        ~accept:(function Lock_jitter _ -> true | _ -> false)
        ~gen:(fun rng params ->
          if params.jitter_bound > 0 && chance rng params.jitter_permil
          then Some (Lock_jitter (1 + rng_below rng params.jitter_bound))
          else None)
    in
    match picked with
    | Some (Lock_jitter j) when j > 0 ->
        applied d ~vp ~now ~resource:lock (Lock_jitter j);
        j
    | _ -> 0
  in
  let preempt_after ~vp ~lock ~now =
    log_query (Qexit lock) ~vp ~now;
    let picked =
      decide d
        ~accept:(function Force_preempt -> true | _ -> false)
        ~gen:(fun rng params ->
          if chance rng params.preempt_permil then Some Force_preempt
          else None)
    in
    match picked with
    | Some Force_preempt ->
        applied d ~vp ~now ~resource:lock Force_preempt;
        true
    | _ -> false
  in
  { Machine.choose_tie; lock_jitter; preempt_after }

(* --- schedule utilities --- *)

let fingerprint sched =
  List.fold_left
    (fun h { index; decision } ->
      let d =
        match decision with
        | Tie_pick k -> (k lsl 2) lor 1
        | Lock_jitter j -> (j lsl 2) lor 2
        | Force_preempt -> 3
      in
      let h = (h * 0x01000193) lxor index in
      ((h * 0x01000193) lxor d) land max_int)
    0x811C9DC5 sched

(* --- shrinking ---

   Classic delta debugging over the decision list: try dropping chunks,
   halving the chunk size until single decisions, restarting whenever a
   drop still fails; then shrink the surviving values (halve jitters,
   pull tie picks toward the default candidate).  [run] rebuilds the
   world and replays, so every probe costs a full run — the budget caps
   the total. *)

let shrink ~run ?(budget = 200) sched =
  let spent = ref 0 in
  let try_run s =
    if !spent >= budget then false
    else begin
      incr spent;
      run s
    end
  in
  let drop_chunks current =
    let current = ref current in
    let chunk = ref (max 1 (List.length !current / 2)) in
    let progress = ref true in
    while !chunk >= 1 && !spent < budget do
      progress := false;
      let arr = Array.of_list !current in
      let n = Array.length arr in
      let pos = ref 0 in
      while !pos < n && !spent < budget do
        let keep = ref [] in
        Array.iteri
          (fun i s ->
            if i < !pos || i >= !pos + !chunk then keep := s :: !keep)
          arr;
        let candidate = List.rev !keep in
        if List.length candidate < n && try_run candidate then begin
          current := candidate;
          progress := true;
          pos := n (* restart scanning on the smaller schedule *)
        end
        else pos := !pos + !chunk
      done;
      if !progress then chunk := max 1 (min !chunk (List.length !current))
      else if !chunk = 1 then chunk := 0
      else chunk := !chunk / 2
    done;
    !current
  in
  let shrink_values current =
    let smaller = function
      | Tie_pick k when k > 1 -> Some (Tie_pick (k / 2))
      | Lock_jitter j when j > 1 -> Some (Lock_jitter (j / 2))
      | _ -> None
    in
    let current = ref current in
    let again = ref true in
    while !again && !spent < budget do
      again := false;
      List.iteri
        (fun i s ->
          match smaller s.decision with
          | None -> ()
          | Some d ->
              let candidate =
                List.mapi
                  (fun j s' -> if j = i then { s' with decision = d } else s')
                  !current
              in
              if try_run candidate then begin
                current := candidate;
                again := true
              end)
        !current
    done;
    !current
  in
  let result = shrink_values (drop_chunks sched) in
  (result, !spent)

(* --- decision-trace files --- *)

let pp fmt sched =
  List.iter
    (fun { index; decision } ->
      match decision with
      | Tie_pick k -> Format.fprintf fmt "tie %d %d@." index k
      | Lock_jitter j -> Format.fprintf fmt "jitter %d %d@." index j
      | Force_preempt -> Format.fprintf fmt "preempt %d@." index)
    sched

let save path sched =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# mst decision trace v1\n";
      output_string oc
        (Printf.sprintf "# %d decision(s); index = preemption-point number\n"
           (List.length sched));
      let fmt = Format.formatter_of_out_channel oc in
      pp fmt sched;
      Format.pp_print_flush fmt ())

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let steps = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           incr lineno;
           if line <> "" && line.[0] <> '#' then begin
             let bad () =
               failwith
                 (Printf.sprintf "%s:%d: malformed decision %S" path !lineno
                    line)
             in
             match String.split_on_char ' ' line with
             | [ "tie"; i; k ] ->
                 (match (int_of_string_opt i, int_of_string_opt k) with
                  | Some i, Some k when i >= 0 && k >= 0 ->
                      steps := { index = i; decision = Tie_pick k } :: !steps
                  | _ -> bad ())
             | [ "jitter"; i; j ] ->
                 (match (int_of_string_opt i, int_of_string_opt j) with
                  | Some i, Some j when i >= 0 && j >= 0 ->
                      steps := { index = i; decision = Lock_jitter j } :: !steps
                  | _ -> bad ())
             | [ "preempt"; i ] ->
                 (match int_of_string_opt i with
                  | Some i when i >= 0 ->
                      steps := { index = i; decision = Force_preempt } :: !steps
                  | _ -> bad ())
             | _ -> bad ()
           end
         done
       with End_of_file -> ());
      List.sort (fun a b -> compare a.index b.index) !steps)

(* [load] for a --replay invocation: an empty (or comment-only) trace
   would silently replay the unperturbed reference schedule and report
   success for a file that reproduces nothing — reject it instead. *)
let load_replay path =
  match load path with
  | [] ->
      failwith
        (Printf.sprintf
           "%s: no decisions to replay (empty or comment-only trace)" path)
  | sched -> sched

(* --- systematic exploration: dynamic partial-order reduction (E20) ---

   Seeded exploration samples the schedule space; this explorer walks it.
   A run under a {!guided} driver is summarized by its query log; because
   the simulation is deterministic, the log defines a tree: every query
   is a potential choice point, and re-running with a forced decision
   prefix replays the run bit for bit up to the first change.

   The walk is a DFS over forced prefixes, run-to-completion style (as in
   stateless model checkers such as DSCheck): execute, analyse, backtrack
   to the deepest choice point with unexplored alternatives, re-execute.
   Two modes share the skeleton:

   - [Brute] inserts every alternative at every choice point up front:
     all non-default tie picks, one canonical "defer past the next
     conflicting acquire" jitter per lock acquire, one forced preemption
     per section exit.  Within the depth/flip bounds this enumerates the
     whole decision tree — the ground truth the oracle test compares
     against.

   - [Dpor] starts with no alternatives and inserts them only where the
     executed run shows a *race*: two acquires of the same lock by
     different vps with no third acquire between them.  Reversing a race
     needs the later vp to reach the lock first, which in this engine
     (steps are processed in min-clock order, so a lock's serialization
     order is its acquires' step order) means scheduling the later vp
     earlier: the insertion point is the last min-clock tie where it was
     a candidate, or failing that, a jitter at the earlier vp's previous
     acquire sized to push it past the later acquire's clock.  Everything
     else — tie picks that reorder independent steps, preemptions that
     only migrate Processes, defers with no conflicting successor — is
     pruned, which is exactly the partial-order reduction.

   Sleep sets (Godefroid) cut the remaining redundancy, adapted to
   run-to-completion replay: when the subtree of an alternative that
   moved operation (vp, lock) forward has been fully explored, siblings
   at that choice point inherit the operation in their sleep set, and an
   insertion whose moved operation is asleep is skipped; a sleeping
   operation is woken by the next acquire of the same lock on the path,
   after which it may be inserted again. *)

module Dpor = struct
  type exec = {
    xlog : qinfo array;
    obs : string;
    failure : string option;
  }

  type mode = Brute | Dpor

  type stats = {
    executions : int;
    distinct_obs : int;
    distinct_traces : int;
    races : int;
    pruned : int;  (* brute-eligible alternatives not explored *)
    sleep_skips : int;
    bounded : int;  (* insertions refused by the flip/branch bounds *)
    exhausted : bool;  (* the bounded space was fully explored *)
  }

  type result = {
    stats : stats;
    obs_witness : (string * schedule) list;
        (* one witness schedule per distinct observable, discovery order *)
    failures : (schedule * string) list;
  }

  (* The Mazurkiewicz-trace identity of a run: for every lock, the
     sequence of acquiring vps; independent (different-lock) operations
     hash the same regardless of their interleaving. *)
  let trace_fingerprint xlog =
    let per = Hashtbl.create 8 in
    Array.iter
      (fun e ->
        match e.kind with
        | Qacquire l ->
            let h =
              match Hashtbl.find_opt per l with
              | Some h -> h
              | None -> 0x811C9DC5
            in
            Hashtbl.replace per l
              (((h * 0x01000193) lxor (e.qvp + 1)) land max_int)
        | Qtie _ | Qexit _ -> ())
      xlog;
    let items =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) per [])
    in
    List.fold_left
      (fun h (k, v) ->
        let h = (h * 0x01000193) lxor Hashtbl.hash k in
        ((h * 0x01000193) lxor v) land max_int)
      0x811C9DC5 items

  (* One alternative at a choice point.  [moved] is the operation the
     alternative schedules earlier (for sleep sets); [eligible] marks the
     canonical alternatives a Brute walk enumerates, so the pruned
     statistic compares like with like. *)
  type alt = {
    dec : decision;
    moved : (int * string) option;
    eligible : bool;
  }

  type node = {
    nq : int;
    nres : string;  (* lock name; "schedule" for ties *)
    nvp : int;  (* acting vp; ties: the default candidate *)
    nnow : int;
    ncands : int array;  (* tie candidates ([||] elsewhere) *)
    nis_acquire : bool;
    base_sleep : (int * string) list;
    mutable cur : alt option;  (* non-default choice in the current branch *)
    mutable todo : alt list;
    mutable done_ : alt list;
    mutable eligible_n : int;
    mutable explored_eligible : int;
  }

  let same_dec a b = a.dec = b.dec

  let node_chosen_vp n =
    match n.cur with
    | Some { dec = Tie_pick k; _ } when k >= 0 && k < Array.length n.ncands ->
        n.ncands.(k)
    | _ -> n.nvp

  let defer_cap = 4  (* distinct race-specific jitters per acquire node *)

  let systematic ?(mode = Dpor) ?(max_branch = max_int) ?(max_flips = 2)
      ?(budget = 256) ?(defers = true) ?(preempts = true) ?(defer_slack = 1)
      ?(stop_on_failure = false) ?(log = fun _ -> ()) ~run () =
    (* stack of choice points, deepest first *)
    let stack = ref [] in
    let executions = ref 0 and races = ref 0 in
    let pruned = ref 0 and sleep_skips = ref 0 and bounded = ref 0 in
    let obs_tbl : (string, unit) Hashtbl.t = Hashtbl.create 64 in
    let obs_witness = ref [] in
    let trace_tbl : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let failures = ref [] in
    let prefix_of stack =
      List.fold_left
        (fun acc n ->
          match n.cur with
          | Some a -> { index = n.nq; decision = a.dec } :: acc
          | None -> acc)
        [] stack
      (* stack is deepest-first, so the fold emits index-ascending *)
    in
    let flips_below q =
      List.fold_left
        (fun acc n ->
          if n.nq < q && n.cur <> None then acc + 1 else acc)
        0 !stack
    in
    let known n a =
      List.exists (same_dec a) n.todo
      || List.exists (same_dec a) n.done_
      || (match n.cur with Some c -> same_dec c a | None -> false)
    in
    (* selecting an alternative at [n] truncates everything deeper, so
       the schedule it produces has exactly (flips strictly above n) + 1
       forced decisions.  [Tie_pick 0] is the identity decision — it
       replays the default branch the node was created from, which has
       already been explored — so it is never an alternative. *)
    let insert n a =
      if a.dec = Tie_pick 0 || known n a then ()
      else if flips_below n.nq + 1 > max_flips then incr bounded
      else
        match a.moved with
        | Some op
          when List.mem op n.base_sleep
               || List.exists
                    (fun d -> d.moved = Some op)
                    n.done_ ->
            incr sleep_skips
        | _ -> n.todo <- a :: n.todo
    in
    (* Brute-eligible alternatives of a log entry, [idx] its log
       position (used to find the next conflicting acquire). *)
    let eligible_alts xlog idx e =
      match e.kind with
      | Qtie cands ->
          List.init
            (Array.length cands - 1)
            (fun k ->
              { dec = Tie_pick (k + 1); moved = None; eligible = true })
      | Qacquire l when defers ->
          let rec next i =
            if i >= Array.length xlog then None
            else
              match xlog.(i).kind with
              | Qacquire l' when l' = l && xlog.(i).qvp <> e.qvp ->
                  Some xlog.(i)
              | _ -> next (i + 1)
          in
          (match next (idx + 1) with
           | Some e' ->
               let j = max 1 (e'.qnow - e.qnow + defer_slack) in
               [ { dec = Lock_jitter j; moved = Some (e'.qvp, l);
                   eligible = true } ]
           | None -> [])
      | Qexit _ when preempts ->
          [ { dec = Force_preempt; moved = None; eligible = true } ]
      | Qacquire _ | Qexit _ -> []
    in
    (* Extend the stack with choice points for the log entries past the
       current deepest node, propagating the sleep set along the path
       (an acquire of a lock wakes every operation sleeping on it). *)
    let extend xlog =
      let from_q = match !stack with [] -> -1 | n :: _ -> n.nq in
      let sleep =
        ref
          (match !stack with
           | [] -> []
           | n :: _ ->
               n.base_sleep
               @ List.filter_map (fun d -> d.moved) n.done_)
      in
      Array.iteri
        (fun idx e ->
          if e.q > from_q then begin
            (match e.kind with
             | Qacquire l ->
                 sleep := List.filter (fun (_, r) -> r <> l) !sleep
             | Qtie _ | Qexit _ -> ());
            if e.q < max_branch then begin
              let alts = eligible_alts xlog idx e in
              let eligible_n = List.length alts in
              let node =
                { nq = e.q;
                  nres =
                    (match e.kind with
                     | Qtie _ -> "schedule"
                     | Qacquire l | Qexit l -> l);
                  nvp = e.qvp;
                  nnow = e.qnow;
                  ncands = (match e.kind with Qtie c -> c | _ -> [||]);
                  nis_acquire =
                    (match e.kind with Qacquire _ -> true | _ -> false);
                  base_sleep = !sleep;
                  cur = None;
                  todo = [];
                  done_ = [];
                  eligible_n;
                  explored_eligible = 0 }
              in
              if mode = Brute then
                List.iter (insert node) alts;
              stack := node :: !stack
            end
          end)
        xlog
    in
    (* Race analysis: consecutive acquires of one lock by different vps.
       The insertion point for reversing (i: p) -> (j: q) is the last tie
       at or before i offering q and not already choosing it; failing
       that, a jitter at p's previous acquire sized so p's clock passes
       q's acquire. *)
    let analyse xlog =
      let last_acq : (string, qinfo) Hashtbl.t = Hashtbl.create 8 in
      Array.iter
        (fun e ->
          match e.kind with
          | Qacquire l ->
              (match Hashtbl.find_opt last_acq l with
               | Some prev when prev.qvp <> e.qvp ->
                   incr races;
                   let p = prev.qvp and q = e.qvp in
                   let tie_node =
                     List.find_opt
                       (fun n ->
                         n.nq <= prev.q
                         && Array.exists (( = ) q) n.ncands
                         && node_chosen_vp n <> q)
                       !stack
                   in
                   (match tie_node with
                    | Some t ->
                        let pos = ref 0 in
                        Array.iteri
                          (fun k vid -> if vid = q then pos := k)
                          t.ncands;
                        insert t
                          { dec = Tie_pick !pos; moved = Some (q, l);
                            eligible = true }
                    | None when defers ->
                        let h =
                          List.find_opt
                            (fun n ->
                              n.nis_acquire && n.nvp = p && n.nq < prev.q)
                            !stack
                        in
                        (match h with
                         | Some h
                           when List.length
                                  (List.filter
                                     (fun d ->
                                       match d.dec with
                                       | Lock_jitter _ -> true
                                       | _ -> false)
                                     (h.done_ @ h.todo))
                                < defer_cap ->
                             let j =
                               max 1 (e.qnow - h.nnow + defer_slack)
                             in
                             insert h
                               { dec = Lock_jitter j; moved = Some (q, l);
                                 eligible = false }
                         | _ -> ())
                    | None -> ())
               | _ -> ());
              Hashtbl.replace last_acq l e
          | Qtie _ | Qexit _ -> ())
        xlog
    in
    let exhausted = ref false and stop = ref false in
    while (not !stop) && !executions < budget do
      let sched = prefix_of !stack in
      let x = run sched in
      incr executions;
      if !executions mod 50 = 0 then
        log
          (Printf.sprintf "%d execution(s), %d race(s), %d observable(s)"
             !executions !races (Hashtbl.length obs_tbl));
      if not (Hashtbl.mem obs_tbl x.obs) then begin
        Hashtbl.replace obs_tbl x.obs ();
        obs_witness := (x.obs, sched) :: !obs_witness
      end;
      Hashtbl.replace trace_tbl (trace_fingerprint x.xlog) ();
      (match x.failure with
       | Some what -> failures := (sched, what) :: !failures
       | None -> ());
      if stop_on_failure && x.failure <> None then stop := true
      else begin
        extend x.xlog;
        if mode = Dpor then analyse x.xlog;
        (* backtrack: pop fully-explored choice points, take the deepest
           pending alternative *)
        let rec backtrack () =
          match !stack with
          | [] ->
              exhausted := true;
              stop := true
          | n :: rest -> (
              match n.todo with
              | [] ->
                  pruned :=
                    !pruned + max 0 (n.eligible_n - n.explored_eligible);
                  stack := rest;
                  backtrack ()
              | a :: todo ->
                  n.todo <- todo;
                  (match n.cur with
                   | Some c -> n.done_ <- c :: n.done_
                   | None -> ());
                  n.cur <- Some a;
                  if a.eligible then
                    n.explored_eligible <- n.explored_eligible + 1)
        in
        backtrack ()
      end
    done;
    (* anything still pending when the budget ran out is unexplored *)
    if not !exhausted then
      List.iter
        (fun n ->
          pruned := !pruned + max 0 (n.eligible_n - n.explored_eligible))
        !stack;
    { stats =
        { executions = !executions;
          distinct_obs = Hashtbl.length obs_tbl;
          distinct_traces = Hashtbl.length trace_tbl;
          races = !races;
          pruned = !pruned;
          sleep_skips = !sleep_skips;
          bounded = !bounded;
          exhausted = !exhausted };
      obs_witness = List.rev !obs_witness;
      failures = List.rev !failures }
end
