(* Seeded schedule exploration: perturb the engine's scheduling decisions
   at the preemption points exposed by {!Machine.scheduling_policy},
   record the perturbations as a sparse decision trace, replay such a
   trace bit for bit, and shrink a failing trace to a minimal one.

   A decision trace is sparse on purpose: a run answers thousands of
   policy queries but perturbs only a sampled few, and shrinking works by
   *dropping* perturbations, which keeps the indices of the survivors
   meaningful (index n names the n-th query of whatever run the schedule
   is replayed into — queries before the first change are unaffected). *)

type decision =
  | Tie_pick of int
  | Lock_jitter of int
  | Force_preempt

type step = { index : int; decision : decision }

type schedule = step list

type params = {
  tie_permil : int;
  jitter_permil : int;
  preempt_permil : int;
  jitter_bound : int;
}

(* Defaults chosen so a run perturbs enough to change the interleaving
   but traces stay short enough to shrink quickly. *)
let default_params =
  { tie_permil = 300; jitter_permil = 100; preempt_permil = 40;
    jitter_bound = 64 }

(* --- the PRNG ---

   The splitmix64-style generator lives in {!Fault.Rng} so fault
   injection and schedule exploration sample from the same stable
   stream implementation; these aliases keep this module's historical
   names. *)

type rng = Fault.Rng.t

let rng_make = Fault.Rng.make
let rng_below = Fault.Rng.below
let chance = Fault.Rng.chance

(* --- drivers --- *)

type mode =
  | Seeded of rng * params
  | Replay of step array * int ref  (* cursor into the sorted steps *)

type driver = {
  mode : mode;
  trace : Trace.t option;
  mutable queries : int;
  mutable last_index : int;  (* pre-increment index of the last query *)
  mutable rev_recorded : step list;
}

let seeded ?(params = default_params) ?trace ~seed () =
  { mode = Seeded (rng_make seed, params);
    trace;
    queries = 0;
    last_index = -1;
    rev_recorded = [] }

let replay ?trace sched =
  let steps =
    Array.of_list
      (List.sort (fun a b -> compare a.index b.index) sched)
  in
  { mode = Replay (steps, ref 0); trace; queries = 0; last_index = -1;
    rev_recorded = [] }

let recorded d = List.rev d.rev_recorded
let queries d = d.queries

let describe = function
  | Tie_pick k -> Printf.sprintf "tie pick %d" k
  | Lock_jitter j -> Printf.sprintf "jitter %d" j
  | Force_preempt -> "force preempt"

(* Record an applied decision at the index of the query that produced
   it.  [last_index] is the *pre-increment* query number stashed by
   {!decide} — recording the post-increment count here would shift every
   decision one query late on replay, where {!decide} matches the
   pre-increment number. *)
let applied d ~vp ~now ~resource decision =
  let index = d.last_index in
  d.rev_recorded <- { index; decision } :: d.rev_recorded;
  match d.trace with
  | None -> ()
  | Some t ->
      Trace.record t ~vp ~time:now ~kind:Trace.Sched_decision
        ~resource
        ~detail:(Printf.sprintf "#%d %s" index (describe decision))

(* Answer one preemption-point query.  [gen] samples a decision from the
   seed (None = leave the default); replay applies the recorded decision
   if one names this query index.  A replayed decision of the wrong
   variant for the query is ignored — a schedule from another context
   degrades to the default rather than derailing the run. *)
let decide d ~accept ~gen =
  let q = d.queries in
  d.queries <- q + 1;
  d.last_index <- q;
  match d.mode with
  | Seeded (rng, params) -> gen rng params
  | Replay (steps, cursor) ->
      let n = Array.length steps in
      while !cursor < n && steps.(!cursor).index < q do incr cursor done;
      if !cursor < n && steps.(!cursor).index = q then begin
        let s = steps.(!cursor) in
        incr cursor;
        if accept s.decision then Some s.decision else None
      end
      else None

let policy d =
  let choose_tie candidates =
    let n = Array.length candidates in
    let picked =
      decide d
        ~accept:(function Tie_pick _ -> true | _ -> false)
        ~gen:(fun rng params ->
          if chance rng params.tie_permil then
            let k = rng_below rng n in
            if k = 0 then None else Some (Tie_pick k)
          else None)
    in
    match picked with
    | Some (Tie_pick k) ->
        let k = min (max k 0) (n - 1) in
        let vp = candidates.(k) in
        if k <> 0 then
          applied d ~vp:vp.Machine.id ~now:vp.Machine.clock
            ~resource:"schedule" (Tie_pick k);
        vp
    | _ -> candidates.(0)
  in
  let lock_jitter ~vp ~lock ~now =
    let picked =
      decide d
        ~accept:(function Lock_jitter _ -> true | _ -> false)
        ~gen:(fun rng params ->
          if params.jitter_bound > 0 && chance rng params.jitter_permil
          then Some (Lock_jitter (1 + rng_below rng params.jitter_bound))
          else None)
    in
    match picked with
    | Some (Lock_jitter j) when j > 0 ->
        applied d ~vp ~now ~resource:lock (Lock_jitter j);
        j
    | _ -> 0
  in
  let preempt_after ~vp ~lock ~now =
    let picked =
      decide d
        ~accept:(function Force_preempt -> true | _ -> false)
        ~gen:(fun rng params ->
          if chance rng params.preempt_permil then Some Force_preempt
          else None)
    in
    match picked with
    | Some Force_preempt ->
        applied d ~vp ~now ~resource:lock Force_preempt;
        true
    | _ -> false
  in
  { Machine.choose_tie; lock_jitter; preempt_after }

(* --- schedule utilities --- *)

let fingerprint sched =
  List.fold_left
    (fun h { index; decision } ->
      let d =
        match decision with
        | Tie_pick k -> (k lsl 2) lor 1
        | Lock_jitter j -> (j lsl 2) lor 2
        | Force_preempt -> 3
      in
      let h = (h * 0x01000193) lxor index in
      ((h * 0x01000193) lxor d) land max_int)
    0x811C9DC5 sched

(* --- shrinking ---

   Classic delta debugging over the decision list: try dropping chunks,
   halving the chunk size until single decisions, restarting whenever a
   drop still fails; then shrink the surviving values (halve jitters,
   pull tie picks toward the default candidate).  [run] rebuilds the
   world and replays, so every probe costs a full run — the budget caps
   the total. *)

let shrink ~run ?(budget = 200) sched =
  let spent = ref 0 in
  let try_run s =
    if !spent >= budget then false
    else begin
      incr spent;
      run s
    end
  in
  let drop_chunks current =
    let current = ref current in
    let chunk = ref (max 1 (List.length !current / 2)) in
    let progress = ref true in
    while !chunk >= 1 && !spent < budget do
      progress := false;
      let arr = Array.of_list !current in
      let n = Array.length arr in
      let pos = ref 0 in
      while !pos < n && !spent < budget do
        let keep = ref [] in
        Array.iteri
          (fun i s ->
            if i < !pos || i >= !pos + !chunk then keep := s :: !keep)
          arr;
        let candidate = List.rev !keep in
        if List.length candidate < n && try_run candidate then begin
          current := candidate;
          progress := true;
          pos := n (* restart scanning on the smaller schedule *)
        end
        else pos := !pos + !chunk
      done;
      if !progress then chunk := max 1 (min !chunk (List.length !current))
      else if !chunk = 1 then chunk := 0
      else chunk := !chunk / 2
    done;
    !current
  in
  let shrink_values current =
    let smaller = function
      | Tie_pick k when k > 1 -> Some (Tie_pick (k / 2))
      | Lock_jitter j when j > 1 -> Some (Lock_jitter (j / 2))
      | _ -> None
    in
    let current = ref current in
    let again = ref true in
    while !again && !spent < budget do
      again := false;
      List.iteri
        (fun i s ->
          match smaller s.decision with
          | None -> ()
          | Some d ->
              let candidate =
                List.mapi
                  (fun j s' -> if j = i then { s' with decision = d } else s')
                  !current
              in
              if try_run candidate then begin
                current := candidate;
                again := true
              end)
        !current
    done;
    !current
  in
  let result = shrink_values (drop_chunks sched) in
  (result, !spent)

(* --- decision-trace files --- *)

let pp fmt sched =
  List.iter
    (fun { index; decision } ->
      match decision with
      | Tie_pick k -> Format.fprintf fmt "tie %d %d@." index k
      | Lock_jitter j -> Format.fprintf fmt "jitter %d %d@." index j
      | Force_preempt -> Format.fprintf fmt "preempt %d@." index)
    sched

let save path sched =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# mst decision trace v1\n";
      output_string oc
        (Printf.sprintf "# %d decision(s); index = preemption-point number\n"
           (List.length sched));
      let fmt = Format.formatter_of_out_channel oc in
      pp fmt sched;
      Format.pp_print_flush fmt ())

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let steps = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           incr lineno;
           if line <> "" && line.[0] <> '#' then begin
             let bad () =
               failwith
                 (Printf.sprintf "%s:%d: malformed decision %S" path !lineno
                    line)
             in
             match String.split_on_char ' ' line with
             | [ "tie"; i; k ] ->
                 (match (int_of_string_opt i, int_of_string_opt k) with
                  | Some i, Some k when i >= 0 && k >= 0 ->
                      steps := { index = i; decision = Tie_pick k } :: !steps
                  | _ -> bad ())
             | [ "jitter"; i; j ] ->
                 (match (int_of_string_opt i, int_of_string_opt j) with
                  | Some i, Some j when i >= 0 && j >= 0 ->
                      steps := { index = i; decision = Lock_jitter j } :: !steps
                  | _ -> bad ())
             | [ "preempt"; i ] ->
                 (match int_of_string_opt i with
                  | Some i when i >= 0 ->
                      steps := { index = i; decision = Force_preempt } :: !steps
                  | _ -> bad ())
             | _ -> bad ()
           end
         done
       with End_of_file -> ());
      List.sort (fun a b -> compare a.index b.index) !steps)

(* [load] for a --replay invocation: an empty (or comment-only) trace
   would silently replay the unperturbed reference schedule and report
   success for a file that reproduces nothing — reject it instead. *)
let load_replay path =
  match load path with
  | [] ->
      failwith
        (Printf.sprintf
           "%s: no decisions to replay (empty or comment-only trace)" path)
  | sched -> sched
