(** Per-interpreter state: one per virtual processor.

    Replicating this (and the resources inside it) is how MS obtains
    parallelism — "we obtain parallelism by replicating the interpreter
    itself".  The shared resources (scheduler, heap, allocation and
    entry-table locks, devices) are referenced from every state and
    guarded according to the configured strategies. *)

(** A VM-level error: Smalltalk [error:], mustBeBoolean, and friends. *)
exception Vm_error of string

val vm_error : ('a, unit, string, 'b) format4 -> 'a

(** What a timer does when its deadline is reached: signal a Smalltalk
    semaphore (the Delay path) or run an engine-side hook (the image
    server's arrival generators; a hook may add further timers). *)
type timer_action =
  | Signal_sem of Oop.t ref  (** rooted semaphore cell *)
  | Run_hook of (now:int -> unit)

type shared = {
  u : Universe.t;
  heap : Heap.t;
  cm : Cost_model.t;
  machine : Machine.t;
  sched : Scheduler.t;
  alloc_lock : Spinlock.t;  (** serialized allocation (paper section 3.1) *)
  entry_lock : Spinlock.t;  (** entry-table maintenance *)
  display : Devices.display;
  input : Devices.input_queue;
  mutable sym_does_not_understand : Oop.t;
  input_semaphore : Oop.t ref;  (** signalled on input events (rooted) *)
  mutable on_terminate : Oop.t -> Oop.t -> unit;  (** process, result *)
  mutable on_method_install : unit -> unit;  (** flush the method caches *)
  timers : timer_action Calendar.t;
      (** pending timers, a stable min-heap keyed by absolute fire cycle *)
  mutable gc_wanted : bool;  (** set by the scavenge primitive *)
  mutable request_mailbox : int Mailbox.t option;
      (** E17 image server: request ids ride this mailbox from the
          arrival generators to the worker pool *)
  mutable on_request_done : rid:int -> now:int -> unit;
      (** E17 image server: completion callback (latency bookkeeping and
          closed-loop arrival scheduling) *)
  mutable compile_hook :
    (cls:Oop.t -> class_side:bool -> string -> Oop.t) option;
      (** installed by the VM assembly to avoid a dependency cycle: the
          compile primitive calls up into stcompile *)
  mutable decompile_hook : (meth:Oop.t -> string) option;
  sanitizer : Sanitizer.t;  (** serialization checking; Off by default *)
}

type t = {
  id : int;  (** virtual processor id *)
  sh : shared;
  vp : Machine.vp;
  mcache : Method_cache.t;
  free_ctxs : Free_contexts.t;
  active_ctx : Oop.t ref;  (** registered as a scavenge root *)
  active_process : Oop.t ref;  (** likewise *)
  mutable cost : int;  (** cycles accumulated during the current step *)
  mutable cached_ctx : Oop.t;
      (** the context the [c_*] fields describe; invalidated on context
          switches and scavenges *)
  mutable c_meth : Oop.t;
  mutable c_bc_addr : int;
  mutable c_bc_len : int;
  mutable c_frame : int;
  mutable c_home_frame : int;
  mutable c_recv : Oop.t;
  mutable c_ivar_base : int;
  mutable until_poll : int;
  mutable until_sched : int;
  mutable steps : int;
  mutable sends : int;
  mutable prim_calls : int;
  mutable ctx_switches : int;
}

val make :
  id:int -> sh:shared -> mcache:Method_cache.t -> free_ctxs:Free_contexts.t -> t

val nil : t -> Oop.t

(** Virtual time at the current point inside the running step. *)
val now : t -> int

val add_cost : t -> int -> unit

(** Absorb a timeline operation's absolute completion time into the
    step's cost. *)
val sync_to : t -> int -> unit

val invalidate_cache : t -> unit

val refresh_cache : t -> unit

(** {2 Context stack operations (on the active context)} *)

val get_pc : t -> int

val set_pc : t -> int -> unit

val get_sp : t -> int

val set_sp : t -> int -> unit

(** Pointer store with the store check; an entry-table insertion passes
    through the entry-table lock. *)
val store_with_check : t -> Oop.t -> int -> Oop.t -> unit

val push : t -> Oop.t -> unit

val pop : t -> Oop.t

val peek : t -> depth:int -> Oop.t

val popn : t -> int -> unit
