(** The free-context list.

    BS keeps a list of unused stack frames because reusing one beats
    allocating and initialising a new one.  Profiling an early MS showed
    that serializing this list was a bottleneck; replicating it per
    processor reduced the worst-case overhead from 160 % to 65 % (paper,
    section 3.2).  Contexts come in two standard sizes and are chained
    through their sender slots; the lists are flushed at every scavenge. *)

type mode =
  | Replicated
  | Shared_locked of Spinlock.t
  | Disabled  (** no recycling at all (ablation) *)

type lists

type t

type size_class = Small | Large

val empty_lists : unit -> lists

(** [owner] is the vp the replicated list belongs to (the sanitizer flags
    any other toucher); [entry_lock]/[remember_cost] serialize the
    entry-table insert when a tenured context links to new space. *)
val create_replicated :
  ?owner:int -> ?entry_lock:Spinlock.t -> ?remember_cost:int ->
  ?sanitizer:Sanitizer.t -> unit -> t

(** [skip_bracket] is fault injection for the schedule explorer's
    self-check: take/give mutate the shared list without entering the
    lock's critical section, so an armed sanitizer flags every
    operation.  Never set in a legitimate configuration. *)
val create_shared :
  ?entry_lock:Spinlock.t -> ?remember_cost:int -> ?sanitizer:Sanitizer.t ->
  ?skip_bracket:bool -> lock:Spinlock.t -> lists:lists -> unit -> t

val create_disabled : unit -> t

val flush : t -> unit

(** [take t heap ~now size] pops a recycled context of [size], charging
    lock time for the shared variant; returns the completion time and the
    context ([Oop.sentinel] when the list is empty). *)
val take : ?vp:int -> t -> Heap.t -> now:int -> size_class -> int * Oop.t

(** [give t heap ~now size ctx] hands a dead context back for reuse. *)
val give : ?vp:int -> t -> Heap.t -> now:int -> size_class -> Oop.t -> int

(** Abandon the list wholesale after a processor failure: the dead vp's
    recycled contexts are unreachable garbage the next scavenge reclaims
    by not copying them.  Counted separately from scavenge flushes. *)
val abandon : t -> unit

(** Call [f] on the list heads: tenured contexts parked here are
    referenced only from the host side, so the incremental old-space
    collector treats the heads as roots (E18). *)
val iter_roots : t -> (Oop.t -> unit) -> unit

val reuses : t -> int

val fresh_allocations : t -> int

(** Number of failure-forced {!abandon} flushes. *)
val abandons : t -> int
