(** The method-lookup cache.

    More than 10 % of bytecodes need a method lookup, so Smalltalk
    implementations lean on software lookup caches.  MS first serialized
    one shared cache behind a two-level lock, found the contention made
    the system "much too slow", and replicated the cache per processor
    instead (paper, section 3.2).  Both variants are provided; caches are
    flushed at every scavenge and whenever a method is (re)installed. *)

type mode =
  | Replicated
  | Shared_locked of Spinlock.t

type table

type t = {
  mode : mode;
  table : table;
  owner : int;  (** owning vp when replicated; -1 = shared *)
  mutable sanitizer : Sanitizer.t option;
  mutable hits : int;
  mutable misses : int;
}

val make_table : unit -> table

(** A private per-processor cache; the sanitizer flags any probe or fill
    from a vp other than [owner]. *)
val create_replicated : ?owner:int -> ?sanitizer:Sanitizer.t -> unit -> t

(** A view of the one shared cache: all interpreters pass [table] and
    [lock]; each keeps its own statistics. *)
val create_shared :
  ?sanitizer:Sanitizer.t -> lock:Spinlock.t -> table:table -> unit -> t

(** Flushes are never owner-checked: the scavenger and the method-install
    broadcast flush every cache cross-processor by design. *)
val flush : t -> unit

(** [probe t ~now ~sel ~cls] looks up the (selector, behaviour) pair,
    returning the completion time (lock time included for the shared
    variant) and the cached method if it hits. *)
val probe :
  ?vp:int -> t -> now:int -> sel:Oop.t -> cls:Oop.t -> int * Oop.t option

val fill :
  ?vp:int -> t -> now:int -> sel:Oop.t -> cls:Oop.t -> meth:Oop.t -> int

val hits : t -> int

val misses : t -> int
