(* The VM side of Smalltalk Process scheduling.

   Smalltalk-80 scheduling is "a priority queue which is examined whenever
   a Semaphore is signalled or a Process manipulation primitive is
   invoked"; MS serializes it with one lock on the queue.  The MS
   reorganization is reproduced here: a Process made active is NOT removed
   from the ready queue — "the ready queue contains all Processes which
   are ready to run including those running" — and only the interpreter
   knows (via the [running_on] slot) whether a Process is running.  The
   [keep_running_in_queue] flag restores the uniprocessor BS behaviour for
   the reorganization ablation.

   Two ready-queue representations are selectable (E16):

   - [Locked] (the paper's design): the ready queue is the
     ProcessorScheduler heap object — an Array of LinkedLists, one per
     priority, with Processes chained through their [next_link] slots —
     and every operation serializes on the single scheduler lock.

   - [Stealing]: each virtual processor owns one deque per priority
     (plain LinkedList heap objects in old space, guarded by that
     processor's deque spinlock).  The owner pushes and pops at the
     front (LIFO, for locality); a thief validates under the victim's
     lock and takes the *last* eligible Process (FIFO — the oldest,
     least cache-warm work).  Victim selection is priority-aware: every
     deque at priority p is considered before any deque at p-1, which
     preserves the Smalltalk-80 invariant that the highest-priority
     ready Process runs.  The global scheduler lock survives for
     Semaphore list surgery, which stays serialized as in the paper.

   Lock discipline: every list operation runs inside the owning lock's
   critical section.  A store that would insert its receiver into the
   entry table is deferred — the address is queued while the queue lock
   is held and the insert is performed under the entry-table lock right
   after the section closes, because MS holds one kernel lock at a time.
   The deferral is invisible to the scavenger: every public operation
   flushes before returning. *)

type strategy = Locked | Stealing

type t = {
  u : Universe.t;
  lock : Spinlock.t;
  entry_lock : Spinlock.t;
  op_cycles : int;              (* cost of one ready-queue operation *)
  remember_cost : int;          (* entry-table insert, under its lock *)
  keep_running_in_queue : bool;
  processors : int;
  strategy : strategy;
  deque_locks : Spinlock.t array; (* per processor; empty when Locked *)
  deques : Oop.t array;     (* processors * priorities; empty when Locked *)
  unlocked_steal : bool;    (* debug: deque ops skip the lock bracket *)
  running : Oop.t array;          (* per processor: process or sentinel *)
  preempt : bool array;           (* per processor: reschedule requested *)
  mutable sanitizer : Sanitizer.t option;
  mutable machine : Machine.t option;  (* for live-processor wake routing *)
  (* the calendar engine's unpark signal: called after every wake and
     failover (the two events that create ready work), so idle processors
     parked on "nothing to run" learn that there is something again *)
  mutable on_ready : (now:int -> unit) option;
  mutable next_home : int;     (* round-robin home for engine-side wakes *)
  mutable pending_remembers : int list;  (* deferred entry-table inserts *)
  mutable wakes : int;
  mutable picks : int;
  mutable preemptions : int;
  mutable failovers : int;  (* processes recovered from crashed processors *)
  mutable local_picks : int;     (* picks satisfied from the own deque *)
  mutable steals : int;          (* picks satisfied from a victim deque *)
  mutable failed_steals : int;   (* steal validations that found nothing *)
  mutable migrations : int;      (* stolen processes re-homed (MS mode) *)
  stolen_from : int array;       (* per victim processor *)
}

let create ?(strategy = Locked) ?(deque_locks = [||]) ?(unlocked_steal = false)
    ~u ~lock ~entry_lock ~op_cycles ~remember_cost ~keep_running_in_queue
    ~processors () =
  let deques =
    match strategy with
    | Locked -> [||]
    | Stealing ->
        if Array.length deque_locks <> processors then
          invalid_arg "Scheduler.create: one deque lock per processor";
        let h = Universe.heap u in
        Array.init
          (processors * Layout.Scheduler.priorities)
          (fun _ ->
            let o =
              Heap.alloc_old h ~slots:Layout.Linked_list.fixed_slots
                ~raw:false ~cls:u.Universe.classes.Universe.linked_list ()
            in
            ignore (Heap.store_ptr h o Layout.Linked_list.first u.Universe.nil);
            ignore (Heap.store_ptr h o Layout.Linked_list.last u.Universe.nil);
            o)
  in
  { u; lock; entry_lock; op_cycles; remember_cost; keep_running_in_queue;
    processors; strategy; deque_locks; deques; unlocked_steal;
    running = Array.make processors Oop.sentinel;
    preempt = Array.make processors false;
    sanitizer = None;
    machine = None;
    on_ready = None;
    next_home = 0;
    pending_remembers = [];
    wakes = 0; picks = 0; preemptions = 0; failovers = 0;
    local_picks = 0; steals = 0; failed_steals = 0; migrations = 0;
    stolen_from = Array.make processors 0 }

let set_sanitizer t san = t.sanitizer <- Some san
let set_machine t m = t.machine <- Some m

(* Install (or clear) the calendar engine's ready-work hook. *)
let set_on_ready t f = t.on_ready <- f

let notify_ready t ~now =
  match t.on_ready with Some f -> f ~now | None -> ()

let heap t = Universe.heap t.u
let nil t = t.u.Universe.nil

let deque_resource owner = "ready deque " ^ string_of_int owner

(* A pointer store into scheduler-guarded heap state.  Reports the mutation
   to the sanitizer under [resource] — "ready queue" for the serialized
   queue and Semaphore lists, "ready deque N" for processor N's deques —
   and defers any entry-table insert (we are inside a queue lock; the
   entry-table lock is taken by [flush_remembers]). *)
let store t ~vp ~resource obj i v =
  let h = heap t in
  (match t.sanitizer with
   | Some san when Sanitizer.checking san ->
       Sanitizer.check_guarded san ~resource ~vp ~now:(-1)
         ~detail:(Printf.sprintf "%d[%d]" (Oop.addr obj) i)
   | _ -> ());
  if Heap.store_would_remember h obj v then
    t.pending_remembers <- Oop.addr obj :: t.pending_remembers;
  (* this bypasses [Heap.store_ptr], so the incremental collector's write
     barrier must be run by hand (E18) *)
  Heap.major_note h v;
  Heap.set_raw h obj i v

(* Perform the deferred entry-table inserts, each under the entry-table
   lock, in queue order.  Returns the advanced completion time. *)
let flush_remembers t ~now ~vp =
  match t.pending_remembers with
  | [] -> now
  | pending ->
      t.pending_remembers <- [];
      let h = heap t in
      List.fold_left
        (fun now a ->
          (* another deferred store (or an earlier flush) may have
             remembered it already *)
          if Heap.is_remembered h a then now
          else
            let finish, () =
              Spinlock.critical ~vp t.entry_lock ~now
                ~op_cycles:t.remember_cost (fun () -> Heap.remember h a)
            in
            finish)
        now (List.rev pending)

(* --- linked lists of Processes (LinkedList and Semaphore share layout) --- *)

let ll_is_empty t list =
  Oop.equal (Heap.get (heap t) list Layout.Linked_list.first) (nil t)

(* The unlocked bodies: callers hold the lock that guards [resource]. *)

let append_unlocked t ~vp ~resource list proc =
  let h = heap t in
  let n = nil t in
  let first = Heap.get h list Layout.Linked_list.first in
  if Oop.equal first n then begin
    store t ~vp ~resource list Layout.Linked_list.first proc;
    store t ~vp ~resource list Layout.Linked_list.last proc
  end
  else begin
    let last = Heap.get h list Layout.Linked_list.last in
    store t ~vp ~resource last Layout.Process.next_link proc;
    store t ~vp ~resource list Layout.Linked_list.last proc
  end;
  store t ~vp ~resource proc Layout.Process.next_link n;
  store t ~vp ~resource proc Layout.Process.my_list list

(* LIFO end of a deque: the owner pushes (and scans) at the front. *)
let push_front_unlocked t ~vp ~resource list proc =
  let n = nil t in
  let first = Heap.get (heap t) list Layout.Linked_list.first in
  store t ~vp ~resource proc Layout.Process.next_link first;
  store t ~vp ~resource proc Layout.Process.my_list list;
  store t ~vp ~resource list Layout.Linked_list.first proc;
  if Oop.equal first n then
    store t ~vp ~resource list Layout.Linked_list.last proc

let pop_first_unlocked t ~vp ~resource list =
  let h = heap t in
  let n = nil t in
  let first = Heap.get h list Layout.Linked_list.first in
  if Oop.equal first n then None
  else begin
    let next = Heap.get h first Layout.Process.next_link in
    store t ~vp ~resource list Layout.Linked_list.first next;
    if Oop.equal next n then store t ~vp ~resource list Layout.Linked_list.last n;
    store t ~vp ~resource first Layout.Process.next_link n;
    store t ~vp ~resource first Layout.Process.my_list n;
    Some first
  end

let remove_unlocked t ~vp ~resource list proc =
  let h = heap t in
  let n = nil t in
  let rec unlink prev cur =
    if Oop.equal cur n then ()
    else if Oop.equal cur proc then begin
      let next = Heap.get h cur Layout.Process.next_link in
      (if Oop.equal prev n then
         store t ~vp ~resource list Layout.Linked_list.first next
       else store t ~vp ~resource prev Layout.Process.next_link next);
      if Oop.equal next n then
        store t ~vp ~resource list Layout.Linked_list.last
          (if Oop.equal prev n then n else prev);
      store t ~vp ~resource proc Layout.Process.next_link n;
      store t ~vp ~resource proc Layout.Process.my_list n
    end
    else unlink cur (Heap.get h cur Layout.Process.next_link)
  in
  unlink n (Heap.get h list Layout.Linked_list.first)

(* Public list surgery: under the scheduler lock, then flush.  Semaphore
   wait lists go through these in both strategies — Semaphores stay
   serialized on the one scheduler lock, as in the paper. *)

let ll_append ?(vp = -1) t ~now list proc =
  let now, () =
    Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
        append_unlocked t ~vp ~resource:"ready queue" list proc)
  in
  flush_remembers t ~now ~vp

let ll_pop_first ?(vp = -1) t ~now list =
  let now, popped =
    Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
        pop_first_unlocked t ~vp ~resource:"ready queue" list)
  in
  (flush_remembers t ~now ~vp, popped)

let ll_remove ?(vp = -1) t ~now list proc =
  let now, () =
    Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
        remove_unlocked t ~vp ~resource:"ready queue" list proc)
  in
  flush_remembers t ~now ~vp

(* --- the ready queue --- *)

let ready_list t priority =
  let h = heap t in
  let lists = Heap.get h t.u.Universe.scheduler Layout.Scheduler.ready_lists in
  Heap.get h lists (priority - 1)

let priority_of t proc =
  Oop.small_val (Heap.get (heap t) proc Layout.Process.priority)

let process_state t proc =
  Oop.small_val (Heap.get (heap t) proc Layout.Process.state)

let set_running_on_u t ~vp ~resource proc vp_opt =
  let v =
    match vp_opt with
    | Some p -> Oop.of_small p
    | None -> nil t
  in
  store t ~vp ~resource proc Layout.Process.running_on v

let set_running_on t proc vp_opt =
  set_running_on_u t ~vp:(-1) ~resource:"ready queue" proc vp_opt

let running_on t proc =
  let v = Heap.get (heap t) proc Layout.Process.running_on in
  if Oop.is_small v then Some (Oop.small_val v) else None

(* --- deques --- *)

let deque t ~owner ~priority =
  t.deques.(owner * Layout.Scheduler.priorities + priority - 1)

(* Which deque (raw index) is this list, if any?  Used to find the lock
   that guards the list a Process is chained into. *)
let deque_index t list =
  if Oop.equal list (nil t) then None
  else begin
    let n = Array.length t.deques in
    let found = ref (-1) in
    for i = 0 to n - 1 do
      if !found < 0 && Oop.equal t.deques.(i) list then found := i
    done;
    if !found < 0 then None else Some !found
  end

let deque_owner_of_index i = i / Layout.Scheduler.priorities
let deque_priority_of_index i = (i mod Layout.Scheduler.priorities) + 1

(* Run [f resource] under [owner]'s deque lock — unless the deliberately
   broken unlocked-steal configuration is active, in which case the
   mutation runs in the open and the sanitizer's guard check fires. *)
let deque_critical t ~vp ~owner ~now f =
  let resource = deque_resource owner in
  if t.unlocked_steal then (now, f resource)
  else
    Spinlock.critical ~vp t.deque_locks.(owner) ~now ~op_cycles:t.op_cycles
      (fun () -> f resource)

(* First runnable, not-running Process from the front (the LIFO end). *)
let first_eligible t list =
  let h = heap t in
  let n = nil t in
  let rec scan cur =
    if Oop.equal cur n then None
    else if
      running_on t cur = None
      && process_state t cur = Layout.Process_state.runnable
    then Some cur
    else scan (Heap.get h cur Layout.Process.next_link)
  in
  scan (Heap.get h list Layout.Linked_list.first)

(* Last runnable, not-running Process — the FIFO end a thief takes from:
   the oldest, least cache-warm work in the victim's deque. *)
let last_eligible t list =
  let h = heap t in
  let n = nil t in
  let best = ref None in
  let rec scan cur =
    if Oop.equal cur n then ()
    else begin
      if
        running_on t cur = None
        && process_state t cur = Layout.Process_state.runnable
      then best := Some cur;
      scan (Heap.get h cur Layout.Process.next_link)
    end
  in
  scan (Heap.get h list Layout.Linked_list.first);
  !best

(* The home deque for a wake: the waking processor's own, or — for
   engine-side wakes (timers, spawns, failover) — round-robin over the
   processors that are still alive, so work is not parked on a corpse. *)
let home_for ?(exclude = -1) t ~vp =
  let live i =
    i <> exclude
    &&
    match t.machine with
    | None -> true
    | Some m -> (Machine.vp m i).Machine.state <> Machine.Halted
  in
  if vp >= 0 && vp < t.processors && live vp then vp
  else begin
    let rec find tries i =
      if tries >= t.processors then (i + 1) mod t.processors
      else if live i then i
      else find (tries + 1) ((i + 1) mod t.processors)
    in
    let h = find 0 (t.next_home mod t.processors) in
    t.next_home <- (h + 1) mod t.processors;
    h
  end

let is_in_ready_queue t proc =
  let list = Heap.get (heap t) proc Layout.Process.my_list in
  if Oop.equal list (nil t) then false
  else
    match t.strategy with
    | Locked -> Oop.equal list (ready_list t (priority_of t proc))
    | Stealing -> (
        match deque_index t list with
        | Some i -> deque_priority_of_index i = priority_of t proc
        | None -> false)

(* --- invariants ---------------------------------------------------------

   Checked after every wake/pick/yield/relinquish when a sanitizer is
   armed: the running table and the Processes' [running_on] slots must
   mirror each other, no Process may run on two processors, every Process
   chained into a ready list or deque must point back at it through
   [my_list] (and sit in a deque of its own priority), and under the MS
   reorganization a running Process stays in the queue. *)

let check_invariants t ~now ~vp =
  match t.sanitizer with
  | Some san when Sanitizer.checking san ->
      let report msg =
        Sanitizer.report_violation san ~vp ~now ~resource:"scheduler" msg
      in
      let h = heap t in
      let n = nil t in
      Array.iteri
        (fun i proc ->
          if not (Oop.equal proc Oop.sentinel) then begin
            (match running_on t proc with
             | Some v when v = i -> ()
             | Some v ->
                 report
                   (Printf.sprintf
                      "running.(%d) holds a process with running_on=%d" i v)
             | None ->
                 report
                   (Printf.sprintf
                      "running.(%d) holds a process with running_on=nil" i));
            for j = 0 to i - 1 do
              if Oop.equal t.running.(j) proc then
                report
                  (Printf.sprintf "process running on both vp %d and vp %d" j
                     i)
            done;
            if t.keep_running_in_queue && not (is_in_ready_queue t proc) then
              report
                (Printf.sprintf
                   "running.(%d) process missing from the ready queue" i)
          end)
        t.running;
      (* Bounded walk of every ready list and deque: back-pointers and
         running_on agreement.  The budget guards against a corrupted
         cyclic chain. *)
      let budget = ref 10_000 in
      let walk list describe check_extra =
        let rec scan cur =
          if Oop.equal cur n || !budget <= 0 then ()
          else begin
            decr budget;
            let ml = Heap.get h cur Layout.Process.my_list in
            if not (Oop.equal ml list) then
              report
                (Printf.sprintf
                   "process %d chained into %s but my_list disagrees"
                   (Oop.addr cur) describe);
            check_extra cur;
            (match running_on t cur with
             | Some v ->
                 if v < 0 || v >= t.processors
                    || not (Oop.equal t.running.(v) cur)
                 then
                   report
                     (Printf.sprintf
                        "ready process %d claims running_on=%d but the \
                         running table disagrees"
                        (Oop.addr cur) v)
             | None -> ());
            scan (Heap.get h cur Layout.Process.next_link)
          end
        in
        scan (Heap.get h list Layout.Linked_list.first)
      in
      for priority = 1 to Layout.Scheduler.priorities do
        walk (ready_list t priority)
          (Printf.sprintf "ready list %d" priority)
          (fun _ -> ())
      done;
      Array.iteri
        (fun i list ->
          let priority = deque_priority_of_index i in
          walk list
            (Printf.sprintf "deque %d/%d" (deque_owner_of_index i) priority)
            (fun cur ->
              if priority_of t cur <> priority then
                report
                  (Printf.sprintf
                     "process %d sits in a priority-%d deque but has \
                      priority %d"
                     (Oop.addr cur) priority (priority_of t cur))))
        t.deques
  | _ -> ()

(* Request a reschedule of the processor running the lowest-priority
   process strictly below [priority], if any.  Equal priority never
   preempts: the paper's rule is strictly-lower only, and flagging a
   peer on a tie would make equal-priority Processes thrash. *)
let request_preemption t ~priority =
  let victim = ref (-1) and worst = ref priority in
  Array.iteri
    (fun vp proc ->
      if not (Oop.equal proc Oop.sentinel) then begin
        let p = priority_of t proc in
        if p < !worst then begin
          worst := p;
          victim := vp
        end
      end)
    t.running;
  if !victim >= 0 then begin
    t.preempt.(!victim) <- true;
    t.preemptions <- t.preemptions + 1
  end

(* Make [proc] ready.  Idempotent when it is already in the ready queue. *)
let wake ?(vp = -1) t ~now proc =
  let now =
    match t.strategy with
    | Locked ->
        let now, () =
          Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
              t.wakes <- t.wakes + 1;
              if not (is_in_ready_queue t proc) then
                append_unlocked t ~vp ~resource:"ready queue"
                  (ready_list t (priority_of t proc))
                  proc;
              request_preemption t ~priority:(priority_of t proc))
        in
        now
    | Stealing ->
        t.wakes <- t.wakes + 1;
        let priority = priority_of t proc in
        let home = home_for t ~vp in
        let now, () =
          deque_critical t ~vp ~owner:home ~now (fun resource ->
              if not (is_in_ready_queue t proc) then
                push_front_unlocked t ~vp ~resource
                  (deque t ~owner:home ~priority)
                  proc)
        in
        (* host-side flags only; needs no heap lock *)
        request_preemption t ~priority;
        now
  in
  let now = flush_remembers t ~now ~vp in
  check_invariants t ~now ~vp;
  notify_ready t ~now;
  now

(* Choose the next Process for processor [vp]: the highest-priority ready
   Process that no processor is currently executing.

   Locked: one scan of the serialized queue under the scheduler lock.

   Stealing: an optimistic unlocked peek walks priorities top-down — own
   deque first at each priority, then the other processors' — and the
   winning deque is then revisited under its lock, where the candidate is
   re-validated before being taken (the peek is advisory; only the locked
   re-scan commits).  The owner takes the first eligible Process (LIFO);
   a thief takes the last (FIFO) and re-homes it under its own lock. *)
let pick t ~now ~vp =
  let now, picked =
    match t.strategy with
    | Locked ->
        Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
            t.picks <- t.picks + 1;
            let h = heap t in
            let n = nil t in
            let found = ref Oop.sentinel in
            let priority = ref Layout.Scheduler.priorities in
            while Oop.equal !found Oop.sentinel && !priority >= 1 do
              let list = ready_list t !priority in
              let rec scan cur =
                if Oop.equal cur n then ()
                else if
                  running_on t cur = None
                  && process_state t cur = Layout.Process_state.runnable
                then found := cur
                else scan (Heap.get h cur Layout.Process.next_link)
              in
              scan (Heap.get h list Layout.Linked_list.first);
              decr priority
            done;
            if Oop.equal !found Oop.sentinel then None
            else begin
              let proc = !found in
              if not t.keep_running_in_queue then
                remove_unlocked t ~vp ~resource:"ready queue"
                  (ready_list t (priority_of t proc))
                  proc;
              set_running_on_u t ~vp ~resource:"ready queue" proc (Some vp);
              t.running.(vp) <- proc;
              Some proc
            end)
    | Stealing ->
        t.picks <- t.picks + 1;
        (* optimistic peek: priority-major, own deque first at each level *)
        let candidate = ref None in
        let priority = ref Layout.Scheduler.priorities in
        while !candidate = None && !priority >= 1 do
          let consider owner =
            if
              !candidate = None
              && first_eligible t (deque t ~owner ~priority:!priority) <> None
            then candidate := Some (owner, !priority)
          in
          consider vp;
          for d = 1 to t.processors - 1 do
            consider ((vp + d) mod t.processors)
          done;
          decr priority
        done;
        (match !candidate with
         | None ->
             (* nothing anywhere: one look at the own (empty) deque is
                still charged, so idle polling has a cost — but on the
                processor's own lock, not a shared one *)
             let now =
               if t.unlocked_steal then now
               else
                 Spinlock.locked_op ~vp t.deque_locks.(vp) ~now
                   ~op_cycles:t.op_cycles
             in
             (now, None)
         | Some (owner, priority) when owner = vp ->
             let now, taken =
               deque_critical t ~vp ~owner ~now (fun resource ->
                   let list = deque t ~owner ~priority in
                   match first_eligible t list with
                   | None -> None
                   | Some proc ->
                       if not t.keep_running_in_queue then
                         remove_unlocked t ~vp ~resource list proc;
                       set_running_on_u t ~vp ~resource proc (Some vp);
                       t.running.(vp) <- proc;
                       Some proc)
             in
             (match taken with
              | Some _ -> t.local_picks <- t.local_picks + 1
              | None -> ());
             (now, taken)
         | Some (owner, priority) ->
             (* steal: validate under the victim's lock, take the oldest *)
             let now, stolen =
               deque_critical t ~vp ~owner ~now (fun resource ->
                   let list = deque t ~owner ~priority in
                   match last_eligible t list with
                   | None -> None
                   | Some proc ->
                       remove_unlocked t ~vp ~resource list proc;
                       Some proc)
             in
             (match stolen with
              | None ->
                  t.failed_steals <- t.failed_steals + 1;
                  (now, None)
              | Some proc ->
                  t.steals <- t.steals + 1;
                  t.stolen_from.(owner) <- t.stolen_from.(owner) + 1;
                  (match t.sanitizer with
                   | Some san ->
                       Sanitizer.steal_event san ~vp ~now
                         ~resource:(deque_resource owner)
                         ~detail:
                           (Printf.sprintf
                              "vp %d stole process %d from vp %d (priority \
                               %d)"
                              vp (Oop.addr proc) owner priority)
                   | None -> ());
                  (* re-home under the thief's own lock *)
                  let now, () =
                    deque_critical t ~vp ~owner:vp ~now (fun resource ->
                        if t.keep_running_in_queue then begin
                          t.migrations <- t.migrations + 1;
                          push_front_unlocked t ~vp ~resource
                            (deque t ~owner:vp ~priority)
                            proc
                        end;
                        set_running_on_u t ~vp ~resource proc (Some vp);
                        t.running.(vp) <- proc)
                  in
                  (now, Some proc)))
  in
  let now = flush_remembers t ~now ~vp in
  check_invariants t ~now ~vp;
  (now, picked)

(* The current Process of [vp] stops running.  [requeue] keeps it ready
   (yield/preemption); otherwise it leaves the ready queue (wait, suspend,
   terminate). *)
let relinquish t ~now ~vp ~requeue proc =
  let now =
    match t.strategy with
    | Locked ->
        let now, () =
          Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
              set_running_on_u t ~vp ~resource:"ready queue" proc None;
              t.running.(vp) <- Oop.sentinel;
              if requeue then begin
                if not (is_in_ready_queue t proc) then
                  append_unlocked t ~vp ~resource:"ready queue"
                    (ready_list t (priority_of t proc))
                    proc
              end
              else if is_in_ready_queue t proc then
                remove_unlocked t ~vp ~resource:"ready queue"
                  (ready_list t (priority_of t proc))
                  proc)
        in
        now
    | Stealing ->
        t.running.(vp) <- Oop.sentinel;
        let ml = Heap.get (heap t) proc Layout.Process.my_list in
        let now, () =
          match deque_index t ml with
          | Some i ->
              (* already chained into some processor's deque: clear the
                 running mark under that deque's lock; drop it from the
                 queue when it is leaving the ready set *)
              deque_critical t ~vp ~owner:(deque_owner_of_index i) ~now
                (fun resource ->
                  set_running_on_u t ~vp ~resource proc None;
                  if not requeue then
                    remove_unlocked t ~vp ~resource t.deques.(i) proc)
          | None ->
              let owner = home_for t ~vp in
              deque_critical t ~vp ~owner ~now (fun resource ->
                  set_running_on_u t ~vp ~resource proc None;
                  if requeue then
                    append_unlocked t ~vp ~resource
                      (deque t ~owner ~priority:(priority_of t proc))
                      proc)
        in
        now
  in
  let now = flush_remembers t ~now ~vp in
  check_invariants t ~now ~vp;
  now

(* Recover the Process that was running on a crashed processor.  The
   engine (not any vp) takes the queue lock, stores the Process's
   current context back into [suspended_context] — coherent even
   mid-method, because pc and sp write through to the heap at every
   step — detaches it from the dead processor and returns it to the
   ready queue, where any surviving processor can pick it up.  A victim
   already chained into a ready list or deque is left where it is — a
   second enqueue would corrupt the chain — and a Process stranded in
   the dead owner's deque stays stealable, because victim selection
   scans every deque, the dead owner's included.  If the dead processor
   crashed while *holding* the queue lock, this acquire is exactly what
   the spin watchdog catches. *)
let failover t ~now ~dead proc ctx =
  let now =
    match t.strategy with
    | Locked ->
        let now, () =
          Spinlock.critical ~vp:(-1) t.lock ~now ~op_cycles:t.op_cycles
            (fun () ->
              t.failovers <- t.failovers + 1;
              store t ~vp:(-1) ~resource:"ready queue" proc
                Layout.Process.suspended_context ctx;
              set_running_on_u t ~vp:(-1) ~resource:"ready queue" proc None;
              t.running.(dead) <- Oop.sentinel;
              if not (is_in_ready_queue t proc) then
                append_unlocked t ~vp:(-1) ~resource:"ready queue"
                  (ready_list t (priority_of t proc))
                  proc;
              (* as [wake] does: without this, a recovered Process of higher
                 priority would sit in the queue forever while the survivors
                 run background work that never yields *)
              request_preemption t ~priority:(priority_of t proc))
        in
        now
    | Stealing ->
        t.failovers <- t.failovers + 1;
        t.running.(dead) <- Oop.sentinel;
        let ml = Heap.get (heap t) proc Layout.Process.my_list in
        let now, () =
          match deque_index t ml with
          | Some i ->
              (* already queued (MS keeps running Processes in their
                 deque): leave it in place — survivors steal it from the
                 dead owner's deque *)
              deque_critical t ~vp:(-1) ~owner:(deque_owner_of_index i) ~now
                (fun resource ->
                  store t ~vp:(-1) ~resource proc
                    Layout.Process.suspended_context ctx;
                  set_running_on_u t ~vp:(-1) ~resource proc None)
          | None ->
              let owner = home_for ~exclude:dead t ~vp:(-1) in
              deque_critical t ~vp:(-1) ~owner ~now (fun resource ->
                  store t ~vp:(-1) ~resource proc
                    Layout.Process.suspended_context ctx;
                  push_front_unlocked t ~vp:(-1) ~resource
                    (deque t ~owner ~priority:(priority_of t proc))
                    proc;
                  set_running_on_u t ~vp:(-1) ~resource proc None)
        in
        request_preemption t ~priority:(priority_of t proc);
        now
  in
  let now = flush_remembers t ~now ~vp:(-1) in
  check_invariants t ~now ~vp:(-1);
  notify_ready t ~now;
  now

let failovers t = t.failovers

(* Move the current Process to the back of its priority list: equal-
   priority peers run first, and in stealing mode the back is also the
   steal-preferred FIFO end, so a yielded Process is the first work a
   hungry processor takes. *)
let yield t ~now ~vp proc =
  let now =
    match t.strategy with
    | Locked ->
        let now, () =
          Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
              let list = ready_list t (priority_of t proc) in
              if is_in_ready_queue t proc then
                remove_unlocked t ~vp ~resource:"ready queue" list proc;
              append_unlocked t ~vp ~resource:"ready queue" list proc;
              set_running_on_u t ~vp ~resource:"ready queue" proc None;
              t.running.(vp) <- Oop.sentinel)
        in
        now
    | Stealing ->
        t.running.(vp) <- Oop.sentinel;
        let priority = priority_of t proc in
        let ml = Heap.get (heap t) proc Layout.Process.my_list in
        let now =
          match deque_index t ml with
          | Some i when deque_owner_of_index i = vp ->
              let now, () =
                deque_critical t ~vp ~owner:vp ~now (fun resource ->
                    remove_unlocked t ~vp ~resource t.deques.(i) proc;
                    append_unlocked t ~vp ~resource
                      (deque t ~owner:vp ~priority)
                      proc;
                    set_running_on_u t ~vp ~resource proc None)
              in
              now
          | Some i ->
              (* chained into another processor's deque: unlink under
                 that lock, then re-queue at home under our own *)
              let now, () =
                deque_critical t ~vp ~owner:(deque_owner_of_index i) ~now
                  (fun resource ->
                    remove_unlocked t ~vp ~resource t.deques.(i) proc)
              in
              let now, () =
                deque_critical t ~vp ~owner:vp ~now (fun resource ->
                    append_unlocked t ~vp ~resource
                      (deque t ~owner:vp ~priority)
                      proc;
                    set_running_on_u t ~vp ~resource proc None)
              in
              now
          | None ->
              let now, () =
                deque_critical t ~vp ~owner:vp ~now (fun resource ->
                    append_unlocked t ~vp ~resource
                      (deque t ~owner:vp ~priority)
                      proc;
                    set_running_on_u t ~vp ~resource proc None)
              in
              now
        in
        now
  in
  let now = flush_remembers t ~now ~vp in
  check_invariants t ~now ~vp;
  now

(* Remove a Process from whatever ready structure holds it: the
   serialized queue, or — stealing — the deque its [my_list] names,
   under that deque's lock.  Suspend, terminate and priority changes go
   through this, because another processor's wake may have homed the
   Process on any deque. *)
let remove_from_ready ?(vp = -1) t ~now proc =
  match t.strategy with
  | Locked -> ll_remove ~vp t ~now (ready_list t (priority_of t proc)) proc
  | Stealing -> (
      let ml = Heap.get (heap t) proc Layout.Process.my_list in
      match deque_index t ml with
      | None -> now
      | Some i ->
          let now, () =
            deque_critical t ~vp ~owner:(deque_owner_of_index i) ~now
              (fun resource ->
                remove_unlocked t ~vp ~resource t.deques.(i) proc)
          in
          let now = flush_remembers t ~now ~vp in
          check_invariants t ~now ~vp;
          now)

(* The lock a processor's periodic scheduling check touches: the shared
   scheduler lock, or — stealing — the processor's own deque lock, so
   the check does not serialize every running processor. *)
let sched_check_lock t ~vp =
  match t.strategy with
  | Locked -> t.lock
  | Stealing -> t.deque_locks.(vp)

(* A preemption demanded from outside the priority machinery — the
   schedule explorer's forced-preemption decision.  The flag is honoured
   (and cleared) at the processor's next scheduling check like any
   priority-driven request. *)
let force_preempt t ~vp =
  if vp >= 0 && vp < t.processors && not t.preempt.(vp) then begin
    t.preempt.(vp) <- true;
    t.preemptions <- t.preemptions + 1
  end

let take_preempt_flag t vp =
  if t.preempt.(vp) then begin
    t.preempt.(vp) <- false;
    true
  end
  else false

(* Is there a ready, not-running Process with priority strictly above
   [p]?  A tie is not better: preemption is strictly-lower only. *)
let better_ready t ~than:p =
  let h = heap t in
  let n = nil t in
  let eligible_in list =
    let rec scan cur =
      if Oop.equal cur n then false
      else if
        running_on t cur = None
        && process_state t cur = Layout.Process_state.runnable
      then true
      else scan (Heap.get h cur Layout.Process.next_link)
    in
    scan (Heap.get h list Layout.Linked_list.first)
  in
  let rec check priority =
    if priority <= p then false
    else
      let found =
        match t.strategy with
        | Locked -> eligible_in (ready_list t priority)
        | Stealing ->
            let any = ref false in
            for owner = 0 to t.processors - 1 do
              if (not !any) && eligible_in (deque t ~owner ~priority) then
                any := true
            done;
            !any
      in
      if found then true else check (priority - 1)
  in
  check Layout.Scheduler.priorities

(* The stealing deques live in old space but are referenced only from the
   host-side array, and the running table can hold the sole reference to
   a Process mid-handoff: both are roots for the incremental old-space
   collector (E18). *)
let iter_roots t f =
  Array.iter f t.deques;
  Array.iter f t.running

(* --- counters --- *)

let local_picks t = t.local_picks
let steals t = t.steals
let failed_steals t = t.failed_steals
let migrations t = t.migrations
let stolen_from t = Array.copy t.stolen_from
