(* The VM side of Smalltalk Process scheduling.

   Smalltalk-80 scheduling is "a priority queue which is examined whenever
   a Semaphore is signalled or a Process manipulation primitive is
   invoked"; MS serializes it with one lock on the queue.  The MS
   reorganization is reproduced here: a Process made active is NOT removed
   from the ready queue — "the ready queue contains all Processes which
   are ready to run including those running" — and only the interpreter
   knows (via the [running_on] slot) whether a Process is running.  The
   [keep_running_in_queue] flag restores the uniprocessor BS behaviour for
   the reorganization ablation.

   The ready queue itself is the ProcessorScheduler heap object: an Array
   of LinkedLists, one per priority, with Processes chained through their
   [next_link] slots — fully visible at the Smalltalk level, exactly the
   exposure the paper worries about.

   Lock discipline: every list operation runs inside the scheduler lock's
   critical section.  A store that would insert its receiver into the
   entry table is deferred — the address is queued while the scheduler
   lock is held and the insert is performed under the entry-table lock
   right after the section closes, because MS holds one kernel lock at a
   time.  The deferral is invisible to the scavenger: every public
   operation flushes before returning. *)

type t = {
  u : Universe.t;
  lock : Spinlock.t;
  entry_lock : Spinlock.t;
  op_cycles : int;              (* cost of one ready-queue operation *)
  remember_cost : int;          (* entry-table insert, under its lock *)
  keep_running_in_queue : bool;
  processors : int;
  running : Oop.t array;          (* per processor: process or sentinel *)
  preempt : bool array;           (* per processor: reschedule requested *)
  mutable sanitizer : Sanitizer.t option;
  mutable pending_remembers : int list;  (* deferred entry-table inserts *)
  mutable wakes : int;
  mutable picks : int;
  mutable preemptions : int;
  mutable failovers : int;  (* processes recovered from crashed processors *)
}

let create ~u ~lock ~entry_lock ~op_cycles ~remember_cost
    ~keep_running_in_queue ~processors =
  { u; lock; entry_lock; op_cycles; remember_cost; keep_running_in_queue;
    processors;
    running = Array.make processors Oop.sentinel;
    preempt = Array.make processors false;
    sanitizer = None;
    pending_remembers = [];
    wakes = 0; picks = 0; preemptions = 0; failovers = 0 }

let set_sanitizer t san = t.sanitizer <- Some san

let heap t = Universe.heap t.u
let nil t = t.u.Universe.nil

(* A pointer store into scheduler-guarded heap state.  Reports the mutation
   to the sanitizer, defers any entry-table insert (we are inside the
   scheduler lock; the entry-table lock is taken by [flush_remembers]). *)
let store t ~vp obj i v =
  let h = heap t in
  (match t.sanitizer with
   | Some san when Sanitizer.checking san ->
       Sanitizer.check_guarded san ~resource:"ready queue" ~vp ~now:(-1)
         ~detail:(Printf.sprintf "%d[%d]" (Oop.addr obj) i)
   | _ -> ());
  if Heap.store_would_remember h obj v then
    t.pending_remembers <- Oop.addr obj :: t.pending_remembers;
  Heap.set_raw h obj i v

(* Perform the deferred entry-table inserts, each under the entry-table
   lock, in queue order.  Returns the advanced completion time. *)
let flush_remembers t ~now ~vp =
  match t.pending_remembers with
  | [] -> now
  | pending ->
      t.pending_remembers <- [];
      let h = heap t in
      List.fold_left
        (fun now a ->
          (* another deferred store (or an earlier flush) may have
             remembered it already *)
          if Heap.is_remembered h a then now
          else
            let finish, () =
              Spinlock.critical ~vp t.entry_lock ~now
                ~op_cycles:t.remember_cost (fun () -> Heap.remember h a)
            in
            finish)
        now (List.rev pending)

(* --- linked lists of Processes (LinkedList and Semaphore share layout) --- *)

let ll_is_empty t list =
  Oop.equal (Heap.get (heap t) list Layout.Linked_list.first) (nil t)

(* The unlocked bodies: callers hold the scheduler lock. *)

let append_unlocked t ~vp list proc =
  let h = heap t in
  let n = nil t in
  let first = Heap.get h list Layout.Linked_list.first in
  if Oop.equal first n then begin
    store t ~vp list Layout.Linked_list.first proc;
    store t ~vp list Layout.Linked_list.last proc
  end
  else begin
    let last = Heap.get h list Layout.Linked_list.last in
    store t ~vp last Layout.Process.next_link proc;
    store t ~vp list Layout.Linked_list.last proc
  end;
  store t ~vp proc Layout.Process.next_link n;
  store t ~vp proc Layout.Process.my_list list

let pop_first_unlocked t ~vp list =
  let h = heap t in
  let n = nil t in
  let first = Heap.get h list Layout.Linked_list.first in
  if Oop.equal first n then None
  else begin
    let next = Heap.get h first Layout.Process.next_link in
    store t ~vp list Layout.Linked_list.first next;
    if Oop.equal next n then store t ~vp list Layout.Linked_list.last n;
    store t ~vp first Layout.Process.next_link n;
    store t ~vp first Layout.Process.my_list n;
    Some first
  end

let remove_unlocked t ~vp list proc =
  let h = heap t in
  let n = nil t in
  let rec unlink prev cur =
    if Oop.equal cur n then ()
    else if Oop.equal cur proc then begin
      let next = Heap.get h cur Layout.Process.next_link in
      (if Oop.equal prev n then store t ~vp list Layout.Linked_list.first next
       else store t ~vp prev Layout.Process.next_link next);
      if Oop.equal next n then
        store t ~vp list Layout.Linked_list.last
          (if Oop.equal prev n then n else prev);
      store t ~vp proc Layout.Process.next_link n;
      store t ~vp proc Layout.Process.my_list n
    end
    else unlink cur (Heap.get h cur Layout.Process.next_link)
  in
  unlink n (Heap.get h list Layout.Linked_list.first)

(* Public list surgery: under the scheduler lock, then flush. *)

let ll_append ?(vp = -1) t ~now list proc =
  let now, () =
    Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
        append_unlocked t ~vp list proc)
  in
  flush_remembers t ~now ~vp

let ll_pop_first ?(vp = -1) t ~now list =
  let now, popped =
    Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
        pop_first_unlocked t ~vp list)
  in
  (flush_remembers t ~now ~vp, popped)

let ll_remove ?(vp = -1) t ~now list proc =
  let now, () =
    Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
        remove_unlocked t ~vp list proc)
  in
  flush_remembers t ~now ~vp

(* --- the ready queue --- *)

let ready_list t priority =
  let h = heap t in
  let lists = Heap.get h t.u.Universe.scheduler Layout.Scheduler.ready_lists in
  Heap.get h lists (priority - 1)

let priority_of t proc =
  Oop.small_val (Heap.get (heap t) proc Layout.Process.priority)

let process_state t proc =
  Oop.small_val (Heap.get (heap t) proc Layout.Process.state)

let set_running_on_u t ~vp proc vp_opt =
  let v =
    match vp_opt with
    | Some p -> Oop.of_small p
    | None -> nil t
  in
  store t ~vp proc Layout.Process.running_on v

let set_running_on t proc vp_opt = set_running_on_u t ~vp:(-1) proc vp_opt

let running_on t proc =
  let v = Heap.get (heap t) proc Layout.Process.running_on in
  if Oop.is_small v then Some (Oop.small_val v) else None

let is_in_ready_queue t proc =
  let list = Heap.get (heap t) proc Layout.Process.my_list in
  not (Oop.equal list (nil t))
  && Oop.equal list (ready_list t (priority_of t proc))

(* --- invariants ---------------------------------------------------------

   Checked after every wake/pick/yield/relinquish when a sanitizer is
   armed: the running table and the Processes' [running_on] slots must
   mirror each other, no Process may run on two processors, every Process
   chained into a ready list must point back at it through [my_list], and
   under the MS reorganization a running Process stays in the queue. *)

let check_invariants t ~now ~vp =
  match t.sanitizer with
  | Some san when Sanitizer.checking san ->
      let report msg =
        Sanitizer.report_violation san ~vp ~now ~resource:"scheduler" msg
      in
      let h = heap t in
      let n = nil t in
      Array.iteri
        (fun i proc ->
          if not (Oop.equal proc Oop.sentinel) then begin
            (match running_on t proc with
             | Some v when v = i -> ()
             | Some v ->
                 report
                   (Printf.sprintf
                      "running.(%d) holds a process with running_on=%d" i v)
             | None ->
                 report
                   (Printf.sprintf
                      "running.(%d) holds a process with running_on=nil" i));
            for j = 0 to i - 1 do
              if Oop.equal t.running.(j) proc then
                report
                  (Printf.sprintf "process running on both vp %d and vp %d" j
                     i)
            done;
            if t.keep_running_in_queue && not (is_in_ready_queue t proc) then
              report
                (Printf.sprintf
                   "running.(%d) process missing from the ready queue" i)
          end)
        t.running;
      (* Bounded walk of every ready list: back-pointers and running_on
         agreement.  The budget guards against a corrupted cyclic chain. *)
      let budget = ref 10_000 in
      for priority = 1 to Layout.Scheduler.priorities do
        let list = ready_list t priority in
        let rec scan cur =
          if Oop.equal cur n || !budget <= 0 then ()
          else begin
            decr budget;
            let ml = Heap.get h cur Layout.Process.my_list in
            if not (Oop.equal ml list) then
              report
                (Printf.sprintf
                   "process %d chained into ready list %d but my_list \
                    disagrees"
                   (Oop.addr cur) priority);
            (match running_on t cur with
             | Some v ->
                 if v < 0 || v >= t.processors
                    || not (Oop.equal t.running.(v) cur)
                 then
                   report
                     (Printf.sprintf
                        "ready process %d claims running_on=%d but the \
                         running table disagrees"
                        (Oop.addr cur) v)
             | None -> ());
            scan (Heap.get h cur Layout.Process.next_link)
          end
        in
        scan (Heap.get h list Layout.Linked_list.first)
      done
  | _ -> ()

(* Request a reschedule of the processor running the lowest-priority
   process below [priority], if any. *)
let request_preemption t ~priority =
  let victim = ref (-1) and worst = ref priority in
  Array.iteri
    (fun vp proc ->
      if not (Oop.equal proc Oop.sentinel) then begin
        let p = priority_of t proc in
        if p < !worst then begin
          worst := p;
          victim := vp
        end
      end)
    t.running;
  if !victim >= 0 then begin
    t.preempt.(!victim) <- true;
    t.preemptions <- t.preemptions + 1
  end

(* Make [proc] ready.  Idempotent when it is already in the ready queue. *)
let wake ?(vp = -1) t ~now proc =
  let now, () =
    Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
        t.wakes <- t.wakes + 1;
        if not (is_in_ready_queue t proc) then
          append_unlocked t ~vp (ready_list t (priority_of t proc)) proc;
        request_preemption t ~priority:(priority_of t proc))
  in
  let now = flush_remembers t ~now ~vp in
  check_invariants t ~now ~vp;
  now

(* Choose the next Process for processor [vp]: the highest-priority ready
   Process that no processor is currently executing. *)
let pick t ~now ~vp =
  let now, picked =
    Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
        t.picks <- t.picks + 1;
        let h = heap t in
        let n = nil t in
        let found = ref Oop.sentinel in
        let priority = ref Layout.Scheduler.priorities in
        while Oop.equal !found Oop.sentinel && !priority >= 1 do
          let list = ready_list t !priority in
          let rec scan cur =
            if Oop.equal cur n then ()
            else if
              running_on t cur = None
              && process_state t cur = Layout.Process_state.runnable
            then found := cur
            else scan (Heap.get h cur Layout.Process.next_link)
          in
          scan (Heap.get h list Layout.Linked_list.first);
          decr priority
        done;
        if Oop.equal !found Oop.sentinel then None
        else begin
          let proc = !found in
          if not t.keep_running_in_queue then
            remove_unlocked t ~vp (ready_list t (priority_of t proc)) proc;
          set_running_on_u t ~vp proc (Some vp);
          t.running.(vp) <- proc;
          Some proc
        end)
  in
  let now = flush_remembers t ~now ~vp in
  check_invariants t ~now ~vp;
  (now, picked)

(* The current Process of [vp] stops running.  [requeue] keeps it ready
   (yield/preemption); otherwise it leaves the ready queue (wait, suspend,
   terminate). *)
let relinquish t ~now ~vp ~requeue proc =
  let now, () =
    Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
        set_running_on_u t ~vp proc None;
        t.running.(vp) <- Oop.sentinel;
        if requeue then begin
          if not (is_in_ready_queue t proc) then
            append_unlocked t ~vp (ready_list t (priority_of t proc)) proc
        end
        else if is_in_ready_queue t proc then
          remove_unlocked t ~vp (ready_list t (priority_of t proc)) proc)
  in
  let now = flush_remembers t ~now ~vp in
  check_invariants t ~now ~vp;
  now

(* Recover the Process that was running on a crashed processor.  The
   engine (not any vp) takes the scheduler lock, stores the Process's
   current context back into [suspended_context] — coherent even
   mid-method, because pc and sp write through to the heap at every
   step — detaches it from the dead processor and returns it to the
   ready queue, where any surviving processor can pick it up.  If the
   dead processor crashed while *holding* the scheduler lock, this
   acquire is exactly what the spin watchdog catches. *)
let failover t ~now ~dead proc ctx =
  let now, () =
    Spinlock.critical ~vp:(-1) t.lock ~now ~op_cycles:t.op_cycles (fun () ->
        t.failovers <- t.failovers + 1;
        store t ~vp:(-1) proc Layout.Process.suspended_context ctx;
        set_running_on_u t ~vp:(-1) proc None;
        t.running.(dead) <- Oop.sentinel;
        if not (is_in_ready_queue t proc) then
          append_unlocked t ~vp:(-1) (ready_list t (priority_of t proc)) proc;
        (* as [wake] does: without this, a recovered Process of higher
           priority would sit in the queue forever while the survivors
           run background work that never yields *)
        request_preemption t ~priority:(priority_of t proc))
  in
  let now = flush_remembers t ~now ~vp:(-1) in
  check_invariants t ~now ~vp:(-1);
  now

let failovers t = t.failovers

(* Move the current Process to the back of its priority list. *)
let yield t ~now ~vp proc =
  let now, () =
    Spinlock.critical ~vp t.lock ~now ~op_cycles:t.op_cycles (fun () ->
        let list = ready_list t (priority_of t proc) in
        if is_in_ready_queue t proc then remove_unlocked t ~vp list proc;
        append_unlocked t ~vp list proc;
        set_running_on_u t ~vp proc None;
        t.running.(vp) <- Oop.sentinel)
  in
  let now = flush_remembers t ~now ~vp in
  check_invariants t ~now ~vp;
  now

(* A preemption demanded from outside the priority machinery — the
   schedule explorer's forced-preemption decision.  The flag is honoured
   (and cleared) at the processor's next scheduling check like any
   priority-driven request. *)
let force_preempt t ~vp =
  if vp >= 0 && vp < t.processors && not t.preempt.(vp) then begin
    t.preempt.(vp) <- true;
    t.preemptions <- t.preemptions + 1
  end

let take_preempt_flag t vp =
  if t.preempt.(vp) then begin
    t.preempt.(vp) <- false;
    true
  end
  else false

(* Is there a ready, not-running Process with priority above [p]? *)
let better_ready t ~than:p =
  let h = heap t in
  let n = nil t in
  let rec check priority =
    if priority <= p then false
    else begin
      let list = ready_list t priority in
      let rec scan cur =
        if Oop.equal cur n then false
        else if
          running_on t cur = None
          && process_state t cur = Layout.Process_state.runnable
        then true
        else scan (Heap.get h cur Layout.Process.next_link)
      in
      if scan (Heap.get h list Layout.Linked_list.first) then true
      else check (priority - 1)
    end
  in
  check Layout.Scheduler.priorities
