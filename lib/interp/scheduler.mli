(** The VM side of Smalltalk Process scheduling.

    Smalltalk-80 scheduling is a priority queue examined whenever a
    Semaphore is signalled or a Process primitive runs; MS serializes it
    with one lock.  The MS reorganization is reproduced: a Process made
    active is {e not} removed from the ready queue — "the ready queue
    contains all Processes which are ready to run including those
    running" — and only the interpreter knows (via the [running_on] slot)
    whether a Process is running.  [keep_running_in_queue = false]
    restores the uniprocessor BS behaviour for the ablation.

    Two representations are selectable (E16).  [Locked] is the paper's
    serialized queue: the ProcessorScheduler heap object, an Array of
    LinkedLists with Processes chained through their [next_link] slots,
    fully visible at the Smalltalk level.  [Stealing] gives each virtual
    processor a deque per priority, guarded by that processor's spinlock:
    owners push and pop at the front (LIFO), thieves validate under the
    victim's lock and take the last eligible Process (FIFO), and victim
    selection is priority-aware so the highest-priority ready Process
    still runs.  Semaphore wait lists stay serialized on the scheduler
    lock in both modes.

    Every list operation runs inside the owning lock's critical section;
    stores that must insert their receiver into the entry table defer the
    insert and perform it under the entry-table lock right after the
    section closes (MS holds one kernel lock at a time). *)

(** Ready-queue representation: the paper's single serialized queue, or
    per-processor deques with work stealing (E16). *)
type strategy = Locked | Stealing

type t = {
  u : Universe.t;
  lock : Spinlock.t;
  entry_lock : Spinlock.t;  (** for deferred entry-table inserts *)
  op_cycles : int;  (** cost of one ready-queue operation *)
  remember_cost : int;  (** entry-table insert, under its lock *)
  keep_running_in_queue : bool;
  processors : int;
  strategy : strategy;
  deque_locks : Spinlock.t array;
      (** per processor; empty when [Locked] *)
  deques : Oop.t array;
      (** [processors * priorities] LinkedLists; empty when [Locked] *)
  unlocked_steal : bool;
      (** debug: deque operations skip the lock bracket, for the
          sanitizer to catch *)
  running : Oop.t array;  (** per processor: process or sentinel *)
  preempt : bool array;  (** per processor: reschedule requested *)
  mutable sanitizer : Sanitizer.t option;
  mutable machine : Machine.t option;
      (** for live-processor wake routing *)
  mutable on_ready : (now:int -> unit) option;
      (** calendar-engine hook: ready work appeared (wake/failover) *)
  mutable next_home : int;
      (** round-robin home for engine-side wakes *)
  mutable pending_remembers : int list;
  mutable wakes : int;
  mutable picks : int;
  mutable preemptions : int;
  mutable failovers : int;
      (** processes recovered from crashed processors *)
  mutable local_picks : int;  (** picks satisfied from the own deque *)
  mutable steals : int;  (** picks satisfied from a victim deque *)
  mutable failed_steals : int;
      (** steal validations that found nothing to take *)
  mutable migrations : int;  (** stolen processes re-homed (MS mode) *)
  stolen_from : int array;  (** per victim processor *)
}

(** [create] builds a scheduler.  With [~strategy:Stealing], exactly one
    deque lock per processor must be supplied and the per-processor
    deques are allocated in old space; [~unlocked_steal:true] makes the
    deque operations run outside their lock brackets — a deliberately
    broken protocol for the sanitizer to catch. *)
val create :
  ?strategy:strategy ->
  ?deque_locks:Spinlock.t array ->
  ?unlocked_steal:bool ->
  u:Universe.t ->
  lock:Spinlock.t ->
  entry_lock:Spinlock.t ->
  op_cycles:int ->
  remember_cost:int ->
  keep_running_in_queue:bool ->
  processors:int ->
  unit ->
  t

val set_sanitizer : t -> Sanitizer.t -> unit

(** Attach the machine so engine-side wakes and failover can route work
    to processors that are still alive. *)
val set_machine : t -> Machine.t -> unit

(** Install (or clear) the calendar engine's ready-work hook: called
    after every wake and failover — the two events that create ready
    work — so processors parked on "nothing to run" can be unparked. *)
val set_on_ready : t -> (now:int -> unit) option -> unit

(** {2 Linked lists of Processes (LinkedList and Semaphore share layout)}

    The mutating operations take the scheduler lock, advance virtual time
    from [now] and return the completion time; [vp] is the acting
    processor (default [-1], the engine). *)

val ll_is_empty : t -> Oop.t -> bool

val ll_append : ?vp:int -> t -> now:int -> Oop.t -> Oop.t -> int

val ll_pop_first : ?vp:int -> t -> now:int -> Oop.t -> int * Oop.t option

val ll_remove : ?vp:int -> t -> now:int -> Oop.t -> Oop.t -> int

(** {2 The ready queue} *)

val ready_list : t -> int -> Oop.t

(** The [owner] processor's ready deque for [priority] ([Stealing]). *)
val deque : t -> owner:int -> priority:int -> Oop.t

val priority_of : t -> Oop.t -> int

val process_state : t -> Oop.t -> int

val set_running_on : t -> Oop.t -> int option -> unit

val running_on : t -> Oop.t -> int option

val is_in_ready_queue : t -> Oop.t -> bool

(** Flag the processor running the lowest-priority Process {e strictly}
    below the given priority for rescheduling; a priority tie never
    preempts. *)
val request_preemption : t -> priority:int -> unit

(** Make a Process ready (idempotent); may request preemption.  Returns
    the completion time of the locked operation.  Stealing: the Process
    is pushed on the waking processor's own deque (engine-side wakes
    round-robin over live processors). *)
val wake : ?vp:int -> t -> now:int -> Oop.t -> int

(** Choose the next Process for a processor: the highest-priority ready
    Process no processor is currently executing.  Stealing: the own
    deque is preferred at each priority; otherwise the candidate is
    re-validated under the victim's lock and the oldest eligible Process
    is taken. *)
val pick : t -> now:int -> vp:int -> int * Oop.t option

(** The processor's current Process stops running; [requeue] keeps it
    ready (yield, preemption) rather than removing it (wait, suspend,
    terminate). *)
val relinquish : t -> now:int -> vp:int -> requeue:bool -> Oop.t -> int

(** Move the current Process to the back of its priority list. *)
val yield : t -> now:int -> vp:int -> Oop.t -> int

(** Remove a Process from whatever ready structure holds it — the
    serialized queue, or the deque its [my_list] names, under that
    deque's lock.  No-op if it is not queued. *)
val remove_from_ready : ?vp:int -> t -> now:int -> Oop.t -> int

(** [failover t ~now ~dead proc ctx] recovers the Process that was
    running on crashed processor [dead]: the engine takes the queue
    lock, stores [ctx] back into the Process's [suspended_context] slot
    (coherent even mid-method — pc and sp write through to the heap at
    every step), detaches it from the dead processor and returns it to
    the ready set for any survivor to pick up.  A victim already chained
    into a ready list or deque is left in place — never enqueued twice —
    and a Process stranded in the dead owner's deque stays stealable.
    If the dead processor crashed {e holding} the queue lock, this
    acquire is what the spin watchdog catches.  Returns the completion
    time. *)
val failover : t -> now:int -> dead:int -> Oop.t -> Oop.t -> int

(** Number of {!failover} recoveries performed. *)
val failovers : t -> int

(** The lock the processor's periodic scheduling check touches: the
    shared scheduler lock, or (stealing) the processor's own deque
    lock. *)
val sched_check_lock : t -> vp:int -> Spinlock.t

(** Flag one specific processor for rescheduling regardless of
    priorities — the schedule explorer's forced-preemption decision. *)
val force_preempt : t -> vp:int -> unit

(** Read and clear the processor's preemption flag. *)
val take_preempt_flag : t -> int -> bool

(** Is a ready, not-running Process of {e strictly} higher priority
    available? *)
val better_ready : t -> than:int -> bool

(** {2 Work-stealing counters} *)

(** Call [f] on every stealing deque and running-table entry: both are
    referenced only from the host side, so the incremental old-space
    collector treats them as roots (E18). *)
val iter_roots : t -> (Oop.t -> unit) -> unit

val local_picks : t -> int
val steals : t -> int
val failed_steals : t -> int
val migrations : t -> int
val stolen_from : t -> int array

(** Check the scheduler invariants against an attached, armed sanitizer:
    [running] mirrors [running_on], no Process on two processors,
    [my_list] back-pointers agree with chain membership (and with the
    deque's priority band), and (under the MS reorganization) running
    Processes stay in the ready queue.  Violations are reported as
    resource "scheduler". *)
val check_invariants : t -> now:int -> vp:int -> unit
