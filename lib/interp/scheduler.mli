(** The VM side of Smalltalk Process scheduling.

    Smalltalk-80 scheduling is a priority queue examined whenever a
    Semaphore is signalled or a Process primitive runs; MS serializes it
    with one lock.  The MS reorganization is reproduced: a Process made
    active is {e not} removed from the ready queue — "the ready queue
    contains all Processes which are ready to run including those
    running" — and only the interpreter knows (via the [running_on] slot)
    whether a Process is running.  [keep_running_in_queue = false]
    restores the uniprocessor BS behaviour for the ablation.

    The ready queue itself is the ProcessorScheduler heap object: an
    Array of LinkedLists with Processes chained through their [next_link]
    slots, fully visible at the Smalltalk level — exactly the exposure the
    paper worries about.

    Every list operation runs inside the scheduler lock's critical
    section; stores that must insert their receiver into the entry table
    defer the insert and perform it under the entry-table lock right after
    the section closes (MS holds one kernel lock at a time). *)

type t = {
  u : Universe.t;
  lock : Spinlock.t;
  entry_lock : Spinlock.t;  (** for deferred entry-table inserts *)
  op_cycles : int;  (** cost of one ready-queue operation *)
  remember_cost : int;  (** entry-table insert, under its lock *)
  keep_running_in_queue : bool;
  processors : int;
  running : Oop.t array;  (** per processor: process or sentinel *)
  preempt : bool array;  (** per processor: reschedule requested *)
  mutable sanitizer : Sanitizer.t option;
  mutable pending_remembers : int list;
  mutable wakes : int;
  mutable picks : int;
  mutable preemptions : int;
  mutable failovers : int;
      (** processes recovered from crashed processors *)
}

val create :
  u:Universe.t ->
  lock:Spinlock.t ->
  entry_lock:Spinlock.t ->
  op_cycles:int ->
  remember_cost:int ->
  keep_running_in_queue:bool ->
  processors:int ->
  t

val set_sanitizer : t -> Sanitizer.t -> unit

(** {2 Linked lists of Processes (LinkedList and Semaphore share layout)}

    The mutating operations take the scheduler lock, advance virtual time
    from [now] and return the completion time; [vp] is the acting
    processor (default [-1], the engine). *)

val ll_is_empty : t -> Oop.t -> bool

val ll_append : ?vp:int -> t -> now:int -> Oop.t -> Oop.t -> int

val ll_pop_first : ?vp:int -> t -> now:int -> Oop.t -> int * Oop.t option

val ll_remove : ?vp:int -> t -> now:int -> Oop.t -> Oop.t -> int

(** {2 The ready queue} *)

val ready_list : t -> int -> Oop.t

val priority_of : t -> Oop.t -> int

val process_state : t -> Oop.t -> int

val set_running_on : t -> Oop.t -> int option -> unit

val running_on : t -> Oop.t -> int option

val is_in_ready_queue : t -> Oop.t -> bool

(** Flag the processor running the lowest-priority Process below the given
    priority for rescheduling. *)
val request_preemption : t -> priority:int -> unit

(** Make a Process ready (idempotent); may request preemption.  Returns
    the completion time of the locked operation. *)
val wake : ?vp:int -> t -> now:int -> Oop.t -> int

(** Choose the next Process for a processor: the highest-priority ready
    Process no processor is currently executing. *)
val pick : t -> now:int -> vp:int -> int * Oop.t option

(** The processor's current Process stops running; [requeue] keeps it
    ready (yield, preemption) rather than removing it (wait, suspend,
    terminate). *)
val relinquish : t -> now:int -> vp:int -> requeue:bool -> Oop.t -> int

(** Move the current Process to the back of its priority list. *)
val yield : t -> now:int -> vp:int -> Oop.t -> int

(** [failover t ~now ~dead proc ctx] recovers the Process that was
    running on crashed processor [dead]: the engine takes the scheduler
    lock, stores [ctx] back into the Process's [suspended_context] slot
    (coherent even mid-method — pc and sp write through to the heap at
    every step), detaches it from the dead processor and returns it to
    the serialized ready queue for any survivor to pick up.  If the dead
    processor crashed {e holding} the scheduler lock, this acquire is
    what the spin watchdog catches.  Returns the completion time. *)
val failover : t -> now:int -> dead:int -> Oop.t -> Oop.t -> int

(** Number of {!failover} recoveries performed. *)
val failovers : t -> int

(** Flag one specific processor for rescheduling regardless of
    priorities — the schedule explorer's forced-preemption decision. *)
val force_preempt : t -> vp:int -> unit

(** Read and clear the processor's preemption flag. *)
val take_preempt_flag : t -> int -> bool

(** Is a ready, not-running Process of higher priority available? *)
val better_ready : t -> than:int -> bool

(** Check the scheduler invariants against an attached, armed sanitizer:
    [running] mirrors [running_on], no Process on two processors,
    [my_list] back-pointers agree with chain membership, and (under the MS
    reorganization) running Processes stay in the ready queue.  Violations
    are reported as resource "scheduler". *)
val check_invariants : t -> now:int -> vp:int -> unit
