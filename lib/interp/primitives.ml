(* The primitive operations of the virtual machine.

   Primitives follow Smalltalk-80 semantics: they run when a send reaches a
   method carrying a <primitive: n> pragma, before any state has been
   mutated; on failure the method body runs instead.  This fall-through is
   what lets MS introduce new primitives (thisProcess, canRun:) while
   remaining image-compatible with BS (paper, section 3.3).

   Numbering (loosely after the Blue Book):
      1-17   SmallInteger arithmetic and comparison
     41-48   Float arithmetic and coercion
     60-76   storage: at:, at:put:, size, basicNew, instVarAt:, symbols
     80      block value
     85-95   Processes and Semaphores (including MS's 93 thisProcess and
             94 canRun:)
    100-104  I/O and the clock
    110-116  programming-environment services (compiler, decompiler,
             reflection)
    120-122  error, scavenge request, GC statistics
    140-141  Characters *)

open State

type outcome =
  | Ok_done      (* arguments consumed, result pushed *)
  | Failed       (* nothing changed; run the method body *)
  | Switched     (* the context/process changed; the send is complete *)

(* --- small helpers --- *)

let h_ st = st.sh.heap
let u_ st = st.sh.u

let true_oop st = (u_ st).Universe.true_
let false_oop st = (u_ st).Universe.false_
let bool_oop st b = if b then true_oop st else false_oop st

let pop_all_push st ~nargs v =
  popn st (nargs + 1);
  push st v;
  Ok_done

let charge_arith st = add_cost st st.sh.cm.Cost_model.prim_arith
let charge_at st = add_cost st st.sh.cm.Cost_model.prim_at
let charge_misc st = add_cost st st.sh.cm.Cost_model.prim_misc

(* --- process machinery shared with the interpreter --- *)

(* Save the running context into the active Process. *)
let save_active_context st =
  let proc = !(st.active_process) in
  if not (Oop.equal proc Oop.sentinel) then
    store_with_check st proc Layout.Process.suspended_context !(st.active_ctx)

(* Load [proc] onto this interpreter. *)
let load_process st proc =
  st.active_process := proc;
  let ctx = Heap.get (h_ st) proc Layout.Process.suspended_context in
  st.active_ctx := ctx;
  invalidate_cache st;
  st.ctx_switches <- st.ctx_switches + 1

(* Pick the next Process; leaves the interpreter idle when there is none. *)
let pick_next st =
  let n, picked = Scheduler.pick st.sh.sched ~now:(now st) ~vp:st.id in
  sync_to st n;
  match picked with
  | Some proc -> load_process st proc
  | None ->
      st.active_process := Oop.sentinel;
      st.active_ctx := Oop.sentinel;
      invalidate_cache st

(* The active Process stops running; [requeue] keeps it eligible. *)
let switch_away st ~requeue =
  save_active_context st;
  let proc = !(st.active_process) in
  let n =
    Scheduler.relinquish st.sh.sched ~now:(now st) ~vp:st.id ~requeue proc
  in
  sync_to st n;
  pick_next st

(* The active Process finished (bottom return) or was terminated. *)
let finish_process st ~result =
  let proc = !(st.active_process) in
  Heap.set_raw (h_ st) proc Layout.Process.state
    (Oop.of_small Layout.Process_state.terminated);
  st.sh.on_terminate proc result;
  switch_away st ~requeue:false

(* Signal [sem]: wake a waiter or bump the excess count. *)
let signal_semaphore st sem =
  let excess = Oop.small_val (Heap.get (h_ st) sem Layout.Semaphore.excess_signals) in
  (* brief list surgery under the scheduler lock *)
  let n, popped =
    Scheduler.ll_pop_first ~vp:st.id st.sh.sched ~now:(now st) sem
  in
  sync_to st n;
  match popped with
  | Some waiter ->
      let n = Scheduler.wake ~vp:st.id st.sh.sched ~now:(now st) waiter in
      sync_to st n
  | None ->
      Heap.set_raw (h_ st) sem Layout.Semaphore.excess_signals
        (Oop.of_small (excess + 1))

(* --- SmallInteger arithmetic --- *)

let int2 st ~nargs f =
  if nargs <> 1 then Failed
  else begin
    let arg = peek st ~depth:0 and recv = peek st ~depth:1 in
    if Oop.is_small recv && Oop.is_small arg then
      f (Oop.small_val recv) (Oop.small_val arg)
    else Failed
  end

let int_arith st ~nargs f =
  int2 st ~nargs (fun a b ->
      match f a b with
      | Some r when r >= Oop.min_small && r <= Oop.max_small ->
          charge_arith st;
          pop_all_push st ~nargs (Oop.of_small r)
      | Some _ | None -> Failed)

let int_cmp st ~nargs f =
  int2 st ~nargs (fun a b ->
      charge_arith st;
      pop_all_push st ~nargs (bool_oop st (f a b)))

(* Floor division and modulo, Smalltalk style. *)
let floor_div a b =
  let q = a / b and r = a mod b in
  if (r <> 0) && ((r < 0) <> (b < 0)) then q - 1 else q

let floor_mod a b =
  let r = a mod b in
  if (r <> 0) && ((r < 0) <> (b < 0)) then r + b else r

(* --- Floats --- *)

let float_of st o =
  if Oop.is_small o then Some (float_of_int (Oop.small_val o))
  else if Oop.equal (Universe.class_of (u_ st) o) (u_ st).Universe.classes.Universe.float_c
  then Some (Universe.float_value (u_ st) o)
  else None

(* Box a float in new space, taking the allocation lock like any other
   eden allocation. *)
let new_float st f =
  let u = u_ st in
  let o =
    Ctx.alloc_object st ~slots:2 ~raw:true
      ~cls:u.Universe.classes.Universe.float_c ()
  in
  Universe.write_float u o f;
  o

let float_arith st ~nargs f =
  if nargs <> 1 then Failed
  else
    match (float_of st (peek st ~depth:1), float_of st (peek st ~depth:0)) with
    | Some a, Some b ->
        charge_arith st;
        let r = new_float st (f a b) in
        pop_all_push st ~nargs r
    | _ -> Failed

let float_cmp st ~nargs f =
  if nargs <> 1 then Failed
  else
    match (float_of st (peek st ~depth:1), float_of st (peek st ~depth:0)) with
    | Some a, Some b ->
        charge_arith st;
        pop_all_push st ~nargs (bool_oop st (f a b))
    | _ -> Failed

(* --- indexable storage --- *)

(* The indexable part of [o] starts after its class's named instance
   variables. *)
let indexable_info st o =
  if Oop.is_small o then None
  else begin
    let h = h_ st in
    let cls = Heap.class_at h (Oop.addr o) in
    let inst = Oop.small_val (Heap.get h cls Layout.Class.inst_size) in
    let total = Heap.slots h (Oop.addr o) in
    Some (cls, inst, total - inst)
  end

let prim_at st ~nargs =
  if nargs <> 1 then Failed
  else begin
    let idx = peek st ~depth:0 and recv = peek st ~depth:1 in
    if not (Oop.is_small idx) then Failed
    else
      match indexable_info st recv with
      | None -> Failed
      | Some (_, inst, len) ->
          let i = Oop.small_val idx in
          if i < 1 || i > len then Failed
          else begin
            charge_at st;
            let h = h_ st in
            let v = Heap.get h recv (inst + i - 1) in
            let v =
              if Heap.is_bytes h (Oop.addr recv) then
                Universe.char_oop (u_ st) (Char.chr (v land 0xff))
              else if Heap.is_raw h (Oop.addr recv) then Oop.of_small v
              else v
            in
            pop_all_push st ~nargs v
          end
  end

let prim_at_put st ~nargs =
  if nargs <> 2 then Failed
  else begin
    let v = peek st ~depth:0
    and idx = peek st ~depth:1
    and recv = peek st ~depth:2 in
    if not (Oop.is_small idx) then Failed
    else
      match indexable_info st recv with
      | None -> Failed
      | Some (_, inst, len) ->
          let i = Oop.small_val idx in
          if i < 1 || i > len then Failed
          else begin
            let h = h_ st in
            let a = Oop.addr recv in
            charge_at st;
            if Heap.is_bytes h a then begin
              (* accept a Character or a small integer 0..255 *)
              let code =
                if Oop.is_small v then Some (Oop.small_val v)
                else if
                  Oop.equal (Universe.class_of (u_ st) v)
                    (u_ st).Universe.classes.Universe.character
                then Some (Char.code (Universe.char_value (u_ st) v))
                else None
              in
              match code with
              | Some c when c >= 0 && c <= 255 ->
                  Heap.set_raw h recv (inst + i - 1) c;
                  pop_all_push st ~nargs v
              | Some _ | None -> Failed
            end
            else if Heap.is_raw h a then begin
              if Oop.is_small v then begin
                Heap.set_raw h recv (inst + i - 1) (Oop.small_val v);
                pop_all_push st ~nargs v
              end
              else Failed
            end
            else begin
              store_with_check st recv (inst + i - 1) v;
              add_cost st st.sh.cm.Cost_model.store_check;
              pop_all_push st ~nargs v
            end
          end
  end

(* Class format of instances to allocate. *)
let instantiate st cls ~indexed =
  let h = h_ st in
  let inst = Oop.small_val (Heap.get h cls Layout.Class.inst_size) in
  let format = Oop.small_val (Heap.get h cls Layout.Class.format) in
  let raw = format >= Layout.Class_format.raw_words in
  let bytes = format = Layout.Class_format.raw_bytes in
  let slots = if raw then indexed else inst + indexed in
  (* unusually large objects go straight to old space, bypassing eden *)
  if slots + Layout.header_words > 4096 then
    Heap.alloc_old h ~slots ~raw ~bytes ~cls ()
  else Ctx.alloc_object st ~slots ~raw ~bytes ~cls ()

let prim_basic_new st ~nargs =
  if nargs <> 0 then Failed
  else begin
    let recv = peek st ~depth:0 in
    if Oop.is_small recv then Failed
    else begin
      charge_misc st;
      let o = instantiate st recv ~indexed:0 in
      pop_all_push st ~nargs o
    end
  end

let prim_basic_new_sized st ~nargs =
  if nargs <> 1 then Failed
  else begin
    let size = peek st ~depth:0 and recv = peek st ~depth:1 in
    if Oop.is_small recv || not (Oop.is_small size) || Oop.small_val size < 0
    then Failed
    else begin
      charge_misc st;
      let o = instantiate st recv ~indexed:(Oop.small_val size) in
      pop_all_push st ~nargs o
    end
  end

(* replaceFrom:to:with:startingAt: — the bulk-copy primitive. *)
let prim_replace st ~nargs =
  if nargs <> 4 then Failed
  else begin
    let start2 = peek st ~depth:0
    and src = peek st ~depth:1
    and stop = peek st ~depth:2
    and start = peek st ~depth:3
    and recv = peek st ~depth:4 in
    match (indexable_info st recv, indexable_info st src) with
    | Some (_, rinst, rlen), Some (_, sinst, slen)
      when Oop.is_small start && Oop.is_small stop && Oop.is_small start2 ->
        let s1 = Oop.small_val start
        and s2 = Oop.small_val stop
        and t = Oop.small_val start2 in
        let count = s2 - s1 + 1 in
        let h = h_ st in
        let same_kind =
          Heap.is_raw h (Oop.addr recv) = Heap.is_raw h (Oop.addr src)
        in
        if
          count < 0 || s1 < 1 || s2 > rlen || t < 1
          || t + count - 1 > slen || not same_kind
        then Failed
        else begin
          add_cost st (st.sh.cm.Cost_model.prim_at + (2 * count));
          let raw = Heap.is_raw h (Oop.addr recv) in
          for i = 0 to count - 1 do
            let v = Heap.get h src (sinst + t - 1 + i) in
            if raw then Heap.set_raw h recv (rinst + s1 - 1 + i) v
            else store_with_check st recv (rinst + s1 - 1 + i) v
          done;
          pop_all_push st ~nargs recv
        end
    | _ -> Failed
  end

(* --- Process and Semaphore primitives --- *)

let is_a st o cls = Oop.equal (Universe.class_of (u_ st) o) cls

let prim_signal st ~nargs =
  if nargs <> 0 then Failed
  else begin
    let sem = peek st ~depth:0 in
    if not (is_a st sem (u_ st).Universe.classes.Universe.semaphore) then Failed
    else begin
      charge_misc st;
      signal_semaphore st sem;
      pop_all_push st ~nargs sem
    end
  end

let prim_wait st ~nargs =
  if nargs <> 0 then Failed
  else begin
    let sem = peek st ~depth:0 in
    if not (is_a st sem (u_ st).Universe.classes.Universe.semaphore) then Failed
    else begin
      charge_misc st;
      let h = h_ st in
      let excess =
        Oop.small_val (Heap.get h sem Layout.Semaphore.excess_signals)
      in
      if excess > 0 then begin
        Heap.set_raw h sem Layout.Semaphore.excess_signals
          (Oop.of_small (excess - 1));
        pop_all_push st ~nargs sem
      end
      else begin
        (* the send completes now (result on the stack); the Process then
           blocks on the semaphore *)
        ignore (pop_all_push st ~nargs sem);
        save_active_context st;
        let proc = !(st.active_process) in
        let n =
          Scheduler.relinquish st.sh.sched ~now:(now st) ~vp:st.id
            ~requeue:false proc
        in
        sync_to st n;
        let n =
          Scheduler.ll_append ~vp:st.id st.sh.sched ~now:(now st) sem proc
        in
        sync_to st n;
        pick_next st;
        Switched
      end
    end
  end

let prim_resume st ~nargs =
  if nargs <> 0 then Failed
  else begin
    let proc = peek st ~depth:0 in
    if not (is_a st proc (u_ st).Universe.classes.Universe.process) then Failed
    else if
      Scheduler.process_state st.sh.sched proc = Layout.Process_state.terminated
    then Failed
    else begin
      charge_misc st;
      let n = Scheduler.wake ~vp:st.id st.sh.sched ~now:(now st) proc in
      sync_to st n;
      pop_all_push st ~nargs proc
    end
  end

let prim_suspend st ~nargs =
  if nargs <> 0 then Failed
  else begin
    let proc = peek st ~depth:0 in
    if not (is_a st proc (u_ st).Universe.classes.Universe.process) then Failed
    else begin
      charge_misc st;
      if Oop.equal proc !(st.active_process) then begin
        ignore (pop_all_push st ~nargs proc);
        switch_away st ~requeue:false;
        Switched
      end
      else begin
        (match Scheduler.running_on st.sh.sched proc with
         | Some _ ->
             (* running on another processor: it parks itself at its next
                scheduling check *)
             Heap.set_raw (h_ st) proc Layout.Process.state
               (Oop.of_small Layout.Process_state.suspend_requested)
         | None ->
             (* not running anywhere: drop it from the ready queue.  (Not
                [relinquish], which would clear THIS processor's running
                slot while it keeps executing the active Process.) *)
             let n =
               Scheduler.remove_from_ready ~vp:st.id st.sh.sched ~now:(now st)
                 proc
             in
             sync_to st n);
        pop_all_push st ~nargs proc
      end
    end
  end

(* newProcess: a suspended Process that will run the receiver block. *)
let prim_new_process st ~nargs =
  if nargs <> 0 then Failed
  else begin
    let block = peek st ~depth:0 in
    let u = u_ st in
    if not (is_a st block u.Universe.classes.Universe.block_context) then Failed
    else if Oop.small_val (Heap.get (h_ st) block Layout.Ctx.nargs) <> 0 then
      Failed
    else begin
      charge_misc st;
      let h = h_ st in
      (* a fresh bottom context for the new thread of execution *)
      let size = Ctx.size_class_of_ctx st block in
      let ctx =
        Ctx.alloc_context st ~size ~cls:u.Universe.classes.Universe.block_context
      in
      let copy i = store_with_check st ctx i (Heap.get h block i) in
      store_with_check st ctx Layout.Ctx.sender (nil st);
      Heap.set_raw h ctx Layout.Ctx.pc (Heap.get h block Layout.Ctx.startpc);
      Heap.set_raw h ctx Layout.Ctx.stackp (Oop.of_small 0);
      copy Layout.Ctx.meth;
      copy Layout.Ctx.receiver;
      copy Layout.Ctx.home;
      Heap.set_raw h ctx Layout.Ctx.startpc (Heap.get h block Layout.Ctx.startpc);
      Heap.set_raw h ctx Layout.Ctx.argstart (Heap.get h block Layout.Ctx.argstart);
      Heap.set_raw h ctx Layout.Ctx.nargs (Oop.of_small 0);
      let proc =
        Ctx.alloc_object st ~slots:Layout.Process.fixed_slots ~raw:false
          ~cls:u.Universe.classes.Universe.process ()
      in
      let setp i v = store_with_check st proc i v in
      setp Layout.Process.next_link (nil st);
      setp Layout.Process.suspended_context ctx;
      let priority =
        let active = !(st.active_process) in
        if Oop.equal active Oop.sentinel then 5
        else Scheduler.priority_of st.sh.sched active
      in
      Heap.set_raw h proc Layout.Process.priority (Oop.of_small priority);
      setp Layout.Process.my_list (nil st);
      setp Layout.Process.running_on (nil st);
      setp Layout.Process.name (nil st);
      Heap.set_raw h proc Layout.Process.state
        (Oop.of_small Layout.Process_state.runnable);
      pop_all_push st ~nargs proc
    end
  end

let prim_set_priority st ~nargs =
  if nargs <> 1 then Failed
  else begin
    let p = peek st ~depth:0 and proc = peek st ~depth:1 in
    if
      (not (is_a st proc (u_ st).Universe.classes.Universe.process))
      || (not (Oop.is_small p))
      || Oop.small_val p < 1
      || Oop.small_val p > Layout.Scheduler.priorities
    then Failed
    else begin
      charge_misc st;
      let sched = st.sh.sched in
      let was_ready = Scheduler.is_in_ready_queue sched proc in
      if was_ready then begin
        let n =
          Scheduler.remove_from_ready ~vp:st.id sched ~now:(now st) proc
        in
        sync_to st n
      end;
      Heap.set_raw (h_ st) proc Layout.Process.priority p;
      if was_ready then begin
        let n = Scheduler.wake ~vp:st.id sched ~now:(now st) proc in
        sync_to st n
      end;
      pop_all_push st ~nargs proc
    end
  end

let prim_yield st ~nargs =
  if nargs <> 0 then Failed
  else begin
    charge_misc st;
    let recv = peek st ~depth:0 in
    ignore (pop_all_push st ~nargs recv);
    save_active_context st;
    let proc = !(st.active_process) in
    let n = Scheduler.yield st.sh.sched ~now:(now st) ~vp:st.id proc in
    sync_to st n;
    pick_next st;
    Switched
  end

let prim_terminate st ~nargs =
  if nargs <> 0 then Failed
  else begin
    let proc = peek st ~depth:0 in
    if not (is_a st proc (u_ st).Universe.classes.Universe.process) then Failed
    else begin
      charge_misc st;
      if Oop.equal proc !(st.active_process) then begin
        ignore (pop_all_push st ~nargs proc);
        finish_process st ~result:(nil st);
        Switched
      end
      else begin
        Heap.set_raw (h_ st) proc Layout.Process.state
          (Oop.of_small Layout.Process_state.terminated);
        (match Scheduler.running_on st.sh.sched proc with
         | Some _ -> ()  (* its own processor notices at the next check *)
         | None ->
             if Scheduler.is_in_ready_queue st.sh.sched proc then begin
               let n =
                 Scheduler.remove_from_ready ~vp:st.id st.sh.sched
                   ~now:(now st) proc
               in
               sync_to st n
             end);
        pop_all_push st ~nargs proc
      end
    end
  end

(* MS's reorganized primitives (paper section 3.3). *)

let prim_this_process st ~nargs =
  if nargs <> 0 then Failed
  else begin
    charge_misc st;
    pop_all_push st ~nargs !(st.active_process)
  end

let prim_can_run st ~nargs =
  if nargs <> 1 then Failed
  else begin
    let proc = peek st ~depth:0 in
    if not (is_a st proc (u_ st).Universe.classes.Universe.process) then Failed
    else begin
      charge_misc st;
      (* ready or running: present in the ready queue (MS keeps running
         Processes in the queue), or noted as running by an interpreter *)
      let sched = st.sh.sched in
      let can =
        Scheduler.is_in_ready_queue sched proc
        || Scheduler.running_on sched proc <> None
      in
      pop_all_push st ~nargs (bool_oop st can)
    end
  end

(* --- I/O --- *)

let string_arg st o =
  if Oop.is_small o then None
  else if Heap.is_bytes (h_ st) (Oop.addr o) then
    Some (Heap.string_value (h_ st) o)
  else None

let prim_display st ~nargs =
  if nargs <> 1 then Failed
  else begin
    charge_misc st;
    let finish = Devices.display_enqueue ~vp:st.id st.sh.display ~now:(now st) in
    sync_to st finish;
    pop_all_push st ~nargs (peek st ~depth:1)
  end

let transcript = Buffer.create 256

let prim_transcript_show st ~nargs =
  if nargs <> 1 then Failed
  else
    match string_arg st (peek st ~depth:0) with
    | None -> Failed
    | Some s ->
        charge_misc st;
        (* transcript output goes through the display controller's
           serialized queue *)
        let finish =
          Devices.display_enqueue ~vp:st.id st.sh.display ~now:(now st)
        in
        sync_to st finish;
        Buffer.add_string transcript s;
        pop_all_push st ~nargs (peek st ~depth:1)

(* Cycles per millisecond, floored at 1 so sub-ms-resolution cost models
   (cycles_per_second < 1000) neither divide by zero in the clock nor
   collapse every timer deadline to cycle 0. *)
let cycles_per_ms cm = max 1 (cm.Cost_model.cycles_per_second / 1000)

let prim_clock st ~nargs =
  if nargs <> 0 then Failed
  else begin
    charge_misc st;
    let ms = now st / cycles_per_ms st.sh.cm in
    pop_all_push st ~nargs (Oop.of_small ms)
  end

let prim_next_event st ~nargs =
  if nargs <> 0 then Failed
  else begin
    let finish, ev =
      Devices.poll ~vp:st.id st.sh.input ~now:(now st) ~op_cycles:20
    in
    sync_to st finish;
    let v = match ev with Some p -> Oop.of_small p | None -> nil st in
    pop_all_push st ~nargs v
  end

(* signal: aSemaphore afterMilliseconds: msDuration — the V kernel's
   timer service, used by Delay.

   The duration is relative and the primitive adds the exact current
   clock itself.  The old protocol took an absolute millisecond deadline
   computed in the image as [millisecondClockValue + duration]; that
   truncated [now] to whole milliseconds, so the deadline landed up to
   cycles_per_ms - 1 cycles early and — with the duration measured from
   a stale clock read — a Delay issued late in a long run could fire
   almost immediately instead of waiting.  Adding [now st] here keeps
   the full cycle-resolution clock in the deadline. *)
let prim_signal_after st ~nargs =
  if nargs <> 2 then Failed
  else begin
    let ms = peek st ~depth:0 and sem = peek st ~depth:1 in
    if
      (not (is_a st sem (u_ st).Universe.classes.Universe.semaphore))
      || (not (Oop.is_small ms))
      || Oop.small_val ms < 0
    then Failed
    else begin
      charge_misc st;
      let fire = now st + (Oop.small_val ms * cycles_per_ms st.sh.cm) in
      let cell = ref sem in
      Heap.add_root (h_ st) cell;
      Calendar.add st.sh.timers ~key:fire (State.Signal_sem cell);
      pop_all_push st ~nargs sem
    end
  end

(* nextRequest — pop the next pending request id from the image server's
   mailbox (E17).  Workers call this after their pool semaphore wait;
   -1 means nothing deliverable yet (an excess signal raced ahead of the
   payload), and the worker goes back to waiting. *)
let prim_next_request st ~nargs =
  if nargs <> 0 then Failed
  else
    match st.sh.request_mailbox with
    | None -> Failed
    | Some mb ->
        charge_misc st;
        let v =
          match Mailbox.receive mb ~now:(now st) with
          | Mailbox.Message rid -> rid
          | Mailbox.Arrives_at t ->
              (* the signal outran the message (the waking processor's
                 clock lags the send): stall until the arrival *)
              st.cost <- st.cost + (t - now st);
              (match Mailbox.receive mb ~now:(now st) with
               | Mailbox.Message rid -> rid
               | Mailbox.Empty | Mailbox.Arrives_at _ -> -1)
          | Mailbox.Empty -> -1
        in
        pop_all_push st ~nargs (Oop.of_small v)

(* requestDone: rid — completion callback into the image server: latency
   bookkeeping and, for closed-loop sessions, scheduling the next
   arrival. *)
let prim_request_done st ~nargs =
  if nargs <> 1 then Failed
  else begin
    let rid = peek st ~depth:0 in
    if not (Oop.is_small rid) then Failed
    else begin
      charge_misc st;
      st.sh.on_request_done ~rid:(Oop.small_val rid) ~now:(now st);
      pop_all_push st ~nargs (peek st ~depth:1)
    end
  end

let prim_set_input_semaphore st ~nargs =
  if nargs <> 1 then Failed
  else begin
    let sem = peek st ~depth:0 in
    if not (is_a st sem (u_ st).Universe.classes.Universe.semaphore) then Failed
    else begin
      st.sh.input_semaphore := sem;
      pop_all_push st ~nargs sem
    end
  end

(* --- programming-environment services --- *)

let new_string_obj st s =
  let u = u_ st in
  let n = String.length s in
  let o =
    if n + Layout.header_words > 4096 then
      Heap.alloc_old (h_ st) ~slots:n ~raw:true ~bytes:true
        ~cls:u.Universe.classes.Universe.string ()
    else
      Ctx.alloc_object st ~slots:n ~raw:true ~bytes:true
        ~cls:u.Universe.classes.Universe.string ()
  in
  String.iteri (fun i c -> Heap.set_raw (h_ st) o i (Char.code c)) s;
  o

let new_array_obj st elements =
  let u = u_ st in
  let n = List.length elements in
  let o =
    Ctx.alloc_object st ~slots:n ~raw:false
      ~cls:u.Universe.classes.Universe.array ()
  in
  List.iteri (fun i e -> store_with_check st o i e) elements;
  o

let prim_as_symbol st ~nargs =
  if nargs <> 0 then Failed
  else
    match string_arg st (peek st ~depth:0) with
    | None -> Failed
    | Some s ->
        charge_misc st;
        pop_all_push st ~nargs (Universe.intern (u_ st) s)

let prim_as_string st ~nargs =
  if nargs <> 0 then Failed
  else
    match string_arg st (peek st ~depth:0) with
    | None -> Failed
    | Some s ->
        charge_misc st;
        pop_all_push st ~nargs (new_string_obj st s)

let prim_compile st ~nargs =
  (* compile: sourceString into: aClass classSide: aBoolean *)
  if nargs <> 3 then Failed
  else
    match st.sh.compile_hook with
    | None -> Failed
    | Some hook ->
        let class_side_oop = peek st ~depth:0
        and cls = peek st ~depth:1
        and src = peek st ~depth:2 in
        (match string_arg st src with
         | None -> Failed
         | Some source ->
             let class_side = Oop.equal class_side_oop (true_oop st) in
             (* compilation allocates throughout: half its work is a
                stream of short allocations under the serialized allocator,
                each exposed to contention *)
             let total =
               String.length source * st.sh.cm.Cost_model.prim_compile_per_char
             in
             add_cost st (total / 2);
             let ops = max 1 (total / 2 / 60) in
             for _ = 1 to ops do
               let finish =
                 Spinlock.locked_op ~vp:st.id st.sh.alloc_lock ~now:(now st) ~op_cycles:60
               in
               sync_to st finish
             done;
             (match hook ~cls ~class_side source with
              | meth ->
                  st.sh.on_method_install ();
                  pop_all_push st ~nargs meth
              (* a compiler bug is a primitive failure, but exhausted old
                 space must stay loud: swallowing it here would turn heap
                 death into a misleading 'compilation failed' *)
              | exception (Heap.Image_full _ as e) -> raise e
              | exception _ -> Failed))

let prim_decompile st ~nargs =
  (* decompile: aCompiledMethod *)
  if nargs <> 1 then Failed
  else
    match st.sh.decompile_hook with
    | None -> Failed
    | Some hook ->
        let meth = peek st ~depth:0 in
        if not (is_a st meth (u_ st).Universe.classes.Universe.compiled_method)
        then Failed
        else begin
          match hook ~meth with
          | src ->
              (* reconstruction also builds its result as a stream of
                 short allocations under the allocator *)
              let total =
                String.length src * (st.sh.cm.Cost_model.prim_compile_per_char / 2)
              in
              add_cost st (total / 2);
              let ops = max 1 (total / 2 / 60) in
              for _ = 1 to ops do
                let finish =
                  Spinlock.locked_op ~vp:st.id st.sh.alloc_lock ~now:(now st) ~op_cycles:60
                in
                sync_to st finish
              done;
              pop_all_push st ~nargs (new_string_obj st src)
          | exception _ -> Failed
        end

let prim_all_classes st ~nargs =
  if nargs <> 0 then Failed
  else begin
    charge_misc st;
    let u = u_ st in
    let classes =
      Universe.global_names u
      |> List.filter_map (fun name -> Universe.find_class u name)
      |> List.filter (fun c ->
             Oop.equal (Universe.class_of u c) u.Universe.classes.Universe.class_c)
    in
    add_cost st (List.length classes * 4);
    pop_all_push st ~nargs (new_array_obj st classes)
  end

let prim_selectors_of st ~nargs =
  (* selectorsOf: aClass classSide: aBoolean *)
  if nargs <> 2 then Failed
  else begin
    let class_side = Oop.equal (peek st ~depth:0) (true_oop st) in
    let cls = peek st ~depth:1 in
    let u = u_ st in
    if not (Oop.equal (Universe.class_of u cls) u.Universe.classes.Universe.class_c)
    then Failed
    else begin
      charge_misc st;
      let h = h_ st in
      let dict =
        Heap.get h cls
          (if class_side then Layout.Class.class_method_dict
           else Layout.Class.method_dict)
      in
      let sels = Heap.get h dict Layout.Mdict.selectors in
      let size = Oop.small_val (Heap.get h dict Layout.Mdict.size) in
      let elements = List.init size (fun i -> Heap.get h sels i) in
      add_cost st (size * 3);
      pop_all_push st ~nargs (new_array_obj st elements)
    end
  end

let prim_method_at st ~nargs =
  (* methodAt: selector in: aClass classSide: aBoolean *)
  if nargs <> 3 then Failed
  else begin
    let class_side = Oop.equal (peek st ~depth:0) (true_oop st) in
    let cls = peek st ~depth:1 in
    let sel = peek st ~depth:2 in
    let h = h_ st in
    let u = u_ st in
    if not (Oop.equal (Universe.class_of u cls) u.Universe.classes.Universe.class_c)
    then Failed
    else begin
      charge_misc st;
      let dict =
        Heap.get h cls
          (if class_side then Layout.Class.class_method_dict
           else Layout.Class.method_dict)
      in
      let sels = Heap.get h dict Layout.Mdict.selectors in
      let meths = Heap.get h dict Layout.Mdict.methods in
      let size = Oop.small_val (Heap.get h dict Layout.Mdict.size) in
      let rec scan i =
        if i >= size then nil st
        else if Oop.equal (Heap.get h sels i) sel then Heap.get h meths i
        else scan (i + 1)
      in
      add_cost st (size * 2);
      pop_all_push st ~nargs (scan 0)
    end
  end

let prim_literals_of st ~nargs =
  if nargs <> 1 then Failed
  else begin
    let meth = peek st ~depth:0 in
    let u = u_ st in
    if not (is_a st meth u.Universe.classes.Universe.compiled_method) then Failed
    else begin
      charge_misc st;
      let h = h_ st in
      let total = Heap.slots h (Oop.addr meth) in
      let lits =
        List.init (total - Layout.Method.fixed_slots) (fun i ->
            Heap.get h meth (Layout.Method.fixed_slots + i))
      in
      pop_all_push st ~nargs (new_array_obj st lits)
    end
  end

let prim_source_of st ~nargs =
  if nargs <> 1 then Failed
  else begin
    let meth = peek st ~depth:0 in
    if not (is_a st meth (u_ st).Universe.classes.Universe.compiled_method)
    then Failed
    else begin
      charge_misc st;
      pop_all_push st ~nargs (Heap.get (h_ st) meth Layout.Method.source)
    end
  end

let prim_selector_of_method st ~nargs =
  if nargs <> 1 then Failed
  else begin
    let meth = peek st ~depth:0 in
    if not (is_a st meth (u_ st).Universe.classes.Universe.compiled_method)
    then Failed
    else begin
      charge_misc st;
      pop_all_push st ~nargs (Heap.get (h_ st) meth Layout.Method.selector)
    end
  end

(* --- miscellany --- *)

let prim_error st ~nargs =
  if nargs <> 1 then Failed
  else begin
    let msg =
      match string_arg st (peek st ~depth:0) with
      | Some s -> s
      | None -> "error"
    in
    vm_error "Smalltalk error: %s" msg
  end

let prim_scavenge st ~nargs =
  if nargs <> 0 then Failed
  else begin
    st.sh.gc_wanted <- true;
    pop_all_push st ~nargs (peek st ~depth:0)
  end

let prim_gc_stats st ~nargs =
  if nargs <> 0 then Failed
  else begin
    charge_misc st;
    let h = h_ st in
    let stats =
      [ Oop.of_small (Heap.scavenge_count h);
        Oop.of_small (Heap.words_allocated h);
        Oop.of_small (Heap.words_copied_total h);
        Oop.of_small (Heap.tenured_words_total h) ]
    in
    pop_all_push st ~nargs (new_array_obj st stats)
  end

let prim_char_value st ~nargs =
  if nargs <> 1 then Failed
  else begin
    let v = peek st ~depth:0 in
    if Oop.is_small v && Oop.small_val v >= 0 && Oop.small_val v <= 255 then begin
      charge_misc st;
      pop_all_push st ~nargs (Universe.char_oop (u_ st) (Char.chr (Oop.small_val v)))
    end
    else Failed
  end

let prim_char_as_integer st ~nargs =
  if nargs <> 0 then Failed
  else begin
    let c = peek st ~depth:0 in
    if is_a st c (u_ st).Universe.classes.Universe.character then begin
      charge_misc st;
      pop_all_push st ~nargs
        (Oop.of_small (Char.code (Universe.char_value (u_ st) c)))
    end
    else Failed
  end

(* --- dispatch --- *)

let run st ~prim ~nargs =
  st.prim_calls <- st.prim_calls + 1;
  match prim with
  | 1 -> int_arith st ~nargs (fun a b -> Some (a + b))
  | 2 -> int_arith st ~nargs (fun a b -> Some (a - b))
  | 3 -> int_cmp st ~nargs (fun a b -> a < b)
  | 4 -> int_cmp st ~nargs (fun a b -> a > b)
  | 5 -> int_cmp st ~nargs (fun a b -> a <= b)
  | 6 -> int_cmp st ~nargs (fun a b -> a >= b)
  | 7 -> int_cmp st ~nargs (fun a b -> a = b)
  | 8 -> int_cmp st ~nargs (fun a b -> a <> b)
  | 9 -> int_arith st ~nargs (fun a b -> Some (a * b))
  | 10 -> int_arith st ~nargs (fun a b -> if b = 0 then None else Some (floor_div a b))
  | 11 -> int_arith st ~nargs (fun a b -> if b = 0 then None else Some (floor_mod a b))
  | 12 -> int_arith st ~nargs (fun a b -> Some (a land b))
  | 13 -> int_arith st ~nargs (fun a b -> Some (a lor b))
  | 14 -> int_arith st ~nargs (fun a b -> Some (a lxor b))
  | 15 ->
      int_arith st ~nargs (fun a b ->
          if b >= 0 && b < 62 then Some (a lsl b)
          else if b < 0 && b > -62 then Some (a asr (-b))
          else None)
  | 16 ->
      (* identity *)
      if nargs <> 1 then Failed
      else begin
        charge_arith st;
        let b = Oop.equal (peek st ~depth:0) (peek st ~depth:1) in
        pop_all_push st ~nargs (bool_oop st b)
      end
  | 17 -> int_arith st ~nargs (fun a b -> if b = 0 then None else Some (a / b))
  | 41 -> float_arith st ~nargs ( +. )
  | 42 -> float_arith st ~nargs ( -. )
  | 43 -> float_cmp st ~nargs ( < )
  | 44 -> float_arith st ~nargs ( *. )
  | 45 ->
      if nargs = 1 && float_of st (peek st ~depth:0) = Some 0.0 then Failed
      else float_arith st ~nargs ( /. )
  | 46 -> float_cmp st ~nargs ( = )
  | 47 ->
      (* truncated *)
      if nargs <> 0 then Failed
      else
        (match float_of st (peek st ~depth:0) with
         | Some f when Oop.is_small (peek st ~depth:0) = false ->
             charge_arith st;
             pop_all_push st ~nargs (Oop.of_small (int_of_float f))
         | _ -> Failed)
  | 48 ->
      (* asFloat *)
      if nargs <> 0 then Failed
      else begin
        let recv = peek st ~depth:0 in
        if Oop.is_small recv then begin
          charge_arith st;
          let f = new_float st (float_of_int (Oop.small_val recv)) in
          pop_all_push st ~nargs f
        end
        else Failed
      end
  | 49 ->
      (* float printString *)
      if nargs <> 0 then Failed
      else begin
        let recv = peek st ~depth:0 in
        if Oop.is_small recv then Failed
        else
          (match float_of st recv with
           | Some f ->
               charge_misc st;
               pop_all_push st ~nargs (new_string_obj st (Printf.sprintf "%g" f))
           | None -> Failed)
      end
  | 60 -> prim_at st ~nargs
  | 61 -> prim_at_put st ~nargs
  | 62 ->
      if nargs <> 0 then Failed
      else
        (match indexable_info st (peek st ~depth:0) with
         | Some (_, _, len) ->
             charge_at st;
             pop_all_push st ~nargs (Oop.of_small len)
         | None -> Failed)
  | 65 -> prim_replace st ~nargs
  | 68 -> prim_basic_new st ~nargs
  | 69 -> prim_basic_new_sized st ~nargs
  | 70 ->
      if nargs <> 0 then Failed
      else begin
        charge_misc st;
        pop_all_push st ~nargs (Universe.class_of (u_ st) (peek st ~depth:0))
      end
  | 71 ->
      (* identityHash; note: address-based, so unstable across scavenges
         for new-space objects (BS dropped the object table too) *)
      if nargs <> 0 then Failed
      else begin
        charge_misc st;
        let o = peek st ~depth:0 in
        let hash = if Oop.is_small o then Oop.small_val o else Oop.addr o in
        pop_all_push st ~nargs (Oop.of_small (hash land 0x3FFFFFFF))
      end
  | 73 ->
      (* instVarAt: *)
      if nargs <> 1 then Failed
      else begin
        let idx = peek st ~depth:0 and recv = peek st ~depth:1 in
        if Oop.is_small recv || not (Oop.is_small idx) then Failed
        else begin
          let h = h_ st in
          let i = Oop.small_val idx in
          let limit = Heap.slots h (Oop.addr recv) in
          if Heap.is_raw h (Oop.addr recv) || i < 1 || i > limit then Failed
          else begin
            charge_at st;
            pop_all_push st ~nargs (Heap.get h recv (i - 1))
          end
        end
      end
  | 74 ->
      (* instVarAt:put: *)
      if nargs <> 2 then Failed
      else begin
        let v = peek st ~depth:0
        and idx = peek st ~depth:1
        and recv = peek st ~depth:2 in
        if Oop.is_small recv || not (Oop.is_small idx) then Failed
        else begin
          let h = h_ st in
          let i = Oop.small_val idx in
          let limit = Heap.slots h (Oop.addr recv) in
          if Heap.is_raw h (Oop.addr recv) || i < 1 || i > limit then Failed
          else begin
            charge_at st;
            store_with_check st recv (i - 1) v;
            pop_all_push st ~nargs v
          end
        end
      end
  | 75 -> prim_as_symbol st ~nargs
  | 76 -> prim_as_string st ~nargs
  | 80 ->
      (* block value/value:...: *)
      let block = peek st ~depth:nargs in
      if not (is_a st block (u_ st).Universe.classes.Universe.block_context)
      then Failed
      else begin
        charge_misc st;
        match Ctx.activate_block st ~block ~nargs with
        | Some () -> Switched
        | None -> Failed
      end
  | 85 -> prim_signal st ~nargs
  | 86 -> prim_wait st ~nargs
  | 87 -> prim_resume st ~nargs
  | 88 -> prim_suspend st ~nargs
  | 89 -> prim_new_process st ~nargs
  | 90 -> prim_set_priority st ~nargs
  | 91 -> prim_yield st ~nargs
  | 92 -> prim_terminate st ~nargs
  | 93 -> prim_this_process st ~nargs
  | 94 -> prim_can_run st ~nargs
  | 95 ->
      if nargs <> 0 then Failed
      else begin
        let proc = peek st ~depth:0 in
        if not (is_a st proc (u_ st).Universe.classes.Universe.process) then
          Failed
        else begin
          charge_misc st;
          pop_all_push st ~nargs
            (Heap.get (h_ st) proc Layout.Process.priority)
        end
      end
  | 100 -> prim_clock st ~nargs
  | 101 -> prim_display st ~nargs
  | 102 -> prim_next_event st ~nargs
  | 103 -> prim_transcript_show st ~nargs
  | 104 -> prim_set_input_semaphore st ~nargs
  | 105 -> prim_signal_after st ~nargs
  | 106 -> prim_next_request st ~nargs
  | 107 -> prim_request_done st ~nargs
  | 110 -> prim_compile st ~nargs
  | 111 -> prim_decompile st ~nargs
  | 112 -> prim_all_classes st ~nargs
  | 113 -> prim_selectors_of st ~nargs
  | 114 -> prim_method_at st ~nargs
  | 115 -> prim_literals_of st ~nargs
  | 116 -> prim_source_of st ~nargs
  | 117 -> prim_selector_of_method st ~nargs
  | 120 -> prim_error st ~nargs
  | 121 -> prim_scavenge st ~nargs
  | 122 -> prim_gc_stats st ~nargs
  | 140 -> prim_char_value st ~nargs
  | 141 -> prim_char_as_integer st ~nargs
  | _ -> Failed
