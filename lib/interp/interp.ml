(* The bytecode interpreter: a steppable machine executing exactly one
   bytecode per [step].  The engine (in the core library) drives one of
   these per virtual processor, interleaving them in virtual-time order.

   Each step:
   - makes sure a Smalltalk Process is loaded (picking from the shared
     ready queue when idle);
   - performs the periodic duties of the original interpreter: polling the
     input event queue and checking the scheduler for preemption — both
     touch shared, lock-guarded structures and are a source of the
     multiprocessor overhead the paper measures;
   - checks the eden low-water mark and requests a scavenge rendezvous
     when space is short;
   - fetches, decodes and executes one bytecode, accumulating its cycle
     cost in [st.cost] for the engine to charge. *)

open State

type step_result =
  | Ran               (* one bytecode executed; st.cost holds its cycles *)
  | Idle              (* no Process to run *)
  | Need_gc           (* eden low or allocation failed; park and scavenge *)

(* Enough eden for any single step: a large context plus a small object. *)
let low_water_mark = Layout.Ctx.large_frame + Layout.Ctx.fixed_slots + 64

exception Must_be_boolean

(* --- method lookup --- *)

let lookup_in_dict st dict sel ~probes =
  let h = st.sh.heap in
  let sels = Heap.get h dict Layout.Mdict.selectors in
  let meths = Heap.get h dict Layout.Mdict.methods in
  let size = Oop.small_val (Heap.get h dict Layout.Mdict.size) in
  let rec scan i =
    if i >= size then None
    else begin
      incr probes;
      if Oop.equal (Heap.get h sels i) sel then Some (Heap.get h meths i)
      else scan (i + 1)
    end
  in
  scan 0

(* Full lookup along the superclass chain starting at [start].  For a
   class receiver, [start] is the receiver itself: its class-side
   dictionaries are searched first, then the instance protocol of Class
   (the simplified metaclass model). *)
let lookup_method st ~start ~class_receiver ~sel ~probes =
  let h = st.sh.heap in
  let u = st.sh.u in
  let n = nil st in
  let rec walk cls ~field =
    if Oop.equal cls n || Oop.equal cls Oop.sentinel then None
    else
      match lookup_in_dict st (Heap.get h cls field) sel ~probes with
      | Some m -> Some m
      | None -> walk (Heap.get h cls Layout.Class.superclass) ~field
  in
  if class_receiver then
    match walk start ~field:Layout.Class.class_method_dict with
    | Some m -> Some m
    | None ->
        (* fall back to Class/Object instance protocol *)
        walk u.Universe.classes.Universe.class_c ~field:Layout.Class.method_dict
  else walk start ~field:Layout.Class.method_dict

(* Behaviour key for the method cache: a class receiver's class-side
   lookup must not collide with the instance-side lookup of its
   instances. *)
let behavior_key ~class_receiver ~recv ~recv_class =
  if class_receiver then recv lor 1 else recv_class

exception Does_not_understand of string

let rec full_send st ~sel ~nargs ~super =
  st.sends <- st.sends + 1;
  let cm = st.sh.cm in
  let u = st.sh.u in
  add_cost st cm.Cost_model.send_base;
  let recv = peek st ~depth:nargs in
  let recv_class = Universe.class_of u recv in
  let class_receiver =
    (not super)
    && Oop.equal recv_class u.Universe.classes.Universe.class_c
  in
  let meth =
    if super then begin
      (* lookup starts above the defining class of the running method *)
      let defining = Heap.get st.sh.heap st.c_meth Layout.Method.defining_class in
      let parent = Heap.get st.sh.heap defining Layout.Class.superclass in
      let class_side = Layout.Minfo.class_side (Ctx.minfo st st.c_meth) in
      let probes = ref 0 in
      let m =
        lookup_method st ~start:parent ~class_receiver:class_side ~sel ~probes
      in
      add_cost st (cm.Cost_model.cache_probe + (!probes * 2));
      m
    end
    else begin
      let key = behavior_key ~class_receiver ~recv ~recv_class in
      let now0 = now st in
      let now1, cached =
        Method_cache.probe ~vp:st.id st.mcache ~now:now0 ~sel ~cls:key
      in
      sync_to st now1;
      match cached with
      | Some m ->
          add_cost st
            (cm.Cost_model.cache_hit
             + (match st.mcache.Method_cache.mode with
                | Method_cache.Replicated -> cm.Cost_model.replicated_cache_penalty
                | Method_cache.Shared_locked _ -> 0));
          Some m
      | None ->
          let probes = ref 0 in
          let start = if class_receiver then recv else recv_class in
          let m = lookup_method st ~start ~class_receiver ~sel ~probes in
          add_cost st (cm.Cost_model.cache_probe + (!probes * 4));
          (match m with
           | Some m ->
               let now2 =
                 Method_cache.fill ~vp:st.id st.mcache ~now:(now st) ~sel
                   ~cls:key ~meth:m
               in
               sync_to st now2
           | None -> ());
          m
    end
  in
  match meth with
  | None -> send_does_not_understand st ~sel ~nargs ~recv ~recv_class ~class_receiver
  | Some meth ->
      let info = Ctx.minfo st meth in
      let prim = Layout.Minfo.prim info in
      if prim >= 135 && prim <= 137 then
        (* perform: and friends re-dispatch with the argument selector *)
        send_perform st ~nargs ~meth ~info
      else begin
        let outcome =
          if prim > 0 then Primitives.run st ~prim ~nargs else Primitives.Failed
        in
        match outcome with
        | Primitives.Ok_done | Primitives.Switched -> ()
        | Primitives.Failed ->
            if Layout.Minfo.nargs info <> nargs then
              raise (Does_not_understand "argument count mismatch");
            Ctx.activate_method st ~meth ~nargs
      end

(* Lookup failed: assemble a Message object and send doesNotUnderstand:
   (Object's implementation reports an error; user classes may override). *)
and send_does_not_understand st ~sel ~nargs ~recv ~recv_class ~class_receiver =
  let u = st.sh.u in
  add_cost st st.sh.cm.Cost_model.prim_misc;
  let dnu = st.sh.sym_does_not_understand in
  let probes = ref 0 in
  let start = if class_receiver then recv else recv_class in
  match lookup_method st ~start ~class_receiver ~sel:dnu ~probes with
  | None ->
      let sel_name = Universe.symbol_name u sel in
      let cls_name =
        if class_receiver then Universe.class_name u recv ^ " class"
        else Universe.class_name u recv_class
      in
      raise (Does_not_understand (cls_name ^ ">>" ^ sel_name))
  | Some dnu_meth ->
      (* allocations happen before any stack mutation so the send can be
         re-executed if a scavenge is needed *)
      let args_arr =
        Ctx.alloc_object st ~slots:nargs ~raw:false
          ~cls:u.Universe.classes.Universe.array ()
      in
      for i = 0 to nargs - 1 do
        store_with_check st args_arr i (peek st ~depth:(nargs - 1 - i))
      done;
      let message =
        Ctx.alloc_object st ~slots:2 ~raw:false
          ~cls:u.Universe.classes.Universe.message ()
      in
      store_with_check st message 0 sel;
      store_with_check st message 1 args_arr;
      popn st nargs;
      push st message;
      Ctx.activate_method st ~meth:dnu_meth ~nargs:1

(* receiver perform: selector [with: a [with: b]] — drop the selector
   argument from the stack and re-dispatch. *)
and send_perform st ~nargs ~meth ~info =
  ignore meth;
  ignore info;
  if nargs < 1 then raise (Does_not_understand "perform: without a selector")
  else begin
    let u = st.sh.u in
    let sel = peek st ~depth:(nargs - 1) in
    let is_symbol =
      Oop.is_ptr sel
      && Oop.equal (Universe.class_of u sel) u.Universe.classes.Universe.symbol
    in
    if not is_symbol then
      raise (Does_not_understand "perform: needs a Symbol")
    else begin
      (* shift the real arguments down over the selector slot *)
      let h = st.sh.heap in
      let ctx = !(st.active_ctx) in
      let sp = get_sp st in
      let base = Layout.Ctx.fixed_slots + sp - nargs in
      for i = 0 to nargs - 2 do
        store_with_check st ctx (base + i) (Heap.get h ctx (base + i + 1))
      done;
      popn st 1;
      add_cost st st.sh.cm.Cost_model.send_base;
      full_send st ~sel ~nargs:(nargs - 1) ~super:false
    end
  end

(* Fast path for the special arithmetic selectors on SmallIntegers: the
   Blue Book's "special selector" bytecodes, resolved here by comparing
   interned selector oops. *)
type special = Add | Sub | Mul | Lt | Gt | Le | Ge | Eq | Ne | Identical

type specials = {
  s_add : Oop.t; s_sub : Oop.t; s_mul : Oop.t;
  s_lt : Oop.t; s_gt : Oop.t; s_le : Oop.t; s_ge : Oop.t;
  s_eq : Oop.t; s_ne : Oop.t; s_id : Oop.t;
}

let make_specials u = {
  s_add = Universe.intern u "+";
  s_sub = Universe.intern u "-";
  s_mul = Universe.intern u "*";
  s_lt = Universe.intern u "<";
  s_gt = Universe.intern u ">";
  s_le = Universe.intern u "<=";
  s_ge = Universe.intern u ">=";
  s_eq = Universe.intern u "=";
  s_ne = Universe.intern u "~=";
  s_id = Universe.intern u "==";
}

let special_of specials sel =
  if Oop.equal sel specials.s_add then Some Add
  else if Oop.equal sel specials.s_sub then Some Sub
  else if Oop.equal sel specials.s_mul then Some Mul
  else if Oop.equal sel specials.s_lt then Some Lt
  else if Oop.equal sel specials.s_gt then Some Gt
  else if Oop.equal sel specials.s_le then Some Le
  else if Oop.equal sel specials.s_ge then Some Ge
  else if Oop.equal sel specials.s_eq then Some Eq
  else if Oop.equal sel specials.s_ne then Some Ne
  else if Oop.equal sel specials.s_id then Some Identical
  else None

(* --- the interpreter proper --- *)

type t = {
  st : State.t;
  specials : specials;
}
(* [idle_poll] is defined below [do_event_poll] *)

let create st = { st; specials = make_specials st.sh.u }

let literal st n = Heap.get st.sh.heap st.c_meth (Layout.Method.fixed_slots + n)

(* Handle a bottom-context return: the Process is finished. *)
let handle_return st ~from_ctx ~target ~value =
  if not (Ctx.return_to st ~from_ctx ~target ~value) then
    Primitives.finish_process st ~result:value

(* Periodic duty: poll the shared input event queue (serialized I/O). *)
let do_event_poll st =
  let cm = st.sh.cm in
  add_cost st cm.Cost_model.event_poll_cost;
  let finish, ev =
    Devices.poll ~vp:st.id st.sh.input ~now:(now st) ~op_cycles:10
  in
  sync_to st finish;
  match ev with
  | Some _payload ->
      let sem = !(st.sh.input_semaphore) in
      if not (Oop.equal sem Oop.sentinel) && not (Oop.equal sem (nil st)) then
        Primitives.signal_semaphore st sem
  | None -> ()

(* An idle interpreter still watches for input events (it has nothing
   else to do); the engine calls this between ready-queue polls. *)
let idle_poll t = do_event_poll t.st

(* The processor-fault injection point.  Each scheduling check asks the
   injector whether this vp crashes (flagged here, delivered by the
   engine at the end of the step, so the step's shared-state work
   completes first) or stalls (a transient wedge: the clock jumps by [n]
   directly — not through [st.cost], which would inflate the bus
   multiplier for what is idle time).  The last live processor is never
   crashed: with nobody left to fail over to, the "system" is gone and
   there is no recovery story to exercise. *)
let check_faults st =
  let m = st.sh.machine in
  match Machine.injector m with
  | None -> ()
  | Some inj -> (
      match Fault.at inj Fault.Sched_check with
      | Some Fault.Vp_crash
        when Machine.active_count m > 1 && not (Machine.crash_pending m st.id)
        ->
          Fault.applied inj ~vp:st.id ~now:(now st) ~resource:"processor"
            Fault.Vp_crash;
          Sanitizer.fault_event st.sh.sanitizer ~vp:st.id ~now:(now st)
            ~resource:"processor" "crash flagged at scheduling check";
          Machine.flag_crash m st.id
      | Some (Fault.Vp_stall n) ->
          Fault.applied inj ~vp:st.id ~now:(now st) ~resource:"processor"
            (Fault.Vp_stall n);
          Sanitizer.fault_event st.sh.sanitizer ~vp:st.id ~now:(now st)
            ~resource:"processor"
            (Printf.sprintf "transient stall %d cycles" n);
          let vp = Machine.vp m st.id in
          vp.Machine.clock <- vp.Machine.clock + n;
          vp.Machine.fault_cycles <- vp.Machine.fault_cycles + n
      | Some _ | None -> ())

(* Periodic duty: look at the scheduler for preemption or state changes. *)
let do_sched_check st =
  check_faults st;
  let cm = st.sh.cm in
  let sched = st.sh.sched in
  let finish =
    Spinlock.locked_op ~vp:st.id
      (Scheduler.sched_check_lock sched ~vp:st.id)
      ~now:(now st) ~op_cycles:cm.Cost_model.sched_check_cost
  in
  sync_to st finish;
  let proc = !(st.active_process) in
  if Oop.equal proc Oop.sentinel then ()
  else begin
    let state = Scheduler.process_state sched proc in
    if state = Layout.Process_state.terminated then
      Primitives.finish_process st ~result:(nil st)
    else if state = Layout.Process_state.suspend_requested then begin
      Heap.set_raw st.sh.heap proc Layout.Process.state
        (Oop.of_small Layout.Process_state.runnable);
      Primitives.switch_away st ~requeue:false
    end
    else begin
      let preempt = Scheduler.take_preempt_flag sched st.id in
      let my_priority = Scheduler.priority_of sched proc in
      if preempt && Scheduler.better_ready sched ~than:my_priority then
        (* the preempted Process stays ready (MS keeps it in the queue) *)
        Primitives.switch_away st ~requeue:true
      else if Machine.take_forced_preempt st.sh.machine st.id then
        (* a scheduling-policy (explorer) preemption: behave like a yield
           at the scheduling check — requeue and repick, regardless of
           priorities, so the Process may migrate to another processor *)
        Primitives.switch_away st ~requeue:true
    end
  end

let execute_bytecode t =
  let st = t.st in
  let cm = st.sh.cm in
  let h = st.sh.heap in
  let n = nil st in
  let pc = get_pc st in
  if pc >= st.c_bc_len then
    vm_error "pc %d ran off the end of the method" pc;
  let w = h.Heap.mem.(st.c_bc_addr + pc) in
  add_cost st cm.Cost_model.dispatch;
  let tag = Opcode.tag w in
  if tag = Opcode.tag_push_temp then begin
    add_cost st cm.Cost_model.push;
    push st h.Heap.mem.(st.c_home_frame + Opcode.a w);
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_push_ivar then begin
    add_cost st cm.Cost_model.push;
    push st h.Heap.mem.(st.c_ivar_base + Opcode.a w);
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_push_literal then begin
    add_cost st cm.Cost_model.push;
    push st (literal st (Opcode.a w));
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_push_receiver then begin
    add_cost st cm.Cost_model.push;
    push st st.c_recv;
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_push_nil then begin
    add_cost st cm.Cost_model.push;
    push st n;
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_push_true then begin
    add_cost st cm.Cost_model.push;
    push st st.sh.u.Universe.true_;
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_push_false then begin
    add_cost st cm.Cost_model.push;
    push st st.sh.u.Universe.false_;
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_push_smallint then begin
    add_cost st cm.Cost_model.push;
    push st (Oop.of_small (Opcode.signed_a w));
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_push_global then begin
    add_cost st cm.Cost_model.push;
    let assoc = literal st (Opcode.a w) in
    push st (Heap.get h assoc Layout.Association.value);
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_store_temp then begin
    add_cost st cm.Cost_model.push;
    let home_base =
      st.c_home_frame - Layout.header_words - Layout.Ctx.fixed_slots
    in
    store_with_check st (Oop.of_addr home_base)
      (Layout.Ctx.fixed_slots + Opcode.a w) (peek st ~depth:0);
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_store_ivar then begin
    add_cost st (cm.Cost_model.push + cm.Cost_model.store_check);
    store_with_check st st.c_recv (Opcode.a w) (peek st ~depth:0);
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_store_global then begin
    add_cost st (cm.Cost_model.push + cm.Cost_model.store_check);
    let assoc = literal st (Opcode.a w) in
    store_with_check st assoc Layout.Association.value (peek st ~depth:0);
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_pop then begin
    add_cost st cm.Cost_model.push;
    ignore (pop st);
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_dup then begin
    add_cost st cm.Cost_model.push;
    push st (peek st ~depth:0);
    set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_jump then begin
    add_cost st cm.Cost_model.jump;
    set_pc st (pc + 1 + Opcode.signed_a w)
  end
  else if tag = Opcode.tag_jump_if_true || tag = Opcode.tag_jump_if_false then begin
    add_cost st cm.Cost_model.jump;
    let v = pop st in
    let u = st.sh.u in
    let truth =
      if Oop.equal v u.Universe.true_ then true
      else if Oop.equal v u.Universe.false_ then false
      else raise Must_be_boolean
    in
    let taken = if tag = Opcode.tag_jump_if_true then truth else not truth in
    if taken then set_pc st (pc + 1 + Opcode.signed_a w)
    else set_pc st (pc + 1)
  end
  else if tag = Opcode.tag_send then begin
    let sel = literal st (Opcode.a w) in
    let nargs = Opcode.b w in
    set_pc st (pc + 1);
    (* special-selector fast path: SmallInteger arithmetic without lookup *)
    let fast =
      if nargs = 1 then begin
        match special_of t.specials sel with
        | Some special ->
            let arg = peek st ~depth:0 and recv = peek st ~depth:1 in
            if Oop.is_small recv && Oop.is_small arg then begin
              let a = Oop.small_val recv and b = Oop.small_val arg in
              add_cost st cm.Cost_model.prim_arith;
              let u = st.sh.u in
              let boolv x = if x then u.Universe.true_ else u.Universe.false_ in
              let result =
                match special with
                | Add -> Some (Oop.of_small (a + b))
                | Sub -> Some (Oop.of_small (a - b))
                | Mul ->
                    let r = a * b in
                    if b <> 0 && r / b <> a then None else Some (Oop.of_small r)
                | Lt -> Some (boolv (a < b))
                | Gt -> Some (boolv (a > b))
                | Le -> Some (boolv (a <= b))
                | Ge -> Some (boolv (a >= b))
                | Eq -> Some (boolv (a = b))
                | Ne -> Some (boolv (a <> b))
                | Identical -> Some (boolv (a = b))
              in
              (match result with
               | Some r ->
                   popn st 2;
                   push st r;
                   true
               | None -> false)
            end
            else if (match special with Identical -> true | _ -> false)
            then begin
              add_cost st cm.Cost_model.prim_arith;
              let u = st.sh.u in
              let r =
                if Oop.equal arg recv then u.Universe.true_ else u.Universe.false_
              in
              popn st 2;
              push st r;
              true
            end
            else false
        | None -> false
      end
      else false
    in
    if not fast then
      (* a context or primitive allocation may request a scavenge; the pc
         must be rewound so the send re-executes cleanly afterwards *)
      (try full_send st ~sel ~nargs ~super:false with
       | Heap.Scavenge_needed ->
           set_pc st pc;
           raise Heap.Scavenge_needed)
  end
  else if tag = Opcode.tag_super_send then begin
    let sel = literal st (Opcode.a w) in
    let nargs = Opcode.b w in
    set_pc st (pc + 1);
    (try full_send st ~sel ~nargs ~super:true with
     | Heap.Scavenge_needed ->
         set_pc st pc;
         raise Heap.Scavenge_needed)
  end
  else if tag = Opcode.tag_push_block then begin
    add_cost st (cm.Cost_model.push + cm.Cost_model.ctx_fresh);
    let b = Opcode.b w in
    let nargs = b land 0x1f and argstart = b lsr 5 in
    let body_len = Opcode.a w in
    let block =
      Ctx.create_block_ctx st ~startpc:(pc + 1) ~nargs ~argstart
    in
    push st block;
    set_pc st (pc + 1 + body_len)
  end
  else if tag = Opcode.tag_return_top || tag = Opcode.tag_return_receiver then begin
    add_cost st cm.Cost_model.return_cost;
    let ctx = !(st.active_ctx) in
    let value =
      if tag = Opcode.tag_return_top then pop st else st.c_recv
    in
    let home = Heap.get h ctx Layout.Ctx.home in
    if Oop.equal home n then
      handle_return st ~from_ctx:ctx
        ~target:(Heap.get h ctx Layout.Ctx.sender) ~value
    else begin
      (* ^ inside a block: return from the home context's sender *)
      let target = Heap.get h home Layout.Ctx.sender in
      if Oop.equal target n then
        vm_error "block attempted a non-local return, but home has returned";
      (* sever the home chain so later ^-returns from the same home fail *)
      store_with_check st home Layout.Ctx.sender n;
      handle_return st ~from_ctx:ctx ~target ~value
    end
  end
  else if tag = Opcode.tag_block_return then begin
    add_cost st cm.Cost_model.return_cost;
    let ctx = !(st.active_ctx) in
    let value = pop st in
    let target = Heap.get h ctx Layout.Ctx.sender in
    (* leave the block reusable for another value send *)
    store_with_check st ctx Layout.Ctx.sender n;
    handle_return st ~from_ctx:ctx ~target ~value
  end
  else vm_error "unknown bytecode tag %d at pc %d" tag pc

let step t =
  let st = t.st in
  st.cost <- 0;
  (* 1. make sure a Process is loaded *)
  if Oop.equal !(st.active_process) Oop.sentinel then begin
    Primitives.pick_next st;
    if Oop.equal !(st.active_process) Oop.sentinel then Idle
    else Ran  (* charge the pick as one step *)
  end
  else begin
    (* 2. eden head-room *)
    if Heap.eden_avail st.sh.heap ~vp:st.id < low_water_mark then Need_gc
    else begin
      (* 3. periodic duties *)
      st.until_poll <- st.until_poll - 1;
      if st.until_poll <= 0 then begin
        st.until_poll <- st.sh.cm.Cost_model.event_poll_interval;
        do_event_poll st
      end;
      st.until_sched <- st.until_sched - 1;
      if st.until_sched <= 0 then begin
        st.until_sched <- st.sh.cm.Cost_model.sched_check_interval;
        do_sched_check st
      end;
      if Oop.equal !(st.active_process) Oop.sentinel then Ran
      else begin
        (* 4. refresh the context cache if the context changed *)
        if not (Oop.equal st.cached_ctx !(st.active_ctx)) then
          refresh_cache st;
        (* 5. one bytecode *)
        (try
           st.steps <- st.steps + 1;
           st.vp.Machine.steps <- st.vp.Machine.steps + 1;
           execute_bytecode t;
           (* a send or return may have changed the context *)
           Ran
         with
         | Heap.Scavenge_needed ->
             st.cost <- 0;
             Need_gc)
      end
    end
  end
