(* The free-context list.

   "BS maintains a list of unused stack frames, because it is more
   efficient to reuse one than to allocate and initialize a new one."
   Profiling an early MS revealed that serializing this list caused a
   bottleneck; replicating it per processor reduced the worst-case
   overhead from 160% to 65% (paper, section 3.2).

   Contexts come in two standard sizes (small and large frames).  Free
   contexts are chained through their [sender] slot.  The lists are
   flushed at every scavenge: their entries are dead objects that the
   scavenger reclaims by simply not copying them. *)

type mode =
  | Replicated               (* one pair of lists per processor *)
  | Shared_locked of Spinlock.t
  | Disabled                 (* always allocate fresh (ablation) *)

type lists = {
  mutable small : Oop.t;     (* head of the small-context chain *)
  mutable large : Oop.t;
}

type t = {
  mode : mode;
  lists : lists;             (* own (replicated) or the shared pair *)
  owner : int;               (* owning vp when replicated; -1 = shared *)
  entry_lock : Spinlock.t option;  (* for tenured-context link stores *)
  remember_cost : int;
  skip_bracket : bool;       (* fault injection: mutate without the lock *)
  mutable sanitizer : Sanitizer.t option;
  mutable reuses : int;
  mutable fresh : int;
  mutable returns : int;     (* contexts handed back *)
  mutable abandons : int;    (* flushes forced by processor failure *)
}

let empty_lists () = { small = Oop.sentinel; large = Oop.sentinel }

let create_replicated ?(owner = -1) ?entry_lock ?(remember_cost = 0)
    ?sanitizer () =
  { mode = Replicated; lists = empty_lists (); owner; entry_lock;
    remember_cost; skip_bracket = false; sanitizer;
    reuses = 0; fresh = 0; returns = 0; abandons = 0 }

(* [skip_bracket] injects the bug the lock exists to prevent: take/give
   mutate the shared list without entering the critical section, so the
   sanitizer's guarded-mutation check fires.  Only the schedule
   explorer's broken-configuration self-check sets it. *)
let create_shared ?entry_lock ?(remember_cost = 0) ?sanitizer
    ?(skip_bracket = false) ~lock ~lists () =
  { mode = Shared_locked lock; lists; owner = -1; entry_lock; remember_cost;
    skip_bracket; sanitizer; reuses = 0; fresh = 0; returns = 0; abandons = 0 }

let create_disabled () =
  { mode = Disabled; lists = empty_lists (); owner = -1; entry_lock = None;
    remember_cost = 0; skip_bracket = false; sanitizer = None;
    reuses = 0; fresh = 0; returns = 0; abandons = 0 }

let flush t =
  t.lists.small <- Oop.sentinel;
  t.lists.large <- Oop.sentinel

type size_class = Small | Large

let check_owner t ~vp ~now =
  match t.sanitizer with
  | Some san when t.mode = Replicated ->
      Sanitizer.check_owner san ~resource:"free contexts" ~owner:t.owner ~vp
        ~now
  | _ -> ()

let check_shared_mutation t ~vp ~now =
  match t.sanitizer with
  | Some san ->
      Sanitizer.check_guarded san ~resource:"free context list" ~vp ~now
        ~detail:""
  | None -> ()

(* Pop a recycled context, charging lock time for the shared variant.
   Returns (now, ctx) where ctx is [Oop.sentinel] when the list is empty. *)
let take ?(vp = -1) t heap ~now size =
  match t.mode with
  | Disabled ->
      (* still a fresh allocation: the reuse-rate denominator must count
         every context the ablation fails to recycle *)
      t.fresh <- t.fresh + 1;
      (now, Oop.sentinel)
  | Replicated | Shared_locked _ ->
      check_owner t ~vp ~now;
      let pop () =
        let head =
          match size with Small -> t.lists.small | Large -> t.lists.large
        in
        if Oop.equal head Oop.sentinel then begin
          t.fresh <- t.fresh + 1;
          Oop.sentinel
        end
        else begin
          let next = Heap.get heap head Layout.Ctx.sender in
          (match size with
           | Small -> t.lists.small <- next
           | Large -> t.lists.large <- next);
          t.reuses <- t.reuses + 1;
          head
        end
      in
      (match t.mode with
       | Shared_locked _ when t.skip_bracket ->
           (* fault injection: no lock, mutation in the open *)
           check_shared_mutation t ~vp ~now;
           (now, pop ())
       | Shared_locked lock ->
           Spinlock.critical ~vp lock ~now ~op_cycles:6 (fun () ->
               check_shared_mutation t ~vp ~now;
               pop ())
       | Replicated | Disabled -> (now, pop ()))

(* Hand a dead context back for reuse. *)
let give ?(vp = -1) t heap ~now size ctx =
  match t.mode with
  | Disabled -> now
  | Replicated | Shared_locked _ ->
      check_owner t ~vp ~now;
      t.returns <- t.returns + 1;
      (* Link the context into the chain.  A tenured context on the free
         list must stay visible to the entry table while it links to new
         space; MS holds one kernel lock at a time, so the insert is
         deferred out of the free-list section and performed under the
         entry-table lock afterwards (as the scheduler does). *)
      let pending = ref (-1) in
      let link () =
        let head =
          match size with Small -> t.lists.small | Large -> t.lists.large
        in
        if Heap.store_would_remember heap ctx head then
          pending := Oop.addr ctx;
        (* bypasses [Heap.store_ptr]: run the incremental collector's
           write barrier by hand (E18) *)
        Heap.major_note heap head;
        Heap.set_raw heap ctx Layout.Ctx.sender head;
        match size with
        | Small -> t.lists.small <- ctx
        | Large -> t.lists.large <- ctx
      in
      let now =
        match t.mode with
        | Shared_locked _ when t.skip_bracket ->
            check_shared_mutation t ~vp ~now;
            link ();
            now
        | Shared_locked lock ->
            let now, () =
              Spinlock.critical ~vp lock ~now ~op_cycles:6 (fun () ->
                  check_shared_mutation t ~vp ~now;
                  link ())
            in
            now
        | Replicated | Disabled ->
            link ();
            now
      in
      if !pending >= 0 && not (Heap.is_remembered heap !pending) then
        match t.entry_lock with
        | Some el ->
            let finish, () =
              Spinlock.critical ~vp el ~now ~op_cycles:t.remember_cost
                (fun () -> Heap.remember heap !pending)
            in
            finish
        | None ->
            Heap.remember heap !pending;
            now
      else now

(* Abandon the list wholesale: the owning processor crashed, so its
   recycled contexts are unreachable garbage (replicated lists) or
   possibly mid-mutation (shared list with a dead holder) — either way
   the next scavenge reclaims them by not copying. *)
let abandon t =
  t.abandons <- t.abandons + 1;
  flush t

(* Tenured contexts parked on the free lists are referenced only from
   the host-side heads; the incremental old-space collector treats the
   heads as roots (E18). *)
let iter_roots t f =
  f t.lists.small;
  f t.lists.large

let reuses t = t.reuses
let fresh_allocations t = t.fresh
let abandons t = t.abandons
