(** The primitive operations of the virtual machine.

    Primitives follow Smalltalk-80 semantics: they run when a send
    reaches a method carrying a [<primitive: n>] pragma, before any state
    has been mutated; on failure the method body runs instead.  This
    fall-through is what lets MS introduce new primitives (thisProcess,
    canRun:) while remaining image-compatible with BS (paper section 3.3).

    Numbering (loosely after the Blue Book): 1-17 SmallInteger arithmetic;
    41-49 Floats; 60-76 storage and symbols; 80 block value; 85-95
    Processes and Semaphores (93 thisProcess and 94 canRun: are MS's
    reorganized primitives); 100-107 I/O, clock, timers and the image
    server's request channel; 110-117
    programming-environment services; 120-122 error/scavenge/GC stats;
    135-137 perform: (dispatched by the interpreter); 140-141
    Characters. *)

type outcome =
  | Ok_done  (** arguments consumed, result pushed *)
  | Failed  (** nothing changed; run the method body *)
  | Switched  (** the context or process changed; the send is complete *)

(** {2 Process machinery shared with the interpreter and engine} *)

(** Save the running context into the active Process. *)
val save_active_context : State.t -> unit

val load_process : State.t -> Oop.t -> unit

(** Pick the next Process from the ready queue; leaves the interpreter
    idle when there is none. *)
val pick_next : State.t -> unit

(** The active Process stops running; [requeue] keeps it eligible. *)
val switch_away : State.t -> requeue:bool -> unit

(** The active Process finished (bottom return) or was terminated:
    notifies the engine and switches away. *)
val finish_process : State.t -> result:Oop.t -> unit

(** Signal a semaphore: wake a waiter or bump the excess count. *)
val signal_semaphore : State.t -> Oop.t -> unit

(** {2 Allocation helpers used by the interpreter} *)

val new_string_obj : State.t -> string -> Oop.t

val new_array_obj : State.t -> Oop.t list -> Oop.t

(** Everything written through the Transcript primitive (process-wide;
    cleared by [Vm.create]). *)
val transcript : Buffer.t

(** Run primitive [prim] for a send with [nargs] arguments on the stack. *)
val run : State.t -> prim:int -> nargs:int -> outcome
