(* The method-lookup cache.

   "Most Smalltalk implementations rely heavily on software method-lookup
   caches to achieve acceptable performance" — more than 10% of bytecodes
   need a lookup.  MS first serialized one shared cache with a two-level
   locking scheme, found the contention made the system "much too slow",
   and replicated the cache per processor instead (paper, section 3.2).

   Both variants are provided.  [Replicated] is a plain per-processor
   direct-mapped table (with a small extra indirection cost charged by the
   interpreter); [Shared_locked] is one table whose every probe passes
   through a read lock on the shared timeline, reproducing the contention
   the paper observed.  Caches are flushed at every scavenge (entries hold
   oops into new space) and when a method is (re)installed. *)

type mode =
  | Replicated
  | Shared_locked of Spinlock.t

let cache_size = 512  (* entries; power of two *)

type table = {
  sels : Oop.t array;
  clss : Oop.t array;
  meths : Oop.t array;
}

type t = {
  mode : mode;
  table : table;             (* per-interpreter, or the shared one *)
  owner : int;               (* owning vp when replicated; -1 = shared *)
  mutable sanitizer : Sanitizer.t option;
  mutable hits : int;
  mutable misses : int;
}

let make_table () = {
  sels = Array.make cache_size Oop.sentinel;
  clss = Array.make cache_size Oop.sentinel;
  meths = Array.make cache_size Oop.sentinel;
}

let create_replicated ?(owner = -1) ?sanitizer () =
  { mode = Replicated; table = make_table (); owner; sanitizer;
    hits = 0; misses = 0 }

(* All interpreters share [table] and [lock]; per-interpreter [t] values
   keep their own statistics. *)
let create_shared ?sanitizer ~lock ~table () =
  { mode = Shared_locked lock; table; owner = -1; sanitizer;
    hits = 0; misses = 0 }

(* A replicated cache belongs to one interpreter.  [flush] is exempt: the
   scavenger and method installation flush every cache cross-processor by
   design (stop-the-world, or the install broadcast). *)
let check_owner t ~vp ~now =
  match t.sanitizer with
  | Some san when t.mode = Replicated ->
      Sanitizer.check_owner san ~resource:"method cache" ~owner:t.owner ~vp
        ~now
  | _ -> ()

let slot sel cls = (sel lxor (cls * 0x9e3779b1)) land (cache_size - 1)

let flush_table tbl =
  Array.fill tbl.sels 0 cache_size Oop.sentinel;
  Array.fill tbl.clss 0 cache_size Oop.sentinel;
  Array.fill tbl.meths 0 cache_size Oop.sentinel

let flush t = flush_table t.table

(* Probe; returns the cached method and accumulates the lock time for the
   shared variant into the caller's clock via [now]. *)
let probe ?(vp = -1) t ~now ~sel ~cls =
  check_owner t ~vp ~now;
  let i = slot sel cls in
  let tbl = t.table in
  let read () =
    if Oop.equal tbl.sels.(i) sel && Oop.equal tbl.clss.(i) cls then begin
      t.hits <- t.hits + 1;
      Some tbl.meths.(i)
    end
    else begin
      t.misses <- t.misses + 1;
      None
    end
  in
  match t.mode with
  | Replicated -> (now, read ())
  | Shared_locked lock -> Spinlock.critical ~vp lock ~now ~op_cycles:4 read

let fill ?(vp = -1) t ~now ~sel ~cls ~meth =
  check_owner t ~vp ~now;
  let i = slot sel cls in
  let tbl = t.table in
  let write () =
    tbl.sels.(i) <- sel;
    tbl.clss.(i) <- cls;
    tbl.meths.(i) <- meth
  in
  match t.mode with
  | Replicated ->
      write ();
      now
  | Shared_locked lock ->
      let now, () = Spinlock.critical ~vp lock ~now ~op_cycles:6 write in
      now

let hits t = t.hits
let misses t = t.misses
