(* Per-interpreter state.  One of these exists for every virtual processor;
   replicating it (and the resources inside it) is how MS obtains
   parallelism: "we obtain parallelism by replicating the interpreter
   itself".

   The shared resources — the scheduler, the heap and its allocation lock,
   the entry-table lock, the devices — are referenced from every state and
   guarded according to the configured strategies. *)

exception Vm_error of string

let vm_error fmt = Printf.ksprintf (fun s -> raise (Vm_error s)) fmt

(* What happens when a timer's deadline is reached.  [Signal_sem]
   signals a Smalltalk semaphore (the Delay path); [Run_hook] calls back
   into engine-side OCaml — the image server schedules request arrivals
   this way, and a hook may add further timers while firing. *)
type timer_action =
  | Signal_sem of Oop.t ref             (* rooted semaphore cell *)
  | Run_hook of (now:int -> unit)

type shared = {
  u : Universe.t;
  heap : Heap.t;
  cm : Cost_model.t;
  machine : Machine.t;
  sched : Scheduler.t;
  alloc_lock : Spinlock.t;
  entry_lock : Spinlock.t;
  display : Devices.display;
  input : Devices.input_queue;
  (* specials resolved once at bootstrap *)
  mutable sym_does_not_understand : Oop.t;
  input_semaphore : Oop.t ref;            (* signalled on input events *)
  (* engine callbacks *)
  mutable on_terminate : Oop.t -> Oop.t -> unit;  (* process, result *)
  mutable on_method_install : unit -> unit;  (* flush the method caches *)
  (* pending timers, a stable min-heap keyed by absolute fire cycle *)
  timers : timer_action Calendar.t;
  mutable gc_wanted : bool;               (* set by the scavenge primitive *)
  (* E17 image-server plumbing: request ids ride the mailbox from the
     arrival generator to the worker pool; completions call back out *)
  mutable request_mailbox : int Mailbox.t option;
  mutable on_request_done : rid:int -> now:int -> unit;
  (* compiler hooks, installed by the image layer to avoid a dependency
     cycle (the compile/decompile primitives call up into stcompile) *)
  mutable compile_hook : (cls:Oop.t -> class_side:bool -> string -> Oop.t) option;
  mutable decompile_hook : (meth:Oop.t -> string) option;
  (* serialization checking; mode Off unless configured *)
  sanitizer : Sanitizer.t;
}

type t = {
  id : int;                      (* virtual processor id *)
  sh : shared;
  vp : Machine.vp;
  mcache : Method_cache.t;
  free_ctxs : Free_contexts.t;
  (* the active Smalltalk Process and its context chain; these refs are
     registered as scavenge roots *)
  active_ctx : Oop.t ref;
  active_process : Oop.t ref;
  (* cycles accumulated while executing the current step *)
  mutable cost : int;
  (* cached decode of the active context; invalidated on context switch
     and after every scavenge *)
  mutable cached_ctx : Oop.t;
  mutable c_meth : Oop.t;
  mutable c_bc_addr : int;       (* first bytecode word address *)
  mutable c_bc_len : int;
  mutable c_frame : int;         (* address of frame slot 0 *)
  mutable c_home_frame : int;    (* address of home frame slot 0 *)
  mutable c_recv : Oop.t;
  mutable c_ivar_base : int;     (* address of receiver's first field *)
  (* periodic duties *)
  mutable until_poll : int;
  mutable until_sched : int;
  (* statistics *)
  mutable steps : int;
  mutable sends : int;
  mutable prim_calls : int;
  mutable ctx_switches : int;
}

let make ~id ~sh ~mcache ~free_ctxs =
  let st = {
    id;
    sh;
    vp = Machine.vp sh.machine id;
    mcache;
    free_ctxs;
    active_ctx = ref Oop.sentinel;
    active_process = ref Oop.sentinel;
    cost = 0;
    cached_ctx = Oop.sentinel;
    c_meth = Oop.sentinel;
    c_bc_addr = 0;
    c_bc_len = 0;
    c_frame = 0;
    c_home_frame = 0;
    c_recv = Oop.sentinel;
    c_ivar_base = 0;
    until_poll = sh.cm.Cost_model.event_poll_interval;
    until_sched = sh.cm.Cost_model.sched_check_interval;
    steps = 0;
    sends = 0;
    prim_calls = 0;
    ctx_switches = 0;
  } in
  Heap.add_root sh.heap st.active_ctx;
  Heap.add_root sh.heap st.active_process;
  st

let nil st = st.sh.u.Universe.nil

(* Virtual time at the current point inside the running step. *)
let now st = st.vp.Machine.clock + st.cost

let add_cost st c = st.cost <- st.cost + c

(* Absorb the result of a timeline operation (lock, device) that returned
   an absolute completion time. *)
let sync_to st finish =
  let n = now st in
  if finish > n then st.cost <- st.cost + (finish - n)

let invalidate_cache st = st.cached_ctx <- Oop.sentinel

(* Recompute the cached context decode.  Called lazily from the step
   function whenever [active_ctx] differs from [cached_ctx]. *)
let refresh_cache st =
  let h = st.sh.heap in
  let u = st.sh.u in
  let ctx = !(st.active_ctx) in
  let n = nil st in
  let meth = Heap.get h ctx Layout.Ctx.meth in
  let bc = Heap.get h meth Layout.Method.bytecodes in
  let home = Heap.get h ctx Layout.Ctx.home in
  let home_ctx = if Oop.equal home n then ctx else home in
  let recv = Heap.get h ctx Layout.Ctx.receiver in
  st.cached_ctx <- ctx;
  st.c_meth <- meth;
  st.c_bc_addr <- Oop.addr bc + Layout.header_words;
  st.c_bc_len <- Heap.slots h (Oop.addr bc);
  st.c_frame <- Oop.addr ctx + Layout.header_words + Layout.Ctx.fixed_slots;
  st.c_home_frame <-
    Oop.addr home_ctx + Layout.header_words + Layout.Ctx.fixed_slots;
  st.c_recv <- recv;
  st.c_ivar_base <-
    (if Oop.is_small recv then 0 else Oop.addr recv + Layout.header_words);
  ignore u

(* --- context stack operations (on the active context) --- *)

let get_pc st = Oop.small_val (Heap.get st.sh.heap !(st.active_ctx) Layout.Ctx.pc)
let set_pc st pc =
  Heap.set_raw st.sh.heap !(st.active_ctx) Layout.Ctx.pc (Oop.of_small pc)

let get_sp st =
  Oop.small_val (Heap.get st.sh.heap !(st.active_ctx) Layout.Ctx.stackp)
let set_sp st sp =
  Heap.set_raw st.sh.heap !(st.active_ctx) Layout.Ctx.stackp (Oop.of_small sp)

(* Pointer store with the generation-scavenging store check; an insertion
   into the entry table passes through the entry-table lock (serialization,
   paper section 3.1) — acquired before the store, so the insert happens
   inside the critical section. *)
let store_with_check st obj i v =
  let h = st.sh.heap in
  if Heap.store_would_remember h obj v then begin
    let finish, () =
      Spinlock.critical ~vp:st.id st.sh.entry_lock ~now:(now st)
        ~op_cycles:st.sh.cm.Cost_model.remember_insert (fun () ->
          ignore (Heap.store_ptr h obj i v))
    in
    sync_to st finish
  end
  else ignore (Heap.store_ptr h obj i v)

let push st v =
  let sp = get_sp st in
  store_with_check st !(st.active_ctx) (Layout.Ctx.fixed_slots + sp) v;
  set_sp st (sp + 1)

let pop st =
  let sp = get_sp st - 1 in
  let v = Heap.get st.sh.heap !(st.active_ctx) (Layout.Ctx.fixed_slots + sp) in
  set_sp st sp;
  v

let peek st ~depth =
  let sp = get_sp st in
  Heap.get st.sh.heap !(st.active_ctx) (Layout.Ctx.fixed_slots + sp - 1 - depth)

let popn st n = set_sp st (get_sp st - n)
