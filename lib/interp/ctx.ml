(* Context (stack frame) management: allocation through the free-context
   lists, method and block activation, and returns.

   Contexts are heap objects of two standard sizes.  A method context's
   frame holds its temporaries followed by its evaluation stack; a block
   context's frame is evaluation stack only, its temporaries (including
   block parameters) living in the home context, Smalltalk-80 style. *)

open State

let frame_need ~ntemps ~maxstack = ntemps + maxstack

let size_class_of frame =
  if frame <= Layout.Ctx.small_frame then Free_contexts.Small
  else if frame <= Layout.Ctx.large_frame then Free_contexts.Large
  else vm_error "context frame too large (%d slots)" frame

let frame_slots = function
  | Free_contexts.Small -> Layout.Ctx.small_frame
  | Free_contexts.Large -> Layout.Ctx.large_frame

(* Allocate a context of [size], recycling from the free list when
   possible.  Charges the appropriate cost-model entries.  May raise
   [Heap.Scavenge_needed]; callers must not have mutated any state yet. *)
let alloc_context st ~size ~cls =
  let sh = st.sh in
  let cm = sh.cm in
  let h = sh.heap in
  let n, recycled =
    Free_contexts.take ~vp:st.id st.free_ctxs h ~now:(now st) size
  in
  sync_to st n;
  if not (Oop.equal recycled Oop.sentinel) then begin
    add_cost st cm.Cost_model.ctx_recycled;
    Heap.set_class h (Oop.addr recycled) cls;
    recycled
  end
  else begin
    let slots = Layout.Ctx.fixed_slots + frame_slots size in
    (* serialized allocation: the eden bump is under the allocation lock *)
    let finish, ctx =
      Spinlock.critical ~vp:st.id sh.alloc_lock ~now:(now st)
        ~op_cycles:
          (cm.Cost_model.alloc_base + (cm.Cost_model.alloc_per_word * slots))
        (fun () -> Heap.alloc_new h ~vp:st.id ~slots ~raw:false ~cls ())
    in
    sync_to st finish;
    add_cost st cm.Cost_model.ctx_fresh;
    ctx
  end

(* General-purpose new-space allocation for primitives (basicNew etc.),
   under the allocation lock. *)
let alloc_object st ~slots ~raw ?(bytes = false) ~cls () =
  let sh = st.sh in
  let cm = sh.cm in
  let finish, o =
    Spinlock.critical ~vp:st.id sh.alloc_lock ~now:(now st)
      ~op_cycles:(cm.Cost_model.alloc_base + (cm.Cost_model.alloc_per_word * slots))
      (fun () -> Heap.alloc_new sh.heap ~vp:st.id ~slots ~raw ~bytes ~cls ())
  in
  sync_to st finish;
  o

let minfo st meth =
  Oop.small_val (Heap.get st.sh.heap meth Layout.Method.info)

(* Switch the interpreter to [ctx]. *)
let switch_to st ctx =
  st.active_ctx := ctx;
  invalidate_cache st

(* Activate [meth] for a send: the caller's stack holds receiver and
   [nargs] arguments on top.  Allocates the new context, copies the
   arguments into its temporaries, pops the caller's stack and switches. *)
let activate_method st ~meth ~nargs =
  let h = st.sh.heap in
  let n = nil st in
  let info = minfo st meth in
  let ntemps = Layout.Minfo.ntemps info in
  let maxstack = Layout.Minfo.maxstack info in
  let size = size_class_of (frame_need ~ntemps ~maxstack) in
  let ctx =
    alloc_context st ~size ~cls:st.sh.u.Universe.classes.Universe.method_context
  in
  let recv = peek st ~depth:nargs in
  let set i v = Heap.set_raw h ctx i v in
  let setp i v = store_with_check st ctx i v in
  setp Layout.Ctx.sender !(st.active_ctx);
  set Layout.Ctx.pc (Oop.of_small 0);
  set Layout.Ctx.stackp (Oop.of_small ntemps);
  setp Layout.Ctx.meth meth;
  setp Layout.Ctx.receiver recv;
  setp Layout.Ctx.home n;
  set Layout.Ctx.startpc (Oop.of_small 0);
  set Layout.Ctx.argstart (Oop.of_small 0);
  set Layout.Ctx.nargs (Oop.of_small nargs);
  (* arguments into the first temporaries; remaining temps nil *)
  for i = 0 to nargs - 1 do
    setp (Layout.Ctx.fixed_slots + i) (peek st ~depth:(nargs - 1 - i))
  done;
  for i = nargs to ntemps - 1 do
    setp (Layout.Ctx.fixed_slots + i) n
  done;
  add_cost st (st.sh.cm.Cost_model.ctx_init_per_word * ntemps);
  popn st (nargs + 1);
  switch_to st ctx

(* Create a BlockContext for a Push_block instruction. *)
let create_block_ctx st ~startpc ~nargs ~argstart =
  let h = st.sh.heap in
  let active = !(st.active_ctx) in
  let n = nil st in
  let home0 = Heap.get h active Layout.Ctx.home in
  let home = if Oop.equal home0 n then active else home0 in
  let meth = Heap.get h active Layout.Ctx.meth in
  let info = minfo st meth in
  let maxstack = Layout.Minfo.maxstack info in
  let size = size_class_of maxstack in
  let ctx =
    alloc_context st ~size ~cls:st.sh.u.Universe.classes.Universe.block_context
  in
  let set i v = Heap.set_raw h ctx i v in
  let setp i v = store_with_check st ctx i v in
  setp Layout.Ctx.sender n;
  set Layout.Ctx.pc (Oop.of_small startpc);
  set Layout.Ctx.stackp (Oop.of_small 0);
  setp Layout.Ctx.meth meth;
  setp Layout.Ctx.receiver (Heap.get h active Layout.Ctx.receiver);
  setp Layout.Ctx.home home;
  set Layout.Ctx.startpc (Oop.of_small startpc);
  set Layout.Ctx.argstart (Oop.of_small argstart);
  set Layout.Ctx.nargs (Oop.of_small nargs);
  ctx

(* Activate a block for the value/value:... primitive.  The caller's stack
   holds the block and [nargs] arguments; the arguments are copied into the
   home context's temporaries at [argstart]. *)
let activate_block st ~block ~nargs =
  let h = st.sh.heap in
  let expected = Oop.small_val (Heap.get h block Layout.Ctx.nargs) in
  if expected <> nargs then None
  else begin
    let home = Heap.get h block Layout.Ctx.home in
    let argstart = Oop.small_val (Heap.get h block Layout.Ctx.argstart) in
    for i = 0 to nargs - 1 do
      store_with_check st home
        (Layout.Ctx.fixed_slots + argstart + i)
        (peek st ~depth:(nargs - 1 - i))
    done;
    popn st (nargs + 1);
    store_with_check st block Layout.Ctx.sender !(st.active_ctx);
    Heap.set_raw h block Layout.Ctx.pc
      (Heap.get h block Layout.Ctx.startpc);
    Heap.set_raw h block Layout.Ctx.stackp (Oop.of_small 0);
    switch_to st block;
    Some ()
  end

(* Should this dead context be handed to the free list?  Only method
   contexts of block-free methods can be safely recycled: nothing else can
   still reference them. *)
let recyclable st ctx =
  let h = st.sh.heap in
  Oop.equal (Heap.get h ctx Layout.Ctx.home) (nil st)
  && not (Layout.Minfo.has_blocks (minfo st (Heap.get h ctx Layout.Ctx.meth)))

let size_class_of_ctx st ctx =
  let slots = Heap.slots st.sh.heap (Oop.addr ctx) in
  if slots - Layout.Ctx.fixed_slots <= Layout.Ctx.small_frame then
    Free_contexts.Small
  else Free_contexts.Large

(* Return [value] to [target], recycling the dead context when safe.
   Returns false when [target] is nil: the process's bottom frame returned
   and the process is finished. *)
let return_to st ~from_ctx ~target ~value =
  if Oop.equal target (nil st) || Oop.equal target Oop.sentinel then false
  else begin
    (if recyclable st from_ctx then begin
       let n =
         Free_contexts.give ~vp:st.id st.free_ctxs st.sh.heap ~now:(now st)
           (size_class_of_ctx st from_ctx) from_ctx
       in
       sync_to st n
     end);
    switch_to st target;
    push st value;
    true
  end
