(* Dining philosophers with Smalltalk Semaphores on five simulated
   processors: the classic exercise for the Process/Semaphore machinery
   the paper keeps ("the basic mechanisms remain the Process and the
   Semaphore").  Deadlock is avoided by the resource-ordering trick. *)

let classes = {st|
CLASS Philosopher SUPER Object IVARS id meals
METHODS Philosopher
dineWith: forks id: k log: plate done: sem
    [ | first second |
      "pick forks in a fixed global order to avoid deadlock"
      first := forks at: (k min: (k \\ 5) + 1).
      second := forks at: (k max: (k \\ 5) + 1).
      1 to: 6 do: [:round |
          first wait.
          second wait.
          plate at: k put: (plate at: k) + 1.
          second signal.
          first signal].
      sem signal ] fork
!
|st}

let () =
  print_endline "Dining philosophers (5 processors, 5 Processes)";
  let vm = Vm.create (Config.ms ~processors:5 ()) in
  Vm.load_classes vm classes;
  let result =
    Vm.eval_to_string vm
      {st|
| forks plate sem |
forks := (1 to: 5) collect: [:i | Semaphore forMutualExclusion].
plate := Array with: 0 with: 0 with: 0 with: 0 with: 0.
sem := Semaphore new.
1 to: 5 do: [:k |
    Philosopher new dineWith: forks id: k log: plate done: sem].
1 to: 5 do: [:k | sem wait].
plate printString
|st}
  in
  Printf.printf "meals eaten per philosopher: %s\n" result;
  Printf.printf "simulated time: %.2f s, context switches: %d\n"
    (Vm.seconds vm)
    (Array.fold_left (fun n st -> n + st.State.ctx_switches) 0 vm.Vm.states)
