(* Quickstart: create a VM, evaluate Smalltalk expressions, and watch the
   compiler, interpreter and Generation Scavenging collector at work. *)

let () =
  print_endline "Multiprocessor Smalltalk - quickstart";
  print_endline "=====================================";
  let vm = Vm.create (Config.baseline_bs ()) in
  let show expr =
    Printf.printf "%-58s => %s\n%!" expr (Vm.eval_to_string vm expr)
  in
  show "3 + 4";
  show "10 factorial";
  show "(1 to: 10) inject: 0 into: [:a :b | a + b]";
  show "'hello' , ' ' , 'world'";
  show "#(3 1 2) asOrderedCollection printString";
  show "((Point x: 1 y: 2) + (Point x: 10 y: 20)) printString";
  show "((1 to: 50) select: [:i | i isPrime]) printString";
  show "3.25 + 0.75";
  (* define a class and methods at runtime, from OCaml... *)
  Vm.load_classes vm
    {st|
CLASS Counter SUPER Object IVARS count
METHODS Counter
increment
    count := (count ifNil: [0]) + 1.
    ^count
!
count
    ^count ifNil: [0]
!
|st};
  show "| c | c := Counter new. 5 timesRepeat: [c increment]. c count";
  (* ... and from Smalltalk, through the Mirror *)
  show "Mirror compile: 'double ^count * 2' into: Counter classSide: false. \
        (Counter new increment; increment; yourself) double";
  (* the interpreter runs on a simulated 1-MIPS Firefly; how long did all
     of this take in 1988? *)
  Printf.printf "\nsimulated time on the Firefly: %.2f seconds\n" (Vm.seconds vm);
  Printf.printf "scavenges: %d, objects allocated: %d\n"
    (Heap.scavenge_count vm.Vm.heap) (Heap.allocations vm.Vm.heap)
