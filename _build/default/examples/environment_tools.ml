(* The programming environment: the interactive tools the macro benchmarks
   are built from - browsing, searching, compiling, decompiling and
   inspecting, all running as Smalltalk code on the VM. *)

let () =
  let vm = Vm.create (Config.ms ~processors:1 ()) in
  let eval src = Vm.eval vm src in
  let show_string src = Heap.string_value vm.Vm.heap (eval src) in
  print_endline "-- class definition ------------------------------------";
  print_endline (show_string "Point definitionString");
  print_endline "";
  print_endline "-- hierarchy under Collection ---------------------------";
  print_string (show_string "Collection hierarchyString");
  print_endline "";
  print_endline "-- implementors of #printString -------------------------";
  print_endline
    (show_string
       "((Mirror implementorsOf: #printString) collect: [:c | c name asString]) printString");
  print_endline "";
  print_endline "-- senders of #factorial --------------------------------";
  print_endline
    (show_string "(Mirror sendersOf: #factorial) printString");
  print_endline "";
  print_endline "-- decompiling Integer>>factorial -----------------------";
  print_endline (show_string "(Integer methodAt: #factorial) decompile");
  print_endline "-- the same method, disassembled ------------------------";
  (match Universe.find_class vm.Vm.u "Integer" with
   | Some cls ->
       let sel = Universe.intern vm.Vm.u "factorial" in
       let dict = Heap.get vm.Vm.heap cls Layout.Class.method_dict in
       (match Class_builder.dict_find vm.Vm.u dict sel with
        | Some meth -> print_string (Method_mirror.disassemble vm.Vm.u meth)
        | None -> print_endline "factorial not found")
   | None -> print_endline "Integer not found");
  print_endline "";
  print_endline "-- inspecting a Point -----------------------------------";
  print_endline
    (show_string
       {st|
| insp ws |
insp := Inspector on: (Point x: 3 y: 4).
ws := WriteStream on: (String new: 32).
insp labels with: insp fields do: [:l :f |
    ws nextPutAll: l; nextPutAll: ': '; nextPutAll: f; cr].
ws contents
|st});
  Printf.printf "simulated time: %.2f s\n" (Vm.seconds vm)
