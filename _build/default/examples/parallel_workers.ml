(* Parallel speedup on the simulated multiprocessor: counting primes with
   k worker Processes on k processors.  The same Smalltalk program runs on
   a 1-processor and a 5-processor MS; simulated elapsed time shows the
   speedup (and its limits: the serialized allocator, the scavenge
   rendezvous, and the memory bus). *)

let worker_classes = {st|
CLASS PrimeKit SUPER Object
METHODS PrimeKit
countFrom: lo to: hi into: results slot: k done: sem
    [ | count |
      count := 0.
      lo to: hi do: [:i | i isPrime ifTrue: [count := count + 1]].
      results at: k put: count.
      sem signal ] fork
!
|st}

let run ~processors ~workers =
  let vm = Vm.create (Config.ms ~processors ()) in
  Vm.load_classes vm worker_classes;
  let src =
    Printf.sprintf
      {st|
| results sem kit chunk total |
results := Array new: %d.
sem := Semaphore new.
kit := PrimeKit new.
chunk := 6000 // %d.
1 to: %d do: [:k |
    kit countFrom: (k - 1) * chunk + 1 to: k * chunk
        into: results slot: k done: sem].
1 to: %d do: [:k | sem wait].
total := 0.
results do: [:c | total := total + c].
^total
|st}
      workers workers workers workers
  in
  let t0 = Vm.cycles vm in
  let proc = Vm.spawn vm src in
  (match Vm.run ~watch:proc vm with
   | Vm.Finished v ->
       let seconds =
         Cost_model.seconds Cost_model.firefly (Vm.cycles vm - t0)
       in
       (Oop.small_val v, seconds)
   | Vm.Deadlock | Vm.Cycle_limit -> failwith "parallel run failed")

let () =
  print_endline "Parallel prime counting on the simulated Firefly";
  print_endline "================================================";
  let primes1, t1 = run ~processors:1 ~workers:1 in
  Printf.printf "1 processor,  1 worker : %4d primes in %6.2f simulated s\n%!"
    primes1 t1;
  List.iter
    (fun p ->
      let primes, t = run ~processors:p ~workers:p in
      Printf.printf
        "%d processors, %d workers: %4d primes in %6.2f simulated s  (speedup %.2fx)\n%!"
        p p primes t (t1 /. t))
    [ 2; 3; 5 ];
  print_endline "";
  print_endline
    "The speedup is sublinear: allocation is serialized, scavenges stop the";
  print_endline
    "world, and the shared memory bus slows everyone (paper, sections 3-4)."
