(* Producers and consumers over a SharedQueue: Smalltalk-80's standard
   thread-safe queue (two Semaphores: mutual exclusion plus a counting
   read-synchronisation semaphore), running on five simulated processors
   with Delay-paced producers. *)

let classes = {st|
CLASS PipelineKit SUPER Object
METHODS PipelineKit
produce: count onto: queue id: k
    [ 1 to: count do: [:i |
          (Delay forMilliseconds: 3 + (k * 2)) wait.
          queue nextPut: (k * 1000) + i] ] forkNamed: 'producer'
!
consume: count from: queue into: results slot: k done: sem
    [ | sum |
      sum := 0.
      count timesRepeat: [sum := sum + queue next].
      results at: k put: sum.
      sem signal ] forkNamed: 'consumer'
!
|st}

let () =
  print_endline "Producer/consumer over a SharedQueue (5 processors)";
  let vm = Vm.create (Config.ms ~processors:5 ()) in
  Vm.load_classes vm classes;
  let result =
    Vm.eval_to_string vm
      {st|
| queue kit results sem total |
queue := SharedQueue new.
kit := PipelineKit new.
results := Array new: 2.
sem := Semaphore new.
"three producers make 20 items each; two consumers take 30 each"
1 to: 3 do: [:k | kit produce: 20 onto: queue id: k].
1 to: 2 do: [:k | kit consume: 30 from: queue into: results slot: k done: sem].
sem wait. sem wait.
total := (results at: 1) + (results at: 2).
queue isEmpty
    ifTrue: ['all 60 items consumed, checksum ' , total printString]
    ifFalse: ['queue not drained!']
|st}
  in
  Printf.printf "%s\n" result;
  Printf.printf "simulated time: %.2f s\n" (Vm.seconds vm);
  let r = Instrumentation.gather vm in
  List.iter
    (fun (l : Instrumentation.lock_row) ->
      if l.Instrumentation.enabled && l.Instrumentation.acquisitions > 0 then
        Printf.printf "%-22s %6d acquisitions, %4d contended\n"
          l.Instrumentation.lock_name l.Instrumentation.acquisitions
          l.Instrumentation.contended)
    r.Instrumentation.locks
