examples/environment_tools.mli:
