examples/parallel_workers.mli:
