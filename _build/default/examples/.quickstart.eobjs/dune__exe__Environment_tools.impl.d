examples/environment_tools.ml: Class_builder Config Heap Layout Method_mirror Printf Universe Vm
