examples/producer_consumer.ml: Config Instrumentation List Printf Vm
