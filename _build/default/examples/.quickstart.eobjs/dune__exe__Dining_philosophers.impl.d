examples/dining_philosophers.ml: Array Config Printf State Vm
