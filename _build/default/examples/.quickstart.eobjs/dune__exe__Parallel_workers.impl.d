examples/parallel_workers.ml: Config Cost_model List Oop Printf Vm
