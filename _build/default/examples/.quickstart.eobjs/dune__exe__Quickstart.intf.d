examples/quickstart.mli:
