examples/quickstart.ml: Config Heap Printf Vm
