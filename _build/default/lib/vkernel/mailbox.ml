(* Virtual-time message passing, in the spirit of the V kernel's IPC.

   MS uses the V interprocess-communication mechanism (together with a
   global flag) to synchronize scavenges; the display controller and input
   devices are also reached through messages.  A mailbox is a FIFO of
   messages stamped with the virtual time at which they were sent; a
   receive at time [now] delivers the oldest message whose send time is at
   or before [now], or reports when the next one will arrive. *)

type 'a t = {
  name : string;
  queue : (int * 'a) Queue.t;  (* (send_time, payload) *)
  mutable sends : int;
}

type 'a receive_result =
  | Message of 'a
  | Empty                 (* nothing in flight *)
  | Arrives_at of int     (* a message exists but was sent in the future *)

let make name = { name; queue = Queue.create (); sends = 0 }

let name t = t.name
let length t = Queue.length t.queue
let sends t = t.sends

let send t ~now payload =
  t.sends <- t.sends + 1;
  Queue.add (now, payload) t.queue

let receive t ~now =
  match Queue.peek_opt t.queue with
  | None -> Empty
  | Some (sent, _) when sent > now -> Arrives_at sent
  | Some (_, _) ->
      let _, payload = Queue.pop t.queue in
      Message payload
