(** Virtual-time message passing, in the spirit of the V kernel's IPC.

    A mailbox is a FIFO of messages stamped with their send times; a
    receive at time [now] delivers the oldest message sent at or before
    [now], or reports when the next one arrives. *)

type 'a t

type 'a receive_result =
  | Message of 'a
  | Empty  (** nothing in flight *)
  | Arrives_at of int  (** a message exists but was sent in the future *)

val make : string -> 'a t

val name : 'a t -> string

val length : 'a t -> int

val sends : 'a t -> int

val send : 'a t -> now:int -> 'a -> unit

val receive : 'a t -> now:int -> 'a receive_result
