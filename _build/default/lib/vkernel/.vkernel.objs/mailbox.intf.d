lib/vkernel/mailbox.mli:
