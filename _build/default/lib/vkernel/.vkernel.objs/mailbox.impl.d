lib/vkernel/mailbox.ml: Queue
