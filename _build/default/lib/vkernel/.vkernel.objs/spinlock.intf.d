lib/vkernel/spinlock.mli: Cost_model Machine
