lib/vkernel/machine.ml: Array Cost_model
