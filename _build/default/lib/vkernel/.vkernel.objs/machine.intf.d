lib/vkernel/machine.mli: Cost_model
