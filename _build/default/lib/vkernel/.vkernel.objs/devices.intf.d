lib/vkernel/devices.mli: Cost_model Spinlock
