lib/vkernel/spinlock.ml: Cost_model Machine
