lib/vkernel/devices.ml: Cost_model List Spinlock
