lib/vkernel/cost_model.ml:
