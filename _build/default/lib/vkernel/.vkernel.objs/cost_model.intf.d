lib/vkernel/cost_model.mli:
