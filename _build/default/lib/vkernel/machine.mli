(** The simulated Firefly: virtual processors with cycle clocks.

    The engine always steps the runnable processor with the smallest
    clock, which guarantees that operations on shared resources are
    processed in nondecreasing virtual-time order — the property the
    contention models in {!Spinlock} and {!Devices} rely on.  The shared
    memory bus is a multiplicative slowdown on memory-heavy operations,
    growing with the number of processors actively executing. *)

type vp_state =
  | Running  (** executing an interpreter *)
  | Idle  (** no Smalltalk Process; polling the ready queue *)
  | Parked_for_gc
  | Halted

type vp = {
  id : int;
  mutable clock : int;  (** this processor's virtual time, in cycles *)
  mutable state : vp_state;
  mutable steps : int;  (** bytecodes executed *)
  mutable spin_cycles : int;  (** cycles lost waiting for locks *)
  mutable gc_wait_cycles : int;  (** cycles lost to scavenge pauses *)
}

type t

val make : processors:int -> Cost_model.t -> t

val processors : t -> int

val vp : t -> int -> vp

(** Live processors (running or idle). *)
val active_count : t -> int

(** Processors actually executing bytecodes; idle ones stay off the bus. *)
val running_count : t -> int

(** Change a processor's state, refreshing the bus multiplier. *)
val set_state : t -> vp -> vp_state -> unit

(** Charge CPU-local cycles. *)
val charge : t -> vp -> int -> unit

(** Charge memory-heavy cycles, inflated by bus contention. *)
val charge_mem : t -> vp -> int -> unit

(** The runnable processor with the smallest clock, if any. *)
val min_runnable : t -> vp option

val max_clock : t -> int

val all_parked_or_halted : t -> bool

(** Advance every live clock to at least the given time (end of a
    stop-the-world pause); the advance is recorded as GC wait. *)
val synchronize_clocks : t -> int -> unit
