(* Decompilation: CompiledMethod -> Smalltalk source.

   The decompiler symbolically executes the bytecode, rebuilding an AST.
   Control flow is reconstructed by recognising the shapes our code
   generator emits: the conditional diamond (ifTrue:/ifFalse:/
   ifTrue:ifFalse:), the short-circuit forms (and:/or:), and loops
   (backward jumps).  Inlined to:do: loops decompile to an equivalent
   whileTrue: form — semantically identical, syntactically humbler; the
   "decompile class" macro benchmark measures reconstruction work, not
   pretty-printing fidelity.

   Temporaries are renamed positionally: method arguments become a1..an,
   other frame slots t<k>, block parameters keep their frame-slot names. *)

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type input = {
  code : Opcode.t array;
  literal : int -> Ast.literal;       (* literal table as AST literals *)
  selector_of : int -> string;        (* literal index -> selector name *)
  nargs : int;
}

let temp_name inp slot =
  if slot < inp.nargs then Printf.sprintf "a%d" (slot + 1)
  else Printf.sprintf "t%d" (slot + 1)

(* Decode the range [lo, hi) producing statements; the final stack is
   returned so callers can extract branch values. *)
let rec decode inp ~lo ~hi =
  let stmts = ref [] in
  let stack = ref [] in
  let push e = stack := e :: !stack in
  let pop () =
    match !stack with
    | e :: rest -> stack := rest; e
    | [] -> unsupported "stack underflow during decompilation"
  in
  let flush_stmt e =
    match e with
    | Ast.Lit _ | Ast.Self | Ast.Var _ -> ()   (* effect-free; drop *)
    | _ -> stmts := Ast.Expr e :: !stmts
  in
  let pc = ref lo in
  while !pc < hi do
    let op = inp.code.(!pc) in
    let next = !pc + 1 in
    (match op with
     | Opcode.Push_receiver -> push Ast.Self; pc := next
     | Opcode.Push_temp n -> push (Ast.Var (temp_name inp n)); pc := next
     | Opcode.Push_ivar n ->
         push (Ast.Var (Printf.sprintf "iv%d" (n + 1))); pc := next
     | Opcode.Push_literal n -> push (Ast.Lit (inp.literal n)); pc := next
     | Opcode.Push_nil -> push (Ast.Lit Ast.Lit_nil); pc := next
     | Opcode.Push_true -> push (Ast.Lit Ast.Lit_true); pc := next
     | Opcode.Push_false -> push (Ast.Lit Ast.Lit_false); pc := next
     | Opcode.Push_smallint v -> push (Ast.Lit (Ast.Lit_int v)); pc := next
     | Opcode.Push_global n -> push (Ast.Var (inp.selector_of n)); pc := next
     | Opcode.Store_temp n ->
         let v = pop () in
         push (Ast.Assign (temp_name inp n, v));
         pc := next
     | Opcode.Store_ivar n ->
         let v = pop () in
         push (Ast.Assign (Printf.sprintf "iv%d" (n + 1), v));
         pc := next
     | Opcode.Store_global n ->
         let v = pop () in
         push (Ast.Assign (inp.selector_of n, v));
         pc := next
     | Opcode.Pop -> flush_stmt (pop ()); pc := next
     | Opcode.Dup ->
         (* cascades duplicate the receiver; reuse the expression *)
         let e = pop () in
         push e; push e; pc := next
     | Opcode.Send { selector; nargs } ->
         let args = List.init nargs (fun _ -> pop ()) |> List.rev in
         let receiver = pop () in
         push (Ast.Message { receiver; selector = inp.selector_of selector; args });
         pc := next
     | Opcode.Super_send { selector; nargs } ->
         let args = List.init nargs (fun _ -> pop ()) |> List.rev in
         let _receiver = pop () in
         push (Ast.Message
                 { receiver = Ast.Super;
                   selector = inp.selector_of selector; args });
         pc := next
     | Opcode.Push_block { nargs; arg_start; body_len } ->
         let body_lo = next and body_hi = next + body_len in
         let body, _ = decode inp ~lo:body_lo ~hi:body_hi in
         let params =
           List.init nargs (fun i -> temp_name inp (arg_start + i))
         in
         push (Ast.Block { params; temps = []; body });
         pc := body_hi
     | Opcode.Return_top ->
         let v = pop () in
         stmts := Ast.Return v :: !stmts;
         pc := next
     | Opcode.Return_receiver ->
         (* method fall-through: nothing to record *)
         pc := next
     | Opcode.Block_return ->
         (* the block's value is the remaining stack top, if any; leave it
            for the caller of [decode] to collect as the body value *)
         pc := next
     | Opcode.Jump off when off < 0 ->
         unsupported "unstructured backward jump"
     | Opcode.Jump _ ->
         unsupported "unstructured forward jump"
     | Opcode.Jump_if_true off | Opcode.Jump_if_false off ->
         let polarity =
           match op with
           | Opcode.Jump_if_true _ -> `True
           | _ -> `False
         in
         pc := decode_branch inp ~stmts ~stack ~pc:!pc ~off ~polarity ~hi);
    ()
  done;
  (List.rev !stmts, !stack)

(* Structured control flow starting at a conditional jump at [pc]. *)
and decode_branch inp ~stmts ~stack ~pc ~off ~polarity ~hi =
  ignore hi;
  let cond =
    match !stack with
    | e :: rest -> stack := rest; e
    | [] -> unsupported "conditional with empty stack"
  in
  let else_pc = pc + 1 + off in
  if off < 0 then unsupported "backward conditional jump";
  (* the then-part runs pc+1 .. (some Jump) .. else_pc *)
  match inp.code.(else_pc - 1) with
  | Opcode.Jump j when j < 0 ->
      (* a loop: [top: cond-code; Jump_if_xxx end; body; Jump top; end:]
         The jump target is the loop head; condition code began there. *)
      let body, _ = decode inp ~lo:(pc + 1) ~hi:(else_pc - 1) in
      let cond_block = Ast.Block { params = []; temps = []; body = [ Ast.Expr cond ] } in
      let body_block = Ast.Block { params = []; temps = []; body } in
      let sel = match polarity with `False -> "whileTrue:" | `True -> "whileFalse:" in
      stmts :=
        Ast.Expr (Ast.Message { receiver = cond_block; selector = sel;
                                args = [ body_block ] })
        :: !stmts;
      (* the loop leaves a Push_nil as its value: reproduce it so a
         following Pop (statement position) or block return (value
         position) sees the same stack shape *)
      (match inp.code.(else_pc) with
       | Opcode.Push_nil ->
           stack := Ast.Lit Ast.Lit_nil :: !stack;
           else_pc + 1
       | _ -> else_pc)
  | Opcode.Jump j when j >= 0 ->
      let end_pc = else_pc + j in
      let then_stmts, then_stack = decode inp ~lo:(pc + 1) ~hi:(else_pc - 1) in
      let else_stmts, else_stack = decode inp ~lo:else_pc ~hi:end_pc in
      let branch_value stmts stack =
        match stack with
        | [ v ] -> (stmts, Some v)
        | [] -> (stmts, None)
        | v :: _ -> (stmts, Some v)
      in
      let then_body, then_v = branch_value then_stmts then_stack in
      let else_body, else_v = branch_value else_stmts else_stack in
      let block body v =
        let body =
          match v with
          | Some v -> body @ [ Ast.Expr v ]
          | None -> body
        in
        Ast.Block { params = []; temps = []; body }
      in
      let msg =
        match (polarity, then_body, then_v, else_body, else_v) with
        (* and: / or: short-circuit shapes *)
        | `False, _, _, [], Some (Ast.Lit Ast.Lit_false) ->
            Ast.Message { receiver = cond; selector = "and:";
                          args = [ block then_body then_v ] }
        | `True, _, _, [], Some (Ast.Lit Ast.Lit_true) ->
            Ast.Message { receiver = cond; selector = "or:";
                          args = [ block then_body then_v ] }
        (* one-armed conditionals: the synthesized arm is a bare nil *)
        | `False, _, _, [], Some (Ast.Lit Ast.Lit_nil) ->
            Ast.Message { receiver = cond; selector = "ifTrue:";
                          args = [ block then_body then_v ] }
        | `True, _, _, [], Some (Ast.Lit Ast.Lit_nil) ->
            Ast.Message { receiver = cond; selector = "ifFalse:";
                          args = [ block then_body then_v ] }
        | `False, _, _, _, _ ->
            Ast.Message { receiver = cond; selector = "ifTrue:ifFalse:";
                          args = [ block then_body then_v;
                                   block else_body else_v ] }
        | `True, _, _, _, _ ->
            Ast.Message { receiver = cond; selector = "ifFalse:ifTrue:";
                          args = [ block then_body then_v;
                                   block else_body else_v ] }
      in
      stack := msg :: !stack;
      end_pc
  | _ -> unsupported "conditional without a matching join"

(* --- public interface --- *)

(* Decompile from raw pieces (used by tests and by the primitive, which
   extracts them from a CompiledMethod heap object).  All frame slots
   beyond the arguments are declared as method temporaries; block
   parameters re-declare their slots inside their blocks, which shadows
   harmlessly on recompilation. *)
let decompile_parts ~selector ~nargs ~ntemps ~code ~literal ~selector_of =
  let inp = { code; literal; selector_of; nargs } in
  let stmts, stack = decode inp ~lo:0 ~hi:(Array.length code) in
  let stmts =
    match stack with
    | [] -> stmts
    | v :: _ ->
        (match v with
         | Ast.Lit _ | Ast.Self | Ast.Var _ -> stmts
         | _ -> stmts @ [ Ast.Expr v ])
  in
  let params = List.init nargs (fun i -> Printf.sprintf "a%d" (i + 1)) in
  let temps =
    List.init (max 0 (ntemps - nargs)) (fun i ->
        Printf.sprintf "t%d" (nargs + i + 1))
  in
  { Ast.selector;
    params;
    temps;
    primitive = None;
    body = stmts;
    source = "" }

let to_source m = Ast.method_to_string m
