(** Recursive-descent parser for Smalltalk-80 methods and expressions.

    The standard grammar: unary binds tighter than binary, binary tighter
    than keyword; cascades with [;]; blocks with parameters and
    temporaries; [^] returns; a [<primitive: n>] pragma after the method
    pattern; [|] doubles as the temporaries delimiter and a binary
    selector (unambiguous, since temporaries precede the first
    statement). *)

exception Error of string

(** Parse one complete method: pattern, pragma, temporaries, body. *)
val parse_method : string -> Ast.meth

(** Parse a free-standing expression sequence (a "doIt") as a method on
    nil; the last expression becomes the return value. *)
val parse_do_it : string -> Ast.meth
