(** Building class objects and installing compiled methods.

    Classes use a simplified metaclass model: every class is an instance
    of [Class] and carries two method dictionaries, one for its instances
    and one for itself.  Method dictionaries are pairs of parallel arrays
    scanned linearly — the lookup caches make the scan rare. *)

exception Error of string

(** {2 Method dictionaries} *)

val new_method_dict : Universe.t -> int -> Oop.t

val dict_size : Universe.t -> Oop.t -> int

(** Linear search for [selector]; [None] when absent. *)
val dict_find : Universe.t -> Oop.t -> Oop.t -> Oop.t option

(** Install (or replace) a method, growing the arrays when full.  Callers
    must flush the method caches afterwards. *)
val dict_install : Universe.t -> Oop.t -> selector:Oop.t -> meth:Oop.t -> unit

val dict_selectors : Universe.t -> Oop.t -> Oop.t list

(** {2 Classes} *)

val class_ivar_names : Universe.t -> Oop.t -> string list

(** Create (or redefine, keeping identity) a class from a declaration and
    bind it as a global.  The superclass must already exist. *)
val define_class : Universe.t -> Class_file.class_decl -> Oop.t

(** Compile [source] and install it on the given side of [cls]. *)
val add_method : Universe.t -> cls:Oop.t -> class_side:bool -> string -> Oop.t

(** Load a whole image-definition file: class declarations and method
    chunks, in order. *)
val load : Universe.t -> string -> unit
