(** Decompilation: CompiledMethod bytecode -> Smalltalk source.

    The decompiler symbolically executes the bytecode, rebuilding an AST
    by recognising the shapes the code generator emits: the conditional
    diamond, the short-circuit forms, and loops (backward jumps; inlined
    [to:do:] decompiles to an equivalent [whileTrue:]).  Temporaries are
    renamed positionally: arguments a1..an, other frame slots t<k>. *)

exception Unsupported of string

(** Decompile from raw pieces (the primitive extracts them from a
    CompiledMethod heap object): [literal] renders literal-table entries
    as AST literals, [selector_of] renders selector/global entries as
    names.
    @raise Unsupported on bytecode shapes the generator never emits. *)
val decompile_parts :
  selector:string ->
  nargs:int ->
  ntemps:int ->
  code:Opcode.t array ->
  literal:(int -> Ast.literal) ->
  selector_of:(int -> string) ->
  Ast.meth

(** Render a decompiled method as source text. *)
val to_source : Ast.meth -> string
