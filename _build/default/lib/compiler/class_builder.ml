(* Building class objects and installing compiled methods.

   Classes use a simplified metaclass model: every class is an instance of
   [Class] and carries two method dictionaries, one for its instances and
   one for itself (class-side).  Lookup on a class receiver walks the
   class-side dictionaries up the superclass chain and then falls back to
   the instance protocol of [Class] (see the interpreter's lookup).

   Method dictionaries are a pair of parallel arrays scanned linearly —
   the method-lookup caches make the scan rare. *)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let initial_dict_capacity = 8

let new_method_dict u capacity =
  let h = Universe.heap u in
  let cls = u.Universe.classes.Universe.method_dictionary in
  let d =
    Heap.alloc_old h ~slots:Layout.Mdict.fixed_slots ~raw:false ~cls ()
  in
  let sels = Universe.new_array_sized u capacity in
  let meths = Universe.new_array_sized u capacity in
  ignore (Heap.store_ptr h d Layout.Mdict.selectors sels);
  ignore (Heap.store_ptr h d Layout.Mdict.methods meths);
  ignore (Heap.store_ptr h d Layout.Mdict.size (Oop.of_small 0));
  d

let dict_size u d =
  Oop.small_val (Heap.get (Universe.heap u) d Layout.Mdict.size)

let dict_arrays u d =
  let h = Universe.heap u in
  (Heap.get h d Layout.Mdict.selectors, Heap.get h d Layout.Mdict.methods)

(* Find [selector] in dictionary [d]; returns the method oop. *)
let dict_find u d selector =
  let h = Universe.heap u in
  let sels, meths = dict_arrays u d in
  let n = dict_size u d in
  let rec scan i =
    if i >= n then None
    else if Oop.equal (Heap.get h sels i) selector then
      Some (Heap.get h meths i)
    else scan (i + 1)
  in
  scan 0

let dict_install_at u d i ~selector ~meth =
  let h = Universe.heap u in
  let sels, meths = dict_arrays u d in
  ignore (Heap.store_ptr h sels i selector);
  ignore (Heap.store_ptr h meths i meth);
  ignore (Heap.store_ptr h d Layout.Mdict.size (Oop.of_small (i + 1)))

let dict_install u d ~selector ~meth =
  let h = Universe.heap u in
  let sels, meths = dict_arrays u d in
  let n = dict_size u d in
  let rec scan i =
    if i >= n then begin
      let cap = Heap.slots h (Oop.addr sels) in
      if n = cap then begin
        (* grow both arrays *)
        let sels' = Universe.new_array_sized u (2 * cap) in
        let meths' = Universe.new_array_sized u (2 * cap) in
        for j = 0 to n - 1 do
          ignore (Heap.store_ptr h sels' j (Heap.get h sels j));
          ignore (Heap.store_ptr h meths' j (Heap.get h meths j))
        done;
        ignore (Heap.store_ptr h d Layout.Mdict.selectors sels');
        ignore (Heap.store_ptr h d Layout.Mdict.methods meths');
        dict_install_at u d n ~selector ~meth
      end
      else dict_install_at u d n ~selector ~meth
    end
    else if Oop.equal (Heap.get h sels i) selector then begin
      ignore (Heap.store_ptr h meths i meth)
    end
    else scan (i + 1)
  in
  scan 0

let dict_selectors u d =
  let h = Universe.heap u in
  let sels, _ = dict_arrays u d in
  List.init (dict_size u d) (fun i -> Heap.get h sels i)

(* --- classes --- *)

let format_code = function
  | Class_file.Pointers -> Layout.Class_format.pointers
  | Class_file.Variable -> Layout.Class_format.variable
  | Class_file.Raw_words -> Layout.Class_format.raw_words
  | Class_file.Raw_bytes -> Layout.Class_format.raw_bytes

let class_ivar_names u cls =
  let h = Universe.heap u in
  let arr = Heap.get h cls Layout.Class.ivar_names in
  if Oop.equal arr u.Universe.nil then []
  else
    List.init (Heap.slots h (Oop.addr arr)) (fun i ->
        Universe.symbol_name u (Heap.get h arr i))

(* Create (or redefine) a class object from a declaration.  The superclass
   must already exist. *)
let define_class u (decl : Class_file.class_decl) =
  let h = Universe.heap u in
  let super =
    match decl.super with
    | None -> u.Universe.nil
    | Some s ->
        (match Universe.find_class u s with
         | Some c -> c
         | None -> error "class %s: unknown superclass %s" decl.name s)
  in
  let inherited =
    if Oop.equal super u.Universe.nil then []
    else class_ivar_names u super
  in
  let all_ivars = inherited @ decl.ivars in
  let cls =
    match Universe.find_class u decl.name with
    | Some existing -> existing  (* redefinition keeps identity *)
    | None ->
        Heap.alloc_old h ~slots:Layout.Class.fixed_slots ~raw:false
          ~cls:u.Universe.classes.Universe.class_c ()
  in
  let set i v = ignore (Heap.store_ptr h cls i v) in
  set Layout.Class.name (Universe.intern u decl.name);
  set Layout.Class.superclass super;
  set Layout.Class.method_dict (new_method_dict u initial_dict_capacity);
  set Layout.Class.class_method_dict (new_method_dict u initial_dict_capacity);
  set Layout.Class.inst_size (Oop.of_small (List.length all_ivars));
  set Layout.Class.format (Oop.of_small (format_code decl.format));
  set Layout.Class.ivar_names
    (Universe.new_array u (List.map (Universe.intern u) all_ivars));
  set Layout.Class.category (Universe.new_string u decl.category);
  Universe.set_global u decl.name cls;
  cls

(* Compile [source] and install it in [cls]. *)
let add_method u ~cls ~class_side source =
  let h = Universe.heap u in
  let meth = Codegen.compile_method u ~cls source in
  if class_side then begin
    let info = Oop.small_val (Heap.get h meth Layout.Method.info) in
    ignore
      (Heap.store_ptr h meth Layout.Method.info
         (Oop.of_small (Layout.Minfo.set_class_side info)))
  end;
  let selector = Heap.get h meth Layout.Method.selector in
  let dict_field =
    if class_side then Layout.Class.class_method_dict
    else Layout.Class.method_dict
  in
  dict_install u (Heap.get h cls dict_field) ~selector ~meth;
  meth

(* Load a whole image definition file. *)
let load u source =
  List.iter
    (function
      | Class_file.Class_decl decl -> ignore (define_class u decl)
      | Class_file.Methods { class_name; class_side; methods } ->
          let cls =
            match Universe.find_class u class_name with
            | Some c -> c
            | None -> error "METHODS for unknown class %s" class_name
          in
          List.iter
            (fun src ->
              try ignore (add_method u ~cls ~class_side src) with
              | Codegen.Error msg | Parser.Error msg | Lexer.Error msg ->
                  error "in %s%s: %s\n--- method source ---\n%s"
                    class_name
                    (if class_side then " class" else "")
                    msg src)
            methods)
    (Class_file.parse source)
