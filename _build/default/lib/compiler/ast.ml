(* Abstract syntax of the Smalltalk-80 method language. *)

type literal =
  | Lit_int of int
  | Lit_float of float
  | Lit_string of string
  | Lit_symbol of string
  | Lit_char of char
  | Lit_array of literal list
  | Lit_nil
  | Lit_true
  | Lit_false

type expr =
  | Self
  | Super                      (* only legal as a message receiver *)
  | Var of string              (* resolved to temp/ivar/global at codegen *)
  | Lit of literal
  | Assign of string * expr
  | Message of { receiver : expr; selector : string; args : expr list }
  | Cascade of { receiver : expr; messages : (string * expr list) list }
    (* [receiver] is the receiver of every cascaded message; the first
       message of the cascade is messages' head *)
  | Block of { params : string list; temps : string list; body : stmt list }

and stmt =
  | Expr of expr
  | Return of expr

type meth = {
  selector : string;
  params : string list;
  temps : string list;
  primitive : int option;      (* <primitive: n> *)
  body : stmt list;
  source : string;
}

(* --- selector classification, shared by parser, printer, decompiler --- *)

let selector_arity s =
  if s = "" then 0
  else if String.contains s ':' then
    String.fold_left (fun n c -> if c = ':' then n + 1 else n) 0 s
  else begin
    let c = s.[0] in
    if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then 0
    else 1 (* binary *)
  end

let is_keyword_selector s = String.contains s ':'
let is_binary_selector s = selector_arity s = 1 && not (is_keyword_selector s)

let keyword_parts s =
  (* "at:put:" -> ["at:"; "put:"] *)
  let parts = ref [] and start = ref 0 in
  String.iteri
    (fun i c ->
      if c = ':' then begin
        parts := String.sub s !start (i - !start + 1) :: !parts;
        start := i + 1
      end)
    s;
  List.rev !parts

(* --- pretty-printing (used by error messages and the decompiler) --- *)

let escape_string s =
  String.concat "''" (String.split_on_char '\'' s)

let rec pp_literal fmt = function
  | Lit_int n -> Format.fprintf fmt "%d" n
  | Lit_float f -> Format.fprintf fmt "%g" f
  | Lit_string s -> Format.fprintf fmt "'%s'" (escape_string s)
  | Lit_symbol s -> Format.fprintf fmt "#%s" s
  | Lit_char c -> Format.fprintf fmt "$%c" c
  | Lit_array els ->
      Format.fprintf fmt "#(%a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_inner_literal)
        els
  | Lit_nil -> Format.fprintf fmt "nil"
  | Lit_true -> Format.fprintf fmt "true"
  | Lit_false -> Format.fprintf fmt "false"

and pp_inner_literal fmt = function
  | Lit_symbol s -> Format.fprintf fmt "%s" s  (* no # inside #( ) *)
  | other -> pp_literal fmt other

(* Precedence levels for parenthesisation: 3 primary, 2 unary, 1 binary,
   0 keyword/assignment/cascade. *)
let rec precedence = function
  | Self | Super | Var _ | Lit _ | Block _ -> 3
  | Message { selector; _ } ->
      if is_keyword_selector selector then 0
      else if is_binary_selector selector then 1
      else 2
  | Assign _ | Cascade _ -> 0

and pp_expr ?(prec = 0) fmt e =
  let mine = precedence e in
  if mine < prec then Format.fprintf fmt "(%a)" (pp_expr ~prec:0) e
  else
    match e with
    | Self -> Format.fprintf fmt "self"
    | Super -> Format.fprintf fmt "super"
    | Var v -> Format.fprintf fmt "%s" v
    | Lit l -> pp_literal fmt l
    | Assign (v, e) -> Format.fprintf fmt "%s := %a" v (pp_expr ~prec:0) e
    | Message { receiver; selector; args } ->
        pp_message fmt receiver selector args
    | Cascade { receiver; messages } ->
        (match messages with
         | [] -> pp_expr ~prec fmt receiver
         | (sel0, args0) :: rest ->
             pp_message fmt receiver sel0 args0;
             List.iter
               (fun (sel, args) ->
                 Format.fprintf fmt "; ";
                 pp_selector_and_args fmt sel args)
               rest)
    | Block { params; temps; body } ->
        Format.fprintf fmt "[";
        List.iter (fun p -> Format.fprintf fmt ":%s " p) params;
        if params <> [] then Format.fprintf fmt "| ";
        if temps <> [] then
          Format.fprintf fmt "| %s | " (String.concat " " temps);
        pp_body fmt body;
        Format.fprintf fmt "]"

and pp_message fmt receiver selector args =
  if is_keyword_selector selector then begin
    Format.fprintf fmt "%a " (pp_expr ~prec:1) receiver;
    pp_selector_and_args fmt selector args
  end
  else if args = [] then
    Format.fprintf fmt "%a %s" (pp_expr ~prec:2) receiver selector
  else
    Format.fprintf fmt "%a %s %a" (pp_expr ~prec:1) receiver selector
      (pp_expr ~prec:2) (List.hd args)

and pp_selector_and_args fmt selector args =
  if is_keyword_selector selector then
    List.iter2
      (fun part arg -> Format.fprintf fmt "%s %a " part (pp_expr ~prec:1) arg)
      (keyword_parts selector) args
  else if args = [] then Format.fprintf fmt "%s" selector
  else Format.fprintf fmt "%s %a" selector (pp_expr ~prec:2) (List.hd args)

and pp_stmt fmt = function
  | Expr e -> pp_expr ~prec:0 fmt e
  | Return e -> Format.fprintf fmt "^%a" (pp_expr ~prec:0) e

and pp_body fmt body =
  let rec go = function
    | [] -> ()
    | [ s ] -> pp_stmt fmt s
    | s :: rest ->
        pp_stmt fmt s;
        Format.fprintf fmt ". ";
        go rest
  in
  go body

let expr_to_string e = Format.asprintf "%a" (pp_expr ~prec:0) e

(* Render a method's header pattern: "at: index put: value". *)
let pattern_of ~selector ~params =
  if is_keyword_selector selector then
    String.concat " "
      (List.map2 (fun part p -> part ^ " " ^ p) (keyword_parts selector) params)
  else if params = [] then selector
  else selector ^ " " ^ List.hd params

let pp_method fmt (m : meth) =
  Format.fprintf fmt "%s@." (pattern_of ~selector:m.selector ~params:m.params);
  (match m.primitive with
   | Some n -> Format.fprintf fmt "    <primitive: %d>@." n
   | None -> ());
  if m.temps <> [] then
    Format.fprintf fmt "    | %s |@." (String.concat " " m.temps);
  List.iter (fun s -> Format.fprintf fmt "    %a.@." pp_stmt s) m.body

let method_to_string m = Format.asprintf "%a" pp_method m
