lib/compiler/lexer.ml: Array Buffer Char List Printf String
