lib/compiler/ast.ml: Format List String
