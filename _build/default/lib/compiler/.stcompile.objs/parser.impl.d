lib/compiler/parser.ml: Array Ast Buffer Lexer List Printf String
