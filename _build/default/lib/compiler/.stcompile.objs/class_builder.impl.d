lib/compiler/class_builder.ml: Class_file Codegen Heap Layout Lexer List Oop Parser Printf Universe
