lib/compiler/decompiler.mli: Ast Opcode
