lib/compiler/codegen.mli: Ast Oop Universe
