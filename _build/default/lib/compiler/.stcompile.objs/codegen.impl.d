lib/compiler/codegen.ml: Array Assembler Ast Heap Layout List Oop Opcode Parser Printf String Universe
