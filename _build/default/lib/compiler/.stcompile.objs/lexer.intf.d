lib/compiler/lexer.mli:
