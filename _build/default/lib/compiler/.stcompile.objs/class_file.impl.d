lib/compiler/class_file.ml: Buffer List Printf String
