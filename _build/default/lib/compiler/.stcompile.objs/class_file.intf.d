lib/compiler/class_file.mli:
