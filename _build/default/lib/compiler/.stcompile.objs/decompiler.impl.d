lib/compiler/decompiler.ml: Array Ast List Opcode Printf
