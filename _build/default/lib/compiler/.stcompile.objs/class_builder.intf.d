lib/compiler/class_builder.mli: Class_file Oop Universe
